(* Autotuning demo (paper Section VIII-C): search threshold x coarsening x
   granularity for one benchmark, print the landscape and the best point,
   and check the paper's rules of thumb.

     dune exec examples/autotune.exe *)

let () =
  let ds = Workloads.Graph_gen.kron_dataset ~scale:9 () in
  let spec = Benchmarks.Bfs.spec ~dataset:ds in
  Fmt.pr "Autotuning BFS on %s (%a)@." ds.name Workloads.Csr.stats ds.graph;
  Fmt.pr "largest dynamic launch: %d child threads@.@." spec.max_child_threads;

  (* Full sweep of threshold x granularity at a fixed coarsening factor —
     the Fig. 11 view of the design space. *)
  let cdp =
    Harness.Experiment.run spec (Harness.Variant.Cdp Dpopt.Pipeline.none)
  in
  let table = Harness.Tuning.sweep ~cfactor:8 spec in
  (match table with
  | (_, cells) :: _ ->
      Fmt.pr "%10s" "threshold";
      List.iter
        (fun (g, _) ->
          Fmt.pr " %14s"
            (match g with
            | None -> "T only"
            | Some g -> Fmt.str "%a" Dpopt.Aggregation.pp_granularity g))
        cells;
      Fmt.pr "@."
  | [] -> ());
  List.iter
    (fun (thr, cells) ->
      Fmt.pr "%10d" thr;
      List.iter
        (fun (_, t) ->
          Fmt.pr " %14s" (Harness.Stats.speedup_to_string (cdp.time /. t)))
        cells;
      Fmt.pr "@.")
    table;

  (* The quick search the paper recommends (fewer than ten runs). *)
  let tuned =
    Harness.Tuning.tune ~quick:true spec
      { Harness.Variant.t = true; c = true; a = true }
  in
  Fmt.pr "@.quick search best: %a -> %.0f cycles (%s over CDP), %d runs@."
    Harness.Variant.pp_params tuned.best_params tuned.best.time
    (Harness.Stats.speedup_to_string (cdp.time /. tuned.best.time))
    (List.length tuned.all_runs);

  (* Paper rule of thumb: warp granularity is never favorable. *)
  let flat =
    List.concat_map
      (fun (thr, cells) ->
        List.filter_map
          (fun (g, t) -> Option.map (fun g -> (thr, g, t)) g)
          cells)
      table
  in
  let best_warp =
    List.fold_left
      (fun acc (_, g, t) ->
        if g = Dpopt.Aggregation.Warp then Float.min acc t else acc)
      infinity flat
  in
  let best_other =
    List.fold_left
      (fun acc (_, g, t) ->
        if g <> Dpopt.Aggregation.Warp then Float.min acc t else acc)
      infinity flat
  in
  Fmt.pr "best warp-granularity time %.0f vs best other %.0f -> %s@." best_warp
    best_other
    (if best_other <= best_warp then
       "warp granularity is never favorable (matches Section VIII-C)"
     else "warp granularity won here (differs from the paper)")
