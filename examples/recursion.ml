(* Recursive single-block kernels and KLAP's promotion (paper Section IX):
   a pairwise-fold kernel relaunches itself once per level; promotion turns
   the launch chain into a persistent loop, eliminating every device-side
   launch. The paper's T/C/A optimizations cannot help this pattern
   (identical child sizes, one block, one launching thread) — promotion is
   the baseline's answer, included here for completeness.

     dune exec examples/recursion.exe *)

let fold_src =
  {|
__global__ void fold(int* data, int n) {
  int half = n / 2;
  int i = threadIdx.x;
  while (i < half) {
    data[i] = data[i] + data[i + half];
    i = i + blockDim.x;
  }
  if (threadIdx.x == 0) {
    if (half > 1) {
      fold<<<1, blockDim.x>>>(data, half);
    }
  }
}
|}

let run prog ~n =
  let open Gpusim in
  let dev = Device.create () in
  Device.load_program dev prog;
  let d = Device.alloc_ints dev (Array.init n (fun i -> i + 1)) in
  Device.launch dev ~kernel:"fold" ~grid:(1, 1, 1) ~block:(128, 1, 1)
    ~args:[ Ptr d; Int n ];
  let time = Device.sync dev in
  ((Device.read_ints dev d 1).(0), time, Device.metrics dev)

let () =
  let n = 4096 in
  let expected = n * (n + 1) / 2 in
  let plain = Minicu.Parser.program fold_src in
  let r = Dpopt.Promotion.transform plain in
  Fmt.pr "--- promoted kernel ---@.%s@." (Minicu.Pretty.program r.prog);
  let sum1, t1, m1 = run plain ~n in
  let sum2, t2, m2 = run r.prog ~n in
  assert (sum1 = expected && sum2 = expected);
  Fmt.pr "recursive CDP : sum=%d  %8.0f cycles  %d device launches@." sum1 t1
    m1.device_launches;
  Fmt.pr "promoted      : sum=%d  %8.0f cycles  %d device launches@." sum2 t2
    m2.device_launches;
  Fmt.pr "promotion speedup: %.2fx (launch chain of depth %d eliminated)@."
    (t1 /. t2) m1.device_launches
