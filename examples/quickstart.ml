(* Quickstart: transform a nested-parallel kernel with all three
   optimizations, inspect the generated source, and watch the speedup in the
   GPU simulator.

     dune exec examples/quickstart.exe *)

let source =
  {|
__global__ void scale_child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[base + i] = data[base + i] * 3;
  }
}

__global__ void scale_parent(int* offsets, int* data, int n_rows) {
  int row = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < n_rows) {
    int start = offsets[row];
    int len = offsets[row + 1] - start;
    if (len > 0) {
      scale_child<<<(len + 63) / 64, 64>>>(data, start, len);
    }
  }
}
|}

(* Upload a ragged workload (row v has v elements) and run it. *)
let run_on_device (r : Dpopt.Pipeline.result) =
  let open Gpusim in
  let dev = Device.create () in
  Device.load_program dev r.prog
    ~auto_params:(Benchmarks.Bench_common.to_device_auto r.auto_params);
  let n_rows = 256 in
  let offsets = Array.init (n_rows + 1) (fun v -> v * (v - 1) / 2) in
  let total = offsets.(n_rows) in
  let d_off = Device.alloc_ints dev offsets in
  let d_data = Device.alloc_ints dev (Array.init total (fun i -> i)) in
  Device.launch dev ~kernel:"scale_parent"
    ~grid:((n_rows + 127) / 128, 1, 1)
    ~block:(128, 1, 1)
    ~args:[ Ptr d_off; Ptr d_data; Int n_rows ];
  let time = Device.sync dev in
  let sample = Device.read_ints dev d_data 5 in
  (time, sample, Device.metrics dev)

let () =
  (* 1. Plain CDP: parse and run unmodified. *)
  let cdp = Dpopt.Pipeline.run (Minicu.Parser.program source) in
  let t_cdp, sample, m_cdp = run_on_device cdp in
  Fmt.pr "CDP (untransformed): %8.0f cycles, %d device launches@." t_cdp
    m_cdp.device_launches;
  Fmt.pr "  data sample after run: %a@." Fmt.(Dump.array int) sample;

  (* 2. The full pipeline: thresholding at 64, coarsening by 8, multi-block
     aggregation over groups of 8 blocks. *)
  let opts =
    Dpopt.Pipeline.make ~threshold:64 ~cfactor:8
      ~granularity:(Dpopt.Aggregation.Multi_block 8) ()
  in
  let optimized = Dpopt.Pipeline.run ~opts (Minicu.Parser.program source) in
  Fmt.pr "@.--- transformed source (%s) ---@.%s@."
    (Dpopt.Pipeline.label opts)
    (Minicu.Pretty.program optimized.prog);

  (* 3. Run the optimized version: same results, fewer launches, faster. *)
  let t_opt, sample_opt, m_opt = run_on_device optimized in
  assert (sample = sample_opt);
  Fmt.pr "%s: %8.0f cycles, %d device launches, %d serialized launches@."
    (Dpopt.Pipeline.label opts)
    t_opt m_opt.device_launches m_opt.serialized_launches;
  Fmt.pr "speedup over CDP: %.1fx (outputs identical)@." (t_cdp /. t_opt)
