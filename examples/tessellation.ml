(* Bezier tessellation demo (the BT benchmark): the child grid size is
   data-dependent (curvature-driven), so the threshold decides which curves
   tessellate in a child grid and which serialize in their parent thread.

     dune exec examples/tessellation.exe *)

let () =
  let flat = Workloads.Bezier.t0032_c16 ~n_lines:300 () in
  let curvy = Workloads.Bezier.t2048_c64 ~n_lines:100 () in
  List.iter
    (fun (d : Workloads.Bezier.t) ->
      let pts = Array.map (Workloads.Bezier.tess_points d) d.lines in
      Fmt.pr "@.%s: %d lines, tessellation points avg %d / max %d@." d.name
        (Array.length d.lines)
        (Array.fold_left ( + ) 0 pts / Array.length pts)
        (Array.fold_left max 0 pts);
      let spec = Benchmarks.Bt.spec ~dataset:d in
      let baseline =
        Harness.Experiment.run spec (Harness.Variant.Cdp Dpopt.Pipeline.none)
      in
      Fmt.pr "  %-28s %10.0f cycles@." "CDP" baseline.time;
      List.iter
        (fun threshold ->
          let m =
            Harness.Experiment.run spec
              (Harness.Variant.Cdp
                 (Dpopt.Pipeline.make ~threshold ~cfactor:8
                    ~granularity:Dpopt.Aggregation.Block ()))
          in
          Fmt.pr
            "  CDP+T+C+A threshold=%-6d %10.0f cycles  (%s vs CDP, %d curves \
             serialized)@."
            threshold m.time
            (Harness.Stats.speedup_to_string (baseline.time /. m.time))
            m.snap.serialized_launches)
        [ 8; 64; 512 ];
      (* outputs are validated inside Experiment.run; also show the
         tessellated positions checksum by re-running the reference *)
      Fmt.pr "  reference fingerprint: %d@." (spec.reference ()))
    [ flat; curvy ]
