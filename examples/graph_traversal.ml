(* Graph traversal demo: BFS on three graph shapes under each optimization
   level. Shows the paper's central claim — dynamic parallelism pays off on
   heavy-tailed graphs once thresholding/coarsening/aggregation are applied,
   but never on low-degree road networks (Sections VIII-A and VIII-D).

     dune exec examples/graph_traversal.exe *)

let variants =
  [
    ("No CDP", Harness.Variant.No_cdp);
    ("CDP", Harness.Variant.Cdp Dpopt.Pipeline.none);
    ("CDP+T", Harness.Variant.Cdp (Dpopt.Pipeline.make ~threshold:64 ()));
    ( "CDP+A",
      Harness.Variant.Cdp
        (Dpopt.Pipeline.make ~granularity:(Dpopt.Aggregation.Multi_block 8) ())
    );
    ( "CDP+T+C+A",
      Harness.Variant.Cdp
        (Dpopt.Pipeline.make ~threshold:64 ~cfactor:8
           ~granularity:(Dpopt.Aggregation.Multi_block 8) ()) );
  ]

let () =
  let datasets =
    [
      Workloads.Graph_gen.kron_dataset ~scale:9 ();
      Workloads.Graph_gen.cnr_dataset ~n:900 ();
      Workloads.Graph_gen.road_dataset ~rows:28 ~cols:28 ();
    ]
  in
  List.iter
    (fun (ds : Workloads.Graph_gen.named) ->
      Fmt.pr "@.BFS on %s (%a)@." ds.name Workloads.Csr.stats ds.graph;
      let spec = Benchmarks.Bfs.spec ~dataset:ds in
      let cdp_time = ref nan in
      List.iter
        (fun (label, v) ->
          let m = Harness.Experiment.run spec v in
          if label = "CDP" then cdp_time := m.time;
          Fmt.pr "  %-10s %10.0f cycles  %6d launches  speedup vs CDP %s@."
            label m.time
            (m.snap.device_launches + m.snap.host_launches)
            (if Float.is_nan !cdp_time then "-"
             else Harness.Stats.speedup_to_string (!cdp_time /. m.time)))
        variants)
    datasets;
  Fmt.pr
    "@.Note how CDP+T+C+A wins on KRON/CNR but cannot fully recover on the \
     road graph@.(average degree ~3): the mere presence of a launch costs \
     every thread cycles@.(paper Section VIII-D).@."
