(** Per-kernel parallel-dispatch safety report (see the interface). *)

type entry = {
  ps_kernel : string;
  ps_params : string list;
  ps_summary : Gpusim.Blocksafe.summary;
  ps_static_work : float;
}

let report ?(cfg = Gpusim.Config.default) (prog : Minicu.Ast.program) =
  List.filter_map
    (fun (f : Minicu.Ast.func) ->
      match f.f_kind with
      | Minicu.Ast.Device -> None
      | Minicu.Ast.Global ->
          Some
            {
              ps_kernel = f.f_name;
              ps_params =
                List.map (fun (p : Minicu.Ast.param) -> p.p_name) f.f_params;
              ps_summary = Gpusim.Blocksafe.analyze prog f;
              ps_static_work = Gpusim.Blocksafe.static_work cfg f;
            })
    prog

let pp_mode ppf (m : Gpusim.Blocksafe.mode) =
  match m with
  | Gpusim.Blocksafe.Read_only -> Fmt.string ppf "read-only"
  | Gpusim.Blocksafe.Owned stride -> Fmt.pf ppf "owned x%d" stride
  | Gpusim.Blocksafe.Reduce -> Fmt.string ppf "reduce"

let pp_entry ppf e =
  let s = e.ps_summary in
  if s.Gpusim.Blocksafe.bs_safe then
    let modes =
      List.mapi
        (fun i name ->
          Fmt.str "%s: %a" name pp_mode s.Gpusim.Blocksafe.bs_modes.(i))
        e.ps_params
    in
    Fmt.pf ppf "parsafety %s: parallel-safe (%s%s~%.0f cycles/thread)"
      e.ps_kernel
      (String.concat ", " modes)
      (if s.Gpusim.Blocksafe.bs_needs_1d then "; needs 1-D dims; "
       else if e.ps_params = [] then ""
       else "; ")
      e.ps_static_work
  else
    Fmt.pf ppf "parsafety %s: serial (%s)" e.ps_kernel
      s.Gpusim.Blocksafe.bs_reason

let pp ppf entries =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) entries
