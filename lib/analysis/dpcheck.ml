(** dpcheck driver: static lints on a program and on the output of every
    pass combination of the optimization pipeline.

    The second half is the point: a transformation that manufactures a
    divergent barrier or an out-of-bounds constant index is a compiler
    bug, so [dpoptc --check] runs the linter over all [2^3] pass subsets
    and fails if any output regresses. (The dynamic race detector is the
    complementary tool — see [Gpusim.Racecheck] and the difftest
    oracle.) *)

open Minicu

type combo_report = { c_label : string; c_diags : Static.diag list }

type report = {
  input_diags : Static.diag list;
  combos : combo_report list;
      (** One per pass combination; empty when the input itself has
          errors (transforming a broken kernel reports nothing new). *)
}

let check ?threshold ?cfactor ?granularity ?agg_threshold
    (prog : Ast.program) : report =
  let input_diags = Static.check_program prog in
  if Static.errors input_diags <> [] then { input_diags; combos = [] }
  else
    let combos =
      List.map
        (fun (label, opts) ->
          let r = Dpopt.Pipeline.run ~opts prog in
          { c_label = label; c_diags = Static.check_program r.prog })
        (Dpopt.Pipeline.enumerate ?threshold ?cfactor ?granularity
           ?agg_threshold ())
    in
    { input_diags; combos }

let clean r =
  Static.errors r.input_diags = []
  && List.for_all (fun c -> Static.errors c.c_diags = []) r.combos

let error_count r =
  List.length (Static.errors r.input_diags)
  + List.fold_left
      (fun acc c -> acc + List.length (Static.errors c.c_diags))
      0 r.combos

let pp ppf r =
  List.iter (fun d -> Fmt.pf ppf "%a@." Static.pp_diag d) r.input_diags;
  List.iter
    (fun c ->
      List.iter
        (fun d -> Fmt.pf ppf "[%s] %a@." c.c_label Static.pp_diag d)
        c.c_diags)
    r.combos
