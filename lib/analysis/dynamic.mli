(** Directive-driven dynamic sanitizer runs (the [dpoptc --check] dynamic
    half).

    Corpus programs embed launch configurations as comment directives:

    {v
    // CHECK-RUN: k grid=2 block=32 args=ptr:64,int:8
    v}

    [ptr:N] allocates an [N]-element zero buffer; [int:V] and [float:V]
    pass scalars. Each directive runs on a fresh device with
    [Config.check] enabled; findings (race reports, out-of-bounds runtime
    errors) are deterministic and carry source locations. *)

type arg = A_ptr of int  (** Zero buffer of N elements. *) | A_int of int | A_float of float

type directive = {
  dr_kernel : string;
  dr_grid : int * int * int;
  dr_block : int * int * int;
  dr_args : arg list;
}

exception Bad_directive of string

(** Scan raw MiniCU source for [CHECK-RUN:] directives.
    @raise Bad_directive on malformed ones. *)
val directives : string -> directive list

(** Convert the aggregation pass's runtime-allocated parameter specs to
    the device form (as [Benchmarks.Bench_common.to_device_auto]). *)
val to_device_auto :
  (string * Dpopt.Aggregation.auto_param list) list ->
  (string * Gpusim.Device.auto_param list) list

(** [run ?cfg ?auto_params prog ds] — execute each directive under the
    sanitizer; returns all findings, in directive order. Empty = clean. *)
val run :
  ?cfg:Gpusim.Config.t ->
  ?auto_params:(string * Dpopt.Aggregation.auto_param list) list ->
  Minicu.Ast.program ->
  directive list ->
  string list
