(** Static kernel lints ("dpcheck" static half).

    Three error rules and one warning, all derived from
    {!Minicu.Divergence} plus a small constant-bounds walk:

    - [E001] — [__syncthreads] (directly or via a device call) under
      non-block-uniform control flow: some threads may never reach the
      barrier, which the paper's transformations (and real GPUs) cannot
      order. Exactly the condition that makes {!Dpopt.Eligibility} reject
      aggregation.
    - [E002] — a warp-scope operation ([__syncwarp] or a collective) under
      thread-varying control flow: lanes of one warp disagree about
      reaching it.
    - [E003] — indexing an array of statically known size with a constant
      that is out of bounds.
    - [W101] — a kernel launch inside a loop body: legal CUDA, but the
      launch-aggregation codegen has no per-iteration join point, so the
      site stays unoptimized (and is a classic launch-congestion source).

    The divergence rules run on kernels ([__global__]) only: device
    functions are analyzed at their call sites, where the calling context
    is known. The bounds rule runs on every function. *)

open Minicu
open Minicu.Ast

type severity = Error | Warning

type diag = {
  severity : severity;
  code : string;  (** ["E001"].. ["W101"]. *)
  d_loc : Loc.t;
  msg : string;
}

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp_diag ppf d =
  Fmt.pf ppf "%a: %a[%s]: %s" Loc.pp d.d_loc pp_severity d.severity d.code
    d.msg

let is_error d = d.severity = Error

(* ---- divergence rules (E001, E002, W101) ---- *)

let of_event (ev : Divergence.event) : diag option =
  let diag severity code fmt =
    Fmt.kstr (fun msg -> Some { severity; code; d_loc = ev.ev_loc; msg }) fmt
  in
  match (ev.ev_kind, ev.ev_ctx) with
  | (Divergence.Ev_sync | Divergence.Ev_sync_in_call _), Divergence.Uniform ->
      None
  | Divergence.Ev_sync, ctx ->
      diag Error "E001"
        "__syncthreads under %a control flow: threads that skip the branch \
         never reach the barrier"
        Divergence.pp_level ctx
  | Divergence.Ev_sync_in_call f, ctx ->
      diag Error "E001"
        "call to %S, which contains __syncthreads, under %a control flow" f
        Divergence.pp_level ctx
  | Divergence.Ev_syncwarp, Divergence.Varying ->
      diag Error "E002"
        "__syncwarp under thread-varying control flow: lanes of a warp may \
         disagree about reaching it"
  | Divergence.Ev_collective c, Divergence.Varying ->
      diag Error "E002"
        "warp collective %S under thread-varying control flow: lanes of a \
         warp may disagree about reaching it"
        c
  | (Divergence.Ev_syncwarp | Divergence.Ev_collective _), _ -> None
  | Divergence.Ev_launch k, _ when ev.ev_in_loop ->
      diag Warning "W101"
        "launch of %S inside a loop: launch aggregation cannot transform \
         this site, and per-iteration launches congest the launch queue"
        k
  | Divergence.Ev_launch _, _ -> None

(* ---- constant out-of-bounds indexing (E003) ---- *)

(* Arrays whose element count is statically known: shared-memory
   declarations with a constant (after folding) size. Scoping follows the
   statement tree; shadowing drops the size. *)
let rec bounds_stmts env acc (ss : stmt list) =
  let _, acc = List.fold_left bounds_stmt (env, acc) ss in
  acc

and bounds_stmt (env, acc) (s : stmt) =
  let check_expr acc e =
    Ast_util.fold_expr
      (fun acc e ->
        match e with
        | Index (Var x, idx) -> (
            match (List.assoc_opt x env, Ast_util.simplify_expr idx) with
            | Some n, Int_lit i when i < 0 || i >= n ->
                {
                  severity = Error;
                  code = "E003";
                  d_loc = s.sloc;
                  msg =
                    Fmt.str
                      "index %d out of bounds for %S, which has %d elements"
                      i x n;
                }
                :: acc
            | _ -> acc)
        | _ -> acc)
      acc e
  in
  let check_opt acc = function Some e -> check_expr acc e | None -> acc in
  match s.sdesc with
  | Decl_shared (_, x, size) -> (
      let acc = check_expr acc size in
      match Ast_util.simplify_expr size with
      | Int_lit n when n >= 0 -> ((x, n) :: env, acc)
      | _ -> (List.remove_assoc x env, acc))
  | Decl (_, x, init) ->
      let acc = check_opt acc init in
      (List.remove_assoc x env, acc)
  | Assign (lv, e) -> (env, check_expr (check_expr acc lv) e)
  | If (c, a, b) ->
      let acc = check_expr acc c in
      let acc = bounds_stmts env acc a in
      (env, bounds_stmts env acc b)
  | While (c, body) ->
      let acc = check_expr acc c in
      (env, bounds_stmts env acc body)
  | For (init, cond, step, body) ->
      let env', acc =
        match init with Some i -> bounds_stmt (env, acc) i | None -> (env, acc)
      in
      let acc = check_opt acc cond in
      let _, acc =
        match step with Some st -> bounds_stmt (env', acc) st | None -> (env', acc)
      in
      (env, bounds_stmts env' acc body)
  | Return e -> (env, check_opt acc e)
  | Expr_stmt e -> (env, check_expr acc e)
  | Launch l ->
      let acc = check_expr (check_expr acc l.l_grid) l.l_block in
      (env, List.fold_left check_expr acc l.l_args)
  | Sync | Syncwarp | Threadfence | Break | Continue -> (env, acc)

let constant_bounds (f : func) : diag list =
  List.rev (bounds_stmts [] [] f.f_body)

(* ---- entry points ---- *)

let check_func (prog : program) (f : func) : diag list =
  let divergence =
    if f.f_kind = Global then
      List.filter_map of_event (Divergence.events prog f)
    else []
  in
  divergence @ constant_bounds f

let check_program (prog : program) : diag list =
  List.concat_map (check_func prog) prog

let errors diags = List.filter is_error diags
