(** dpcheck driver: {!Static} lints on a program and on the output of
    every pass combination of the optimization pipeline (the [dpoptc
    --check] engine). *)

type combo_report = {
  c_label : string;  (** Pipeline label, ["CDP"] .. ["CDP+T+C+A"]. *)
  c_diags : Static.diag list;
}

type report = {
  input_diags : Static.diag list;
  combos : combo_report list;
      (** One per pass combination; empty when the input itself has
          errors. *)
}

(** [check prog] lints [prog], then — if it is error-free — runs every
    pass combination ({!Dpopt.Pipeline.enumerate} at the given knob
    values) and lints each output.
    @raise Minicu.Typecheck.Type_error if a pass produces ill-typed code
    (a compiler bug). *)
val check :
  ?threshold:int ->
  ?cfactor:int ->
  ?granularity:Dpopt.Aggregation.granularity ->
  ?agg_threshold:int ->
  Minicu.Ast.program ->
  report

(** No [Error]-severity diagnostic anywhere (warnings allowed). *)
val clean : report -> bool

val error_count : report -> int

(** All diagnostics, one per line; combo diagnostics prefixed
    ["[CDP+T] "]. *)
val pp : Format.formatter -> report -> unit
