(** Per-kernel parallel-dispatch safety report.

    Surfaces what the scheduler's {!Gpusim.Blocksafe} analysis concluded
    for every [__global__] kernel of a program: whether its blocks can be
    dispatched concurrently with bit-identical results, why not when they
    cannot, and the static per-thread work estimate the grid sampler
    stratifies on. [dpoptc --report] prints this so users can see, before
    any simulation, which kernels will run batched and which fall back to
    serial dispatch. *)

type entry = {
  ps_kernel : string;  (** Kernel name. *)
  ps_params : string list;
      (** Parameter names, aligned with [ps_summary.bs_modes]. *)
  ps_summary : Gpusim.Blocksafe.summary;
  ps_static_work : float;
      (** {!Gpusim.Blocksafe.static_work}: estimated cycles per thread. *)
}

(** [report ?cfg prog] — one entry per [__global__] kernel, in program
    order. [cfg] feeds the static-work estimator (instruction costs);
    defaults to {!Gpusim.Config.default}. *)
val report : ?cfg:Gpusim.Config.t -> Minicu.Ast.program -> entry list

(** Renders one line per kernel:
    ["parsafety bfs_child: parallel-safe (out: owned x1, frontier: read-only; needs 1-D dims; ~42 cycles/thread)"]
    or ["parsafety bfs_parent: serial (launches child grids)"]. *)
val pp : Format.formatter -> entry list -> unit
