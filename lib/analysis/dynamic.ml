(** Directive-driven dynamic sanitizer runs ([dpoptc --check]).

    Static lints cannot see data-dependent races, and [dpoptc] has no
    workload to run a kernel on — so corpus programs embed their own
    launch configurations as comment directives:

    {v
    // CHECK-RUN: k grid=2 block=32 args=ptr:64,int:8
    v}

    Each directive names a kernel, a launch configuration and synthetic
    arguments ([ptr:N] allocates an [N]-element zero buffer, [int:V] /
    [float:V] pass scalars). {!run} executes every directive on a fresh
    device with [Config.check] set and returns the findings: race reports
    from {!Gpusim.Racecheck} and out-of-bounds runtime errors, all
    carrying source locations. The simulator is deterministic, so
    findings are stable golden-test material. *)

open Gpusim

type arg = A_ptr of int | A_int of int | A_float of float

type directive = {
  dr_kernel : string;
  dr_grid : int * int * int;
  dr_block : int * int * int;
  dr_args : arg list;
}

exception Bad_directive of string

let bad fmt = Fmt.kstr (fun m -> raise (Bad_directive m)) fmt

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None -> bad "expected an integer, got %S" s

let parse_dim3 s =
  match List.map parse_int (String.split_on_char ',' s) with
  | [ x ] -> (x, 1, 1)
  | [ x; y ] -> (x, y, 1)
  | [ x; y; z ] -> (x, y, z)
  | _ -> bad "expected a dim3 like 2 or 2,2,1, got %S" s

let parse_arg s =
  match String.split_on_char ':' (String.trim s) with
  | [ "ptr"; n ] -> A_ptr (parse_int n)
  | [ "int"; v ] -> A_int (parse_int v)
  | [ "float"; v ] -> (
      match float_of_string_opt (String.trim v) with
      | Some f -> A_float f
      | None -> bad "bad float argument %S" s)
  | _ -> bad "expected ptr:N, int:V or float:V, got %S" s

let parse_directive (line : string) : directive =
  let fields =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match fields with
  | kernel :: rest ->
      let d =
        ref
          {
            dr_kernel = kernel;
            dr_grid = (1, 1, 1);
            dr_block = (1, 1, 1);
            dr_args = [];
          }
      in
      List.iter
        (fun field ->
          match String.index_opt field '=' with
          | None -> bad "expected key=value, got %S" field
          | Some i -> (
              let k = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match k with
              | "grid" -> d := { !d with dr_grid = parse_dim3 v }
              | "block" -> d := { !d with dr_block = parse_dim3 v }
              | "args" ->
                  d :=
                    {
                      !d with
                      dr_args =
                        List.map parse_arg (String.split_on_char ',' v);
                    }
              | _ -> bad "unknown directive key %S" k))
        rest;
      !d
  | [] -> bad "empty CHECK-RUN directive"

let marker = "CHECK-RUN:"

(** Scan [src] (raw MiniCU source) for [CHECK-RUN:] comment directives. *)
let directives (src : string) : directive list =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         match
           let ml = String.length marker in
           let rec find i =
             if i + ml > String.length line then None
             else if String.sub line i ml = marker then Some (i + ml)
             else find (i + 1)
           in
           find 0
         with
         | None -> None
         | Some start ->
             Some
               (parse_directive
                  (String.sub line start (String.length line - start))))

(* Mirrors Bench_common.to_device_auto: the aggregation pass's appended
   buffer parameters, sized from the actual launch configuration. *)
let to_device_auto (aps : (string * Dpopt.Aggregation.auto_param list) list) :
    (string * Device.auto_param list) list =
  List.map
    (fun (k, l) ->
      ( k,
        List.map
          (fun (ap : Dpopt.Aggregation.auto_param) ->
            {
              Device.ap_name = ap.ap_name;
              ap_elems =
                (fun ~grid:(gx, gy, gz) ~block:(bx, by, bz) ->
                  ap.ap_elems ~grid_blocks:(gx * gy * gz)
                    ~block_threads:(bx * by * bz));
            })
          l ))
    aps

(** [run ?cfg ?auto_params prog ds] — execute each directive on a fresh
    device with the sanitizer on; returns all findings (race reports and
    runtime errors, e.g. out-of-bounds), in directive order. Empty means
    clean. *)
let run ?(cfg = Config.test_config) ?(auto_params = []) prog
    (ds : directive list) : string list =
  let cfg = { cfg with Config.check = true } in
  List.concat_map
    (fun d ->
      let dev = Device.create ~cfg () in
      Device.load_program dev prog ~auto_params:(to_device_auto auto_params);
      let args =
        List.map
          (function
            | A_ptr n -> Value.Ptr (Device.alloc dev n ~init:(Value.Int 0))
            | A_int n -> Value.Int n
            | A_float f -> Value.Float f)
          d.dr_args
      in
      match
        Device.launch dev ~kernel:d.dr_kernel ~grid:d.dr_grid
          ~block:d.dr_block ~args;
        ignore (Device.sync dev)
      with
      | () ->
          let m = Device.metrics dev in
          m.Metrics.race_reports
      | exception Value.Runtime_error msg ->
          [ Fmt.str "runtime error in %S: %s" d.dr_kernel msg ])
    ds
