(** Static kernel lints (the static half of dpcheck).

    - [E001] — [__syncthreads] (directly or through a device call) under
      non-block-uniform control flow.
    - [E002] — a warp-scope operation under thread-varying control flow.
    - [E003] — constant index out of bounds for an array of statically
      known size (shared-memory declarations with constant sizes).
    - [W101] — a kernel launch inside a loop body (legal, but immune to
      launch aggregation and a classic launch-congestion source).

    Divergence rules run on [__global__] kernels only — device functions
    are judged at their call sites ({!Minicu.Divergence.Ev_sync_in_call}).
    The analysis is deterministic and diagnostics come out in source
    order, so they can be pinned as golden test expectations. *)

type severity = Error | Warning

type diag = {
  severity : severity;
  code : string;  (** ["E001"].. ["W101"]. *)
  d_loc : Minicu.Loc.t;
  msg : string;
}

val pp_severity : Format.formatter -> severity -> unit

(** Renders ["file:line:col: error[E001]: ..."]. *)
val pp_diag : Format.formatter -> diag -> unit

val is_error : diag -> bool

(** All diagnostics of one function, in source order. *)
val check_func : Minicu.Ast.program -> Minicu.Ast.func -> diag list

(** All diagnostics of the program, in function then source order. *)
val check_program : Minicu.Ast.program -> diag list

(** The [Error]-severity subset. *)
val errors : diag list -> diag list
