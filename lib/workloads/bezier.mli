(** Bezier-line datasets for the BT benchmark (Table I: T0032-C16,
    T2048-C64). Each line is a quadratic Bezier; the kernel derives a
    curvature-driven tessellation point count, which is the per-line nested
    parallelism. *)

type line = {
  p0 : float * float;
  p1 : float * float;
  p2 : float * float;
}

type t = {
  name : string;
  lines : line array;
  max_tessellation : int;
  curvature_scale : float;
}

(** Chord-distance curvature proxy (as in the CUDA sample). *)
val curvature : line -> float

(** Tessellation point count for a line under this dataset's parameters:
    [max 2 (min max_tessellation (curvature * scale))]. *)
val tess_points : t -> line -> int

(** Evaluate the quadratic Bezier at parameter [u] in [0, 1]. *)
val eval : line -> float -> float * float

val generate :
  ?seed:int ->
  name:string ->
  n_lines:int ->
  max_tessellation:int ->
  curvature_scale:float ->
  unit ->
  t

val t0032_c16 : ?n_lines:int -> unit -> t
val t2048_c64 : ?n_lines:int -> unit -> t
