(** Deterministic pseudo-random numbers (splitmix64).

    All dataset generators seed their own generator, so every workload is
    bit-reproducible across runs and machines — tests assert exact outputs
    and the benchmark tables are stable. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] — uniform in [\[0, bound)]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int) (Int64.of_int bound))

(** [float t] — uniform in [\[0, 1)]. *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

(** [bool t p] — true with probability [p]. *)
let bool t p = float t < p

(** [split t] — an independent generator (for parallel-structure datasets). *)
let split t = { state = next_int64 t }

(** [shuffle t a] — in-place Fisher-Yates. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
