(** Bezier-line datasets for the BT benchmark (CUDA samples'
    cdpQuadtree-style Bezier tessellation, Table I datasets T0032-C16 and
    T2048-C64).

    Each line is a quadratic Bezier curve given by three control points. The
    kernel computes a per-line curvature, derives a tessellation point count
    [N = min(max_tess, curvature * k)], and tessellates with [N] child
    threads. The distribution of [N] across lines is the nested-parallelism
    distribution. *)

type line = {
  p0 : float * float;
  p1 : float * float;
  p2 : float * float;
}

type t = {
  name : string;
  lines : line array;
  max_tessellation : int;  (** Upper bound on points per line. *)
  curvature_scale : float;  (** Multiplier from curvature to point count. *)
}

(** Curvature proxy used by the CUDA sample: distance from the middle
    control point to the chord. *)
let curvature (l : line) =
  let x0, y0 = l.p0 and x1, y1 = l.p1 and x2, y2 = l.p2 in
  let dx = x2 -. x0 and dy = y2 -. y0 in
  let len = Float.max 1e-9 (Float.sqrt ((dx *. dx) +. (dy *. dy))) in
  Float.abs (((x1 -. x0) *. dy) -. ((y1 -. y0) *. dx)) /. len

(** Tessellation point count for a line under this dataset's parameters. *)
let tess_points (t : t) (l : line) =
  let c = curvature l in
  max 2 (min t.max_tessellation (int_of_float (c *. t.curvature_scale)))

(** Evaluate the quadratic Bezier at parameter [u]. *)
let eval (l : line) u =
  let x0, y0 = l.p0 and x1, y1 = l.p1 and x2, y2 = l.p2 in
  let v = 1.0 -. u in
  let b0 = v *. v and b1 = 2.0 *. v *. u and b2 = u *. u in
  ( (b0 *. x0) +. (b1 *. x1) +. (b2 *. x2),
    (b0 *. y0) +. (b1 *. y1) +. (b2 *. y2) )

let generate ?(seed = 2022) ~name ~n_lines ~max_tessellation ~curvature_scale
    () : t =
  let rng = Rng.create ~seed in
  let lines =
    Array.init n_lines (fun _ ->
        let pt () = (Rng.float rng *. 100.0, Rng.float rng *. 100.0) in
        { p0 = pt (); p1 = pt (); p2 = pt () })
  in
  { name; lines; max_tessellation; curvature_scale }

(** Table I datasets (line counts scaled down from 20,000; see DESIGN.md). *)

let t0032_c16 ?(n_lines = 600) () =
  generate ~name:"T0032-C16" ~n_lines ~max_tessellation:32
    ~curvature_scale:16.0 ()

let t2048_c64 ?(n_lines = 600) () =
  generate ~name:"T2048-C64" ~n_lines ~max_tessellation:2048
    ~curvature_scale:64.0 ()
