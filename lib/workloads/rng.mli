(** Deterministic pseudo-random numbers (splitmix64). Every workload
    generator seeds its own instance, so datasets are bit-reproducible. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

(** Uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [\[0, 1)]. *)
val float : t -> float

(** True with probability [p]. *)
val bool : t -> float -> bool

(** An independent generator split off [t]. *)
val split : t -> t

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
