(** Random CNF formulas for the SP (survey propagation) benchmark. The
    per-variable clause-occurrence distribution is the nested-parallelism
    distribution: tight and small for RAND-3 (the paper's
    low-nested-parallelism case), skewed for 5-SAT. *)

type t = {
  name : string;
  n_vars : int;
  clauses : int array array;
      (** Each clause: literals [±(v+1)] with distinct variables. *)
}

val n_clauses : t -> int

(** Per-variable clause-occurrence lists. *)
val occurrences : t -> int array array

(** (average, maximum) occurrences per variable. *)
val occurrence_stats : t -> float * int

val generate :
  ?seed:int ->
  name:string ->
  n_vars:int ->
  n_clauses:int ->
  k:int ->
  pick:(Rng.t -> int -> int) ->
  unit ->
  t

(** Uniform random 3-SAT (stands in for random-42000-10000-3). *)
val rand3 : ?n_vars:int -> ?n_clauses:int -> unit -> t

(** Skewed 5-SAT (stands in for the 5-SATISFIABLE competition instance). *)
val sat5 : ?n_vars:int -> ?n_clauses:int -> unit -> t
