(** Synthetic graph generators standing in for the paper's datasets
    (Table I). What matters for the evaluation is the {e degree
    distribution} — it is the distribution of nested-parallelism amounts the
    parent threads see:

    - {!kron}: an RMAT/Kronecker generator matching the heavy-tailed shape
      of [kron_g500-simple-logn16] (some vertices with thousands of
      neighbors, many with few);
    - {!webgraph}: a preferential-attachment web-crawl-like graph standing
      in for [cnr-2000] (power-law, with locality);
    - {!road}: a 2-D grid with diagonal shortcuts standing in for
      [USA-road-d.NY]: average degree ≈ 3, maximum degree ≤ 8, so nested
      parallelism is uniformly tiny (the Section VIII-D experiment). *)

(** RMAT generator (Chakrabarti et al.), the generator behind the Graph500
    Kronecker datasets. [scale] is log2 of the vertex count. *)
let kron ?(seed = 42) ~scale ~edge_factor () : Csr.t =
  let n = 1 lsl scale in
  let m = n * edge_factor in
  let rng = Rng.create ~seed in
  (* Graph500 RMAT parameters *)
  let a = 0.66 and b = 0.15 and c = 0.15 in
  let edges = ref [] in
  for _ = 1 to m do
    let src = ref 0 and dst = ref 0 in
    for bit = scale - 1 downto 0 do
      let r = Rng.float rng in
      if r < a then ()
      else if r < a +. b then dst := !dst lor (1 lsl bit)
      else if r < a +. b +. c then src := !src lor (1 lsl bit)
      else begin
        src := !src lor (1 lsl bit);
        dst := !dst lor (1 lsl bit)
      end
    done;
    let w = 1 + Rng.int rng 63 in
    edges := (!src, !dst, w) :: !edges
  done;
  Csr.symmetrize (Csr.of_edges ~n (List.rev !edges))

(** Preferential-attachment graph with a small attachment window,
    approximating a web crawl's power-law in-degrees with locality. *)
let webgraph ?(seed = 4242) ~n ~edges_per_vertex () : Csr.t =
  let rng = Rng.create ~seed in
  (* Targets chosen preferentially from an endpoint pool. The pool is an
     append-only dynamic array; draws address the prefix that existed when
     the current vertex started, newest entry first — the exact indexing
     (and so the exact graphs, per seed) of the original list-backed pool,
     minus its O(n^2) per-vertex rebuild that dominated large-tier dataset
     generation. *)
  let pool = ref (Array.make 1024 0) in
  let pool_len = ref 0 in
  let push x =
    if !pool_len = Array.length !pool then begin
      let grown = Array.make (2 * !pool_len) 0 in
      Array.blit !pool 0 grown 0 !pool_len;
      pool := grown
    end;
    !pool.(!pool_len) <- x;
    incr pool_len
  in
  (* seed pool [0; 1]: list head 0 = newest, so append in reverse *)
  push 1;
  push 0;
  let edges = ref [ (0, 1, 1); (1, 0, 1) ] in
  for v = 2 to n - 1 do
    let len_v = !pool_len in
    let k = 1 + Rng.int rng (2 * edges_per_vertex) in
    for _ = 1 to k do
      let target =
        if Rng.bool rng 0.2 then Rng.int rng v (* uniform exploration *)
        else !pool.(len_v - 1 - Rng.int rng len_v)
      in
      if target <> v then begin
        let w = 1 + Rng.int rng 63 in
        edges := (v, target, w) :: !edges;
        (* list prepend was [v; target; ...]: append the pair reversed *)
        push target;
        push v
      end
    done
  done;
  Csr.symmetrize (Csr.of_edges ~n (List.rev !edges))

(** Grid road network: [rows * cols] intersections, 4-connected, with a few
    removed streets and occasional diagonal shortcuts. Average degree ≈ 3,
    max degree ≤ 8 — matching the USA-road-d.NY statistics the paper quotes
    in Section VIII-D. *)
let road ?(seed = 777) ~rows ~cols () : Csr.t =
  let rng = Rng.create ~seed in
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let keep = Rng.bool rng 0.85 in
      if c + 1 < cols && keep then begin
        let w = 1 + Rng.int rng 9 in
        edges := (id r c, id r (c + 1), w) :: !edges
      end;
      let keep2 = Rng.bool rng 0.85 in
      if r + 1 < rows && keep2 then begin
        let w = 1 + Rng.int rng 9 in
        edges := (id r c, id (r + 1) c, w) :: !edges
      end;
      if r + 1 < rows && c + 1 < cols && Rng.bool rng 0.05 then begin
        let w = 1 + Rng.int rng 9 in
        edges := (id r c, id (r + 1) (c + 1), w) :: !edges
      end
    done
  done;
  Csr.symmetrize (Csr.of_edges ~n (List.rev !edges))

type named = { name : string; graph : Csr.t; description : string }

(** The graph datasets of Table I (scaled down: MiniCU is interpreted, the
    paper ran natively on a V100 — see DESIGN.md). *)
let kron_dataset ?(scale = 10) () =
  {
    name = "KRON";
    graph = kron ~scale ~edge_factor:16 ();
    description =
      Fmt.str "RMAT scale-%d, heavy-tailed (stands in for kron_g500 logn16)"
        scale;
  }

let cnr_dataset ?(n = 1500) () =
  {
    name = "CNR";
    graph = webgraph ~n ~edges_per_vertex:8 ();
    description =
      Fmt.str "preferential attachment n=%d (stands in for cnr-2000)" n;
  }

let road_dataset ?(rows = 36) ?(cols = 36) () =
  {
    name = "ROAD";
    graph = road ~rows ~cols ();
    description =
      Fmt.str "grid road network %dx%d (stands in for USA-road-d.NY)" rows cols;
  }
