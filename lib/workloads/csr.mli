(** Compressed sparse row graphs — the representation all graph benchmarks
    consume. *)

type t = {
  n : int;
  row : int array;  (** Length [n+1]; edges of [v] are [row.(v)..row.(v+1)-1]. *)
  col : int array;
  weight : int array;  (** Parallel to [col]. *)
}

val m : t -> int
val degree : t -> int -> int
val max_degree : t -> int
val avg_degree : t -> float
val neighbors : t -> int -> int array

(** Build from [(src, dst, weight)] triples, bucketed by source with
    insertion order preserved. @raise Invalid_argument on out-of-range
    endpoints. *)
val of_edges : n:int -> (int * int * int) list -> t

(** Add the reverse of every edge, deduplicated; drops self-loops. *)
val symmetrize : t -> t

(** Sort each adjacency list ascending (weights follow). Required by the
    triangle-counting benchmark's binary search. *)
val sort_neighbors : t -> t

(** Degree-distribution summary ("n=.. m=.. avg_deg=.. max_deg=.."). *)
val stats : Format.formatter -> t -> unit
