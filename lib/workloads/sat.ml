(** Random CNF formulas for the SP (survey propagation) benchmark.

    SP runs message passing on the factor graph between clauses and
    variables. The nested parallelism sits on the variable side: each
    variable's parent thread updates the surveys of all clauses it occurs
    in, so the occurrence-count distribution is the nested-parallelism
    distribution.

    - {!rand3}: uniform random 3-SAT in the style of
      [random-42000-10000-3] — every variable occurs in ≈ [3m/n] clauses,
      and the occurrence distribution is tightly concentrated (binomial), so
      all child grids are small; the paper notes this dataset performs
      poorly under CDP for exactly that reason.
    - {!sat5}: a 5-SAT instance with a skewed variable-choice distribution,
      standing in for the larger 5-SATISFIABLE competition instance, where
      some variables occur in very many clauses. *)

type t = {
  name : string;
  n_vars : int;
  clauses : int array array;
      (** Each clause is an array of literals: [±(v+1)] for variable [v]. *)
}

let n_clauses t = Array.length t.clauses

(** [occurrences t] — for each variable, the clause indices it occurs in. *)
let occurrences t : int array array =
  let occ = Array.make t.n_vars [] in
  Array.iteri
    (fun ci lits ->
      Array.iter
        (fun lit ->
          let v = abs lit - 1 in
          occ.(v) <- ci :: occ.(v))
        lits)
    t.clauses;
  Array.map (fun l -> Array.of_list (List.rev l)) occ

let occurrence_stats t =
  let occ = occurrences t in
  let max_o = Array.fold_left (fun m a -> max m (Array.length a)) 0 occ in
  let total = Array.fold_left (fun s a -> s + Array.length a) 0 occ in
  (float_of_int total /. float_of_int t.n_vars, max_o)

let uniform_var rng n = Rng.int rng n

(* Power-law-ish variable choice: quadratically biased toward low ids. *)
let skewed_var rng n =
  let r = Rng.float rng in
  let x = r *. r in
  min (n - 1) (int_of_float (x *. float_of_int n))

let generate ?(seed = 31337) ~name ~n_vars ~n_clauses ~k ~pick () : t =
  let rng = Rng.create ~seed in
  let clauses =
    Array.init n_clauses (fun _ ->
        let rec distinct acc need =
          if need = 0 then acc
          else
            let v = pick rng n_vars in
            if List.mem v acc then distinct acc need
            else distinct (v :: acc) (need - 1)
        in
        let vars = distinct [] k in
        Array.of_list
          (List.map
             (fun v -> if Rng.bool rng 0.5 then v + 1 else -(v + 1))
             vars))
  in
  { name; n_vars; clauses }

(** Table I datasets (scaled down; original: 10,000 vars / 42,000 clauses). *)

let rand3 ?(n_vars = 700) ?(n_clauses = 2940) () =
  generate ~name:"RAND-3" ~n_vars ~n_clauses ~k:3 ~pick:uniform_var ()

let sat5 ?(n_vars = 800) ?(n_clauses = 6000) () =
  generate ~name:"5-SAT" ~n_vars ~n_clauses ~k:5 ~pick:skewed_var ()
