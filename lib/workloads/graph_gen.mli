(** Synthetic graph generators standing in for the paper's datasets
    (Table I). The degree distribution — the distribution of
    nested-parallelism amounts — is the property being matched; see
    DESIGN.md for the substitution rationale. *)

(** RMAT/Kronecker generator (the Graph500 family behind
    [kron_g500-simple-logn16]), heavy-tailed. [scale] is log2(vertices). *)
val kron : ?seed:int -> scale:int -> edge_factor:int -> unit -> Csr.t

(** Preferential-attachment web-crawl-like graph (stands in for
    [cnr-2000]): power-law degrees. *)
val webgraph : ?seed:int -> n:int -> edges_per_vertex:int -> unit -> Csr.t

(** Grid road network with removed streets and rare diagonals: average
    degree ≈ 3, max ≤ 8, like USA-road-d.NY (Section VIII-D). *)
val road : ?seed:int -> rows:int -> cols:int -> unit -> Csr.t

type named = { name : string; graph : Csr.t; description : string }

val kron_dataset : ?scale:int -> unit -> named
val cnr_dataset : ?n:int -> unit -> named
val road_dataset : ?rows:int -> ?cols:int -> unit -> named
