(** Compressed sparse row graphs — the representation all graph benchmarks
    consume (row offsets + column indices, optional edge weights). *)

type t = {
  n : int;  (** Vertex count. *)
  row : int array;  (** Length [n + 1]; edges of [v] are [row.(v) .. row.(v+1) - 1]. *)
  col : int array;  (** Column (destination) indices. *)
  weight : int array;  (** Edge weights (parallel to [col]); 1s if unweighted. *)
}

let m t = Array.length t.col

let degree t v = t.row.(v + 1) - t.row.(v)

let max_degree t =
  let d = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !d then d := degree t v
  done;
  !d

let avg_degree t = if t.n = 0 then 0.0 else float_of_int (m t) /. float_of_int t.n

(** [neighbors t v] — destination vertices of [v]'s out-edges. *)
let neighbors t v = Array.sub t.col t.row.(v) (degree t v)

(** [of_edges ~n edges] builds a CSR graph from [(src, dst, weight)] triples.
    Edges are bucketed by source; within a source, insertion order is kept. *)
let of_edges ~n (edges : (int * int * int) list) : t =
  let deg = Array.make n 0 in
  List.iter
    (fun (s, d, _) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        invalid_arg (Fmt.str "Csr.of_edges: edge (%d,%d) out of range" s d);
      deg.(s) <- deg.(s) + 1)
    edges;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let m = row.(n) in
  let col = Array.make m 0 and weight = Array.make m 1 in
  let fill = Array.copy row in
  List.iter
    (fun (s, d, w) ->
      col.(fill.(s)) <- d;
      weight.(fill.(s)) <- w;
      fill.(s) <- fill.(s) + 1)
    edges;
  { n; row; col; weight }

(** [symmetrize g] adds the reverse of every edge (deduplicated), yielding an
    undirected graph. *)
let symmetrize (g : t) : t =
  let seen = Hashtbl.create (2 * m g) in
  let edges = ref [] in
  let add s d w =
    if s <> d && not (Hashtbl.mem seen (s, d)) then begin
      Hashtbl.add seen (s, d) ();
      edges := (s, d, w) :: !edges
    end
  in
  for v = 0 to g.n - 1 do
    for e = g.row.(v) to g.row.(v + 1) - 1 do
      add v g.col.(e) g.weight.(e);
      add g.col.(e) v g.weight.(e)
    done
  done;
  of_edges ~n:g.n (List.rev !edges)

(** [sort_neighbors g] sorts each adjacency list ascending (required by the
    triangle-counting benchmark's binary search; weights follow). *)
let sort_neighbors (g : t) : t =
  let col = Array.copy g.col and weight = Array.copy g.weight in
  for v = 0 to g.n - 1 do
    let lo = g.row.(v) and len = degree g v in
    let pairs = Array.init len (fun i -> (col.(lo + i), weight.(lo + i))) in
    Array.sort compare pairs;
    Array.iteri
      (fun i (c, w) ->
        col.(lo + i) <- c;
        weight.(lo + i) <- w)
      pairs
  done;
  { g with col; weight }

(** Degree-distribution summary used to document dataset shape (Table I). *)
let stats ppf (g : t) =
  Fmt.pf ppf "n=%d m=%d avg_deg=%.2f max_deg=%d" g.n (m g) (avg_degree g)
    (max_degree g)
