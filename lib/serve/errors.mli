(** One shared rendering of compile-side failures, used by both CLIs:
    [dpoptc] (exit non-zero with a one-line diagnostic) and [dpoptd]
    (reject the job with the same line in the batch response). Keeping it
    in one place pins the contract that user errors never surface as an
    OCaml backtrace. *)

(** [render ~file exn] — [Some] one-line, loc-bearing diagnostic for the
    recognized user-input failures of compiling [file] (front-end
    {!Minicu.Loc.Error}, {!Minicu.Typecheck.Type_error}, bad CHECK-RUN
    directives, constructs the native backend rejects
    ({!Native.Emit.Unsupported}), [Sys_error] from reading the input);
    [None] for anything
    else (an internal error). Diagnostics lead with ["file:line:col: "]
    when a location is known, ["file: "] otherwise. *)
val render : file:string -> exn -> string option

(** [guard ~file f] — run [f] and return its result, or [Error diag] for
    any exception {!render} recognizes. Internal errors re-raise. *)
val guard : file:string -> (unit -> 'a) -> ('a, string) result

(** [exit_of ~file f] — CLI wrapper: [f ()]'s exit code, or print a
    rendered diagnostic to stderr and return 1, or — for internal errors
    only — print a one-line ["internal error: ..."] (never a backtrace)
    and return 125. *)
val exit_of : file:string -> (unit -> int) -> int
