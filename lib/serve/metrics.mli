(** Service metrics: per-stage cache hit/miss counters and end-to-end
    request latency percentiles. Thread-safe — pool workers record from
    any domain; {!snapshot} takes a consistent copy under the same lock. *)

type t

val create : unit -> t

(** [lookup t ~stage ~hit] — count one cache probe for [stage]
    (["parse"], ["pass:threshold"], ["dpcheck"], ["predict"], ...). *)
val lookup : t -> stage:string -> hit:bool -> unit

(** [latency t dt] — record one request's end-to-end wall time,
    [dt] in seconds. *)
val latency : t -> float -> unit

type stage_counters = { hits : int; misses : int }

type snapshot = {
  stages : (string * stage_counters) list;  (** Sorted by stage name. *)
  lookups : int;  (** Total probes across stages. *)
  hit_rate : float;  (** Hits / lookups; [nan] before any probe. *)
  requests : int;  (** Latencies recorded. *)
  p50_ms : float;  (** {!Harness.Stats.percentile}; [nan] if none. *)
  p90_ms : float;
  p99_ms : float;
}

val snapshot : t -> snapshot

(** Render a snapshot as a JSON object. [extra] prepends additional
    fields, each already-rendered JSON ([("cold_s", "1.25")], ...).
    [nan] values render as [null] (JSON has no nan). *)
val json : ?extra:(string * string) list -> snapshot -> string
