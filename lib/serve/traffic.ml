module Rng = Workloads.Rng

type config = {
  seed : int;
  distinct : int;
  requests : int;
  zipf_s : float;
  burst : int;
  with_profiles : bool;
}

let default =
  {
    seed = 42;
    distinct = 12;
    requests = 200;
    zipf_s = 1.1;
    burst = 32;
    with_profiles = true;
  }

let sample_opts rng =
  let t = Rng.bool rng 0.5 and c = Rng.bool rng 0.5 and a = Rng.bool rng 0.5 in
  let threshold =
    if t then Some [| 16; 32; 64 |].(Rng.int rng 3) else None
  in
  let cfactor = if c then Some [| 2; 4 |].(Rng.int rng 2) else None in
  let granularity =
    if a then
      Some
        (match Rng.int rng 4 with
        | 0 -> Dpopt.Aggregation.Warp
        | 1 -> Dpopt.Aggregation.Block
        | 2 -> Dpopt.Aggregation.Multi_block 4
        | _ -> Dpopt.Aggregation.Grid)
    else None
  in
  let agg_threshold = if a && Rng.bool rng 0.5 then Some 4 else None in
  Dpopt.Pipeline.make ?threshold ?cfactor ?granularity ?agg_threshold ()

let catalog cfg rng : Engine.request array =
  Array.init (max 1 cfg.distinct) (fun _ ->
      let gseed = Rng.int rng 0x3FFFFFFF in
      let case = Difftest.Gen.case_of_seed gseed in
      let rq_profile =
        if cfg.with_profiles && Rng.bool rng 0.7 then
          Some
            (Costmodel.Profile.synthetic ~seed:(Rng.int rng 10_000)
               ~items:(16 + Rng.int rng 256)
               ~mean:(8 + Rng.int rng 120)
               ~skew:(Rng.float rng) ())
        else None
      in
      {
        Engine.rq_file = Fmt.str "gen-%d.cu" gseed;
        rq_src = Difftest.Gen.source case;
        rq_opts = sample_opts rng;
        rq_profile;
      })

(* Zipf over catalog ranks: weight 1/(r+1)^s, sampled by walking the
   cumulative mass. Catalogs are small (tens), so linear walk is fine. *)
let zipf_sampler cfg rng n =
  let w = Array.init n (fun r -> 1.0 /. ((float_of_int (r + 1)) ** cfg.zipf_s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  fun () ->
    let x = Rng.float rng *. total in
    let rec walk r acc =
      if r = n - 1 then r
      else
        let acc = acc +. w.(r) in
        if x < acc then r else walk (r + 1) acc
    in
    walk 0 0.0

let requests cfg =
  let rng = Rng.create ~seed:cfg.seed in
  let cat = catalog cfg rng in
  let pick = zipf_sampler cfg rng (Array.length cat) in
  let burst = max 1 cfg.burst in
  let rec batches remaining =
    if remaining <= 0 then []
    else
      let b = min remaining (1 + Rng.int rng burst) in
      List.init b (fun _ -> cat.(pick ())) :: batches (remaining - b)
  in
  batches (max 0 cfg.requests)

type run = {
  batches : int;
  total : int;
  rejected : int;
  cold_s : float;
  warm_s : float;
  speedup : float;
  identical : bool;
  warm_hit_rate : float;
  snapshot : Metrics.snapshot;
  cache : Lru.stats;
}

let stage_totals (s : Metrics.snapshot) =
  List.fold_left
    (fun (h, n) ((_, c) : string * Metrics.stage_counters) ->
      (h + c.hits, n + c.hits + c.misses))
    (0, 0) s.stages

let replay ?jobs cfg =
  let stream = requests cfg in
  let eng = Engine.create () in
  Harness.Pool.with_pool ?jobs (fun pool ->
      let pass () =
        let t0 = Unix.gettimeofday () in
        let rs = List.map (Engine.compile_batch ~pool eng) stream in
        (Unix.gettimeofday () -. t0, rs)
      in
      let cold_s, cold = pass () in
      let mid = Engine.metrics eng in
      let warm_s, warm = pass () in
      let snapshot = Engine.metrics eng in
      let h0, n0 = stage_totals mid in
      let h1, n1 = stage_totals snapshot in
      let warm_hit_rate =
        if n1 = n0 then nan
        else float_of_int (h1 - h0) /. float_of_int (n1 - n0)
      in
      let rejected =
        List.fold_left
          (List.fold_left (fun n -> function Error _ -> n + 1 | Ok _ -> n))
          0 cold
      in
      {
        batches = List.length stream;
        total = List.fold_left (fun n b -> n + List.length b) 0 stream;
        rejected;
        cold_s;
        warm_s;
        speedup = (if warm_s > 0.0 then cold_s /. warm_s else infinity);
        identical = cold = warm;
        warm_hit_rate;
        snapshot;
        cache = Engine.cache_stats eng;
      })

let json_of_run r =
  let num fmt v =
    if Float.is_nan v || Float.abs v = infinity then "null" else Fmt.str fmt v
  in
  Metrics.json
    ~extra:
      [
        ("requests", string_of_int r.total);
        ("batches", string_of_int r.batches);
        ("rejected", string_of_int r.rejected);
        ("cold_s", num "%.6f" r.cold_s);
        ("warm_s", num "%.6f" r.warm_s);
        ("speedup", num "%.3f" r.speedup);
        ("warm_hit_rate", num "%.4f" r.warm_hit_rate);
        ("identical", string_of_bool r.identical);
        ("cache_entries", string_of_int r.cache.Lru.entries);
        ("cache_bytes", string_of_int r.cache.Lru.bytes);
        ("cache_evictions", string_of_int r.cache.Lru.evictions);
      ]
    r.snapshot
