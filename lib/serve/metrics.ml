type stage_counters = { hits : int; misses : int }

type t = {
  lock : Mutex.t;
  stages : (string, stage_counters) Hashtbl.t;
  mutable latencies : float list;  (** Seconds, most recent first. *)
  mutable requests : int;
}

let create () =
  {
    lock = Mutex.create ();
    stages = Hashtbl.create 16;
    latencies = [];
    requests = 0;
  }

let lookup t ~stage ~hit =
  Mutex.protect t.lock (fun () ->
      let c =
        Option.value
          (Hashtbl.find_opt t.stages stage)
          ~default:{ hits = 0; misses = 0 }
      in
      let c =
        if hit then { c with hits = c.hits + 1 }
        else { c with misses = c.misses + 1 }
      in
      Hashtbl.replace t.stages stage c)

let latency t dt =
  Mutex.protect t.lock (fun () ->
      t.latencies <- dt :: t.latencies;
      t.requests <- t.requests + 1)

type snapshot = {
  stages : (string * stage_counters) list;
  lookups : int;
  hit_rate : float;
  requests : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

let snapshot t =
  let stages, lats, requests =
    Mutex.protect t.lock (fun () ->
        ( Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stages [],
          t.latencies,
          t.requests ))
  in
  let stages =
    List.sort (fun (a, _) (b, _) -> String.compare a b) stages
  in
  let hits, lookups =
    List.fold_left
      (fun (h, n) (_, c) -> (h + c.hits, n + c.hits + c.misses))
      (0, 0) stages
  in
  let ms = List.map (fun s -> s *. 1000.0) lats in
  let pct p = Harness.Stats.percentile ms p in
  {
    stages;
    lookups;
    hit_rate =
      (if lookups = 0 then nan else float_of_int hits /. float_of_int lookups);
    requests;
    p50_ms = pct 0.50;
    p90_ms = pct 0.90;
    p99_ms = pct 0.99;
  }

(* JSON has no nan/infinity; render those as null. *)
let num f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else Fmt.str "%.6g" f

let json ?(extra = []) s =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_string b ", ";
    first := false;
    Buffer.add_string b (Fmt.str "%S: %s" k v)
  in
  List.iter (fun (k, v) -> field k v) extra;
  field "lookups" (string_of_int s.lookups);
  field "hit_rate" (num s.hit_rate);
  field "requests" (string_of_int s.requests);
  field "p50_ms" (num s.p50_ms);
  field "p90_ms" (num s.p90_ms);
  field "p99_ms" (num s.p99_ms);
  let stage_obj (name, c) =
    Fmt.str "%S: {\"hits\": %d, \"misses\": %d}" name c.hits c.misses
  in
  field "stages"
    ("{" ^ String.concat ", " (List.map stage_obj s.stages) ^ "}");
  Buffer.add_char b '}';
  Buffer.contents b
