(** Content-addressed cache keys. See the interface for the scheme. *)

let digest s = Digest.to_hex (Digest.string s)

let source src = digest src

let ast p = digest (Minicu.Pretty.program p)

let profile (p : Costmodel.Profile.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int p.rounds);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int p.parent_block);
  Buffer.add_char b ':';
  Array.iter
    (fun s ->
      Buffer.add_string b (string_of_int s);
      Buffer.add_char b ',')
    p.child_sizes;
  digest (Buffer.contents b)

let stage ~tag parts = tag ^ ":" ^ String.concat "/" parts
