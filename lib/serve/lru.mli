(** Sharded, byte-budgeted LRU cache for the compile service.

    Keys are content digests (strings); values are opaque. The key space
    is split across [shards] independent sub-caches, each guarded by its
    own mutex and holding an equal slice of the byte budget — concurrent
    pool workers compiling different programs rarely contend on a lock,
    and eviction decisions stay local to a shard (a hot shard cannot evict
    another shard's entries). Recency is per shard, classic
    least-recently-used: every {!find} hit moves the entry to the front of
    its shard's list, and an {!add} that pushes a shard past its slice of
    the budget evicts from the back until it fits.

    {b Consistency contract.} Values must be pure functions of their key
    (content-addressed). [add] with a key already present replaces the old
    value — callers racing to compute the same key insert equal values, so
    either insertion order is correct. An entry larger than a whole
    shard's budget is not admitted at all (it would only evict everything
    else and then be evicted itself by the next insert). *)

type 'v t

(** [create ?shards ~bytes ()] — an empty cache holding at most [bytes]
    across [shards] sub-caches (default 8; clamped to at least 1). *)
val create : ?shards:int -> bytes:int -> unit -> 'v t

(** [find t key] — the cached value, promoted to most-recently-used. *)
val find : 'v t -> string -> 'v option

(** [add t ~key ~size v] — insert [v] accounted as [size] bytes (clamped
    to at least 1), evicting least-recently-used entries of the shard as
    needed. Replaces any existing entry for [key]. *)
val add : 'v t -> key:string -> size:int -> 'v -> unit

type stats = {
  entries : int;
  bytes : int;  (** Accounted bytes currently resident. *)
  budget : int;  (** Total byte budget across shards. *)
  insertions : int;
  evictions : int;
}

val stats : 'v t -> stats
