(** Sharded, byte-budgeted LRU. See the interface for the contract.

    Each shard is a hashtable over an intrusive doubly-linked list ordered
    by recency (front = most recent). All shard state is guarded by the
    shard's mutex; cross-shard aggregates ({!stats}) take the shard locks
    one at a time, so they are a consistent-per-shard snapshot, not a
    global atomic one — fine for monitoring, which is their only use. *)

type 'v node = {
  key : string;
  value : 'v;
  size : int;
  mutable prev : 'v node option;  (** Toward the front (more recent). *)
  mutable next : 'v node option;  (** Toward the back (less recent). *)
}

type 'v shard = {
  lock : Mutex.t;
  tbl : (string, 'v node) Hashtbl.t;
  mutable front : 'v node option;
  mutable back : 'v node option;
  mutable bytes : int;
  budget : int;
  mutable insertions : int;
  mutable evictions : int;
}

type 'v t = { shards : 'v shard array }

let create ?(shards = 8) ~bytes () =
  let shards = max 1 shards in
  let slice = max 1 (bytes / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            front = None;
            back = None;
            bytes = 0;
            budget = slice;
            insertions = 0;
            evictions = 0;
          });
  }

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

(* ---- intrusive list plumbing (shard lock held) ---------------------- *)

let unlink sh n =
  (match n.prev with Some p -> p.next <- n.next | None -> sh.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> sh.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front sh n =
  n.prev <- None;
  n.next <- sh.front;
  (match sh.front with Some f -> f.prev <- Some n | None -> sh.back <- Some n);
  sh.front <- Some n

let drop sh n =
  unlink sh n;
  Hashtbl.remove sh.tbl n.key;
  sh.bytes <- sh.bytes - n.size

let evict_to_fit sh =
  while sh.bytes > sh.budget && sh.back <> None do
    match sh.back with
    | Some n ->
        drop sh n;
        sh.evictions <- sh.evictions + 1
    | None -> ()
  done

(* ---- public API ------------------------------------------------------ *)

let find t key =
  let sh = shard_of t key in
  Mutex.protect sh.lock (fun () ->
      match Hashtbl.find_opt sh.tbl key with
      | None -> None
      | Some n ->
          unlink sh n;
          push_front sh n;
          Some n.value)

let add t ~key ~size v =
  let sh = shard_of t key in
  let size = max 1 size in
  Mutex.protect sh.lock (fun () ->
      (match Hashtbl.find_opt sh.tbl key with
      | Some old -> drop sh old
      | None -> ());
      if size <= sh.budget then begin
        let n = { key; value = v; size; prev = None; next = None } in
        Hashtbl.replace sh.tbl key n;
        push_front sh n;
        sh.bytes <- sh.bytes + size;
        sh.insertions <- sh.insertions + 1;
        evict_to_fit sh
      end)

type stats = {
  entries : int;
  bytes : int;
  budget : int;
  insertions : int;
  evictions : int;
}

let stats t =
  Array.fold_left
    (fun acc sh ->
      Mutex.protect sh.lock (fun () ->
          {
            entries = acc.entries + Hashtbl.length sh.tbl;
            bytes = acc.bytes + sh.bytes;
            budget = acc.budget + sh.budget;
            insertions = acc.insertions + sh.insertions;
            evictions = acc.evictions + sh.evictions;
          }))
    { entries = 0; bytes = 0; budget = 0; insertions = 0; evictions = 0 }
    t.shards
