(** The compile engine behind [dpoptd]: the {!Dpopt.Pipeline} replayed as
    content-addressed stages over a shared {!Lru}.

    Stage boundaries and their keys (all via {!Key.stage}):

    - {b parse} — keyed on [digest (file NUL source)]. Value: the
      typechecked AST, its canonical text ({!Minicu.Pretty.program}) and
      that text's digest. The file label is part of the key because the
      AST's locations (and hence every loc-bearing diagnostic downstream)
      embed it.
    - {b pass:<name>} — one entry per enabled pass, keyed on the
      {e canonical} digest of the stage's input program plus the stage's
      {!Dpopt.Pipeline.stage} fingerprint. Textual noise in the submitted
      source cannot split these entries, and a shared T-stage output is
      reused across all option records that agree on the T knobs.
    - {b dpcheck} — static {!Analysis.Static.check_program} diagnostics of
      the input, rendered; keyed like parse (diagnostics carry locations).
    - {b predict} — {!Costmodel} prediction, keyed on the canonical input
      digest, {!Dpopt.Pipeline.fingerprint} of the options, and the
      profile digest.

    Every cached value is a pure function of its key, so cold and warm
    compiles are byte-identical — pinned by the cached-vs-uncached tests
    in [test/test_serve.ml]. *)

type request = {
  rq_file : string;
      (** Label for diagnostics ("job-17", a file name); becomes the
          location file of every parse/type/dpcheck message. *)
  rq_src : string;  (** MiniCU source text. *)
  rq_opts : Dpopt.Pipeline.options;
  rq_profile : Costmodel.Profile.t option;
      (** When present, the response carries a cost-model prediction. *)
}

type response = {
  rs_label : string;  (** {!Dpopt.Pipeline.label} of the options. *)
  rs_optimized : string;  (** Transformed program, pretty-printed. *)
  rs_diags : string list;
      (** Rendered static dpcheck diagnostics of the {e input}. *)
  rs_predicted : float option;
      (** Predicted cycles; [None] without a profile, or when the program
          has no kernel with a device launch site to model. *)
}

type t

(** [create ()] — an engine with a [cache_bytes] LRU budget (default
    64 MiB) split over [shards] (default {!Lru.create}'s). *)
val create : ?shards:int -> ?cache_bytes:int -> unit -> t

(** [compile t rq] — one job. [Error diag] carries the same one-line
    rendering {!Errors.render} gives the [dpoptc] CLI; internal errors
    re-raise. Thread-safe. *)
val compile : t -> request -> (response, string) result

(** [compile_batch ?pool t rqs] — the batch, results in request order
    (deterministic under {!Harness.Pool.run}); sequential without a
    pool. *)
val compile_batch :
  ?pool:Harness.Pool.t -> t -> request list -> (response, string) result list

val metrics : t -> Metrics.snapshot
val cache_stats : t -> Lru.stats
