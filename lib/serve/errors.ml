(* Typecheck prefixes statement-attributed messages with "file:line:col: "
   (see Typecheck.check). Recognize that prefix so the rendered diagnostic
   reads "file:line:col: type error: msg" rather than stacking a second
   "file:" in front of it. *)
let split_loc ~file msg =
  let pfx = file ^ ":" in
  if not (String.starts_with ~prefix:pfx msg) then None
  else
    let n = String.length msg in
    let digits start =
      let j = ref start in
      while !j < n && msg.[!j] >= '0' && msg.[!j] <= '9' do
        incr j
      done;
      if !j > start then Some !j else None
    in
    match digits (String.length pfx) with
    | Some j when j + 1 < n && msg.[j] = ':' -> (
        match digits (j + 1) with
        | Some k when k + 1 < n && msg.[k] = ':' && msg.[k + 1] = ' ' ->
            Some (String.sub msg 0 k, String.sub msg (k + 2) (n - k - 2))
        | _ -> None)
    | _ -> None

let render ~file = function
  | Minicu.Loc.Error (loc, msg) ->
      Some (Fmt.str "%a: error: %s" Minicu.Loc.pp loc msg)
  | Minicu.Typecheck.Type_error msg -> (
      match split_loc ~file msg with
      | Some (loc, rest) -> Some (Fmt.str "%s: type error: %s" loc rest)
      | None -> Some (Fmt.str "%s: type error: %s" file msg))
  | Analysis.Dynamic.Bad_directive msg ->
      Some (Fmt.str "%s: bad CHECK-RUN directive: %s" file msg)
  | Native.Emit.Unsupported (loc, msg) ->
      Some (Fmt.str "%a: native backend: %s" Minicu.Loc.pp loc msg)
  | Sys_error msg ->
      (* Sys_error messages sometimes carry the path ("f: No such file or
         directory") and sometimes don't ("Is a directory", raised by
         [input] after a directory opened fine); always lead with it. *)
      if String.starts_with ~prefix:file msg then
        Some (Fmt.str "error: %s" msg)
      else Some (Fmt.str "%s: error: %s" file msg)
  | _ -> None

let guard ~file f =
  match f () with
  | v -> Ok v
  | exception e -> (
      match render ~file e with Some d -> Error d | None -> raise e)

let exit_of ~file f =
  match f () with
  | code -> code
  | exception e -> (
      match render ~file e with
      | Some diag ->
          Fmt.epr "%s@." diag;
          1
      | None ->
          Fmt.epr "internal error: %s@." (Printexc.to_string e);
          125)
