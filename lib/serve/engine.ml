(* See the interface for the stage/key scheme. The single LRU holds all
   stage kinds behind one variant, so the byte budget is shared and hot
   stages naturally displace cold ones. Sizes are accounting heuristics
   (canonical text length with a factor for the AST), not exact RSS. *)

type entry =
  | Parsed of { ast : Minicu.Ast.program; canon : string; text : string }
  | Staged of { out : Dpopt.Pipeline.stage_output; canon : string; text : string }
  | Checked of string list
  | Predicted of float option

type request = {
  rq_file : string;
  rq_src : string;
  rq_opts : Dpopt.Pipeline.options;
  rq_profile : Costmodel.Profile.t option;
}

type response = {
  rs_label : string;
  rs_optimized : string;
  rs_diags : string list;
  rs_predicted : float option;
}

type t = { cache : entry Lru.t; meter : Metrics.t }

let create ?shards ?(cache_bytes = 64 * 1024 * 1024) () =
  { cache = Lru.create ?shards ~bytes:cache_bytes (); meter = Metrics.create () }

let metrics t = Metrics.snapshot t.meter
let cache_stats t = Lru.stats t.cache

(* One probe-or-compute round trip: the only place hits/misses and
   insertions happen, so the counters cannot drift from the cache. *)
let memo t ~stage ~key ~size compute =
  match Lru.find t.cache key with
  | Some v ->
      Metrics.lookup t.meter ~stage ~hit:true;
      v
  | None ->
      Metrics.lookup t.meter ~stage ~hit:false;
      let v = compute () in
      Lru.add t.cache ~key ~size:(size v) v;
      v

let entry_size = function
  | Parsed { text; _ } -> 256 + (4 * String.length text)
  | Staged { text; _ } -> 256 + (5 * String.length text)
  | Checked diags ->
      List.fold_left (fun n d -> n + String.length d) 64 diags
  | Predicted _ -> 64

(* Stage keys. The parse (and dpcheck) key covers the file label because
   the cached values embed it in locations; see the interface. *)
let src_key ~file ~src = Digest.to_hex (Digest.string (file ^ "\x00" ^ src))

let parse_stage t ~file ~src =
  let key = Key.stage ~tag:"parse" [ src_key ~file ~src ] in
  match
    memo t ~stage:"parse" ~key ~size:entry_size (fun () ->
        let ast = Minicu.Parser.program ~file src in
        Minicu.Typecheck.check ast;
        let text = Minicu.Pretty.program ast in
        Parsed { ast; canon = Digest.to_hex (Digest.string text); text })
  with
  | Parsed { ast; canon; text } -> (ast, canon, text)
  | _ -> assert false (* tags keep stage key spaces disjoint *)

let pass_stage t ~canon_in (st : Dpopt.Pipeline.stage) prog =
  let key =
    Key.stage ~tag:"pass" [ canon_in; st.st_name; st.st_fingerprint ]
  in
  match
    memo t ~stage:("pass:" ^ st.st_name) ~key ~size:entry_size (fun () ->
        let out = st.st_apply prog in
        let text = Minicu.Pretty.program out.so_prog in
        Staged { out; canon = Digest.to_hex (Digest.string text); text })
  with
  | Staged { out; canon; text } -> (out, canon, text)
  | _ -> assert false

let dpcheck_stage t ~file ~src ast =
  let key = Key.stage ~tag:"dpcheck" [ src_key ~file ~src ] in
  match
    memo t ~stage:"dpcheck" ~key ~size:entry_size (fun () ->
        Checked
          (List.map
             (Fmt.str "%a" Analysis.Static.pp_diag)
             (Analysis.Static.check_program ast)))
  with
  | Checked diags -> diags
  | _ -> assert false

let predict_stage t ~canon ast opts profile =
  let key =
    Key.stage ~tag:"predict"
      [ canon; Dpopt.Pipeline.fingerprint opts; Key.profile profile ]
  in
  match
    memo t ~stage:"predict" ~key ~size:entry_size (fun () ->
        Predicted
          (match
             List.find_opt
               (fun (f : Minicu.Ast.func) ->
                 f.f_kind = Minicu.Ast.Global
                 && Minicu.Ast_util.launch_sites f.f_body <> [])
               ast
           with
          | None -> None
          | Some parent ->
              let f =
                Costmodel.Feature.extract ~prog:ast
                  ~parent_kernel:parent.f_name ~profile ~opts:opts ()
              in
              Some (Costmodel.Model.predict Costmodel.Table.current f)))
  with
  | Predicted p -> p
  | _ -> assert false

let compile t rq =
  let t0 = Unix.gettimeofday () in
  let r =
    Errors.guard ~file:rq.rq_file (fun () ->
        let ast, canon0, text0 = parse_stage t ~file:rq.rq_file ~src:rq.rq_src in
        let diags = dpcheck_stage t ~file:rq.rq_file ~src:rq.rq_src ast in
        let predicted =
          match rq.rq_profile with
          | None -> None
          | Some p -> predict_stage t ~canon:canon0 ast rq.rq_opts p
        in
        let _, _, optimized =
          List.fold_left
            (fun (prog, canon, _) st ->
              let out, canon', text = pass_stage t ~canon_in:canon st prog in
              (out.Dpopt.Pipeline.so_prog, canon', text))
            (ast, canon0, text0)
            (Dpopt.Pipeline.stages rq.rq_opts)
        in
        {
          rs_label = Dpopt.Pipeline.label rq.rq_opts;
          rs_optimized = optimized;
          rs_diags = diags;
          rs_predicted = predicted;
        })
  in
  Metrics.latency t.meter (Unix.gettimeofday () -. t0);
  r

let compile_batch ?pool t rqs =
  let rqs = Array.of_list rqs in
  let job i = compile t rqs.(i) in
  match pool with
  | Some p -> Array.to_list (Harness.Pool.run p job (Array.length rqs))
  | None -> List.init (Array.length rqs) job
