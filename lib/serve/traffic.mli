(** Deterministic synthetic traffic for [dpoptd]: a catalog of distinct
    jobs drawn from the {!Difftest.Gen} corpus, replayed as a
    zipf-distributed, bursty request stream. Everything — program seeds,
    option records, profiles, ranks, burst boundaries — derives from one
    {!Workloads.Rng} seed, so a run is replayed exactly by its seed. *)

type config = {
  seed : int;
  distinct : int;  (** Catalog size: distinct (program, opts, profile) jobs. *)
  requests : int;  (** Total requests across the stream. *)
  zipf_s : float;
      (** Zipf exponent: rank [r] (0-based) is drawn with weight
          [1 / (r+1)^s]. [0.] = uniform; larger = hotter head. *)
  burst : int;  (** Max batch size; batches are 1..[burst] requests. *)
  with_profiles : bool;  (** Attach synthetic cost-model profiles. *)
}

(** seed 42, 12 distinct, 200 requests, s = 1.1, bursts of ≤ 32,
    profiles on. *)
val default : config

(** The request stream, partitioned into bursts. Catalog files are named
    ["gen-<generative seed>.cu"]. *)
val requests : config -> Engine.request list list

type run = {
  batches : int;
  total : int;  (** Requests replayed per pass. *)
  rejected : int;  (** [Error] responses (0 for Gen-corpus traffic). *)
  cold_s : float;  (** Wall time of the first (cold-cache) pass. *)
  warm_s : float;  (** Wall time of the identical second pass. *)
  speedup : float;  (** [cold_s /. warm_s]. *)
  identical : bool;  (** Warm responses byte-equal to cold ones. *)
  warm_hit_rate : float;  (** Cache hit rate of the warm pass alone. *)
  snapshot : Metrics.snapshot;  (** Engine metrics after both passes. *)
  cache : Lru.stats;
}

(** [replay ?jobs cfg] — drive a fresh engine through the stream twice
    (cold, then warm) on a [jobs]-wide pool and report. *)
val replay : ?jobs:int -> config -> run

(** {!Metrics.json} of the run: the snapshot plus [cold_s], [warm_s],
    [speedup], [warm_hit_rate], [identical], [requests] fields — the
    [BENCH_serve.json] schema (see README). *)
val json_of_run : run -> string
