(** Content-addressed cache keys for the compile service.

    Every stage boundary of the pipeline is memoized under a key derived
    from (a) a digest of the {e canonical} program text — the
    pretty-printed AST, so textual noise (whitespace, comments, redundant
    parentheses) in the submitted source cannot split cache entries — and
    (b) a canonical fingerprint of the options that affect the stage
    ({!Dpopt.Pipeline.fingerprint}), so semantically-equal option records
    cannot split entries either. Keys embed a stage tag, so stages can
    never alias each other even when their content digests coincide. *)

(** [source src] — digest of raw source text, keying the parse stage
    (parsing is a function of the bytes alone). *)
val source : string -> string

(** [ast p] — digest of the canonical pretty-printed rendering of [p].
    Two structurally equal programs always agree; programs differing only
    in statement locations agree too (locations are not printed). *)
val ast : Minicu.Ast.program -> string

(** [profile p] — digest of a canonical rendering of a workload profile
    (child sizes, rounds, parent block). *)
val profile : Costmodel.Profile.t -> string

(** [stage ~tag parts] — the final cache key: [tag] plus the
    ["/"]-joined parts. Tags keep stage key spaces disjoint. *)
val stage : tag:string -> string list -> string
