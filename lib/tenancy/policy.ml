(** Admission/scheduling policies for the shared device.

    The tenancy scheduler ({!Sim}) holds a bounded number of admission
    slots; when a slot is free and tenants have jobs waiting, the policy
    picks which tenant's head-of-queue job is admitted next:

    - {!Fifo}: global arrival order, tenant-blind.
    - {!Round_robin}: cycle through tenants with waiting work.
    - {!Fair}: weighted fair share — admit the tenant with the least
      admitted work per unit weight, so a heavyweight tenant cannot
      monopolize the device.
    - {!Priority}: strict priority by tenant id (lower id wins) with
      {e backpressure}: a tenant with [bound] jobs already in flight has
      further submissions stalled — left waiting in its queue — rather
      than dropped, and the slot goes to the next eligible tenant.

    Policies are pure decision rules over the snapshot the scheduler
    passes in; the mutable cursor/served-work bookkeeping lives in
    {!state}, owned by one simulation run. *)

type t =
  | Fifo
  | Round_robin
  | Fair of float array option
      (** Per-tenant weights; [None] = equal shares. *)
  | Priority of { bound : int }
      (** Per-tenant in-flight cap; must be positive. *)

let to_string = function
  | Fifo -> "fifo"
  | Round_robin -> "rr"
  | Fair None -> "fair"
  | Fair (Some ws) ->
      Fmt.str "fair:%s"
        (String.concat ","
           (Array.to_list (Array.map (Fmt.str "%g") ws)))
  | Priority { bound } -> Fmt.str "priority:%d" bound

let pp ppf p = Fmt.string ppf (to_string p)

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let prefixed p =
    if String.starts_with ~prefix:p s then
      Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match s with
  | "fifo" -> Ok Fifo
  | "rr" | "round-robin" | "round_robin" -> Ok Round_robin
  | "fair" -> Ok (Fair None)
  | "priority" -> Ok (Priority { bound = 2 })
  | _ -> (
      match prefixed "fair:" with
      | Some rest -> (
          let parts = String.split_on_char ',' rest in
          match
            List.map
              (fun p ->
                match float_of_string_opt (String.trim p) with
                | Some w when w > 0.0 -> w
                | _ -> raise Exit)
              parts
          with
          | ws -> Ok (Fair (Some (Array.of_list ws)))
          | exception Exit ->
              Error (Fmt.str "fair:<w,...> needs positive weights, got %S" s))
      | None -> (
          match prefixed "priority:" with
          | Some rest -> (
              match int_of_string_opt (String.trim rest) with
              | Some b when b > 0 -> Ok (Priority { bound = b })
              | _ ->
                  Error
                    (Fmt.str "priority:<bound> needs a positive integer, got %S"
                       s))
          | None ->
              Error
                (Fmt.str
                   "unknown policy %S (fifo | rr | fair[:w,..] | \
                    priority[:bound])"
                   s)))

type state = {
  mutable rr_cursor : int;
  served : float array;  (** Admitted work per tenant (fair-share ledger). *)
}

let init (p : t) ~tenants =
  (match p with
  | Fair (Some ws) when Array.length ws <> tenants ->
      invalid_arg
        (Fmt.str "Policy: fair weights arity %d does not match %d tenants"
           (Array.length ws) tenants)
  | Priority { bound } when bound <= 0 ->
      invalid_arg "Policy: priority bound must be positive"
  | _ -> ());
  { rr_cursor = 0; served = Array.make tenants 0.0 }

(** One waiting tenant's head-of-queue summary, as the scheduler sees it. *)
type candidate = {
  cd_tenant : int;
  cd_global : int;  (** [Traffic.jb_global] of the head job. *)
  cd_inflight : int;  (** The tenant's jobs currently admitted. *)
}

(** [select p st cands] — the tenant whose head job is admitted into the
    free slot, or [None] to leave the slot idle (only {!Priority}
    backpressure does this: every waiting tenant is at its in-flight
    bound, so submissions stall until a completion). [cands] must be
    sorted by tenant id; ties everywhere break toward the lower tenant,
    keeping selection deterministic. *)
let select (p : t) (st : state) (cands : candidate list) : int option =
  match (p, cands) with
  | _, [] -> None
  | Fifo, _ ->
      let best =
        List.fold_left
          (fun acc c ->
            match acc with
            | Some b when b.cd_global <= c.cd_global -> acc
            | _ -> Some c)
          None cands
      in
      Option.map (fun c -> c.cd_tenant) best
  | Round_robin, _ ->
      let n = Array.length st.served in
      let rec scan k =
        if k = n then None
        else
          let t = (st.rr_cursor + k) mod n in
          match List.find_opt (fun c -> c.cd_tenant = t) cands with
          | Some c -> Some c.cd_tenant
          | None -> scan (k + 1)
      in
      scan 0
  | Fair ws, _ ->
      let weight t = match ws with None -> 1.0 | Some w -> w.(t) in
      let best =
        List.fold_left
          (fun acc c ->
            let share = st.served.(c.cd_tenant) /. weight c.cd_tenant in
            match acc with
            | Some (bs, _) when bs <= share -> acc
            | _ -> Some (share, c.cd_tenant))
          None cands
      in
      Option.map snd best
  | Priority { bound }, _ ->
      List.find_opt (fun c -> c.cd_inflight < bound) cands
      |> Option.map (fun c -> c.cd_tenant)

(** Record an admission: advances the round-robin cursor past [tenant] and
    charges [work] to its fair-share ledger. *)
let admitted (st : state) ~tenant ~work =
  st.rr_cursor <- (tenant + 1) mod Array.length st.served;
  st.served.(tenant) <- st.served.(tenant) +. work
