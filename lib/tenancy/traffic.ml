(** Seed-deterministic multi-tenant traffic: per-tenant job streams with a
    zipf-skewed tenant mix, bursty arrivals and staggered starts (the same
    shapes {e lib/serve}'s compile-service traffic uses, retargeted at
    device work). All randomness comes from splitmix64 generators derived
    from the one seed, so a config is a pure description of its traffic:
    equal configs produce byte-identical job lists. *)

module Rng = Workloads.Rng

type config = {
  seed : int;
  tenants : int;
  jobs_per_tenant : int;
  parents : int;  (** Parent work items per job. *)
  zipf_s : float;
      (** Tenant heaviness skew: tenant [t]'s child sizes scale with
          [1/(t+1)^s], so tenant 0 is the heavyweight. 0 = uniform. *)
  burst : int;  (** Jobs submitted back-to-back per burst. *)
  burst_gap : float;  (** Cycles between a tenant's bursts. *)
  stagger : float;  (** Arrival offset between consecutive tenants. *)
  max_deg : int;  (** Largest child size (heaviest tenant). *)
}

let default =
  {
    seed = 42;
    tenants = 4;
    jobs_per_tenant = 6;
    parents = 64;
    zipf_s = 0.8;
    burst = 3;
    burst_gap = 30_000.0;
    stagger = 2_500.0;
    max_deg = 96;
  }

type job = {
  jb_tenant : int;
  jb_seq : int;  (** Dense per-tenant index, submission order. *)
  jb_global : int;  (** Dense rank in global arrival order (FIFO key). *)
  jb_arrival : float;
  jb_degs : int array;  (** Child size per parent work item. *)
}

let work (j : job) =
  float_of_int (Array.fold_left ( + ) 0 j.jb_degs)

let validate cfg =
  if cfg.tenants <= 0 then invalid_arg "Traffic: tenants must be positive";
  if cfg.jobs_per_tenant <= 0 then
    invalid_arg "Traffic: jobs_per_tenant must be positive";
  if cfg.parents <= 0 then invalid_arg "Traffic: parents must be positive";
  if cfg.max_deg <= 0 then invalid_arg "Traffic: max_deg must be positive";
  if cfg.burst <= 0 then invalid_arg "Traffic: burst must be positive"

(** [jobs cfg] — every tenant's job stream, merged and sorted by arrival
    (ties in tenant order), with [jb_global] reflecting that order. *)
let jobs cfg : job list =
  validate cfg;
  let root = Rng.create ~seed:cfg.seed in
  (* one independent generator per tenant, split in tenant order so a
     tenant's stream does not depend on how many others there are *)
  let rngs = Array.init cfg.tenants (fun _ -> Rng.split root) in
  let weight t = 1.0 /. ((float_of_int (t + 1)) ** cfg.zipf_s) in
  let raw =
    List.concat
      (List.init cfg.tenants (fun t ->
           let rng = rngs.(t) in
           let scale =
             max 2 (int_of_float (weight t *. float_of_int cfg.max_deg))
           in
           List.init cfg.jobs_per_tenant (fun seq ->
               let b = seq / cfg.burst in
               let jitter = Rng.float rng *. (cfg.burst_gap /. 10.0) in
               let arrival =
                 (cfg.stagger *. float_of_int t)
                 +. (cfg.burst_gap *. float_of_int b)
                 +. jitter
               in
               let degs =
                 Array.init cfg.parents (fun _ -> 1 + Rng.int rng scale)
               in
               {
                 jb_tenant = t;
                 jb_seq = seq;
                 jb_global = 0;
                 jb_arrival = arrival;
                 jb_degs = degs;
               })))
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        compare (a.jb_arrival, a.jb_tenant, a.jb_seq)
          (b.jb_arrival, b.jb_tenant, b.jb_seq))
      raw
  in
  List.mapi (fun i j -> { j with jb_global = i }) sorted

(** One tenant's jobs, original arrival times, for the isolated runs the
    slowdown metric compares against. *)
let isolate tenant js = List.filter (fun j -> j.jb_tenant = tenant) js
