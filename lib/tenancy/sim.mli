(** The multi-tenant device simulation: N host streams submitting
    {!Traffic} jobs to one shared {!Gpusim.Sched} under an admission
    {!Policy}. Fully deterministic: repeated runs of one (config, policy,
    slots, traffic) are byte-identical. *)

type cell = {
  sm_cfg : Gpusim.Config.t;
  policy : Policy.t;
  slots : int;  (** Concurrent admitted jobs, device-wide. *)
}

type job_result = {
  jr_tenant : int;
  jr_seq : int;
  jr_arrival : float;
  jr_admit : float;  (** When the policy admitted it (>= arrival). *)
  jr_finish : float;
}

(** Finish minus arrival: what the tenant observed. *)
val latency : job_result -> float

type tenant_totals = {
  tt_tenant : int;
  tt_grids : int;
  tt_host_launches : int;
  tt_device_launches : int;
  tt_launch_cycles : float;
  tt_max_pending : int;
}

type run = {
  rn_jobs : job_result list;  (** Sorted by (tenant, seq). *)
  rn_totals : tenant_totals list;  (** Sorted by tenant; all tenants. *)
  rn_makespan : float;
  rn_mem_hash : int;  (** Order-sensitive hash of the full memory image. *)
}

(** [run cell ~tenants app jobs] — drive [jobs] (any subset of a
    [tenants]-tenant traffic, e.g. one tenant's isolated stream) through
    one shared device loaded with [app] on every stream.
    @raise Invalid_argument if [slots] or [tenants] is not positive. *)
val run : cell -> tenants:int -> App.compiled -> Traffic.job list -> run

(** Launch-queue wait attribution for one tenant: launch cycles minus the
    unavoidable per-launch latencies; what remains is queueing behind the
    shared grid-management unit. *)
val queue_wait : Gpusim.Config.t -> tenant_totals -> float
