(** Admission policies for the shared device: who gets the next free
    admission slot. See {!Sim} for the scheduler that consults them. *)

type t =
  | Fifo  (** Global arrival order, tenant-blind. *)
  | Round_robin  (** Cycle through tenants with waiting work. *)
  | Fair of float array option
      (** Weighted fair share (least admitted work per unit weight);
          [None] = equal weights. *)
  | Priority of { bound : int }
      (** Strict priority by tenant id, with backpressure: a tenant at
          [bound] in-flight jobs has submissions stalled, not dropped. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parses ["fifo"], ["rr"], ["fair"], ["fair:1,2,1"], ["priority"]
    (bound 2), ["priority:<bound>"]. *)
val of_string : string -> (t, string) result

(** Mutable per-run bookkeeping (round-robin cursor, fair-share ledger). *)
type state

(** @raise Invalid_argument on a weights/tenant-count mismatch or a
    non-positive priority bound. *)
val init : t -> tenants:int -> state

type candidate = {
  cd_tenant : int;
  cd_global : int;  (** [Traffic.jb_global] of the tenant's head job. *)
  cd_inflight : int;  (** The tenant's jobs currently admitted. *)
}

(** [select p st cands] — the tenant admitted into the free slot, or
    [None] to stall (priority backpressure: all waiting tenants at their
    bound). [cands] must be sorted by tenant id; all ties break toward
    the lower tenant. *)
val select : t -> state -> candidate list -> int option

(** Record an admission (cursor advance + fair-share charge). *)
val admitted : state -> tenant:int -> work:float -> unit
