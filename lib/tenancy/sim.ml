(** The multi-tenant device simulation: N host streams submitting jobs to
    one shared {!Gpusim.Sched}, under an admission policy.

    The scheduler interleaves two deterministic event sources:

    - the {e device}: block events inside {!Gpusim.Sched}, advanced with
      {!Gpusim.Sched.step};
    - the {e hosts}: a decision queue holding every job arrival up front,
      plus job completions as they are discovered.

    The invariant is strict merge order: the device is stepped only while
    its next event is due no later than the next host decision, so a
    completion at cycle 90,000 discovered while stepping toward it can
    never delay an arrival at cycle 50,000 — and every admission happens
    at its decision's timestamp. Completions are harvested after each
    step: a job whose {!Gpusim.Sched.job.j_open_grids} count returned to
    zero finished at [j_finish], which frees its admission slot {e at that
    time} (a decision pushed back into the queue, ordered like any other).

    Both queues break ties in insertion order, all tenant scans are in
    ascending tenant id, and memory is allocated in admission order, so a
    run is a pure function of (config, policy, slots, traffic): repeated
    runs are byte-identical, whatever the host parallelism around them. *)

open Gpusim

type cell = {
  sm_cfg : Config.t;
  policy : Policy.t;
  slots : int;  (** Concurrent admitted jobs, device-wide. *)
}

type job_result = {
  jr_tenant : int;
  jr_seq : int;
  jr_arrival : float;
  jr_admit : float;  (** When the policy admitted it (>= arrival). *)
  jr_finish : float;
}

let latency jr = jr.jr_finish -. jr.jr_arrival

(** Per-tenant launch-subsystem totals, copied out of the stream metrics
    (plain data, safe to ship across domains). *)
type tenant_totals = {
  tt_tenant : int;
  tt_grids : int;
  tt_host_launches : int;
  tt_device_launches : int;
  tt_launch_cycles : float;
  tt_max_pending : int;
}

type run = {
  rn_jobs : job_result list;  (** Sorted by (tenant, seq). *)
  rn_totals : tenant_totals list;  (** Sorted by tenant; all tenants. *)
  rn_makespan : float;
  rn_mem_hash : int;  (** Order-sensitive hash of the full memory image. *)
}

(* ---- memory fingerprint ---- *)

let mix acc x = (acc lxor x) * 0x100000001B3 land max_int

let hash_value acc : Value.t -> int = function
  | Value.Unit -> mix acc 1
  | Value.Int i -> mix (mix acc 2) i
  | Value.Float f -> mix (mix acc 3) (Int64.to_int (Int64.bits_of_float f))
  | Value.Bool b -> mix (mix acc 4) (Bool.to_int b)
  | Value.Dim3 (x, y, z) -> mix (mix (mix (mix acc 5) x) y) z
  | Value.Ptr p -> mix (mix (mix acc 6) p.Value.buf) p.Value.off

let memory_hash mem =
  List.fold_left
    (fun acc buf -> Array.fold_left hash_value (mix acc 7) buf)
    0x811C9DC5
    (Memory.dump mem ~first:(Memory.buffer_count mem))

(* ---- the simulation ---- *)

type decision = Arrive of Traffic.job | Complete of int  (** tenant *)

type active = {
  ac_job : Traffic.job;
  ac_sched : Sched.job;
  ac_admit : float;
}

(** [run cell ~tenants app jobs] — drive [jobs] (any subset of a
    [tenants]-tenant traffic, e.g. one tenant's isolated stream) through
    one shared device loaded with [app] on every stream.
    @raise Invalid_argument if [cell.slots] or [tenants] is not positive. *)
let run (cell : cell) ~tenants (app : App.compiled) (jobs : Traffic.job list) :
    run =
  if cell.slots <= 0 then invalid_arg "Sim.run: slots must be positive";
  if tenants <= 0 then invalid_arg "Sim.run: tenants must be positive";
  let mem = Memory.create () in
  let metrics = Metrics.create () in
  let sched = Sched.create cell.sm_cfg mem metrics in
  (* one stream per tenant, in tenant order (stream id = tenant + 1), so
     isolated and shared runs of the same tenant agree on stream layout *)
  let streams =
    Array.init tenants (fun _ ->
        let s = Sched.new_stream sched in
        Sched.load_stream sched s app.prog;
        s)
  in
  let kernels =
    Array.map (fun s -> Sched.resolve_kernel s App.parent_kernel) streams
  in
  let decisions = Event_queue.create () in
  List.iter (fun j -> Event_queue.push decisions j.Traffic.jb_arrival (Arrive j)) jobs;
  let waiting = Array.init tenants (fun _ -> Queue.create ()) in
  let inflight = Array.make tenants 0 in
  let free_slots = ref cell.slots in
  let pstate = Policy.init cell.policy ~tenants in
  let actives = ref [] in
  let results = ref [] in

  let admit (j : Traffic.job) ~now =
    let t = j.jb_tenant in
    let stream = streams.(t) and kernel = kernels.(t) in
    let n = Array.length j.jb_degs in
    let total = Array.fold_left ( + ) 0 j.jb_degs in
    let off = Array.make n 0 in
    for i = 1 to n - 1 do
      off.(i) <- off.(i - 1) + j.jb_degs.(i - 1)
    done;
    let alloc_ints a =
      let p = Memory.alloc mem (Array.length a) ~init:(Value.Int 0) in
      Memory.write_ints mem p a;
      Value.Ptr p
    in
    let d_deg = alloc_ints j.jb_degs in
    let d_off = alloc_ints off in
    let d_out = Value.Ptr (Memory.alloc mem (max 1 total) ~init:(Value.Int 0)) in
    let grid, block = App.parent_launch ~n in
    let autos =
      match List.assoc_opt App.parent_kernel app.auto_params with
      | None -> []
      | Some specs ->
          let (gx, gy, gz), (bx, by, bz) = (grid, block) in
          List.map
            (fun (ap : Dpopt.Aggregation.auto_param) ->
              let elems =
                ap.ap_elems ~grid_blocks:(gx * gy * gz)
                  ~block_threads:(bx * by * bz)
              in
              Value.Ptr (Memory.alloc mem elems ~init:(Value.Int 0)))
            specs
    in
    let args = [ d_deg; d_off; d_out; Value.Int n ] @ autos in
    let expected = Sched.kernel_nparams kernel in
    if List.length args <> expected then
      Value.error "tenancy launch of %S: expected %d arguments, got %d"
        App.parent_kernel expected (List.length args);
    let sjob = Sched.make_job ~tenant:t ~id:j.jb_global in
    let ready = Sched.process_host_launch sched stream ~issue:now in
    Sched.launch_grid sched stream ~issue:now ~from_host:true ~job:sjob
      ~kernel ~grid ~block ~args ~ready ~default_idx:Metrics.tag_parent;
    inflight.(t) <- inflight.(t) + 1;
    decr free_slots;
    actives := { ac_job = j; ac_sched = sjob; ac_admit = now } :: !actives
  in

  (* a finished job (open-grid count back to zero) releases its slot at
     its finish time — a decision like any other, so admissions it
     enables happen at the right simulated moment *)
  let harvest () =
    let done_, live =
      List.partition (fun a -> a.ac_sched.Sched.j_open_grids = 0) !actives
    in
    actives := live;
    List.iter
      (fun a ->
        let j = a.ac_job in
        results :=
          {
            jr_tenant = j.jb_tenant;
            jr_seq = j.jb_seq;
            jr_arrival = j.jb_arrival;
            jr_admit = a.ac_admit;
            jr_finish = a.ac_sched.j_finish;
          }
          :: !results;
        Event_queue.push decisions a.ac_sched.j_finish (Complete j.jb_tenant))
      done_
  in

  let try_admit ~now =
    let continue = ref true in
    while !continue && !free_slots > 0 do
      let cands =
        Array.to_list
          (Array.mapi
             (fun t q ->
               if Queue.is_empty q then None
               else
                 Some
                   {
                     Policy.cd_tenant = t;
                     cd_global = (Queue.peek q).Traffic.jb_global;
                     cd_inflight = inflight.(t);
                   })
             waiting)
        |> List.filter_map Fun.id
      in
      match Policy.select cell.policy pstate cands with
      | None -> continue := false
      | Some t ->
          let j = Queue.pop waiting.(t) in
          Policy.admitted pstate ~tenant:t ~work:(Traffic.work j);
          admit j ~now
    done
  in

  let process_decisions_at td =
    let rec drain () =
      match Event_queue.peek_time decisions with
      | Some t when t = td ->
          (match snd (Event_queue.pop decisions) with
          | Arrive j -> Queue.add j waiting.(j.jb_tenant)
          | Complete t ->
              inflight.(t) <- inflight.(t) - 1;
              incr free_slots);
          drain ()
      | _ -> ()
    in
    drain ();
    try_admit ~now:td
  in

  let rec loop () =
    match (Event_queue.peek_time decisions, Sched.next_event_time sched) with
    | None, None -> ()
    | Some td, Some te when te <= td ->
        Sched.step sched;
        harvest ();
        loop ()
    | Some td, _ ->
        process_decisions_at td;
        loop ()
    | None, Some _ ->
        Sched.step sched;
        harvest ();
        loop ()
  in
  loop ();
  let makespan = Sched.run_to_idle sched in
  let totals =
    Array.to_list
      (Array.mapi
         (fun t (s : Sched.stream) ->
           let m = s.st_metrics in
           {
             tt_tenant = t;
             tt_grids = m.grids_launched;
             tt_host_launches = m.host_launches;
             tt_device_launches = m.device_launches;
             tt_launch_cycles = m.breakdown.launch_cycles;
             tt_max_pending = m.max_pending_launches;
           })
         streams)
  in
  {
    rn_jobs =
      List.sort
        (fun a b -> compare (a.jr_tenant, a.jr_seq) (b.jr_tenant, b.jr_seq))
        !results;
    rn_totals = totals;
    rn_makespan = makespan;
    rn_mem_hash = memory_hash mem;
  }

(** Launch-queue wait attribution for one tenant: the launch cycles its
    metrics accumulated minus the unavoidable per-launch latencies — what
    remains is pure queueing behind the shared grid-management unit
    (other tenants' launches included). *)
let queue_wait (cfg : Config.t) (tt : tenant_totals) =
  let w =
    tt.tt_launch_cycles
    -. (float_of_int tt.tt_host_launches
       *. float_of_int cfg.host_launch_latency)
    -. (float_of_int tt.tt_device_launches
       *. float_of_int
            (cfg.launch_service_interval + cfg.device_launch_latency))
  in
  (* each term is (issue + latency) -. issue, so the attribution carries
     sub-cycle float noise; a wait below one thousandth of a cycle is
     zero, not a negative residue *)
  if Float.abs w < 1e-3 then 0.0 else w
