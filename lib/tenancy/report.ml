(** Per-tenant observability and the congestion-under-tenancy experiment.

    For each pipeline (baseline CDP vs the optimized T+C+A treatment) the
    experiment runs the shared multi-tenant cell plus one isolated run per
    tenant (that tenant's jobs alone, original arrival times) and derives:

    - per-tenant p50/p90/p99/mean job latency;
    - {e slowdown}: mean pairwise shared/isolated latency ratio
      ({!Harness.Stats.slowdown}) — the interference each tenant suffered;
    - {e Jain fairness} over per-tenant [1/slowdown]
      ({!Harness.Stats.jain_fairness}): 1.0 when interference is spread
      evenly, approaching [1/n] when one tenant absorbs it all;
    - launch-queue wait attribution ({!Sim.queue_wait}): the cycles each
      tenant spent queued behind the shared grid-management unit;
    - {e recovery}: baseline mean slowdown over optimized mean slowdown —
      how much of the congestion the compiler pipeline removed.

    Everything here is simulated-time data; no wall-clock field enters the
    artifact, so BENCH_mt.json is byte-identical for a fixed seed at any
    host parallelism. *)

type tenant_report = {
  tr_tenant : int;
  tr_jobs : int;
  tr_mean : float;
  tr_p50 : float;
  tr_p90 : float;
  tr_p99 : float;
  tr_slowdown : float;
  tr_admit_wait : float;  (** Mean policy-induced admission delay. *)
  tr_queue_wait : float;  (** Launch-queue wait attribution, cycles. *)
  tr_host_launches : int;
  tr_device_launches : int;
  tr_max_pending : int;
}

type comparison = {
  cp_label : string;  (** Pipeline label ("CDP", "CDP+T+C+A", ...). *)
  cp_tenants : tenant_report list;
  cp_mean_slowdown : float;
  cp_fairness : float;  (** Jain index over per-tenant [1/slowdown]. *)
  cp_makespan : float;
  cp_mem_hash : int;
}

type result = {
  rs_policy : Policy.t;
  rs_slots : int;
  rs_traffic : Traffic.config;
  rs_baseline : comparison;
  rs_optimized : comparison;
  rs_recovery : float;
      (** Baseline mean slowdown / optimized mean slowdown. *)
}

let tenant_latencies (r : Sim.run) t =
  List.filter_map
    (fun (j : Sim.job_result) ->
      if j.jr_tenant = t then Some (Sim.latency j) else None)
    r.rn_jobs

let compare_runs ~cfg ~label ~tenants (shared : Sim.run)
    (isolated : Sim.run array) : comparison =
  let reports =
    List.init tenants (fun t ->
        let sh = tenant_latencies shared t in
        let iso = tenant_latencies isolated.(t) t in
        let tt = List.nth shared.rn_totals t in
        let admits =
          List.filter_map
            (fun (j : Sim.job_result) ->
              if j.jr_tenant = t then Some (j.jr_admit -. j.jr_arrival)
              else None)
            shared.rn_jobs
        in
        {
          tr_tenant = t;
          tr_jobs = List.length sh;
          tr_mean = Harness.Stats.mean sh;
          tr_p50 = Harness.Stats.percentile sh 0.5;
          tr_p90 = Harness.Stats.percentile sh 0.9;
          tr_p99 = Harness.Stats.percentile sh 0.99;
          tr_slowdown = Harness.Stats.slowdown ~shared:sh ~isolated:iso;
          tr_admit_wait = Harness.Stats.mean admits;
          tr_queue_wait = Sim.queue_wait cfg tt;
          tr_host_launches = tt.tt_host_launches;
          tr_device_launches = tt.tt_device_launches;
          tr_max_pending = tt.tt_max_pending;
        })
  in
  let slowdowns = List.map (fun r -> r.tr_slowdown) reports in
  {
    cp_label = label;
    cp_tenants = reports;
    cp_mean_slowdown = Harness.Stats.mean slowdowns;
    cp_fairness =
      Harness.Stats.jain_fairness (List.map (fun s -> 1.0 /. s) slowdowns);
    cp_makespan = shared.rn_makespan;
    cp_mem_hash = shared.rn_mem_hash;
  }

(** [run ?pool cell traffic_cfg] — the full experiment: for each of the
    two pinned pipelines, the shared run plus per-tenant isolated runs.
    The [2 * (1 + tenants)] simulation cells are mutually independent and
    run on [pool] when given (results are index-ordered, so output is
    bit-identical at any [-j]). *)
let run ?pool (cell : Sim.cell) (tcfg : Traffic.config) : result =
  let jobs = Traffic.jobs tcfg in
  let tenants = tcfg.tenants in
  let pipelines =
    [ App.baseline_opts; App.optimized_opts ]
  in
  (* flattened cell list: for each pipeline, the shared cell then each
     tenant's isolated cell *)
  let tasks =
    List.concat_map
      (fun opts ->
        (fun () ->
          let app = App.compile opts in
          Sim.run cell ~tenants app jobs)
        :: List.init tenants (fun t () ->
               let app = App.compile opts in
               Sim.run cell ~tenants app (Traffic.isolate t jobs)))
      pipelines
  in
  let tasks = Array.of_list tasks in
  let outs =
    match pool with
    | Some p -> Harness.Pool.run p (fun i -> tasks.(i) ()) (Array.length tasks)
    | None -> Array.map (fun f -> f ()) tasks
  in
  let stride = 1 + tenants in
  let comparison i opts =
    compare_runs ~cfg:cell.sm_cfg
      ~label:(Dpopt.Pipeline.label opts)
      ~tenants
      outs.(i * stride)
      (Array.init tenants (fun t -> outs.((i * stride) + 1 + t)))
  in
  let baseline = comparison 0 (List.nth pipelines 0) in
  let optimized = comparison 1 (List.nth pipelines 1) in
  {
    rs_policy = cell.policy;
    rs_slots = cell.slots;
    rs_traffic = tcfg;
    rs_baseline = baseline;
    rs_optimized = optimized;
    rs_recovery = baseline.cp_mean_slowdown /. optimized.cp_mean_slowdown;
  }

(* ---- rendering ---- *)

let print_comparison ppf (c : comparison) =
  Fmt.pf ppf "%s: mean slowdown %.2fx, fairness %.3f, makespan %.0f@."
    c.cp_label c.cp_mean_slowdown c.cp_fairness c.cp_makespan;
  Fmt.pf ppf "  %3s %5s %10s %10s %10s %10s %9s %11s %11s %8s@." "ten" "jobs"
    "mean" "p50" "p90" "p99" "slowdown" "admit-wait" "queue-wait" "launches";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %3d %5d %10.0f %10.0f %10.0f %10.0f %8.2fx %11.0f %11.0f %4d/%-4d@."
        r.tr_tenant r.tr_jobs r.tr_mean r.tr_p50 r.tr_p90 r.tr_p99
        r.tr_slowdown r.tr_admit_wait r.tr_queue_wait r.tr_host_launches
        r.tr_device_launches)
    c.cp_tenants

let print ppf (r : result) =
  Fmt.pf ppf "multi-tenant: %d tenants, policy %a, %d slots, seed %d@."
    r.rs_traffic.tenants Policy.pp r.rs_policy r.rs_slots r.rs_traffic.seed;
  print_comparison ppf r.rs_baseline;
  print_comparison ppf r.rs_optimized;
  Fmt.pf ppf "recovery (baseline/optimized mean slowdown): %.2fx@."
    r.rs_recovery

(* Hand-rendered JSON, like the sweep artifact: stable key order, fixed
   float formats, no wall-clock fields — byte-identical for a fixed seed
   at any host parallelism. *)
let json_of_result (r : result) : string =
  let buf = Buffer.create 4096 in
  let pf fmt = Fmt.str fmt in
  let num v = if Float.is_nan v then "null" else Fmt.str "%.4f" v in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (pf "  \"policy\": %S,\n" (Policy.to_string r.rs_policy));
  Buffer.add_string buf (pf "  \"slots\": %d,\n" r.rs_slots);
  Buffer.add_string buf (pf "  \"seed\": %d,\n" r.rs_traffic.seed);
  Buffer.add_string buf (pf "  \"tenants\": %d,\n" r.rs_traffic.tenants);
  Buffer.add_string buf
    (pf "  \"jobs_per_tenant\": %d,\n" r.rs_traffic.jobs_per_tenant);
  Buffer.add_string buf (pf "  \"parents\": %d,\n" r.rs_traffic.parents);
  Buffer.add_string buf (pf "  \"recovery\": %s,\n" (num r.rs_recovery));
  Buffer.add_string buf "  \"pipelines\": [\n";
  let emit_cp last (c : comparison) =
    Buffer.add_string buf "    {\n";
    Buffer.add_string buf (pf "      \"label\": %S,\n" c.cp_label);
    Buffer.add_string buf
      (pf "      \"mean_slowdown\": %s,\n" (num c.cp_mean_slowdown));
    Buffer.add_string buf (pf "      \"fairness\": %s,\n" (num c.cp_fairness));
    Buffer.add_string buf (pf "      \"makespan\": %.0f,\n" c.cp_makespan);
    Buffer.add_string buf (pf "      \"mem_hash\": %d,\n" c.cp_mem_hash);
    Buffer.add_string buf "      \"tenants\": [\n";
    let n = List.length c.cp_tenants in
    List.iteri
      (fun i t ->
        Buffer.add_string buf
          (pf
             "        {\"tenant\": %d, \"jobs\": %d, \"mean\": %s, \"p50\": \
              %s, \"p90\": %s, \"p99\": %s, \"slowdown\": %s, \"admit_wait\": \
              %s, \"queue_wait\": %s, \"host_launches\": %d, \
              \"device_launches\": %d, \"max_pending\": %d}%s\n"
             t.tr_tenant t.tr_jobs (num t.tr_mean) (num t.tr_p50)
             (num t.tr_p90) (num t.tr_p99) (num t.tr_slowdown)
             (num t.tr_admit_wait) (num t.tr_queue_wait) t.tr_host_launches
             t.tr_device_launches t.tr_max_pending
             (if i = n - 1 then "" else ",")))
      c.cp_tenants;
    Buffer.add_string buf "      ]\n";
    Buffer.add_string buf (if last then "    }\n" else "    },\n")
  in
  emit_cp false r.rs_baseline;
  emit_cp true r.rs_optimized;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json path r =
  let oc = open_out path in
  output_string oc (json_of_result r);
  close_out oc
