(** The tenant application: a BFS-shaped nested-launch MiniCU program
    ([mt_parent] launching [mt_child] per work item), eligible for every
    pass of the optimization pipeline. *)

val parent_block : int
val child_block : int
val src : string
val parent_kernel : string

type compiled = {
  prog : Minicu.Ast.program;
  auto_params : (string * Dpopt.Aggregation.auto_param list) list;
  label : string;  (** {!Dpopt.Pipeline.label} of the options used. *)
}

val compile : Dpopt.Pipeline.options -> compiled

(** The pinned baseline (no passes) and optimized (T+C+A at block
    granularity) pipelines of the multi-tenant experiment. *)
val baseline_opts : Dpopt.Pipeline.options

val optimized_opts : Dpopt.Pipeline.options

(** [parent_launch ~n] — (grid, block) of one job over [n] parent items. *)
val parent_launch : n:int -> (int * int * int) * (int * int * int)
