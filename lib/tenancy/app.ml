(** The tenant application: a BFS-shaped nested-launch MiniCU program.

    Each tenant job is one host launch of [mt_parent] over an array of
    per-item child sizes ([deg]): every parent thread with work launches a
    child grid over its [deg] elements — exactly the fine-grained dynamic
    parallelism whose launch congestion the paper targets, and the shape
    every pass of the pipeline (thresholding, coarsening, aggregation)
    knows how to transform. The child's write is position-indexed, so the
    output array is a deterministic function of the inputs under any
    interleaving, any pass combination and any tenant mix. *)

let parent_block = 64
let child_block = 64

let src =
  Fmt.str
    {|
__global__ void mt_child(int* out, int start, int deg) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < deg) {
    int v = out[start + e];
    out[start + e] = v * 2 + e + 1;
  }
}

__global__ void mt_parent(int* deg, int* off, int* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int d = deg[i];
    if (d > 0) {
      mt_child<<<(d + %d) / %d, %d>>>(out, off[i], d);
    }
  }
}
|}
    (child_block - 1) child_block child_block

let parent_kernel = "mt_parent"

type compiled = {
  prog : Minicu.Ast.program;
  auto_params : (string * Dpopt.Aggregation.auto_param list) list;
  label : string;
}

let compile (opts : Dpopt.Pipeline.options) : compiled =
  let r = Dpopt.Pipeline.run ~opts (Minicu.Parser.program src) in
  {
    prog = r.prog;
    auto_params = r.auto_params;
    label = Dpopt.Pipeline.label opts;
  }

(** The pinned "optimized" pipeline of the multi-tenant experiment:
    thresholding at one child block, 2x coarsening, block-granularity
    aggregation — the full T+C+A treatment at the knobs the paper's
    Section VII uses for graphs of this shape. *)
let optimized_opts =
  Dpopt.Pipeline.make ~threshold:child_block ~cfactor:2
    ~granularity:Dpopt.Aggregation.Block ()

let baseline_opts = Dpopt.Pipeline.none

(** Launch configuration of one job over [n] parent items. *)
let parent_launch ~n =
  (((n + parent_block - 1) / parent_block, 1, 1), (parent_block, 1, 1))
