(** Seed-deterministic multi-tenant traffic: zipf-skewed tenant mix,
    bursty arrivals, staggered starts. Equal configs produce byte-identical
    job lists. *)

type config = {
  seed : int;
  tenants : int;
  jobs_per_tenant : int;
  parents : int;  (** Parent work items per job. *)
  zipf_s : float;  (** Tenant heaviness skew (0 = uniform). *)
  burst : int;  (** Jobs submitted back-to-back per burst. *)
  burst_gap : float;  (** Cycles between a tenant's bursts. *)
  stagger : float;  (** Arrival offset between consecutive tenants. *)
  max_deg : int;  (** Largest child size (heaviest tenant). *)
}

val default : config

type job = {
  jb_tenant : int;
  jb_seq : int;  (** Dense per-tenant index, submission order. *)
  jb_global : int;  (** Dense rank in global arrival order (FIFO key). *)
  jb_arrival : float;
  jb_degs : int array;  (** Child size per parent work item. *)
}

(** Total child elements of a job — its nominal work. *)
val work : job -> float

(** All tenants' streams merged, sorted by (arrival, tenant, seq).
    @raise Invalid_argument on non-positive counts. *)
val jobs : config -> job list

(** One tenant's jobs, original arrival times (for isolated runs). *)
val isolate : int -> job list -> job list
