(** Per-tenant observability and the congestion-under-tenancy experiment:
    shared vs isolated runs under the baseline and optimized pipelines,
    folded into latency percentiles, slowdowns, Jain fairness, queue-wait
    attribution and the recovery ratio. No wall-clock data anywhere, so
    the artifact is byte-identical for a fixed seed at any parallelism. *)

type tenant_report = {
  tr_tenant : int;
  tr_jobs : int;
  tr_mean : float;
  tr_p50 : float;
  tr_p90 : float;
  tr_p99 : float;
  tr_slowdown : float;  (** Mean pairwise shared/isolated latency ratio. *)
  tr_admit_wait : float;  (** Mean policy-induced admission delay. *)
  tr_queue_wait : float;  (** Launch-queue wait attribution, cycles. *)
  tr_host_launches : int;
  tr_device_launches : int;
  tr_max_pending : int;
}

type comparison = {
  cp_label : string;  (** Pipeline label ("CDP", "CDP+T+C+A", ...). *)
  cp_tenants : tenant_report list;
  cp_mean_slowdown : float;
  cp_fairness : float;  (** Jain index over per-tenant [1/slowdown]. *)
  cp_makespan : float;
  cp_mem_hash : int;
}

type result = {
  rs_policy : Policy.t;
  rs_slots : int;
  rs_traffic : Traffic.config;
  rs_baseline : comparison;
  rs_optimized : comparison;
  rs_recovery : float;
      (** Baseline mean slowdown / optimized mean slowdown. *)
}

(** [run ?pool cell traffic_cfg] — the full experiment: for each pinned
    pipeline, the shared run plus per-tenant isolated runs. Cells run on
    [pool] when given; results are index-ordered, so output is
    bit-identical at any [-j]. *)
val run : ?pool:Harness.Pool.t -> Sim.cell -> Traffic.config -> result

val print_comparison : Format.formatter -> comparison -> unit
val print : Format.formatter -> result -> unit

(** Stable key order, fixed float formats, no wall-clock fields. *)
val json_of_result : result -> string

val write_json : string -> result -> unit
