(** CSV export of experiment results (the paper's artifact scripts emit
    CSVs of execution times per benchmark/dataset/configuration). Enabled
    via [bench/main.exe -- fig9 --csv=DIR]. *)

val escape : string -> string

(** Exact rendering of a (float-carried) cycle count: integral values in
    int range print as integers, everything else falls back to ["%.0f"].
    No digits are lost at large-tier magnitudes. *)
val cycles : float -> string
val write_rows : string -> header:string list -> string list list -> unit

(** One line per (bench, dataset): absolute times per code version plus the
    winning parameters. *)
val fig9 : string -> Figures.fig9_row list -> unit

(** Long format: bench, dataset, threshold, granularity, time, speedup. *)
val fig11 :
  string ->
  (string
  * string
  * float
  * (int * (Dpopt.Aggregation.granularity option * float) list) list)
  list ->
  unit

(** Long format: bench, dataset, variant, five breakdown categories. *)
val fig10 : string -> (string * string * Figures.fig10_cell list) list -> unit
