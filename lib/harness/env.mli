(** The test-iteration environment knobs, consolidated.

    Every repeat-count knob the dune aliases honor is declared here once,
    with its default, so binaries and docs cannot drift: the alias rules
    declare [(env_var NAME)] dependencies and the binaries resolve the
    value through {!get}. The README's knob table is generated from the
    same defaults (see test/test_env.ml, which pins the two in sync). *)

type knob = {
  name : string;  (** Environment variable name. *)
  default : int;  (** Used when the variable is unset or malformed. *)
  doc : string;  (** One-line description for the README table. *)
}

(** All knobs, in documentation order. *)
val knobs : knob list

(** [get name] — the knob's value: the environment variable if set to a
    positive integer (surrounding whitespace ignored), its declared
    default otherwise. @raise Invalid_argument on a name not in
    {!knobs}. *)
val get : string -> int

(** [default name] — the declared default. @raise Invalid_argument on an
    unknown name. *)
val default : string -> int
