(** Run one (benchmark, dataset, variant) cell and snapshot its results. *)

type snapshot = {
  parent_cycles : float;
  child_cycles : float;
  agg_cycles : float;
  disagg_cycles : float;
  launch_cycles : float;
  grids_launched : int;
  device_launches : int;
  host_launches : int;
  blocks_executed : int;
  threads_executed : int;
  serialized_launches : int;
  max_pending_launches : int;
}

let snapshot_of_metrics (m : Gpusim.Metrics.t) : snapshot =
  {
    parent_cycles = m.breakdown.parent_cycles;
    child_cycles = m.breakdown.child_cycles;
    agg_cycles = m.breakdown.agg_cycles;
    disagg_cycles = m.breakdown.disagg_cycles;
    launch_cycles = m.breakdown.launch_cycles;
    grids_launched = m.grids_launched;
    device_launches = m.device_launches;
    host_launches = m.host_launches;
    blocks_executed = m.blocks_executed;
    threads_executed = m.threads_executed;
    serialized_launches = m.serialized_launches;
    max_pending_launches = m.max_pending_launches;
  }

type measurement = {
  bench : string;
  dataset : string;
  variant : string;
  time : float;  (** Simulated cycles for the whole application run. *)
  fingerprint : int;
  snap : snapshot;
  sampled : bool;
      (** Grid/launch sampling actually triggered ({!Gpusim.Metrics.sampled}):
          [time] is an extrapolation, [fingerprint] is not validated. *)
  rel_std_error : float;
      (** Relative standard error of the extrapolated compute total;
          [0.0] on exact runs. *)
  extrapolation : Costmodel.Extrapolate.report option;
      (** Full extrapolation report; [Some] exactly when [sampled]. *)
}

exception Validation_failure of string

(* Whether the config enables grid sampling: sampled runs skip blocks, so
   their output is (deliberately) not the reference output. *)
let sampling_on = function
  | Some (cfg : Gpusim.Config.t) -> cfg.sampling <> None
  | None -> false

let sampling_for_size (size : Benchmarks.Registry.size) =
  match size with
  | Small | Medium -> Gpusim.Config.default_sampling
  | Large ->
      (* large-tier grids run to 100k+ blocks: the default 25% coverage
         would still simulate tens of thousands of them. 2% per stratum
         keeps a large sampled sweep in the same wall-clock ballpark as a
         medium exact one, and the stratification (by static per-block
         work) keeps the extrapolation inside the @scale error gate. *)
      {
        Gpusim.Config.default_sampling with
        block_frac = 0.02;
        launch_frac = 0.10;
      }

(** [run ?cfg ?validate spec variant] executes the benchmark under the
    variant. With [~validate:true] (default) the output fingerprint is
    checked against the pure-OCaml reference and a mismatch raises
    {!Validation_failure} — transformed code must be {e correct}, not just
    fast. Validation is skipped when [cfg] enables sampling: a sampled run
    simulates only a stratified subset of blocks, so its outputs are
    estimates by construction (the [sampled] field records this). *)
let run ?cfg ?(validate = true) (spec : Benchmarks.Bench_common.spec)
    (variant : Variant.t) : measurement =
  let v = match variant with Variant.No_cdp -> `No_cdp | Variant.Cdp o -> `Cdp o in
  let fp, time, metrics = Benchmarks.Bench_common.run_variant ?cfg spec v in
  if validate && (not (sampling_on cfg)) && fp <> spec.reference () then
    raise
      (Validation_failure
         (Fmt.str "%s/%s under %s: fingerprint %d, reference %d" spec.name
            spec.dataset (Variant.label variant) fp (spec.reference ())));
  {
    bench = spec.name;
    dataset = spec.dataset;
    variant = Variant.label variant;
    time;
    fingerprint = fp;
    snap = snapshot_of_metrics metrics;
    sampled = Gpusim.Metrics.sampled metrics;
    rel_std_error = Gpusim.Metrics.rel_std_error metrics;
    extrapolation = Costmodel.Extrapolate.of_metrics metrics;
  }

(** One cell of a sweep: an optional simulator-config override plus the
    (benchmark, variant) pair to run under it. *)
type cell = {
  cell_cfg : Gpusim.Config.t option;
  cell_spec : Benchmarks.Bench_common.spec;
  cell_variant : Variant.t;
}

let cell ?cfg spec variant =
  { cell_cfg = cfg; cell_spec = spec; cell_variant = variant }

(** [run_cells ?pool ?validate cells] evaluates every cell — on [pool]'s
    worker domains when given, sequentially otherwise — and returns, in
    the {e input} order regardless of completion order, each measurement
    paired with the wall-clock seconds its run took. Each cell builds its
    own device/memory/metrics, so cells are mutually independent; this is
    the one entry point all the parallel sweep consumers ([runbench
    --sweep], {!Ablation}, {!Sweep}) share. *)
let run_cells ?pool ?(validate = true) ?progress (cells : cell list) :
    (measurement * float) list =
  let eval c =
    let t0 = Unix.gettimeofday () in
    let m = run ?cfg:c.cell_cfg ~validate c.cell_spec c.cell_variant in
    let dt = Unix.gettimeofday () -. t0 in
    Option.iter Progress.step progress;
    (m, dt)
  in
  match pool with
  | None -> List.map eval cells
  | Some pool -> Pool.map_list pool eval cells
