(** Reproduction of the paper's evaluation tables and figures as text
    output. Each [figN] returns its data (for the test suite) and prints a
    table shaped like the paper's plot.

    Each figure maps over its benchmark specs through {!pmap}: with
    [?pool] the per-spec work (baseline runs plus tuning) fans out across
    worker domains, and all printing happens afterwards from the ordered
    results, so tables are bit-identical at any parallelism. *)

let pf = Fmt.pr

(* Per-spec parallelism: tuning inside a spec is adaptive/sequential, so a
   spec is the natural job grain for the figure tables. Progress (one step
   per finished spec) renders on stderr only when it is a TTY. *)
let pmap ~label pool f xs =
  Progress.with_progress ~label ~total:(List.length xs) @@ fun progress ->
  let f x =
    let r = f x in
    Progress.step progress;
    r
  in
  match pool with None -> List.map f xs | Some p -> Pool.map_list p f xs

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)
(* ------------------------------------------------------------------ *)

let table1 ?(size = Benchmarks.Registry.Small) () =
  let kron, cnr, road, t0032, t2048, rand3, sat5 =
    Benchmarks.Registry.datasets size
  in
  pf "@.=== Table I: benchmarks and datasets (scaled; see DESIGN.md) ===@.";
  pf "%-6s %-45s@." "Bench" "Datasets";
  pf "%-6s %-45s@." "BFS" "KRON, CNR";
  pf "%-6s %-45s@." "BT" "T0032-C16, T2048-C64";
  pf "%-6s %-45s@." "MSTF" "KRON, CNR";
  pf "%-6s %-45s@." "MSTV" "KRON, CNR";
  pf "%-6s %-45s@." "SP" "RAND-3, 5-SAT";
  pf "%-6s %-45s@." "SSSP" "KRON, CNR";
  pf "%-6s %-45s@." "TC" "KRON, CNR";
  pf "@.Datasets:@.";
  List.iter
    (fun (d : Workloads.Graph_gen.named) ->
      pf "  %-10s %a  -- %s@." d.name Workloads.Csr.stats d.graph d.description)
    [ kron; cnr; road ];
  let bz (b : Workloads.Bezier.t) =
    let pts = Array.map (Workloads.Bezier.tess_points b) b.lines in
    pf "  %-10s lines=%d max_tess=%d avg_points=%d max_points=%d@." b.name
      (Array.length b.lines) b.max_tessellation
      (Array.fold_left ( + ) 0 pts / Array.length pts)
      (Array.fold_left max 0 pts)
  in
  bz t0032;
  bz t2048;
  List.iter
    (fun (f : Workloads.Sat.t) ->
      let avg, mx = Workloads.Sat.occurrence_stats f in
      pf "  %-10s vars=%d clauses=%d avg_occ=%.1f max_occ=%d@." f.name f.n_vars
        (Workloads.Sat.n_clauses f) avg mx)
    [ rand3; sat5 ]

(* ------------------------------------------------------------------ *)
(* Fig. 9: performance of all optimization combinations                *)
(* ------------------------------------------------------------------ *)

type fig9_row = {
  bench : string;
  dataset : string;
  cdp_time : float;
  no_cdp_time : float;
  (* (combo label, best time, best params) for the seven optimized combos *)
  combos : (string * float * Variant.params) list;
}

let opt_combos =
  List.filter (fun c -> c.Variant.t || c.Variant.c || c.Variant.a)
    Variant.all_combos

let fig9_row ?cfg ?quick ?beyond_max (spec : Benchmarks.Bench_common.spec) :
    fig9_row =
  let no_cdp = Experiment.run ?cfg spec Variant.No_cdp in
  let cdp = Experiment.run ?cfg spec (Variant.Cdp Dpopt.Pipeline.none) in
  let combos =
    List.map
      (fun combo ->
        let tuned = Tuning.tune ?quick ?beyond_max ?cfg spec combo in
        ( Variant.combo_label combo,
          tuned.best.Experiment.time,
          tuned.best_params ))
      opt_combos
  in
  {
    bench = spec.name;
    dataset = spec.dataset;
    cdp_time = cdp.time;
    no_cdp_time = no_cdp.time;
    combos;
  }

let fig9_headers =
  [ "No CDP"; "CDP+T"; "CDP+C"; "CDP+A"; "CDP+T+C"; "CDP+T+A"; "CDP+C+A";
    "CDP+T+C+A" ]

(* speedups over CDP in fig9_headers order *)
let row_speedups (r : fig9_row) =
  (r.cdp_time /. r.no_cdp_time)
  :: List.map (fun (_, t, _) -> r.cdp_time /. t) r.combos

let print_fig9_table ~title (rows : fig9_row list) =
  pf "@.=== %s (speedup over CDP; higher is better) ===@." title;
  pf "%-6s %-10s" "Bench" "Dataset";
  List.iter (fun h -> pf " %9s" h) fig9_headers;
  pf "@.";
  List.iter
    (fun r ->
      pf "%-6s %-10s" r.bench r.dataset;
      List.iter
        (fun s -> pf " %9s" (Stats.speedup_to_string s))
        (row_speedups r);
      pf "@.")
    rows;
  (* geomean row *)
  let cols = List.length fig9_headers in
  pf "%-6s %-10s" "geo" "mean";
  for i = 0 to cols - 1 do
    let s = Stats.geomean (List.map (fun r -> List.nth (row_speedups r) i) rows) in
    pf " %9s" (Stats.speedup_to_string s)
  done;
  pf "@."

let combo_time (r : fig9_row) label =
  match List.find_opt (fun (l, _, _) -> l = label) r.combos with
  | Some (_, t, _) -> t
  | None -> invalid_arg ("no combo " ^ label)

(* The headline geomeans quoted in the abstract / Section VIII-A. *)
let print_fig9_summary (rows : fig9_row list) =
  let geo f = Stats.geomean (List.map f rows) in
  let lines =
    [
      ( "CDP+T+C+A over CDP (paper: 43.0x)",
        geo (fun r -> r.cdp_time /. combo_time r "CDP+T+C+A") );
      ( "CDP+T+C+A over No CDP (paper: 8.7x)",
        geo (fun r -> r.no_cdp_time /. combo_time r "CDP+T+C+A") );
      ( "CDP+T+C+A over CDP+A i.e. KLAP (paper: 3.6x)",
        geo (fun r -> combo_time r "CDP+A" /. combo_time r "CDP+T+C+A") );
      ( "CDP+A over CDP (paper: 12.1x)",
        geo (fun r -> r.cdp_time /. combo_time r "CDP+A") );
      ( "CDP+A over No CDP (paper: 2.4x)",
        geo (fun r -> r.no_cdp_time /. combo_time r "CDP+A") );
      ( "CDP+T over CDP (paper: 13.4x)",
        geo (fun r -> r.cdp_time /. combo_time r "CDP+T") );
      ( "CDP+T+A over CDP+A (paper: 2.9x)",
        geo (fun r -> combo_time r "CDP+A" /. combo_time r "CDP+T+A") );
      ( "CDP+T+C+A over CDP+C+A (paper: 3.1x)",
        geo (fun r -> combo_time r "CDP+C+A" /. combo_time r "CDP+T+C+A") );
      ( "CDP+C over CDP (paper: 1.01x)",
        geo (fun r -> r.cdp_time /. combo_time r "CDP+C") );
      ( "CDP+T+C over CDP+T (paper: 1.09x)",
        geo (fun r -> combo_time r "CDP+T" /. combo_time r "CDP+T+C") );
      ( "CDP+C+A over CDP+A (paper: 1.16x)",
        geo (fun r -> combo_time r "CDP+A" /. combo_time r "CDP+C+A") );
      ( "CDP+T+C+A over CDP+T+A (paper: 1.22x)",
        geo (fun r -> combo_time r "CDP+T+A" /. combo_time r "CDP+T+C+A") );
    ]
  in
  pf "@.--- headline geomeans ---@.";
  List.iter
    (fun (label, v) -> pf "%-48s %s@." label (Stats.speedup_to_string v))
    lines;
  lines

let fig9 ?cfg ?quick ?pool ?(size = Benchmarks.Registry.Small) () =
  let specs = Benchmarks.Registry.all ~size () in
  let rows = pmap ~label:"fig9" pool (fun s -> fig9_row ?cfg ?quick s) specs in
  print_fig9_table ~title:"Fig. 9: Performance" rows;
  let summary = print_fig9_summary rows in
  (rows, summary)

(* ------------------------------------------------------------------ *)
(* Fig. 10: breakdown of execution time                                 *)
(* ------------------------------------------------------------------ *)

type fig10_cell = {
  variant : string;
  parent : float;
  child : float;
  agg : float;
  launch : float;
  disagg : float;
}

let fig10_cells ?cfg (spec : Benchmarks.Bench_common.spec) : fig10_cell list =
  (* Tune each of the three variants the figure compares, then re-run the
     best and read the tag breakdown. *)
  let cell combo =
    let tuned = Tuning.tune ?cfg spec combo in
    let s = tuned.best.Experiment.snap in
    {
      variant = Variant.combo_label combo;
      parent = s.parent_cycles;
      child = s.child_cycles;
      agg = s.agg_cycles;
      launch = s.launch_cycles;
      disagg = s.disagg_cycles;
    }
  in
  [
    cell { Variant.t = false; c = false; a = true } (* KLAP baseline: CDP+A *);
    cell { Variant.t = true; c = false; a = true };
    cell { Variant.t = true; c = true; a = true };
  ]

let fig10 ?cfg ?pool ?(size = Benchmarks.Registry.Small) () =
  let specs = Benchmarks.Registry.all ~size () in
  let all =
    pmap ~label:"fig10" pool
      (fun (spec : Benchmarks.Bench_common.spec) ->
        (spec.name, spec.dataset, fig10_cells ?cfg spec))
      specs
  in
  pf "@.=== Fig. 10: Breakdown of execution time (fraction of CDP+A total; \
      lower is better) ===@.";
  pf "%-6s %-10s %-10s %8s %8s %8s %8s %8s %8s@." "Bench" "Dataset" "Variant"
    "parent" "child" "agg" "launch" "disagg" "total";
  List.iter
    (fun (bench, dataset, cells) ->
      let base =
        match cells with
        | b :: _ -> b.parent +. b.child +. b.agg +. b.launch +. b.disagg
        | [] -> 1.0
      in
      List.iter
        (fun c ->
          let n x = x /. base in
          pf "%-6s %-10s %-10s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f@." bench
            dataset c.variant (n c.parent) (n c.child) (n c.agg) (n c.launch)
            (n c.disagg)
            (n (c.parent +. c.child +. c.agg +. c.launch +. c.disagg)))
        cells)
    all;
  all

(* ------------------------------------------------------------------ *)
(* Fig. 11: impact of threshold and aggregation granularity             *)
(* ------------------------------------------------------------------ *)

let gran_label = function
  | None -> "T only"
  | Some g -> Fmt.str "%a" Dpopt.Aggregation.pp_granularity g

(* One dataset per benchmark, as in the paper ("for space constraints"). *)
let fig11_specs ?(size = Benchmarks.Registry.Small) () =
  let wanted =
    [ ("BFS", "KRON"); ("BT", "T2048-C64"); ("MSTF", "KRON"); ("MSTV", "KRON");
      ("SP", "5-SAT"); ("SSSP", "KRON"); ("TC", "KRON") ]
  in
  List.filter_map
    (fun (name, dataset) -> Benchmarks.Registry.find ~size ~name ~dataset ())
    wanted

let fig11 ?cfg ?pool ?(size = Benchmarks.Registry.Small) () =
  let specs = fig11_specs ~size () in
  let data =
    pmap ~label:"fig11" pool
      (fun (spec : Benchmarks.Bench_common.spec) ->
        let cdp = Experiment.run ?cfg spec (Variant.Cdp Dpopt.Pipeline.none) in
        let table = Tuning.sweep ?cfg spec in
        (spec.name, spec.dataset, cdp.Experiment.time, table))
      specs
  in
  pf "@.=== Fig. 11: Impact of threshold and aggregation granularity \
      (speedup over CDP) ===@.";
  List.iter
    (fun (bench, dataset, cdp_time, table) ->
      pf "@.%s / %s (CDP time %.0f):@." bench dataset cdp_time;
      (match table with
      | (_, cells) :: _ ->
          pf "%10s" "threshold";
          List.iter (fun (g, _) -> pf " %14s" (gran_label g)) cells;
          pf "@."
      | [] -> ());
      List.iter
        (fun (thr, cells) ->
          pf "%10d" thr;
          List.iter
            (fun (_, t) ->
              pf " %14s" (Stats.speedup_to_string (cdp_time /. t)))
            cells;
          pf "@.")
        table)
    data;
  data

(* ------------------------------------------------------------------ *)
(* Fig. 12: road graphs (low nested parallelism)                        *)
(* ------------------------------------------------------------------ *)

let fig12 ?cfg ?quick ?pool ?(size = Benchmarks.Registry.Small) () =
  let specs = Benchmarks.Registry.road ~size () in
  (* the paper tunes the threshold beyond the largest launch here *)
  let rows =
    pmap ~label:"fig12" pool
      (fun s -> fig9_row ?cfg ?quick ~beyond_max:true s)
      specs
  in
  print_fig9_table
    ~title:"Fig. 12: Performance of graph benchmarks on road graphs" rows;
  let geo f = Stats.geomean (List.map f rows) in
  let no_cdp_vs_best =
    geo (fun r -> r.no_cdp_time /. combo_time r "CDP+T+C+A")
  in
  pf
    "@.CDP+T+C+A over No CDP on ROAD: %s (paper: below 1 -- optimizations \
     recover much but not all of the degradation)@."
    (Stats.speedup_to_string no_cdp_vs_best);
  (rows, no_cdp_vs_best)

(* ------------------------------------------------------------------ *)
(* Section VIII-C: fixed threshold 128                                  *)
(* ------------------------------------------------------------------ *)

let fixed128 ?cfg ?pool ?(size = Benchmarks.Registry.Small) () =
  let specs = Benchmarks.Registry.all ~size () in
  let results =
    pmap ~label:"fixed128" pool
      (fun (spec : Benchmarks.Bench_common.spec) ->
        let cca =
          Tuning.tune ?cfg spec { Variant.t = false; c = true; a = true }
        in
        let tca_best =
          Tuning.tune ?cfg spec { Variant.t = true; c = true; a = true }
        in
        let fixed_params =
          { tca_best.best_params with Variant.threshold = 128 }
        in
        let tca_fixed =
          Experiment.run ?cfg spec
            (Variant.instantiate
               { Variant.t = true; c = true; a = true }
               fixed_params)
        in
        let rf = cca.best.Experiment.time /. tca_fixed.Experiment.time in
        let rb = cca.best.Experiment.time /. tca_best.best.Experiment.time in
        (spec.name, spec.dataset, rf, rb))
      specs
  in
  pf "@.=== Sec. VIII-C: fixed threshold 128 vs tuned threshold ===@.";
  let ratios_fixed, ratios_best =
    List.split
      (List.map
         (fun (bench, dataset, rf, rb) ->
           pf "%-6s %-10s  fixed128: %-8s best: %-8s@." bench dataset
             (Stats.speedup_to_string rf)
             (Stats.speedup_to_string rb);
           (rf, rb))
         results)
  in
  let gf = Stats.geomean ratios_fixed and gb = Stats.geomean ratios_best in
  pf
    "geomean CDP+T+C+A over CDP+C+A: fixed-128 %s (paper: 1.9x), tuned %s \
     (paper: 3.1x)@."
    (Stats.speedup_to_string gf) (Stats.speedup_to_string gb);
  (gf, gb)
