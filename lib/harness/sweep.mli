(** The full-registry performance sweep behind [runbench --sweep]: every
    (benchmark, dataset) pair of the Table I registry (plus the road
    graphs) × every code version (No CDP, plain CDP, and the seven
    optimized pass combinations at default parameters), evaluated through
    {!Experiment.run_cells} — in parallel when a {!Pool.t} is supplied.

    Everything derived from the simulator (cycles, fingerprints, speedups,
    and therefore {!print_table} and {!write_csv}) is deterministic and
    bit-identical across [-j] levels; wall-clock fields are measured on
    the host and are the only non-deterministic output, confined to the
    trailing ["wall_clock"] object of the JSON artifact. *)

type cell = {
  sw_bench : string;
  sw_dataset : string;
  sw_variant : string;  (** "No CDP", "CDP", "CDP+T", ..., "CDP+T+C+A". *)
  sw_time : float;  (** Simulated cycles (deterministic). *)
  sw_predicted : float;
      (** Cost-model prediction ({!Costmodel.Table.current}); [nan] for
          "No CDP", which the model does not cover. *)
  sw_fingerprint : int;  (** Validated output fingerprint. *)
  sw_speedup_vs_cdp : float;  (** Plain-CDP time over this cell's time. *)
  sw_wall_s : float;  (** Host wall-clock seconds (non-deterministic). *)
}

(** Version stamped into the JSON ["schema"] field and the CSV [schema]
    column (currently 2). *)
val schema_version : int

type t = {
  sw_size : Benchmarks.Registry.size;
  sw_jobs : int;  (** Parallelism the sweep ran at. *)
  sw_cells : cell list;  (** Registry order × variant order. *)
  sw_wall_parallel_s : float;  (** Wall clock of the whole sweep. *)
  sw_wall_sequential_est_s : float;
      (** Sum of per-cell wall clocks: what a [-j 1] run of the same cells
          would cost, measured without running the sweep twice. *)
}

(** The variant axis, in column order: ["No CDP"] then the eight
    {!Variant.power_set} combinations at default parameters. *)
val variants : unit -> (string * Variant.t) list

(** Run the sweep; cells are evaluated on [pool] when given. *)
val run : ?size:Benchmarks.Registry.size -> ?pool:Pool.t -> unit -> t

(** Deterministic speedup table (one row per benchmark/dataset, one column
    per variant, a predicted-vs-measured Spearman column, geomean footer)
    on stdout. *)
val print_table : t -> unit

(** The [BENCH_sweep.json] artifact; schema documented in README §"The
    parallel sweep". *)
val write_json : string -> t -> unit

(** Deterministic long-format CSV: schema, bench, dataset, variant,
    time_cycles, predicted_cycles (empty for "No CDP"), fingerprint,
    speedup_vs_cdp. *)
val write_csv : string -> t -> unit
