(** The [BENCH_costmodel.json] artifact: per-benchmark predicted-vs-
    measured rank correlation for the checked-in coefficient table, plus a
    surrogate-guided vs. unpruned autotuning comparison (simulator runs
    saved, and whether the surrogate's pick stayed within 10% of the
    unpruned best). Everything here is deterministic. *)

type bench_report = {
  cr_bench : string;
  cr_dataset : string;
  cr_spearman : float;  (** Over the 8 pass combinations. *)
  cr_kendall : float;
  cr_plain_runs : int;  (** Simulator runs of the unpruned search. *)
  cr_surrogate_runs : int;
      (** Simulator runs of the surrogate search (frontier + descent). *)
  cr_saved_pct : float;  (** 100·(plain − surrogate)/plain. *)
  cr_plain_best : float;
  cr_surrogate_best : float;
  cr_within_10pct : bool;
      (** Surrogate best_time ≤ 1.1 × unpruned best_time — "the true best
          survived pruning" up to the acceptance tolerance. *)
  cr_best_rank : int;  (** Model rank of the surrogate winner (0-based). *)
}

type t = {
  cm_table_version : int;
  cm_size : Benchmarks.Registry.size;
  cm_budget : int;
  cm_reports : bench_report list;
  cm_mean_spearman : float;
  cm_min_spearman : float;
  cm_mean_saved_pct : float;
  cm_all_within_10pct : bool;
}

(* Autotuning is compared on the full T+C+A combination — the richest
   space, so pruning has the most to save and the most to lose. *)
let full_combo = { Variant.t = true; c = true; a = true }

let report_spec ?(budget = 12) (spec : Benchmarks.Bench_common.spec) :
    bench_report =
  let coeffs = Costmodel.Table.current in
  let samples = Costmodel.Calibrate.collect spec in
  let predicted =
    List.map (Costmodel.Calibrate.predict_sample coeffs) samples
  in
  let measured =
    List.map (fun s -> s.Costmodel.Calibrate.s_measured) samples
  in
  let plain = Autotune.search ~budget spec full_combo in
  let sur = Autotune.search ~budget ~surrogate:coeffs spec full_combo in
  {
    cr_bench = spec.name;
    cr_dataset = spec.dataset;
    cr_spearman = Stats.spearman predicted measured;
    cr_kendall = Stats.kendall_tau predicted measured;
    cr_plain_runs = plain.Autotune.runs_used;
    cr_surrogate_runs = sur.Autotune.runs_used;
    cr_saved_pct =
      (if plain.Autotune.runs_used = 0 then 0.0
       else
         100.0
         *. float_of_int (plain.Autotune.runs_used - sur.Autotune.runs_used)
         /. float_of_int plain.Autotune.runs_used);
    cr_plain_best = plain.Autotune.best_time;
    cr_surrogate_best = sur.Autotune.best_time;
    cr_within_10pct =
      sur.Autotune.best_time <= 1.1 *. plain.Autotune.best_time;
    cr_best_rank =
      (match sur.Autotune.surrogate with
      | Some r -> r.Autotune.sr_best_rank
      | None -> -1);
  }

let collect ?(size = Benchmarks.Registry.Small) ?pool ?(budget = 12) () : t =
  let specs =
    Benchmarks.Registry.all ~size () @ Benchmarks.Registry.road ~size ()
  in
  let reports =
    match pool with
    | Some p -> Pool.map_list p (report_spec ~budget) specs
    | None -> List.map (report_spec ~budget) specs
  in
  let spearmen = List.map (fun r -> r.cr_spearman) reports in
  {
    cm_table_version = Costmodel.Table.current.Costmodel.Model.version;
    cm_size = size;
    cm_budget = budget;
    cm_reports = reports;
    cm_mean_spearman = Stats.mean spearmen;
    cm_min_spearman = Stats.minimum spearmen;
    cm_mean_saved_pct =
      Stats.mean (List.map (fun r -> r.cr_saved_pct) reports);
    cm_all_within_10pct = List.for_all (fun r -> r.cr_within_10pct) reports;
  }

let size_label = function
  | Benchmarks.Registry.Small -> "small"
  | Benchmarks.Registry.Medium -> "medium"
  | Benchmarks.Registry.Large -> "large"

let print_table t =
  let pf = Fmt.pr in
  pf "@.=== Cost model vs simulator (table v%d, %s datasets, budget %d) \
      ===@."
    t.cm_table_version (size_label t.cm_size) t.cm_budget;
  pf "%-6s %-10s %8s %8s %6s %6s %7s %9s@." "Bench" "Dataset" "spearman"
    "kendall" "runs" "sur" "saved%" "within10%";
  List.iter
    (fun r ->
      pf "%-6s %-10s %8.3f %8.3f %6d %6d %6.0f%% %9s@." r.cr_bench
        r.cr_dataset r.cr_spearman r.cr_kendall r.cr_plain_runs
        r.cr_surrogate_runs r.cr_saved_pct
        (if r.cr_within_10pct then "yes" else "NO"))
    t.cm_reports;
  pf "mean spearman %.3f (min %.3f); mean runs saved %.0f%%; all within \
      10%%: %s@."
    t.cm_mean_spearman t.cm_min_spearman t.cm_mean_saved_pct
    (if t.cm_all_within_10pct then "yes" else "NO")

let write_json path t =
  Out_channel.with_open_text path (fun oc ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"schema\": %d,\n" Sweep.schema_version;
      p "  \"kind\": \"dpopt.costmodel\",\n";
      p "  \"table_version\": %d,\n" t.cm_table_version;
      p "  \"size\": \"%s\",\n" (size_label t.cm_size);
      p "  \"budget\": %d,\n" t.cm_budget;
      p "  \"mean_spearman\": %.4f,\n" t.cm_mean_spearman;
      p "  \"min_spearman\": %.4f,\n" t.cm_min_spearman;
      p "  \"mean_runs_saved_pct\": %.1f,\n" t.cm_mean_saved_pct;
      p "  \"all_within_10pct\": %b,\n" t.cm_all_within_10pct;
      p "  \"benchmarks\": [\n";
      List.iteri
        (fun i r ->
          p
            "    {\"bench\": \"%s\", \"dataset\": \"%s\", \"spearman\": \
             %.4f, \"kendall\": %.4f, \"plain_runs\": %d, \
             \"surrogate_runs\": %d, \"runs_saved_pct\": %.1f, \
             \"plain_best\": %.0f, \"surrogate_best\": %.0f, \
             \"within_10pct\": %b, \"surrogate_best_rank\": %d}%s\n"
            r.cr_bench r.cr_dataset r.cr_spearman r.cr_kendall
            r.cr_plain_runs r.cr_surrogate_runs r.cr_saved_pct
            r.cr_plain_best r.cr_surrogate_best r.cr_within_10pct
            r.cr_best_rank
            (if i = List.length t.cm_reports - 1 then "" else ","))
        t.cm_reports;
      p "  ]\n";
      p "}\n")
