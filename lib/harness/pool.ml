(** Work-stealing job pool on OCaml 5 domains. See the interface for the
    determinism contract; the scheduling structure is:

    - [jobs] participants: the submitting caller (participant 0) plus
      [jobs - 1] persistent worker domains;
    - one index queue per participant, seeded round-robin by {!run};
    - a participant pops its own queue first and otherwise steals the
      newer half of the largest other queue;
    - a single [mutex] guards every queue plus the batch bookkeeping (the
      jobs themselves — simulator runs — dwarf the queue operations, so
      finer-grained locking would buy nothing), with [work] waking idle
      workers when a batch arrives and [done_] waking the caller when the
      last job of a batch finishes. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (** New batch available, or [stop]. *)
  done_ : Condition.t;  (** [pending] reached 0. *)
  mutable batch : (unit -> unit) array;
      (** Current jobs, type-erased: each writes its own result slot and
          traps its own exceptions, so running one never raises. *)
  queues : int Queue.t array;  (** Per-participant batch indices. *)
  mutable pending : int;  (** Jobs of the current batch not yet finished. *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let jobs t = t.jobs

(* Next job for participant [wid]: own queue first, else steal half of the
   largest other queue. Caller must hold [t.mutex]. *)
let take t wid =
  let own = t.queues.(wid) in
  if Queue.is_empty own then begin
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun i q ->
        let l = Queue.length q in
        if i <> wid && l > !best then begin
          victim := i;
          best := l
        end)
      t.queues;
    if !victim >= 0 then begin
      let vq = t.queues.(!victim) in
      for _ = 1 to (!best + 1) / 2 do
        Queue.push (Queue.pop vq) own
      done
    end
  end;
  if Queue.is_empty own then None else Some (Queue.pop own)

(* Run batch jobs as participant [wid] until none are left (neither owned
   nor stealable). Caller must hold [t.mutex]; the lock is dropped around
   each job. *)
let drain t wid =
  let continue_ = ref true in
  while !continue_ do
    match take t wid with
    | None -> continue_ := false
    | Some i ->
        let job = t.batch.(i) in
        Mutex.unlock t.mutex;
        job ();
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.done_
  done

let worker t wid =
  Mutex.lock t.mutex;
  while not t.stop do
    drain t wid;
    if not t.stop then Condition.wait t.work t.mutex
  done;
  Mutex.unlock t.mutex

let create ?jobs () =
  let jobs =
    max 1 (match jobs with None -> default_jobs () | Some j -> j)
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      batch = [||];
      queues = Array.init jobs (fun _ -> Queue.create ());
      pending = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t f n =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  if n = 0 then [||]
  else if t.jobs = 1 then begin
    (* Sequential reference path: in index order, in the caller. *)
    let results = Array.make n None in
    for i = 0 to n - 1 do
      results.(i) <- Some (f i)
    done;
    Array.map Option.get results
  end
  else begin
    let results = Array.make n None in
    let job i () =
      match f i with
      | v -> results.(i) <- Some (Ok v)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          results.(i) <- Some (Error (e, bt))
    in
    Mutex.lock t.mutex;
    t.batch <- Array.init n job;
    for i = 0 to n - 1 do
      Queue.push i t.queues.(i mod t.jobs)
    done;
    t.pending <- n;
    Condition.broadcast t.work;
    (* participate as worker 0, then wait out the stragglers *)
    drain t 0;
    while t.pending > 0 do
      Condition.wait t.done_ t.mutex
    done;
    t.batch <- [||];
    Mutex.unlock t.mutex;
    (* deterministic exception selection: lowest failing index wins,
       independent of the order the jobs actually completed in *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ()
    done;
    Array.map
      (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
      results
  end

let map_array t f xs = run t (fun i -> f xs.(i)) (Array.length xs)

let map_list t f xs =
  let a = Array.of_list xs in
  Array.to_list (run t (fun i -> f a.(i)) (Array.length a))
