(** Parameter tuning (paper Section VII: "for each combination of
    optimizations, we tune the relevant parameters and report results for
    the best configuration").

    The default grids follow the paper's own Section VIII-C advice — the
    coarsening factor only needs to be "sufficiently large (>8)", warp
    granularity is never favorable, and fewer than ten runs typically reach
    near-best — so the quick search is small; {!sweep} is the exhaustive
    search behind Fig. 11. *)

(** Threshold candidates: powers of two up to the benchmark's largest
    dynamic launch, so at least one launch still happens (Section VII). *)
let threshold_grid ?(beyond_max = false) (spec : Benchmarks.Bench_common.spec)
    =
  let rec gen t acc =
    if t > spec.max_child_threads then List.rev acc else gen (t * 2) (t :: acc)
  in
  let ts = gen 4 [] in
  let ts = if ts = [] then [ 4 ] else ts in
  if beyond_max then ts @ [ 4 * spec.max_child_threads ] else ts

let quick_thresholds ?beyond_max spec =
  (* three spread points of the full grid *)
  let all = threshold_grid ?beyond_max spec in
  let n = List.length all in
  if n <= 3 then all
  else [ List.nth all 0; List.nth all (n / 2); List.nth all (n - 1) ]

let quick_cfactors = [ 2; 8 ]

let quick_granularities =
  [
    Dpopt.Aggregation.Block;
    Dpopt.Aggregation.Multi_block 8;
    Dpopt.Aggregation.Grid;
  ]

let all_granularities =
  [
    Dpopt.Aggregation.Warp;
    Dpopt.Aggregation.Block;
    Dpopt.Aggregation.Multi_block 4;
    Dpopt.Aggregation.Multi_block 16;
    Dpopt.Aggregation.Grid;
  ]

(** Parameter grid for one T/C/A combination: only the enabled passes'
    parameters vary. *)
let param_grid ?(quick = true) ?beyond_max (combo : Variant.combo)
    (spec : Benchmarks.Bench_common.spec) : Variant.params list =
  let thresholds =
    if combo.t then
      if quick then quick_thresholds ?beyond_max spec
      else threshold_grid ?beyond_max spec
    else [ Variant.default_params.threshold ]
  in
  let cfactors =
    if combo.c then (if quick then quick_cfactors else [ 2; 8; 32 ])
    else [ Variant.default_params.cfactor ]
  in
  let grans =
    if combo.a then
      if quick then quick_granularities else all_granularities
    else [ Variant.default_params.granularity ]
  in
  List.concat_map
    (fun threshold ->
      List.concat_map
        (fun cfactor ->
          List.map
            (fun granularity ->
              { Variant.threshold; cfactor; granularity; agg_threshold = None })
            grans)
        cfactors)
    thresholds

type tuned = {
  best : Experiment.measurement;
  best_params : Variant.params;
  all_runs : (Variant.params * Experiment.measurement) list;
}

(** [tune ?quick ?cfg spec combo] runs the parameter grid and returns the
    best (lowest simulated time) configuration, validating every run. *)
let tune ?(quick = true) ?beyond_max ?cfg
    (spec : Benchmarks.Bench_common.spec) (combo : Variant.combo) : tuned =
  let grid = param_grid ~quick ?beyond_max combo spec in
  let runs =
    List.map
      (fun p -> (p, Experiment.run ?cfg spec (Variant.instantiate combo p)))
      grid
  in
  let best_p, best =
    List.fold_left
      (fun ((_, b) as acc) ((_, m) as cand) ->
        if m.Experiment.time < b.Experiment.time then cand else acc)
      (List.hd runs) (List.tl runs)
  in
  { best; best_params = best_p; all_runs = runs }

(** Exhaustive threshold × granularity sweep at fixed coarsening factor —
    the data behind Fig. 11. Returns
    [(threshold, (granularity option, time) list) list]; [None] granularity
    means thresholding-only (no aggregation). *)
let sweep ?cfg ?(cfactor = 8) ?(granularities = all_granularities)
    (spec : Benchmarks.Bench_common.spec) :
    (int * (Dpopt.Aggregation.granularity option * float) list) list =
  let thresholds = threshold_grid spec in
  List.map
    (fun threshold ->
      let cell gran =
        let params =
          { Variant.threshold; cfactor; granularity =
              Option.value gran ~default:Variant.default_params.granularity;
            agg_threshold = None }
        in
        let combo = { Variant.t = true; c = true; a = gran <> None } in
        let m = Experiment.run ?cfg spec (Variant.instantiate combo params) in
        (gran, m.Experiment.time)
      in
      ( threshold,
        List.map cell (None :: List.map Option.some granularities) ))
    thresholds
