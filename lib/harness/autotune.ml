(** A small derivative-free autotuner for the optimization parameters.

    Section VIII-C notes the framework "exposes these parameters in a
    configurable manner to make it easy for users to leverage off-the-shelf
    autotuners" (they cite OpenTuner). This module is a self-contained
    stand-in: random sampling over the parameter space followed by greedy
    neighborhood descent, with a run budget. It typically lands within a
    few percent of the exhaustive search at a fraction of the runs —
    matching the paper's observation that "users can typically find a
    combination of parameters that is very close to the best with less
    than ten runs".

    With [~surrogate] the search instead scores the {e whole} parameter
    grid with the analytical cost model ({!Costmodel.Model}) — which costs
    no simulator runs — then spends at most half the budget on the
    simulator: a frontier of the [topk] best-predicted points with
    distinct thresholds, followed by greedy descent from the frontier's
    winner. The outcome reports how many runs the pruning saved. *)

type space = {
  thresholds : int list;
  cfactors : int list;
  granularities : Dpopt.Aggregation.granularity list;
}

let default_space (spec : Benchmarks.Bench_common.spec) =
  {
    thresholds = Tuning.threshold_grid spec;
    cfactors = [ 1; 2; 4; 8; 16; 32 ];
    granularities = Tuning.all_granularities;
  }

type surrogate_report = {
  sr_grid : int;  (** Parameter points scored by the model. *)
  sr_simulated : int;  (** Simulator runs spent (frontier + descent). *)
  sr_saved_vs_budget : int;  (** [budget - sr_simulated], floored at 0. *)
  sr_best_rank : int;
      (** Predicted rank of the simulated winner (0 = the model's own top
          choice; larger = pruning needed the depth). *)
  sr_predicted : (Variant.params * float) list;
      (** The full predicted ranking, ascending by predicted cycles. *)
}

type outcome = {
  best_params : Variant.params;
  best_time : float;
  runs_used : int;  (** Simulator runs actually performed. *)
  cache_hits : int;
      (** Evaluations answered from the params-keyed memo table instead of
          the simulator (revisits during descent, or points differing only
          in a knob the combo disables). *)
  trace : (Variant.params * float) list;  (** Simulator evaluation order. *)
  surrogate : surrogate_report option;  (** Present iff [~surrogate]. *)
}

(* index-based point in the space *)
type point = { ti : int; ci : int; gi : int }

let params_of_point space p : Variant.params =
  {
    Variant.threshold = List.nth space.thresholds p.ti;
    cfactor = List.nth space.cfactors p.ci;
    granularity = List.nth space.granularities p.gi;
    agg_threshold = None;
  }

(* Knobs of disabled passes don't reach the pipeline ([Variant.instantiate]
   drops them), so normalize them to the defaults: evaluations that differ
   only there are the same experiment and must hit the memo. The same goes
   for knobs a pass *ignores* at the chosen setting: the aggregation
   threshold only exists in warp/block codegen (Section V-B), so at
   multi-block/grid granularity two params differing only in
   [agg_threshold] produce byte-identical programs and must share a memo
   entry — keying on the raw record undercounted [cache_hits] and spent
   simulator runs re-measuring the same experiment. *)
let normalize (combo : Variant.combo) (p : Variant.params) : Variant.params =
  let d = Variant.default_params in
  {
    Variant.threshold = (if combo.t then p.threshold else d.Variant.threshold);
    cfactor = (if combo.c then p.cfactor else d.Variant.cfactor);
    granularity = (if combo.a then p.granularity else d.Variant.granularity);
    agg_threshold =
      (if
         combo.a
         &&
         match p.granularity with
         | Dpopt.Aggregation.Warp | Dpopt.Aggregation.Block -> true
         | Dpopt.Aggregation.Multi_block _ | Dpopt.Aggregation.Grid -> false
       then p.agg_threshold
       else d.Variant.agg_threshold);
  }

(* Distinct experiments the space holds for this combo. *)
let effective_size (combo : Variant.combo) space =
  (if combo.t then List.length space.thresholds else 1)
  * (if combo.c then List.length space.cfactors else 1)
  * if combo.a then List.length space.granularities else 1

let neighbors space p =
  let clamp hi v = max 0 (min (hi - 1) v) in
  let t_hi = List.length space.thresholds
  and c_hi = List.length space.cfactors
  and g_hi = List.length space.granularities in
  List.sort_uniq compare
    [
      { p with ti = clamp t_hi (p.ti - 1) };
      { p with ti = clamp t_hi (p.ti + 1) };
      { p with ci = clamp c_hi (p.ci - 1) };
      { p with ci = clamp c_hi (p.ci + 1) };
      { p with gi = clamp g_hi (p.gi - 1) };
      { p with gi = clamp g_hi (p.gi + 1) };
    ]
  |> List.filter (fun q -> q <> p)

(* Every distinct experiment of the space for this combo, disabled knobs
   pinned to the defaults, in deterministic grid order. *)
let enumerate_params (combo : Variant.combo) space : Variant.params list =
  let d = Variant.default_params in
  let ts = if combo.t then space.thresholds else [ d.Variant.threshold ] in
  let cs = if combo.c then space.cfactors else [ d.Variant.cfactor ] in
  let gs = if combo.a then space.granularities else [ d.Variant.granularity ] in
  List.concat_map
    (fun t ->
      List.concat_map
        (fun c ->
          List.map
            (fun g ->
              {
                Variant.threshold = t;
                cfactor = c;
                granularity = g;
                agg_threshold = None;
              })
            gs)
        cs)
    ts

(** [search ?budget ?seed ?space ?surrogate ?topk spec combo] tunes the
    enabled passes of [combo] with at most [budget] simulator runs
    (default 12). Runs are memoized on normalized {!Variant.params},
    deterministic, and each validates the benchmark output. With
    [~surrogate] the model scores the whole grid, then at most
    [budget / 2] simulator runs are spent: a frontier of the [topk]
    (default [max 1 (budget / 3)]) best-predicted distinct-threshold
    points plus greedy descent from the frontier's winner. *)
let search ?(budget = 12) ?(seed = 1) ?space ?surrogate ?topk
    (spec : Benchmarks.Bench_common.spec) (combo : Variant.combo) : outcome =
  let space = Option.value space ~default:(default_space spec) in
  let cache : (Variant.params, float) Hashtbl.t = Hashtbl.create 16 in
  let cache_hits = ref 0 in
  let trace = ref [] in
  let runs = ref 0 in
  let eval_params p =
    let key = normalize combo p in
    match Hashtbl.find_opt cache key with
    | Some t ->
        incr cache_hits;
        t
    | None ->
        incr runs;
        let m = Experiment.run spec (Variant.instantiate combo key) in
        Hashtbl.add cache key m.Experiment.time;
        trace := (key, m.Experiment.time) :: !trace;
        m.Experiment.time
  in
  match surrogate with
  | Some coeffs ->
      (* Surrogate-guided: static scores for the whole grid, simulator for
         the top-k frontier only. *)
      let prog = Minicu.Parser.program spec.cdp_src in
      let profile = Costmodel.Profile.of_workload spec.workload in
      let scored =
        List.map
          (fun params ->
            let opts =
              match Variant.instantiate combo params with
              | Variant.Cdp o -> o
              | Variant.No_cdp -> assert false
            in
            let f =
              Costmodel.Feature.extract ~prog
                ~parent_kernel:spec.parent_kernel ~profile ~opts ()
            in
            (params, Costmodel.Model.predict coeffs f))
          (enumerate_params combo space)
      in
      let ranking =
        List.stable_sort (fun (_, a) (_, b) -> Float.compare a b) scored
      in
      let k = match topk with Some k -> max 1 k | None -> max 1 (budget / 3) in
      let cap = max k (budget / 2) in
      (* Frontier: the best-predicted point of each of the [k] best-ranked
         distinct thresholds. The threshold moves the optimum further than
         any other knob, and within-threshold ordering is the model's
         weakest axis (DESIGN.md §8) — so spread the few real runs across
         thresholds rather than burning them on near-duplicates of the
         model's single favourite. *)
      let frontier =
        let seen = Hashtbl.create 8 in
        List.filter
          (fun ((p : Variant.params), _) ->
            if Hashtbl.length seen < k && not (Hashtbl.mem seen p.threshold)
            then begin
              Hashtbl.add seen p.threshold ();
              true
            end
            else false)
          ranking
      in
      let best_params = ref (normalize combo (fst (List.hd frontier))) in
      let best_t = ref infinity in
      List.iter
        (fun (params, _) ->
          let t = eval_params params in
          if t < !best_t then begin
            best_params := normalize combo params;
            best_t := t
          end)
        frontier;
      (* Greedy neighborhood descent from the frontier's winner with the
         remaining run cap: cheap insurance against the model mis-ordering
         cfactor / granularity within the winning threshold. *)
      let index_of v l =
        let rec go i = function
          | [] -> 0
          | x :: tl -> if x = v then i else go (i + 1) tl
        in
        go 0 l
      in
      let best_pt =
        ref
          {
            ti = index_of !best_params.Variant.threshold space.thresholds;
            ci = index_of !best_params.Variant.cfactor space.cfactors;
            gi = index_of !best_params.Variant.granularity space.granularities;
          }
      in
      let improved = ref true in
      while !improved && !runs < cap do
        improved := false;
        List.iter
          (fun q ->
            if !runs < cap then begin
              let t = eval_params (params_of_point space q) in
              if t < !best_t then begin
                best_pt := q;
                best_params := normalize combo (params_of_point space q);
                best_t := t;
                improved := true
              end
            end)
          (neighbors space !best_pt)
      done;
      let best_rank =
        let rec go i = function
          | [] -> 0
          | (p, _) :: tl ->
              if normalize combo p = !best_params then i else go (i + 1) tl
        in
        go 0 ranking
      in
      {
        best_params = !best_params;
        best_time = !best_t;
        runs_used = !runs;
        cache_hits = !cache_hits;
        trace = List.rev !trace;
        surrogate =
          Some
            {
              sr_grid = List.length scored;
              sr_simulated = !runs;
              sr_saved_vs_budget = max 0 (budget - !runs);
              sr_best_rank = best_rank;
              sr_predicted = ranking;
            };
      }
  | None ->
      let rng = Workloads.Rng.create ~seed in
      let eval p = eval_params (params_of_point space p) in
      let random_point () =
        {
          ti = Workloads.Rng.int rng (List.length space.thresholds);
          ci = Workloads.Rng.int rng (List.length space.cfactors);
          gi = Workloads.Rng.int rng (List.length space.granularities);
        }
      in
      (* phase 1: random sampling for half the budget (capped by the number
         of distinct experiments the combo actually has, so small effective
         spaces cannot spin on cache hits forever) *)
      let target = min ((budget + 1) / 2) (effective_size combo space) in
      let best = ref (random_point ()) in
      let best_t = ref (eval !best) in
      let attempts = ref 1 in
      while !runs < target && !attempts < 64 * budget do
        incr attempts;
        let p = random_point () in
        let t = eval p in
        if t < !best_t then begin
          best := p;
          best_t := t
        end
      done;
      (* phase 2: greedy neighborhood descent with the remaining budget *)
      let improved = ref true in
      while !improved && !runs < budget do
        improved := false;
        List.iter
          (fun q ->
            if !runs < budget then
              let t = eval q in
              if t < !best_t then begin
                best := q;
                best_t := t;
                improved := true
              end)
          (neighbors space !best)
      done;
      {
        best_params = normalize combo (params_of_point space !best);
        best_time = !best_t;
        runs_used = !runs;
        cache_hits = !cache_hits;
        trace = List.rev !trace;
        surrogate = None;
      }
