(** A small derivative-free autotuner for the optimization parameters.

    Section VIII-C notes the framework "exposes these parameters in a
    configurable manner to make it easy for users to leverage off-the-shelf
    autotuners" (they cite OpenTuner). This module is a self-contained
    stand-in: random sampling over the parameter space followed by greedy
    neighborhood descent, with a run budget. It typically lands within a
    few percent of the exhaustive search at a fraction of the runs —
    matching the paper's observation that "users can typically find a
    combination of parameters that is very close to the best with less
    than ten runs". *)

type space = {
  thresholds : int list;
  cfactors : int list;
  granularities : Dpopt.Aggregation.granularity list;
}

let default_space (spec : Benchmarks.Bench_common.spec) =
  {
    thresholds = Tuning.threshold_grid spec;
    cfactors = [ 1; 2; 4; 8; 16; 32 ];
    granularities = Tuning.all_granularities;
  }

type outcome = {
  best_params : Variant.params;
  best_time : float;
  runs_used : int;
  trace : (Variant.params * float) list;  (** Evaluation order. *)
}

(* index-based point in the space *)
type point = { ti : int; ci : int; gi : int }

let params_of_point space p : Variant.params =
  {
    Variant.threshold = List.nth space.thresholds p.ti;
    cfactor = List.nth space.cfactors p.ci;
    granularity = List.nth space.granularities p.gi;
    agg_threshold = None;
  }

let neighbors space p =
  let clamp hi v = max 0 (min (hi - 1) v) in
  let t_hi = List.length space.thresholds
  and c_hi = List.length space.cfactors
  and g_hi = List.length space.granularities in
  List.sort_uniq compare
    [
      { p with ti = clamp t_hi (p.ti - 1) };
      { p with ti = clamp t_hi (p.ti + 1) };
      { p with ci = clamp c_hi (p.ci - 1) };
      { p with ci = clamp c_hi (p.ci + 1) };
      { p with gi = clamp g_hi (p.gi - 1) };
      { p with gi = clamp g_hi (p.gi + 1) };
    ]
  |> List.filter (fun q -> q <> p)

(** [search ?budget ?seed ?space spec combo] tunes the enabled passes of
    [combo] with at most [budget] simulator runs (default 12). Runs are
    memoized, deterministic, and each validates the benchmark output. *)
let search ?(budget = 12) ?(seed = 1) ?space
    (spec : Benchmarks.Bench_common.spec) (combo : Variant.combo) : outcome =
  let space = Option.value space ~default:(default_space spec) in
  let rng = Workloads.Rng.create ~seed in
  let cache = Hashtbl.create 16 in
  let trace = ref [] in
  let runs = ref 0 in
  let eval p =
    match Hashtbl.find_opt cache p with
    | Some t -> t
    | None ->
        incr runs;
        let params = params_of_point space p in
        let m = Experiment.run spec (Variant.instantiate combo params) in
        Hashtbl.add cache p m.Experiment.time;
        trace := (params, m.Experiment.time) :: !trace;
        m.Experiment.time
  in
  let random_point () =
    {
      ti = Workloads.Rng.int rng (List.length space.thresholds);
      ci = Workloads.Rng.int rng (List.length space.cfactors);
      gi = Workloads.Rng.int rng (List.length space.granularities);
    }
  in
  (* phase 1: random sampling for half the budget *)
  let best = ref (random_point ()) in
  let best_t = ref (eval !best) in
  while !runs < (budget + 1) / 2 do
    let p = random_point () in
    let t = eval p in
    if t < !best_t then begin
      best := p;
      best_t := t
    end
  done;
  (* phase 2: greedy neighborhood descent with the remaining budget *)
  let improved = ref true in
  while !improved && !runs < budget do
    improved := false;
    List.iter
      (fun q ->
        if !runs < budget then
          let t = eval q in
          if t < !best_t then begin
            best := q;
            best_t := t;
            improved := true
          end)
      (neighbors space !best)
  done;
  {
    best_params = params_of_point space !best;
    best_time = !best_t;
    runs_used = !runs;
    trace = List.rev !trace;
  }
