(** Full-registry sweep (see the interface). The layout work — building
    the cell list, regrouping results per benchmark, attaching speedups —
    happens in the calling domain; only {!Experiment.run_cells} fans out. *)

type cell = {
  sw_bench : string;
  sw_dataset : string;
  sw_variant : string;
  sw_time : float;
  sw_predicted : float;
  sw_fingerprint : int;
  sw_speedup_vs_cdp : float;
  sw_wall_s : float;
}

(* JSON/CSV artifact schema version; see README. v2 added the "kind"
   discriminator, the schema column in the CSV, and predicted_cycles. *)
let schema_version = 2

type t = {
  sw_size : Benchmarks.Registry.size;
  sw_jobs : int;
  sw_cells : cell list;
  sw_wall_parallel_s : float;
  sw_wall_sequential_est_s : float;
}

let variants () : (string * Variant.t) list =
  ("No CDP", Variant.No_cdp) :: Variant.power_set ()

let size_label = function
  | Benchmarks.Registry.Small -> "small"
  | Benchmarks.Registry.Medium -> "medium"
  | Benchmarks.Registry.Large -> "large"

(* Static model score for a cell; the model only covers CDP variants. *)
let predict spec = function
  | Variant.No_cdp -> nan
  | Variant.Cdp opts ->
      Costmodel.Model.predict Costmodel.Table.current
        (Costmodel.Feature.of_spec spec ~opts ())

let run ?(size = Benchmarks.Registry.Small) ?pool () : t =
  let specs = Benchmarks.Registry.all ~size () @ Benchmarks.Registry.road ~size () in
  let vars = variants () in
  let cells =
    List.concat_map
      (fun spec -> List.map (fun (_, v) -> Experiment.cell spec v) vars)
      specs
  in
  let t0 = Unix.gettimeofday () in
  let results =
    (* progress on stderr when interactive (off otherwise), so large-tier
       sweeps are observable without perturbing the deterministic stdout *)
    Progress.with_progress ~label:"sweep" ~total:(List.length cells)
      (fun progress -> Experiment.run_cells ?pool ~progress cells)
  in
  let wall_parallel = Unix.gettimeofday () -. t0 in
  (* regroup: [results] is in cell order, i.e. per spec, variant-major *)
  let n_vars = List.length vars in
  let groups =
    List.mapi
      (fun i spec ->
        (spec, List.filteri (fun j _ -> j / n_vars = i) results))
      specs
  in
  let sw_cells =
    List.concat_map
      (fun (spec, group) ->
        let cdp_time =
          match
            List.find_opt
              (fun ((m : Experiment.measurement), _) -> m.variant = "CDP")
              group
          with
          | Some (m, _) -> m.time
          | None -> nan
        in
        List.map2
          (fun (label, v) ((m : Experiment.measurement), wall) ->
            {
              sw_bench = m.bench;
              sw_dataset = m.dataset;
              sw_variant = label;
              sw_time = m.time;
              sw_predicted = predict spec v;
              sw_fingerprint = m.fingerprint;
              sw_speedup_vs_cdp = cdp_time /. m.time;
              sw_wall_s = wall;
            })
          vars group)
      groups
  in
  {
    sw_size = size;
    sw_jobs = (match pool with None -> 1 | Some p -> Pool.jobs p);
    sw_cells;
    sw_wall_parallel_s = wall_parallel;
    sw_wall_sequential_est_s =
      List.fold_left (fun acc (_, w) -> acc +. w) 0.0 results;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pf = Fmt.pr

(** Rows in registry order: (bench, dataset, cells in variant order). *)
let rows t =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun c ->
      let key = (c.sw_bench, c.sw_dataset) in
      match Hashtbl.find_opt tbl key with
      | Some cs -> cs := c :: !cs
      | None ->
          Hashtbl.add tbl key (ref [ c ]);
          order := key :: !order)
    t.sw_cells;
  List.rev_map
    (fun key ->
      let b, d = key in
      (b, d, List.rev !(Hashtbl.find tbl key)))
    !order

let print_table t =
  let labels = List.map fst (variants ()) in
  pf "@.=== Sweep: %d cells (%s datasets; speedup over CDP, higher is \
      better) ===@."
    (List.length t.sw_cells) (size_label t.sw_size);
  pf "%-6s %-10s" "Bench" "Dataset";
  List.iter (fun l -> pf " %9s" l) labels;
  pf " %7s" "rho";
  pf "@.";
  let rs = rows t in
  List.iter
    (fun (b, d, cs) ->
      pf "%-6s %-10s" b d;
      List.iter
        (fun c -> pf " %9s" (Stats.speedup_to_string c.sw_speedup_vs_cdp))
        cs;
      (* predicted-vs-measured rank agreement over the CDP variants *)
      let preds = List.filter (fun c -> not (Float.is_nan c.sw_predicted)) cs in
      let rho =
        Stats.spearman
          (List.map (fun c -> c.sw_predicted) preds)
          (List.map (fun c -> c.sw_time) preds)
      in
      pf " %7.2f" rho;
      pf "@.")
    rs;
  pf "%-6s %-10s" "geo" "mean";
  List.iteri
    (fun i _ ->
      let col =
        List.map (fun (_, _, cs) -> (List.nth cs i).sw_speedup_vs_cdp) rs
      in
      pf " %9s" (Stats.speedup_to_string (Stats.geomean col)))
    labels;
  pf "@."

(* Minimal JSON emission: all strings here are benchmark/dataset/variant
   labels (printable ASCII), so escaping covers just quotes/backslashes. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let write_json path t =
  Out_channel.with_open_text path (fun oc ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"schema\": %d,\n" schema_version;
      p "  \"kind\": \"dpopt.sweep\",\n";
      p "  \"size\": %s,\n" (json_string (size_label t.sw_size));
      p "  \"cells\": [\n";
      List.iteri
        (fun i c ->
          p
            "    {\"bench\": %s, \"dataset\": %s, \"variant\": %s, \
             \"time_cycles\": %s, \"predicted_cycles\": %s, \
             \"fingerprint\": %d, \"speedup_vs_cdp\": %.4f}%s\n"
            (json_string c.sw_bench)
            (json_string c.sw_dataset)
            (json_string c.sw_variant)
            (Csv.cycles c.sw_time)
            (if Float.is_nan c.sw_predicted then "null"
             else Csv.cycles c.sw_predicted)
            c.sw_fingerprint c.sw_speedup_vs_cdp
            (if i = List.length t.sw_cells - 1 then "" else ","))
        t.sw_cells;
      p "  ],\n";
      (* host timings: the only non-deterministic object, kept last so the
         deterministic prefix of -j 1 and -j N artifacts is identical *)
      p "  \"wall_clock\": {\n";
      p "    \"jobs\": %d,\n" t.sw_jobs;
      p "    \"parallel_s\": %.3f,\n" t.sw_wall_parallel_s;
      p "    \"sequential_estimate_s\": %.3f,\n" t.sw_wall_sequential_est_s;
      p "    \"parallel_speedup\": %.2f,\n"
        (t.sw_wall_sequential_est_s /. t.sw_wall_parallel_s);
      p "    \"per_cell_s\": [%s]\n"
        (String.concat ", "
           (List.map (fun c -> Printf.sprintf "%.4f" c.sw_wall_s) t.sw_cells));
      p "  }\n";
      p "}\n")

let write_csv path t =
  Csv.write_rows path
    ~header:
      [ "schema"; "bench"; "dataset"; "variant"; "time_cycles";
        "predicted_cycles"; "fingerprint"; "speedup_vs_cdp" ]
    (List.map
       (fun c ->
         [
           string_of_int schema_version;
           c.sw_bench; c.sw_dataset; c.sw_variant;
           Csv.cycles c.sw_time;
           (if Float.is_nan c.sw_predicted then ""
            else Csv.cycles c.sw_predicted);
           string_of_int c.sw_fingerprint;
           Printf.sprintf "%.4f" c.sw_speedup_vs_cdp;
         ])
       t.sw_cells)
