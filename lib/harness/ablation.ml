(** Ablation studies of the simulator's design choices (DESIGN.md §4).

    The reproduction's validity rests on three modeled mechanisms producing
    the paper's effects. Each ablation turns one knob and checks that the
    corresponding effect appears/disappears, on one benchmark:

    - {b launch congestion} ({!Gpusim.Config.launch_service_interval}): the
      paper attributes CDP's collapse to launch-queue congestion. With the
      service interval near zero, plain CDP should approach the aggregated
      version; as it grows, the CDP/aggregated gap must widen.
    - {b launch-existence overhead} ({!Gpusim.Config.cdp_entry_cost}): the
      Section VIII-D effect — on road graphs, CDP+T tuned to serialize
      everything still trails No CDP, and the residual gap must track this
      knob (at 0 it should almost vanish).
    - {b machine width} ({!Gpusim.Config.num_sms}): underutilization — the
      benefit of parallelizing nested work over serializing it must grow
      with the number of SMs.

    Every study builds one flat list of (config, variant) cells and
    evaluates it through {!Experiment.run_cells}, so passing [?pool] runs
    the whole grid on worker domains; the rows (assembled from the ordered
    results) are identical at any parallelism. *)

type row = { knob : float; values : (string * float) list }

type study = {
  study : string;
  knob_name : string;
  bench : string;
  dataset : string;
  rows : row list;
}

(* Evaluate a knob-major grid: for every knob's config, both variants;
   returns per-knob times in input order as (t_a, t_b) pairs. *)
let grid ?pool spec knob_cfgs (va, vb) =
  let cells =
    List.concat_map
      (fun cfg -> [ Experiment.cell ~cfg spec va; Experiment.cell ~cfg spec vb ])
      knob_cfgs
  in
  let times =
    List.map
      (fun ((m : Experiment.measurement), _) -> m.time)
      (Experiment.run_cells ?pool cells)
  in
  let rec pairs = function
    | a :: b :: rest -> (a, b) :: pairs rest
    | [] -> []
    | [ _ ] -> assert false
  in
  pairs times

(* -- 1: congestion -------------------------------------------------- *)

let congestion ?pool ?(intervals = [ 0; 100; 500; 2000 ]) () : study =
  let spec =
    Benchmarks.Bfs.spec ~dataset:(Workloads.Graph_gen.kron_dataset ~scale:9 ())
  in
  let agg =
    Variant.Cdp
      (Dpopt.Pipeline.make ~granularity:(Dpopt.Aggregation.Multi_block 8) ())
  in
  let cfgs =
    List.map
      (fun interval ->
        { Gpusim.Config.default with launch_service_interval = interval })
      intervals
  in
  let times = grid ?pool spec cfgs (Variant.Cdp Dpopt.Pipeline.none, agg) in
  let rows =
    List.map2
      (fun interval (t_cdp, t_agg) ->
        {
          knob = float_of_int interval;
          values =
            [
              ("CDP", t_cdp); ("CDP+A", t_agg); ("CDP/CDP+A", t_cdp /. t_agg);
            ];
        })
      intervals times
  in
  {
    study = "launch congestion drives CDP's collapse";
    knob_name = "launch_service_interval";
    bench = spec.name;
    dataset = spec.dataset;
    rows;
  }

(* -- 2: launch-existence overhead ----------------------------------- *)

let launch_existence ?pool ?(costs = [ 0; 8; 16; 64 ]) () : study =
  let spec =
    Benchmarks.Bfs.spec
      ~dataset:(Workloads.Graph_gen.road_dataset ~rows:24 ~cols:24 ())
  in
  (* threshold beyond the largest launch: CDP+T degenerates to No CDP's
     behavior, modulo the existence overhead (Section VIII-D) *)
  let t_all =
    Variant.Cdp (Dpopt.Pipeline.make ~threshold:(4 * spec.max_child_threads) ())
  in
  let cfgs =
    List.map
      (fun cost -> { Gpusim.Config.default with cdp_entry_cost = cost })
      costs
  in
  let times = grid ?pool spec cfgs (Variant.No_cdp, t_all) in
  let rows =
    List.map2
      (fun cost (t_nocdp, t_cdpt) ->
        {
          knob = float_of_int cost;
          values =
            [
              ("No CDP", t_nocdp);
              ("CDP+T(all serialized)", t_cdpt);
              ("residual gap", t_cdpt /. t_nocdp);
            ];
        })
      costs times
  in
  {
    study = "launch-existence overhead explains the road-graph residual";
    knob_name = "cdp_entry_cost";
    bench = spec.name;
    dataset = spec.dataset;
    rows;
  }

(* -- 3: machine width ------------------------------------------------ *)

let machine_width ?pool ?(sms = [ 4; 16; 64 ]) () : study =
  let spec =
    Benchmarks.Bfs.spec ~dataset:(Workloads.Graph_gen.kron_dataset ~scale:9 ())
  in
  let tca =
    Variant.Cdp
      (Dpopt.Pipeline.make ~threshold:32 ~cfactor:8
         ~granularity:(Dpopt.Aggregation.Multi_block 8) ())
  in
  let cfgs =
    List.map (fun n -> { Gpusim.Config.default with num_sms = n }) sms
  in
  let times = grid ?pool spec cfgs (Variant.No_cdp, tca) in
  let rows =
    List.map2
      (fun n (t_nocdp, t_tca) ->
        {
          knob = float_of_int n;
          values =
            [
              ("No CDP", t_nocdp);
              ("CDP+T+C+A", t_tca);
              ("NoCDP/TCA", t_nocdp /. t_tca);
            ];
        })
      sms times
  in
  {
    study = "wider machines reward parallelized nested work";
    knob_name = "num_sms";
    bench = spec.name;
    dataset = spec.dataset;
    rows;
  }

let all ?pool () =
  [ congestion ?pool (); launch_existence ?pool (); machine_width ?pool () ]

let print (s : study) =
  Fmt.pr "@.--- ablation: %s (%s/%s) ---@." s.study s.bench s.dataset;
  (match s.rows with
  | { values; _ } :: _ ->
      Fmt.pr "%22s" s.knob_name;
      List.iter (fun (label, _) -> Fmt.pr " %22s" label) values;
      Fmt.pr "@."
  | [] -> ());
  List.iter
    (fun r ->
      Fmt.pr "%22.0f" r.knob;
      List.iter (fun (_, v) -> Fmt.pr " %22.1f" v) r.values;
      Fmt.pr "@.")
    s.rows
