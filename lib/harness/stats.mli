(** Statistics helpers for the experiment tables.

    All aggregates agree on degenerate input: the empty list yields [nan]
    (rendered as ["-"] by {!speedup_to_string}), never
    [infinity]/[neg_infinity]. *)

(** Geometric mean, accumulated in the log domain so large-tier cycle
    ratios cannot overflow; [nan] on the empty list.
    @raise Invalid_argument on a non-positive or non-finite sample (a
    geomean of speedups is only defined over positive reals, and an [inf]
    or [nan] sample means an upstream cell was degenerate). *)
val geomean : float list -> float

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** [percentile xs p] — the [p]-quantile of [xs] (so [percentile xs 0.99]
    is p99) by linear interpolation between closest ranks: the result sits
    at virtual index [p * (n - 1)] of the sorted samples. [nan] on the
    empty list; a singleton returns its element and [p = 1.] the maximum,
    never [infinity].
    @raise Invalid_argument if [p] is outside [0, 1] (or [nan]). *)
val percentile : float list -> float -> float

(** Smallest sample; [nan] on the empty list. *)
val minimum : float list -> float

(** Largest sample; [nan] on the empty list. *)
val maximum : float list -> float

(** Spearman rank correlation between two paired samples, tie-corrected
    (average ranks). [nan] on fewer than two pairs or when either side is
    all-tied (zero rank variance).
    @raise Invalid_argument on a length mismatch. *)
val spearman : float list -> float list -> float

(** Kendall's τ-b rank correlation (tie-corrected). [nan] on fewer than
    two pairs or an all-tied side.
    @raise Invalid_argument on a length mismatch. *)
val kendall_tau : float list -> float list -> float

(** Jain's fairness index over per-tenant allocations:
    [(Σx)² / (n·Σx²)]. Ranges over (0, 1]; equal shares give exactly 1,
    and k of n tenants starving the rest gives k/n. [nan] on the empty
    list.
    @raise Invalid_argument on a non-positive share (shares are resource
    fractions or throughputs; zero/negative values indicate a bad
    attribution upstream, not a fairness of 0). *)
val jain_fairness : float list -> float

(** [slowdown ~shared ~isolated] — mean of the pairwise ratios
    [shared_i / isolated_i]: how much slower each job ran under
    multi-tenancy than alone on the device, averaged. 1.0 means no
    interference. [nan] on empty lists.
    @raise Invalid_argument on a length mismatch or a non-positive
    isolated latency. *)
val slowdown : shared:float list -> isolated:float list -> float

(** Render a speedup: ["43.0x"], ["120x"], ["0.08x"]; [nan] is ["-"]. *)
val speedup_to_string : float -> string
