(** Statistics helpers for the experiment tables. *)

(** Geometric mean; [nan] on the empty list. *)
val geomean : float list -> float

val mean : float list -> float
val minimum : float list -> float
val maximum : float list -> float

(** Render a speedup: ["43.0x"], ["120x"], ["0.08x"]. *)
val speedup_to_string : float -> string
