(** The code-version axes of the paper's evaluation (Section VII): which
    optimizations are enabled, and with which tuning parameters. *)

type t =
  | No_cdp  (** The original version without dynamic parallelism. *)
  | Cdp of Dpopt.Pipeline.options
      (** The CDP version, run through the compiler with these passes. *)

let label = function
  | No_cdp -> "No CDP"
  | Cdp opts -> Dpopt.Pipeline.label opts

(** Which of T/C/A a combination enables (the paper's Fig. 9 x-axis). *)
type combo = { t : bool; c : bool; a : bool }

let combo_label c =
  if not (c.t || c.c || c.a) then "CDP"
  else
    "CDP+"
    ^ String.concat "+"
        (List.filter_map Fun.id
           [
             (if c.t then Some "T" else None);
             (if c.c then Some "C" else None);
             (if c.a then Some "A" else None);
           ])

(** All eight T/C/A combinations, in the paper's Fig. 9 order. *)
let all_combos =
  [
    { t = false; c = false; a = false };
    { t = true; c = false; a = false };
    { t = false; c = true; a = false };
    { t = false; c = false; a = true };
    { t = true; c = true; a = false };
    { t = true; c = false; a = true };
    { t = false; c = true; a = true };
    { t = true; c = true; a = true };
  ]

(** Tuning parameters for one concrete run. *)
type params = {
  threshold : int;
  cfactor : int;
  granularity : Dpopt.Aggregation.granularity;
  agg_threshold : int option;
}

let default_params =
  {
    threshold = 64;
    cfactor = 8;
    granularity = Dpopt.Aggregation.Block;
    agg_threshold = None;
  }

let pp_params ppf p =
  Fmt.pf ppf "thr=%d cf=%d gran=%a" p.threshold p.cfactor
    Dpopt.Aggregation.pp_granularity p.granularity

(** Instantiate a combination with parameters. *)
let instantiate (c : combo) (p : params) : t =
  Cdp
    (Dpopt.Pipeline.make
       ?threshold:(if c.t then Some p.threshold else None)
       ?cfactor:(if c.c then Some p.cfactor else None)
       ?granularity:(if c.a then Some p.granularity else None)
       ?agg_threshold:(if c.a then p.agg_threshold else None)
       ())

(** All eight combinations instantiated at [params], with their labels, in
    the Fig. 9 order of {!all_combos}. The head is the untransformed
    ["CDP"] baseline. *)
let power_set ?(params = default_params) () : (string * t) list =
  List.map (fun c -> (combo_label c, instantiate c params)) all_combos
