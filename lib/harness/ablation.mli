(** Ablation studies of the simulator's design choices (DESIGN.md §4):
    each turns one {!Gpusim.Config} knob and measures whether the paper
    effect it models appears/disappears. Run via
    [bench/main.exe ablation].

    Each study evaluates its whole (knob × variant) grid through
    {!Experiment.run_cells}; pass [?pool] to run the cells on worker
    domains — the resulting rows are identical at any parallelism. *)

type row = { knob : float; values : (string * float) list }

type study = {
  study : string;
  knob_name : string;
  bench : string;
  dataset : string;
  rows : row list;
}

(** Launch-queue service interval vs the CDP/CDP+A gap: congestion is what
    collapses plain CDP. *)
val congestion : ?pool:Pool.t -> ?intervals:int list -> unit -> study

(** [cdp_entry_cost] vs the road-graph residual of fully-serialized CDP+T
    over No CDP (the Section VIII-D launch-existence overhead). *)
val launch_existence : ?pool:Pool.t -> ?costs:int list -> unit -> study

(** SM count vs the No-CDP / CDP+T+C+A balance (underutilization). *)
val machine_width : ?pool:Pool.t -> ?sms:int list -> unit -> study

val all : ?pool:Pool.t -> unit -> study list
val print : study -> unit
