(** Run one (benchmark, dataset, variant) cell and snapshot its results. *)

type snapshot = {
  parent_cycles : float;
  child_cycles : float;
  agg_cycles : float;
  disagg_cycles : float;
  launch_cycles : float;
  grids_launched : int;
  device_launches : int;
  host_launches : int;
  blocks_executed : int;
  threads_executed : int;
  serialized_launches : int;
  max_pending_launches : int;
}

val snapshot_of_metrics : Gpusim.Metrics.t -> snapshot

type measurement = {
  bench : string;
  dataset : string;
  variant : string;
  time : float;  (** Simulated cycles for the whole application run. *)
  fingerprint : int;
  snap : snapshot;
  sampled : bool;
      (** Grid/launch sampling actually triggered: [time] is an
          extrapolation and [fingerprint] was not validated. *)
  rel_std_error : float;
      (** Relative standard error of the extrapolated compute total
          ({!Gpusim.Metrics.rel_std_error}); [0.0] on exact runs. *)
  extrapolation : Costmodel.Extrapolate.report option;
      (** Full extrapolation report (CI bounds, coverage); [Some] exactly
          when [sampled]. *)
}

exception Validation_failure of string

(** Sampling knobs appropriate for a registry size: the defaults at
    small/medium; much lower block/launch fractions at large, where grids
    reach 100k+ blocks and default coverage would defeat the point of
    sampling. *)
val sampling_for_size : Benchmarks.Registry.size -> Gpusim.Config.sampling

(** [run ?cfg ?validate spec variant] executes the benchmark. With
    [~validate:true] (default) the output fingerprint is checked against
    the pure-OCaml reference. Validation is skipped when [cfg] enables
    {!Gpusim.Config.sampling} — a sampled run's outputs are estimates by
    construction.
    @raise Validation_failure on mismatch — transformed code must be
    correct, not just fast. *)
val run :
  ?cfg:Gpusim.Config.t ->
  ?validate:bool ->
  Benchmarks.Bench_common.spec ->
  Variant.t ->
  measurement

(** One cell of a sweep: an optional simulator-config override plus the
    (benchmark, variant) pair to run under it. *)
type cell = {
  cell_cfg : Gpusim.Config.t option;
  cell_spec : Benchmarks.Bench_common.spec;
  cell_variant : Variant.t;
}

val cell :
  ?cfg:Gpusim.Config.t -> Benchmarks.Bench_common.spec -> Variant.t -> cell

(** [run_cells ?pool ?validate cells] evaluates every cell — on [pool]
    when given, sequentially otherwise — returning measurements in the
    {e input} order (independent of completion order) paired with each
    run's wall-clock seconds. Every cell builds its own
    device/memory/metrics, so the results are identical whatever the
    parallelism; all sweep consumers route through here. [?progress] is
    stepped once per finished cell (from whichever domain ran it). *)
val run_cells :
  ?pool:Pool.t ->
  ?validate:bool ->
  ?progress:Progress.t ->
  cell list ->
  (measurement * float) list
