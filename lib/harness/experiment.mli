(** Run one (benchmark, dataset, variant) cell and snapshot its results. *)

type snapshot = {
  parent_cycles : float;
  child_cycles : float;
  agg_cycles : float;
  disagg_cycles : float;
  launch_cycles : float;
  grids_launched : int;
  device_launches : int;
  host_launches : int;
  blocks_executed : int;
  threads_executed : int;
  serialized_launches : int;
  max_pending_launches : int;
}

val snapshot_of_metrics : Gpusim.Metrics.t -> snapshot

type measurement = {
  bench : string;
  dataset : string;
  variant : string;
  time : float;  (** Simulated cycles for the whole application run. *)
  fingerprint : int;
  snap : snapshot;
}

exception Validation_failure of string

(** [run ?cfg ?validate spec variant] executes the benchmark. With
    [~validate:true] (default) the output fingerprint is checked against
    the pure-OCaml reference.
    @raise Validation_failure on mismatch — transformed code must be
    correct, not just fast. *)
val run :
  ?cfg:Gpusim.Config.t ->
  ?validate:bool ->
  Benchmarks.Bench_common.spec ->
  Variant.t ->
  measurement
