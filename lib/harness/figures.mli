(** Reproduction of the paper's evaluation tables and figures as text
    output. Each function prints a table shaped like the paper's plot and
    returns its data for tests and CSV export.

    The [figN] functions accept [?pool]: when given, per-spec work
    (baseline runs plus tuning) fans out across worker domains, and all
    printing happens afterwards from the ordered results, so output is
    bit-identical at any parallelism. *)

(** Table I: benchmark/dataset inventory with shape statistics. *)
val table1 : ?size:Benchmarks.Registry.size -> unit -> unit

type fig9_row = {
  bench : string;
  dataset : string;
  cdp_time : float;
  no_cdp_time : float;
  combos : (string * float * Variant.params) list;
      (** (combo label, best tuned time, best parameters). *)
}

(** One Fig. 9 row: baseline runs plus a tuned measurement per
    optimization combination. [beyond_max] extends the threshold grid past
    the largest launch (the Fig. 12 methodology). *)
val fig9_row :
  ?cfg:Gpusim.Config.t ->
  ?quick:bool ->
  ?beyond_max:bool ->
  Benchmarks.Bench_common.spec ->
  fig9_row

val combo_time : fig9_row -> string -> float

(** Fig. 9: the whole table plus the headline geomeans (returns
    [(label, value)] pairs). *)
val fig9 :
  ?cfg:Gpusim.Config.t ->
  ?quick:bool ->
  ?pool:Pool.t ->
  ?size:Benchmarks.Registry.size ->
  unit ->
  fig9_row list * (string * float) list

type fig10_cell = {
  variant : string;
  parent : float;
  child : float;
  agg : float;
  launch : float;
  disagg : float;
}

(** Fig. 10: execution-time breakdown for CDP+A, CDP+T+A, CDP+T+C+A. *)
val fig10 :
  ?cfg:Gpusim.Config.t ->
  ?pool:Pool.t ->
  ?size:Benchmarks.Registry.size ->
  unit ->
  (string * string * fig10_cell list) list

(** Fig. 11: exhaustive threshold × granularity sweep, one dataset per
    benchmark. *)
val fig11 :
  ?cfg:Gpusim.Config.t ->
  ?pool:Pool.t ->
  ?size:Benchmarks.Registry.size ->
  unit ->
  (string
  * string
  * float
  * (int * (Dpopt.Aggregation.granularity option * float) list) list)
  list

(** Fig. 12: the graph benchmarks on road graphs; returns the rows and the
    CDP+T+C+A-over-No-CDP geomean (expected below 1). *)
val fig12 :
  ?cfg:Gpusim.Config.t ->
  ?quick:bool ->
  ?pool:Pool.t ->
  ?size:Benchmarks.Registry.size ->
  unit ->
  fig9_row list * float

(** Section VIII-C: fixed threshold 128 vs tuned; returns both geomeans of
    CDP+T+C+A over CDP+C+A. *)
val fixed128 :
  ?cfg:Gpusim.Config.t ->
  ?pool:Pool.t ->
  ?size:Benchmarks.Registry.size ->
  unit ->
  float * float
