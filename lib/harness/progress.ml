(** Carriage-return progress lines for long sweeps (see the interface).
    Rendering goes to stderr so stdout stays byte-identical with and
    without a TTY; the counter is mutex-guarded because pool worker
    domains all step the same tracker. *)

type t = {
  label : string;
  total : int;
  mutable done_ : int;
  t0 : float;
  mutable last_render : float;  (** Wall time of the last repaint. *)
  enabled : bool;
  lock : Mutex.t;
}

let tty () =
  try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false

let create ?enabled ~label ~total () =
  let enabled = (match enabled with Some e -> e | None -> tty ()) && total > 0 in
  {
    label;
    total;
    done_ = 0;
    t0 = Unix.gettimeofday ();
    last_render = 0.0;
    enabled;
    lock = Mutex.create ();
  }

(* Repaint in place. Called with the lock held. *)
let render t now =
  let elapsed = now -. t.t0 in
  let eta =
    if t.done_ = 0 then ""
    else
      Printf.sprintf ", ETA %.0fs"
        (elapsed /. float_of_int t.done_ *. float_of_int (t.total - t.done_))
  in
  Printf.eprintf "\r%s: %d/%d cells, %.1fs elapsed%s \027[K%!" t.label t.done_
    t.total elapsed eta

let step t =
  Mutex.protect t.lock @@ fun () ->
  t.done_ <- t.done_ + 1;
  if t.enabled then begin
    let now = Unix.gettimeofday () in
    (* throttle repaints: a sweep of thousands of sub-second cells must
       not turn stderr into a hot loop *)
    if now -. t.last_render >= 0.2 || t.done_ >= t.total then begin
      t.last_render <- now;
      render t now
    end
  end

let finish t =
  Mutex.protect t.lock @@ fun () ->
  if t.enabled then begin
    render t (Unix.gettimeofday ());
    prerr_newline ()
  end

let with_progress ?enabled ~label ~total f =
  let p = create ?enabled ~label ~total () in
  Fun.protect ~finally:(fun () -> finish p) (fun () -> f p)
