(** A small derivative-free autotuner over the optimization parameters
    (the paper cites OpenTuner in Section VIII-C; this is a self-contained
    stand-in): random sampling, then greedy neighborhood descent, under a
    simulator-run budget. Deterministic given [seed]; every evaluation
    validates the benchmark output. *)

type space = {
  thresholds : int list;
  cfactors : int list;
  granularities : Dpopt.Aggregation.granularity list;
}

val default_space : Benchmarks.Bench_common.spec -> space

type outcome = {
  best_params : Variant.params;
  best_time : float;
  runs_used : int;
  trace : (Variant.params * float) list;  (** Evaluation order. *)
}

val search :
  ?budget:int ->
  ?seed:int ->
  ?space:space ->
  Benchmarks.Bench_common.spec ->
  Variant.combo ->
  outcome
