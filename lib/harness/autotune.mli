(** A small derivative-free autotuner over the optimization parameters
    (the paper cites OpenTuner in Section VIII-C; this is a self-contained
    stand-in): random sampling, then greedy neighborhood descent, under a
    simulator-run budget. Deterministic given [seed]; every evaluation
    validates the benchmark output.

    With [~surrogate] the search scores the whole parameter grid with the
    analytical cost model — no simulator runs — then spends at most half
    the budget on the simulator: a frontier of best-predicted points with
    distinct thresholds plus greedy descent from the frontier's winner. *)

type space = {
  thresholds : int list;
  cfactors : int list;
  granularities : Dpopt.Aggregation.granularity list;
}

val default_space : Benchmarks.Bench_common.spec -> space

type surrogate_report = {
  sr_grid : int;  (** Parameter points scored by the model. *)
  sr_simulated : int;  (** Simulator runs spent (frontier + descent). *)
  sr_saved_vs_budget : int;  (** [budget - sr_simulated], floored at 0. *)
  sr_best_rank : int;
      (** Predicted rank of the simulated winner (0 = the model's own top
          choice). *)
  sr_predicted : (Variant.params * float) list;
      (** Full predicted ranking, ascending by predicted cycles. *)
}

type outcome = {
  best_params : Variant.params;
  best_time : float;
  runs_used : int;  (** Simulator runs actually performed. *)
  cache_hits : int;
      (** Evaluations answered from the params-keyed memo instead of the
          simulator. *)
  trace : (Variant.params * float) list;  (** Simulator evaluation order. *)
  surrogate : surrogate_report option;  (** Present iff [~surrogate]. *)
}

(** Knobs of passes the combo disables are pinned to
    {!Variant.default_params} — such points denote the same experiment and
    share one memo entry. Knobs a pass ignores at the chosen setting are
    pinned too: [agg_threshold] only affects warp/block aggregation
    codegen, so at multi-block/grid granularity it is normalized to
    [None] (params differing only there yield byte-identical programs). *)
val normalize : Variant.combo -> Variant.params -> Variant.params

(** Every distinct experiment of the space for this combo (disabled knobs
    pinned to defaults), in deterministic grid order. *)
val enumerate_params : Variant.combo -> space -> Variant.params list

(** [search ?budget ?seed ?space ?surrogate ?topk spec combo] — at most
    [budget] simulator runs (default 12). With [~surrogate], scores the
    whole grid with the model, then spends at most [budget / 2] simulator
    runs — a frontier of the [topk] (default [max 1 (budget / 3)])
    best-predicted points with distinct thresholds, plus greedy descent
    from the frontier's winner; the outcome then carries a
    {!surrogate_report}. *)
val search :
  ?budget:int ->
  ?seed:int ->
  ?space:space ->
  ?surrogate:Costmodel.Model.coeffs ->
  ?topk:int ->
  Benchmarks.Bench_common.spec ->
  Variant.combo ->
  outcome
