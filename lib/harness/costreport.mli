(** The [BENCH_costmodel.json] artifact behind [runbench --sweep]: for
    every registry benchmark, the checked-in cost-model table's
    predicted-vs-measured rank correlation across the 8 pass combinations,
    plus a surrogate-guided vs. unpruned {!Autotune.search} comparison on
    the full T+C+A space — simulator runs saved and whether the
    surrogate's pick stayed within 10% of the unpruned best. All outputs
    are deterministic. *)

type bench_report = {
  cr_bench : string;
  cr_dataset : string;
  cr_spearman : float;  (** Over the 8 pass combinations. *)
  cr_kendall : float;
  cr_plain_runs : int;  (** Simulator runs of the unpruned search. *)
  cr_surrogate_runs : int;
      (** Simulator runs of the surrogate search (frontier + descent). *)
  cr_saved_pct : float;  (** 100·(plain − surrogate)/plain. *)
  cr_plain_best : float;
  cr_surrogate_best : float;
  cr_within_10pct : bool;
      (** Surrogate best_time ≤ 1.1 × unpruned best_time. *)
  cr_best_rank : int;  (** Model rank of the surrogate winner (0-based). *)
}

type t = {
  cm_table_version : int;
  cm_size : Benchmarks.Registry.size;
  cm_budget : int;
  cm_reports : bench_report list;
  cm_mean_spearman : float;
  cm_min_spearman : float;
  cm_mean_saved_pct : float;
  cm_all_within_10pct : bool;
}

(** One benchmark's report: 8 calibration-style simulator runs for the
    correlation, one unpruned and one surrogate-guided search. *)
val report_spec : ?budget:int -> Benchmarks.Bench_common.spec -> bench_report

(** Whole registry (plus road graphs); specs fan out on [pool] when
    given. Default budget 12, matching {!Autotune.search}. *)
val collect :
  ?size:Benchmarks.Registry.size -> ?pool:Pool.t -> ?budget:int -> unit -> t

val print_table : t -> unit

(** Write the [BENCH_costmodel.json] artifact (schema
    {!Sweep.schema_version}, kind ["dpopt.costmodel"]). *)
val write_json : string -> t -> unit
