(** The code-version axes of the paper's evaluation (Section VII). *)

type t =
  | No_cdp  (** The original version without dynamic parallelism. *)
  | Cdp of Dpopt.Pipeline.options  (** CDP run through the compiler. *)

val label : t -> string

(** Which of T/C/A a combination enables (Fig. 9's x-axis). *)
type combo = { t : bool; c : bool; a : bool }

val combo_label : combo -> string

(** The eight combinations, in Fig. 9 order (plain CDP first). *)
val all_combos : combo list

(** Tuning parameters for one concrete run. *)
type params = {
  threshold : int;
  cfactor : int;
  granularity : Dpopt.Aggregation.granularity;
  agg_threshold : int option;
}

val default_params : params
val pp_params : Format.formatter -> params -> unit

(** Instantiate a combination: only enabled passes receive parameters. *)
val instantiate : combo -> params -> t

(** All eight combinations instantiated at [params], with their labels, in
    {!all_combos} order (plain ["CDP"] first). *)
val power_set : ?params:params -> unit -> (string * t) list
