(** Progress lines for long-running sweeps: elapsed wall clock, cells
    done/total, and an ETA extrapolated from the mean cell time so far.

    Rendering is carriage-return-in-place on stderr and is {e off} unless
    stderr is a TTY (or [?enabled] forces it), so redirected/CI runs stay
    clean and stdout is untouched either way. {!step} is safe to call
    from {!Pool} worker domains. *)

type t

(** [create ~label ~total ()] starts a tracker for [total] cells.
    [?enabled] overrides the TTY autodetection (a [total] of 0 disables
    rendering regardless). *)
val create : ?enabled:bool -> label:string -> total:int -> unit -> t

(** Count one finished cell and repaint (throttled to ~5 Hz). *)
val step : t -> unit

(** Final repaint plus newline, so subsequent output starts cleanly. *)
val finish : t -> unit

(** [with_progress ~label ~total f] — {!create}, run [f], always
    {!finish}. *)
val with_progress :
  ?enabled:bool -> label:string -> total:int -> (t -> 'a) -> 'a
