type knob = { name : string; default : int; doc : string }

let knobs =
  [
    {
      name = "DPFUZZ_ITERS";
      default = 25;
      doc = "Random cases per @fuzz differential-fuzz run";
    };
    {
      name = "DPCHECK_ITERS";
      default = 200;
      doc = "Random cases per @check sanitizer-mode fuzz smoke";
    };
    {
      name = "DPOPTD_REQS";
      default = 200;
      doc = "Synthetic requests per @serve compile-service smoke";
    };
    {
      name = "BYTECODE_SMOKE_ITERS";
      default = 60_000;
      doc = "Loop trip count of the @ir engine-throughput gate";
    };
    {
      name = "NATIVE_SMOKE_ITERS";
      default = 3;
      doc = "Repeated native executions per @native backend smoke";
    };
    {
      name = "MT_SMOKE_JOBS";
      default = 6;
      doc = "Jobs per tenant in the @mt multi-tenant smoke";
    };
    {
      name = "SCALE_JOBS";
      default = 4;
      doc = "Worker domains for the @scale parallel-dispatch gate";
    };
    {
      name = "SCALE_SMOKE";
      default = 2;
      doc = "Medium-tier specs checked by the @scale extrapolation gate";
    };
  ]

let find name =
  match List.find_opt (fun k -> k.name = name) knobs with
  | Some k -> k
  | None -> invalid_arg (Fmt.str "Harness.Env: unknown knob %S" name)

let default name = (find name).default

let get name =
  let k = find name in
  match Sys.getenv_opt k.name with
  | None -> k.default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> k.default)
