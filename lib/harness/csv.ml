(** CSV export of experiment results — the paper's artifact scripts emit
    CSVs of execution times per benchmark/dataset/configuration, and so do
    we ([bench/main.exe --csv=DIR]). *)

(** Render a cycle count exactly. Simulated cycle totals are integral in
    practice but carried as floats; at large-tier scale they exceed what a
    float round-trips through fixed-point formats with fractional digits,
    so cells and JSON emit the integer form: every 63-bit-representable
    integral count prints as an OCaml int (no float formatting involved),
    and anything bigger or genuinely fractional falls back to ["%.0f"],
    which still prints every digit of the integer part. *)
let cycles v =
  if Float.is_integer v && Float.abs v < 4.611686018427387e18 then
    (* exactly representable as an int on 64-bit *)
    string_of_int (int_of_float v)
  else Printf.sprintf "%.0f" v

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_rows path ~header rows =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (String.concat "," (List.map escape header));
      Out_channel.output_char oc '\n';
      List.iter
        (fun row ->
          Out_channel.output_string oc
            (String.concat "," (List.map escape row));
          Out_channel.output_char oc '\n')
        rows)

(** Fig. 9 rows: one line per (bench, dataset) with absolute simulated
    times per code version. *)
let fig9 path (rows : Figures.fig9_row list) =
  let header =
    [ "bench"; "dataset"; "CDP"; "NoCDP" ]
    @ List.concat_map
        (fun (label, _, _) -> [ label; label ^ "_params" ])
        (match rows with r :: _ -> r.combos | [] -> [])
  in
  write_rows path ~header
    (List.map
       (fun (r : Figures.fig9_row) ->
         [ r.bench; r.dataset;
           cycles r.cdp_time;
           cycles r.no_cdp_time ]
         @ List.concat_map
             (fun (_, time, params) ->
               [
                 cycles time;
                 Fmt.str "%a" Variant.pp_params params;
               ])
             r.combos)
       rows)

(** Fig. 11 sweep: long format, one line per cell. *)
let fig11 path
    (data :
      (string * string * float
      * (int * (Dpopt.Aggregation.granularity option * float) list) list)
      list) =
  let rows =
    List.concat_map
      (fun (bench, dataset, cdp_time, table) ->
        List.concat_map
          (fun (threshold, cells) ->
            List.map
              (fun (gran, time) ->
                [
                  bench;
                  dataset;
                  string_of_int threshold;
                  (match gran with
                  | None -> "none"
                  | Some g -> Fmt.str "%a" Dpopt.Aggregation.pp_granularity g);
                  cycles time;
                  Printf.sprintf "%.3f" (cdp_time /. time);
                ])
              cells)
          table)
      data
  in
  write_rows path
    ~header:
      [ "bench"; "dataset"; "threshold"; "granularity"; "time_cycles";
        "speedup_vs_cdp" ]
    rows

(** Fig. 10 breakdown: long format. *)
let fig10 path (data : (string * string * Figures.fig10_cell list) list) =
  let rows =
    List.concat_map
      (fun (bench, dataset, cells) ->
        List.map
          (fun (c : Figures.fig10_cell) ->
            [
              bench; dataset; c.variant;
              cycles c.parent;
              cycles c.child;
              cycles c.agg;
              cycles c.launch;
              cycles c.disagg;
            ])
          cells)
      data
  in
  write_rows path
    ~header:
      [ "bench"; "dataset"; "variant"; "parent"; "child"; "aggregation";
        "launch"; "disaggregation" ]
    rows
