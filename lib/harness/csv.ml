(** CSV export of experiment results — the paper's artifact scripts emit
    CSVs of execution times per benchmark/dataset/configuration, and so do
    we ([bench/main.exe --csv=DIR]). *)

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_rows path ~header rows =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (String.concat "," (List.map escape header));
      Out_channel.output_char oc '\n';
      List.iter
        (fun row ->
          Out_channel.output_string oc
            (String.concat "," (List.map escape row));
          Out_channel.output_char oc '\n')
        rows)

(** Fig. 9 rows: one line per (bench, dataset) with absolute simulated
    times per code version. *)
let fig9 path (rows : Figures.fig9_row list) =
  let header =
    [ "bench"; "dataset"; "CDP"; "NoCDP" ]
    @ List.concat_map
        (fun (label, _, _) -> [ label; label ^ "_params" ])
        (match rows with r :: _ -> r.combos | [] -> [])
  in
  write_rows path ~header
    (List.map
       (fun (r : Figures.fig9_row) ->
         [ r.bench; r.dataset;
           Printf.sprintf "%.0f" r.cdp_time;
           Printf.sprintf "%.0f" r.no_cdp_time ]
         @ List.concat_map
             (fun (_, time, params) ->
               [
                 Printf.sprintf "%.0f" time;
                 Fmt.str "%a" Variant.pp_params params;
               ])
             r.combos)
       rows)

(** Fig. 11 sweep: long format, one line per cell. *)
let fig11 path
    (data :
      (string * string * float
      * (int * (Dpopt.Aggregation.granularity option * float) list) list)
      list) =
  let rows =
    List.concat_map
      (fun (bench, dataset, cdp_time, table) ->
        List.concat_map
          (fun (threshold, cells) ->
            List.map
              (fun (gran, time) ->
                [
                  bench;
                  dataset;
                  string_of_int threshold;
                  (match gran with
                  | None -> "none"
                  | Some g -> Fmt.str "%a" Dpopt.Aggregation.pp_granularity g);
                  Printf.sprintf "%.0f" time;
                  Printf.sprintf "%.3f" (cdp_time /. time);
                ])
              cells)
          table)
      data
  in
  write_rows path
    ~header:
      [ "bench"; "dataset"; "threshold"; "granularity"; "time_cycles";
        "speedup_vs_cdp" ]
    rows

(** Fig. 10 breakdown: long format. *)
let fig10 path (data : (string * string * Figures.fig10_cell list) list) =
  let rows =
    List.concat_map
      (fun (bench, dataset, cells) ->
        List.map
          (fun (c : Figures.fig10_cell) ->
            [
              bench; dataset; c.variant;
              Printf.sprintf "%.0f" c.parent;
              Printf.sprintf "%.0f" c.child;
              Printf.sprintf "%.0f" c.agg;
              Printf.sprintf "%.0f" c.launch;
              Printf.sprintf "%.0f" c.disagg;
            ])
          cells)
      data
  in
  write_rows path
    ~header:
      [ "bench"; "dataset"; "variant"; "parent"; "child"; "aggregation";
        "launch"; "disaggregation" ]
    rows
