(** Parameter tuning (paper Section VII): per optimization combination,
    search the relevant parameters and report the best configuration. The
    quick grids follow the paper's Section VIII-C advice; {!sweep} is the
    exhaustive search behind Fig. 11. *)

(** Powers of two up to the benchmark's largest dynamic launch (so at least
    one launch survives); [~beyond_max:true] appends one over-max point
    (the Fig. 12 methodology). *)
val threshold_grid :
  ?beyond_max:bool -> Benchmarks.Bench_common.spec -> int list

val quick_thresholds :
  ?beyond_max:bool -> Benchmarks.Bench_common.spec -> int list

val quick_cfactors : int list
val quick_granularities : Dpopt.Aggregation.granularity list
val all_granularities : Dpopt.Aggregation.granularity list

(** Parameter grid for one combination: only enabled passes vary. *)
val param_grid :
  ?quick:bool ->
  ?beyond_max:bool ->
  Variant.combo ->
  Benchmarks.Bench_common.spec ->
  Variant.params list

type tuned = {
  best : Experiment.measurement;
  best_params : Variant.params;
  all_runs : (Variant.params * Experiment.measurement) list;
}

(** Run the grid; return the configuration with the lowest simulated time.
    Every run validates the benchmark output. *)
val tune :
  ?quick:bool ->
  ?beyond_max:bool ->
  ?cfg:Gpusim.Config.t ->
  Benchmarks.Bench_common.spec ->
  Variant.combo ->
  tuned

(** Exhaustive threshold × granularity sweep at a fixed coarsening factor
    (Fig. 11). [None] granularity = thresholding only. *)
val sweep :
  ?cfg:Gpusim.Config.t ->
  ?cfactor:int ->
  ?granularities:Dpopt.Aggregation.granularity list ->
  Benchmarks.Bench_common.spec ->
  (int * (Dpopt.Aggregation.granularity option * float) list) list
