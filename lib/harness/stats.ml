(** Small statistics helpers for the experiment tables.

    Degenerate inputs are handled uniformly: every aggregate returns [nan]
    on the empty list (not [infinity]/[neg_infinity], which used to leak
    out of [minimum]/[maximum] and read like real measurements in the
    tables). [geomean] additionally rejects non-positive samples — the
    geometric mean of speedups is only defined over positive reals, and
    silently returning [0.] or [nan] has masked bad ratio computations
    before. *)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      List.iter
        (fun x ->
          if x <= 0.0 then
            invalid_arg
              (Fmt.str "Stats.geomean: non-positive sample %g" x))
        xs;
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function
  | [] -> nan
  | xs -> List.fold_left Float.min infinity xs

let maximum = function
  | [] -> nan
  | xs -> List.fold_left Float.max neg_infinity xs

(** Render a speedup: "43.0x", or "0.08x" for slowdowns. *)
let speedup_to_string s =
  if Float.is_nan s then "-"
  else if s >= 100.0 then Fmt.str "%.0fx" s
  else if s >= 10.0 then Fmt.str "%.1fx" s
  else Fmt.str "%.2fx" s
