(** Small statistics helpers for the experiment tables. *)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum xs = List.fold_left Float.min infinity xs
let maximum xs = List.fold_left Float.max neg_infinity xs

(** Render a speedup: "43.0x", or "0.08x" for slowdowns. *)
let speedup_to_string s =
  if Float.is_nan s then "-"
  else if s >= 100.0 then Fmt.str "%.0fx" s
  else if s >= 10.0 then Fmt.str "%.1fx" s
  else Fmt.str "%.2fx" s
