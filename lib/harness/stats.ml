(** Small statistics helpers for the experiment tables.

    Degenerate inputs are handled uniformly: every aggregate returns [nan]
    on the empty list (not [infinity]/[neg_infinity], which used to leak
    out of [minimum]/[maximum] and read like real measurements in the
    tables). [geomean] additionally rejects non-positive samples — the
    geometric mean of speedups is only defined over positive reals, and
    silently returning [0.] or [nan] has masked bad ratio computations
    before. *)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      List.iter
        (fun x ->
          (* non-finite samples (an inf ratio from a zero-time cell, a nan
             from a degenerate aggregate) would silently poison the mean
             through the log sum; reject them like non-positives *)
          if x <= 0.0 || not (Float.is_finite x) then
            invalid_arg
              (Fmt.str "Stats.geomean: non-positive or non-finite sample %g"
                 x))
        xs;
      (* log-domain accumulation: the direct product of large-tier cycle
         ratios overflows the float range long before the mean does *)
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg (Fmt.str "Stats.percentile: fraction %g outside [0, 1]" p);
  match xs with
  | [] -> nan
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      (* linear interpolation between closest ranks: the p-quantile sits at
         virtual index p*(n-1) of the sorted samples, so a singleton returns
         its element and p=1 returns the maximum — never [infinity]. *)
      let pos = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (lo + 1) (n - 1) in
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let minimum = function
  | [] -> nan
  | xs -> List.fold_left Float.min infinity xs

let maximum = function
  | [] -> nan
  | xs -> List.fold_left Float.max neg_infinity xs

(* Average ranks (1-based; ties get the mean of their rank range), so tied
   samples don't bias the rank correlations. *)
let ranks (xs : float array) : float array =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    (* positions !i..!j hold equal values: average their 1-based ranks *)
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Stats.spearman: length mismatch";
  match xs with
  | [] -> nan
  | [ _ ] -> nan
  | _ ->
      let rx = ranks (Array.of_list xs) and ry = ranks (Array.of_list ys) in
      let n = Array.length rx in
      let fn = float_of_int n in
      let mean = (fn +. 1.0) /. 2.0 in
      let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
      for i = 0 to n - 1 do
        let dx = rx.(i) -. mean and dy = ry.(i) -. mean in
        sxy := !sxy +. (dx *. dy);
        sxx := !sxx +. (dx *. dx);
        syy := !syy +. (dy *. dy)
      done;
      (* all-tied input has zero rank variance: correlation is undefined *)
      if !sxx = 0.0 || !syy = 0.0 then nan
      else !sxy /. sqrt (!sxx *. !syy)

let kendall_tau xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Stats.kendall_tau: length mismatch";
  match xs with
  | [] | [ _ ] -> nan
  | _ ->
      let x = Array.of_list xs and y = Array.of_list ys in
      let n = Array.length x in
      let concordant = ref 0 and discordant = ref 0 in
      let tx = ref 0 and ty = ref 0 in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          let dx = compare x.(i) x.(j) and dy = compare y.(i) y.(j) in
          if dx = 0 && dy = 0 then ()
          else if dx = 0 then incr tx
          else if dy = 0 then incr ty
          else if dx * dy > 0 then incr concordant
          else incr discordant
        done
      done;
      (* tau-b: tie-corrected denominator *)
      let c = float_of_int !concordant and d = float_of_int !discordant in
      let denom =
        sqrt
          ((c +. d +. float_of_int !tx) *. (c +. d +. float_of_int !ty))
      in
      if denom = 0.0 then nan else (c -. d) /. denom

let jain_fairness xs =
  match xs with
  | [] -> nan
  | _ ->
      List.iter
        (fun x ->
          if x <= 0.0 then
            invalid_arg
              (Fmt.str "Stats.jain_fairness: non-positive share %g" x))
        xs;
      let s = List.fold_left ( +. ) 0.0 xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      let n = float_of_int (List.length xs) in
      s *. s /. (n *. s2)

let slowdown ~shared ~isolated =
  if List.length shared <> List.length isolated then
    invalid_arg "Stats.slowdown: length mismatch";
  match shared with
  | [] -> nan
  | _ ->
      mean
        (List.map2
           (fun s i ->
             if i <= 0.0 then
               invalid_arg
                 (Fmt.str "Stats.slowdown: non-positive isolated latency %g"
                    i);
             s /. i)
           shared isolated)

(** Render a speedup: "43.0x", or "0.08x" for slowdowns. *)
let speedup_to_string s =
  if Float.is_nan s then "-"
  else if s >= 100.0 then Fmt.str "%.0fx" s
  else if s >= 10.0 then Fmt.str "%.1fx" s
  else Fmt.str "%.2fx" s
