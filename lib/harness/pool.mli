(** A work-stealing job pool on OCaml 5 domains.

    The sweep consumers ([runbench --sweep], {!Ablation}, {!Figures},
    [bin/dpfuzz]) all evaluate large batches of mutually independent
    (benchmark, dataset, variant) or (seed, variant, config) cells. The
    pool runs such batches across [jobs] worker domains while keeping the
    {e results} deterministic: {!run} and the [map] wrappers always return
    results in submission (index) order, and an exception raised by a job
    is re-raised in the caller for the {e lowest} failing index, whatever
    order the jobs actually completed in. Output produced from the results
    is therefore bit-identical between [~jobs:1] and [~jobs:N].

    Scheduling is work-stealing under a single lock: each worker owns a
    queue seeded round-robin with batch indices, pops its own queue first,
    and steals half of the largest other queue when it runs dry. Workers
    are persistent — they are spawned once by {!create}, sleep on a
    condition variable between batches, and exit on {!shutdown} — so the
    per-batch overhead is one broadcast, not [jobs] domain spawns.

    {b Determinism contract for jobs.} Jobs run concurrently in arbitrary
    order, so they must not print, and must not mutate state shared with
    other jobs: each job builds its own {!Gpusim.Device} / {!Gpusim.Memory}
    / {!Gpusim.Metrics} (see the domain-safety notes in those interfaces).
    All reporting belongs in the caller, iterating the returned array.

    {b Reentrancy.} Calling {!run} on a pool from inside one of its own
    jobs deadlocks; give nested work its own pool or run it inline. A pool
    may be {e used} from any single domain at a time, but not from two
    concurrently. *)

type t

(** [Domain.recommended_domain_count () - 1] (one domain is left for the
    submitting caller), at least 1. *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs = 1] spawns
    none: every batch then runs sequentially, in index order, in the
    caller). [jobs] defaults to {!default_jobs}; values below 1 are
    clamped to 1. *)
val create : ?jobs:int -> unit -> t

(** The parallelism this pool was created with (>= 1). *)
val jobs : t -> int

(** [run pool f n] evaluates [f 0 .. f (n - 1)] on the pool and returns
    [[| f 0; ...; f (n - 1) |]]. If any jobs raised, the exception of the
    lowest-index failure is re-raised (with its backtrace) after the whole
    batch has settled. *)
val run : t -> (int -> 'a) -> int -> 'a array

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Stop and join the workers. The pool must not be used afterwards;
    idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] — [create], apply [f], always [shutdown]. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
