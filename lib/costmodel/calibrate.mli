(** Calibration: fit the model's coefficients against simulator runs by
    weighted (1/y²) non-negative least squares; the checked-in result
    lives in {!Table.current}. *)

type sample = {
  s_bench : string;
  s_dataset : string;
  s_label : string;  (** Pass-combination label. *)
  s_terms : float array;
  s_measured : float;  (** Simulated cycles. *)
}

(** [collect spec] — one sample per pass combination (8): extracts
    features and {e runs the simulator} for each. Knob defaults match the
    harness's [Variant.default_params] (threshold 64, cfactor 8, block
    granularity). *)
val collect :
  ?cfg:Gpusim.Config.t ->
  ?threshold:int ->
  ?cfactor:int ->
  ?granularity:Dpopt.Aggregation.granularity ->
  ?agg_threshold:int ->
  Benchmarks.Bench_common.spec ->
  sample list

(** The standard calibration corpus for one spec (16 samples): the 8
    combinations at the default knobs plus the same at cfactor 1 / grid
    granularity. {!Table.current} is fitted on this corpus over the
    whole registry. *)
val collect_corpus :
  ?cfg:Gpusim.Config.t -> Benchmarks.Bench_common.spec -> sample list

(** Weighted non-negative least squares over the samples; returns β of
    length {!Model.n_terms}. Deterministic.
    @raise Invalid_argument on a wrong-length term vector. *)
val fit : ?iters:int -> sample list -> float array

val fit_coeffs : ?iters:int -> version:int -> sample list -> Model.coeffs

(** Model prediction for a collected sample's term vector. *)
val predict_sample : Model.coeffs -> sample -> float

(** Render a fitted table as OCaml source for [lib/costmodel/table.ml]. *)
val print_table : Format.formatter -> Model.coeffs -> unit
