(** The analytical model: predicted cycles = Σ βᵢ · termᵢ over the
    extracted features, with β the calibrated coefficient vector. Terms
    mirror machine mechanisms exactly where the simulator's law is known
    (entry cost, queue service), so a well-calibrated β stays near 1
    there; β absorbs the approximation error of the compute terms
    (lockstep max, assumed trip counts, round averaging). *)

let term_names =
  [|
    "parent";
    "serial";
    "child";
    "entry";
    "issue";
    "service";
    "latency";
    "host";
    "sched";
    "capture";
    "disagg";
    "div";
  |]

let n_terms = Array.length term_names

let terms (f : Feature.t) : float array =
  [|
    f.t_parent;
    f.t_serial;
    f.t_child;
    f.t_entry;
    f.t_issue;
    f.t_service;
    f.t_latency;
    f.t_host;
    f.t_sched;
    f.t_capture;
    f.t_disagg;
    f.t_div;
  |]

type coeffs = {
  version : int;  (** Bumped whenever term semantics or the fit change. *)
  beta : float array;  (** Length {!n_terms}, non-negative. *)
}

let check_coeffs c =
  if Array.length c.beta <> n_terms then
    invalid_arg
      (Printf.sprintf "Model: coefficient table has %d terms, expected %d"
         (Array.length c.beta) n_terms)

let predict (c : coeffs) (f : Feature.t) : float =
  check_coeffs c;
  let x = terms f in
  let acc = ref 0.0 in
  for i = 0 to n_terms - 1 do
    acc := !acc +. (c.beta.(i) *. x.(i))
  done;
  !acc

let breakdown (c : coeffs) (f : Feature.t) : (string * float) list =
  check_coeffs c;
  let x = terms f in
  List.init n_terms (fun i -> (term_names.(i), c.beta.(i) *. x.(i)))

let pp_breakdown ppf (b : (string * float) list) =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any " ")
       (fun ppf (name, v) -> Fmt.pf ppf "%s=%.0f" name v))
    (List.filter (fun (_, v) -> v > 0.5) b)
