(** Workload profiles: the dataset-side input to the cost model — one
    child-grid size per parent work item over a whole application run, plus
    the host driver's launch structure. *)

type t = {
  child_sizes : int array;
      (** Per parent work item, in processing order; 0 = no nested work. *)
  rounds : int;  (** Host launches of the parent kernel over the run. *)
  parent_block : int;  (** Threads per block of those host launches. *)
}

(** View a benchmark spec's checked-in workload as a profile. *)
val of_workload : Benchmarks.Bench_common.workload -> t

val n_items : t -> int
val max_size : t -> int
val total_child_threads : t -> int
val mean_size : t -> float

(** Reproducible synthetic profile for [dpoptc --predict]: [items] parent
    items with mean child size [mean]; [skew] in [0, 1] interpolates from
    uniform-ish to heavy-tailed. *)
val synthetic :
  ?seed:int ->
  ?rounds:int ->
  ?parent_block:int ->
  items:int ->
  mean:int ->
  ?skew:float ->
  unit ->
  t
