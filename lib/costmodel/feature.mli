(** Feature extraction: MiniCU program + workload profile + pass options +
    device config → raw model terms. Each [t_*] field is the cycle count
    one machine mechanism would contribute if its fitted coefficient were
    exactly 1; {!Model.predict} combines them with the calibrated
    coefficients. *)

type t = {
  label : string;  (** Pass-combination label ("CDP", "CDP+T+C+A", ...). *)
  (* structural features *)
  n_items : int;  (** Parent work items in the profile. *)
  n_launch_sites : int;
  loop_depth : int;  (** Max loop nesting of the parent kernel. *)
  div_events : int;
      (** Synchronization-sensitive events under non-uniform control flow
          ({!Minicu.Divergence.events} over parent + child). *)
  div_density : float;  (** [div_events] per AST node. *)
  w_parent : float;  (** Static per-thread parent base cost, cycles. *)
  w_child : float;  (** Static per-thread child cost, cycles. *)
  (* model terms, cycles *)
  t_parent : float;  (** Parent base compute through device throughput. *)
  t_serial : float;  (** Below-threshold items serialized in the parent. *)
  t_child : float;  (** Child-grid compute through device throughput. *)
  t_entry : float;  (** [cdp_entry_cost] on parent threads. *)
  t_issue : float;  (** [launch_issue_cost] on launching lanes. *)
  t_service : float;  (** Grid-management-unit serialization. *)
  t_latency : float;  (** Per-round device-launch latency. *)
  t_host : float;  (** Host-launch latency (driver rounds + followups). *)
  t_sched : float;  (** Per-block dispatch overhead. *)
  t_capture : float;  (** Aggregation capture stores on parent lanes. *)
  t_disagg : float;  (** Disaggregation searches in aggregated children. *)
  t_div : float;  (** Divergence penalty: density × compute terms. *)
}

(** [extract ~prog ~parent_kernel ~profile ~opts ()] — features of running
    [prog]'s [parent_kernel] over [profile] after the pipeline applies
    [opts]. Pass effects are derived from the untransformed source plus
    each pass's semantics, gated by the pipeline's eligibility reports
    (a refused pass contributes nothing). [label] defaults to
    {!Dpopt.Pipeline.label}[ opts]. *)
val extract :
  ?cfg:Gpusim.Config.t ->
  prog:Minicu.Ast.program ->
  parent_kernel:string ->
  profile:Profile.t ->
  opts:Dpopt.Pipeline.options ->
  ?label:string ->
  unit ->
  t

(** Features for a benchmark spec: parses its CDP source and views its
    checked-in workload as the profile. *)
val of_spec :
  ?cfg:Gpusim.Config.t ->
  Benchmarks.Bench_common.spec ->
  opts:Dpopt.Pipeline.options ->
  ?label:string ->
  unit ->
  t
