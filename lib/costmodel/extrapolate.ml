(** Extrapolation report for sampled grid runs (see the interface). *)

type report = {
  ex_est_total : float;
  ex_rel_std_error : float;
  ex_ci95_lo : float;
  ex_ci95_hi : float;
  ex_sampled_grids : int;
  ex_sampled_blocks : int;
  ex_skipped_blocks : int;
  ex_sampled_launches : int;
  ex_skipped_launches : int;
  ex_block_coverage : float;
}

let of_metrics (m : Gpusim.Metrics.t) =
  if not (Gpusim.Metrics.sampled m) then None
  else
    let s = m.Gpusim.Metrics.sampling in
    let total = s.est_total in
    let std = sqrt (Float.max 0.0 s.est_variance) in
    let rel = Gpusim.Metrics.rel_std_error m in
    let sampled_b = s.sampled_blocks and skipped_b = s.skipped_blocks in
    let coverage =
      if sampled_b + skipped_b = 0 then 1.0
      else float_of_int sampled_b /. float_of_int (sampled_b + skipped_b)
    in
    Some
      {
        ex_est_total = total;
        ex_rel_std_error = rel;
        (* normal approximation; the stratified estimator sums many
           independent per-stratum means, so this is the standard bound *)
        ex_ci95_lo = total -. (1.96 *. std);
        ex_ci95_hi = total +. (1.96 *. std);
        ex_sampled_grids = s.sampled_grids;
        ex_sampled_blocks = sampled_b;
        ex_skipped_blocks = skipped_b;
        ex_sampled_launches = s.sampled_launches;
        ex_skipped_launches = s.skipped_launches;
        ex_block_coverage = coverage;
      }

let pp ppf r =
  Fmt.pf ppf
    "est %.4g cycles +/-%.1f%% (95%% CI [%.4g, %.4g]; %d/%d blocks, %d/%d \
     launches sampled)"
    r.ex_est_total
    (100.0 *. r.ex_rel_std_error)
    r.ex_ci95_lo r.ex_ci95_hi r.ex_sampled_blocks
    (r.ex_sampled_blocks + r.ex_skipped_blocks)
    r.ex_sampled_launches
    (r.ex_sampled_launches + r.ex_skipped_launches)
