(** Static per-thread cost of MiniCU statements, mirroring the simulator's
    charging rules ({!Gpusim.Compile}) without executing anything.

    The walker reuses {!Gpusim.Compile.expr_cost} for expressions and
    applies the same per-statement constants [compile_stmt] charges. Where
    the dynamic cost depends on data, it approximates:

    - [If] takes the {e max} of the two branches (warps execute in
      lockstep, so a divergent warp pays the longer side; the remainder is
      the divergence penalty the model fits separately);
    - data-dependent loops ([For]/[While]) are assumed to run [trip]
      iterations — callers pick [trip] from the workload profile (e.g.
      log2 of the mean child size for binary-search loops);
    - [Launch] statements cost {e zero} here: launch issue is a separate
      model term ([Feature.t_issue]), charged only on lanes that actually
      launch. *)

open Minicu.Ast

let rec stmts_cost ~(cfg : Gpusim.Config.t) ~(trip : int) (ss : stmt list) :
    float =
  List.fold_left (fun acc s -> acc +. stmt_cost ~cfg ~trip s) 0.0 ss

and stmt_cost ~cfg ~trip (s : stmt) : float =
  let ec e = float_of_int (Gpusim.Compile.expr_cost cfg e) in
  let fi = float_of_int in
  let tripf = fi (max 1 trip) in
  match s.sdesc with
  | Decl (_, _, Some e) -> ec e +. fi cfg.arith_cost
  | Decl (_, _, None) -> 0.0
  | Decl_shared (_, _, _) -> fi cfg.arith_cost
  | Assign (lv, e) ->
      ec e
      +.
      (match lv with
      | Index _ -> fi (cfg.mem_cost + cfg.arith_cost)
      | Member (Index _, _) -> fi ((2 * cfg.mem_cost) + cfg.arith_cost)
      | _ -> fi cfg.arith_cost)
  | If (c, a, b) ->
      ec c +. fi cfg.branch_cost
      +. Float.max (stmts_cost ~cfg ~trip a) (stmts_cost ~cfg ~trip b)
  | While (c, body) ->
      let iter = ec c +. fi cfg.branch_cost in
      ((tripf +. 1.0) *. iter) +. (tripf *. stmts_cost ~cfg ~trip body)
  | For (init, cond, step, body) ->
      let initc = match init with Some s -> stmt_cost ~cfg ~trip s | None -> 0.0 in
      let iter =
        (match cond with Some c -> ec c | None -> 0.0) +. fi cfg.branch_cost
      in
      let stepc = match step with Some s -> stmt_cost ~cfg ~trip s | None -> 0.0 in
      initc
      +. ((tripf +. 1.0) *. iter)
      +. (tripf *. (stmts_cost ~cfg ~trip body +. stepc))
  | Return (Some e) -> ec e
  | Return None -> 0.0
  | Expr_stmt e -> ec e
  | Launch _ -> 0.0
  | Sync -> fi cfg.sync_cost
  | Syncwarp -> fi cfg.warp_collective_cost
  | Threadfence -> fi cfg.fence_cost
  | Break | Continue -> 0.0

(** Per-thread cost of a kernel's body (entry cost excluded: the model
    accounts for [cdp_entry_cost] as its own term). *)
let func_cost ~cfg ~trip (f : func) : float = stmts_cost ~cfg ~trip f.f_body

(** The per-iteration overhead the thresholding pass's serialization loop
    adds around one child-item body (loop condition + increment + branch),
    in cycles. *)
let serial_loop_overhead (cfg : Gpusim.Config.t) : float =
  float_of_int ((2 * cfg.arith_cost) + cfg.branch_cost)
