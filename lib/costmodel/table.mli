(** The checked-in calibrated coefficient table: fitted by
    [runbench --calibrate] over the registry's [small] datasets and pasted
    here via {!Calibrate.print_table}. *)

val current : Model.coeffs
