(** Extrapolation report for sampled grid runs.

    When the scheduler's stratified grid sampler is on
    ({!Gpusim.Config.sampling}), a run's compute total is an {e estimate}:
    only a per-stratum subset of blocks (and launches) was simulated, and
    the rest were folded in by weight. This module turns the raw
    {!Gpusim.Metrics.sampling_stats} accounting into a human-facing report
    with a 95% confidence interval, so drivers ([runbench --sample],
    [bench/main.exe scale]) can print the estimated error next to the
    extrapolated number instead of presenting it as exact. *)

type report = {
  ex_est_total : float;  (** Extrapolated compute-cycle total. *)
  ex_rel_std_error : float;
      (** Relative standard error of that total ([sqrt(Var)/total]). *)
  ex_ci95_lo : float;  (** Normal-approximation 95% CI lower bound. *)
  ex_ci95_hi : float;  (** Upper bound. *)
  ex_sampled_grids : int;  (** Grids that went through the sampler. *)
  ex_sampled_blocks : int;  (** Blocks actually simulated on those grids. *)
  ex_skipped_blocks : int;  (** Blocks represented only by weights. *)
  ex_sampled_launches : int;
  ex_skipped_launches : int;
  ex_block_coverage : float;
      (** [sampled / (sampled + skipped)] blocks; [1.0] when no grid was
          large enough to sample. *)
}

(** [of_metrics m] — [Some report] when sampling actually triggered on the
    run behind [m] ({!Gpusim.Metrics.sampled}), [None] on exact runs (the
    caller should print nothing rather than a degenerate 0-width CI). *)
val of_metrics : Gpusim.Metrics.t -> report option

(** One-line rendering:
    ["est 1.23e6 cycles +/-2.1% (95% CI [1.20e6, 1.26e6]; 412/1600 blocks, 12/48 launches sampled)"]. *)
val pp : Format.formatter -> report -> unit
