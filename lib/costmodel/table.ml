(** The checked-in calibrated coefficient table.

    Produced by [runbench --calibrate] (weighted non-negative least
    squares over {!Calibrate.collect_corpus} — all registry benchmarks ×
    the 8 pass combinations × the two standard knob sets on [small]
    datasets, under {!Gpusim.Config.default}) and pasted here via
    {!Calibrate.print_table}. Bump [version] whenever the term semantics
    in {!Feature}/{!Model} change, and refit. *)

(* Fitted on 288 samples: 18 registry benchmark cells (small datasets,
   including the road graphs) x 8 pass combinations x 2 knob sets
   (threshold 64 / cfactor 8 / block granularity, and cfactor 1 / grid
   granularity), under Gpusim.Config.default. Within-benchmark Spearman
   over the default-knob combos at fit time: mean 0.90 (min 0.74 —
   DESIGN.md section 8 lists the known inversions).

   Reading the fit: service sits at ~1 because the queue term mirrors
   the grid-management unit's law exactly; entry/parent are large
   because the static walker undercounts padded warps and guard costs;
   child/capture collapse to 0 because they are collinear with
   disagg/service on this corpus (the fit keeps the per-child-warp
   disagg term instead). *)
let current : Model.coeffs =
  {
    Model.version = 2;
    beta =
      [|
        6.53818 (* parent *);
        0.429144 (* serial *);
        0. (* child *);
        36.457 (* entry *);
        0.0339684 (* issue *);
        1.01786 (* service *);
        0.449085 (* latency *);
        1.66899 (* host *);
        0.659558 (* sched *);
        0. (* capture *);
        5.84876 (* disagg *);
        6.68455 (* div *);
      |];
  }
