(** Static per-thread cost of MiniCU code, mirroring the simulator's
    charging rules ({!Gpusim.Compile}): same expression costs
    ([Gpusim.Compile.expr_cost]), same per-statement constants, with
    lockstep [If] = max of branches, data-dependent loops assumed to run
    [trip] iterations, and [Launch] costing zero (launch issue is a
    separate model term). *)

val stmts_cost :
  cfg:Gpusim.Config.t -> trip:int -> Minicu.Ast.stmt list -> float

val stmt_cost : cfg:Gpusim.Config.t -> trip:int -> Minicu.Ast.stmt -> float

(** Per-thread cost of a kernel body ([cdp_entry_cost] excluded — it is
    its own model term). *)
val func_cost : cfg:Gpusim.Config.t -> trip:int -> Minicu.Ast.func -> float

(** Per-iteration overhead of the thresholding pass's serialization loop
    (condition + increment + branch), in cycles. *)
val serial_loop_overhead : Gpusim.Config.t -> float
