(** The analytical model: predicted cycles = Σ βᵢ · termᵢ over extracted
    features, β calibrated against simulator runs ({!Calibrate}, checked
    in as {!Table.current}). *)

(** Names of the model terms, in the order {!terms} emits them. *)
val term_names : string array

val n_terms : int

(** The raw term vector of a feature record (length {!n_terms}). *)
val terms : Feature.t -> float array

type coeffs = {
  version : int;  (** Bumped whenever term semantics or the fit change. *)
  beta : float array;  (** Length {!n_terms}, non-negative. *)
}

(** Predicted simulated cycles.
    @raise Invalid_argument on a wrong-length coefficient vector. *)
val predict : coeffs -> Feature.t -> float

(** Per-term contribution (βᵢ · termᵢ), in {!term_names} order. *)
val breakdown : coeffs -> Feature.t -> (string * float) list

(** One-line rendering of a breakdown (sub-cycle terms omitted). *)
val pp_breakdown : Format.formatter -> (string * float) list -> unit
