(** Feature extraction: MiniCU program + workload profile + pass options +
    device config → the raw model terms, each the cycle count one machine
    mechanism would charge if its fitted coefficient were exactly 1.

    The extractor mirrors the simulator's laws ({!Gpusim.Sched},
    {!Gpusim.Exec}) symbolically:

    - block compute = Σ over warps of the max-lane cost, divided by
      [sm_warp_parallelism]; one block per SM at a time, so device
      throughput divides by [num_sms * sm_warp_parallelism];
    - every device launch serializes through the grid-management unit
      (one per [launch_service_interval] cycles) and pays
      [device_launch_latency];
    - threads of a kernel that lexically contains a launch pay
      [cdp_entry_cost] at entry.

    Pass effects are derived from the {e untransformed} CDP source plus
    the semantics of each pass, gated by the pipeline's own eligibility
    reports: a pass that refuses a site contributes nothing. *)

open Minicu

type t = {
  label : string;  (** Pass-combination label ("CDP", "CDP+T+C+A", ...). *)
  (* structural features *)
  n_items : int;  (** Parent work items in the profile. *)
  n_launch_sites : int;
  loop_depth : int;  (** Max loop nesting of the parent kernel. *)
  div_events : int;
      (** Synchronization-sensitive events under non-uniform control flow
          ({!Minicu.Divergence.events} over parent + child). *)
  div_density : float;  (** [div_events] per AST node. *)
  w_parent : float;  (** Static per-thread parent base cost, cycles. *)
  w_child : float;  (** Static per-thread child cost, cycles. *)
  (* model terms, cycles *)
  t_parent : float;  (** Parent base compute through device throughput. *)
  t_serial : float;  (** Below-threshold items serialized in the parent. *)
  t_child : float;  (** Child-grid compute through device throughput. *)
  t_entry : float;  (** [cdp_entry_cost] on parent threads. *)
  t_issue : float;  (** [launch_issue_cost] on launching lanes. *)
  t_service : float;  (** Grid-management-unit serialization (M/D/1 busy). *)
  t_latency : float;  (** Per-round device-launch latency. *)
  t_host : float;  (** Host-launch latency (driver rounds + followups). *)
  t_sched : float;  (** Per-block dispatch overhead. *)
  t_capture : float;  (** Aggregation capture stores on parent lanes. *)
  t_disagg : float;  (** Disaggregation searches in aggregated children. *)
  t_div : float;  (** Divergence penalty: density × compute terms. *)
}

(* Static evaluation of a launch's block-dimension expression; falls back
   to [default] when it is not a literal (after simplification). *)
let static_block_size ~default (e : Ast.expr) =
  match Ast_util.simplify_expr e with
  | Ast.Int_lit n when n > 0 -> n
  | Ast.Dim3_ctor (x, _, _) -> (
      match Ast_util.simplify_expr x with
      | Ast.Int_lit n when n > 0 -> n
      | _ -> default)
  | _ -> default

let ceil_div a b = (a + b - 1) / b

(* Items of one round split into consecutive chunks of [width]; returns the
   per-chunk item lists as (offset, len) pairs. *)
let chunks ~width n =
  let rec go off acc =
    if off >= n then List.rev acc
    else go (off + width) ((off, min width (n - off)) :: acc)
  in
  go 0 []

let log2_ceil n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 (max 1 n)

let extract ?(cfg = Gpusim.Config.default) ~(prog : Ast.program)
    ~(parent_kernel : string) ~(profile : Profile.t)
    ~(opts : Dpopt.Pipeline.options) ?label () : t =
  let label = match label with Some l -> l | None -> Dpopt.Pipeline.label opts in
  let parent = Ast.find_func_exn prog parent_kernel in
  let sites = Ast_util.launch_sites parent.f_body in
  let n_sites = List.length sites in
  let ws = cfg.warp_size in
  let sms = float_of_int cfg.num_sms in
  let fi = float_of_int in
  (* Static per-thread costs. Data-dependent loops (binary searches, inner
     clause loops) are assumed to run ~log2(mean child size) iterations —
     profile-derived, constant across pass combinations. *)
  let trip = max 2 (log2_ceil (int_of_float (Profile.mean_size profile) + 2)) in
  let w_parent = Static_cost.func_cost ~cfg ~trip parent in
  let child, child_block =
    match sites with
    | (l, _) :: _ ->
        ( Ast.find_func prog l.Ast.l_kernel,
          static_block_size ~default:ws l.Ast.l_block )
    | [] -> (None, ws)
  in
  let w_child =
    match child with
    | Some f -> Static_cost.func_cost ~cfg ~trip f
    | None -> 0.0
  in
  let w_item = w_child +. Static_cost.serial_loop_overhead cfg in
  (* Divergence features over parent + child. *)
  let div_events =
    let count f =
      List.length
        (List.filter
           (fun (ev : Divergence.event) -> ev.ev_ctx <> Divergence.Uniform)
           (Divergence.events prog f))
    in
    count parent + match child with Some f -> count f | None -> 0
  in
  let ast_nodes =
    Ast_util.func_size parent
    + (match child with Some f -> Ast_util.func_size f | None -> 0)
  in
  let div_density =
    if ast_nodes = 0 then 0.0 else fi div_events /. fi ast_nodes
  in
  (* Decode the pass knobs, gated by the pipeline's eligibility verdicts:
     a pass that refuses every site of this parent has no effect. *)
  let report_on reports get =
    List.exists
      (fun r ->
        let sr_parent, sr_transformed = get r in
        sr_parent = parent_kernel && sr_transformed)
      reports
  in
  let pr = Dpopt.Pipeline.run ~opts prog in
  let threshold =
    match opts.thresholding with
    | Some (o : Dpopt.Thresholding.options)
      when report_on pr.threshold_reports (fun (r : Dpopt.Thresholding.site_report) ->
               (r.sr_parent, r.sr_transformed)) ->
        Some o.threshold
    | _ -> None
  in
  let cfactor =
    match opts.coarsening with
    | Some (o : Dpopt.Coarsening.options)
      when report_on pr.coarsen_reports (fun (r : Dpopt.Coarsening.site_report) ->
               (r.sr_parent, r.sr_transformed)) ->
        max 1 o.cfactor
    | _ -> 1
  in
  let agg =
    match opts.aggregation with
    | Some (o : Dpopt.Aggregation.options)
      when report_on pr.agg_reports (fun (r : Dpopt.Aggregation.site_report) ->
               (r.sr_parent, r.sr_transformed)) ->
        Some o
    | _ -> None
  in
  (* Group width of one aggregated launch, in parent threads. *)
  let group_width =
    match agg with
    | Some { granularity = Dpopt.Aggregation.Warp; _ } -> ws
    | Some { granularity = Dpopt.Aggregation.Block; _ } -> profile.parent_block
    | Some { granularity = Dpopt.Aggregation.Multi_block k; _ } ->
        max 1 k * profile.parent_block
    | Some { granularity = Dpopt.Aggregation.Grid; _ } | None -> max_int
  in
  let grid_gran =
    match agg with
    | Some { granularity = Dpopt.Aggregation.Grid; _ } -> true
    | _ -> false
  in
  let agg_threshold =
    match agg with Some { agg_threshold = Some v; _ } -> max 1 v | _ -> 1
  in
  (* Walk the profile round by round, warp by warp, group by group. *)
  let n_items = Profile.n_items profile in
  let rounds = max 1 profile.rounds in
  let launches s = s > 0 && match threshold with Some t -> s > t | None -> true in
  let serializes s = s > 0 && match threshold with Some t -> s <= t | None -> false in
  (* Term accumulators, already normalized by each round's effective
     throughput: a grid with fewer blocks than SMs cannot use the whole
     device (one block per SM), so its work divides by
     min(blocks, num_sms) · sm_warp_parallelism, not the device peak. *)
  let t_parent = ref 0.0 in
  let t_serial = ref 0.0 in
  let t_issue = ref 0.0 in
  let t_child = ref 0.0 in
  let t_capture = ref 0.0 in
  let t_disagg = ref 0.0 in
  let t_entry = ref 0.0 in
  let par = fi cfg.sm_warp_parallelism in
  let eff blocks = fi (max 1 (min blocks cfg.num_sms)) *. par in
  let parent_blocks = ref 0 in
  let child_blocks = ref 0 in
  let dev_launches = ref 0 in
  let rounds_with_dev = ref 0 in
  let host_followups = ref 0 in
  let capture_cost =
    (* participating lane stores its size/args and takes an index *)
    fi ((4 * cfg.mem_cost) + cfg.atomic_cost)
  in
  let round_off = ref 0 in
  for r = 0 to rounds - 1 do
    let items_r = (n_items / rounds) + if r < n_items mod rounds then 1 else 0 in
    let base = !round_off in
    round_off := base + items_r;
    if items_r > 0 then begin
      let round_parent_blocks = ceil_div items_r profile.parent_block in
      parent_blocks := !parent_blocks + round_parent_blocks;
      let round_parent = ref 0.0 in
      let round_serial = ref 0.0 in
      let round_issue = ref 0.0 in
      let round_capture = ref 0.0 in
      let round_disagg = ref 0.0 in
      let round_child = ref 0.0 in
      let round_child_blocks = ref 0 in
      (* warps: base parent work, serialized items, launch issue *)
      List.iter
        (fun (off, len) ->
          round_parent := !round_parent +. w_parent;
          let mx_serial = ref 0 and any_launch = ref false in
          for i = off to off + len - 1 do
            let s = profile.child_sizes.(base + i) in
            if serializes s then mx_serial := max !mx_serial s;
            if launches s then any_launch := true
          done;
          if !mx_serial > 0 then
            round_serial := !round_serial +. (fi !mx_serial *. w_item);
          if !any_launch then
            if agg = None then round_issue := !round_issue +. fi cfg.launch_issue_cost
            else round_capture := !round_capture +. capture_cost)
        (chunks ~width:ws items_r);
      (* groups: launch counts and child work *)
      let round_dev = ref 0 in
      List.iter
        (fun (off, len) ->
          let participating = ref 0 in
          let group_child_warps = ref 0 in
          for i = off to off + len - 1 do
            let s = profile.child_sizes.(base + i) in
            if launches s then begin
              incr participating;
              let threads = ceil_div s cfactor in
              let warps = ceil_div threads ws in
              group_child_warps := !group_child_warps + warps;
              round_child :=
                !round_child +. (fi warps *. (fi (min cfactor s) *. w_child));
              round_child_blocks :=
                !round_child_blocks + ceil_div threads child_block
            end
          done;
          if !participating > 0 then
            if agg = None then round_dev := !round_dev + !participating
            else if !participating < agg_threshold then
              (* below the aggregation threshold each parent launches
                 directly *)
              round_dev := !round_dev + !participating
            else begin
              (if grid_gran then incr host_followups
               else begin
                 round_dev := !round_dev + 1;
                 (* the elected leader issues the one aggregated launch *)
                 round_issue := !round_issue +. fi cfg.launch_issue_cost
               end);
              (* disaggregation: every child warp binary-searches its
                 parent among the group's participants *)
              let depth = log2_ceil !participating in
              round_disagg :=
                !round_disagg
                +. fi !group_child_warps
                   *. fi depth
                   *. fi (cfg.mem_cost + (2 * cfg.arith_cost))
            end)
        (chunks ~width:(min group_width (max 1 items_r)) items_r);
      child_blocks := !child_blocks + !round_child_blocks;
      dev_launches := !dev_launches + !round_dev;
      if !round_dev > 0 then incr rounds_with_dev;
      (* normalize this round's work by what it can actually occupy:
         parent-side work by the parent grid's blocks, child-side work by
         the round's child blocks *)
      let peff = eff round_parent_blocks in
      let ceff = eff !round_child_blocks in
      t_parent := !t_parent +. (!round_parent /. peff);
      t_serial := !t_serial +. (!round_serial /. peff);
      t_issue := !t_issue +. (!round_issue /. peff);
      t_child := !t_child +. (!round_child /. ceff);
      t_capture := !t_capture +. (!round_capture /. peff);
      t_disagg := !t_disagg +. (!round_disagg /. ceff);
      if n_sites > 0 && not grid_gran then
        t_entry :=
          !t_entry
          +. (fi (ceil_div items_r ws) *. fi cfg.cdp_entry_cost /. peff)
    end
  done;
  let t_parent = !t_parent in
  let t_serial = !t_serial in
  let t_child = !t_child in
  let t_issue = !t_issue in
  let t_capture = !t_capture in
  let t_disagg = !t_disagg in
  (* cdp_entry (accumulated per round above): paid by every parent thread
     iff the transformed parent still lexically contains a launch (grid
     granularity moves it to a host followup). *)
  let t_entry = !t_entry in
  let t_service = fi !dev_launches *. fi cfg.launch_service_interval in
  let t_latency = fi !rounds_with_dev *. fi cfg.device_launch_latency in
  let t_host = fi (rounds + !host_followups) *. fi cfg.host_launch_latency in
  let t_sched =
    fi (!parent_blocks + !child_blocks)
    *. fi cfg.block_sched_overhead /. sms
  in
  let t_div = div_density *. (t_parent +. t_serial +. t_child) in
  {
    label;
    n_items;
    n_launch_sites = n_sites;
    loop_depth = Ast_util.max_loop_depth parent.f_body;
    div_events;
    div_density;
    w_parent;
    w_child;
    t_parent;
    t_serial;
    t_child;
    t_entry;
    t_issue;
    t_service;
    t_latency;
    t_host;
    t_sched;
    t_capture;
    t_disagg;
    t_div;
  }

(** Extract features for a benchmark spec (parses its CDP source and views
    its checked-in workload as the profile). *)
let of_spec ?cfg (spec : Benchmarks.Bench_common.spec)
    ~(opts : Dpopt.Pipeline.options) ?label () : t =
  extract ?cfg
    ~prog:(Minicu.Parser.program spec.cdp_src)
    ~parent_kernel:spec.parent_kernel
    ~profile:(Profile.of_workload spec.workload)
    ~opts ?label ()
