(** Calibration: fit the model's coefficient vector against simulator
    measurements by weighted non-negative least squares.

    Samples pair a term vector (from {!Feature}) with a measured simulated
    time ({!Benchmarks.Bench_common.run_variant}). The fit minimizes
    Σ wⱼ (yⱼ − β·xⱼ)² with wⱼ = 1/yⱼ² — i.e. relative error, so cheap and
    expensive benchmarks count equally — under β ≥ 0, by cyclic projected
    coordinate descent on the normal equations (deterministic, no
    dependencies, converges in a few hundred sweeps for ~10 terms). *)

type sample = {
  s_bench : string;
  s_dataset : string;
  s_label : string;  (** Pass-combination label. *)
  s_terms : float array;
  s_measured : float;  (** Simulated cycles. *)
}

let collect ?cfg ?(threshold = 64) ?(cfactor = 8)
    ?(granularity = Dpopt.Aggregation.Block) ?agg_threshold
    (spec : Benchmarks.Bench_common.spec) : sample list =
  List.map
    (fun (label, opts) ->
      let f = Feature.of_spec ?cfg spec ~opts ~label () in
      let _, time, _ =
        Benchmarks.Bench_common.run_variant ?cfg spec (`Cdp opts)
      in
      {
        s_bench = spec.name;
        s_dataset = spec.dataset;
        s_label = label;
        s_terms = Model.terms f;
        s_measured = time;
      })
    (Dpopt.Pipeline.enumerate ~threshold ~cfactor ~granularity ?agg_threshold
       ())

(** The standard calibration corpus for one spec: the 8 pass combinations
    at the default knobs (threshold 64, cfactor 8, block granularity)
    plus the same combinations at cfactor 1 / grid granularity, so the
    fit sees both an aggregation-heavy and a launch-heavy operating
    point. [Table.current] is fitted on exactly this corpus over the
    whole registry. *)
let collect_corpus ?cfg (spec : Benchmarks.Bench_common.spec) : sample list =
  collect ?cfg spec
  @ collect ?cfg ~cfactor:1 ~granularity:Dpopt.Aggregation.Grid spec

let fit ?(iters = 500) (samples : sample list) : float array =
  let n = Model.n_terms in
  let xs = List.map (fun s -> s.s_terms) samples in
  List.iter
    (fun x ->
      if Array.length x <> n then
        invalid_arg "Calibrate.fit: term vector of wrong length")
    xs;
  (* weighted Gram matrix and right-hand side *)
  let g = Array.make_matrix n n 0.0 in
  let b = Array.make n 0.0 in
  List.iter
    (fun s ->
      let y = s.s_measured in
      if y > 0.0 then begin
        let w = 1.0 /. (y *. y) in
        let x = s.s_terms in
        for i = 0 to n - 1 do
          b.(i) <- b.(i) +. (w *. x.(i) *. y);
          for j = 0 to n - 1 do
            g.(i).(j) <- g.(i).(j) +. (w *. x.(i) *. x.(j))
          done
        done
      end)
    samples;
  let beta = Array.make n 0.0 in
  for _ = 1 to iters do
    for k = 0 to n - 1 do
      if g.(k).(k) > 0.0 then begin
        let acc = ref b.(k) in
        for l = 0 to n - 1 do
          if l <> k then acc := !acc -. (g.(k).(l) *. beta.(l))
        done;
        beta.(k) <- Float.max 0.0 (!acc /. g.(k).(k))
      end
    done
  done;
  beta

let fit_coeffs ?iters ~version samples : Model.coeffs =
  { Model.version; beta = fit ?iters samples }

let predict_sample (c : Model.coeffs) (s : sample) : float =
  let acc = ref 0.0 in
  for i = 0 to Model.n_terms - 1 do
    acc := !acc +. (c.Model.beta.(i) *. s.s_terms.(i))
  done;
  !acc

(** Render a coefficient vector as the body of [Table.current] — paste the
    output into [lib/costmodel/table.ml] after refitting. *)
let print_table ppf (c : Model.coeffs) =
  Fmt.pf ppf "let current : Model.coeffs =@.  {@.    Model.version = %d;@."
    c.Model.version;
  Fmt.pf ppf "    beta =@.      [|@.";
  Array.iteri
    (fun i v -> Fmt.pf ppf "        %.6g (* %s *);@." v Model.term_names.(i))
    c.Model.beta;
  Fmt.pf ppf "      |];@.  }@."
