(** Workload profiles: the dataset-side input to the cost model.

    A profile is the nested-parallelism shape of one whole application run
    — one entry per parent work item with the child-thread count that item
    wants — plus the host driver's launch structure. Benchmark specs carry
    an exact (or documented stand-in) profile computed from the dataset
    ({!Benchmarks.Bench_common.workload}); [dpoptc --predict] builds
    synthetic ones from distribution knobs. *)

type t = {
  child_sizes : int array;
      (** Per parent work item, in processing order; 0 = no nested work. *)
  rounds : int;  (** Host launches of the parent kernel over the run. *)
  parent_block : int;  (** Threads per block of those host launches. *)
}

let of_workload (w : Benchmarks.Bench_common.workload) : t =
  {
    child_sizes = w.wl_child_sizes;
    rounds = max 1 w.wl_rounds;
    parent_block = max 1 w.wl_parent_block;
  }

let n_items p = Array.length p.child_sizes

let max_size p = Array.fold_left max 0 p.child_sizes

let total_child_threads p = Array.fold_left ( + ) 0 p.child_sizes

let mean_size p =
  let n = n_items p in
  if n = 0 then 0.0 else float_of_int (total_child_threads p) /. float_of_int n

(* Deterministic LCG so synthetic profiles are reproducible from the seed
   alone (same generator family as Workloads). *)
let lcg state =
  state := (!state * 0x2545F4914F6CDD1D) + 0x9E3779B9;
  (!state lsr 17) land 0x3FFFFFFF

(** [synthetic ~items ~mean ~skew ()] — a reproducible synthetic profile:
    [items] parent items with mean child size [mean]. [skew] interpolates
    from uniform-ish ([0.]) to heavy-tailed ([1.]): a [skew] fraction of
    the mass concentrates on ~1/16 of the items, mimicking power-law
    degree distributions. *)
let synthetic ?(seed = 1) ?(rounds = 1) ?(parent_block = 128) ~items ~mean
    ?(skew = 0.5) () : t =
  if items <= 0 then invalid_arg "Profile.synthetic: items must be positive";
  let st = ref (seed + 0x9E3779B9) in
  let heavy_every = 16 in
  let heavy_count = max 1 (items / heavy_every) in
  let light_count = items - heavy_count in
  (* Split the total mass so the overall mean is preserved. *)
  let total = float_of_int items *. float_of_int mean in
  let heavy_mass = skew *. total in
  let light_mass = total -. heavy_mass in
  let light_mean =
    if light_count = 0 then 0.0 else light_mass /. float_of_int light_count
  in
  let heavy_mean = heavy_mass /. float_of_int heavy_count in
  let sizes =
    Array.init items (fun i ->
        let m = if i mod heavy_every = 0 then heavy_mean else light_mean in
        if m <= 0.0 then 0
        else
          (* uniform in [0, 2m): keeps the requested mean in expectation *)
          let r = float_of_int (lcg st) /. float_of_int 0x40000000 in
          int_of_float (2.0 *. m *. r))
  in
  { child_sizes = sizes; rounds = max 1 rounds; parent_block }
