(** Flat bytecode/register IR for MiniCU device code — the second execution
    engine ({!Config.engine} = [Bytecode]).

    Kernel bodies are lowered to a single flat instruction array over a
    per-function register file; the VM ({!Vm}) runs it over unboxed register
    banks (separate int/float arrays) with no per-step allocation.

    The lowering mirrors the closure compiler ({!Compile}) case for case:
    the same costs are charged at the same program points, the same runtime
    errors are raised with the same messages, and — crucially — side effects
    (loads, stores, atomics, launches, coercion failures) happen in the same
    order the closure trees evaluate them. The cross-engine differential
    suite pins this equivalence bit-for-bit; when in doubt about an
    evaluation order, consult the corresponding [Compile] case, not C.

    Registers are frame-relative indices. Parameters occupy registers
    [0 .. nparams-1]; locals and expression temporaries follow. Register
    numbers are reused across sibling scopes, so [bf_nregs] is the high-water
    mark, not the lexical slot count. *)

open Minicu
open Minicu.Ast

(* ------------------------------------------------------------------ *)
(* Instruction set                                                     *)
(* ------------------------------------------------------------------ *)

type special = Sp_thread_idx | Sp_block_idx | Sp_block_dim | Sp_grid_dim

type float1 = F_fabs | F_ceil | F_floor | F_sqrt | F_exp | F_log

type atomic = A_add | A_sub | A_min | A_max | A_exch

type warp_kind = Wk_scan_excl | Wk_sum | Wk_max | Wk_sync

(* Operands are frame-relative register indices; jump targets are absolute
   instruction indices into the program's code array. A [Loc.t option]
   operand is [Some] exactly when the program was lowered under
   [Config.check]: it carries the source location for sanitizer reports and
   selects the instrumented execution path in the VM. *)
type instr =
  | I_const_unit of int
  | I_const_int of int * int
  | I_const_float of int * float
  | I_const_bool of int * bool
  | I_const_dim3 of int * int * int * int  (** dst, x, y, z immediates. *)
  | I_mov of int * int
  | I_special of int * special  (** dst <- dim3 of a reserved variable. *)
  | I_special_comp of int * special * string  (** dst <- threadIdx.f etc. *)
  | I_member of int * int * string  (** General [e.f] on a dim3/int value. *)
  | I_neg of int * int
  | I_not of int * int
  | I_binop of binop * int * int * int  (** op, dst, a, b. *)
  | I_binop_int of binop * int * int * int
      (** op, dst, a, int-literal right operand. Fused because literal
          operands are side-effect free, so skipping their materialization
          cannot reorder anything observable. *)
  | I_binop_float of binop * int * int * float
  | I_cmp_jf of binop * int * int * int
      (** Fused compare-and-branch: op, a, b, target if false. Only emitted
          for comparison operators at branch heads. *)
  | I_cmp_jf_int of binop * int * int * int
      (** op, a, int-literal right operand, target if false. *)
  | I_cmp_jt of binop * int * int * int
      (** op, a, b, target if true — the back edge of a rotated loop, where
          the bottom-of-body test falls through to the loop exit. *)
  | I_cmp_jt_int of binop * int * int * int
  | I_cast_int of int * int  (** dst <- Int (as_int src). *)
  | I_cast_float of int * int
  | I_cast_bool of int * int
  | I_cast_dim3 of int * int  (** dst <- Dim3 (as_dim3 src). *)
  | I_as_ptr of int * int  (** dst <- Ptr (as_ptr src). *)
  | I_dim3 of int * int * int * int  (** dst, rx, ry, rz (Int registers). *)
  | I_load of int * int * int * Loc.t option  (** dst <- mem\[p + i\]. *)
  | I_store of int * int * int * Loc.t option  (** mem\[p + i\] <- v. *)
  | I_addr of int * int * int  (** dst <- &p\[i\]. *)
  | I_min of int * int * int
  | I_max of int * int * int
  | I_abs of int * int
  | I_float1 of float1 * int * int
  | I_pow of int * int * int  (** dst, a, b (Float registers). *)
  | I_atomic of atomic * int * int * int * Loc.t option
      (** op, dst (old value), p (Ptr register), v. *)
  | I_cas of int * int * int * int * Loc.t option  (** dst, p, cmp, v. *)
  | I_malloc of int * int
  | I_warp of int * warp_kind * int  (** dst, collective, arg. *)
  | I_warp_bcast of int * int * int  (** dst, arg, lane (Int register). *)
  | I_call of int * int * int array  (** dst, function index, arg regs. *)
  | I_ret_unit
  | I_ret of int
  | I_jump of int
  | I_jump_if_false of int * int  (** reg (as_bool), target. *)
  | I_jump_if_true of int * int
  | I_charge of int * float  (** Metrics tag index, cycles. *)
  | I_split_dim3 of int * int * int * int
      (** dx, dy, dz <- components of the dim3 in slot (member assignment). *)
  | I_set_dim3 of int * string * int * int * int * int
      (** slot, member, dx, dy, dz, v: slot <- dim3 with member set to v. *)
  | I_member_load_dim of int * int * int * int * int * Loc.t option
      (** dx, dy, dz <- components of the dim3 at mem\[p + i\]. *)
  | I_member_store_dim of int * int * string * int * int * int * int * Loc.t option
      (** p, i, member, dx, dy, dz, v: mem\[p + i\] <- updated dim3. *)
  | I_shared_hit of int * int * int
      (** slot, shared id, target: if the block already allocated [id], bind
          it to [slot] and jump over the size/alloc code. *)
  | I_shared_alloc of int * int * int * Value.t
      (** slot, shared id, size reg, element initializer. *)
  | I_launch_check of string * int * int
      (** kernel, grid reg, block reg (Dim3 registers): configuration
          validation, before argument evaluation. *)
  | I_launch of string * int * int * int array
  | I_sync

(* ------------------------------------------------------------------ *)
(* Compiled functions and programs                                     *)
(* ------------------------------------------------------------------ *)

type func = {
  bf_name : string;
  bf_kind : func_kind;
  mutable bf_nregs : int;  (** Register high-water mark (body + followup). *)
  bf_nparams : int;
  bf_contains_launch : bool;
  bf_is_serial : bool;
  bf_safety : Blocksafe.summary;
      (** Cross-block independence proof for parallel dispatch. *)
  bf_static_work : float;  (** Per-thread static work estimate. *)
  mutable bf_entry : int;  (** Body entry pc. *)
  mutable bf_followup : int option;  (** Host-followup entry pc. *)
}

type prog = {
  bp_code : instr array;  (** All functions, lowered contiguously. *)
  bp_funcs : func array;  (** In program order ([bf_entry] ascending). *)
  bp_index : (string, int) Hashtbl.t;  (** Name -> index into [bp_funcs]. *)
  bp_ast : program;
  (* Packed form: [bp_code] flattened into a word stream, which is what the
     VM actually dispatches on. One small-int opcode word followed by its
     operand words; jump targets are word offsets; float/string/value/loc
     operands live in side pools, referenced by index. *)
  bp_ops : int array;
  bp_woff : int array;
      (** Instruction index -> word offset (length [|bp_code| + 1]). *)
  bp_fpool : float array;
  bp_spool : string array;
  bp_vpool : Value.t array;
  bp_lpool : Loc.t array;
}

let find_func_exn p name =
  match Hashtbl.find_opt p.bp_index name with
  | Some i -> p.bp_funcs.(i)
  | None -> Value.error "no such function %S" name

(* ------------------------------------------------------------------ *)
(* Lowering environment                                                *)
(* ------------------------------------------------------------------ *)

type emitter = { mutable buf : instr array; mutable len : int }

let emit em i =
  if em.len = Array.length em.buf then begin
    let nb = Array.make (max 256 (2 * em.len)) I_ret_unit in
    Array.blit em.buf 0 nb 0 em.len;
    em.buf <- nb
  end;
  em.buf.(em.len) <- i;
  em.len <- em.len + 1;
  em.len - 1

let patch em pc i = em.buf.(pc) <- i

(* Re-point the jump-family placeholder at [pc] (emitted with target -1)
   to [target], preserving its operands. *)
let patch_target em pc target =
  patch em pc
    (match em.buf.(pc) with
    | I_jump _ -> I_jump target
    | I_jump_if_false (r, _) -> I_jump_if_false (r, target)
    | I_jump_if_true (r, _) -> I_jump_if_true (r, target)
    | I_cmp_jf (op, a, b, _) -> I_cmp_jf (op, a, b, target)
    | I_cmp_jf_int (op, a, n, _) -> I_cmp_jf_int (op, a, n, target)
    | I_cmp_jt (op, a, b, _) -> I_cmp_jt (op, a, b, target)
    | I_cmp_jt_int (op, a, n, _) -> I_cmp_jt_int (op, a, n, target)
    | _ -> assert false)

type loop_ctx = { breaks : int list ref; continues : int list ref }

type lenv = {
  funcs : func array;
  index : (string, int) Hashtbl.t;
  em : emitter;
  mutable slots : (string * int) list;  (** Innermost binding first. *)
  mutable next_reg : int;
  mutable max_reg : int;
  mutable shared_ids : int;
  cfg : Config.t;
  fname : string;
  mutable cur_loc : Loc.t;
  mutable loops : loop_ctx list;  (** Innermost loop first. *)
}

let tmp env =
  let r = env.next_reg in
  env.next_reg <- r + 1;
  if env.next_reg > env.max_reg then env.max_reg <- env.next_reg;
  r

let bind env x =
  let r = tmp env in
  env.slots <- (x, r) :: env.slots;
  r

let slot_of env x loc_hint =
  match List.assoc_opt x env.slots with
  | Some s -> s
  | None -> Value.error "in %s: unbound variable %S (%s)" env.fname x loc_hint

let mark env = env.next_reg
let reset env m = env.next_reg <- m

(* Save/restore lexical scope around nested blocks. Unlike the closure
   compiler, the register counter is restored too: sibling scopes reuse
   registers, which is safe because every [Decl] (re)writes its register
   before any use. *)
let scoped env f =
  let slots = env.slots and regs = env.next_reg in
  let r = f () in
  env.slots <- slots;
  env.next_reg <- regs;
  r

let check_loc env = if env.cfg.check then Some env.cur_loc else None

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

(* [lower_expr env e] emits code evaluating [e] and returns the register
   holding the result: a fresh temporary, or the variable's own register
   for [Var]. Temporaries are reclaimed by the caller via [mark]/[reset]. *)
let rec lower_expr env (e : expr) : int =
  let ins i = ignore (emit env.em i) in
  match e with
  | Int_lit n ->
      let d = tmp env in
      ins (I_const_int (d, n));
      d
  | Float_lit f ->
      let d = tmp env in
      ins (I_const_float (d, f));
      d
  | Bool_lit b ->
      let d = tmp env in
      ins (I_const_bool (d, b));
      d
  | Var "threadIdx" ->
      let d = tmp env in
      ins (I_special (d, Sp_thread_idx));
      d
  | Var "blockIdx" ->
      let d = tmp env in
      ins (I_special (d, Sp_block_idx));
      d
  | Var "blockDim" ->
      let d = tmp env in
      ins (I_special (d, Sp_block_dim));
      d
  | Var "gridDim" ->
      let d = tmp env in
      ins (I_special (d, Sp_grid_dim));
      d
  | Var x -> slot_of env x "use"
  | Member (Var "threadIdx", f) ->
      let d = tmp env in
      ins (I_special_comp (d, Sp_thread_idx, f));
      d
  | Member (Var "blockIdx", f) ->
      let d = tmp env in
      ins (I_special_comp (d, Sp_block_idx, f));
      d
  | Member (Var "blockDim", f) ->
      let d = tmp env in
      ins (I_special_comp (d, Sp_block_dim, f));
      d
  | Member (Var "gridDim", f) ->
      let d = tmp env in
      ins (I_special_comp (d, Sp_grid_dim, f));
      d
  | Member (a, f) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_member (d, ra, f));
      d
  | Unop (Neg, a) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_neg (d, ra));
      d
  | Unop (Not, a) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_not (d, ra));
      d
  | Binop (LAnd, a, b) ->
      (* Short-circuit: the result register is written before [b] runs, so
         it must be a fresh temporary (never a variable's register). *)
      let d = tmp env in
      let m = mark env in
      let ra = lower_expr env a in
      ins (I_cast_bool (d, ra));
      reset env m;
      let j = emit env.em (I_jump_if_false (d, -1)) in
      let rb = lower_expr env b in
      ins (I_cast_bool (d, rb));
      reset env m;
      patch env.em j (I_jump_if_false (d, env.em.len));
      d
  | Binop (LOr, a, b) ->
      let d = tmp env in
      let m = mark env in
      let ra = lower_expr env a in
      ins (I_cast_bool (d, ra));
      reset env m;
      let j = emit env.em (I_jump_if_true (d, -1)) in
      let rb = lower_expr env b in
      ins (I_cast_bool (d, rb));
      reset env m;
      patch env.em j (I_jump_if_true (d, env.em.len));
      d
  | Binop (op, a, Int_lit n) ->
      (* Literal right operands fuse into immediate forms: the literal is
         side-effect free, so skipping its materialization cannot change
         the b-before-a evaluation order observably. *)
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_binop_int (op, d, ra, n));
      d
  | Binop (op, a, Float_lit f) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_binop_float (op, d, ra, f));
      d
  | Binop (op, a, b) ->
      (* The closure engine evaluates [eval_binop op (ca t) (cb t)]:
         right-to-left application order runs [b] before [a]. *)
      let rb = lower_expr env b in
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_binop (op, d, ra, rb));
      d
  | Ternary (c, a, b) ->
      let d = tmp env in
      let m = mark env in
      let jf = lower_cond_jf env c in
      lower_into env d a;
      reset env m;
      let je = emit env.em (I_jump (-1)) in
      patch_target env.em jf env.em.len;
      lower_into env d b;
      reset env m;
      patch_target env.em je env.em.len;
      d
  | Index (p, i) ->
      let rp = lower_expr env p in
      let tp = tmp env in
      ins (I_as_ptr (tp, rp));
      let ri = lower_expr env i in
      let ti = tmp env in
      ins (I_cast_int (ti, ri));
      let d = tmp env in
      ins (I_load (d, tp, ti, check_loc env));
      d
  | Cast (TInt, a) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_cast_int (d, ra));
      d
  | Cast (TFloat, a) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_cast_float (d, ra));
      d
  | Cast (TBool, a) ->
      let ra = lower_expr env a in
      let d = tmp env in
      ins (I_cast_bool (d, ra));
      d
  | Cast (_, a) -> lower_expr env a
  | Dim3_ctor (x, y, z) ->
      (* Tuple construction evaluates right-to-left: z (then its as_int),
         then y, then x. *)
      let rz = lower_expr env z in
      let tz = tmp env in
      ins (I_cast_int (tz, rz));
      let ry = lower_expr env y in
      let ty = tmp env in
      ins (I_cast_int (ty, ry));
      let rx = lower_expr env x in
      let tx = tmp env in
      ins (I_cast_int (tx, rx));
      let d = tmp env in
      ins (I_dim3 (d, tx, ty, tz));
      d
  | Addr_of lv -> lower_addr env lv
  | Call (f, args) -> lower_call env f args

and lower_addr env (lv : expr) : int =
  let ins i = ignore (emit env.em i) in
  match lv with
  | Index (p, i) ->
      let rp = lower_expr env p in
      let tp = tmp env in
      ins (I_as_ptr (tp, rp));
      let ri = lower_expr env i in
      let ti = tmp env in
      ins (I_cast_int (ti, ri));
      let d = tmp env in
      ins (I_addr (d, tp, ti));
      d
  | Var x ->
      Value.error
        "in %s: cannot take the address of local variable %S (MiniCU atomics \
         require a pointer element, e.g. &a[i])"
        env.fname x
  | _ -> Value.error "in %s: '&' requires an indexable lvalue" env.fname

and lower_call env f args : int =
  (* The result register is allocated up front so [lower_into] can pass a
     variable's slot instead; operand temporaries number after it. *)
  let d = tmp env in
  lower_call_into env d f args;
  d

(* Every call-like instruction writes its destination strictly after all
   its operands are read (and after memory effects), so [d] may be a live
   variable slot that also appears among the operands. *)
and lower_call_into env d f args : unit =
  let ins i = ignore (emit env.em i) in
  let nth n = List.nth args n in
  match f with
  | "min" | "max" ->
      let ra = lower_expr env (nth 0) in
      let rb = lower_expr env (nth 1) in
      ins (if f = "min" then I_min (d, ra, rb) else I_max (d, ra, rb))
  | "abs" ->
      let ra = lower_expr env (nth 0) in
      ins (I_abs (d, ra))
  | "fabs" | "ceil" | "floor" | "sqrt" | "exp" | "log" ->
      let fn =
        match f with
        | "fabs" -> F_fabs
        | "ceil" -> F_ceil
        | "floor" -> F_floor
        | "sqrt" -> F_sqrt
        | "exp" -> F_exp
        | _ -> F_log
      in
      let ra = lower_expr env (nth 0) in
      ins (I_float1 (fn, d, ra))
  | "pow" ->
      (* Right-to-left application: arg 1 is evaluated and coerced before
         arg 0 is evaluated. *)
      let rb = lower_expr env (nth 1) in
      let tb = tmp env in
      ins (I_cast_float (tb, rb));
      let ra = lower_expr env (nth 0) in
      let ta = tmp env in
      ins (I_cast_float (ta, ra));
      ins (I_pow (d, ta, tb))
  | "atomicAdd" | "atomicSub" | "atomicMin" | "atomicMax" | "atomicExch" ->
      let aop =
        match f with
        | "atomicAdd" -> A_add
        | "atomicSub" -> A_sub
        | "atomicMin" -> A_min
        | "atomicMax" -> A_max
        | _ -> A_exch
      in
      let rp = lower_expr env (nth 0) in
      let tp = tmp env in
      ins (I_as_ptr (tp, rp));
      let rv = lower_expr env (nth 1) in
      ins (I_atomic (aop, d, tp, rv, check_loc env))
  | "atomicCAS" ->
      let rp = lower_expr env (nth 0) in
      let tp = tmp env in
      ins (I_as_ptr (tp, rp));
      let rc = lower_expr env (nth 1) in
      let rv = lower_expr env (nth 2) in
      ins (I_cas (d, tp, rc, rv, check_loc env))
  | "malloc" ->
      let ra = lower_expr env (nth 0) in
      ins (I_malloc (d, ra))
  | "warp_scan_excl" | "warp_sum" | "warp_max" ->
      let wk =
        match f with
        | "warp_scan_excl" -> Wk_scan_excl
        | "warp_sum" -> Wk_sum
        | _ -> Wk_max
      in
      let ra = lower_expr env (nth 0) in
      ins (I_warp (d, wk, ra))
  | "warp_bcast" ->
      (* Lane (arg 1) is evaluated and coerced before the payload (arg 0). *)
      let rl = lower_expr env (nth 1) in
      let tl = tmp env in
      ins (I_cast_int (tl, rl));
      let ra = lower_expr env (nth 0) in
      ins (I_warp_bcast (d, ra, tl))
  | _ -> (
      match Hashtbl.find_opt env.index f with
      | Some fi ->
          let cf = env.funcs.(fi) in
          if cf.bf_kind <> Device then
            Value.error "cannot call kernel %S; kernels must be launched" f;
          if List.length args <> cf.bf_nparams then
            Value.error "call to %S: wrong arity" f;
          let regs = List.map (lower_expr env) args in
          ins (I_call (d, fi, Array.of_list regs))
      | None -> Value.error "in %s: unknown function %S" env.fname f)

(* [lower_cond_jf env c] lowers a branch condition and emits the
   conditional jump, fusing compare-and-branch when [c] is a top-level
   comparison. Returns the pc of the jump (target -1, patched later via
   [patch_target]). Condition temporaries are reclaimed before returning,
   as at any branch head. *)
and lower_cond_jf env (c : expr) : int =
  let m = mark env in
  let j =
    match c with
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, Int_lit n) ->
        let ra = lower_expr env a in
        emit env.em (I_cmp_jf_int (op, ra, n, -1))
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
        let rb = lower_expr env b in
        let ra = lower_expr env a in
        emit env.em (I_cmp_jf (op, ra, rb, -1))
    | c ->
        let rc = lower_expr env c in
        emit env.em (I_jump_if_false (rc, -1))
  in
  reset env m;
  j

(* Dual of [lower_cond_jf]: jump when the condition holds. Used for the
   bottom-of-body test of rotated loops. *)
and lower_cond_jt env (c : expr) : int =
  let m = mark env in
  let j =
    match c with
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, Int_lit n) ->
        let ra = lower_expr env a in
        emit env.em (I_cmp_jt_int (op, ra, n, -1))
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
        let rb = lower_expr env b in
        let ra = lower_expr env a in
        emit env.em (I_cmp_jt (op, ra, rb, -1))
    | c ->
        let rc = lower_expr env c in
        emit env.em (I_jump_if_true (rc, -1))
  in
  reset env m;
  j

(* [lower_into env dst e] evaluates [e] directly into [dst], which may be
   a live variable slot: the destination-writing instruction always comes
   last, with every operand read before [dst] is written, so [dst] may
   appear among [e]'s operands. Short-circuit operators are the exception
   — they write their result register before the right operand runs — and
   route through a temporary. *)
and lower_into env dst (e : expr) : unit =
  let ins i = ignore (emit env.em i) in
  match e with
  | Int_lit n -> ins (I_const_int (dst, n))
  | Float_lit f -> ins (I_const_float (dst, f))
  | Bool_lit b -> ins (I_const_bool (dst, b))
  | Var "threadIdx" -> ins (I_special (dst, Sp_thread_idx))
  | Var "blockIdx" -> ins (I_special (dst, Sp_block_idx))
  | Var "blockDim" -> ins (I_special (dst, Sp_block_dim))
  | Var "gridDim" -> ins (I_special (dst, Sp_grid_dim))
  | Var x ->
      let s = slot_of env x "use" in
      if s <> dst then ins (I_mov (dst, s))
  | Member (Var "threadIdx", f) -> ins (I_special_comp (dst, Sp_thread_idx, f))
  | Member (Var "blockIdx", f) -> ins (I_special_comp (dst, Sp_block_idx, f))
  | Member (Var "blockDim", f) -> ins (I_special_comp (dst, Sp_block_dim, f))
  | Member (Var "gridDim", f) -> ins (I_special_comp (dst, Sp_grid_dim, f))
  | Member (a, f) ->
      let ra = lower_expr env a in
      ins (I_member (dst, ra, f))
  | Unop (Neg, a) ->
      let ra = lower_expr env a in
      ins (I_neg (dst, ra))
  | Unop (Not, a) ->
      let ra = lower_expr env a in
      ins (I_not (dst, ra))
  | Binop ((LAnd | LOr), _, _) ->
      let r = lower_expr env e in
      if r <> dst then ins (I_mov (dst, r))
  | Binop (op, a, Int_lit n) ->
      let ra = lower_expr env a in
      ins (I_binop_int (op, dst, ra, n))
  | Binop (op, a, Float_lit f) ->
      let ra = lower_expr env a in
      ins (I_binop_float (op, dst, ra, f))
  | Binop (op, a, b) ->
      let rb = lower_expr env b in
      let ra = lower_expr env a in
      ins (I_binop (op, dst, ra, rb))
  | Ternary (c, a, b) ->
      let m = mark env in
      let jf = lower_cond_jf env c in
      lower_into env dst a;
      reset env m;
      let je = emit env.em (I_jump (-1)) in
      patch_target env.em jf env.em.len;
      lower_into env dst b;
      reset env m;
      patch_target env.em je env.em.len
  | Index (p, i) ->
      let rp = lower_expr env p in
      let tp = tmp env in
      ins (I_as_ptr (tp, rp));
      let ri = lower_expr env i in
      let ti = tmp env in
      ins (I_cast_int (ti, ri));
      ins (I_load (dst, tp, ti, check_loc env))
  | Cast (TInt, a) ->
      let ra = lower_expr env a in
      ins (I_cast_int (dst, ra))
  | Cast (TFloat, a) ->
      let ra = lower_expr env a in
      ins (I_cast_float (dst, ra))
  | Cast (TBool, a) ->
      let ra = lower_expr env a in
      ins (I_cast_bool (dst, ra))
  | Cast (_, a) -> lower_into env dst a
  | Dim3_ctor (x, y, z) ->
      let rz = lower_expr env z in
      let tz = tmp env in
      ins (I_cast_int (tz, rz));
      let ry = lower_expr env y in
      let ty = tmp env in
      ins (I_cast_int (ty, ry));
      let rx = lower_expr env x in
      let tx = tmp env in
      ins (I_cast_int (tx, rx));
      ins (I_dim3 (dst, tx, ty, tz))
  | Addr_of (Index (p, i)) ->
      let rp = lower_expr env p in
      let tp = tmp env in
      ins (I_as_ptr (tp, rp));
      let ri = lower_expr env i in
      let ti = tmp env in
      ins (I_cast_int (ti, ri));
      ins (I_addr (dst, tp, ti))
  | Addr_of lv ->
      (* Non-indexable lvalues: reuse [lower_addr] for its diagnostics. *)
      ignore (lower_addr env lv)
  | Call (f, args) -> lower_call_into env dst f args

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let default_value : ty -> Value.t = function
  | TInt -> Value.Int 0
  | TFloat -> Value.Float 0.0
  | TBool -> Value.Bool false
  | TDim3 -> Value.Dim3 (1, 1, 1)
  | TPtr _ | TVoid -> Value.Unit

(* --- Charge coalescing -------------------------------------------------

   The closure engine charges each statement's (statically computed) cost
   as the statement starts executing. Costs are observable at exactly two
   points: a launch records the thread's running total ([lr_issue_cost]),
   and per-tag totals are aggregated when the block completes. A thread
   that enters a straight-line statement run either executes all of it or
   aborts the whole launch, so one [I_charge] for the run's summed cost —
   emitted at the run's head — is indistinguishable from per-statement
   charges, provided no launch can occur after a statement whose cost was
   pre-charged. Runs therefore end *after* a [Launch]/[Return]/call-bearing
   statement and *before* any control-flow statement. *)

(* [stmt_charge cfg s] is [Some (tag, cost)] for straight-line statements
   — the single source of truth for their cost formulas — and [None] for
   control flow, which charges itself during lowering. *)
let stmt_charge (cfg : Config.t) (s : stmt) : (int * int) option =
  let tag = Metrics.index_of_tag s.stag in
  match s.sdesc with
  | Decl (_, _, Some e) -> Some (tag, Compile.expr_cost cfg e + cfg.arith_cost)
  | Decl (_, _, None) -> Some (tag, 0)
  | Decl_shared _ -> Some (tag, cfg.arith_cost)
  | Assign (lv, e) ->
      Some
        ( tag,
          Compile.expr_cost cfg e
          + (match lv with
            | Index _ -> cfg.mem_cost + cfg.arith_cost
            | Member (Index _, _) -> (2 * cfg.mem_cost) + cfg.arith_cost
            | _ -> cfg.arith_cost) )
  | Expr_stmt e -> Some (tag, Compile.expr_cost cfg e)
  | Return (Some e) -> Some (tag, Compile.expr_cost cfg e)
  | Return None -> Some (tag, 0)
  | Launch l ->
      Some
        ( tag,
          cfg.launch_issue_cost
          + Compile.expr_cost cfg l.l_grid
          + Compile.expr_cost cfg l.l_block
          + List.fold_left (fun acc a -> acc + Compile.expr_cost cfg a) 0 l.l_args
        )
  | Sync | Syncwarp -> Some (tag, cfg.sync_cost)
  | Threadfence -> Some (tag, cfg.fence_cost)
  | If _ | While _ | For _ | Break | Continue -> None

let rec expr_has_call = function
  | Call _ -> true
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> false
  | Unop (_, a) | Member (a, _) | Cast (_, a) | Addr_of a -> expr_has_call a
  | Binop (_, a, b) | Index (a, b) -> expr_has_call a || expr_has_call b
  | Ternary (a, b, c) ->
      expr_has_call a || expr_has_call b || expr_has_call c
  | Dim3_ctor (a, b, c) ->
      expr_has_call a || expr_has_call b || expr_has_call c

(* A statement ends a charge run (it stays included, but nothing merges in
   after it) when executing it can observe the thread's cost total: its own
   launch, a return, or a call into a function that may itself launch —
   conservatively, any call at all. *)
let closes_run (s : stmt) : bool =
  match s.sdesc with
  | Launch _ | Return _ -> true
  | Assign (lv, e) -> expr_has_call lv || expr_has_call e
  | Decl (_, _, Some e) | Expr_stmt e -> expr_has_call e
  | Decl (_, _, None) -> false
  | Decl_shared (_, _, e) -> expr_has_call e
  | Sync | Syncwarp | Threadfence -> false
  | If _ | While _ | For _ | Break | Continue -> true

let rec lower_stmt ?(self_charge = true) env (s : stmt) : unit =
  env.cur_loc <- s.sloc;
  let ins i = ignore (emit env.em i) in
  let cfg = env.cfg in
  let tag = Metrics.index_of_tag s.stag in
  let charge cost = if cost <> 0 then ins (I_charge (tag, float_of_int cost)) in
  (* Straight-line statements take their cost from [stmt_charge] (suppressed
     when a coalesced run already charged it); control flow uses [charge]. *)
  let charge_self () =
    if self_charge then
      match stmt_charge cfg s with
      | Some (tg, c) when c <> 0 -> ins (I_charge (tg, float_of_int c))
      | _ -> ()
  in
  match s.sdesc with
  | Decl (ty, x, init) -> (
      match init with
      | Some e ->
          charge_self ();
          (* Reserve the slot register before lowering — the initializer
             evaluates directly into it — but bind the name only after:
             [int x = x + 1] must read the outer [x]. *)
          let sl = tmp env in
          lower_into env sl e;
          env.next_reg <- sl + 1;
          env.slots <- (x, sl) :: env.slots
      | None -> (
          let sl = bind env x in
          match ty with
          | TInt -> ins (I_const_int (sl, 0))
          | TFloat -> ins (I_const_float (sl, 0.0))
          | TBool -> ins (I_const_bool (sl, false))
          | TDim3 -> ins (I_const_dim3 (sl, 1, 1, 1))
          | TPtr _ | TVoid -> ins (I_const_unit sl)))
  | Decl_shared (ty, x, size) ->
      charge_self ();
      let id = env.shared_ids in
      env.shared_ids <- id + 1;
      let dv = default_value ty in
      let m = mark env in
      let hit = emit env.em (I_jump (-1)) in
      let rsz = lower_expr env size in
      reset env m;
      let sl = bind env x in
      ins (I_shared_alloc (sl, id, rsz, dv));
      patch env.em hit (I_shared_hit (sl, id, env.em.len))
  | Assign (lv, e) ->
      charge_self ();
      let m = mark env in
      (match lv with
      | Var x ->
          let sl = slot_of env x "assignment" in
          lower_into env sl e
      | Index (p, i) ->
          let rp = lower_expr env p in
          let tp = tmp env in
          ins (I_as_ptr (tp, rp));
          let ri = lower_expr env i in
          let ti = tmp env in
          ins (I_cast_int (ti, ri));
          let rv = lower_expr env e in
          ins (I_store (tp, ti, rv, check_loc env))
      | Member (Var x, f) when not (is_reserved_var x) ->
          let sl = slot_of env x "member assignment" in
          let dx = tmp env and dy = tmp env and dz = tmp env in
          ins (I_split_dim3 (dx, dy, dz, sl));
          let rv = lower_expr env e in
          let tn = tmp env in
          ins (I_cast_int (tn, rv));
          ins (I_set_dim3 (sl, f, dx, dy, dz, tn))
      | Member (Index (p, i), f) ->
          let rp = lower_expr env p in
          let tp = tmp env in
          ins (I_as_ptr (tp, rp));
          let ri = lower_expr env i in
          let ti = tmp env in
          ins (I_cast_int (ti, ri));
          let dx = tmp env and dy = tmp env and dz = tmp env in
          ins (I_member_load_dim (dx, dy, dz, tp, ti, check_loc env));
          let rv = lower_expr env e in
          let tn = tmp env in
          ins (I_cast_int (tn, rv));
          ins (I_member_store_dim (tp, ti, f, dx, dy, dz, tn, check_loc env))
      | _ -> Value.error "in %s: invalid assignment target" env.fname);
      reset env m
  | If (c, a, b) ->
      charge (Compile.expr_cost cfg c + cfg.branch_cost);
      let jf = lower_cond_jf env c in
      scoped env (fun () -> lower_stmts env a);
      if b = [] then patch_target env.em jf env.em.len
      else begin
        let je = emit env.em (I_jump (-1)) in
        patch_target env.em jf env.em.len;
        scoped env (fun () -> lower_stmts env b);
        patch_target env.em je env.em.len
      end
  | While (c, body) ->
      (* Rotated: the test is emitted twice — an entry guard, then again at
         the bottom of the body where the back edge becomes a fall-through
         test — so an iteration executes no unconditional jump. Both copies
         charge the iteration cost first, like the closure engine's
         per-iteration charge; [continue] targets the bottom test. *)
      let iter_cost = float_of_int (Compile.expr_cost cfg c + cfg.branch_cost) in
      let charge_iter () =
        if iter_cost <> 0.0 then ins (I_charge (tag, iter_cost))
      in
      charge_iter ();
      let jf = lower_cond_jf env c in
      let body_top = env.em.len in
      let ctx = { breaks = ref []; continues = ref [] } in
      env.loops <- ctx :: env.loops;
      scoped env (fun () -> lower_stmts env body);
      env.loops <- List.tl env.loops;
      let bottom = env.em.len in
      charge_iter ();
      let jt = lower_cond_jt env c in
      patch_target env.em jt body_top;
      let end_ = env.em.len in
      patch_target env.em jf end_;
      List.iter (fun pc -> patch_target env.em pc end_) !(ctx.breaks);
      List.iter (fun pc -> patch_target env.em pc bottom) !(ctx.continues)
  | For (init, cond, step, body) ->
      (* Rotated: init; entry charge + guard; body; step; bottom charge +
         test jumping back to the body — an iteration executes no
         unconditional jump. When the step is a straight-line statement
         with the loop's tag, its charge folds into the bottom iteration
         charge (one [I_charge] covering step + test; same sum at every
         observable point, since neither can launch once call-bearing
         steps are excluded). [continue] targets the step. The body is
         lowered before the step here, unlike the closure compiler;
         typechecking runs before lowering, so the swap cannot reorder
         any user-visible error. *)
      scoped env (fun () ->
          (match init with Some s -> lower_stmt env s | None -> ());
          let iter_cost =
            float_of_int
              ((match cond with Some c -> Compile.expr_cost cfg c | None -> 0)
              + cfg.branch_cost)
          in
          let charge_iter () =
            if iter_cost <> 0.0 then ins (I_charge (tag, iter_cost))
          in
          charge_iter ();
          let jf =
            match cond with
            | Some c -> Some (lower_cond_jf env c)
            | None -> None
          in
          let body_top = env.em.len in
          let ctx = { breaks = ref []; continues = ref [] } in
          env.loops <- ctx :: env.loops;
          scoped env (fun () -> lower_stmts env body);
          env.loops <- List.tl env.loops;
          let step_start = env.em.len in
          (match step with
          | Some st -> (
              match stmt_charge cfg st with
              | Some (tg, c) when tg = tag && not (closes_run st) ->
                  let tot = float_of_int c +. iter_cost in
                  if tot <> 0.0 then ins (I_charge (tag, tot));
                  lower_stmt ~self_charge:false env st
              | _ ->
                  lower_stmt env st;
                  charge_iter ())
          | None -> charge_iter ());
          (match cond with
          | Some c ->
              let jt = lower_cond_jt env c in
              patch_target env.em jt body_top
          | None -> ignore (emit env.em (I_jump body_top)));
          let end_ = env.em.len in
          (match jf with
          | Some j -> patch_target env.em j end_
          | None -> ());
          List.iter (fun pc -> patch_target env.em pc end_) !(ctx.breaks);
          List.iter
            (fun pc -> patch_target env.em pc step_start)
            !(ctx.continues))
  | Return None -> ins I_ret_unit
  | Return (Some e) ->
      charge_self ();
      let m = mark env in
      let r = lower_expr env e in
      ins (I_ret r);
      reset env m
  | Expr_stmt e ->
      charge_self ();
      let m = mark env in
      ignore (lower_expr env e);
      reset env m
  | Launch l ->
      charge_self ();
      let m = mark env in
      let rg = lower_expr env l.l_grid in
      let tg = tmp env in
      ins (I_cast_dim3 (tg, rg));
      let rb = lower_expr env l.l_block in
      let tb = tmp env in
      ins (I_cast_dim3 (tb, rb));
      ins (I_launch_check (l.l_kernel, tg, tb));
      let argregs = List.map (lower_expr env) l.l_args in
      ins (I_launch (l.l_kernel, tg, tb, Array.of_list argregs));
      reset env m
  | Sync ->
      charge_self ();
      ins I_sync
  | Syncwarp ->
      charge_self ();
      let m = mark env in
      let tu = tmp env in
      ins (I_const_unit tu);
      ins (I_warp (tu, Wk_sync, tu));
      reset env m
  | Threadfence -> charge_self ()
  | Break -> (
      match env.loops with
      | ctx :: _ -> ctx.breaks := emit env.em (I_jump (-1)) :: !(ctx.breaks)
      | [] -> Value.error "in %s: break outside loop" env.fname)
  | Continue -> (
      match env.loops with
      | ctx :: _ -> ctx.continues := emit env.em (I_jump (-1)) :: !(ctx.continues)
      | [] -> Value.error "in %s: continue outside loop" env.fname)

(* Lower a statement list, coalescing charge runs: consecutive
   straight-line statements with the same tag get one [I_charge] for their
   summed cost, then lower with their own charges suppressed. *)
and lower_stmts env ss =
  match ss with
  | [] -> ()
  | s :: rest -> (
      match stmt_charge env.cfg s with
      | None ->
          lower_stmt env s;
          lower_stmts env rest
      | Some (tag, c0) ->
          let total = ref c0 in
          let run = ref [ s ] in
          let rest = ref rest in
          let stop = ref (closes_run s) in
          while not !stop do
            match !rest with
            | s2 :: tl -> (
                match stmt_charge env.cfg s2 with
                | Some (tag2, c2) when tag2 = tag ->
                    total := !total + c2;
                    run := s2 :: !run;
                    rest := tl;
                    if closes_run s2 then stop := true
                | _ -> stop := true)
            | [] -> stop := true
          done;
          if !total <> 0 then
            ignore (emit env.em (I_charge (tag, float_of_int !total)));
          List.iter (lower_stmt ~self_charge:false env) (List.rev !run);
          lower_stmts env !rest)

(* ------------------------------------------------------------------ *)
(* Packed encoding                                                     *)
(* ------------------------------------------------------------------ *)

(* The VM dispatches on a flat [int array] word stream rather than the
   [instr array]: an opcode word, then the instruction's operand words, all
   on the same cache lines — no per-instruction heap block to chase.
   Register operands stay frame-relative; jump targets become word offsets;
   non-int operands (float literals, member/kernel names, shared-memory
   initializers, source locations) are pooled and referenced by index.

   Opcode table — keep in sync with the dispatch match in {!Vm.interp}
   (cross-engine differential tests catch any drift loudly):

     0 const.unit   [d]              30 max          [d; a; b]
     1 const.int    [d; n]           31 abs          [d; s]
     2 const.float  [d; f#]          32 float1       [fn; d; s]
     3 const.bool   [d; 0/1]         33 pow          [d; a; b]
     4 const.dim3   [d; x; y; z]     34 atomic       [aop; d; p; v]
     5 mov          [d; s]           35 atomic.chk   [aop; d; p; v; l#]
     6 special      [d; sp]          36 cas          [d; p; c; v]
     7 special.comp [d; sp; s#]      37 cas.chk      [d; p; c; v; l#]
     8 member       [d; s; s#]       38 malloc       [d; s]
     9 neg          [d; s]           39 warp         [d; wk; a]
    10 not          [d; s]           40 warp.bcast   [d; a; l]
    11 binop        [op; d; a; b]    41 call         [d; fi; w@; n; a...]
    12 binop.int    [op; d; a; n]    42 ret.unit     []
    13 binop.float  [op; d; a; f#]   43 ret          [r]
    14 cmp.jf       [op; a; b; @]    44 jump         [@]
    15 cmp.jf.int   [op; a; n; @]    45 jfalse       [r; @]
    16 cmp.jt       [op; a; b; @]    46 jtrue        [r; @]
    17 cmp.jt.int   [op; a; n; @]    47 charge       [tag; f#]
    18 cast.int     [d; s]           48 split.dim3   [dx; dy; dz; sl]
    19 cast.float   [d; s]           49 set.dim3     [sl; s#; dx; dy; dz; v]
    20 cast.bool    [d; s]           50 mload.dim3   [dx; dy; dz; p; i]
    21 cast.dim3    [d; s]           51 mload.chk    [dx; dy; dz; p; i; l#]
    22 as_ptr       [d; s]           52 mstore.dim3  [p; i; s#; x; y; z; v]
    23 dim3         [d; x; y; z]     53 mstore.chk   [... ; l#]
    24 load         [d; p; i]        54 shared.hit   [sl; id; @]
    25 load.chk     [d; p; i; l#]    55 shared.new   [sl; id; sz; v#]
    26 store        [p; i; v]        56 launch.chk   [k#; g; b]
    27 store.chk    [p; i; v; l#]    57 launch       [k#; g; b; n; a...]
    28 addr         [d; p; i]        58 sync         []
    29 min          [d; a; b]

   Superinstructions — rotated-loop bottoms fused to one dispatch by the
   packer (guarded: no jump target may land on an interior instruction):

    59 loop.cc   [tag; f#; d; op; a; b; @]   charge; d += 1; cmp.jt
    60 loop.cci  [tag; f#; d; op; a; n; @]   charge; d += 1; cmp.jt.int
    61 charge.jt  [tag; f#; op; a; b; @]     charge; cmp.jt
    62 charge.jti [tag; f#; op; a; n; @]     charge; cmp.jt.int

   ([f#]/[s#]/[v#]/[l#] are pool indices; [@] a word-offset jump target;
   [w@] the callee's pre-resolved entry word offset.) *)

let binop_code : binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Mod -> 4
  | Lt -> 5
  | Le -> 6
  | Gt -> 7
  | Ge -> 8
  | Eq -> 9
  | Ne -> 10
  | LAnd -> 11
  | LOr -> 12
  | BAnd -> 13
  | BOr -> 14
  | BXor -> 15
  | Shl -> 16
  | Shr -> 17

let special_code = function
  | Sp_thread_idx -> 0
  | Sp_block_idx -> 1
  | Sp_block_dim -> 2
  | Sp_grid_dim -> 3

let float1_code = function
  | F_fabs -> 0
  | F_ceil -> 1
  | F_floor -> 2
  | F_sqrt -> 3
  | F_exp -> 4
  | F_log -> 5

let atomic_code = function
  | A_add -> 0
  | A_sub -> 1
  | A_min -> 2
  | A_max -> 3
  | A_exch -> 4

let warp_code = function
  | Wk_scan_excl -> 0
  | Wk_sum -> 1
  | Wk_max -> 2
  | Wk_sync -> 3

let pack_width = function
  | I_const_unit _ -> 2
  | I_const_int _ | I_const_float _ | I_const_bool _ -> 3
  | I_const_dim3 _ -> 5
  | I_mov _ -> 3
  | I_special _ -> 3
  | I_special_comp _ -> 4
  | I_member _ -> 4
  | I_neg _ | I_not _ -> 3
  | I_binop _ | I_binop_int _ | I_binop_float _ -> 5
  | I_cmp_jf _ | I_cmp_jf_int _ | I_cmp_jt _ | I_cmp_jt_int _ -> 5
  | I_cast_int _ | I_cast_float _ | I_cast_bool _ | I_cast_dim3 _
  | I_as_ptr _ ->
      3
  | I_dim3 _ -> 5
  | I_load (_, _, _, c) -> ( match c with None -> 4 | Some _ -> 5)
  | I_store (_, _, _, c) -> ( match c with None -> 4 | Some _ -> 5)
  | I_addr _ -> 4
  | I_min _ | I_max _ -> 4
  | I_abs _ -> 3
  | I_float1 _ -> 4
  | I_pow _ -> 4
  | I_atomic (_, _, _, _, c) -> ( match c with None -> 5 | Some _ -> 6)
  | I_cas (_, _, _, _, c) -> ( match c with None -> 5 | Some _ -> 6)
  | I_malloc _ -> 3
  | I_warp _ -> 4
  | I_warp_bcast _ -> 4
  | I_call (_, _, args) -> 5 + Array.length args
  | I_ret_unit -> 1
  | I_ret _ -> 2
  | I_jump _ -> 2
  | I_jump_if_false _ | I_jump_if_true _ -> 3
  | I_charge _ -> 3
  | I_split_dim3 _ -> 5
  | I_set_dim3 _ -> 7
  | I_member_load_dim (_, _, _, _, _, c) -> (
      match c with None -> 6 | Some _ -> 7)
  | I_member_store_dim (_, _, _, _, _, _, _, c) -> (
      match c with None -> 8 | Some _ -> 9)
  | I_shared_hit _ -> 4
  | I_shared_alloc _ -> 5
  | I_launch_check _ -> 4
  | I_launch (_, _, _, args) -> 5 + Array.length args
  | I_sync -> 1

(* [pack code funcs] flattens [code]; [funcs] must already have their
   [bf_entry] set (call targets are resolved to word offsets here).

   The packer also fuses rotated-loop bottom sequences into one dispatch:

     charge; d = d + 1; cmp.jt ...  ->  loop.cc / loop.cci   (For bottoms)
     charge; cmp.jt ...             ->  charge.jt / charge.jti (While bottoms)

   only when no jump target (or function entry/followup) lands on an
   interior instruction — a [continue] into a For step keeps the unfused
   encoding. The fused VM arms run the exact sub-step bodies in the same
   order, so fusion changes dispatch count and nothing else. *)
let pack (code : instr array) (funcs : func array) =
  let n = Array.length code in
  let target = Array.make (n + 1) false in
  let mark tg = target.(tg) <- true in
  Array.iter
    (function
      | I_cmp_jf (_, _, _, tg)
      | I_cmp_jf_int (_, _, _, tg)
      | I_cmp_jt (_, _, _, tg)
      | I_cmp_jt_int (_, _, _, tg)
      | I_jump tg
      | I_jump_if_false (_, tg)
      | I_jump_if_true (_, tg)
      | I_shared_hit (_, _, tg) ->
          mark tg
      | _ -> ())
    code;
  Array.iter
    (fun f ->
      mark f.bf_entry;
      match f.bf_followup with Some e -> mark e | None -> ())
    funcs;
  (* fused.(i): packed opcode of the superinstruction starting at [i], 0 if
     [i] packs alone, -1 if consumed by a preceding superinstruction. *)
  let fused = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let j = !i in
    let nxt k = if j + k < n && not target.(j + k) then Some code.(j + k) else None in
    let len, sop =
      match code.(j) with
      | I_charge _ -> (
          match (nxt 1, nxt 2) with
          | Some (I_binop_int (Add, d, a, 1)), Some (I_cmp_jt _) when d = a ->
              (3, 59)
          | Some (I_binop_int (Add, d, a, 1)), Some (I_cmp_jt_int _) when d = a
            ->
              (3, 60)
          | Some (I_cmp_jt _), _ -> (2, 61)
          | Some (I_cmp_jt_int _), _ -> (2, 62)
          | _ -> (1, 0))
      | _ -> (1, 0)
    in
    if len > 1 then begin
      fused.(j) <- sop;
      for k = j + 1 to j + len - 1 do
        fused.(k) <- -1
      done
    end;
    i := j + len
  done;
  let width i =
    match fused.(i) with
    | 0 -> pack_width code.(i)
    | -1 -> 0
    | 59 | 60 -> 8
    | _ -> 7
  in
  let woff = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    woff.(i + 1) <- woff.(i) + width i
  done;
  let ops = Array.make woff.(n) 0 in
  let pool () =
    let items = ref [] and count = ref 0 in
    let add x =
      let i = !count in
      incr count;
      items := x :: !items;
      i
    in
    (items, add)
  in
  let fpool, addf = pool () in
  let spool, adds = pool () in
  let vpool, addv = pool () in
  let lpool, addl = pool () in
  let w = ref 0 in
  let put x =
    ops.(!w) <- x;
    incr w
  in
  let put_charge i =
    match code.(i) with
    | I_charge (tag, c) ->
        put tag;
        put (addf c)
    | _ -> assert false
  in
  let put_cmp_jt i =
    match code.(i) with
    | I_cmp_jt (op, a, b, tg) | I_cmp_jt_int (op, a, b, tg) ->
        put (binop_code op);
        put a;
        put b;
        put woff.(tg)
    | _ -> assert false
  in
  for i = 0 to n - 1 do
    (match fused.(i) with
    | -1 -> ()
    | (59 | 60) as sop ->
        put sop;
        put_charge i;
        (match code.(i + 1) with
        | I_binop_int (_, d, _, _) -> put d
        | _ -> assert false);
        put_cmp_jt (i + 2)
    | (61 | 62) as sop ->
        put sop;
        put_charge i;
        put_cmp_jt (i + 1)
    | _ -> (
    match code.(i) with
    | I_const_unit d ->
        put 0;
        put d
    | I_const_int (d, x) ->
        put 1;
        put d;
        put x
    | I_const_float (d, f) ->
        put 2;
        put d;
        put (addf f)
    | I_const_bool (d, bv) ->
        put 3;
        put d;
        put (if bv then 1 else 0)
    | I_const_dim3 (d, x, y, z) ->
        put 4;
        put d;
        put x;
        put y;
        put z
    | I_mov (d, s) ->
        put 5;
        put d;
        put s
    | I_special (d, sp) ->
        put 6;
        put d;
        put (special_code sp)
    | I_special_comp (d, sp, f) ->
        put 7;
        put d;
        put (special_code sp);
        put (adds f)
    | I_member (d, s, f) ->
        put 8;
        put d;
        put s;
        put (adds f)
    | I_neg (d, s) ->
        put 9;
        put d;
        put s
    | I_not (d, s) ->
        put 10;
        put d;
        put s
    | I_binop (op, d, a, b) ->
        put 11;
        put (binop_code op);
        put d;
        put a;
        put b
    | I_binop_int (op, d, a, x) ->
        put 12;
        put (binop_code op);
        put d;
        put a;
        put x
    | I_binop_float (op, d, a, f) ->
        put 13;
        put (binop_code op);
        put d;
        put a;
        put (addf f)
    | I_cmp_jf (op, a, b, tg) ->
        put 14;
        put (binop_code op);
        put a;
        put b;
        put woff.(tg)
    | I_cmp_jf_int (op, a, x, tg) ->
        put 15;
        put (binop_code op);
        put a;
        put x;
        put woff.(tg)
    | I_cmp_jt (op, a, b, tg) ->
        put 16;
        put (binop_code op);
        put a;
        put b;
        put woff.(tg)
    | I_cmp_jt_int (op, a, x, tg) ->
        put 17;
        put (binop_code op);
        put a;
        put x;
        put woff.(tg)
    | I_cast_int (d, s) ->
        put 18;
        put d;
        put s
    | I_cast_float (d, s) ->
        put 19;
        put d;
        put s
    | I_cast_bool (d, s) ->
        put 20;
        put d;
        put s
    | I_cast_dim3 (d, s) ->
        put 21;
        put d;
        put s
    | I_as_ptr (d, s) ->
        put 22;
        put d;
        put s
    | I_dim3 (d, x, y, z) ->
        put 23;
        put d;
        put x;
        put y;
        put z
    | I_load (d, p, ix, None) ->
        put 24;
        put d;
        put p;
        put ix
    | I_load (d, p, ix, Some l) ->
        put 25;
        put d;
        put p;
        put ix;
        put (addl l)
    | I_store (p, ix, v, None) ->
        put 26;
        put p;
        put ix;
        put v
    | I_store (p, ix, v, Some l) ->
        put 27;
        put p;
        put ix;
        put v;
        put (addl l)
    | I_addr (d, p, ix) ->
        put 28;
        put d;
        put p;
        put ix
    | I_min (d, a, b) ->
        put 29;
        put d;
        put a;
        put b
    | I_max (d, a, b) ->
        put 30;
        put d;
        put a;
        put b
    | I_abs (d, s) ->
        put 31;
        put d;
        put s
    | I_float1 (fn, d, s) ->
        put 32;
        put (float1_code fn);
        put d;
        put s
    | I_pow (d, a, b) ->
        put 33;
        put d;
        put a;
        put b
    | I_atomic (aop, d, p, v, None) ->
        put 34;
        put (atomic_code aop);
        put d;
        put p;
        put v
    | I_atomic (aop, d, p, v, Some l) ->
        put 35;
        put (atomic_code aop);
        put d;
        put p;
        put v;
        put (addl l)
    | I_cas (d, p, c, v, None) ->
        put 36;
        put d;
        put p;
        put c;
        put v
    | I_cas (d, p, c, v, Some l) ->
        put 37;
        put d;
        put p;
        put c;
        put v;
        put (addl l)
    | I_malloc (d, s) ->
        put 38;
        put d;
        put s
    | I_warp (d, wk, a) ->
        put 39;
        put d;
        put (warp_code wk);
        put a
    | I_warp_bcast (d, a, l) ->
        put 40;
        put d;
        put a;
        put l
    | I_call (d, fi, args) ->
        put 41;
        put d;
        put fi;
        put woff.(funcs.(fi).bf_entry);
        put (Array.length args);
        Array.iter put args
    | I_ret_unit -> put 42
    | I_ret r ->
        put 43;
        put r
    | I_jump tg ->
        put 44;
        put woff.(tg)
    | I_jump_if_false (r, tg) ->
        put 45;
        put r;
        put woff.(tg)
    | I_jump_if_true (r, tg) ->
        put 46;
        put r;
        put woff.(tg)
    | I_charge (tag, c) ->
        put 47;
        put tag;
        put (addf c)
    | I_split_dim3 (x, y, z, sl) ->
        put 48;
        put x;
        put y;
        put z;
        put sl
    | I_set_dim3 (sl, f, x, y, z, v) ->
        put 49;
        put sl;
        put (adds f);
        put x;
        put y;
        put z;
        put v
    | I_member_load_dim (x, y, z, p, ix, None) ->
        put 50;
        put x;
        put y;
        put z;
        put p;
        put ix
    | I_member_load_dim (x, y, z, p, ix, Some l) ->
        put 51;
        put x;
        put y;
        put z;
        put p;
        put ix;
        put (addl l)
    | I_member_store_dim (p, ix, f, x, y, z, v, None) ->
        put 52;
        put p;
        put ix;
        put (adds f);
        put x;
        put y;
        put z;
        put v
    | I_member_store_dim (p, ix, f, x, y, z, v, Some l) ->
        put 53;
        put p;
        put ix;
        put (adds f);
        put x;
        put y;
        put z;
        put v;
        put (addl l)
    | I_shared_hit (sl, id, tg) ->
        put 54;
        put sl;
        put id;
        put woff.(tg)
    | I_shared_alloc (sl, id, sz, dv) ->
        put 55;
        put sl;
        put id;
        put sz;
        put (addv dv)
    | I_launch_check (k, g, b) ->
        put 56;
        put (adds k);
        put g;
        put b
    | I_launch (k, g, b, args) ->
        put 57;
        put (adds k);
        put g;
        put b;
        put (Array.length args);
        Array.iter put args
    | I_sync -> put 58));
    assert (!w = woff.(i + 1))
  done;
  ( ops,
    woff,
    Array.of_list (List.rev !fpool),
    Array.of_list (List.rev !spool),
    Array.of_list (List.rev !vpool),
    Array.of_list (List.rev !lpool) )

(* ------------------------------------------------------------------ *)
(* Program lowering                                                    *)
(* ------------------------------------------------------------------ *)

let compile (cfg : Config.t) (prog : program) : prog =
  Typecheck.check prog;
  let funcs =
    Array.of_list
      (List.map
         (fun (f : Ast.func) ->
           {
             bf_name = f.f_name;
             bf_kind = f.f_kind;
             bf_nregs = 0;
             bf_nparams = List.length f.f_params;
             bf_contains_launch = Ast_util.contains_launch f.f_body;
             bf_is_serial =
               f.f_kind = Device && Compile.has_serial_suffix f.f_name;
             bf_safety = Blocksafe.analyze prog f;
             bf_static_work = Blocksafe.static_work cfg f;
             bf_entry = 0;
             bf_followup = None;
           })
         prog)
  in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i bf -> Hashtbl.add index bf.bf_name i) funcs;
  let em = { buf = Array.make 256 I_ret_unit; len = 0 } in
  List.iteri
    (fun fi (f : Ast.func) ->
      let env =
        {
          funcs;
          index;
          em;
          slots = [];
          next_reg = 0;
          max_reg = 0;
          shared_ids = 0;
          cfg;
          fname = f.f_name;
          cur_loc = Loc.dummy;
          loops = [];
        }
      in
      List.iter (fun p -> ignore (bind env p.p_name)) f.f_params;
      let entry = em.len in
      lower_stmts env f.f_body;
      ignore (emit em I_ret_unit);
      let followup =
        Option.map
          (fun ss ->
            (* Like the closure compiler, the followup shares the body's
               environment: top-level body locals stay visible. *)
            let fe = em.len in
            lower_stmts env ss;
            ignore (emit em I_ret_unit);
            fe)
          f.f_host_followup
      in
      let bf = funcs.(fi) in
      bf.bf_entry <- entry;
      bf.bf_followup <- followup;
      bf.bf_nregs <- env.max_reg)
    prog;
  let code = Array.sub em.buf 0 em.len in
  let ops, woff, fpool, spool, vpool, lpool = pack code funcs in
  {
    bp_code = code;
    bp_funcs = funcs;
    bp_index = index;
    bp_ast = prog;
    bp_ops = ops;
    bp_woff = woff;
    bp_fpool = fpool;
    bp_spool = spool;
    bp_vpool = vpool;
    bp_lpool = lpool;
  }

(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"
  | LAnd -> "land"
  | LOr -> "lor"
  | BAnd -> "band"
  | BOr -> "bor"
  | BXor -> "bxor"
  | Shl -> "shl"
  | Shr -> "shr"

let special_name = function
  | Sp_thread_idx -> "threadIdx"
  | Sp_block_idx -> "blockIdx"
  | Sp_block_dim -> "blockDim"
  | Sp_grid_dim -> "gridDim"

let float1_name = function
  | F_fabs -> "fabs"
  | F_ceil -> "ceil"
  | F_floor -> "floor"
  | F_sqrt -> "sqrt"
  | F_exp -> "exp"
  | F_log -> "log"

let atomic_name = function
  | A_add -> "add"
  | A_sub -> "sub"
  | A_min -> "min"
  | A_max -> "max"
  | A_exch -> "exch"

let warp_name = function
  | Wk_scan_excl -> "scan_excl"
  | Wk_sum -> "sum"
  | Wk_max -> "max"
  | Wk_sync -> "sync"

let pp_check ppf = function
  | None -> ()
  | Some loc -> Fmt.pf ppf "  !%a" Loc.pp loc

let pp_instr funcs ppf = function
  | I_const_unit d -> Fmt.pf ppf "const.unit  r%d" d
  | I_const_int (d, n) -> Fmt.pf ppf "const.int   r%d, %d" d n
  | I_const_float (d, f) -> Fmt.pf ppf "const.float r%d, %h" d f
  | I_const_bool (d, b) -> Fmt.pf ppf "const.bool  r%d, %b" d b
  | I_const_dim3 (d, x, y, z) ->
      Fmt.pf ppf "const.dim3  r%d, (%d,%d,%d)" d x y z
  | I_mov (d, s) -> Fmt.pf ppf "mov         r%d, r%d" d s
  | I_special (d, sp) -> Fmt.pf ppf "special     r%d, %s" d (special_name sp)
  | I_special_comp (d, sp, f) ->
      Fmt.pf ppf "special     r%d, %s.%s" d (special_name sp) f
  | I_member (d, s, f) -> Fmt.pf ppf "member      r%d, r%d.%s" d s f
  | I_neg (d, s) -> Fmt.pf ppf "neg         r%d, r%d" d s
  | I_not (d, s) -> Fmt.pf ppf "not         r%d, r%d" d s
  | I_binop (op, d, a, b) ->
      Fmt.pf ppf "%-11s r%d, r%d, r%d" (binop_name op) d a b
  | I_binop_int (op, d, a, n) ->
      Fmt.pf ppf "%-11s r%d, r%d, %d" (binop_name op ^ ".i") d a n
  | I_binop_float (op, d, a, f) ->
      Fmt.pf ppf "%-11s r%d, r%d, %h" (binop_name op ^ ".f") d a f
  | I_cmp_jf (op, a, b, n) ->
      Fmt.pf ppf "%-11s r%d, r%d, @%d" (binop_name op ^ ".jf") a b n
  | I_cmp_jf_int (op, a, i, n) ->
      Fmt.pf ppf "%-11s r%d, %d, @%d" (binop_name op ^ ".jfi") a i n
  | I_cmp_jt (op, a, b, n) ->
      Fmt.pf ppf "%-11s r%d, r%d, @%d" (binop_name op ^ ".jt") a b n
  | I_cmp_jt_int (op, a, i, n) ->
      Fmt.pf ppf "%-11s r%d, %d, @%d" (binop_name op ^ ".jti") a i n
  | I_cast_int (d, s) -> Fmt.pf ppf "cast.int    r%d, r%d" d s
  | I_cast_float (d, s) -> Fmt.pf ppf "cast.float  r%d, r%d" d s
  | I_cast_bool (d, s) -> Fmt.pf ppf "cast.bool   r%d, r%d" d s
  | I_cast_dim3 (d, s) -> Fmt.pf ppf "cast.dim3   r%d, r%d" d s
  | I_as_ptr (d, s) -> Fmt.pf ppf "as_ptr      r%d, r%d" d s
  | I_dim3 (d, x, y, z) -> Fmt.pf ppf "dim3        r%d, r%d, r%d, r%d" d x y z
  | I_load (d, p, i, c) ->
      Fmt.pf ppf "load        r%d, [r%d + r%d]%a" d p i pp_check c
  | I_store (p, i, v, c) ->
      Fmt.pf ppf "store       [r%d + r%d], r%d%a" p i v pp_check c
  | I_addr (d, p, i) -> Fmt.pf ppf "addr        r%d, [r%d + r%d]" d p i
  | I_min (d, a, b) -> Fmt.pf ppf "min         r%d, r%d, r%d" d a b
  | I_max (d, a, b) -> Fmt.pf ppf "max         r%d, r%d, r%d" d a b
  | I_abs (d, s) -> Fmt.pf ppf "abs         r%d, r%d" d s
  | I_float1 (fn, d, s) -> Fmt.pf ppf "%-11s r%d, r%d" (float1_name fn) d s
  | I_pow (d, a, b) -> Fmt.pf ppf "pow         r%d, r%d, r%d" d a b
  | I_atomic (op, d, p, v, c) ->
      Fmt.pf ppf "atomic.%-4s r%d, [r%d], r%d%a" (atomic_name op) d p v
        pp_check c
  | I_cas (d, p, cm, v, c) ->
      Fmt.pf ppf "atomic.cas  r%d, [r%d], r%d, r%d%a" d p cm v pp_check c
  | I_malloc (d, s) -> Fmt.pf ppf "malloc      r%d, r%d" d s
  | I_warp (d, wk, a) ->
      Fmt.pf ppf "warp.%-6s r%d, r%d" (warp_name wk) d a
  | I_warp_bcast (d, a, l) ->
      Fmt.pf ppf "warp.bcast  r%d, r%d, lane=r%d" d a l
  | I_call (d, fi, args) ->
      Fmt.pf ppf "call        r%d, %s(%a)" d funcs.(fi).bf_name
        Fmt.(array ~sep:(any ", ") (fmt "r%d"))
        args
  | I_ret_unit -> Fmt.pf ppf "ret.unit"
  | I_ret r -> Fmt.pf ppf "ret         r%d" r
  | I_jump n -> Fmt.pf ppf "jump        @%d" n
  | I_jump_if_false (r, n) -> Fmt.pf ppf "jfalse      r%d, @%d" r n
  | I_jump_if_true (r, n) -> Fmt.pf ppf "jtrue       r%d, @%d" r n
  | I_charge (tag, c) -> Fmt.pf ppf "charge      tag%d, %g" tag c
  | I_split_dim3 (x, y, z, sl) ->
      Fmt.pf ppf "split.dim3  r%d, r%d, r%d, r%d" x y z sl
  | I_set_dim3 (sl, f, x, y, z, v) ->
      Fmt.pf ppf "set.dim3    r%d.%s, (r%d,r%d,r%d), r%d" sl f x y z v
  | I_member_load_dim (x, y, z, p, i, c) ->
      Fmt.pf ppf "mload.dim3  (r%d,r%d,r%d), [r%d + r%d]%a" x y z p i
        pp_check c
  | I_member_store_dim (p, i, f, x, y, z, v, c) ->
      Fmt.pf ppf "mstore.dim3 [r%d + r%d].%s, (r%d,r%d,r%d), r%d%a" p i f x y
        z v pp_check c
  | I_shared_hit (sl, id, tgt) ->
      Fmt.pf ppf "shared.hit  r%d, id=%d, @%d" sl id tgt
  | I_shared_alloc (sl, id, sz, dv) ->
      Fmt.pf ppf "shared.new  r%d, id=%d, r%d, init=%a" sl id sz Value.pp dv
  | I_launch_check (k, g, b) ->
      Fmt.pf ppf "launch.chk  %s, grid=r%d, block=r%d" k g b
  | I_launch (k, g, b, args) ->
      Fmt.pf ppf "launch      %s<<<r%d, r%d>>>(%a)" k g b
        Fmt.(array ~sep:(any ", ") (fmt "r%d"))
        args
  | I_sync -> Fmt.pf ppf "sync"

let pp ppf (p : prog) =
  let n = Array.length p.bp_funcs in
  Array.iteri
    (fun fi bf ->
      let kind =
        match bf.bf_kind with Global -> "__global__" | Device -> "__device__"
      in
      let hi =
        if fi + 1 < n then p.bp_funcs.(fi + 1).bf_entry
        else Array.length p.bp_code
      in
      Fmt.pf ppf "%s %s  params=%d regs=%d%s%s@." kind bf.bf_name bf.bf_nparams
        bf.bf_nregs
        (if bf.bf_contains_launch then " [cdp]" else "")
        (if bf.bf_is_serial then " [serial]" else "");
      for pc = bf.bf_entry to hi - 1 do
        (match bf.bf_followup with
        | Some fe when fe = pc -> Fmt.pf ppf "  -- host followup --@."
        | _ -> ());
        Fmt.pf ppf "  %4d: %a@." pc (pp_instr p.bp_funcs) p.bp_code.(pc)
      done;
      if fi + 1 < n then Fmt.pf ppf "@.")
    p.bp_funcs

let disassemble (p : prog) : string = Fmt.str "%a" pp p
