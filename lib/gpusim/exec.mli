(** Block executor: runs all threads of one thread block to completion.

    Threads are OCaml-5 fibers advancing warp by warp; warp collectives
    evaluate over the live lanes of a warp, [__syncthreads] is a block-wide
    epoch barrier, and threads that returned early count as arrived.
    Cost model: a warp's cost per tag is the maximum over its lanes
    (lockstep execution makes the straggler the critical path); a block's
    cost is the sum over warps, scaled by {!Config.sm_warp_parallelism}. *)

(** Evaluate one warp collective over the suspended live lanes; input and
    output are (lane index, request/result) pairs in lane order. Shared
    with the bytecode engine ({!Vm}) so collective semantics (including
    the divergent-collective error) are engine-independent.
    @raise Value.Runtime_error on divergent collectives or a broadcast
    from a dead lane. *)
val eval_warp_op :
  (int * Compile.warp_req) list -> (int * Value.t) list

type result = {
  r_launches : Compile.launch_req list;  (** In issue order. *)
  r_compute_cycles : float;
      (** Parallelism-scaled compute cycles (block duration minus the
          scheduling overhead). *)
  r_tag_cycles : float array;  (** Per-tag scaled cycles. *)
}

(** Execute one block; memory side effects happen immediately.
    @raise Value.Runtime_error on memory faults, divergent warp
    collectives, or blocks that neither finish nor reach a barrier. *)
val run_block :
  Compile.cprog ->
  Compile.cfunc ->
  args:Value.t list ->
  gdim:int * int * int ->
  bdim:int * int * int ->
  bidx:int * int * int ->
  mem:Memory.t ->
  cfg:Config.t ->
  metrics:Metrics.t ->
  default_idx:int ->
  result

(** Execute host-followup statements (grid-granularity aggregation) in a
    single pseudo-thread with host-launch semantics; returns the launches
    issued. No device cost is charged — the host is not the simulated
    device. *)
val run_host_stmts :
  Compile.cfunc ->
  Compile.cstmt ->
  args:Value.t list ->
  grid:int * int * int ->
  block:int * int * int ->
  mem:Memory.t ->
  cfg:Config.t ->
  metrics:Metrics.t ->
  Compile.launch_req list
