(** Host-side device API — the MiniCU analogue of the CUDA runtime.

    A typical driver:

    {[
      let dev = Device.create () in
      Device.load_program dev prog ~auto_params;
      let d_data = Device.alloc_ints dev data in
      Device.launch dev ~kernel:"parent" ~grid:(n_blocks, 1, 1)
        ~block:(256, 1, 1) ~args:[ Ptr d_data; Int n ];
      let elapsed = Device.sync dev in
      let result = Device.read_ints dev d_data n in
      ...
    ]} *)

type dim3 = int * int * int

(** Runtime-allocated trailing parameters for transformed kernels.

    The aggregation pass appends buffer parameters to the parent kernel
    (argument/configuration arrays and counters — the "pre-allocated memory
    buffer" of the paper's Fig. 7 line 17). Drivers keep launching with the
    original arguments; the runtime allocates each auto buffer, zero-filled,
    sized by [ap_elems] from the actual launch configuration, and appends the
    pointers. *)
type auto_param = {
  ap_name : string;  (** Parameter name, for debugging. *)
  ap_elems : grid:dim3 -> block:dim3 -> int;
}

type t = {
  cfg : Config.t;
  mem : Memory.t;
  metrics : Metrics.t;
  sched : Sched.t;
  mutable auto_params : (string * auto_param list) list;
}

let create ?(cfg = Config.default) () =
  let mem = Memory.create () in
  let metrics = Metrics.create () in
  { cfg; mem; metrics; sched = Sched.create cfg mem metrics; auto_params = [] }

let metrics t = t.metrics
let memory t = t.mem
let config t = t.cfg

(** [load_program t prog ~auto_params] typechecks and compiles [prog] onto
    the device, under the engine selected by {!Config.engine}.
    [auto_params] maps kernel names to the runtime-allocated trailing
    parameters their transformed signatures expect. *)
let load_program ?(auto_params = []) t (prog : Minicu.Ast.program) =
  Sched.load_stream t.sched (Sched.default_stream t.sched) prog;
  t.auto_params <- auto_params

(** {1 Memory management} *)

let alloc t n ~init : Value.ptr = Memory.alloc t.mem n ~init

let alloc_ints t (a : int array) =
  let p = Memory.alloc t.mem (Array.length a) ~init:(Value.Int 0) in
  Memory.write_ints t.mem p a;
  p

let alloc_int_zeros t n = Memory.alloc t.mem n ~init:(Value.Int 0)

let alloc_floats t (a : float array) =
  let p = Memory.alloc t.mem (Array.length a) ~init:(Value.Float 0.0) in
  Memory.write_floats t.mem p a;
  p

let alloc_float_zeros t n = Memory.alloc t.mem n ~init:(Value.Float 0.0)

(** Deterministic-replay hooks: the simulator is fully deterministic, so a
    (program, workload, config) triple always produces the same memory
    image. [buffer_count] and [dump_memory] let a checker snapshot the
    buffers a driver allocated (ids are dense, in allocation order) and
    compare them bit-for-bit across compiled variants of the same
    program — see {e lib/difftest}. *)

let buffer_count t = Memory.buffer_count t.mem
let dump_memory t ~first = Memory.dump t.mem ~first

let read_ints t p n = Memory.read_ints t.mem p n
let read_floats t p n = Memory.read_floats t.mem p n
let write_ints t p a = Memory.write_ints t.mem p a
let write_floats t p a = Memory.write_floats t.mem p a
let free t p = Memory.free t.mem p

(** {1 Kernel launch} *)

(** [launch t ~kernel ~grid ~block ~args] issues a host-side launch,
    asynchronously (as in CUDA: work runs at the next {!sync}). Untagged
    kernel time is attributed to parent work; pass [~role:`Child] for
    kernels that represent child work launched from the host. *)
let launch ?(role = `Parent) t ~kernel ~(grid : dim3) ~(block : dim3)
    ~(args : Value.t list) =
  let stream = Sched.default_stream t.sched in
  let cf = Sched.resolve_kernel stream kernel in
  let auto =
    match List.assoc_opt kernel t.auto_params with
    | None -> []
    | Some specs ->
        List.map
          (fun ap ->
            let n = ap.ap_elems ~grid ~block in
            Value.Ptr (Memory.alloc t.mem n ~init:(Value.Int 0)))
          specs
  in
  let args = args @ auto in
  let expected = Sched.kernel_nparams cf in
  if List.length args <> expected then
    Value.error
      "launch of %S: expected %d arguments (%d user + %d auto), got %d user"
      kernel expected
      (expected - List.length auto)
      (List.length auto)
      (List.length args - List.length auto);
  let issue = t.sched.clock in
  let ready = Sched.process_host_launch t.sched stream ~issue in
  let default_idx =
    match role with
    | `Parent -> Metrics.tag_parent
    | `Child -> Metrics.tag_child
  in
  Sched.launch_grid t.sched stream ~issue ~from_host:true ~kernel:cf ~grid
    ~block ~args ~ready ~default_idx

(** [sync t] drains all pending work and returns the simulated clock. *)
let sync t = Sched.run_to_idle t.sched

(** Parallel-dispatch occupancy: (batches of >= 2 blocks run concurrently,
    blocks executed in them). Both zero unless [Config.block_jobs] > 1.
    Host-side accounting only; simulated results are unaffected. *)
let par_stats t = (t.sched.Sched.par_batches, t.sched.Sched.par_batch_blocks)

(** Current simulated time (cycles since device creation). *)
let time t = t.sched.clock

(** Execution tracing (see {!Gpusim.Trace}). *)

let enable_trace t = Trace.enable t.sched.trace
let trace_events t = Trace.events t.sched.trace
let clear_trace t = Trace.clear t.sched.trace

(** [elapsed t f] runs [f ()] (typically launches plus a sync) and returns
    the simulated cycles it took. *)
let elapsed t f =
  let before = time t in
  f ();
  let (_ : float) = sync t in
  time t -. before
