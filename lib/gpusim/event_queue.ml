(** A binary min-heap keyed by (time, sequence number).

    The sequence number makes pops deterministic when events share a
    timestamp: ties resolve in insertion order, which the simulator relies
    on for reproducible runs.

    Slots outside the live prefix [0 .. size - 1] are kept at [None]: both
    {!pop} (the vacated slot) and the growth path clear them, so a popped
    payload — a grid record with its kernel closures and argument values —
    becomes garbage as soon as the simulator drops it, instead of being
    retained by the heap array for the rest of the run. *)

type 'a entry = float * int * 'a

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable seq : int;
}

let create () = { heap = [||]; size = 0; seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

(* Live slots always hold [Some]; only indices >= size are [None]. *)
let get t i =
  match t.heap.(i) with Some e -> e | None -> assert false

let less (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less (get t l) (get t !smallest) then smallest := l;
  if r < t.size && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t time v =
  if t.size = Array.length t.heap then begin
    let cap = max 64 (2 * t.size) in
    let bigger = Array.make cap None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- Some (time, t.seq, v);
  t.seq <- t.seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** [pop t] removes and returns the earliest event as [(time, value)]. *)
let pop t =
  if t.size = 0 then invalid_arg "Event_queue.pop: empty";
  let time, _, v = get t 0 in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    sift_down t 0
  end
  else t.heap.(0) <- None;
  (time, v)

let peek_time t =
  if t.size = 0 then None
  else
    let time, _, _ = get t 0 in
    Some time

(** [peek t] returns the earliest event without removing it — the batch
    collector uses it to extend a prefix without disturbing the FIFO
    tie-break (pop-and-push-back would assign a fresh sequence number). *)
let peek t =
  if t.size = 0 then None
  else
    let time, _, v = get t 0 in
    Some (time, v)
