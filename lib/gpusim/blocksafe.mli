(** Cross-block independence analysis for parallel block dispatch.

    Decides whether distinct blocks of a kernel's grid can execute
    concurrently with results bit-identical to sequential execution. The
    analysis classifies every pointer parameter into one of three usage
    modes; anything it cannot prove makes the kernel fall back to serial
    dispatch — unprovable never means wrong, only slow. The scheduler
    combines the static {!summary} with a cheap dynamic check (distinct
    owned-buffer ids across a batch, 1-D dims where required) at dispatch
    time. *)

(** How a pointer parameter is used by the kernel. *)
type mode =
  | Read_only  (** Never written through (also: non-pointer parameters). *)
  | Owned of int
      (** Every access (load, store, atomic) lands in the accessing
          thread's private window [{stride*gtid + d | 0 <= d < stride}],
          where [gtid = blockIdx.x*blockDim.x + threadIdx.x]. Requires 1-D
          dims at dispatch for [gtid] injectivity. *)
  | Reduce
      (** Only discarded-result commutative integer atomics
          ([atomicAdd]/[Sub]/[Min]/[Max] on [int*]): exact
          order-independent reductions. *)

type summary = {
  bs_safe : bool;
  bs_reason : string;  (** Why not, when [not bs_safe]; [""] otherwise. *)
  bs_modes : mode array;  (** Per-parameter; meaningful when [bs_safe]. *)
  bs_needs_1d : bool;
      (** Safety relies on [gtid] injectivity (any [Owned] parameter): the
          dispatcher must check grid/block are 1-D. *)
}

(** [analyze prog f] proves (or declines to prove) cross-block independence
    of kernel [f]. Total: never raises; failures come back as
    [{ bs_safe = false; bs_reason; _ }]. *)
val analyze : Minicu.Ast.program -> Minicu.Ast.func -> summary

(** [static_work cfg f] — statically-estimated cycles for one {e thread} of
    [f] (loop-weighted instruction costs; unknown loop bounds assume a
    fixed trip count). The grid sampler stratifies and gates on this
    estimate; it needs ordering fidelity, not absolute accuracy. *)
val static_work : Config.t -> Minicu.Ast.func -> float
