(** Optional execution tracing: a timeline of grid launches, block
    dispatches, and grid completions, with launch-queue wait times made
    explicit. Every event carries the owning tenant/stream id, and grid
    ids are only unique {e per tenant} (streams have independent grid-id
    namespaces), so all grouping keys on the (tenant, grid) pair. Enable
    with {!Device.enable_trace}; render with {!timeline}. *)

type grid_info = {
  t_tenant : int;  (** Owning stream id; 0 for the default stream. *)
  t_grid_id : int;
  t_kernel : string;
  t_blocks : int;
  t_from_host : bool;
  t_issue : float;  (** When the launch was issued. *)
  t_ready : float;  (** When the grid became schedulable. *)
}

type event =
  | Grid_launched of grid_info
  | Block_dispatched of {
      b_tenant : int;
      b_grid_id : int;
      b_sm : int;
      b_start : float;
      b_finish : float;
    }
  | Grid_completed of { c_tenant : int; c_grid_id : int; c_finish : float }

type t = { mutable events : event list; mutable enabled : bool }

let create () = { events = []; enabled = false }
let enable t = t.enabled <- true
let record t ev = if t.enabled then t.events <- ev :: t.events
let events t = List.rev t.events
let clear t = t.events <- []

(* per-grid summary: (info, first block start, last finish, block count) *)
type grid_summary = {
  g_info : grid_info;
  g_first_start : float;
  g_finish : float;
      (** Last block/completion finish; [t_ready] for a grid none of whose
          blocks were dispatched within the traced window (never a time
          before the grid was even issued). *)
  g_blocks_seen : int;
  g_sms_used : int;
}

(** [summarize evs] folds a timeline into per-grid summaries — sorted by
    (tenant, grid id), so each tenant's grids form one contiguous,
    per-stream timeline rather than being merged into a single sequence —
    plus the {e orphan} events: [Block_dispatched] / [Grid_completed]
    whose (tenant, grid id) has no [Grid_launched] record in [evs], in
    their original order. Orphans arise when tracing is enabled mid-run;
    dropping them silently would understate the work done, so callers
    decide what to do with them ({!timeline} reports a count). *)
let summarize (evs : event list) : grid_summary list * event list =
  let tbl = Hashtbl.create 16 in
  let orphans = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Grid_launched info ->
          Hashtbl.replace tbl
            (info.t_tenant, info.t_grid_id)
            (info, infinity, None, 0, [])
      | Block_dispatched b -> (
          match Hashtbl.find_opt tbl (b.b_tenant, b.b_grid_id) with
          | Some (info, first, fin, n, sms) ->
              Hashtbl.replace tbl
                (b.b_tenant, b.b_grid_id)
                ( info,
                  Float.min first b.b_start,
                  Some
                    (match fin with
                    | None -> b.b_finish
                    | Some f -> Float.max f b.b_finish),
                  n + 1,
                  b.b_sm :: sms )
          | None -> orphans := ev :: !orphans)
      | Grid_completed c -> (
          match Hashtbl.find_opt tbl (c.c_tenant, c.c_grid_id) with
          | Some (info, first, fin, n, sms) ->
              Hashtbl.replace tbl
                (c.c_tenant, c.c_grid_id)
                ( info,
                  first,
                  Some
                    (match fin with
                    | None -> c.c_finish
                    | Some f -> Float.max f c.c_finish),
                  n,
                  sms )
          | None -> orphans := ev :: !orphans))
    evs;
  let summaries =
    Hashtbl.fold
      (fun _ (info, first, fin, n, sms) acc ->
        {
          g_info = info;
          g_first_start = first;
          (* a grid with no dispatched blocks finished, at the earliest,
             when it became schedulable — not at time 0.0 *)
          g_finish = Option.value fin ~default:info.t_ready;
          g_blocks_seen = n;
          g_sms_used = List.length (List.sort_uniq compare sms);
        }
        :: acc)
      tbl []
    |> List.sort (fun a b ->
           compare
             (a.g_info.t_tenant, a.g_info.t_grid_id)
             (b.g_info.t_tenant, b.g_info.t_grid_id))
  in
  (summaries, List.rev !orphans)

(** Tenant ids present in a summary list, ascending. *)
let tenants_of (gs : grid_summary list) =
  List.sort_uniq compare (List.map (fun g -> g.g_info.t_tenant) gs)

(* device-launch queue waits of one tenant's grids: the congestion signal *)
let device_waits (gs : grid_summary list) tenant =
  List.filter_map
    (fun g ->
      if g.g_info.t_tenant <> tenant || g.g_info.t_from_host then None
      else Some (g.g_info.t_ready -. g.g_info.t_issue))
    gs

let pp_waits ppf label = function
  | [] -> ()
  | ws ->
      let n = float_of_int (List.length ws) in
      Fmt.pf ppf "%s: %d, queue wait avg %.0f / max %.0f cycles@." label
        (List.length ws)
        (List.fold_left ( +. ) 0.0 ws /. n)
        (List.fold_left Float.max 0.0 ws)

(** Render a per-grid timeline: tenant, issue time, queue wait, execution
    span, blocks, SM footprint. Queue-wait statistics are reported
    per tenant when more than one stream appears, then device-wide. *)
let timeline ppf (evs : event list) =
  let gs, orphans = summarize evs in
  Fmt.pf ppf "%3s %5s %-22s %5s %10s %9s %10s %10s %7s %4s@." "ten" "grid"
    "kernel" "src" "issue" "q-wait" "start" "finish" "blocks" "SMs";
  List.iter
    (fun g ->
      Fmt.pf ppf "%3d %5d %-22s %5s %10.0f %9.0f %10.0f %10.0f %7d %4d@."
        g.g_info.t_tenant g.g_info.t_grid_id g.g_info.t_kernel
        (if g.g_info.t_from_host then "host" else "dev")
        g.g_info.t_issue
        (g.g_info.t_ready -. g.g_info.t_issue)
        (if g.g_first_start = infinity then g.g_info.t_ready
         else g.g_first_start)
        g.g_finish g.g_blocks_seen g.g_sms_used)
    gs;
  let tenants = tenants_of gs in
  if List.length tenants > 1 then
    List.iter
      (fun ten ->
        pp_waits ppf
          (Fmt.str "tenant %d device launches" ten)
          (device_waits gs ten))
      tenants;
  pp_waits ppf "device launches"
    (List.concat_map (device_waits gs) tenants);
  if orphans <> [] then
    Fmt.pf ppf
      "warning: %d orphan events (grid launched before tracing was \
       enabled)@."
      (List.length orphans)
