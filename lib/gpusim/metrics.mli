(** Execution metrics collected by the simulator, including the per-category
    compute-time attribution behind the paper's Fig. 10 breakdown.

    Plain mutable records, not thread-safe: each {!Device.t} owns one and
    mutates it from the domain driving the device (see the domain-safety
    note in {!Device}). *)

(** {1 Tag indices} (dense encoding of {!Minicu.Ast.tag}) *)

val tag_default : int
val tag_parent : int
val tag_child : int
val tag_agg : int
val tag_disagg : int
val num_tags : int
val index_of_tag : Minicu.Ast.tag -> int

type breakdown = {
  mutable parent_cycles : float;
  mutable child_cycles : float;
  mutable agg_cycles : float;
  mutable disagg_cycles : float;
  mutable launch_cycles : float;
      (** Launch-subsystem time: queueing plus service plus latency summed
          over every grid launch. *)
}

(** Accounting for stratified grid/launch sampling ({!Sched}): how much was
    skipped-and-extrapolated, and the accumulated stratified variance behind
    {!rel_std_error}. All zero on exact runs. *)
type sampling_stats = {
  mutable sampled_grids : int;
  mutable sampled_blocks : int;  (** Blocks simulated on sampled grids. *)
  mutable skipped_blocks : int;  (** Blocks represented only by weights. *)
  mutable sampled_launches : int;
  mutable skipped_launches : int;
  mutable est_total : float;  (** Extrapolated compute total estimated. *)
  mutable est_variance : float;  (** Stratified variance of that total. *)
}

type t = {
  breakdown : breakdown;
  sampling : sampling_stats;
  mutable makespan : float;
  mutable grids_launched : int;
  mutable device_launches : int;
  mutable host_launches : int;
  mutable blocks_executed : int;
  mutable threads_executed : int;
  mutable max_pending_launches : int;
  mutable serialized_launches : int;
      (** Child grids serialized in their parent thread by thresholding. *)
  mutable races_detected : int;
      (** Intra-block data-race conflicts found by {!Racecheck}; always 0
          unless [Config.check] is set. *)
  mutable oob_detected : int;
      (** Out-of-bounds accesses observed under [Config.check]. *)
  mutable race_reports : string list;
      (** Rendered race reports, deduplicated per address and capped. *)
}

val create : unit -> t

(** [charge m idx cycles] adds parallelism-scaled compute cycles to category
    [idx]. @raise Invalid_argument on [tag_default] (resolve it first). *)
val charge : t -> int -> float -> unit

val total_compute : t -> float

(** [merge ~into ~weight from] folds block-level metrics accumulated in a
    private record into the device's shared one, scaled by the block's
    sampling weight. At [weight = 1.0] the result is bit-identical to
    having executed the block directly against [into] — the identity that
    makes parallel batch commit byte-identical to serial execution. *)
val merge : into:t -> weight:float -> t -> unit

(** Whether any sampling (block or launch) actually triggered. *)
val sampled : t -> bool

(** Relative standard error of the extrapolated compute total
    ([sqrt(Var)/total]; [0.0] on exact runs). *)
val rel_std_error : t -> float

val pp : Format.formatter -> t -> unit
