(** Execution metrics collected by the simulator, including the per-category
    compute-time attribution behind the paper's Fig. 10 breakdown.

    Plain mutable records, not thread-safe: each {!Device.t} owns one and
    mutates it from the domain driving the device (see the domain-safety
    note in {!Device}). *)

(** {1 Tag indices} (dense encoding of {!Minicu.Ast.tag}) *)

val tag_default : int
val tag_parent : int
val tag_child : int
val tag_agg : int
val tag_disagg : int
val num_tags : int
val index_of_tag : Minicu.Ast.tag -> int

type breakdown = {
  mutable parent_cycles : float;
  mutable child_cycles : float;
  mutable agg_cycles : float;
  mutable disagg_cycles : float;
  mutable launch_cycles : float;
      (** Launch-subsystem time: queueing plus service plus latency summed
          over every grid launch. *)
}

type t = {
  breakdown : breakdown;
  mutable makespan : float;
  mutable grids_launched : int;
  mutable device_launches : int;
  mutable host_launches : int;
  mutable blocks_executed : int;
  mutable threads_executed : int;
  mutable max_pending_launches : int;
  mutable serialized_launches : int;
      (** Child grids serialized in their parent thread by thresholding. *)
  mutable races_detected : int;
      (** Intra-block data-race conflicts found by {!Racecheck}; always 0
          unless [Config.check] is set. *)
  mutable oob_detected : int;
      (** Out-of-bounds accesses observed under [Config.check]. *)
  mutable race_reports : string list;
      (** Rendered race reports, deduplicated per address and capped. *)
}

val create : unit -> t

(** [charge m idx cycles] adds parallelism-scaled compute cycles to category
    [idx]. @raise Invalid_argument on [tag_default] (resolve it first). *)
val charge : t -> int -> float -> unit

val total_compute : t -> float
val pp : Format.formatter -> t -> unit
