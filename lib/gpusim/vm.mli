(** Register VM for the bytecode engine ({!Bytecode}).

    Executes lowered MiniCU over unboxed per-thread register banks; threads
    are explicit state machines rather than fibers, and per-block thread
    records live in a reusable {!scratch} arena owned by the scheduler.
    Block-level semantics (warp-by-warp advance, barrier epochs, warp
    collectives, {!Racecheck} hooks, cost aggregation) mirror {!Exec}
    exactly; the cross-engine differential suite pins both engines
    bit-for-bit. *)

(** Reusable per-scheduler arena of thread records (register banks, call
    stacks, cost counters). One scratch must only be used by one block
    execution at a time. *)
type scratch

val create_scratch : unit -> scratch

(** Execute one block under the bytecode engine; same contract (arguments,
    errors, result, metrics side effects) as {!Exec.run_block}. *)
val run_block :
  scratch ->
  Bytecode.prog ->
  Bytecode.func ->
  args:Value.t list ->
  gdim:int * int * int ->
  bdim:int * int * int ->
  bidx:int * int * int ->
  mem:Memory.t ->
  cfg:Config.t ->
  metrics:Metrics.t ->
  default_idx:int ->
  Exec.result

(** Execute a host followup starting at code index [entry] (the kernel's
    [bf_followup]); same contract as {!Exec.run_host_stmts}. *)
val run_host_stmts :
  Bytecode.prog ->
  Bytecode.func ->
  entry:int ->
  args:Value.t list ->
  grid:int * int * int ->
  block:int * int * int ->
  mem:Memory.t ->
  cfg:Config.t ->
  metrics:Metrics.t ->
  Compile.launch_req list
