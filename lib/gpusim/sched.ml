(** Discrete-event grid/block scheduler.

    The device model:

    - a fixed pool of SMs; each SM serves one block at a time with
      {!Config.sm_warp_parallelism} warp-instructions per cycle (blocks queue
      on the earliest-free SM, approximating the FIFO hardware block
      scheduler);
    - a single grid-management unit: every device-side launch must be
      serviced by it, one launch per {!Config.launch_service_interval}
      cycles. When thousands of small grids are launched at once they queue
      here — this is the launch congestion the paper identifies as the first
      cost of naive dynamic parallelism;
    - host-side launches pay {!Config.host_launch_latency} but do not
      contend with the device launch queue.

    {b Multi-tenancy.} The device hosts any number of {e streams}. Each
    stream has its own loaded program, its own grid-id namespace, and its
    own {!Metrics.t}; all streams share the SMs, the grid-management launch
    queue, device memory and the clock — contention between tenants is the
    point of the model (see {e lib/tenancy}). A device always has a
    {e default stream} (id 0) whose metrics record is the device-wide one,
    so the classic single-program API ({!Device}) is exactly the one-stream
    special case, bit-identical to the pre-tenancy scheduler.

    Block side effects on memory happen when the block is dispatched, in
    deterministic event order, so programs whose cross-block communication
    is commutative (atomics) behave as on real hardware. *)

type dim3 = int * int * int

(** A loaded program / resolved kernel, under either execution engine
    ({!Config.engine}). The two engines are observationally identical;
    the scheduler only needs name/arity/followup access, routed through
    the accessors below. *)
type prog = P_closure of Compile.cprog | P_bytecode of Bytecode.prog

type kernel = K_closure of Compile.cfunc | K_bytecode of Bytecode.func

let kernel_name = function
  | K_closure cf -> cf.Compile.cf_name
  | K_bytecode bf -> bf.Bytecode.bf_name

let kernel_nparams = function
  | K_closure cf -> cf.Compile.cf_nparams
  | K_bytecode bf -> bf.Bytecode.bf_nparams

(** One host stream / tenant sharing the device. Grid ids are dense per
    stream (a per-stream namespace), and every launch, block and compute
    cycle of the stream's grids is charged to [st_metrics]. *)
type stream = {
  st_id : int;  (** Tenant id; 0 is the device's default stream. *)
  mutable st_prog : prog option;
  st_metrics : Metrics.t;
  mutable st_next_grid_id : int;
}

(** A unit of tenant work: one root grid plus every descendant grid it
    spawns (device-side children, host followups from aggregation).
    [j_open_grids] counts launched-but-unfinished grids; the job is
    complete when it returns to 0, at which point [j_finish] holds the
    last finish time over all its grids. Maintained by {!launch_grid} /
    {!step}; consumed by the tenancy scheduler ({e lib/tenancy}). *)
type job = {
  j_id : int;
  j_tenant : int;
  mutable j_open_grids : int;
  mutable j_finish : float;
}

let make_job ~tenant ~id =
  { j_id = id; j_tenant = tenant; j_open_grids = 0; j_finish = 0.0 }

type grid = {
  g_id : int;
  g_stream : stream;
  g_job : job option;
  g_kernel : kernel;
  g_grid : dim3;
  g_block : dim3;
  g_args : Value.t list;
  g_default_idx : int;
  mutable g_blocks_left : int;
  mutable g_last_finish : float;
}

type event = Block_ready of grid * dim3

type t = {
  cfg : Config.t;
  mem : Memory.t;
  metrics : Metrics.t;  (** Device-wide; same record as the default stream's. *)
  events : event Event_queue.t;
  sms : float array;  (** Per-SM earliest-free time. *)
  mutable launch_q_free : float;  (** Grid-management unit earliest-free. *)
  mutable clock : float;
  default_stream : stream;
  mutable next_stream_id : int;
  trace : Trace.t;
  scratch : Vm.scratch;
      (** Reusable per-block thread arena for the bytecode engine. *)
}

let create (cfg : Config.t) (mem : Memory.t) (metrics : Metrics.t) =
  {
    cfg;
    mem;
    metrics;
    events = Event_queue.create ();
    sms = Array.make cfg.num_sms 0.0;
    launch_q_free = 0.0;
    clock = 0.0;
    default_stream =
      { st_id = 0; st_prog = None; st_metrics = metrics; st_next_grid_id = 0 };
    next_stream_id = 1;
    trace = Trace.create ();
    scratch = Vm.create_scratch ();
  }

let default_stream t = t.default_stream

let new_stream t =
  let s =
    {
      st_id = t.next_stream_id;
      st_prog = None;
      st_metrics = Metrics.create ();
      st_next_grid_id = 0;
    }
  in
  t.next_stream_id <- t.next_stream_id + 1;
  s

let load_stream t (s : stream) (prog : Minicu.Ast.program) =
  s.st_prog <-
    Some
      (match t.cfg.engine with
      | Config.Closure -> P_closure (Compile.compile t.cfg prog)
      | Config.Bytecode -> P_bytecode (Bytecode.compile t.cfg prog))

let stream_prog_exn (s : stream) =
  match s.st_prog with
  | Some p -> p
  | None ->
      if s.st_id = 0 then Value.error "no program loaded on the device"
      else Value.error "no program loaded on stream %d" s.st_id

(** Enqueue all blocks of a grid, schedulable from [ready]. [issue] is when
    the launch was issued (for tracing queue waits); defaults to [ready].
    The grid id comes out of [stream]'s namespace; with [?job] the grid is
    attached to that job's open-grid accounting. *)
let launch_grid ?issue ?(from_host = false) ?job t (stream : stream)
    ~(kernel : kernel) ~(grid : dim3) ~(block : dim3) ~(args : Value.t list)
    ~(ready : float) ~(default_idx : int) =
  let gx, gy, gz = grid in
  let nblocks = gx * gy * gz in
  if nblocks <= 0 then
    Value.error "launch of %S with empty grid" (kernel_name kernel);
  if Value.dim3_total block > t.cfg.max_threads_per_block then
    Value.error "launch of %S with %d threads per block (max %d)"
      (kernel_name kernel) (Value.dim3_total block)
      t.cfg.max_threads_per_block;
  let g =
    {
      g_id = stream.st_next_grid_id;
      g_stream = stream;
      g_job = job;
      g_kernel = kernel;
      g_grid = grid;
      g_block = block;
      g_args = args;
      g_default_idx = default_idx;
      g_blocks_left = nblocks;
      g_last_finish = ready;
    }
  in
  stream.st_next_grid_id <- stream.st_next_grid_id + 1;
  (match job with Some j -> j.j_open_grids <- j.j_open_grids + 1 | None -> ());
  stream.st_metrics.grids_launched <- stream.st_metrics.grids_launched + 1;
  Trace.record t.trace
    (Trace.Grid_launched
       {
         t_tenant = stream.st_id;
         t_grid_id = g.g_id;
         t_kernel = kernel_name kernel;
         t_blocks = nblocks;
         t_from_host = from_host;
         t_issue = Option.value issue ~default:ready;
         t_ready = ready;
       });
  for bz = 0 to gz - 1 do
    for by = 0 to gy - 1 do
      for bx = 0 to gx - 1 do
        Event_queue.push t.events ready (Block_ready (g, (bx, by, bz)))
      done
    done
  done

(** Route a device-side launch through the grid-management unit. Returns the
    time at which the child grid becomes schedulable. The queue is shared
    device-wide; the wait is charged to the issuing [stream]'s metrics, so
    under tenancy each tenant sees the congestion {e it experienced}
    (including the part caused by other tenants' launches ahead of it). *)
let process_device_launch t (stream : stream) ~issue =
  let cfg = t.cfg in
  let m = stream.st_metrics in
  let start = Float.max issue t.launch_q_free in
  t.launch_q_free <- start +. float_of_int cfg.launch_service_interval;
  let ready = t.launch_q_free +. float_of_int cfg.device_launch_latency in
  m.device_launches <- m.device_launches + 1;
  m.breakdown.launch_cycles <- m.breakdown.launch_cycles +. (ready -. issue);
  (* Queue depth seen by this launch: launches ahead of it, i.e. the time
     it waited for service in units of the service interval. [start] (not
     the post-service [launch_q_free]) is the right numerator — using the
     latter would count the launch just serviced as pending ahead of
     itself, overstating the congestion metric by one. *)
  let pending =
    if cfg.launch_service_interval <= 0 then 0
    else
      int_of_float
        ((start -. issue) /. float_of_int cfg.launch_service_interval)
  in
  if pending > m.max_pending_launches then m.max_pending_launches <- pending;
  ready

let process_host_launch t (stream : stream) ~issue =
  let m = stream.st_metrics in
  let ready = issue +. float_of_int t.cfg.host_launch_latency in
  m.host_launches <- m.host_launches + 1;
  m.breakdown.launch_cycles <- m.breakdown.launch_cycles +. (ready -. issue);
  ready

let resolve_kernel (stream : stream) name =
  match stream_prog_exn stream with
  | P_closure cp ->
      let cf = Compile.find_func_exn cp name in
      if cf.Compile.cf_kind <> Minicu.Ast.Global then
        Value.error "%S is not a __global__ kernel" name;
      K_closure cf
  | P_bytecode bp ->
      let bf = Bytecode.find_func_exn bp name in
      if bf.Bytecode.bf_kind <> Minicu.Ast.Global then
        Value.error "%S is not a __global__ kernel" name;
      K_bytecode bf

let dispatch_launch_req t (stream : stream) ?job ~(base : float)
    (lr : Compile.launch_req) =
  let kernel = resolve_kernel stream lr.lr_kernel in
  let ready =
    if lr.lr_from_host then process_host_launch t stream ~issue:base
    else process_device_launch t stream ~issue:base
  in
  launch_grid t stream ?job ~issue:base ~from_host:lr.lr_from_host ~kernel
    ~grid:lr.lr_grid ~block:lr.lr_block ~args:lr.lr_args ~ready
    ~default_idx:Metrics.tag_child

let grid_completed t (g : grid) =
  (* Grid-granularity aggregation: the host performs the aggregated
     launch once the parent grid has drained (Section V-A). *)
  let stream = g.g_stream in
  let launches =
    match g.g_kernel with
    | K_closure cf -> (
        match cf.Compile.cf_followup with
        | None -> []
        | Some followup ->
            Exec.run_host_stmts cf followup ~args:g.g_args ~grid:g.g_grid
              ~block:g.g_block ~mem:t.mem ~cfg:t.cfg
              ~metrics:stream.st_metrics)
    | K_bytecode bf -> (
        match bf.Bytecode.bf_followup with
        | None -> []
        | Some entry ->
            let bp =
              match stream_prog_exn stream with
              | P_bytecode bp -> bp
              | P_closure _ -> assert false
            in
            Vm.run_host_stmts bp bf ~entry ~args:g.g_args ~grid:g.g_grid
              ~block:g.g_block ~mem:t.mem ~cfg:t.cfg
              ~metrics:stream.st_metrics)
  in
  List.iter
    (fun (lr : Compile.launch_req) ->
      dispatch_launch_req t stream ?job:g.g_job ~base:g.g_last_finish
        { lr with lr_from_host = true })
    launches

let step t =
  let te, Block_ready (g, bidx) = Event_queue.pop t.events in
  let stream = g.g_stream in
  (* earliest-free SM *)
  let sm = ref 0 in
  for i = 1 to Array.length t.sms - 1 do
    if t.sms.(i) < t.sms.(!sm) then sm := i
  done;
  let start = Float.max te t.sms.(!sm) in
  let r =
    match (stream_prog_exn stream, g.g_kernel) with
    | P_closure cp, K_closure cf ->
        Exec.run_block cp cf ~args:g.g_args ~gdim:g.g_grid ~bdim:g.g_block
          ~bidx ~mem:t.mem ~cfg:t.cfg ~metrics:stream.st_metrics
          ~default_idx:g.g_default_idx
    | P_bytecode bp, K_bytecode bf ->
        Vm.run_block t.scratch bp bf ~args:g.g_args ~gdim:g.g_grid
          ~bdim:g.g_block ~bidx ~mem:t.mem ~cfg:t.cfg
          ~metrics:stream.st_metrics ~default_idx:g.g_default_idx
    | (P_closure _ | P_bytecode _), _ -> assert false
  in
  let sched = float_of_int t.cfg.block_sched_overhead in
  let finish = start +. sched +. r.r_compute_cycles in
  t.sms.(!sm) <- finish;
  if finish > t.clock then t.clock <- finish;
  Trace.record t.trace
    (Trace.Block_dispatched
       {
         b_tenant = stream.st_id;
         b_grid_id = g.g_id;
         b_sm = !sm;
         b_start = start;
         b_finish = finish;
       });
  let par = float_of_int t.cfg.sm_warp_parallelism in
  List.iter
    (fun (lr : Compile.launch_req) ->
      let offset = Float.min (lr.lr_issue_cost /. par) r.r_compute_cycles in
      dispatch_launch_req t stream ?job:g.g_job ~base:(start +. sched +. offset)
        lr)
    r.r_launches;
  g.g_blocks_left <- g.g_blocks_left - 1;
  if finish > g.g_last_finish then g.g_last_finish <- finish;
  if g.g_blocks_left = 0 then begin
    Trace.record t.trace
      (Trace.Grid_completed
         {
           c_tenant = stream.st_id;
           c_grid_id = g.g_id;
           c_finish = g.g_last_finish;
         });
    (* followups launch before the job's open count drops, so a job with a
       pending host followup never looks momentarily complete *)
    grid_completed t g;
    match g.g_job with
    | Some j ->
        j.j_open_grids <- j.j_open_grids - 1;
        if g.g_last_finish > j.j_finish then j.j_finish <- g.g_last_finish
    | None -> ()
  end

(** Earliest pending block-event time, for external event loops
    ({e lib/tenancy}) that interleave host-side decisions with device
    progress. *)
let next_event_time t = Event_queue.peek_time t.events

let has_pending_events t = not (Event_queue.is_empty t.events)

(** Drain all pending work; returns the simulated clock. *)
let run_to_idle t =
  while not (Event_queue.is_empty t.events) do
    step t
  done;
  t.metrics.makespan <- t.clock;
  t.clock
