(** Discrete-event grid/block scheduler.

    The device model:

    - a fixed pool of SMs; each SM serves one block at a time with
      {!Config.sm_warp_parallelism} warp-instructions per cycle (blocks queue
      on the earliest-free SM, approximating the FIFO hardware block
      scheduler);
    - a single grid-management unit: every device-side launch must be
      serviced by it, one launch per {!Config.launch_service_interval}
      cycles. When thousands of small grids are launched at once they queue
      here — this is the launch congestion the paper identifies as the first
      cost of naive dynamic parallelism;
    - host-side launches pay {!Config.host_launch_latency} but do not
      contend with the device launch queue.

    {b Multi-tenancy.} The device hosts any number of {e streams}. Each
    stream has its own loaded program, its own grid-id namespace, and its
    own {!Metrics.t}; all streams share the SMs, the grid-management launch
    queue, device memory and the clock — contention between tenants is the
    point of the model (see {e lib/tenancy}). A device always has a
    {e default stream} (id 0) whose metrics record is the device-wide one,
    so the classic single-program API ({!Device}) is exactly the one-stream
    special case, bit-identical to the pre-tenancy scheduler.

    Block side effects on memory happen when the block is {e committed}, in
    deterministic event order, so programs whose cross-block communication
    is commutative (atomics) behave as on real hardware.

    {b Parallel block dispatch} ([Config.block_jobs] > 1). Block processing
    is split into a pure {e execute} phase (run the block's threads against
    memory, accumulating into a private {!Metrics.t}) and a {e commit}
    phase (SM assignment, timing, trace, metrics merge, launch dispatch,
    grid completion). {!run_to_idle} pops a maximal prefix of ready events
    whose kernels {!Blocksafe} proved free of cross-block conflicts — and
    whose concrete buffer arguments pass a cheap pairwise-disjointness
    check — executes them concurrently on worker domains, then commits the
    results one by one in pop order. Because the execute phases commute on
    memory (proved) and commits replay the exact serial accumulation order,
    dumps and metrics are byte-identical at any [block_jobs]. Kernels the
    analysis cannot prove safe simply run serially, as do all blocks under
    [Config.check]. Provably-safe kernels never launch (the analysis
    rejects launches), so a batch never feeds events back into the queue.

    {b Stratified grid sampling} ([Config.sampling]). Grids with at least
    [block_threshold] blocks enqueue only a deterministic stratified sample
    of their blocks: the flat block range splits into contiguous strata and
    each stratum contributes a systematic sample (hashed phase, so the
    sample is a pure function of the seed and grid identity — identical at
    any [block_jobs] and across engines). Every sampled block carries the
    weight [N_h/k_h] of the stratum it represents; commits scale metrics by
    the weight, advance the launch queue by the weighted service time, and
    fold the skipped compute into the clock at the next drain. Blocks that
    issue at least [launch_threshold] device launches likewise dispatch a
    systematic sample with multiplicative inherited weights — the case that
    matters for CDP child swarms. Per-stratum sums and sum-of-squares
    accumulate into {!Metrics.sampling_stats} at grid completion, giving
    the stratified-variance error bound reported with extrapolated
    results. *)

type dim3 = int * int * int

(** A loaded program / resolved kernel, under either execution engine
    ({!Config.engine}). The two engines are observationally identical;
    the scheduler only needs name/arity/followup access, routed through
    the accessors below. *)
type prog = P_closure of Compile.cprog | P_bytecode of Bytecode.prog

type kernel = K_closure of Compile.cfunc | K_bytecode of Bytecode.func

let kernel_name = function
  | K_closure cf -> cf.Compile.cf_name
  | K_bytecode bf -> bf.Bytecode.bf_name

let kernel_nparams = function
  | K_closure cf -> cf.Compile.cf_nparams
  | K_bytecode bf -> bf.Bytecode.bf_nparams

let kernel_safety = function
  | K_closure cf -> cf.Compile.cf_safety
  | K_bytecode bf -> bf.Bytecode.bf_safety

let kernel_static_work = function
  | K_closure cf -> cf.Compile.cf_static_work
  | K_bytecode bf -> bf.Bytecode.bf_static_work

(** One host stream / tenant sharing the device. Grid ids are dense per
    stream (a per-stream namespace), and every launch, block and compute
    cycle of the stream's grids is charged to [st_metrics]. *)
type stream = {
  st_id : int;  (** Tenant id; 0 is the device's default stream. *)
  mutable st_prog : prog option;
  st_metrics : Metrics.t;
  mutable st_next_grid_id : int;
}

(** A unit of tenant work: one root grid plus every descendant grid it
    spawns (device-side children, host followups from aggregation).
    [j_open_grids] counts launched-but-unfinished grids; the job is
    complete when it returns to 0, at which point [j_finish] holds the
    last finish time over all its grids. Maintained by {!launch_grid} /
    {!step}; consumed by the tenancy scheduler ({e lib/tenancy}). *)
type job = {
  j_id : int;
  j_tenant : int;
  mutable j_open_grids : int;
  mutable j_finish : float;
}

let make_job ~tenant ~id =
  { j_id = id; j_tenant = tenant; j_open_grids = 0; j_finish = 0.0 }

(* Per-stratum accounting of a sampled grid: committed blocks, sum and
   sum-of-squares of their compute cycles. Folded into the stream's
   Metrics.sampling_stats at grid completion. *)
type strata = {
  sa_counts : int array;  (* N_h: total blocks per stratum *)
  sa_n : int array;  (* blocks committed so far per stratum *)
  sa_sum : float array;
  sa_sumsq : float array;
}

type grid = {
  g_id : int;
  g_stream : stream;
  g_job : job option;
  g_kernel : kernel;
  g_grid : dim3;
  g_block : dim3;
  g_args : Value.t list;
  g_default_idx : int;
  g_weight : float;
      (** Inherited launch-sampling weight: this grid stands for
          [g_weight] identical grids. [1.0] on exact runs. *)
  g_strata : strata option;  (** [Some] exactly when block-sampled. *)
  mutable g_blocks_left : int;  (** Enqueued (sampled) blocks left. *)
  mutable g_last_finish : float;
}

(** A ready block: grid, block index, block-sampling weight (within-grid;
    the effective weight is [g_weight *. w]), and stratum index ([-1] when
    the grid is not block-sampled). *)
type event = Block_ready of grid * dim3 * float * int

type t = {
  cfg : Config.t;
  mem : Memory.t;
  metrics : Metrics.t;  (** Device-wide; same record as the default stream's. *)
  events : event Event_queue.t;
  sms : float array;  (** Per-SM earliest-free time. *)
  mutable launch_q_free : float;  (** Grid-management unit earliest-free. *)
  mutable clock : float;
  mutable deferred_work : float;
      (** SM-cycles represented by sampled-out blocks; folded into the
          clock (divided across SMs) at the next {!run_to_idle} drain. *)
  default_stream : stream;
  mutable next_stream_id : int;
  trace : Trace.t;
  scratch : Vm.scratch;
      (** Reusable per-block thread arena for the bytecode engine (serial
          path). *)
  mutable scratches : Vm.scratch array;
      (** Per-worker arenas for parallel batches; sized on first use. *)
  mutable par_batches : int;
      (** Batches of >= 2 blocks dispatched concurrently on worker
          domains. Host-side accounting only (never folded into
          {!Metrics.t}), so enabling parallel dispatch cannot perturb
          simulated results. *)
  mutable par_batch_blocks : int;  (** Blocks executed in those batches. *)
}

let create (cfg : Config.t) (mem : Memory.t) (metrics : Metrics.t) =
  {
    cfg;
    mem;
    metrics;
    events = Event_queue.create ();
    sms = Array.make cfg.num_sms 0.0;
    launch_q_free = 0.0;
    clock = 0.0;
    deferred_work = 0.0;
    default_stream =
      { st_id = 0; st_prog = None; st_metrics = metrics; st_next_grid_id = 0 };
    next_stream_id = 1;
    trace = Trace.create ();
    scratch = Vm.create_scratch ();
    scratches = [||];
    par_batches = 0;
    par_batch_blocks = 0;
  }

let default_stream t = t.default_stream

let new_stream t =
  let s =
    {
      st_id = t.next_stream_id;
      st_prog = None;
      st_metrics = Metrics.create ();
      st_next_grid_id = 0;
    }
  in
  t.next_stream_id <- t.next_stream_id + 1;
  s

let load_stream t (s : stream) (prog : Minicu.Ast.program) =
  s.st_prog <-
    Some
      (match t.cfg.engine with
      | Config.Closure -> P_closure (Compile.compile t.cfg prog)
      | Config.Bytecode -> P_bytecode (Bytecode.compile t.cfg prog))

let stream_prog_exn (s : stream) =
  match s.st_prog with
  | Some p -> p
  | None ->
      if s.st_id = 0 then Value.error "no program loaded on the device"
      else Value.error "no program loaded on stream %d" s.st_id

(* ------------------------------------------------------------------ *)
(* Deterministic sample selection                                      *)
(* ------------------------------------------------------------------ *)

(* A small xorshift-multiply mixer over OCaml's 63-bit ints (constants kept
   under 2^62). Quality only needs to decorrelate sample phases across
   grids and strata; determinism across runs, engines and [block_jobs] is
   the real requirement. *)
let mix h =
  let h = (h lxor (h lsr 33)) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 29)) * 0x3C79AC492BA7B653 in
  (h lxor (h lsr 31)) land max_int

(* Uniform in [0, 1) from the low 24 bits. *)
let phase01 h = float_of_int (h land 0xFFFFFF) /. 16777216.0

let sample_key (sp : Config.sampling) ~stream_id ~gid ~salt =
  mix ((((sp.seed * 31) + stream_id) * 31) + (gid * 31) + salt)

(* Round a sampling fraction to a per-stratum take count in [1, n]. *)
let take_count frac n =
  let k = int_of_float (Float.round (frac *. float_of_int n)) in
  max 1 (min n k)

(* Systematic sample of [k] of [n] positions with a deterministic hashed
   phase: floor(phase + j*step), step = n/k, phase in [0, step). Indices
   are strictly increasing and < n. *)
let systematic ~key ~n ~k =
  let stepf = float_of_int n /. float_of_int k in
  let phase = phase01 key *. stepf in
  Array.init k (fun j -> int_of_float (phase +. (float_of_int j *. stepf)))

(* Stratified block selection for a grid of [nblocks] blocks: flat indices
   (ascending) with per-block weight and stratum index, plus the stratum
   population counts. Returns [None] when the sample covers every block —
   the caller then treats the grid as unsampled (bit-identical metrics). *)
let select_blocks (sp : Config.sampling) ~stream_id ~gid ~nblocks =
  let nh = max 1 (min sp.strata nblocks) in
  let counts =
    Array.init nh (fun h -> ((h + 1) * nblocks / nh) - (h * nblocks / nh))
  in
  let sel = ref [] in
  let total = ref 0 in
  for h = nh - 1 downto 0 do
    let lo = h * nblocks / nh in
    let n_h = counts.(h) in
    if n_h > 0 then begin
      let k = take_count sp.block_frac n_h in
      if k >= n_h then begin
        for i = lo + n_h - 1 downto lo do
          sel := (i, 1.0, h) :: !sel
        done;
        total := !total + n_h
      end
      else begin
        let key = sample_key sp ~stream_id ~gid ~salt:h in
        let idx = systematic ~key ~n:n_h ~k in
        let w = float_of_int n_h /. float_of_int k in
        for j = k - 1 downto 0 do
          sel := (lo + idx.(j), w, h) :: !sel
        done;
        total := !total + k
      end
    end
  done;
  if !total >= nblocks then None else Some (counts, !sel)

(** Enqueue the blocks of a grid, schedulable from [ready]. [issue] is when
    the launch was issued (for tracing queue waits); defaults to [ready].
    The grid id comes out of [stream]'s namespace; with [?job] the grid is
    attached to that job's open-grid accounting. [weight] is the
    launch-sampling weight this grid inherits (1 on exact paths). Under
    [Config.sampling], grids with enough blocks (and enough statically
    estimated work, {!Blocksafe.static_work}) enqueue only a stratified
    sample of their blocks. *)
let launch_grid ?issue ?(from_host = false) ?job ?(weight = 1.0) t
    (stream : stream) ~(kernel : kernel) ~(grid : dim3) ~(block : dim3)
    ~(args : Value.t list) ~(ready : float) ~(default_idx : int) =
  let gx, gy, gz = grid in
  let nblocks = gx * gy * gz in
  if nblocks <= 0 then
    Value.error "launch of %S with empty grid" (kernel_name kernel);
  if Value.dim3_total block > t.cfg.max_threads_per_block then
    Value.error "launch of %S with %d threads per block (max %d)"
      (kernel_name kernel) (Value.dim3_total block)
      t.cfg.max_threads_per_block;
  let gid = stream.st_next_grid_id in
  let selection =
    match t.cfg.sampling with
    | Some sp
      when sp.block_threshold > 0
           && nblocks >= sp.block_threshold
           && sp.block_frac < 1.0
           && kernel_static_work kernel >= sp.min_static_work ->
        select_blocks sp ~stream_id:stream.st_id ~gid ~nblocks
    | _ -> None
  in
  let g =
    {
      g_id = gid;
      g_stream = stream;
      g_job = job;
      g_kernel = kernel;
      g_grid = grid;
      g_block = block;
      g_args = args;
      g_default_idx = default_idx;
      g_weight = weight;
      g_strata =
        (match selection with
        | None -> None
        | Some (counts, _) ->
            let nh = Array.length counts in
            Some
              {
                sa_counts = counts;
                sa_n = Array.make nh 0;
                sa_sum = Array.make nh 0.0;
                sa_sumsq = Array.make nh 0.0;
              });
      g_blocks_left =
        (match selection with
        | None -> nblocks
        | Some (_, sel) -> List.length sel);
      g_last_finish = ready;
    }
  in
  stream.st_next_grid_id <- stream.st_next_grid_id + 1;
  (match job with Some j -> j.j_open_grids <- j.j_open_grids + 1 | None -> ());
  stream.st_metrics.grids_launched <-
    stream.st_metrics.grids_launched
    + max 1 (int_of_float (Float.round weight));
  Trace.record t.trace
    (Trace.Grid_launched
       {
         t_tenant = stream.st_id;
         t_grid_id = g.g_id;
         t_kernel = kernel_name kernel;
         t_blocks = nblocks;
         t_from_host = from_host;
         t_issue = Option.value issue ~default:ready;
         t_ready = ready;
       });
  match selection with
  | None ->
      for bz = 0 to gz - 1 do
        for by = 0 to gy - 1 do
          for bx = 0 to gx - 1 do
            Event_queue.push t.events ready
              (Block_ready (g, (bx, by, bz), 1.0, -1))
          done
        done
      done
  | Some (_, sel) ->
      (* Ascending flat order matches the exact loop order, so insertion
         sequence (the heap's tie-break) is deterministic either way. *)
      List.iter
        (fun (flat, w, h) ->
          let bz = flat / (gy * gx) in
          let rem = flat mod (gy * gx) in
          Event_queue.push t.events ready
            (Block_ready (g, (rem mod gx, rem / gx, bz), w, h)))
        sel

(** Route a device-side launch through the grid-management unit. Returns the
    time at which the child grid becomes schedulable. The queue is shared
    device-wide; the wait is charged to the issuing [stream]'s metrics, so
    under tenancy each tenant sees the congestion {e it experienced}
    (including the part caused by other tenants' launches ahead of it).
    With [weight] > 1 (launch sampling) the one serviced launch stands for
    [weight] identical ones: the queue advances by the weighted service
    time and the charged busy time includes the arithmetic-series wait of
    the represented copies; at [weight = 1.0] every expression reduces
    bitwise to the unweighted one. *)
let process_device_launch ?(weight = 1.0) t (stream : stream) ~issue =
  let cfg = t.cfg in
  let m = stream.st_metrics in
  let interval = float_of_int cfg.launch_service_interval in
  let start = Float.max issue t.launch_q_free in
  t.launch_q_free <- start +. (weight *. interval);
  let ready = start +. interval +. float_of_int cfg.device_launch_latency in
  m.device_launches <-
    m.device_launches + max 1 (int_of_float (Float.round weight));
  m.breakdown.launch_cycles <-
    m.breakdown.launch_cycles
    +. (weight *. (ready -. issue))
    +. (interval *. weight *. (weight -. 1.0) /. 2.0);
  (* Queue depth seen by this launch: launches ahead of it, i.e. the time
     it waited for service in units of the service interval. [start] (not
     the post-service [launch_q_free]) is the right numerator — using the
     latter would count the launch just serviced as pending ahead of
     itself, overstating the congestion metric by one. *)
  let pending =
    if cfg.launch_service_interval <= 0 then 0
    else
      int_of_float
        ((start -. issue) /. float_of_int cfg.launch_service_interval)
  in
  if pending > m.max_pending_launches then m.max_pending_launches <- pending;
  ready

let process_host_launch ?(weight = 1.0) t (stream : stream) ~issue =
  let m = stream.st_metrics in
  let ready = issue +. float_of_int t.cfg.host_launch_latency in
  m.host_launches <-
    m.host_launches + max 1 (int_of_float (Float.round weight));
  m.breakdown.launch_cycles <-
    m.breakdown.launch_cycles +. (weight *. (ready -. issue));
  ready

let resolve_kernel (stream : stream) name =
  match stream_prog_exn stream with
  | P_closure cp ->
      let cf = Compile.find_func_exn cp name in
      if cf.Compile.cf_kind <> Minicu.Ast.Global then
        Value.error "%S is not a __global__ kernel" name;
      K_closure cf
  | P_bytecode bp ->
      let bf = Bytecode.find_func_exn bp name in
      if bf.Bytecode.bf_kind <> Minicu.Ast.Global then
        Value.error "%S is not a __global__ kernel" name;
      K_bytecode bf

let dispatch_launch_req ?(weight = 1.0) t (stream : stream) ?job
    ~(base : float) (lr : Compile.launch_req) =
  let kernel = resolve_kernel stream lr.lr_kernel in
  let ready =
    if lr.lr_from_host then process_host_launch ~weight t stream ~issue:base
    else process_device_launch ~weight t stream ~issue:base
  in
  launch_grid t stream ?job ~issue:base ~from_host:lr.lr_from_host ~weight
    ~kernel ~grid:lr.lr_grid ~block:lr.lr_block ~args:lr.lr_args ~ready
    ~default_idx:Metrics.tag_child

(* Fold a sampled grid's per-stratum sums into the stream's sampling stats:
   extrapolated total Σ N_h·mean_h and stratified variance
   Σ N_h²·(1 − n_h/N_h)·s_h²/n_h, both scaled by the grid's inherited
   weight. *)
let fold_strata (g : grid) =
  match g.g_strata with
  | None -> ()
  | Some s ->
      let ss = g.g_stream.st_metrics.sampling in
      ss.sampled_grids <- ss.sampled_grids + 1;
      Array.iteri
        (fun h count ->
          let taken = s.sa_n.(h) in
          if taken > 0 then begin
            let n = float_of_int taken and nn = float_of_int count in
            let mean = s.sa_sum.(h) /. n in
            ss.sampled_blocks <- ss.sampled_blocks + taken;
            ss.skipped_blocks <- ss.skipped_blocks + (count - taken);
            ss.est_total <- ss.est_total +. (g.g_weight *. nn *. mean);
            if taken > 1 && count > taken then begin
              let var =
                Float.max 0.0
                  ((s.sa_sumsq.(h) -. (n *. mean *. mean)) /. (n -. 1.0))
              in
              ss.est_variance <-
                ss.est_variance
                +. g.g_weight *. g.g_weight *. nn *. nn
                   *. (1.0 -. (n /. nn))
                   *. var /. n
            end
          end)
        s.sa_counts

let grid_completed t (g : grid) =
  (* Grid-granularity aggregation: the host performs the aggregated
     launch once the parent grid has drained (Section V-A). *)
  let stream = g.g_stream in
  let launches =
    match g.g_kernel with
    | K_closure cf -> (
        match cf.Compile.cf_followup with
        | None -> []
        | Some followup ->
            Exec.run_host_stmts cf followup ~args:g.g_args ~grid:g.g_grid
              ~block:g.g_block ~mem:t.mem ~cfg:t.cfg
              ~metrics:stream.st_metrics)
    | K_bytecode bf -> (
        match bf.Bytecode.bf_followup with
        | None -> []
        | Some entry ->
            let bp =
              match stream_prog_exn stream with
              | P_bytecode bp -> bp
              | P_closure _ -> assert false
            in
            Vm.run_host_stmts bp bf ~entry ~args:g.g_args ~grid:g.g_grid
              ~block:g.g_block ~mem:t.mem ~cfg:t.cfg
              ~metrics:stream.st_metrics)
  in
  fold_strata g;
  List.iter
    (fun (lr : Compile.launch_req) ->
      dispatch_launch_req ~weight:g.g_weight t stream ?job:g.g_job
        ~base:g.g_last_finish
        { lr with lr_from_host = true })
    launches

(* ------------------------------------------------------------------ *)
(* Execute / commit                                                    *)
(* ------------------------------------------------------------------ *)

(* Execute one block into a fresh private metrics record. Pure with respect
   to scheduler state: touches only [t.mem] (and the private record), so
   provably-independent blocks may run concurrently. The private record is
   returned even when execution aborts — incremental counters (sanitizer
   reports, serialized launches) charged before the failure must still
   reach the stream's metrics, as they would have under direct
   accumulation. *)
let exec_block t scratch (g : grid) ~bidx :
    (Exec.result, exn) result * Metrics.t =
  let priv = Metrics.create () in
  let r =
    match
      match (stream_prog_exn g.g_stream, g.g_kernel) with
      | P_closure cp, K_closure cf ->
          Exec.run_block cp cf ~args:g.g_args ~gdim:g.g_grid ~bdim:g.g_block
            ~bidx ~mem:t.mem ~cfg:t.cfg ~metrics:priv
            ~default_idx:g.g_default_idx
      | P_bytecode bp, K_bytecode bf ->
          Vm.run_block scratch bp bf ~args:g.g_args ~gdim:g.g_grid
            ~bdim:g.g_block ~bidx ~mem:t.mem ~cfg:t.cfg ~metrics:priv
            ~default_idx:g.g_default_idx
      | (P_closure _ | P_bytecode _), _ -> assert false
    with
    | r -> Ok r
    | exception e -> Error e
  in
  (r, priv)

(* A block whose execution aborted: fold what it did charge into the
   stream's metrics (exactly what direct accumulation would have left
   behind), then re-raise at the commit position. *)
let abort_block (g : grid) priv e =
  Metrics.merge ~into:g.g_stream.st_metrics ~weight:1.0 priv;
  raise e

(* Commit one executed block, in deterministic event order: SM assignment
   and timing, weighted metrics merge (bit-identical to direct accumulation
   at weight 1, see {!Metrics.merge}), trace, launch dispatch (with launch
   sampling), stratum bookkeeping, grid completion. *)
let commit_block t ~te (Block_ready (g, bidx, bw, stratum))
    (r : Exec.result) (priv : Metrics.t) =
  let stream = g.g_stream in
  let w = g.g_weight *. bw in
  (* earliest-free SM *)
  let sm = ref 0 in
  for i = 1 to Array.length t.sms - 1 do
    if t.sms.(i) < t.sms.(!sm) then sm := i
  done;
  let start = Float.max te t.sms.(!sm) in
  Metrics.merge ~into:stream.st_metrics ~weight:w priv;
  let sched = float_of_int t.cfg.block_sched_overhead in
  let finish = start +. sched +. r.r_compute_cycles in
  t.sms.(!sm) <- finish;
  if finish > t.clock then t.clock <- finish;
  if w <> 1.0 then
    t.deferred_work <-
      t.deferred_work +. ((w -. 1.0) *. (sched +. r.r_compute_cycles));
  Trace.record t.trace
    (Trace.Block_dispatched
       {
         b_tenant = stream.st_id;
         b_grid_id = g.g_id;
         b_sm = !sm;
         b_start = start;
         b_finish = finish;
       });
  let par = float_of_int t.cfg.sm_warp_parallelism in
  let launches =
    let n = List.length r.r_launches in
    match t.cfg.sampling with
    | Some sp
      when sp.launch_threshold > 0
           && n >= sp.launch_threshold
           && sp.launch_frac < 1.0 ->
        let k = take_count sp.launch_frac n in
        if k >= n then List.map (fun lr -> (lr, 1.0)) r.r_launches
        else begin
          let gx, gy, _ = g.g_grid in
          let bx, by, bz = bidx in
          let flat = (bz * gy * gx) + (by * gx) + bx in
          let key =
            sample_key sp ~stream_id:stream.st_id ~gid:g.g_id
              ~salt:(flat + 0x51ED)
          in
          let arr = Array.of_list r.r_launches in
          (* Child-launch sizes are heavy-tailed (hub vertices spawn grids
             orders of magnitude larger than the median), so a uniform
             position sample under-covers exactly the launches that carry
             the cycles. Certainty stratum: the top ceil(k/2) launches by
             child thread count are always dispatched at weight 1; the
             remaining budget is a systematic sample over the other
             positions, weighted by that sub-population alone. Launch dims
             are static and ties break on position, so the pick is as
             deterministic as the plain systematic one. *)
          let threads i =
            let cgx, cgy, cgz = arr.(i).Compile.lr_grid in
            let cbx, cby, cbz = arr.(i).Compile.lr_block in
            cgx * cgy * cgz * cbx * cby * cbz
          in
          let order = Array.init n Fun.id in
          Array.sort
            (fun i j ->
              match compare (threads j) (threads i) with
              | 0 -> compare i j
              | d -> d)
            order;
          (* k = 1 leaves no budget for the sampled stratum; degrade to the
             plain systematic sample (c = 0) rather than dropping the tail
             mass entirely. *)
          let c = if k >= 2 then (k + 1) / 2 else 0 in
          let certain = Array.make n false in
          for j = 0 to c - 1 do
            certain.(order.(j)) <- true
          done;
          let rest = Array.make (n - c) 0 in
          let ri = ref 0 in
          for i = 0 to n - 1 do
            if not certain.(i) then begin
              rest.(!ri) <- i;
              incr ri
            end
          done;
          let ks = k - c in
          let idx = systematic ~key ~n:(n - c) ~k:ks in
          let lw = float_of_int (n - c) /. float_of_int ks in
          let wsel = Array.make n 0.0 in
          for i = 0 to n - 1 do
            if certain.(i) then wsel.(i) <- 1.0
          done;
          Array.iter (fun j -> wsel.(rest.(j)) <- lw) idx;
          let ss = stream.st_metrics.sampling in
          ss.sampled_launches <- ss.sampled_launches + k;
          ss.skipped_launches <- ss.skipped_launches + (n - k);
          let out = ref [] in
          for i = n - 1 downto 0 do
            if wsel.(i) > 0.0 then out := (arr.(i), wsel.(i)) :: !out
          done;
          !out
        end
    | _ -> List.map (fun lr -> (lr, 1.0)) r.r_launches
  in
  List.iter
    (fun ((lr : Compile.launch_req), lw) ->
      let offset = Float.min (lr.lr_issue_cost /. par) r.r_compute_cycles in
      dispatch_launch_req ~weight:(w *. lw) t stream ?job:g.g_job
        ~base:(start +. sched +. offset)
        lr)
    launches;
  (match g.g_strata with
  | Some s when stratum >= 0 ->
      s.sa_n.(stratum) <- s.sa_n.(stratum) + 1;
      s.sa_sum.(stratum) <- s.sa_sum.(stratum) +. r.r_compute_cycles;
      s.sa_sumsq.(stratum) <-
        s.sa_sumsq.(stratum) +. (r.r_compute_cycles *. r.r_compute_cycles)
  | _ -> ());
  g.g_blocks_left <- g.g_blocks_left - 1;
  if finish > g.g_last_finish then g.g_last_finish <- finish;
  if g.g_blocks_left = 0 then begin
    Trace.record t.trace
      (Trace.Grid_completed
         {
           c_tenant = stream.st_id;
           c_grid_id = g.g_id;
           c_finish = g.g_last_finish;
         });
    (* followups launch before the job's open count drops, so a job with a
       pending host followup never looks momentarily complete *)
    grid_completed t g;
    match g.g_job with
    | Some j ->
        j.j_open_grids <- j.j_open_grids - 1;
        if g.g_last_finish > j.j_finish then j.j_finish <- g.g_last_finish
    | None -> ()
  end

let step t =
  let te, ev = Event_queue.pop t.events in
  let (Block_ready (g, bidx, _, _)) = ev in
  match exec_block t t.scratch g ~bidx with
  | Ok r, priv -> commit_block t ~te ev r priv
  | Error e, priv -> abort_block g priv e

(** Earliest pending block-event time, for external event loops
    ({e lib/tenancy}) that interleave host-side decisions with device
    progress. *)
let next_event_time t = Event_queue.peek_time t.events

let has_pending_events t = not (Event_queue.is_empty t.events)

(* ------------------------------------------------------------------ *)
(* Parallel batch dispatch                                             *)
(* ------------------------------------------------------------------ *)

(* Whether this block may join a parallel batch at all: the kernel's proof
   holds, and the 1-D dims it may rely on check out. *)
let batchable (g : grid) (s : Blocksafe.summary) =
  s.bs_safe
  && ((not s.bs_needs_1d)
     ||
     match (g.g_grid, g.g_block) with
     | (_, 1, 1), (_, 1, 1) -> true
     | _ -> false)

(* The concrete buffers a grid touches, as (mode, buffer id) pairs. [None]
   when the arguments alias in a way the per-parameter proof did not cover
   (the same buffer bound to an Owned parameter and any other parameter,
   or to both a Reduce and a read parameter). *)
let grid_footprint (g : grid) (s : Blocksafe.summary) :
    (Blocksafe.mode * int) list option =
  let args = Array.of_list g.g_args in
  if Array.length args <> Array.length s.bs_modes then None
  else begin
    let seen : (int, Blocksafe.mode) Hashtbl.t = Hashtbl.create 4 in
    let fp = ref [] in
    let ok = ref true in
    Array.iteri
      (fun i arg ->
        match arg with
        | Value.Ptr p -> (
            let m = s.bs_modes.(i) in
            match Hashtbl.find_opt seen p.buf with
            | None ->
                Hashtbl.add seen p.buf m;
                fp := (m, p.buf) :: !fp
            | Some prev -> (
                match (prev, m) with
                | Blocksafe.Read_only, Blocksafe.Read_only
                | Blocksafe.Reduce, Blocksafe.Reduce ->
                    ()
                | _ -> ok := false))
        | _ -> ())
      args;
    if !ok then Some !fp else None
  end

(* Cross-grid compatibility tables for one batch: a buffer owned (written
   through a per-thread window) by one grid must not be visible to any
   other grid in the batch; reduce targets may be shared only with other
   reduce uses; reads may share with reads. *)
type batch_tables = {
  bt_owned : (int, unit) Hashtbl.t;
  bt_reduced : (int, unit) Hashtbl.t;
  bt_read : (int, unit) Hashtbl.t;
  mutable bt_admitted : grid list;
}

let fp_compatible bt (m, b) =
  match (m : Blocksafe.mode) with
  | Owned _ ->
      not
        (Hashtbl.mem bt.bt_owned b
        || Hashtbl.mem bt.bt_reduced b
        || Hashtbl.mem bt.bt_read b)
  | Reduce -> not (Hashtbl.mem bt.bt_owned b || Hashtbl.mem bt.bt_read b)
  | Read_only ->
      not (Hashtbl.mem bt.bt_owned b || Hashtbl.mem bt.bt_reduced b)

let fp_insert bt fp =
  List.iter
    (fun ((m : Blocksafe.mode), b) ->
      match m with
      | Owned _ -> Hashtbl.replace bt.bt_owned b ()
      | Reduce -> Hashtbl.replace bt.bt_reduced b ()
      | Read_only -> Hashtbl.replace bt.bt_read b ())
    fp

(* Admit a grid into the batch (once per grid: blocks of an admitted grid
   are compatible with it by construction — within-grid disjointness is
   what {!Blocksafe} proved). *)
let admit bt (g : grid) (s : Blocksafe.summary) =
  List.memq g bt.bt_admitted
  ||
  match grid_footprint g s with
  | None -> false
  | Some fp ->
      List.for_all (fp_compatible bt) fp
      && begin
           fp_insert bt fp;
           bt.bt_admitted <- g :: bt.bt_admitted;
           true
         end

(* Pop a maximal batch: the longest event-queue prefix of provably-safe,
   pairwise buffer-disjoint blocks. Safe kernels never launch, so nothing
   is fed back into the queue mid-batch and the prefix is well defined.
   Returns at least one event; a single-element result (whether unsafe or
   merely alone) is executed serially by the caller. *)
let collect_batch t =
  let (te, ev) = Event_queue.pop t.events in
  let (Block_ready (g, _, _, _)) = ev in
  let s = kernel_safety g.g_kernel in
  if not (batchable g s) then [| (te, ev) |]
  else begin
    let bt =
      {
        bt_owned = Hashtbl.create 8;
        bt_reduced = Hashtbl.create 8;
        bt_read = Hashtbl.create 8;
        bt_admitted = [];
      }
    in
    if not (admit bt g s) then [| (te, ev) |]
    else begin
      let acc = ref [ (te, ev) ] in
      let count = ref 1 in
      let stop = ref false in
      while not !stop do
        match Event_queue.peek t.events with
        | Some (te', (Block_ready (g', _, _, _) as ev')) ->
            let s' = kernel_safety g'.g_kernel in
            if batchable g' s' && admit bt g' s' then begin
              ignore (Event_queue.pop t.events);
              acc := (te', ev') :: !acc;
              incr count
            end
            else stop := true
        | None -> stop := true
      done;
      let arr = Array.make !count (te, ev) in
      List.iteri (fun i e -> arr.(!count - 1 - i) <- e) !acc;
      arr
    end
  end

let ensure_scratches t jobs =
  if Array.length t.scratches < jobs then
    t.scratches <- Array.init jobs (fun _ -> Vm.create_scratch ());
  t.scratches

(* Execute a batch on [jobs] domains (strided partition, one Vm scratch
   per worker) and commit the results in pop order. A block whose
   execution raised gets its exception re-raised at its commit position,
   after every earlier block has committed — the state a serial run would
   have at the same failure, except that later batch members may also have
   executed (their effects are unobservable: the run is aborting). *)
let run_batch t (evs : (float * event) array) =
  let n = Array.length evs in
  let jobs = max 1 (min t.cfg.block_jobs n) in
  if n = 1 || jobs = 1 then
    Array.iter
      (fun (te, ev) ->
        let (Block_ready (g, bidx, _, _)) = ev in
        match exec_block t t.scratch g ~bidx with
        | Ok r, priv -> commit_block t ~te ev r priv
        | Error e, priv -> abort_block g priv e)
      evs
  else begin
    t.par_batches <- t.par_batches + 1;
    t.par_batch_blocks <- t.par_batch_blocks + n;
    let scratches = ensure_scratches t jobs in
    let results = Array.make n None in
    let worker w =
      let scratch = scratches.(w) in
      let i = ref w in
      while !i < n do
        let (_, Block_ready (g, bidx, _, _)) = evs.(!i) in
        results.(!i) <- Some (exec_block t scratch g ~bidx);
        i := !i + jobs
      done
    in
    let domains =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join domains;
    Array.iteri
      (fun i (te, ev) ->
        let (Block_ready (g, _, _, _)) = ev in
        match results.(i) with
        | Some (Ok r, priv) -> commit_block t ~te ev r priv
        | Some (Error e, priv) -> abort_block g priv e
        | None -> assert false)
      evs
  end

(** Drain all pending work; returns the simulated clock. With
    [Config.block_jobs] > 1 (and the sanitizer off), ready blocks execute
    in provably-independent parallel batches; results commit in pop order,
    so the outcome is byte-identical to the serial drain. Sampled-out work
    ({!Config.sampling}) is folded into the clock here, spread across the
    SMs. *)
let run_to_idle t =
  if t.cfg.block_jobs <= 1 || t.cfg.check then
    while not (Event_queue.is_empty t.events) do
      step t
    done
  else
    while not (Event_queue.is_empty t.events) do
      run_batch t (collect_batch t)
    done;
  if t.deferred_work > 0.0 then begin
    t.clock <- t.clock +. (t.deferred_work /. float_of_int (Array.length t.sms));
    t.deferred_work <- 0.0
  end;
  t.metrics.makespan <- t.clock;
  t.clock
