(** Device model parameters for the GPU simulator.

    The defaults sketch a Volta-class device scaled to the interpreted
    datasets used in this reproduction: the *ratios* between launch cost,
    memory cost and ALU throughput are what drive the paper's observed
    effects (launch congestion, hardware underutilization, divergence), not
    the absolute values. All times are in cycles of a nominal SM clock. *)

(** Which execution engine runs device code. [Closure] is the original
    closure-tree interpreter ({!Compile}/{!Exec}); [Bytecode] lowers kernel
    bodies to a flat instruction array over an unboxed register file
    ({!Bytecode}/{!Vm}). Both engines are semantically identical — the
    cross-engine differential suite pins bit-identical memory dumps and
    launch metrics — but bytecode avoids per-step boxing and fibers. *)
type engine = Closure | Bytecode

let pp_engine ppf = function
  | Closure -> Fmt.string ppf "closure"
  | Bytecode -> Fmt.string ppf "bytecode"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "closure" -> Some Closure
  | "bytecode" -> Some Bytecode
  | _ -> None

(** Stratified grid sampling (paper-scale execution). When enabled, grids
    with at least [block_threshold] blocks simulate only a deterministic
    stratified sample of their blocks; the skipped blocks are represented by
    weights on the sampled ones (metrics are scaled, the launch queue is
    advanced by the weighted service time, and the skipped compute is folded
    into the clock at the next drain). Blocks that issue at least
    [launch_threshold] device launches likewise dispatch only a sample of
    them, with multiplicative inherited weights. The sample is a pure
    function of [seed] and the grid identity, so it is identical at any
    [block_jobs] and across engines. *)
type sampling = {
  block_threshold : int;  (** Sample grids with at least this many blocks. *)
  block_frac : float;  (** Fraction of blocks to simulate, in (0, 1]. *)
  strata : int;  (** Contiguous strata per sampled grid (>= 1). *)
  seed : int;  (** Seed for the deterministic sample positions. *)
  launch_threshold : int;
      (** Sample the launch list of blocks issuing at least this many
          device launches. *)
  launch_frac : float;  (** Fraction of such launches to dispatch. *)
  min_static_work : float;
      (** Skip sampling grids whose statically-estimated per-block work
          ({!Blocksafe.static_work}) falls below this floor: tiny blocks are
          cheaper to run than to extrapolate. *)
}

let default_sampling =
  {
    block_threshold = 24;
    block_frac = 0.25;
    strata = 8;
    seed = 0x5eed;
    launch_threshold = 48;
    launch_frac = 0.25;
    min_static_work = 0.0;
  }

type t = {
  (* ---- execution engine ---- *)
  engine : engine;
  block_jobs : int;
      (** Worker domains for within-run parallel block execution. Batches of
          ready blocks whose kernels are provably free of cross-block
          conflicts ({!Blocksafe}) execute concurrently; results commit in
          deterministic event order, so dumps and metrics are byte-identical
          at any value. 1 = serial (default). *)
  sampling : sampling option;
      (** [None] (default) simulates every block exactly — bit-identical to
          the pre-sampling scheduler. *)
  (* ---- machine shape ---- *)
  num_sms : int;  (** Streaming multiprocessors. *)
  warp_size : int;  (** Threads per warp (32 on all NVIDIA GPUs). *)
  sm_warp_parallelism : int;
      (** Warp instructions retired per cycle per SM (warp schedulers). *)
  max_threads_per_block : int;
  (* ---- instruction cost model (cycles per warp-instruction) ---- *)
  arith_cost : int;
  mem_cost : int;  (** Amortized global-memory access. *)
  atomic_cost : int;  (** Global atomic read-modify-write. *)
  branch_cost : int;
  sync_cost : int;  (** [__syncthreads()]. *)
  fence_cost : int;  (** [__threadfence()]. *)
  warp_collective_cost : int;
  alloc_cost : int;  (** Device-side [malloc]. *)
  call_cost : int;  (** Device-function call overhead. *)
  (* ---- dynamic parallelism costs ---- *)
  launch_issue_cost : int;
      (** Instructions executed by the launching thread to prepare and issue
          a device-side launch. *)
  cdp_entry_cost : int;
      (** Per-thread cost charged at entry to any kernel whose body contains
          a launch statement, even if never executed. Models the extra SASS
          the paper measures in Section VIII-D. *)
  device_launch_latency : int;
      (** Base latency from launch issue until the child grid is visible to
          the grid scheduler. *)
  host_launch_latency : int;  (** Same, for host-issued launches. *)
  launch_service_interval : int;
      (** The grid-management unit processes one pending launch per this many
          cycles; queueing behind it is the congestion the paper describes. *)
  block_sched_overhead : int;  (** Cycles to dispatch one block onto an SM. *)
  (* ---- sanitizer ---- *)
  check : bool;
      (** Enable the dynamic sanitizer ({!Racecheck}): per-block shadow
          logging of memory accesses with barrier-epoch tags, plus source
          locations on out-of-bounds reports. Off by default; the
          instrumentation is chosen at closure-compile time, so runs with
          [check = false] pay nothing. *)
}

let default =
  {
    engine = Closure;
    block_jobs = 1;
    sampling = None;
    num_sms = 32;
    warp_size = 32;
    sm_warp_parallelism = 4;
    max_threads_per_block = 1024;
    arith_cost = 1;
    mem_cost = 4;
    atomic_cost = 16;
    branch_cost = 1;
    sync_cost = 8;
    fence_cost = 16;
    warp_collective_cost = 8;
    alloc_cost = 400;
    call_cost = 4;
    launch_issue_cost = 300;
    cdp_entry_cost = 16;
    device_launch_latency = 2500;
    host_launch_latency = 600;
    launch_service_interval = 500;
    block_sched_overhead = 120;
    check = false;
  }

(* ---- derived constants (consumed by lib/costmodel) ----
   These expose the machine laws the scheduler implements (sched.ml /
   exec.ml) as plain numbers, so an analytical model can mirror them
   without re-deriving the mechanics from simulator internals. *)

let launch_service_rate cfg =
  if cfg.launch_service_interval <= 0 then infinity
  else 1.0 /. float_of_int cfg.launch_service_interval

let warp_throughput cfg =
  float_of_int (cfg.num_sms * cfg.sm_warp_parallelism)

let resident_blocks cfg = cfg.num_sms

let occupancy cfg ~blocks =
  if blocks <= 0 then 0.0
  else
    float_of_int (min blocks cfg.num_sms) /. float_of_int cfg.num_sms

let waves cfg ~blocks =
  if blocks <= 0 then 0
  else (blocks + cfg.num_sms - 1) / cfg.num_sms

(** A tiny configuration for unit tests: one SM, cheap launches, so tests
    exercise semantics without large simulated times. *)
let test_config =
  {
    default with
    num_sms = 2;
    launch_service_interval = 10;
    device_launch_latency = 10;
    host_launch_latency = 10;
    block_sched_overhead = 1;
  }
