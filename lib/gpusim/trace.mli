(** Optional execution tracing: a per-grid timeline of launches, block
    dispatches and completions, with launch-queue waits made explicit.
    Events carry the owning tenant/stream id; grid ids are only unique per
    tenant (streams have independent grid-id namespaces), so grouping keys
    on the (tenant, grid) pair. Disabled by default (zero overhead beyond
    a branch); enable via {!Device.enable_trace}. *)

type grid_info = {
  t_tenant : int;  (** Owning stream id; 0 for the default stream. *)
  t_grid_id : int;
  t_kernel : string;
  t_blocks : int;
  t_from_host : bool;
  t_issue : float;
  t_ready : float;  (** [t_ready - t_issue] is the launch-path wait. *)
}

type event =
  | Grid_launched of grid_info
  | Block_dispatched of {
      b_tenant : int;
      b_grid_id : int;
      b_sm : int;
      b_start : float;
      b_finish : float;
    }
  | Grid_completed of { c_tenant : int; c_grid_id : int; c_finish : float }

type t

val create : unit -> t
val enable : t -> unit
val record : t -> event -> unit

(** Events in chronological (recording) order. *)
val events : t -> event list

val clear : t -> unit

type grid_summary = {
  g_info : grid_info;
  g_first_start : float;  (** [infinity] if no block was dispatched. *)
  g_finish : float;
      (** Last block/completion finish; defaults to [t_ready] for a grid
          none of whose blocks were dispatched in the traced window. *)
  g_blocks_seen : int;
  g_sms_used : int;
}

(** Per-grid summaries grouped per tenant — sorted by (tenant, grid id),
    never merging distinct streams into one timeline — plus the orphan
    [Block_dispatched]/[Grid_completed] events whose (tenant, grid id) has
    no [Grid_launched] record (tracing enabled mid-run), in original
    order — surfaced rather than silently dropped. *)
val summarize : event list -> grid_summary list * event list

(** Tenant ids present in a summary list, ascending. *)
val tenants_of : grid_summary list -> int list

(** Render the per-grid table plus queue-wait statistics (per tenant when
    more than one stream appears, then device-wide). *)
val timeline : Format.formatter -> event list -> unit
