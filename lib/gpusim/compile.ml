(** Closure-compiling interpreter for MiniCU device code.

    Each function is compiled once to a tree of OCaml closures over a
    per-thread execution context; simulated threads then run the closures.
    Compilation resolves every variable reference to a frame slot (no
    hashtable lookups at run time) and attaches cost charging to each
    statement so the simulator's cost model is applied as code executes.

    Threads suspend at barriers and warp collectives by performing effects
    ({!E_sync}, {!E_warp}); the block executor in {!Exec} handles them. *)

open Minicu
open Minicu.Ast

(* ------------------------------------------------------------------ *)
(* Runtime context                                                     *)
(* ------------------------------------------------------------------ *)

type warp_op = W_scan_excl | W_sum | W_max | W_bcast of int | W_sync

type warp_req = { wop : warp_op; warg : Value.t }

type _ Effect.t += E_sync : unit Effect.t
type _ Effect.t += E_warp : warp_req -> Value.t Effect.t

type launch_req = {
  lr_kernel : string;
  lr_grid : int * int * int;
  lr_block : int * int * int;
  lr_args : Value.t list;
  lr_issue_cost : float;
      (** The launching thread's accumulated cost when the launch was issued;
          the scheduler turns this into an issue-time offset. *)
  lr_from_host : bool;
}

type bctx = {
  mem : Memory.t;
  cfg : Config.t;
  metrics : Metrics.t;
  bidx : int * int * int;
  bdim : int * int * int;
  gdim : int * int * int;
  shared : (int, Value.ptr) Hashtbl.t;
      (** Shared-memory buffers, keyed by declaration id (allocated by the
          first thread to reach the declaration; uniform across the block). *)
  mutable launches : launch_req list;  (** Launches issued by this block. *)
  is_host_ctx : bool;  (** True when running a host followup. *)
  racecheck : Racecheck.t option;
      (** Per-block dynamic race detector; [Some] only when [Config.check]
          is set and this is a device block. *)
}

type tctx = {
  mutable frame : Value.t array;
  costs : float array;  (** Per-tag accumulated cycles; see {!Metrics}. *)
  mutable total : float;
  mutable default_idx : int;  (** Resolution of [Tag_none] for this grid. *)
  tidx : int * int * int;
  blk : bctx;
}

let charge_tag (t : tctx) idx (c : float) =
  let idx = if idx = Metrics.tag_default then t.default_idx else idx in
  t.costs.(idx) <- t.costs.(idx) +. c;
  t.total <- t.total +. c

(* Sanitizer hooks. These are only reachable from closures compiled under
   [Config.check]; unchecked runs never execute them. *)

let check_access (t : tctx) ~kind ~loc (ptr : Value.ptr) =
  match t.blk.racecheck with
  | None -> ()
  | Some rc ->
      let x, y, z = t.tidx in
      let bx, by, _ = t.blk.bdim in
      let tid = x + (y * bx) + (z * bx * by) in
      Racecheck.record rc ~tid ~kind ~loc ptr

let access_failed (t : tctx) ~loc msg =
  t.blk.metrics.oob_detected <- t.blk.metrics.oob_detected + 1;
  raise (Value.Runtime_error (Fmt.str "%a: %s" Loc.pp loc msg))

let checked_load (t : tctx) ~loc ptr =
  try Memory.load t.blk.mem ptr
  with Value.Runtime_error msg -> access_failed t ~loc msg

let checked_store (t : tctx) ~loc ptr v =
  try Memory.store t.blk.mem ptr v
  with Value.Runtime_error msg -> access_failed t ~loc msg

(* Control-flow exceptions of the interpreted language. *)
exception Ret of Value.t
exception Brk
exception Cont

type cexpr = tctx -> Value.t
type cstmt = tctx -> unit

type cfunc = {
  cf_name : string;
  cf_kind : func_kind;
  mutable cf_nslots : int;
  cf_nparams : int;
  cf_contains_launch : bool;
  cf_is_serial : bool;
      (** Heuristic: generated thresholding serial versions (names ending in
          ["_serial"]); calls are counted in {!Metrics}. *)
  cf_safety : Blocksafe.summary;
      (** Cross-block independence proof for parallel dispatch. *)
  cf_static_work : float;  (** Per-thread static work estimate. *)
  mutable cf_body : cstmt;
  mutable cf_followup : cstmt option;
      (** Host-followup code (grid-granularity aggregation); runs with the
          kernel's parameter frame after the grid drains. *)
}

type cprog = {
  cp_funcs : (string, cfunc) Hashtbl.t;
  cp_ast : program;
}

let find_func_exn cp name =
  match Hashtbl.find_opt cp.cp_funcs name with
  | Some f -> f
  | None -> Value.error "no such function %S" name

(* ------------------------------------------------------------------ *)
(* Static cost estimation                                              *)
(* ------------------------------------------------------------------ *)

(* Cycles to evaluate [e] once, assuming full evaluation. Short-circuit and
   ternary operators are charged for both sides; this keeps charging O(1)
   per statement at run time. *)
let rec expr_cost (cfg : Config.t) (e : expr) : int =
  let ec = expr_cost cfg in
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> 0
  | Unop (_, a) -> cfg.arith_cost + ec a
  | Binop (_, a, b) -> cfg.arith_cost + ec a + ec b
  | Ternary (c, a, b) -> cfg.branch_cost + ec c + max (ec a) (ec b)
  | Index (p, i) -> cfg.mem_cost + ec p + ec i
  | Member (a, _) -> ec a
  | Cast (_, a) -> cfg.arith_cost + ec a
  | Dim3_ctor (x, y, z) -> cfg.arith_cost + ec x + ec y + ec z
  | Addr_of lv -> addr_cost cfg lv
  | Call (f, args) -> (
      let argc = List.fold_left (fun acc a -> acc + ec a) 0 args in
      match Builtins.find f with
      | Some b ->
          let c =
            match b.b_cost with
            | Builtins.Arith -> cfg.arith_cost
            | Builtins.Mem -> cfg.mem_cost
            | Builtins.Atomic -> cfg.atomic_cost
            | Builtins.Warp_collective -> cfg.warp_collective_cost
            | Builtins.Alloc -> cfg.alloc_cost
          in
          (* atomics evaluate their address operand without the extra load *)
          c + argc
      | None -> cfg.call_cost + argc)

(* Address computation for an lvalue (no load). *)
and addr_cost cfg = function
  | Var _ -> cfg.arith_cost
  | Index (p, i) -> cfg.arith_cost + expr_cost cfg p + expr_cost cfg i
  | Member (a, _) -> cfg.arith_cost + expr_cost cfg a
  | e -> expr_cost cfg e

(* ------------------------------------------------------------------ *)
(* Compile-time environment                                            *)
(* ------------------------------------------------------------------ *)

type cenv = {
  prog : program;
  funcs : (string, cfunc) Hashtbl.t;
  mutable slots : (string * int) list;  (** Innermost binding first. *)
  mutable next_slot : int;
  mutable shared_ids : int;  (** Fresh ids for shared-memory declarations. *)
  cfg : Config.t;
  fname : string;
  mutable cur_loc : Loc.t;
      (** Source location of the statement being compiled; captured by the
          sanitizer closures so dynamic reports carry file:line. *)
}

let bind env x =
  let slot = env.next_slot in
  env.next_slot <- env.next_slot + 1;
  env.slots <- (x, slot) :: env.slots;
  slot

let slot_of env x loc_hint =
  match List.assoc_opt x env.slots with
  | Some s -> s
  | None -> Value.error "in %s: unbound variable %S (%s)" env.fname x loc_hint

(* Save/restore lexical scope around nested blocks. *)
let scoped env f =
  let saved = env.slots in
  let r = f () in
  env.slots <- saved;
  r

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let dim3_member (x, y, z) = function
  | "x" -> x
  | "y" -> y
  | "z" -> z
  | f -> Value.error "dim3 has no member %S" f

let eval_binop op (a : Value.t) (b : Value.t) : Value.t =
  match op with
  | Add -> (
      match (a, b) with
      | Value.Ptr p, v -> Value.Ptr { p with off = p.off + Value.as_int v }
      | v, Value.Ptr p -> Value.Ptr { p with off = p.off + Value.as_int v }
      | _ ->
          if Value.is_float a || Value.is_float b then
            Value.Float (Value.as_float a +. Value.as_float b)
          else Value.Int (Value.as_int a + Value.as_int b))
  | Sub -> (
      match (a, b) with
      | Value.Ptr p, Value.Ptr q ->
          if p.buf <> q.buf then
            Value.error "subtracting pointers into different buffers";
          Value.Int (p.off - q.off)
      | Value.Ptr p, v -> Value.Ptr { p with off = p.off - Value.as_int v }
      | _ ->
          if Value.is_float a || Value.is_float b then
            Value.Float (Value.as_float a -. Value.as_float b)
          else Value.Int (Value.as_int a - Value.as_int b))
  | Mul ->
      if Value.is_float a || Value.is_float b then
        Value.Float (Value.as_float a *. Value.as_float b)
      else Value.Int (Value.as_int a * Value.as_int b)
  | Div ->
      if Value.is_float a || Value.is_float b then
        Value.Float (Value.as_float a /. Value.as_float b)
      else
        let d = Value.as_int b in
        if d = 0 then Value.error "integer division by zero";
        Value.Int (Value.as_int a / d)
  | Mod ->
      let d = Value.as_int b in
      if d = 0 then Value.error "integer modulo by zero";
      Value.Int (Value.as_int a mod d)
  | Lt | Le | Gt | Ge -> (
      let c =
        if Value.is_float a || Value.is_float b then
          compare (Value.as_float a) (Value.as_float b)
        else compare (Value.as_int a) (Value.as_int b)
      in
      Value.Bool
        (match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | _ -> c >= 0))
  | Eq | Ne -> (
      let eq =
        match (a, b) with
        | Value.Ptr p, Value.Ptr q -> p = q
        | _ ->
            if Value.is_float a || Value.is_float b then
              Value.as_float a = Value.as_float b
            else Value.as_int a = Value.as_int b
      in
      Value.Bool (match op with Eq -> eq | _ -> not eq))
  | LAnd -> Value.Bool (Value.as_bool a && Value.as_bool b)
  | LOr -> Value.Bool (Value.as_bool a || Value.as_bool b)
  | BAnd -> Value.Int (Value.as_int a land Value.as_int b)
  | BOr -> Value.Int (Value.as_int a lor Value.as_int b)
  | BXor -> Value.Int (Value.as_int a lxor Value.as_int b)
  | Shl -> Value.Int (Value.as_int a lsl Value.as_int b)
  | Shr -> Value.Int (Value.as_int a asr Value.as_int b)

let rec compile_expr (env : cenv) (e : expr) : cexpr =
  match e with
  | Int_lit n ->
      let v = Value.Int n in
      fun _ -> v
  | Float_lit f ->
      let v = Value.Float f in
      fun _ -> v
  | Bool_lit b ->
      let v = Value.Bool b in
      fun _ -> v
  | Var "threadIdx" ->
      fun t ->
        let x, y, z = t.tidx in
        Value.Dim3 (x, y, z)
  | Var "blockIdx" ->
      fun t ->
        let x, y, z = t.blk.bidx in
        Value.Dim3 (x, y, z)
  | Var "blockDim" ->
      fun t ->
        let x, y, z = t.blk.bdim in
        Value.Dim3 (x, y, z)
  | Var "gridDim" ->
      fun t ->
        let x, y, z = t.blk.gdim in
        Value.Dim3 (x, y, z)
  | Var x ->
      let s = slot_of env x "use" in
      fun t -> t.frame.(s)
  | Member (Var "threadIdx", f) ->
      fun t -> Value.Int (dim3_member t.tidx f)
  | Member (Var "blockIdx", f) -> fun t -> Value.Int (dim3_member t.blk.bidx f)
  | Member (Var "blockDim", f) -> fun t -> Value.Int (dim3_member t.blk.bdim f)
  | Member (Var "gridDim", f) -> fun t -> Value.Int (dim3_member t.blk.gdim f)
  | Member (a, f) ->
      let ca = compile_expr env a in
      fun t ->
        (match ca t with
        | Value.Dim3 d -> Value.Int (dim3_member d f)
        (* C-style int -> dim3 conversion: n means dim3(n, 1, 1) *)
        | Value.Int n -> Value.Int (dim3_member (n, 1, 1) f)
        | v -> Value.error "member access %S on non-dim3 %a" f Value.pp v)
  | Unop (Neg, a) ->
      let ca = compile_expr env a in
      fun t -> (
        match ca t with
        | Value.Float f -> Value.Float (-.f)
        | v -> Value.Int (-Value.as_int v))
  | Unop (Not, a) ->
      let ca = compile_expr env a in
      fun t -> Value.Bool (not (Value.as_bool (ca t)))
  | Binop (LAnd, a, b) ->
      let ca = compile_expr env a and cb = compile_expr env b in
      fun t -> Value.Bool (Value.as_bool (ca t) && Value.as_bool (cb t))
  | Binop (LOr, a, b) ->
      let ca = compile_expr env a and cb = compile_expr env b in
      fun t -> Value.Bool (Value.as_bool (ca t) || Value.as_bool (cb t))
  | Binop (op, a, b) ->
      let ca = compile_expr env a and cb = compile_expr env b in
      fun t -> eval_binop op (ca t) (cb t)
  | Ternary (c, a, b) ->
      let cc = compile_expr env c
      and ca = compile_expr env a
      and cb = compile_expr env b in
      fun t -> if Value.as_bool (cc t) then ca t else cb t
  | Index (p, i) ->
      let cp = compile_expr env p and ci = compile_expr env i in
      if not env.cfg.check then
        fun t ->
          let ptr = Value.as_ptr (cp t) in
          let i = Value.as_int (ci t) in
          Memory.load t.blk.mem { ptr with off = ptr.off + i }
      else
        let loc = env.cur_loc in
        fun t ->
          let ptr = Value.as_ptr (cp t) in
          let i = Value.as_int (ci t) in
          let ptr = { ptr with Value.off = ptr.off + i } in
          check_access t ~kind:Racecheck.Read ~loc ptr;
          checked_load t ~loc ptr
  | Cast (TInt, a) ->
      let ca = compile_expr env a in
      fun t -> Value.Int (Value.as_int (ca t))
  | Cast (TFloat, a) ->
      let ca = compile_expr env a in
      fun t -> Value.Float (Value.as_float (ca t))
  | Cast (TBool, a) ->
      let ca = compile_expr env a in
      fun t -> Value.Bool (Value.as_bool (ca t))
  | Cast (_, a) -> compile_expr env a
  | Dim3_ctor (x, y, z) ->
      let cx = compile_expr env x
      and cy = compile_expr env y
      and cz = compile_expr env z in
      fun t ->
        Value.Dim3 (Value.as_int (cx t), Value.as_int (cy t), Value.as_int (cz t))
  | Addr_of lv -> compile_addr env lv
  | Call (f, args) -> compile_call env f args

(* Compile an lvalue to its address (pointers only; [&x] of a local is not
   supported because frames are not addressable memory). *)
and compile_addr env (lv : expr) : cexpr =
  match lv with
  | Index (p, i) ->
      let cp = compile_expr env p and ci = compile_expr env i in
      fun t ->
        let ptr = Value.as_ptr (cp t) in
        let i = Value.as_int (ci t) in
        Value.Ptr { ptr with off = ptr.off + i }
  | Var x ->
      (* Pointer-typed variable: &p[0] idiom is Index; &scalar unsupported. *)
      Value.error "in %s: cannot take the address of local variable %S \
                   (MiniCU atomics require a pointer element, e.g. &a[i])"
        env.fname x
  | _ -> Value.error "in %s: '&' requires an indexable lvalue" env.fname

and compile_call env f args : cexpr =
  let cargs = Array.of_list (List.map (compile_expr env) args) in
  let arg i t = cargs.(i) t in
  match f with
  | "min" ->
      fun t ->
        let a = arg 0 t and b = arg 1 t in
        if Value.is_float a || Value.is_float b then
          Value.Float (Float.min (Value.as_float a) (Value.as_float b))
        else Value.Int (min (Value.as_int a) (Value.as_int b))
  | "max" ->
      fun t ->
        let a = arg 0 t and b = arg 1 t in
        if Value.is_float a || Value.is_float b then
          Value.Float (Float.max (Value.as_float a) (Value.as_float b))
        else Value.Int (max (Value.as_int a) (Value.as_int b))
  | "abs" ->
      fun t -> (
        match arg 0 t with
        | Value.Float x -> Value.Float (Float.abs x)
        | v -> Value.Int (abs (Value.as_int v)))
  | "fabs" -> fun t -> Value.Float (Float.abs (Value.as_float (arg 0 t)))
  | "ceil" -> fun t -> Value.Float (Float.ceil (Value.as_float (arg 0 t)))
  | "floor" -> fun t -> Value.Float (Float.floor (Value.as_float (arg 0 t)))
  | "sqrt" -> fun t -> Value.Float (Float.sqrt (Value.as_float (arg 0 t)))
  | "exp" -> fun t -> Value.Float (Float.exp (Value.as_float (arg 0 t)))
  | "log" -> fun t -> Value.Float (Float.log (Value.as_float (arg 0 t)))
  | "pow" ->
      fun t ->
        Value.Float (Float.pow (Value.as_float (arg 0 t)) (Value.as_float (arg 1 t)))
  | "atomicAdd" | "atomicSub" | "atomicMin" | "atomicMax" | "atomicExch" ->
      let combine old v =
        match f with
        | "atomicAdd" -> eval_binop Add old v
        | "atomicSub" -> eval_binop Sub old v
        | "atomicMin" ->
            if Value.is_float old || Value.is_float v then
              Value.Float (Float.min (Value.as_float old) (Value.as_float v))
            else Value.Int (min (Value.as_int old) (Value.as_int v))
        | "atomicMax" ->
            if Value.is_float old || Value.is_float v then
              Value.Float (Float.max (Value.as_float old) (Value.as_float v))
            else Value.Int (max (Value.as_int old) (Value.as_int v))
        | _ -> v
      in
      if not env.cfg.check then
        fun t ->
          let p = Value.as_ptr (arg 0 t) in
          let v = arg 1 t in
          Memory.atomic_rmw t.blk.mem p (fun old -> combine old v)
      else
        let loc = env.cur_loc in
        fun t ->
          let p = Value.as_ptr (arg 0 t) in
          let v = arg 1 t in
          check_access t ~kind:Racecheck.Atomic ~loc p;
          let old = checked_load t ~loc p in
          checked_store t ~loc p (combine old v);
          old
  | "atomicCAS" ->
      if not env.cfg.check then
        fun t ->
          let p = Value.as_ptr (arg 0 t) in
          let cmp = arg 1 t and v = arg 2 t in
          Memory.atomic_rmw t.blk.mem p (fun old ->
              if Value.as_int old = Value.as_int cmp then v else old)
      else
        let loc = env.cur_loc in
        fun t ->
          let p = Value.as_ptr (arg 0 t) in
          let cmp = arg 1 t and v = arg 2 t in
          check_access t ~kind:Racecheck.Atomic ~loc p;
          let old = checked_load t ~loc p in
          if Value.as_int old = Value.as_int cmp then checked_store t ~loc p v;
          old
  | "malloc" ->
      fun t ->
        let n = Value.as_int (arg 0 t) in
        Value.Ptr (Memory.alloc t.blk.mem n ~init:(Value.Int 0))
  | "warp_scan_excl" ->
      fun t -> Effect.perform (E_warp { wop = W_scan_excl; warg = arg 0 t })
  | "warp_sum" -> fun t -> Effect.perform (E_warp { wop = W_sum; warg = arg 0 t })
  | "warp_max" -> fun t -> Effect.perform (E_warp { wop = W_max; warg = arg 0 t })
  | "warp_bcast" ->
      fun t ->
        let lane = Value.as_int (arg 1 t) in
        Effect.perform (E_warp { wop = W_bcast lane; warg = arg 0 t })
  | _ -> (
      (* device function call *)
      match Hashtbl.find_opt env.funcs f with
      | Some cf ->
          if cf.cf_kind <> Device then
            Value.error "cannot call kernel %S; kernels must be launched" f;
          if Array.length cargs <> cf.cf_nparams then
            Value.error "call to %S: wrong arity" f;
          fun t ->
            let saved = t.frame in
            let frame = Array.make cf.cf_nslots Value.Unit in
            Array.iteri (fun i ca -> frame.(i) <- ca t) cargs;
            t.frame <- frame;
            if cf.cf_is_serial then
              t.blk.metrics.serialized_launches <-
                t.blk.metrics.serialized_launches + 1;
            let result =
              match cf.cf_body t with
              | () -> Value.Unit
              | exception Ret v -> v
            in
            t.frame <- saved;
            result
      | None -> Value.error "in %s: unknown function %S" env.fname f)

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let compile_store env (lv : expr) : cexpr -> cstmt =
  match lv with
  | Var x ->
      let s = slot_of env x "assignment" in
      fun cv t -> t.frame.(s) <- cv t
  | Index (p, i) ->
      let cp = compile_expr env p and ci = compile_expr env i in
      if not env.cfg.check then
        fun cv t ->
          let ptr = Value.as_ptr (cp t) in
          let i = Value.as_int (ci t) in
          Memory.store t.blk.mem { ptr with off = ptr.off + i } (cv t)
      else
        let loc = env.cur_loc in
        fun cv t ->
          let ptr = Value.as_ptr (cp t) in
          let i = Value.as_int (ci t) in
          let ptr = { ptr with Value.off = ptr.off + i } in
          let v = cv t in
          check_access t ~kind:Racecheck.Write ~loc ptr;
          checked_store t ~loc ptr v
  | Member (Var x, f) when not (is_reserved_var x) ->
      let s = slot_of env x "member assignment" in
      fun cv t ->
        let x', y', z' =
          match t.frame.(s) with
          | Value.Dim3 d -> d
          | Value.Int n -> (n, 1, 1)  (* int -> dim3 conversion *)
          | Value.Unit -> (1, 1, 1)  (* uninitialized dim3 defaults like CUDA *)
          | v -> Value.error "member assignment on non-dim3 %a" Value.pp v
        in
        let n = Value.as_int (cv t) in
        let d =
          match f with
          | "x" -> (n, y', z')
          | "y" -> (x', n, z')
          | "z" -> (x', y', n)
          | _ -> Value.error "dim3 has no member %S" f
        in
        t.frame.(s) <- Value.Dim3 d
  | Member (Index (p, i), f) ->
      let cp = compile_expr env p and ci = compile_expr env i in
      let sloc = env.cur_loc and check = env.cfg.check in
      fun cv t ->
        let ptr = Value.as_ptr (cp t) in
        let idx = Value.as_int (ci t) in
        let loc = { ptr with Value.off = ptr.Value.off + idx } in
        if check then check_access t ~kind:Racecheck.Write ~loc:sloc loc;
        let load m p =
          if check then checked_load t ~loc:sloc p else Memory.load m p
        in
        let x', y', z' =
          match load t.blk.mem loc with
          | Value.Dim3 d -> d
          | Value.Unit | Value.Int 0 -> (1, 1, 1)
          | v -> Value.error "member assignment on non-dim3 %a" Value.pp v
        in
        let n = Value.as_int (cv t) in
        let d =
          match f with
          | "x" -> (n, y', z')
          | "y" -> (x', n, z')
          | "z" -> (x', y', n)
          | _ -> Value.error "dim3 has no member %S" f
        in
        if check then checked_store t ~loc:sloc loc (Value.Dim3 d)
        else Memory.store t.blk.mem loc (Value.Dim3 d)
  | _ -> Value.error "in %s: invalid assignment target" env.fname

let default_value : ty -> Value.t = function
  | TInt -> Value.Int 0
  | TFloat -> Value.Float 0.0
  | TBool -> Value.Bool false
  | TDim3 -> Value.Dim3 (1, 1, 1)
  | TPtr _ | TVoid -> Value.Unit

let rec compile_stmts env (ss : stmt list) : cstmt =
  let compiled = Array.of_list (List.map (compile_stmt env) ss) in
  match Array.length compiled with
  | 0 -> fun _ -> ()
  | 1 -> compiled.(0)
  | 2 ->
      let a = compiled.(0) and b = compiled.(1) in
      fun t ->
        a t;
        b t
  | _ -> fun t -> Array.iter (fun c -> c t) compiled

and compile_stmt env (s : stmt) : cstmt =
  env.cur_loc <- s.sloc;
  let cfg = env.cfg in
  let tag = Metrics.index_of_tag s.stag in
  let charged cost k =
    if cost = 0 then k
    else
      let fc = float_of_int cost in
      fun t ->
        charge_tag t tag fc;
        k t
  in
  match s.sdesc with
  | Decl (ty, x, init) ->
      let cinit = Option.map (compile_expr env) init in
      let cost =
        match init with Some e -> expr_cost cfg e + cfg.arith_cost | None -> 0
      in
      let s = bind env x in
      let dv = default_value ty in
      charged cost (fun t ->
          t.frame.(s) <- (match cinit with Some c -> c t | None -> dv))
  | Decl_shared (ty, x, size) ->
      let csize = compile_expr env size in
      let id = env.shared_ids in
      env.shared_ids <- env.shared_ids + 1;
      let s = bind env x in
      let dv = default_value ty in
      charged cfg.arith_cost (fun t ->
          let ptr =
            match Hashtbl.find_opt t.blk.shared id with
            | Some p -> p
            | None ->
                let n = Value.as_int (csize t) in
                let p = Memory.alloc t.blk.mem n ~init:dv in
                Hashtbl.add t.blk.shared id p;
                p
          in
          t.frame.(s) <- Value.Ptr ptr)
  | Assign (lv, e) ->
      let ce = compile_expr env e in
      let store = compile_store env lv in
      let cost =
        expr_cost cfg e
        + (match lv with
          | Index _ -> cfg.mem_cost + cfg.arith_cost
          | Member (Index _, _) -> (2 * cfg.mem_cost) + cfg.arith_cost
          | _ -> cfg.arith_cost)
      in
      charged cost (store ce)
  | If (c, a, b) ->
      let cc = compile_expr env c in
      let ca = scoped env (fun () -> compile_stmts env a) in
      let cb = scoped env (fun () -> compile_stmts env b) in
      let cost = expr_cost cfg c + cfg.branch_cost in
      charged cost (fun t -> if Value.as_bool (cc t) then ca t else cb t)
  | While (c, body) ->
      let cc = compile_expr env c in
      let cbody = scoped env (fun () -> compile_stmts env body) in
      let iter_cost = float_of_int (expr_cost cfg c + cfg.branch_cost) in
      fun t ->
        (try
           while
             charge_tag t tag iter_cost;
             Value.as_bool (cc t)
           do
             try cbody t with Cont -> ()
           done
         with Brk -> ())
  | For (init, cond, step, body) ->
      scoped env (fun () ->
          let cinit = Option.map (compile_stmt env) init in
          let ccond = Option.map (compile_expr env) cond in
          let cstep = Option.map (compile_stmt env) step in
          let cbody = compile_stmts env body in
          let iter_cost =
            float_of_int
              ((match cond with Some c -> expr_cost cfg c | None -> 0)
              + cfg.branch_cost)
          in
          fun t ->
            (match cinit with Some c -> c t | None -> ());
            try
              let continue_ = ref true in
              while !continue_ do
                charge_tag t tag iter_cost;
                let go =
                  match ccond with
                  | Some c -> Value.as_bool (c t)
                  | None -> true
                in
                if go then begin
                  (try cbody t with Cont -> ());
                  match cstep with Some c -> c t | None -> ()
                end
                else continue_ := false
              done
            with Brk -> ())
  | Return None -> fun _ -> raise_notrace (Ret Value.Unit)
  | Return (Some e) ->
      let ce = compile_expr env e in
      let cost = expr_cost cfg e in
      charged cost (fun t -> raise_notrace (Ret (ce t)))
  | Expr_stmt e ->
      let ce = compile_expr env e in
      charged (expr_cost cfg e) (fun t -> ignore (ce t))
  | Launch l ->
      let cgrid = compile_expr env l.l_grid in
      let cblock = compile_expr env l.l_block in
      let cargs = Array.of_list (List.map (compile_expr env) l.l_args) in
      let cost =
        cfg.launch_issue_cost + expr_cost cfg l.l_grid
        + expr_cost cfg l.l_block
        + List.fold_left (fun acc a -> acc + expr_cost cfg a) 0 l.l_args
      in
      let kernel = l.l_kernel in
      charged cost (fun t ->
          let grid = Value.as_dim3 (cgrid t) in
          let block = Value.as_dim3 (cblock t) in
          let gx, gy, gz = grid in
          if gx <= 0 || gy <= 0 || gz <= 0 then
            Value.error "launch of %S with empty grid (%d,%d,%d)" kernel gx gy
              gz;
          if Value.dim3_total block > cfg.max_threads_per_block then
            Value.error "launch of %S with %d threads per block (max %d)"
              kernel (Value.dim3_total block) cfg.max_threads_per_block;
          let args = Array.to_list (Array.map (fun c -> c t) cargs) in
          t.blk.launches <-
            {
              lr_kernel = kernel;
              lr_grid = grid;
              lr_block = block;
              lr_args = args;
              lr_issue_cost = t.total;
              lr_from_host = t.blk.is_host_ctx;
            }
            :: t.blk.launches)
  | Sync ->
      charged cfg.sync_cost (fun t ->
          if not t.blk.is_host_ctx then Effect.perform E_sync)
  | Syncwarp ->
      charged cfg.sync_cost (fun t ->
          if not t.blk.is_host_ctx then
            ignore (Effect.perform (E_warp { wop = W_sync; warg = Value.Unit })))
  | Threadfence -> charged cfg.fence_cost (fun _ -> ())
  | Break -> fun _ -> raise_notrace Brk
  | Continue -> fun _ -> raise_notrace Cont

(* ------------------------------------------------------------------ *)
(* Program compilation                                                 *)
(* ------------------------------------------------------------------ *)

let has_serial_suffix name =
  let suffix = "_serial" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl
  &&
  (* "..._serial" or "..._serial_<n>" (fresh-name disambiguation) *)
  (String.sub name (nl - sl) sl = suffix
  ||
  match String.rindex_opt name '_' with
  | Some i when i >= sl ->
      String.sub name (i - sl) sl = suffix
      && int_of_string_opt (String.sub name (i + 1) (nl - i - 1)) <> None
  | _ -> false)

(** [compile cfg prog] compiles a typechecked program. Functions may refer
    to each other in any order. *)
let compile (cfg : Config.t) (prog : program) : cprog =
  Typecheck.check prog;
  let funcs = Hashtbl.create 16 in
  (* Phase 1: create records so calls/launches can resolve. *)
  List.iter
    (fun (f : func) ->
      Hashtbl.add funcs f.f_name
        {
          cf_name = f.f_name;
          cf_kind = f.f_kind;
          cf_nslots = 0;
          cf_nparams = List.length f.f_params;
          cf_contains_launch = Ast_util.contains_launch f.f_body;
          cf_is_serial = f.f_kind = Device && has_serial_suffix f.f_name;
          cf_safety = Blocksafe.analyze prog f;
          cf_static_work = Blocksafe.static_work cfg f;
          cf_body = (fun _ -> ());
          cf_followup = None;
        })
    prog;
  (* Phase 2: compile bodies. *)
  let compiled =
    List.map
      (fun (f : func) ->
        let env =
          {
            prog;
            funcs;
            slots = [];
            next_slot = 0;
            shared_ids = 0;
            cfg;
            fname = f.f_name;
            cur_loc = Loc.dummy;
          }
        in
        List.iter (fun p -> ignore (bind env p.p_name)) f.f_params;
        let body = compile_stmts env f.f_body in
        let followup =
          Option.map (fun ss -> compile_stmts env ss) f.f_host_followup
        in
        (f.f_name, body, followup, env.next_slot))
      prog
  in
  List.iter
    (fun (name, body, followup, nslots) ->
      (* Mutate in place: call sites compiled in phase 2 captured these
         records, so they must see the final body and slot count. *)
      let cf = Hashtbl.find funcs name in
      cf.cf_body <- body;
      cf.cf_followup <- followup;
      cf.cf_nslots <- nslots)
    compiled;
  { cp_funcs = funcs; cp_ast = prog }
