(** Closure-compiling interpreter for MiniCU device code.

    Each function compiles once into OCaml closures over a per-thread
    context; variable references resolve to frame slots at compile time, and
    each statement charges its cost (from {!Config}) to its tag as it
    executes. Threads suspend at barriers and warp collectives by performing
    the {!E_sync} / {!E_warp} effects, handled by {!Exec}. *)

type warp_op = W_scan_excl | W_sum | W_max | W_bcast of int | W_sync

type warp_req = { wop : warp_op; warg : Value.t }

type _ Effect.t += E_sync : unit Effect.t
type _ Effect.t += E_warp : warp_req -> Value.t Effect.t

(** A launch issued during block execution, to be scheduled by {!Sched}. *)
type launch_req = {
  lr_kernel : string;
  lr_grid : int * int * int;
  lr_block : int * int * int;
  lr_args : Value.t list;
  lr_issue_cost : float;
      (** The launching thread's accumulated cost at issue; the scheduler
          turns it into an issue-time offset within the block. *)
  lr_from_host : bool;
}

(** Per-block execution context. *)
type bctx = {
  mem : Memory.t;
  cfg : Config.t;
  metrics : Metrics.t;
  bidx : int * int * int;
  bdim : int * int * int;
  gdim : int * int * int;
  shared : (int, Value.ptr) Hashtbl.t;
  mutable launches : launch_req list;
  is_host_ctx : bool;
  racecheck : Racecheck.t option;
      (** Per-block dynamic race detector; [Some] only when [Config.check]
          is set and this is a device block. *)
}

(** Per-thread execution context. *)
type tctx = {
  mutable frame : Value.t array;
  costs : float array;
  mutable total : float;
  mutable default_idx : int;
  tidx : int * int * int;
  blk : bctx;
}

val charge_tag : tctx -> int -> float -> unit

exception Ret of Value.t

type cexpr = tctx -> Value.t
type cstmt = tctx -> unit

type cfunc = {
  cf_name : string;
  cf_kind : Minicu.Ast.func_kind;
  mutable cf_nslots : int;
  cf_nparams : int;
  cf_contains_launch : bool;
      (** Drives the per-thread launch-existence cost
          ({!Config.cdp_entry_cost}, the paper's Section VIII-D effect). *)
  cf_is_serial : bool;
      (** Generated thresholding serial entry points (names ending in
          ["_serial"]); calls count into
          {!Metrics.t.serialized_launches}. *)
  cf_safety : Blocksafe.summary;
      (** Cross-block independence proof for parallel dispatch
          ({!Blocksafe.analyze}). *)
  cf_static_work : float;
      (** Per-thread static work estimate ({!Blocksafe.static_work});
          gates and stratifies grid sampling. *)
  mutable cf_body : cstmt;
  mutable cf_followup : cstmt option;
}

type cprog = {
  cp_funcs : (string, cfunc) Hashtbl.t;
  cp_ast : Minicu.Ast.program;
}

val find_func_exn : cprog -> string -> cfunc

(** Static cost (cycles) of evaluating [e] once, assuming full evaluation. *)
val expr_cost : Config.t -> Minicu.Ast.expr -> int

(** Dynamic semantics of a binary operator on runtime values (C-style:
    float wins, pointers admit arithmetic). Shared with the bytecode
    engine ({!Bytecode}/{!Vm}) so both engines agree case-for-case.
    @raise Value.Runtime_error on division by zero or type mismatches. *)
val eval_binop : Minicu.Ast.binop -> Value.t -> Value.t -> Value.t

(** Recognizes generated thresholding serial entry points ("..._serial",
    "..._serial_<n>"); shared with the bytecode engine. *)
val has_serial_suffix : string -> bool

(** [compile cfg prog] typechecks and compiles a whole program; functions
    may reference each other in any order. *)
val compile : Config.t -> Minicu.Ast.program -> cprog
