(** Block executor: runs all threads of one thread block to completion.

    Each simulated thread is an OCaml-5 fiber. Threads run until they finish
    or suspend on a barrier ({!Compile.E_sync}) or a warp collective
    ({!Compile.E_warp}). The executor advances a block warp by warp:

    - within a warp, threads run in lane order until all live lanes have
      either reached the same warp collective (which is then evaluated and
      all lanes resumed) or reached the block barrier / finished;
    - when every warp has reached the barrier, all waiting threads are
      released and the next barrier epoch begins.

    Threads that return before a barrier are treated as having arrived at
    every subsequent barrier — the common CUDA idiom of early-exit guard
    threads; truly divergent barriers (some lanes at a warp collective while
    others sit at [__syncthreads]) are reported as errors.

    Cost accounting: each thread accumulates per-tag cycle counts; the warp
    cost for a tag is the maximum over its lanes (lockstep execution makes
    the straggler lane the warp's critical path — this is what penalizes the
    serializing parent threads of over-aggressive thresholding); the block
    cost is the sum over warps. *)

open Compile

type susp =
  | S_done
  | S_sync of (unit, susp) Effect.Deep.continuation
  | S_warp of warp_req * (Value.t, susp) Effect.Deep.continuation

type lane_state =
  | Not_started of (unit -> unit)
  | Suspended of susp

let run_fiber (f : unit -> unit) : susp =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> S_done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_sync ->
              Some (fun (k : (a, susp) Effect.Deep.continuation) -> S_sync k)
          | E_warp req -> Some (fun k -> S_warp (req, k))
          | _ -> None);
    }

(* Evaluate a warp collective over the suspended lanes. [reqs] holds
   (lane_index_within_warp, request) pairs; returns the per-lane results. *)
let eval_warp_op (reqs : (int * warp_req) list) : (int * Value.t) list =
  match reqs with
  | [] -> []
  | (_, first) :: _ -> (
      let same_op (r : warp_req) =
        match (first.wop, r.wop) with
        | W_scan_excl, W_scan_excl
        | W_sum, W_sum
        | W_max, W_max
        | W_sync, W_sync ->
            true
        | W_bcast a, W_bcast b -> a = b
        | _ -> false
      in
      if not (List.for_all (fun (_, r) -> same_op r) reqs) then
        Value.error
          "divergent warp collectives: all lanes must execute the same \
           collective";
      match first.wop with
      | W_sync -> List.map (fun (i, _) -> (i, Value.Unit)) reqs
      | W_sum ->
          let s =
            List.fold_left (fun acc (_, r) -> acc + Value.as_int r.warg) 0 reqs
          in
          List.map (fun (i, _) -> (i, Value.Int s)) reqs
      | W_max ->
          let m =
            List.fold_left
              (fun acc (_, r) -> max acc (Value.as_int r.warg))
              min_int reqs
          in
          List.map (fun (i, _) -> (i, Value.Int m)) reqs
      | W_scan_excl ->
          (* lanes are in lane order; exclusive prefix sum over live lanes *)
          let acc = ref 0 in
          List.map
            (fun (i, r) ->
              let before = !acc in
              acc := !acc + Value.as_int r.warg;
              (i, Value.Int before))
            reqs
      | W_bcast lane ->
          let v =
            match List.assoc_opt lane (List.map (fun (i, r) -> (i, r.warg)) reqs) with
            | Some v -> v
            | None ->
                Value.error "warp_bcast from lane %d, which is not live" lane
          in
          List.map (fun (i, _) -> (i, v)) reqs)

type result = {
  r_launches : launch_req list;  (** In issue order. *)
  r_compute_cycles : float;
      (** Parallelism-scaled compute cycles: block duration excluding
          scheduling overhead. *)
  r_tag_cycles : float array;  (** Parallelism-scaled cycles per tag index. *)
}

(** [run_block cprog kernel ~args ~gdim ~bdim ~bidx ~mem ~cfg ~metrics
    ~default_idx] executes one block of [kernel] and returns its cost and
    the launches it issued. Side effects on [mem] happen immediately. *)
let run_block (cprog : cprog) (kernel : cfunc) ~(args : Value.t list)
    ~(gdim : int * int * int) ~(bdim : int * int * int)
    ~(bidx : int * int * int) ~(mem : Memory.t) ~(cfg : Config.t)
    ~(metrics : Metrics.t) ~(default_idx : int) : result =
  ignore cprog;
  let bx, by, bz = bdim in
  let nthreads = bx * by * bz in
  if nthreads <= 0 then Value.error "empty block dimension";
  let ws = cfg.warp_size in
  let nwarps = (nthreads + ws - 1) / ws in
  let racecheck =
    if cfg.check then Some (Racecheck.create ~warp_size:ws ~nwarps) else None
  in
  let blk =
    {
      mem;
      cfg;
      metrics;
      bidx;
      bdim;
      gdim;
      shared = Hashtbl.create 4;
      launches = [];
      is_host_ctx = false;
      racecheck;
    }
  in
  let arg_values = Array.of_list args in
  if Array.length arg_values <> kernel.cf_nparams then
    Value.error "launch of %S: expected %d arguments, got %d" kernel.cf_name
      kernel.cf_nparams (Array.length arg_values);
  let entry_cost =
    if kernel.cf_contains_launch then float_of_int cfg.cdp_entry_cost else 0.0
  in
  let threads =
    Array.init nthreads (fun i ->
        let tx = i mod bx and ty = i / bx mod by and tz = i / (bx * by) in
        let frame = Array.make (max kernel.cf_nslots 1) Value.Unit in
        Array.blit arg_values 0 frame 0 (Array.length arg_values);
        {
          frame;
          costs = Array.make Metrics.num_tags 0.0;
          total = 0.0;
          default_idx;
          tidx = (tx, ty, tz);
          blk;
        })
  in
  let states =
    Array.map
      (fun t ->
        Not_started
          (fun () ->
            if entry_cost > 0.0 then charge_tag t Metrics.tag_default entry_cost;
            try kernel.cf_body t with Ret _ -> ()))
      threads
  in
  (* Advance one warp until every lane is S_done or S_sync. *)
  let rec advance_warp w =
    let lo = w * ws and hi = min ((w + 1) * ws) nthreads in
    for i = lo to hi - 1 do
      match states.(i) with
      | Not_started f -> states.(i) <- Suspended (run_fiber f)
      | Suspended _ -> ()
    done;
    (* collect warp-collective suspensions *)
    let warp_reqs = ref [] in
    for i = hi - 1 downto lo do
      match states.(i) with
      | Suspended (S_warp (req, _)) -> warp_reqs := (i, req) :: !warp_reqs
      | _ -> ()
    done;
    match !warp_reqs with
    | [] -> ()
    | reqs ->
        (* every live lane must be at the collective *)
        for i = lo to hi - 1 do
          match states.(i) with
          | Suspended (S_warp _) | Suspended S_done -> ()
          | Suspended (S_sync _) ->
              Value.error
                "lane %d reached __syncthreads while its warp executes a \
                 warp collective"
                (i - lo)
          | Not_started _ -> assert false
        done;
        let results = eval_warp_op reqs in
        (* the collective orders this warp's accesses across it: new warp
           epoch before the lanes resume (continue runs them immediately) *)
        (match blk.racecheck with
        | Some rc -> Racecheck.bump_wepoch rc w
        | None -> ());
        List.iter
          (fun (i, v) ->
            match states.(i) with
            | Suspended (S_warp (_, k)) ->
                states.(i) <- Suspended (Effect.Deep.continue k v)
            | _ -> assert false)
          results;
        advance_warp w
  in
  let all_done () =
    Array.for_all
      (function Suspended S_done -> true | _ -> false)
      states
  in
  let epochs = ref 0 in
  let rec block_loop () =
    incr epochs;
    if !epochs > 1_000_000 then
      Value.error "block executor: too many barrier epochs (livelock?)";
    for w = 0 to nwarps - 1 do
      advance_warp w
    done;
    if not (all_done ()) then begin
      (* all remaining threads are at the barrier: release them; the new
         barrier epoch starts before any continuation runs *)
      (match blk.racecheck with
      | Some rc -> Racecheck.bump_epoch rc
      | None -> ());
      let waiting = ref 0 in
      Array.iteri
        (fun i st ->
          match st with
          | Suspended (S_sync k) ->
              incr waiting;
              states.(i) <- Suspended (Effect.Deep.continue k ())
          | _ -> ())
        states;
      if !waiting = 0 then
        Value.error "block executor: threads neither done nor at a barrier";
      block_loop ()
    end
  in
  block_loop ();
  (match blk.racecheck with
  | Some rc -> Racecheck.commit rc ~kernel:kernel.cf_name ~bidx metrics
  | None -> ());
  (* free shared-memory buffers *)
  Hashtbl.iter (fun _ p -> Memory.free mem p) blk.shared;
  (* cost aggregation: per-warp, per-tag maxima *)
  let tag_cycles = Array.make Metrics.num_tags 0.0 in
  for w = 0 to nwarps - 1 do
    let lo = w * ws and hi = min ((w + 1) * ws) nthreads in
    for tag = 0 to Metrics.num_tags - 1 do
      let m = ref 0.0 in
      for i = lo to hi - 1 do
        let c = threads.(i).costs.(tag) in
        if c > !m then m := c
      done;
      tag_cycles.(tag) <- tag_cycles.(tag) +. !m
    done
  done;
  (* resolve the default tag into parent/child *)
  tag_cycles.(default_idx) <-
    tag_cycles.(default_idx) +. tag_cycles.(Metrics.tag_default);
  tag_cycles.(Metrics.tag_default) <- 0.0;
  let par = float_of_int cfg.sm_warp_parallelism in
  let scaled = Array.map (fun c -> c /. par) tag_cycles in
  let compute = Array.fold_left ( +. ) 0.0 scaled in
  for tag = 1 to Metrics.num_tags - 1 do
    if scaled.(tag) > 0.0 then Metrics.charge metrics tag scaled.(tag)
  done;
  metrics.blocks_executed <- metrics.blocks_executed + 1;
  metrics.threads_executed <- metrics.threads_executed + nthreads;
  {
    r_launches = List.rev blk.launches;
    r_compute_cycles = compute;
    r_tag_cycles = scaled;
  }

(** [run_host_stmts] executes host-followup statements (grid-granularity
    aggregation) in a single pseudo-thread with host launch semantics.
    Returns the launches issued. No cost is charged: the host CPU is not the
    simulated device (the paper's point is precisely that grid-granularity
    aggregation spends host time; we account for it via
    {!Config.host_launch_latency} in the scheduler). *)
let run_host_stmts (kernel : cfunc) (followup : cstmt) ~(args : Value.t list)
    ~(grid : int * int * int) ~(block : int * int * int) ~(mem : Memory.t)
    ~(cfg : Config.t) ~(metrics : Metrics.t) : launch_req list =
  let blk =
    {
      mem;
      cfg;
      metrics;
      bidx = (0, 0, 0);
      bdim = block;
      gdim = grid;
      shared = Hashtbl.create 1;
      launches = [];
      is_host_ctx = true;
      racecheck = None;
    }
  in
  let frame = Array.make (max kernel.cf_nslots 1) Value.Unit in
  List.iteri (fun i v -> if i < Array.length frame then frame.(i) <- v) args;
  let t =
    {
      frame;
      costs = Array.make Metrics.num_tags 0.0;
      total = 0.0;
      default_idx = Metrics.tag_parent;
      tidx = (0, 0, 0);
      blk;
    }
  in
  (try followup t with Ret _ -> ());
  List.rev blk.launches
