(** Simulated device global memory: a table of buffers of {!Value.t}
    elements. Out-of-bounds and use-after-free accesses raise
    {!Value.Runtime_error}, so the simulator doubles as a memory checker for
    transformed code.

    Large [Int]/[Float]-initialized buffers are stored unboxed ([int array]
    / [float array]) with a spill table for the rare mismatched-type store;
    observable behavior is identical to the boxed representation (see the
    implementation notes).

    Thread-safety: allocation, [free] and the bulk accessors belong to the
    single domain driving the owning {!Device.t}. [load]/[store] may
    additionally be called from parallel block batches ({!Sched}), which
    only ever race at provably-disjoint offsets; same-element cross-domain
    traffic must go through {!atomic_rmw}. Distinct [t] values are fully
    independent. *)

type t

val create : unit -> t

(** [alloc t n ~init] allocates [n] elements initialized to [init].
    @raise Value.Runtime_error if [n < 0]. *)
val alloc : t -> int -> init:Value.t -> Value.ptr

(** [free t p] releases [p]'s buffer. [p] must be the base pointer of a
    live buffer. *)
val free : t -> Value.ptr -> unit

val load : t -> Value.ptr -> Value.t
val store : t -> Value.ptr -> Value.t -> unit

(** [atomic_rmw t p f] atomically replaces the element at [p] with
    [f old], returning [old]. The one primitive that may target the same
    element from several domains at once — parallel block batches funnel
    commutative-reduction atomics through it; serial execution shares the
    same code path (uncontended mutex). *)
val atomic_rmw : t -> Value.ptr -> (Value.t -> Value.t) -> Value.t

(** Element count of the buffer [p] points into. *)
val size : t -> Value.ptr -> int

(** Total elements ever allocated (high-water accounting for stats). *)
val allocated_elems : t -> int

(** Number of buffers ever allocated (live or freed); buffer ids are dense
    in [0 .. buffer_count - 1], in allocation order. *)
val buffer_count : t -> int

(** [dump t ~first] — value-level copies of the first [first] buffers, in
    allocation order. The differential-testing oracle ([lib/difftest])
    snapshots driver-allocated buffers this way and compares them
    bit-for-bit across transformed program variants.
    @raise Value.Runtime_error if [first] exceeds {!buffer_count}. *)
val dump : t -> first:int -> Value.t array list

(** {1 Bulk host-side accessors} (no cost accounting; drivers use these) *)

val write_array : t -> Value.ptr -> Value.t array -> unit
val read_array : t -> Value.ptr -> int -> Value.t array
val write_ints : t -> Value.ptr -> int array -> unit
val read_ints : t -> Value.ptr -> int -> int array
val write_floats : t -> Value.ptr -> float array -> unit
val read_floats : t -> Value.ptr -> int -> float array
