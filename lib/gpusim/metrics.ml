(** Execution metrics collected by the simulator.

    Compute time is attributed to the categories of the paper's Figure 10
    breakdown via the statement tags that the transformation passes attach
    (see {!Minicu.Ast.tag}); launch overhead is measured by the launch
    subsystem in {!Sched}. *)

(* Tag indices used by the compiled code; index 0 is "default" and is
   resolved per-grid to parent or child at execution time. *)
let tag_default = 0
let tag_parent = 1
let tag_child = 2
let tag_agg = 3
let tag_disagg = 4
let num_tags = 5

let index_of_tag : Minicu.Ast.tag -> int = function
  | Tag_none -> tag_default
  | Tag_parent -> tag_parent
  | Tag_child -> tag_child
  | Tag_agg -> tag_agg
  | Tag_disagg -> tag_disagg

type breakdown = {
  mutable parent_cycles : float;  (** Parent work (per-warp, parallelism-scaled). *)
  mutable child_cycles : float;  (** Child work. *)
  mutable agg_cycles : float;  (** Aggregation logic (Fig. 7, parent side). *)
  mutable disagg_cycles : float;  (** Disaggregation logic (Fig. 7, child side). *)
  mutable launch_cycles : float;
      (** Launch-subsystem busy time: queueing plus service for every grid
          launch (the congestion component). *)
}

type t = {
  breakdown : breakdown;
  mutable makespan : float;  (** Simulated wall-clock: device-idle time. *)
  mutable grids_launched : int;
  mutable device_launches : int;
  mutable host_launches : int;
  mutable blocks_executed : int;
  mutable threads_executed : int;
  mutable max_pending_launches : int;
  mutable serialized_launches : int;
      (** Child grids serialized in their parent thread by thresholding.
          Incremented by the [child_serial] device functions via a counter
          builtin; 0 when thresholding is off. *)
  mutable races_detected : int;
      (** Intra-block data-race conflicts found by {!Racecheck}; always 0
          unless [Config.check] is set. *)
  mutable oob_detected : int;
      (** Out-of-bounds accesses observed under [Config.check] before the
          run aborted. *)
  mutable race_reports : string list;
      (** Rendered race reports, deduplicated per address and capped. *)
}

let create () =
  {
    breakdown =
      {
        parent_cycles = 0.0;
        child_cycles = 0.0;
        agg_cycles = 0.0;
        disagg_cycles = 0.0;
        launch_cycles = 0.0;
      };
    makespan = 0.0;
    grids_launched = 0;
    device_launches = 0;
    host_launches = 0;
    blocks_executed = 0;
    threads_executed = 0;
    max_pending_launches = 0;
    serialized_launches = 0;
    races_detected = 0;
    oob_detected = 0;
    race_reports = [];
  }

(** [charge m idx cycles] adds parallelism-scaled compute cycles to the
    breakdown category [idx] (one of the [tag_*] indices; never
    [tag_default], which callers must resolve first). *)
let charge m idx cycles =
  let b = m.breakdown in
  if idx = tag_parent then b.parent_cycles <- b.parent_cycles +. cycles
  else if idx = tag_child then b.child_cycles <- b.child_cycles +. cycles
  else if idx = tag_agg then b.agg_cycles <- b.agg_cycles +. cycles
  else if idx = tag_disagg then b.disagg_cycles <- b.disagg_cycles +. cycles
  else invalid_arg "Metrics.charge: unresolved default tag"

let total_compute m =
  let b = m.breakdown in
  b.parent_cycles +. b.child_cycles +. b.agg_cycles +. b.disagg_cycles

let pp ppf m =
  let b = m.breakdown in
  Fmt.pf ppf
    "@[<v>makespan        %12.0f cycles@,\
     parent work     %12.0f@,\
     child work      %12.0f@,\
     aggregation     %12.0f@,\
     disaggregation  %12.0f@,\
     launch busy     %12.0f@,\
     grids launched  %8d (device %d, host %d)@,\
     blocks          %8d  threads %d@,\
     max pending     %8d  serialized launches %d%a@]"
    m.makespan b.parent_cycles b.child_cycles b.agg_cycles b.disagg_cycles
    b.launch_cycles m.grids_launched m.device_launches m.host_launches
    m.blocks_executed m.threads_executed m.max_pending_launches
    m.serialized_launches
    (fun ppf m ->
      if m.races_detected > 0 || m.oob_detected > 0 then begin
        Fmt.pf ppf "@,races detected  %8d  out-of-bounds %d" m.races_detected
          m.oob_detected;
        List.iter (fun r -> Fmt.pf ppf "@,  %s" r) m.race_reports
      end)
    m
