(** Execution metrics collected by the simulator.

    Compute time is attributed to the categories of the paper's Figure 10
    breakdown via the statement tags that the transformation passes attach
    (see {!Minicu.Ast.tag}); launch overhead is measured by the launch
    subsystem in {!Sched}. *)

(* Tag indices used by the compiled code; index 0 is "default" and is
   resolved per-grid to parent or child at execution time. *)
let tag_default = 0
let tag_parent = 1
let tag_child = 2
let tag_agg = 3
let tag_disagg = 4
let num_tags = 5

let index_of_tag : Minicu.Ast.tag -> int = function
  | Tag_none -> tag_default
  | Tag_parent -> tag_parent
  | Tag_child -> tag_child
  | Tag_agg -> tag_agg
  | Tag_disagg -> tag_disagg

type breakdown = {
  mutable parent_cycles : float;  (** Parent work (per-warp, parallelism-scaled). *)
  mutable child_cycles : float;  (** Child work. *)
  mutable agg_cycles : float;  (** Aggregation logic (Fig. 7, parent side). *)
  mutable disagg_cycles : float;  (** Disaggregation logic (Fig. 7, child side). *)
  mutable launch_cycles : float;
      (** Launch-subsystem busy time: queueing plus service for every grid
          launch (the congestion component). *)
}

(* Accounting for stratified grid/launch sampling (see Sched): how much was
   skipped-and-extrapolated, and the accumulated stratified variance from
   which the reported error bound derives. *)
type sampling_stats = {
  mutable sampled_grids : int;
  mutable sampled_blocks : int;
  mutable skipped_blocks : int;
  mutable sampled_launches : int;
  mutable skipped_launches : int;
  mutable est_total : float;
  mutable est_variance : float;
}

type t = {
  breakdown : breakdown;
  sampling : sampling_stats;
  mutable makespan : float;  (** Simulated wall-clock: device-idle time. *)
  mutable grids_launched : int;
  mutable device_launches : int;
  mutable host_launches : int;
  mutable blocks_executed : int;
  mutable threads_executed : int;
  mutable max_pending_launches : int;
  mutable serialized_launches : int;
      (** Child grids serialized in their parent thread by thresholding.
          Incremented by the [child_serial] device functions via a counter
          builtin; 0 when thresholding is off. *)
  mutable races_detected : int;
      (** Intra-block data-race conflicts found by {!Racecheck}; always 0
          unless [Config.check] is set. *)
  mutable oob_detected : int;
      (** Out-of-bounds accesses observed under [Config.check] before the
          run aborted. *)
  mutable race_reports : string list;
      (** Rendered race reports, deduplicated per address and capped. *)
}

let create () =
  {
    breakdown =
      {
        parent_cycles = 0.0;
        child_cycles = 0.0;
        agg_cycles = 0.0;
        disagg_cycles = 0.0;
        launch_cycles = 0.0;
      };
    sampling =
      {
        sampled_grids = 0;
        sampled_blocks = 0;
        skipped_blocks = 0;
        sampled_launches = 0;
        skipped_launches = 0;
        est_total = 0.0;
        est_variance = 0.0;
      };
    makespan = 0.0;
    grids_launched = 0;
    device_launches = 0;
    host_launches = 0;
    blocks_executed = 0;
    threads_executed = 0;
    max_pending_launches = 0;
    serialized_launches = 0;
    races_detected = 0;
    oob_detected = 0;
    race_reports = [];
  }

(** [charge m idx cycles] adds parallelism-scaled compute cycles to the
    breakdown category [idx] (one of the [tag_*] indices; never
    [tag_default], which callers must resolve first). *)
let charge m idx cycles =
  let b = m.breakdown in
  if idx = tag_parent then b.parent_cycles <- b.parent_cycles +. cycles
  else if idx = tag_child then b.child_cycles <- b.child_cycles +. cycles
  else if idx = tag_agg then b.agg_cycles <- b.agg_cycles +. cycles
  else if idx = tag_disagg then b.disagg_cycles <- b.disagg_cycles +. cycles
  else invalid_arg "Metrics.charge: unresolved default tag"

let total_compute m =
  let b = m.breakdown in
  b.parent_cycles +. b.child_cycles +. b.agg_cycles +. b.disagg_cycles

(** [merge ~into ~weight from] folds block-level metrics accumulated in a
    private [from] (one block executed into a fresh [create ()]) into the
    device's shared record, scaled by the block's sampling weight.

    At [weight = 1.0] this is {e bit-identical} to having executed the block
    directly against [into]: the engines charge each breakdown category at
    most once per block with the category starting at [0.0], and
    [x +. (0.0 +. v) = x +. v] and [x +. 0.0 = x] exactly (the operands are
    never [-0.0]). That identity is what lets parallel batches commit
    per-block results in deterministic order with byte-identical dumps and
    metrics at any [Config.block_jobs]. *)
let merge ~into ~weight (from : t) =
  let b = into.breakdown and f = from.breakdown in
  if weight = 1.0 then begin
    b.parent_cycles <- b.parent_cycles +. f.parent_cycles;
    b.child_cycles <- b.child_cycles +. f.child_cycles;
    b.agg_cycles <- b.agg_cycles +. f.agg_cycles;
    b.disagg_cycles <- b.disagg_cycles +. f.disagg_cycles;
    b.launch_cycles <- b.launch_cycles +. f.launch_cycles;
    into.blocks_executed <- into.blocks_executed + from.blocks_executed;
    into.threads_executed <- into.threads_executed + from.threads_executed;
    into.serialized_launches <-
      into.serialized_launches + from.serialized_launches
  end
  else begin
    (* Weighted extrapolation: each simulated block stands for [weight]
       blocks of its stratum. Counters round to stay integral. *)
    let scale x = int_of_float (Float.round (weight *. float_of_int x)) in
    b.parent_cycles <- b.parent_cycles +. (weight *. f.parent_cycles);
    b.child_cycles <- b.child_cycles +. (weight *. f.child_cycles);
    b.agg_cycles <- b.agg_cycles +. (weight *. f.agg_cycles);
    b.disagg_cycles <- b.disagg_cycles +. (weight *. f.disagg_cycles);
    b.launch_cycles <- b.launch_cycles +. (weight *. f.launch_cycles);
    into.blocks_executed <- into.blocks_executed + scale from.blocks_executed;
    into.threads_executed <-
      into.threads_executed + scale from.threads_executed;
    into.serialized_launches <-
      into.serialized_launches + scale from.serialized_launches
  end;
  (* Sanitizer results are never scaled: they are observations, not
     estimates (and parallel/sampled runs force [check = false] anyway). *)
  into.races_detected <- into.races_detected + from.races_detected;
  into.oob_detected <- into.oob_detected + from.oob_detected;
  if from.race_reports <> [] then
    into.race_reports <- from.race_reports @ into.race_reports

(** Whether any sampling (block or launch) actually triggered. *)
let sampled m =
  m.sampling.sampled_grids > 0 || m.sampling.skipped_launches > 0

(** Relative standard error of the extrapolated compute total, from the
    accumulated stratified variance: [sqrt(Var)/total]. [0.0] when nothing
    was sampled. *)
let rel_std_error m =
  let s = m.sampling in
  if s.est_total > 0.0 && s.est_variance > 0.0 then
    sqrt s.est_variance /. s.est_total
  else 0.0

let pp ppf m =
  let b = m.breakdown in
  Fmt.pf ppf
    "@[<v>makespan        %12.0f cycles@,\
     parent work     %12.0f@,\
     child work      %12.0f@,\
     aggregation     %12.0f@,\
     disaggregation  %12.0f@,\
     launch busy     %12.0f@,\
     grids launched  %8d (device %d, host %d)@,\
     blocks          %8d  threads %d@,\
     max pending     %8d  serialized launches %d%a@]"
    m.makespan b.parent_cycles b.child_cycles b.agg_cycles b.disagg_cycles
    b.launch_cycles m.grids_launched m.device_launches m.host_launches
    m.blocks_executed m.threads_executed m.max_pending_launches
    m.serialized_launches
    (fun ppf m ->
      if m.races_detected > 0 || m.oob_detected > 0 then begin
        Fmt.pf ppf "@,races detected  %8d  out-of-bounds %d" m.races_detected
          m.oob_detected;
        List.iter (fun r -> Fmt.pf ppf "@,  %s" r) m.race_reports
      end)
    m
