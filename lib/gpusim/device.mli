(** Host-side device API — the MiniCU analogue of the CUDA runtime.

    {[
      let dev = Device.create () in
      Device.load_program dev prog;
      let d_data = Device.alloc_ints dev data in
      Device.launch dev ~kernel:"parent" ~grid:(blocks, 1, 1)
        ~block:(256, 1, 1) ~args:[ Ptr d_data; Int n ];
      let elapsed_cycles = Device.sync dev in
      let result = Device.read_ints dev d_data n in
      ...
    ]}

    {b Domain safety.} A device owns all of its mutable simulation state —
    its {!Memory.t}, {!Metrics.t}, scheduler and trace buffer — and there
    is no global mutable state in [gpusim]. Distinct [t] values may
    therefore be driven from distinct domains concurrently (this is how
    [Harness.Pool] jobs run), but a single [t] must only ever be used by
    one domain at a time. *)

type dim3 = int * int * int

(** Runtime-allocated trailing parameter of a transformed kernel: the
    aggregation pass appends buffer parameters to parent kernels (the
    "pre-allocated memory buffer" of the paper's Fig. 7); the runtime
    allocates each one, zero-filled, sized by [ap_elems] from the actual
    launch configuration, and appends the pointers — so host drivers keep
    launching with the original arguments. *)
type auto_param = {
  ap_name : string;
  ap_elems : grid:dim3 -> block:dim3 -> int;
}

type t

val create : ?cfg:Config.t -> unit -> t
val metrics : t -> Metrics.t
val memory : t -> Memory.t
val config : t -> Config.t

(** [load_program t prog ~auto_params] typechecks and compiles [prog] onto
    the device. *)
val load_program :
  ?auto_params:(string * auto_param list) list ->
  t ->
  Minicu.Ast.program ->
  unit

(** {1 Memory management} *)

val alloc : t -> int -> init:Value.t -> Value.ptr
val alloc_ints : t -> int array -> Value.ptr
val alloc_int_zeros : t -> int -> Value.ptr
val alloc_floats : t -> float array -> Value.ptr
val alloc_float_zeros : t -> int -> Value.ptr
val read_ints : t -> Value.ptr -> int -> int array
val read_floats : t -> Value.ptr -> int -> float array
val write_ints : t -> Value.ptr -> int array -> unit
val write_floats : t -> Value.ptr -> float array -> unit
val free : t -> Value.ptr -> unit

(** {1 Deterministic-replay hooks}

    The simulator is fully deterministic: a (program, workload, config)
    triple always produces the same memory image and metrics. These let a
    checker snapshot the driver-allocated buffers (ids are dense, in
    allocation order) and compare them bit-for-bit across compiled variants
    of the same program — see [lib/difftest]. *)

(** Buffers ever allocated on this device (driver and kernel allocations). *)
val buffer_count : t -> int

(** [dump_memory t ~first] — copies of the first [first] buffers, in
    allocation order (see {!Memory.dump}). *)
val dump_memory : t -> first:int -> Value.t array list

(** {1 Kernel launch} *)

(** [launch t ~kernel ~grid ~block ~args] issues a host-side launch,
    asynchronously (work runs at the next {!sync}). [role] selects how
    untagged kernel time is attributed: [`Parent] (default) or [`Child].
    @raise Value.Runtime_error on unknown kernels, argument-count mismatch,
    or invalid configurations. *)
val launch :
  ?role:[ `Parent | `Child ] ->
  t ->
  kernel:string ->
  grid:dim3 ->
  block:dim3 ->
  args:Value.t list ->
  unit

(** Drain all pending work; returns the simulated clock (cycles). *)
val sync : t -> float

(** Parallel-dispatch occupancy so far: (batches of >= 2 provably-safe
    blocks executed concurrently on worker domains, blocks executed in
    them). Both zero unless [Config.block_jobs] > 1. Host-side accounting
    only — enabling parallel dispatch never changes simulated results. *)
val par_stats : t -> int * int

(** Current simulated time. Monotonic across launches and syncs. *)
val time : t -> float

(** {1 Execution tracing} (off by default; see {!Gpusim.Trace}) *)

val enable_trace : t -> unit
val trace_events : t -> Trace.event list
val clear_trace : t -> unit

(** [elapsed t f] runs [f ()] followed by a {!sync}; returns the simulated
    cycles taken. *)
val elapsed : t -> (unit -> unit) -> float
