(** Discrete-event grid/block scheduler.

    Blocks queue onto the earliest-free SM (approximating the hardware FIFO
    block scheduler). Every device-side launch is serviced by a single
    grid-management unit at one launch per
    {!Config.launch_service_interval} cycles — queueing behind it is the
    launch congestion the paper identifies. Host launches pay
    {!Config.host_launch_latency} and bypass that queue.

    The device hosts any number of {e streams} (tenants): each has its own
    loaded program, grid-id namespace and {!Metrics.t}, while SMs, the
    launch queue, memory and the clock are shared. The default stream
    (id 0) shares the device-wide metrics record, so the single-program
    {!Device} API is exactly the one-stream special case. *)

type dim3 = int * int * int

(** A loaded program / resolved kernel under either execution engine
    ({!Config.engine}); {!Device.load_program} picks the variant. *)
type prog = P_closure of Compile.cprog | P_bytecode of Bytecode.prog

type kernel = K_closure of Compile.cfunc | K_bytecode of Bytecode.func

val kernel_name : kernel -> string
val kernel_nparams : kernel -> int

(** One host stream / tenant. Every launch, block and compute cycle of the
    stream's grids is charged to [st_metrics]; grid ids are dense per
    stream. *)
type stream = {
  st_id : int;  (** Tenant id; 0 is the device's default stream. *)
  mutable st_prog : prog option;
  st_metrics : Metrics.t;
  mutable st_next_grid_id : int;
}

(** One unit of tenant work: a root grid plus all descendant grids it
    spawns (device children, host followups). [j_open_grids] counts
    launched-but-unfinished grids; when it returns to 0 the job is done
    and [j_finish] is the last finish time over all its grids. *)
type job = {
  j_id : int;
  j_tenant : int;
  mutable j_open_grids : int;
  mutable j_finish : float;
}

val make_job : tenant:int -> id:int -> job

type grid = {
  g_id : int;
  g_stream : stream;
  g_job : job option;
  g_kernel : kernel;
  g_grid : dim3;
  g_block : dim3;
  g_args : Value.t list;
  g_default_idx : int;
  mutable g_blocks_left : int;
  mutable g_last_finish : float;
}

type event = Block_ready of grid * dim3

type t = {
  cfg : Config.t;
  mem : Memory.t;
  metrics : Metrics.t;  (** Device-wide; same record as the default stream's. *)
  events : event Event_queue.t;
  sms : float array;
  mutable launch_q_free : float;
  mutable clock : float;
  default_stream : stream;
  mutable next_stream_id : int;
  trace : Trace.t;  (** Off by default; see {!Trace.enable}. *)
  scratch : Vm.scratch;
      (** Reusable per-block thread arena for the bytecode engine. *)
}

val create : Config.t -> Memory.t -> Metrics.t -> t

(** The always-present stream 0, whose [st_metrics] is the device-wide
    record. *)
val default_stream : t -> stream

(** [new_stream t] registers a fresh tenant stream (dense ids from 1) with
    its own metrics record and grid-id namespace. *)
val new_stream : t -> stream

(** [load_stream t s prog] compiles [prog] under {!Config.engine} and loads
    it onto stream [s]. Streams are independent: loading one does not
    disturb another. *)
val load_stream : t -> stream -> Minicu.Ast.program -> unit

(** Enqueue all blocks of a grid, schedulable from [ready]. [issue] (for
    trace queue-wait accounting) defaults to [ready]; [job] attaches the
    grid — and transitively every grid it spawns — to a job's open-grid
    accounting. *)
val launch_grid :
  ?issue:float ->
  ?from_host:bool ->
  ?job:job ->
  t ->
  stream ->
  kernel:kernel ->
  grid:dim3 ->
  block:dim3 ->
  args:Value.t list ->
  ready:float ->
  default_idx:int ->
  unit

(** Route a host-side launch; returns when the grid becomes schedulable.
    Latency is charged to the issuing stream's metrics. *)
val process_host_launch : t -> stream -> issue:float -> float

(** Route a device-side launch through the (shared) grid-management unit;
    returns when the child grid becomes schedulable. Also tracks the
    issuing stream's {!Metrics.t.max_pending_launches}: the number of
    launches queued {e ahead} of this one at issue time — under tenancy
    that includes other tenants' launches (the launch being serviced is
    not pending behind itself: a burst of [n] simultaneous launches peaks
    at [n - 1]). *)
val process_device_launch : t -> stream -> issue:float -> float

(** Resolve a kernel by name in the stream's loaded program.
    @raise Value.Runtime_error if it is missing or not [__global__]. *)
val resolve_kernel : stream -> string -> kernel

(** Process the single earliest block event: dispatch it onto the
    earliest-free SM, execute it, issue any launches it made, and complete
    its grid (followups, job accounting) if it was the last block.
    External event loops ({e lib/tenancy}) interleave [step] with host
    decisions; {!run_to_idle} is the drain-everything special case.
    @raise Invalid_argument when no events are pending. *)
val step : t -> unit

(** Earliest pending block-event time, if any. *)
val next_event_time : t -> float option

val has_pending_events : t -> bool

(** Drain all pending work; returns (and records) the simulated clock. *)
val run_to_idle : t -> float
