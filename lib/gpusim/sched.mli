(** Discrete-event grid/block scheduler.

    Blocks queue onto the earliest-free SM (approximating the hardware FIFO
    block scheduler). Every device-side launch is serviced by a single
    grid-management unit at one launch per
    {!Config.launch_service_interval} cycles — queueing behind it is the
    launch congestion the paper identifies. Host launches pay
    {!Config.host_launch_latency} and bypass that queue. *)

type dim3 = int * int * int

(** A loaded program / resolved kernel under either execution engine
    ({!Config.engine}); {!Device.load_program} picks the variant. *)
type prog = P_closure of Compile.cprog | P_bytecode of Bytecode.prog

type kernel = K_closure of Compile.cfunc | K_bytecode of Bytecode.func

val kernel_name : kernel -> string
val kernel_nparams : kernel -> int

type grid = {
  g_id : int;
  g_kernel : kernel;
  g_grid : dim3;
  g_block : dim3;
  g_args : Value.t list;
  g_default_idx : int;
  mutable g_blocks_left : int;
  mutable g_last_finish : float;
}

type event = Block_ready of grid * dim3

type t = {
  cfg : Config.t;
  mem : Memory.t;
  metrics : Metrics.t;
  mutable prog : prog option;
  events : event Event_queue.t;
  sms : float array;
  mutable launch_q_free : float;
  mutable clock : float;
  mutable next_grid_id : int;
  trace : Trace.t;  (** Off by default; see {!Trace.enable}. *)
  scratch : Vm.scratch;
      (** Reusable per-block thread arena for the bytecode engine. *)
}

val create : Config.t -> Memory.t -> Metrics.t -> t

(** Enqueue all blocks of a grid, schedulable from [ready]. [issue] (for
    trace queue-wait accounting) defaults to [ready]. *)
val launch_grid :
  ?issue:float ->
  ?from_host:bool ->
  t ->
  kernel:kernel ->
  grid:dim3 ->
  block:dim3 ->
  args:Value.t list ->
  ready:float ->
  default_idx:int ->
  unit

(** Route a host-side launch; returns when the grid becomes schedulable. *)
val process_host_launch : t -> issue:float -> float

(** Route a device-side launch through the grid-management unit; returns
    when the child grid becomes schedulable. Also tracks
    {!Metrics.t.max_pending_launches}: the number of launches queued
    {e ahead} of this one at issue time (the launch being serviced is not
    pending behind itself — a burst of [n] simultaneous launches peaks at
    [n - 1]). *)
val process_device_launch : t -> issue:float -> float

(** Resolve a kernel by name. @raise Value.Runtime_error if it is missing
    or not [__global__]. *)
val resolve_kernel : t -> string -> kernel

(** Drain all pending work; returns (and records) the simulated clock. *)
val run_to_idle : t -> float
