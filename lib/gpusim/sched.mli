(** Discrete-event grid/block scheduler.

    Blocks queue onto the earliest-free SM (approximating the hardware FIFO
    block scheduler). Every device-side launch is serviced by a single
    grid-management unit at one launch per
    {!Config.launch_service_interval} cycles — queueing behind it is the
    launch congestion the paper identifies. Host launches pay
    {!Config.host_launch_latency} and bypass that queue.

    The device hosts any number of {e streams} (tenants): each has its own
    loaded program, grid-id namespace and {!Metrics.t}, while SMs, the
    launch queue, memory and the clock are shared. The default stream
    (id 0) shares the device-wide metrics record, so the single-program
    {!Device} API is exactly the one-stream special case.

    Two paper-scale execution modes layer on top (see the implementation's
    module documentation for the full model):

    - {b Parallel block dispatch} ([Config.block_jobs] > 1):
      {!run_to_idle} executes maximal prefixes of provably-independent
      ready blocks ({!Blocksafe} plus a dynamic buffer-disjointness check)
      concurrently on worker domains, committing results in pop order —
      dumps and metrics are byte-identical to the serial drain.
    - {b Stratified grid sampling} ([Config.sampling]): large grids
      enqueue only a deterministic stratified sample of their blocks, and
      launch-heavy blocks dispatch only a sample of their device launches;
      skipped work is represented by weights on the simulated remainder,
      with a stratified-variance error bound accumulated into
      {!Metrics.sampling_stats}. *)

type dim3 = int * int * int

(** A loaded program / resolved kernel under either execution engine
    ({!Config.engine}); {!Device.load_program} picks the variant. *)
type prog = P_closure of Compile.cprog | P_bytecode of Bytecode.prog

type kernel = K_closure of Compile.cfunc | K_bytecode of Bytecode.func

val kernel_name : kernel -> string
val kernel_nparams : kernel -> int

(** The kernel's cross-block independence proof ({!Blocksafe.analyze}),
    computed at compile time under either engine. *)
val kernel_safety : kernel -> Blocksafe.summary

(** The kernel's static per-thread work estimate
    ({!Blocksafe.static_work}). *)
val kernel_static_work : kernel -> float

(** One host stream / tenant. Every launch, block and compute cycle of the
    stream's grids is charged to [st_metrics]; grid ids are dense per
    stream. *)
type stream = {
  st_id : int;  (** Tenant id; 0 is the device's default stream. *)
  mutable st_prog : prog option;
  st_metrics : Metrics.t;
  mutable st_next_grid_id : int;
}

(** One unit of tenant work: a root grid plus all descendant grids it
    spawns (device children, host followups). [j_open_grids] counts
    launched-but-unfinished grids; when it returns to 0 the job is done
    and [j_finish] is the last finish time over all its grids. *)
type job = {
  j_id : int;
  j_tenant : int;
  mutable j_open_grids : int;
  mutable j_finish : float;
}

val make_job : tenant:int -> id:int -> job

(** Per-stratum accounting of a block-sampled grid; folded into the
    stream's {!Metrics.sampling_stats} at grid completion. *)
type strata = {
  sa_counts : int array;  (** Total blocks per stratum. *)
  sa_n : int array;  (** Blocks committed so far per stratum. *)
  sa_sum : float array;
  sa_sumsq : float array;
}

type grid = {
  g_id : int;
  g_stream : stream;
  g_job : job option;
  g_kernel : kernel;
  g_grid : dim3;
  g_block : dim3;
  g_args : Value.t list;
  g_default_idx : int;
  g_weight : float;
      (** Inherited launch-sampling weight: this grid stands for
          [g_weight] identical grids. [1.0] on exact runs. *)
  g_strata : strata option;  (** [Some] exactly when block-sampled. *)
  mutable g_blocks_left : int;  (** Enqueued (sampled) blocks left. *)
  mutable g_last_finish : float;
}

(** A ready block: grid, block index, block-sampling weight (within-grid;
    effective weight is [g_weight *. w]), and stratum index ([-1] when the
    grid is not block-sampled). *)
type event = Block_ready of grid * dim3 * float * int

type t = {
  cfg : Config.t;
  mem : Memory.t;
  metrics : Metrics.t;  (** Device-wide; same record as the default stream's. *)
  events : event Event_queue.t;
  sms : float array;
  mutable launch_q_free : float;
  mutable clock : float;
  mutable deferred_work : float;
      (** SM-cycles represented by sampled-out blocks; folded into the
          clock (divided across SMs) at the next {!run_to_idle} drain. *)
  default_stream : stream;
  mutable next_stream_id : int;
  trace : Trace.t;  (** Off by default; see {!Trace.enable}. *)
  scratch : Vm.scratch;
      (** Reusable per-block thread arena for the bytecode engine (serial
          path). *)
  mutable scratches : Vm.scratch array;
      (** Per-worker arenas for parallel batches; sized on first use. *)
  mutable par_batches : int;
      (** Batches of >= 2 blocks dispatched concurrently on worker
          domains. Host-side accounting (wall-clock observability, the
          [@scale] occupancy gate) — deliberately {e not} part of
          {!Metrics.t}, so parallel dispatch cannot perturb simulated
          results. *)
  mutable par_batch_blocks : int;  (** Blocks executed in those batches. *)
}

val create : Config.t -> Memory.t -> Metrics.t -> t

(** The always-present stream 0, whose [st_metrics] is the device-wide
    record. *)
val default_stream : t -> stream

(** [new_stream t] registers a fresh tenant stream (dense ids from 1) with
    its own metrics record and grid-id namespace. *)
val new_stream : t -> stream

(** [load_stream t s prog] compiles [prog] under {!Config.engine} and loads
    it onto stream [s]. Streams are independent: loading one does not
    disturb another. *)
val load_stream : t -> stream -> Minicu.Ast.program -> unit

(** Enqueue a grid's blocks (or, under {!Config.sampling}, a deterministic
    stratified sample of them), schedulable from [ready]. [issue] (for
    trace queue-wait accounting) defaults to [ready]; [job] attaches the
    grid — and transitively every grid it spawns — to a job's open-grid
    accounting; [weight] (default 1) is the launch-sampling weight the
    grid inherits. *)
val launch_grid :
  ?issue:float ->
  ?from_host:bool ->
  ?job:job ->
  ?weight:float ->
  t ->
  stream ->
  kernel:kernel ->
  grid:dim3 ->
  block:dim3 ->
  args:Value.t list ->
  ready:float ->
  default_idx:int ->
  unit

(** Route a host-side launch; returns when the grid becomes schedulable.
    Latency is charged to the issuing stream's metrics, scaled by
    [weight] (default 1: bit-identical to the unweighted form). *)
val process_host_launch : ?weight:float -> t -> stream -> issue:float -> float

(** Route a device-side launch through the (shared) grid-management unit;
    returns when the child grid becomes schedulable. Also tracks the
    issuing stream's {!Metrics.t.max_pending_launches}: the number of
    launches queued {e ahead} of this one at issue time — under tenancy
    that includes other tenants' launches (the launch being serviced is
    not pending behind itself: a burst of [n] simultaneous launches peaks
    at [n - 1]). With [weight] > 1 (launch sampling) the one serviced
    launch stands for [weight] identical ones: the queue advances by the
    weighted service time; at the default [weight = 1.0] every expression
    reduces bitwise to the unweighted one. *)
val process_device_launch :
  ?weight:float -> t -> stream -> issue:float -> float

(** Resolve a kernel by name in the stream's loaded program.
    @raise Value.Runtime_error if it is missing or not [__global__]. *)
val resolve_kernel : stream -> string -> kernel

(** Process the single earliest block event: dispatch it onto the
    earliest-free SM, execute it, issue any launches it made, and complete
    its grid (followups, job accounting) if it was the last block.
    External event loops ({e lib/tenancy}) interleave [step] with host
    decisions; {!run_to_idle} is the drain-everything special case.
    @raise Invalid_argument when no events are pending. *)
val step : t -> unit

(** Earliest pending block-event time, if any. *)
val next_event_time : t -> float option

val has_pending_events : t -> bool

(** Drain all pending work; returns (and records) the simulated clock.
    With [Config.block_jobs] > 1 (and [Config.check] off), ready blocks
    execute in provably-independent parallel batches with results
    committed in pop order — byte-identical to the serial drain. Deferred
    sampled-out work is folded into the clock here. *)
val run_to_idle : t -> float
