(** Simulated device global memory.

    Memory is a table of buffers; each buffer is an array of {!Value.t}
    elements. Pointers ({!Value.ptr}) are a buffer id plus an element offset,
    and pointer arithmetic moves the offset within a buffer. Out-of-bounds
    and use-after-free accesses raise {!Value.Runtime_error} with a precise
    description — the simulator doubles as a memory checker for transformed
    code. *)

type buffer = { data : Value.t array; mutable live : bool }

type t = {
  mutable buffers : buffer list;
      (** Reverse-indexed: buffer [i] lives at position [count - 1 - i]. We
          keep an array-backed table instead for O(1); see below. *)
  mutable table : buffer option array;
  mutable count : int;
  mutable allocated_elems : int;  (** Total elements ever allocated. *)
}

let create () =
  { buffers = []; table = Array.make 64 None; count = 0; allocated_elems = 0 }

let grow t =
  if t.count >= Array.length t.table then begin
    let bigger = Array.make (2 * Array.length t.table) None in
    Array.blit t.table 0 bigger 0 t.count;
    t.table <- bigger
  end

(** [alloc t n ~init] allocates a buffer of [n] elements initialized to
    [init], returning a pointer to its first element. *)
let alloc t n ~init : Value.ptr =
  if n < 0 then Value.error "negative allocation size %d" n;
  grow t;
  let id = t.count in
  t.table.(id) <- Some { data = Array.make n init; live = true };
  t.count <- t.count + 1;
  t.allocated_elems <- t.allocated_elems + n;
  { buf = id; off = 0 }

let buffer_exn t id =
  if id < 0 || id >= t.count then Value.error "invalid buffer id %d" id;
  match t.table.(id) with
  | Some b -> b
  | None -> Value.error "invalid buffer id %d" id

(** [free t p] releases the buffer [p] points into. Subsequent accesses
    raise. Freeing a non-base pointer or a dead buffer raises. *)
let free t (p : Value.ptr) =
  let b = buffer_exn t p.buf in
  if not b.live then Value.error "double free of buffer %d" p.buf;
  if p.off <> 0 then Value.error "free of interior pointer (offset %d)" p.off;
  b.live <- false

let check_access t (p : Value.ptr) =
  let b = buffer_exn t p.buf in
  if not b.live then Value.error "use after free (buffer %d)" p.buf;
  if p.off < 0 || p.off >= Array.length b.data then
    Value.error "out-of-bounds access: offset %d in buffer %d of size %d"
      p.off p.buf (Array.length b.data);
  b

let load t (p : Value.ptr) : Value.t =
  let b = check_access t p in
  b.data.(p.off)

let store t (p : Value.ptr) (v : Value.t) =
  let b = check_access t p in
  b.data.(p.off) <- v

let allocated_elems t = t.allocated_elems

(** Number of buffers ever allocated (live or freed). Buffer ids are dense
    in [0 .. buffer_count - 1], in allocation order. *)
let buffer_count t = t.count

(** [dump t ~first] — value-level copies of the first [first] buffers ever
    allocated, in allocation order (freed buffers keep their last
    contents). The differential-testing oracle snapshots the driver's
    buffers this way and requires them to be bit-identical across
    transformed program variants, regardless of what the compiler-inserted
    code allocated afterwards. *)
let dump t ~first : Value.t array list =
  if first < 0 || first > t.count then
    Value.error "Memory.dump: %d buffers requested, %d allocated" first
      t.count;
  List.init first (fun id ->
      match t.table.(id) with
      | Some b -> Array.copy b.data
      | None -> Value.error "Memory.dump: missing buffer %d" id)

let size t (p : Value.ptr) =
  let b = buffer_exn t p.buf in
  Array.length b.data

(** Bulk host-side accessors (no cost accounting; drivers use these). *)

let write_array t (p : Value.ptr) (vs : Value.t array) =
  Array.iteri (fun i v -> store t { p with off = p.off + i } v) vs

let read_array t (p : Value.ptr) n : Value.t array =
  Array.init n (fun i -> load t { p with off = p.off + i })

let write_ints t p (vs : int array) =
  write_array t p (Array.map (fun n -> Value.Int n) vs)

let read_ints t p n = Array.map Value.as_int (read_array t p n)

let write_floats t p (vs : float array) =
  write_array t p (Array.map (fun f -> Value.Float f) vs)

let read_floats t p n = Array.map Value.as_float (read_array t p n)
