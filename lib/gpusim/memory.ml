(** Simulated device global memory.

    Memory is a table of buffers; each buffer holds an array of {!Value.t}
    elements. Pointers ({!Value.ptr}) are a buffer id plus an element offset,
    and pointer arithmetic moves the offset within a buffer. Out-of-bounds
    and use-after-free accesses raise {!Value.Runtime_error} with a precise
    description — the simulator doubles as a memory checker for transformed
    code.

    {b Representation.} Small buffers store boxed {!Value.t}s directly.
    Large buffers ([typed_threshold] elements and up) whose initializer is
    an [Int] or [Float] use an unboxed [int array] / [float array] instead —
    at paper scale (millions of graph edges) the boxed representation costs
    3 words and a cache miss per element. A store of a differently-typed
    value into a typed buffer lands in a per-buffer {e spill} table keyed by
    offset; loads consult it only when non-empty (an {!Atomic} counter keeps
    the common path branch-cheap). The typed array is never replaced or
    promoted, so concurrent matching-type stores from parallel block
    execution are never lost; the spill table itself is guarded by the
    memory's mutex. Observable behavior is identical to the boxed
    representation — loads return the exact values stored.

    Thread-safety: buffer {e allocation} is single-domain (kernels that
    allocate are never dispatched in parallel batches — {!Blocksafe} rejects
    [malloc] and [__shared__]), while loads and stores may race across
    domains only at provably-disjoint offsets, which is safe on both boxed
    and unboxed arrays. {!atomic_rmw} is the one primitive that may target
    the same element from several domains at once. *)

type storage =
  | Boxed of Value.t array
  | Ints of int array
  | Floats of float array

(* Mismatched-type elements of a typed buffer, keyed by offset. [count]
   mirrors the table size so readers can skip it without taking the lock;
   table contents are only touched under the memory's mutex. *)
type spill = { tbl : (int, Value.t) Hashtbl.t; count : int Atomic.t }

type buffer = {
  storage : storage;
  spill : spill option;  (** [Some] exactly for typed storage. *)
  mutable live : bool;
}

type t = {
  mutable table : buffer option array;
  mutable count : int;
  mutable allocated_elems : int;  (** Total elements ever allocated. *)
  lock : Mutex.t;
      (** Guards spill tables and {!atomic_rmw}; never held by the common
          typed/boxed access paths. *)
}

let create () =
  {
    table = Array.make 64 None;
    count = 0;
    allocated_elems = 0;
    lock = Mutex.create ();
  }

let grow t =
  if t.count >= Array.length t.table then begin
    let bigger = Array.make (2 * Array.length t.table) None in
    Array.blit t.table 0 bigger 0 t.count;
    t.table <- bigger
  end

(* Unboxed storage pays off only when the buffer is large enough for the
   allocation + copy asymmetry to matter; below this everything stays
   boxed, byte-for-byte as before. *)
let typed_threshold = 1024

let make_storage n (init : Value.t) =
  if n < typed_threshold then (Boxed (Array.make n init), None)
  else
    let spill () =
      Some { tbl = Hashtbl.create 8; count = Atomic.make 0 }
    in
    match init with
    | Value.Int v -> (Ints (Array.make n v), spill ())
    | Value.Float v -> (Floats (Array.make n v), spill ())
    | _ -> (Boxed (Array.make n init), None)

(** [alloc t n ~init] allocates a buffer of [n] elements initialized to
    [init], returning a pointer to its first element. *)
let alloc t n ~init : Value.ptr =
  if n < 0 then Value.error "negative allocation size %d" n;
  grow t;
  let id = t.count in
  let storage, spill = make_storage n init in
  t.table.(id) <- Some { storage; spill; live = true };
  t.count <- t.count + 1;
  t.allocated_elems <- t.allocated_elems + n;
  { buf = id; off = 0 }

let buffer_exn t id =
  if id < 0 || id >= t.count then Value.error "invalid buffer id %d" id;
  match t.table.(id) with
  | Some b -> b
  | None -> Value.error "invalid buffer id %d" id

let storage_len b =
  match b.storage with
  | Boxed a -> Array.length a
  | Ints a -> Array.length a
  | Floats a -> Array.length a

(** [free t p] releases the buffer [p] points into. Subsequent accesses
    raise. Freeing a non-base pointer or a dead buffer raises. *)
let free t (p : Value.ptr) =
  let b = buffer_exn t p.buf in
  if not b.live then Value.error "double free of buffer %d" p.buf;
  if p.off <> 0 then Value.error "free of interior pointer (offset %d)" p.off;
  b.live <- false

let check_access t (p : Value.ptr) =
  let b = buffer_exn t p.buf in
  if not b.live then Value.error "use after free (buffer %d)" p.buf;
  if p.off < 0 || p.off >= storage_len b then
    Value.error "out-of-bounds access: offset %d in buffer %d of size %d"
      p.off p.buf (storage_len b);
  b

let has_spill b =
  match b.spill with Some s -> Atomic.get s.count > 0 | None -> false

(* Spill-aware element access; caller holds the lock (or is provably the
   only accessor, as in host-side [dump]). *)
let raw_load b off : Value.t =
  let spilled () =
    match b.spill with
    | Some s when Atomic.get s.count > 0 -> Hashtbl.find_opt s.tbl off
    | _ -> None
  in
  match b.storage with
  | Boxed a -> a.(off)
  | Ints a -> (
      match spilled () with Some v -> v | None -> Value.Int a.(off))
  | Floats a -> (
      match spilled () with Some v -> v | None -> Value.Float a.(off))

let raw_store b off (v : Value.t) =
  let unspill () =
    match b.spill with
    | Some s when Hashtbl.mem s.tbl off ->
        Hashtbl.remove s.tbl off;
        Atomic.decr s.count
    | _ -> ()
  and spill v =
    match b.spill with
    | Some s ->
        if not (Hashtbl.mem s.tbl off) then Atomic.incr s.count;
        Hashtbl.replace s.tbl off v
    | None -> assert false
  in
  match (b.storage, v) with
  | Boxed a, _ -> a.(off) <- v
  | Ints a, Value.Int n ->
      unspill ();
      a.(off) <- n
  | Floats a, Value.Float f ->
      unspill ();
      a.(off) <- f
  | (Ints _ | Floats _), _ -> spill v

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let load t (p : Value.ptr) : Value.t =
  let b = check_access t p in
  match b.storage with
  | Boxed a -> a.(p.off)
  | Ints a when not (has_spill b) -> Value.Int a.(p.off)
  | Floats a when not (has_spill b) -> Value.Float a.(p.off)
  | _ -> with_lock t (fun () -> raw_load b p.off)

let store t (p : Value.ptr) (v : Value.t) =
  let b = check_access t p in
  match (b.storage, v) with
  | Boxed a, _ -> a.(p.off) <- v
  | Ints a, Value.Int n when not (has_spill b) -> a.(p.off) <- n
  | Floats a, Value.Float f when not (has_spill b) -> a.(p.off) <- f
  | _ -> with_lock t (fun () -> raw_store b p.off v)

(** [atomic_rmw t p f] atomically replaces the element at [p] with [f old]
    and returns [old]. The one memory primitive that may legitimately race
    across domains on the {e same} element: parallel block batches funnel
    their [Reduce]-mode atomics ({!Blocksafe.Reduce}) through it. Serial
    execution uses it too (the mutex is uncontended there), so both paths
    run identical code. *)
let atomic_rmw t (p : Value.ptr) (f : Value.t -> Value.t) : Value.t =
  with_lock t (fun () ->
      let b = check_access t p in
      let old = raw_load b p.off in
      raw_store b p.off (f old);
      old)

let allocated_elems t = t.allocated_elems

(** Number of buffers ever allocated (live or freed). Buffer ids are dense
    in [0 .. buffer_count - 1], in allocation order. *)
let buffer_count t = t.count

let snapshot b =
  match b.storage with
  | Boxed a -> Array.copy a
  | Ints a when not (has_spill b) -> Array.map (fun n -> Value.Int n) a
  | Floats a when not (has_spill b) -> Array.map (fun f -> Value.Float f) a
  | _ -> Array.init (storage_len b) (raw_load b)

(** [dump t ~first] — value-level copies of the first [first] buffers ever
    allocated, in allocation order (freed buffers keep their last
    contents). The differential-testing oracle snapshots the driver's
    buffers this way and requires them to be bit-identical across
    transformed program variants, regardless of what the compiler-inserted
    code allocated afterwards. *)
let dump t ~first : Value.t array list =
  if first < 0 || first > t.count then
    Value.error "Memory.dump: %d buffers requested, %d allocated" first
      t.count;
  List.init first (fun id ->
      match t.table.(id) with
      | Some b -> snapshot b
      | None -> Value.error "Memory.dump: missing buffer %d" id)

let size t (p : Value.ptr) =
  let b = buffer_exn t p.buf in
  storage_len b

(** Bulk host-side accessors (no cost accounting; drivers use these). The
    typed fast paths blit directly into unboxed storage — at paper scale
    these move megabytes per experiment cell. *)

let write_array t (p : Value.ptr) (vs : Value.t array) =
  Array.iteri (fun i v -> store t { p with off = p.off + i } v) vs

let read_array t (p : Value.ptr) n : Value.t array =
  Array.init n (fun i -> load t { p with off = p.off + i })

let write_ints t (p : Value.ptr) (vs : int array) =
  let n = Array.length vs in
  if n = 0 then ()
  else
    let b = check_access t p in
    match b.storage with
    | Ints a when (not (has_spill b)) && p.off + n <= Array.length a ->
        Array.blit vs 0 a p.off n
    | _ -> write_array t p (Array.map (fun x -> Value.Int x) vs)

let read_ints t (p : Value.ptr) n =
  if n = 0 then [||]
  else
    let b = check_access t p in
    match b.storage with
    | Ints a when (not (has_spill b)) && p.off + n <= Array.length a ->
        Array.sub a p.off n
    | _ -> Array.map Value.as_int (read_array t p n)

let write_floats t (p : Value.ptr) (vs : float array) =
  let n = Array.length vs in
  if n = 0 then ()
  else
    let b = check_access t p in
    match b.storage with
    | Floats a when (not (has_spill b)) && p.off + n <= Array.length a ->
        Array.blit vs 0 a p.off n
    | _ -> write_array t p (Array.map (fun f -> Value.Float f) vs)

let read_floats t (p : Value.ptr) n =
  if n = 0 then [||]
  else
    let b = check_access t p in
    match b.storage with
    | Floats a when (not (has_spill b)) && p.off + n <= Array.length a ->
        Array.sub a p.off n
    | _ -> Array.map Value.as_float (read_array t p n)
