(** Cross-block independence analysis for parallel block dispatch.

    [analyze prog f] decides whether distinct blocks of a grid of kernel
    [f] can execute concurrently with results bit-identical to sequential
    execution. The proof obligation is that no block's execution can
    observe another block's memory effects, or that the effects commute
    exactly:

    - the kernel issues no launches, allocates nothing (no device [malloc],
      no [__shared__] declarations — both mutate the global buffer table),
      and has no host followup;
    - every {e written} pointer parameter is used in exactly one of two
      modes:
      {ul
      {- {b Owned}: every access (load, store, atomic) lands in the
         accessing thread's private window [{stride*gtid + d | 0 <= d <
         stride}], where [gtid = blockIdx.x*blockDim.x + threadIdx.x].
         Windows of distinct threads are disjoint, so no cross-block
         communication is possible (a 1-D launch is required for [gtid]
         to be injective; the scheduler checks the dims at dispatch).}
      {- {b Reduce}: every access is an integer [atomicAdd] / [atomicSub] /
         [atomicMin] / [atomicMax] whose result is discarded. These are
         exact commutative-associative reductions over OCaml [int]s, so
         the final contents are independent of execution order.}}
    - parameters that are only read are unrestricted.

    Whether two grids' {e concrete} pointer arguments alias is not decidable
    here; the scheduler performs the cheap dynamic check (distinct buffer
    ids for owned parameters across a batch) at dispatch time using the
    {!summary}'s per-parameter modes. Anything the analysis cannot prove
    falls back to serial execution — unprovable never means wrong, only
    slow. *)

open Minicu.Ast

(** How a pointer parameter is used by the kernel (see module doc). *)
type mode =
  | Read_only  (** Never written through (also: non-pointer parameters). *)
  | Owned of int  (** All accesses in the thread's window of this stride. *)
  | Reduce  (** Only discarded-result commutative integer atomics. *)

type summary = {
  bs_safe : bool;
  bs_reason : string;  (** Why not, when [not bs_safe]; [""] otherwise. *)
  bs_modes : mode array;  (** Per-parameter; meaningful when [bs_safe]. *)
  bs_needs_1d : bool;
      (** Whether safety relies on [gtid] injectivity (any [Owned]
          parameter): the dispatcher must check grid/block are 1-D. *)
}

let unsafe reason =
  { bs_safe = false; bs_reason = reason; bs_modes = [||]; bs_needs_1d = false }

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)
(* ------------------------------------------------------------------ *)

(* Abstract integers. [Aff] is the owned-window shape: [g*gtid + [lo, hi]]
   where [gtid = blockIdx.x*blockDim.x + threadIdx.x]; [g = 0] degenerates
   to a per-thread-varying constant range (e.g. a counted loop variable).
   [Uni] is "uniform": the same (unknown) value in every thread of the
   grid — kernel parameters and arithmetic over them. The [Bid]/[Bdim]/
   [Tid]/[Bid_bdim] atoms exist only to recognize the gtid idiom. *)
type aval =
  | Top
  | Cst of int
  | Uni
  | Bid  (* blockIdx.x *)
  | Bdim  (* blockDim.x *)
  | Tid  (* threadIdx.x *)
  | Bid_bdim  (* blockIdx.x * blockDim.x *)
  | Aff of { g : int; lo : int; hi : int }

(* Abstract pointers: parameter provenance plus abstract offset. *)
type pval = P_top | P_param of int * aval

type absv = AV of aval | PV of pval | Other

let gtid = Aff { g = 1; lo = 0; hi = 0 }

let add_aval a b =
  match (a, b) with
  | Cst x, Cst y -> Cst (x + y)
  | (Cst _ | Uni), (Cst _ | Uni) -> Uni
  | Bid_bdim, Tid | Tid, Bid_bdim -> gtid
  | Aff a, Cst c | Cst c, Aff a ->
      Aff { a with lo = a.lo + c; hi = a.hi + c }
  | Aff a, Aff b -> Aff { g = a.g + b.g; lo = a.lo + b.lo; hi = a.hi + b.hi }
  | _ -> Top

let mul_aval a b =
  match (a, b) with
  | Cst x, Cst y -> Cst (x * y)
  | (Cst _ | Uni), (Cst _ | Uni) -> Uni
  | Bid, Bdim | Bdim, Bid -> Bid_bdim
  | Cst c, Aff a | Aff a, Cst c ->
      if c >= 0 then Aff { g = c * a.g; lo = c * a.lo; hi = c * a.hi }
      else Top
  | _ -> Top

let sub_aval a b =
  match (a, b) with
  | Cst x, Cst y -> Cst (x - y)
  | (Cst _ | Uni), (Cst _ | Uni) -> Uni
  | Aff a, Cst c -> Aff { a with lo = a.lo - c; hi = a.hi - c }
  | _ -> Top

(* Arithmetic that preserves uniformity but nothing else. *)
let uni_op a b =
  match (a, b) with (Cst _ | Uni), (Cst _ | Uni) -> Uni | _ -> Top

let join_aval a b = if a = b then a else Top

let join_absv a b =
  match (a, b) with
  | AV x, AV y -> AV (join_aval x y)
  | PV x, PV y -> if x = y then a else PV P_top
  | _ -> if a = b then a else Other

(* Normalize an abstract integer to the window shape, if it has one. *)
let window_of = function
  | Cst _ | Uni | Bid | Bdim | Tid | Bid_bdim | Top -> None
  | Aff { g; lo; hi } -> if g >= 1 && 0 <= lo && lo <= hi then Some (g, hi)
      else None

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

exception Reject of string

type access_kind =
  | Acc_read
  | Acc_write  (* plain store, or atomic with a used result / exch / CAS *)
  | Acc_reduce  (* discarded-result commutative integer atomic *)

type st = {
  prog : program;
  params : param array;
  mutable env : (string * absv) list;  (** Innermost binding first. *)
  accesses : (int, (access_kind * aval) list ref) Hashtbl.t;
      (** Per pointer-parameter index. *)
}

let record st i kind off =
  let l =
    match Hashtbl.find_opt st.accesses i with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add st.accesses i l;
        l
  in
  l := (kind, off) :: !l

let lookup st x =
  match List.assoc_opt x st.env with Some v -> v | None -> Other

let bind st x v = st.env <- (x, v) :: st.env

let assign st x v =
  (* rebind at the innermost occurrence; shadowing copies are fine since
     we only ever read the innermost *)
  bind st x v

(* Reduce-eligible atomics must target an int element so the reduction is
   exact integer arithmetic (float adds do not commute bitwise). *)
let param_elem_ty st i =
  match st.params.(i).p_ty with TPtr t -> Some t | _ -> None

(* A device function is call-safe when its body (transitively) performs no
   memory writes, allocations, launches or barriers-with-state: such calls
   can only read memory. Conservative and cheap. *)
let rec call_safe prog seen (f : func) =
  if List.mem f.f_name seen then true
  else
    let seen = f.f_name :: seen in
    let rec stmt_ok (s : stmt) =
      match s.sdesc with
      | Decl (_, _, e) -> Option.fold ~none:true ~some:expr_ok e
      | Decl_shared _ -> false
      | Assign (Var _, e) -> expr_ok e
      | Assign (_, _) -> false (* store through a pointer *)
      | If (c, a, b) -> expr_ok c && List.for_all stmt_ok a && List.for_all stmt_ok b
      | For (i, c, st_, b) ->
          Option.fold ~none:true ~some:stmt_ok i
          && Option.fold ~none:true ~some:expr_ok c
          && Option.fold ~none:true ~some:stmt_ok st_
          && List.for_all stmt_ok b
      | While (c, b) -> expr_ok c && List.for_all stmt_ok b
      | Return e -> Option.fold ~none:true ~some:expr_ok e
      | Expr_stmt e -> expr_ok e
      | Launch _ -> false
      | Sync | Syncwarp | Threadfence | Break | Continue -> true
    and expr_ok (e : expr) =
      match e with
      | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> true
      | Unop (_, a) | Cast (_, a) | Member (a, _) | Addr_of a -> expr_ok a
      | Binop (_, a, b) | Index (a, b) -> expr_ok a && expr_ok b
      | Ternary (a, b, c) -> expr_ok a && expr_ok b && expr_ok c
      | Dim3_ctor (a, b, c) -> expr_ok a && expr_ok b && expr_ok c
      | Call (g, args) -> (
          List.for_all expr_ok args
          &&
          match g with
          | "atomicAdd" | "atomicSub" | "atomicMin" | "atomicMax"
          | "atomicExch" | "atomicCAS" | "malloc" ->
              false
          | "min" | "max" | "abs" | "fabs" | "ceil" | "floor" | "sqrt"
          | "exp" | "log" | "pow" | "warp_scan_excl" | "warp_sum"
          | "warp_max" | "warp_bcast" ->
              true
          | name -> (
              match find_func prog name with
              | Some callee -> call_safe prog seen callee
              | None -> false))
    in
    List.for_all stmt_ok f.f_body

(* ------------------------------------------------------------------ *)
(* Expression evaluation (records accesses as a side effect)           *)
(* ------------------------------------------------------------------ *)

let commutative_atomic = function
  | "atomicAdd" | "atomicSub" | "atomicMin" | "atomicMax" -> true
  | _ -> false

let rec eval st (e : expr) : absv =
  match e with
  | Int_lit n -> AV (Cst n)
  | Float_lit _ | Bool_lit _ -> Other
  | Var x -> lookup st x
  | Member (Var "threadIdx", "x") -> AV Tid
  | Member (Var "blockIdx", "x") -> AV Bid
  | Member (Var "blockDim", "x") -> AV Bdim
  | Member (Var "gridDim", "x") -> AV Uni
  | Member (Var v, _) when is_reserved_var v ->
      (* y/z components: 0 or 1 under the (checked) 1-D dims, but they are
         uniform regardless only for blockDim/gridDim; be conservative. *)
      AV (match v with "blockDim" | "gridDim" -> Uni | _ -> Top)
  | Member (a, _) ->
      ignore (eval st a);
      AV Top
  | Unop (Not, a) ->
      ignore (eval st a);
      Other
  | Unop (Neg, a) -> (
      match eval st a with
      | AV (Cst n) -> AV (Cst (-n))
      | AV (Uni) -> AV Uni
      | _ -> AV Top)
  | Binop (op, a, b) -> (
      let va = eval st a and vb = eval st b in
      match (op, va, vb) with
      | Add, AV x, AV y -> AV (add_aval x y)
      | Add, PV (P_param (i, off)), AV x | Add, AV x, PV (P_param (i, off)) ->
          PV (P_param (i, add_aval off x))
      | Add, PV _, _ | Add, _, PV _ -> PV P_top
      | Sub, AV x, AV y -> AV (sub_aval x y)
      | Sub, PV (P_param (i, off)), AV (Cst c) ->
          PV (P_param (i, add_aval off (Cst (-c))))
      | Sub, PV _, _ -> PV P_top
      | Mul, AV x, AV y -> AV (mul_aval x y)
      | (Div | Mod | Shl | Shr | BAnd | BOr | BXor), AV x, AV y ->
          AV (uni_op x y)
      | (Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr), _, _ -> Other
      | _ -> AV Top)
  | Ternary (c, a, b) ->
      ignore (eval st c);
      join_absv (eval st a) (eval st b)
  | Index (p, i) ->
      let off = ptr_offset st p i in
      (match off with
      | Some (base, o) -> record st base Acc_read o
      | None -> raise (Reject "load through unknown pointer"));
      AV Top
  | Cast (TInt, a) -> (
      match eval st a with AV v -> AV v | _ -> AV Top)
  | Cast (_, a) ->
      ignore (eval st a);
      Other
  | Dim3_ctor (a, b, c) ->
      ignore (eval st a);
      ignore (eval st b);
      ignore (eval st c);
      Other
  | Addr_of (Index (p, i)) -> (
      match ptr_offset st p i with
      | Some (base, o) -> PV (P_param (base, o))
      | None -> PV P_top)
  | Addr_of _ -> PV P_top
  | Call (f, args) -> eval_call st f args

(* The pointer base and abstract offset of an access [p[i]]. *)
and ptr_offset st (p : expr) (i : expr) : (int * aval) option =
  let vp = eval st p in
  let vi = match eval st i with AV a -> a | _ -> Top in
  match vp with
  | PV (P_param (base, off)) -> Some (base, add_aval off vi)
  | _ -> None

and eval_call st f args : absv =
  match f with
  | "atomicAdd" | "atomicSub" | "atomicMin" | "atomicMax" | "atomicExch"
  | "atomicCAS" ->
      (* Recorded as a non-commutative access here; [Expr_stmt] intercepts
         the discarded-result commutative case before reaching this. *)
      eval_atomic st f args ~discarded:false
  | "malloc" -> raise (Reject "device-side malloc mutates the buffer table")
  | "min" | "max" | "abs" | "fabs" | "ceil" | "floor" | "sqrt" | "exp"
  | "log" | "pow" ->
      let vs = List.map (eval st) args in
      if
        List.for_all
          (function AV (Cst _ | Uni) -> true | _ -> false)
          vs
      then AV Uni
      else AV Top
  | "warp_scan_excl" | "warp_sum" | "warp_max" | "warp_bcast" ->
      List.iter (fun a -> ignore (eval st a)) args;
      AV Top
  | name -> (
      match find_func st.prog name with
      | None -> raise (Reject (Fmt.str "unknown function %S" name))
      | Some callee ->
          if not (call_safe st.prog [] callee) then
            raise
              (Reject
                 (Fmt.str "call to %S, which has memory effects" name));
          (* The callee can read arbitrary offsets of any pointer it
             receives: record a Top read on each pointer argument. *)
          List.iter
            (fun a ->
              match eval st a with
              | PV (P_param (i, _)) -> record st i Acc_read Top
              | PV P_top ->
                  raise (Reject "unknown pointer passed to device call")
              | _ -> ())
            args;
          AV Top)

and eval_atomic st f args ~discarded : absv =
  match args with
  | addr :: value :: rest ->
      let base, off =
        match eval st addr with
        | PV (P_param (i, o)) -> (i, o)
        | _ -> raise (Reject "atomic on unknown pointer")
      in
      ignore (eval st value);
      List.iter (fun a -> ignore (eval st a)) rest;
      let kind =
        if
          discarded
          && commutative_atomic f
          && param_elem_ty st base = Some TInt
        then Acc_reduce
        else Acc_write
      in
      record st base kind off;
      (* atomics read-modify-write their target *)
      if kind = Acc_write then record st base Acc_read off;
      AV Top
  | _ -> raise (Reject (Fmt.str "malformed atomic %S" f))

(* ------------------------------------------------------------------ *)
(* Statement walk                                                      *)
(* ------------------------------------------------------------------ *)

(* Shape of a [for] loop's induction variable. *)
type loop_var =
  | L_range of string * int * int  (* constant bounds: x in [lo, hi] *)
  | L_top of string
  | L_none

(* Variables assigned anywhere in [ss] (loop-carried state must be Topped
   before a single-pass body analysis is sound). *)
let rec assigned_vars acc (ss : stmt list) =
  List.fold_left
    (fun acc (s : stmt) ->
      match s.sdesc with
      | Assign (Var x, _) | Assign (Member (Var x, _), _) | Decl (_, x, _) ->
          x :: acc
      | Assign (_, _) -> acc
      | If (_, a, b) -> assigned_vars (assigned_vars acc a) b
      | For (i, _, st_, b) ->
          let acc = Option.fold ~none:acc ~some:(fun s -> assigned_vars acc [ s ]) i in
          let acc =
            Option.fold ~none:acc ~some:(fun s -> assigned_vars acc [ s ]) st_
          in
          assigned_vars acc b
      | While (_, b) -> assigned_vars acc b
      | _ -> acc)
    acc ss

let rec walk_stmts st (ss : stmt list) =
  let saved = st.env in
  List.iter (walk_stmt st) ss;
  st.env <- saved

and walk_stmt st (s : stmt) =
  match s.sdesc with
  | Decl (ty, x, init) ->
      let v =
        match init with
        | Some e -> eval st e
        | None -> (
            match ty with TInt -> AV (Cst 0) | _ -> Other)
      in
      bind st x v
  | Decl_shared _ ->
      raise (Reject "__shared__ declaration allocates device memory")
  | Assign (Var x, e) -> assign st x (eval st e)
  | Assign (Index (p, i), e) -> (
      ignore (eval st e);
      match ptr_offset st p i with
      | Some (base, o) -> record st base Acc_write o
      | None -> raise (Reject "store through unknown pointer"))
  | Assign (Member (Var x, _), e) ->
      ignore (eval st e);
      if not (is_reserved_var x) then assign st x (AV Top)
  | Assign (Member (Index (p, i), _), e) -> (
      ignore (eval st e);
      match ptr_offset st p i with
      | Some (base, o) ->
          record st base Acc_write o;
          record st base Acc_read o
      | None -> raise (Reject "store through unknown pointer"))
  | Assign (_, _) -> raise (Reject "unrecognized assignment target")
  | If (c, a, b) ->
      ignore (eval st c);
      walk_stmts st a;
      walk_stmts st b;
      (* A branch may or may not have run: conservatively forget every
         variable either branch assigns. (Topping a name also clobbers any
         same-named outer variable shadowed by a branch-local declaration —
         imprecise, never unsound.) *)
      List.iter
        (fun x -> assign st x (AV Top))
        (assigned_vars (assigned_vars [] a) b)
  | For (init, cond, step, body) ->
      let saved = st.env in
      (* Recognize the counted-loop idiom to give the loop variable a
         bounded range; otherwise it is Top like any loop-carried state. *)
      let counted =
        match (init, cond, step) with
        | ( Some { sdesc = Decl (TInt, x, Some e0); _ },
            Some (Binop ((Lt | Le) as cmp, Var x', bound)),
            Some { sdesc = Assign (Var x'', Binop (Add, Var x''', stp)); _ } )
          when x = x' && x = x'' && x = x''' -> (
            match (eval st e0, eval st bound, eval st stp) with
            | AV (Cst a), AV (Cst b), AV (Cst s) when s > 0 ->
                let last = match cmp with Lt -> b - 1 | _ -> b in
                L_range (x, a, max a last)
            | _ -> L_top x)
        | Some { sdesc = Decl (_, x, _); _ }, _, _ -> L_top x
        | Some { sdesc = Assign (Var x, _); _ }, _, _ -> L_top x
        | _ -> L_none
      in
      (match init with Some i -> walk_stmt st i | None -> ());
      (* Top every variable assigned in the loop before the single pass:
         with loop-carried state at Top and the loop variable covering its
         whole range, one pass over the body covers every iteration. *)
      let carried =
        assigned_vars [] (body @ match step with Some s -> [ s ] | None -> [])
      in
      List.iter (fun x -> assign st x (AV Top)) carried;
      (match counted with
      | L_range (x, lo, hi) -> assign st x (AV (Aff { g = 0; lo; hi }))
      | L_top x -> assign st x (AV Top)
      | L_none -> ());
      (match cond with Some c -> ignore (eval st c) | None -> ());
      walk_stmts st body;
      (match step with Some s -> walk_stmt st s | None -> ());
      st.env <- saved;
      (* Loop effects persist past the loop. *)
      List.iter (fun x -> assign st x (AV Top)) carried;
      (match counted with
      | L_range (x, _, _) | L_top x -> assign st x (AV Top)
      | L_none -> ())
  | While (cond, body) ->
      let saved = st.env in
      let carried = assigned_vars [] body in
      List.iter (fun x -> assign st x (AV Top)) carried;
      ignore (eval st cond);
      walk_stmts st body;
      st.env <- saved;
      List.iter (fun x -> assign st x (AV Top)) carried
  | Return e -> Option.iter (fun e -> ignore (eval st e)) e
  | Expr_stmt (Call (f, args)) when commutative_atomic f ->
      ignore (eval_atomic st f args ~discarded:true)
  | Expr_stmt e -> ignore (eval st e)
  | Launch _ -> raise (Reject "kernel launches")
  | Sync | Syncwarp | Threadfence | Break | Continue -> ()

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let classify (params : param array) accesses : (mode array, string) result =
  let modes = Array.make (Array.length params) Read_only in
  let fail = ref None in
  Hashtbl.iter
    (fun i accs ->
      if !fail = None then begin
        let accs = !accs in
        let has_write =
          List.exists (fun (k, _) -> k = Acc_write) accs
        in
        let has_reduce = List.exists (fun (k, _) -> k = Acc_reduce) accs in
        let has_read = List.exists (fun (k, _) -> k = Acc_read) accs in
        if not (has_write || has_reduce) then modes.(i) <- Read_only
        else if has_reduce && not (has_write || has_read) then
          modes.(i) <- Reduce
        else begin
          (* Owned: every access in the thread's window, common stride. *)
          let stride = ref 0 in
          let ok =
            List.for_all
              (fun (_, off) ->
                match window_of off with
                | Some (g, hi) when hi < g ->
                    if !stride = 0 then stride := g;
                    !stride = g
                | _ -> false)
              accs
          in
          if ok && !stride > 0 then modes.(i) <- Owned !stride
          else
            fail :=
              Some
                (Fmt.str
                   "parameter %S is written outside a provable per-thread \
                    window"
                   params.(i).p_name)
        end
      end)
    accesses;
  match !fail with Some r -> Error r | None -> Ok modes

(** [analyze prog f] — see the module documentation. Total: never raises. *)
let analyze (prog : program) (f : func) : summary =
  if f.f_kind <> Global then unsafe "not a kernel"
  else if f.f_host_followup <> None then unsafe "has a host followup"
  else
    let params = Array.of_list f.f_params in
    let st =
      {
        prog;
        params;
        env =
          List.mapi
            (fun i (p : param) ->
              ( p.p_name,
                match p.p_ty with
                | TPtr _ -> PV (P_param (i, Cst 0))
                | TInt -> AV Uni
                | _ -> Other ))
            f.f_params
          |> List.rev;
        accesses = Hashtbl.create 8;
      }
    in
    (* Parameters bound innermost-last so shadowing works out; order of the
       assoc list only matters for lookup of the innermost, which [bind]
       preserves by consing. *)
    match walk_stmts st f.f_body with
    | () -> (
        match classify params st.accesses with
        | Error r -> unsafe r
        | Ok modes ->
            let needs_1d =
              Array.exists (function Owned _ -> true | _ -> false) modes
            in
            { bs_safe = true; bs_reason = ""; bs_modes = modes; bs_needs_1d = needs_1d }
        )
    | exception Reject r -> unsafe r

(* ------------------------------------------------------------------ *)
(* Static per-block work estimate                                      *)
(* ------------------------------------------------------------------ *)

(* Default trip-count assumption for loops whose bounds are not constant:
   enough to make loopy kernels register as heavy without pretending to
   know their data. *)
let assumed_trips = 8.0

let rec expr_work (cfg : Config.t) (e : expr) : float =
  let ec = expr_work cfg in
  let c = float_of_int in
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> 0.0
  | Unop (_, a) -> c cfg.arith_cost +. ec a
  | Binop (_, a, b) -> c cfg.arith_cost +. ec a +. ec b
  | Ternary (x, a, b) -> c cfg.branch_cost +. ec x +. Float.max (ec a) (ec b)
  | Index (p, i) -> c cfg.mem_cost +. ec p +. ec i
  | Member (a, _) | Cast (_, a) | Addr_of a -> ec a
  | Dim3_ctor (a, b, x) -> c cfg.arith_cost +. ec a +. ec b +. ec x
  | Call (f, args) ->
      let argc = List.fold_left (fun acc a -> acc +. ec a) 0.0 args in
      let base =
        match f with
        | "atomicAdd" | "atomicSub" | "atomicMin" | "atomicMax"
        | "atomicExch" | "atomicCAS" ->
            cfg.atomic_cost
        | "malloc" -> cfg.alloc_cost
        | "warp_scan_excl" | "warp_sum" | "warp_max" | "warp_bcast" ->
            cfg.warp_collective_cost
        | "min" | "max" | "abs" | "fabs" | "ceil" | "floor" | "sqrt" | "exp"
        | "log" | "pow" ->
            cfg.arith_cost
        | _ -> cfg.call_cost
      in
      c base +. argc

(* Constant trip count of a counted loop, if syntactically evident. *)
let const_trips (init : stmt option) (cond : expr option) (step : stmt option)
    =
  match (init, cond, step) with
  | ( Some { sdesc = Decl (TInt, x, Some (Int_lit a)); _ },
      Some (Binop ((Lt | Le) as cmp, Var x', Int_lit b)),
      Some { sdesc = Assign (Var x'', Binop (Add, Var x''', Int_lit s)); _ } )
    when x = x' && x = x'' && x = x''' && s > 0 ->
      let last = match cmp with Lt -> b - 1 | _ -> b in
      if last < a then Some 0.0
      else Some (float_of_int (((last - a) / s) + 1))
  | _ -> None

let rec stmts_work cfg depth (ss : stmt list) =
  List.fold_left (fun acc s -> acc +. stmt_work cfg depth s) 0.0 ss

and stmt_work (cfg : Config.t) depth (s : stmt) : float =
  let c = float_of_int in
  if depth > 8 then 0.0
  else
    match s.sdesc with
    | Decl (_, _, Some e) -> expr_work cfg e +. c cfg.arith_cost
    | Decl (_, _, None) -> 0.0
    | Decl_shared (_, _, e) -> expr_work cfg e +. c cfg.arith_cost
    | Assign (lv, e) ->
        expr_work cfg e
        +. (match lv with
           | Index _ -> c (cfg.mem_cost + cfg.arith_cost)
           | Member (Index _, _) -> c ((2 * cfg.mem_cost) + cfg.arith_cost)
           | _ -> c cfg.arith_cost)
    | If (cnd, a, b) ->
        expr_work cfg cnd +. c cfg.branch_cost
        +. Float.max (stmts_work cfg depth a) (stmts_work cfg depth b)
    | For (init, cond, step, body) ->
        let trips =
          match const_trips init cond step with
          | Some n -> n
          | None -> assumed_trips
        in
        let per_iter =
          (match cond with Some cnd -> expr_work cfg cnd | None -> 0.0)
          +. c cfg.branch_cost
          +. (match step with
             | Some st_ -> stmt_work cfg (depth + 1) st_
             | None -> 0.0)
          +. stmts_work cfg (depth + 1) body
        in
        (match init with Some i -> stmt_work cfg (depth + 1) i | None -> 0.0)
        +. (trips *. per_iter)
    | While (cond, body) ->
        assumed_trips
        *. (expr_work cfg cond +. c cfg.branch_cost
           +. stmts_work cfg (depth + 1) body)
    | Return (Some e) -> expr_work cfg e
    | Return None -> 0.0
    | Expr_stmt e -> expr_work cfg e
    | Launch l ->
        c cfg.launch_issue_cost +. expr_work cfg l.l_grid
        +. expr_work cfg l.l_block
        +. List.fold_left (fun acc a -> acc +. expr_work cfg a) 0.0 l.l_args
    | Sync -> c cfg.sync_cost
    | Syncwarp -> c cfg.sync_cost
    | Threadfence -> c cfg.fence_cost
    | Break | Continue -> 0.0

(** [static_work cfg f] — statically-estimated cycles for one {e thread} of
    [f] (loop-weighted instruction costs; unknown loop bounds assume
    {!assumed_trips} iterations). The sampler stratifies and gates on this
    estimate; it needs ordering fidelity, not absolute accuracy. *)
let static_work (cfg : Config.t) (f : func) : float =
  stmts_work cfg 0 f.f_body
