(** Register VM for the bytecode engine ({!Bytecode}).

    Executes lowered MiniCU over unboxed per-thread register banks: a tag
    byte per register (unit/int/float/bool/dim3/ptr) with payload lanes in
    parallel [int] and [float] arrays. Values are boxed only at the
    engine's edges — memory loads/stores, kernel arguments, launch
    requests, warp collectives — and on coercion-error paths.

    The interpreter dispatches on the packed word stream
    ([Bytecode.bp_ops]): an opcode word followed by its operand words, so
    decoding an instruction is a handful of adjacent [int array] loads with
    no per-instruction heap block to chase. Jump targets (and the program
    counter) are word offsets; float/string/value/location operands come
    from the program's side pools.

    Threads are explicit state machines (program counter, frame base, call
    stack), not fibers: a thread runs until it finishes or parks at a
    barrier / warp collective, and resuming it runs it immediately to its
    next suspension — the same interleaving {!Exec} gets from
    [Effect.Deep.continue]. Block-level semantics (warp-by-warp advance,
    barrier epochs, divergent-collective errors, cost aggregation,
    {!Racecheck} hooks) mirror {!Exec} exactly; the cross-engine
    differential suite pins the two engines bit-for-bit.

    Per-block metadata lives in a {!scratch} arena owned by the scheduler:
    thread records, register banks and call stacks are preallocated and
    reused across blocks, so steady-state execution does not allocate. *)

open Bytecode

type status =
  | T_not_started
  | T_running
  | T_at_sync
  | T_at_warp of Compile.warp_req
  | T_done

(* Register tag codes (one byte per register). *)
let tag_unit = 0
let tag_int = 1
let tag_float = 2
let tag_bool = 3
let tag_dim3 = 4
let tag_ptr = 5

type thread = {
  (* Register bank: [tags] holds one tag code per register; [ia]/[ib]/[ic]
     hold int payloads (int, bool 0/1, dim3 x/y/z, ptr buf/off) and [fa]
     holds float payloads. Frames are stacked: a callee's registers start
     at [base + nregs] of its caller. *)
  mutable tags : Bytes.t;
  mutable ia : int array;
  mutable ib : int array;
  mutable ic : int array;
  mutable fa : float array;
  mutable base : int;
  mutable nregs : int;
  mutable pc : int;  (** Word offset into [Bytecode.bp_ops]. *)
  (* Call stack (parallel arrays, fixed-capacity style with doubling). *)
  mutable st_ret : int array;
  mutable st_base : int array;
  mutable st_dst : int array;  (** Absolute result register in the caller. *)
  mutable st_nregs : int array;
  mutable depth : int;
  (* Cost accounting, as in {!Compile.tctx}. [tot] is a one-element
     array rather than a mutable float field: mixed records box their
     float fields, and charging is on the hottest interpreter path. *)
  costs : float array;
  tot : float array;
  mutable default_idx : int;
  mutable tidx : int * int * int;
  mutable blk : Compile.bctx;
  mutable status : status;
  mutable wdst : int;  (** Absolute register awaiting a warp result. *)
}

(* ------------------------------------------------------------------ *)
(* Register access                                                     *)
(* ------------------------------------------------------------------ *)

let grow_regs t n =
  let cap = Array.length t.ia in
  if n > cap then begin
    let c = ref (max 64 cap) in
    while !c < n do
      c := !c * 2
    done;
    let c = !c in
    let ia = Array.make c 0 in
    Array.blit t.ia 0 ia 0 cap;
    t.ia <- ia;
    let ib = Array.make c 0 in
    Array.blit t.ib 0 ib 0 cap;
    t.ib <- ib;
    let ic = Array.make c 0 in
    Array.blit t.ic 0 ic 0 cap;
    t.ic <- ic;
    let fa = Array.make c 0.0 in
    Array.blit t.fa 0 fa 0 cap;
    t.fa <- fa;
    let tags = Bytes.make c '\000' in
    Bytes.blit t.tags 0 tags 0 cap;
    t.tags <- tags
  end

let grow_stack t =
  let cap = Array.length t.st_ret in
  if t.depth = cap then begin
    let c = 2 * cap in
    let g a =
      let n = Array.make c 0 in
      Array.blit a 0 n 0 cap;
      n
    in
    t.st_ret <- g t.st_ret;
    t.st_base <- g t.st_base;
    t.st_dst <- g t.st_dst;
    t.st_nregs <- g t.st_nregs
  end

(* Register-bank accesses use unsafe array ops: every operand is a
   frame-relative index below the function's [bf_nregs] high-water mark,
   and [grow_regs] guarantees capacity for [base + nregs] before entry.
   Word-stream reads are unsafe too: [pc] only ever lands on offsets the
   packer produced, and every operand word lies within its instruction. *)

let[@inline] wd (ops : int array) i = Array.unsafe_get ops i
let[@inline] tag_of t r = Char.code (Bytes.unsafe_get t.tags r)
let[@inline] set_tag t r tg = Bytes.unsafe_set t.tags r (Char.unsafe_chr tg)
let[@inline] geti t r = Array.unsafe_get t.ia r
let[@inline] getf t r = Array.unsafe_get t.fa r
let[@inline] getib t r = Array.unsafe_get t.ib r
let[@inline] getic t r = Array.unsafe_get t.ic r

let[@inline] set_unit t r = set_tag t r tag_unit

let[@inline] set_int t r n =
  set_tag t r tag_int;
  Array.unsafe_set t.ia r n

let[@inline] set_float t r f =
  set_tag t r tag_float;
  Array.unsafe_set t.fa r f

let[@inline] set_bool t r b =
  set_tag t r tag_bool;
  Array.unsafe_set t.ia r (if b then 1 else 0)

let[@inline] set_dim3_v t r x y z =
  set_tag t r tag_dim3;
  Array.unsafe_set t.ia r x;
  Array.unsafe_set t.ib r y;
  Array.unsafe_set t.ic r z

let[@inline] set_ptr t r (p : Value.ptr) =
  set_tag t r tag_ptr;
  Array.unsafe_set t.ia r p.buf;
  Array.unsafe_set t.ib r p.off

let box t r : Value.t =
  match tag_of t r with
  | 0 -> Value.Unit
  | 1 -> Value.Int (geti t r)
  | 2 -> Value.Float (getf t r)
  | 3 -> Value.Bool (geti t r <> 0)
  | 4 -> Value.Dim3 (geti t r, Array.unsafe_get t.ib r, Array.unsafe_get t.ic r)
  | _ -> Value.Ptr { buf = geti t r; off = Array.unsafe_get t.ib r }

let set_value t r (v : Value.t) =
  match v with
  | Value.Unit -> set_unit t r
  | Value.Int n -> set_int t r n
  | Value.Float f -> set_float t r f
  | Value.Bool b -> set_bool t r b
  | Value.Dim3 (x, y, z) -> set_dim3_v t r x y z
  | Value.Ptr p -> set_ptr t r p

let[@inline] copy_reg t dst src =
  set_tag t dst (tag_of t src);
  Array.unsafe_set t.ia dst (Array.unsafe_get t.ia src);
  Array.unsafe_set t.ib dst (Array.unsafe_get t.ib src);
  Array.unsafe_set t.ic dst (Array.unsafe_get t.ic src);
  Array.unsafe_set t.fa dst (Array.unsafe_get t.fa src)

(* Coercions: identical semantics (and error messages) to {!Value}. *)

let get_int t r =
  match tag_of t r with
  | 1 | 3 -> geti t r
  | 2 -> int_of_float (getf t r)
  | _ -> Value.error "expected an int, got %a" Value.pp (box t r)

let get_float t r =
  match tag_of t r with
  | 2 -> getf t r
  | 1 | 3 -> float_of_int (geti t r)
  | _ -> Value.error "expected a float, got %a" Value.pp (box t r)

let get_bool t r =
  match tag_of t r with
  | 3 | 1 -> geti t r <> 0
  | 2 -> getf t r <> 0.0
  | _ -> Value.error "expected a bool, got %a" Value.pp (box t r)

let get_ptr t r : Value.ptr =
  match tag_of t r with
  | 5 -> { buf = geti t r; off = Array.unsafe_get t.ib r }
  | _ -> Value.error "expected a pointer, got %a" Value.pp (box t r)

let get_dim3 t r =
  match tag_of t r with
  | 4 -> (geti t r, Array.unsafe_get t.ib r, Array.unsafe_get t.ic r)
  | 1 | 3 -> (geti t r, 1, 1)
  | _ -> Value.error "expected a dim3 or int, got %a" Value.pp (box t r)

(* ------------------------------------------------------------------ *)
(* Cost charging and sanitizer hooks (mirroring {!Compile})            *)
(* ------------------------------------------------------------------ *)

let charge_tag (t : thread) idx (c : float) =
  let idx = if idx = Metrics.tag_default then t.default_idx else idx in
  Array.unsafe_set t.costs idx (Array.unsafe_get t.costs idx +. c);
  Array.unsafe_set t.tot 0 (Array.unsafe_get t.tot 0 +. c)

let check_access (t : thread) ~kind ~loc (ptr : Value.ptr) =
  match t.blk.Compile.racecheck with
  | None -> ()
  | Some rc ->
      let x, y, z = t.tidx in
      let bx, by, _ = t.blk.Compile.bdim in
      let tid = x + (y * bx) + (z * bx * by) in
      Racecheck.record rc ~tid ~kind ~loc ptr

let access_failed (t : thread) ~loc msg =
  t.blk.Compile.metrics.Metrics.oob_detected <-
    t.blk.Compile.metrics.Metrics.oob_detected + 1;
  raise (Value.Runtime_error (Fmt.str "%a: %s" Minicu.Loc.pp loc msg))

let checked_load (t : thread) ~loc ptr =
  try Memory.load t.blk.Compile.mem ptr
  with Value.Runtime_error msg -> access_failed t ~loc msg

let checked_store (t : thread) ~loc ptr v =
  try Memory.store t.blk.Compile.mem ptr v
  with Value.Runtime_error msg -> access_failed t ~loc msg

let dim3_member (x, y, z) = function
  | "x" -> x
  | "y" -> y
  | "z" -> z
  | f -> Value.error "dim3 has no member %S" f

(* Atomic combine — the exact expressions of the closure engine's
   [compile_call], so coercion order (and failure order) is identical. *)
let atomic_combine (aop : atomic) (old : Value.t) (v : Value.t) : Value.t =
  match aop with
  | A_add -> Compile.eval_binop Minicu.Ast.Add old v
  | A_sub -> Compile.eval_binop Minicu.Ast.Sub old v
  | A_min ->
      if Value.is_float old || Value.is_float v then
        Value.Float (Float.min (Value.as_float old) (Value.as_float v))
      else Value.Int (min (Value.as_int old) (Value.as_int v))
  | A_max ->
      if Value.is_float old || Value.is_float v then
        Value.Float (Float.max (Value.as_float old) (Value.as_float v))
      else Value.Int (max (Value.as_int old) (Value.as_int v))
  | A_exch -> v

(* Decode tables — inverses of the [Bytecode] [*_code] encoders. *)

let binop_tbl =
  [|
    Minicu.Ast.Add;
    Minicu.Ast.Sub;
    Minicu.Ast.Mul;
    Minicu.Ast.Div;
    Minicu.Ast.Mod;
    Minicu.Ast.Lt;
    Minicu.Ast.Le;
    Minicu.Ast.Gt;
    Minicu.Ast.Ge;
    Minicu.Ast.Eq;
    Minicu.Ast.Ne;
    Minicu.Ast.LAnd;
    Minicu.Ast.LOr;
    Minicu.Ast.BAnd;
    Minicu.Ast.BOr;
    Minicu.Ast.BXor;
    Minicu.Ast.Shl;
    Minicu.Ast.Shr;
  |]

let atomic_tbl = [| A_add; A_sub; A_min; A_max; A_exch |]

(* Fused comparison evaluation — [as_bool (eval_binop op a b)] without
   materializing the Bool. Lowering only emits comparison operators into
   the [I_cmp_*] family, so non-comparisons are unreachable. *)

let cmp2 (t : thread) op ra rb : bool =
  let ta = tag_of t ra and tb = tag_of t rb in
  if ta = tag_int && tb = tag_int then
    let a = geti t ra and bi = geti t rb in
    match op with
    | Minicu.Ast.Lt -> a < bi
    | Minicu.Ast.Le -> a <= bi
    | Minicu.Ast.Gt -> a > bi
    | Minicu.Ast.Ge -> a >= bi
    | Minicu.Ast.Eq -> a = bi
    | Minicu.Ast.Ne -> a <> bi
    | _ -> assert false
  else if
    (ta = tag_float || tb = tag_float)
    && (ta = tag_int || ta = tag_float)
    && (tb = tag_int || tb = tag_float)
  then
    let a = if ta = tag_float then getf t ra else float_of_int (geti t ra)
    and bf = if tb = tag_float then getf t rb else float_of_int (geti t rb) in
    match op with
    | Minicu.Ast.Lt -> Float.compare a bf < 0
    | Minicu.Ast.Le -> Float.compare a bf <= 0
    | Minicu.Ast.Gt -> Float.compare a bf > 0
    | Minicu.Ast.Ge -> Float.compare a bf >= 0
    | Minicu.Ast.Eq -> a = bf
    | Minicu.Ast.Ne -> a <> bf
    | _ -> assert false
  else Value.as_bool (Compile.eval_binop op (box t ra) (box t rb))

let cmp1 (t : thread) op ra n : bool =
  match tag_of t ra with
  | 1 -> (
      let a = geti t ra in
      match op with
      | Minicu.Ast.Lt -> a < n
      | Minicu.Ast.Le -> a <= n
      | Minicu.Ast.Gt -> a > n
      | Minicu.Ast.Ge -> a >= n
      | Minicu.Ast.Eq -> a = n
      | Minicu.Ast.Ne -> a <> n
      | _ -> assert false)
  | 2 -> (
      let a = getf t ra in
      let bf = float_of_int n in
      match op with
      | Minicu.Ast.Lt -> Float.compare a bf < 0
      | Minicu.Ast.Le -> Float.compare a bf <= 0
      | Minicu.Ast.Gt -> Float.compare a bf > 0
      | Minicu.Ast.Ge -> Float.compare a bf >= 0
      | Minicu.Ast.Eq -> a = bf
      | Minicu.Ast.Ne -> a <> bf
      | _ -> assert false)
  | _ -> Value.as_bool (Compile.eval_binop op (box t ra) (Value.Int n))

(* ------------------------------------------------------------------ *)
(* Interpreter loop                                                    *)
(* ------------------------------------------------------------------ *)

(* Run [t] until it finishes ([T_done]) or parks at a barrier or warp
   collective. All register operands are frame-relative; [t.base]
   translates them to absolute bank indices.

   The dispatch match mirrors the opcode table in [Bytecode.pack] — the
   arm numbers ARE the opcodes; keep the two in sync. The program counter
   lives in the tail-recursive [go] parameter, not in [t.pc]:
   fall-through instructions continue at [pc + width] without touching
   the record, and [t.pc] is written only where the thread parks (barrier
   and warp-collective arms), which is where a resume needs it. *)
let interp (p : Bytecode.prog) (t : thread) =
  let ops = p.bp_ops in
  let fpool = p.bp_fpool in
  let rec go pc =
    let b = t.base in
    match Array.unsafe_get ops pc with
    | 0 (* const.unit *) ->
        set_unit t (b + wd ops (pc + 1));
        go (pc + 2)
    | 1 (* const.int *) ->
        set_int t (b + wd ops (pc + 1)) (wd ops (pc + 2));
        go (pc + 3)
    | 2 (* const.float *) ->
        set_float t (b + wd ops (pc + 1)) (Array.unsafe_get fpool (wd ops (pc + 2)));
        go (pc + 3)
    | 3 (* const.bool *) ->
        set_bool t (b + wd ops (pc + 1)) (wd ops (pc + 2) <> 0);
        go (pc + 3)
    | 4 (* const.dim3 *) ->
        set_dim3_v t
          (b + wd ops (pc + 1))
          (wd ops (pc + 2))
          (wd ops (pc + 3))
          (wd ops (pc + 4));
        go (pc + 5)
    | 5 (* mov *) ->
        copy_reg t (b + wd ops (pc + 1)) (b + wd ops (pc + 2));
        go (pc + 3)
    | 6 (* special *) ->
        let x, y, z =
          match wd ops (pc + 2) with
          | 0 -> t.tidx
          | 1 -> t.blk.Compile.bidx
          | 2 -> t.blk.Compile.bdim
          | _ -> t.blk.Compile.gdim
        in
        set_dim3_v t (b + wd ops (pc + 1)) x y z;
        go (pc + 3)
    | 7 (* special.comp *) ->
        let dims =
          match wd ops (pc + 2) with
          | 0 -> t.tidx
          | 1 -> t.blk.Compile.bidx
          | 2 -> t.blk.Compile.bdim
          | _ -> t.blk.Compile.gdim
        in
        let f = Array.unsafe_get p.bp_spool (wd ops (pc + 3)) in
        set_int t (b + wd ops (pc + 1)) (dim3_member dims f);
        go (pc + 4)
    | 8 (* member *) ->
        (let r = b + wd ops (pc + 2) in
         let f = Array.unsafe_get p.bp_spool (wd ops (pc + 3)) in
         let d = b + wd ops (pc + 1) in
         match tag_of t r with
         | 4 -> set_int t d (dim3_member (geti t r, getib t r, getic t r) f)
         | 1 -> set_int t d (dim3_member (geti t r, 1, 1) f)
         | _ ->
             Value.error "member access %S on non-dim3 %a" f Value.pp (box t r));
        go (pc + 4)
    | 9 (* neg *) ->
        (let r = b + wd ops (pc + 2) in
         let d = b + wd ops (pc + 1) in
         if tag_of t r = tag_float then set_float t d (-.getf t r)
         else set_int t d (-get_int t r));
        go (pc + 3)
    | 10 (* not *) ->
        set_bool t (b + wd ops (pc + 1)) (not (get_bool t (b + wd ops (pc + 2))));
        go (pc + 3)
    | 11 (* binop *) -> (
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        let rd = b + wd ops (pc + 2)
        and ra = b + wd ops (pc + 3)
        and rb = b + wd ops (pc + 4) in
        let ta = tag_of t ra and tb = tag_of t rb in
        let fallback () =
          set_value t rd (Compile.eval_binop op (box t ra) (box t rb))
        in
        if ta = tag_int && tb = tag_int then
          let a = geti t ra and bi = geti t rb in
          match op with
          | Minicu.Ast.Add -> set_int t rd (a + bi)
          | Minicu.Ast.Sub -> set_int t rd (a - bi)
          | Minicu.Ast.Mul -> set_int t rd (a * bi)
          | Minicu.Ast.Div ->
              if bi = 0 then Value.error "integer division by zero";
              set_int t rd (a / bi)
          | Minicu.Ast.Mod ->
              if bi = 0 then Value.error "integer modulo by zero";
              set_int t rd (a mod bi)
          | Minicu.Ast.Lt -> set_bool t rd (a < bi)
          | Minicu.Ast.Le -> set_bool t rd (a <= bi)
          | Minicu.Ast.Gt -> set_bool t rd (a > bi)
          | Minicu.Ast.Ge -> set_bool t rd (a >= bi)
          | Minicu.Ast.Eq -> set_bool t rd (a = bi)
          | Minicu.Ast.Ne -> set_bool t rd (a <> bi)
          | Minicu.Ast.BAnd -> set_int t rd (a land bi)
          | Minicu.Ast.BOr -> set_int t rd (a lor bi)
          | Minicu.Ast.BXor -> set_int t rd (a lxor bi)
          | Minicu.Ast.Shl -> set_int t rd (a lsl bi)
          | Minicu.Ast.Shr -> set_int t rd (a asr bi)
          | Minicu.Ast.LAnd | Minicu.Ast.LOr -> fallback ()
        else if
          (ta = tag_float || tb = tag_float)
          && (ta = tag_int || ta = tag_float)
          && (tb = tag_int || tb = tag_float)
        then
          let a = if ta = tag_float then getf t ra else float_of_int (geti t ra)
          and bf = if tb = tag_float then getf t rb else float_of_int (geti t rb)
          in
          match op with
          | Minicu.Ast.Add -> set_float t rd (a +. bf)
          | Minicu.Ast.Sub -> set_float t rd (a -. bf)
          | Minicu.Ast.Mul -> set_float t rd (a *. bf)
          | Minicu.Ast.Div -> set_float t rd (a /. bf)
          | Minicu.Ast.Lt -> set_bool t rd (Float.compare a bf < 0)
          | Minicu.Ast.Le -> set_bool t rd (Float.compare a bf <= 0)
          | Minicu.Ast.Gt -> set_bool t rd (Float.compare a bf > 0)
          | Minicu.Ast.Ge -> set_bool t rd (Float.compare a bf >= 0)
          | Minicu.Ast.Eq -> set_bool t rd (a = bf)
          | Minicu.Ast.Ne -> set_bool t rd (a <> bf)
          | _ -> fallback ()
        else fallback ());
        go (pc + 5)
    | 12 (* binop.int *) -> (
        (* Same semantics as opcode 11 with an Int right operand; the
           literal never needs materializing. *)
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        let rd = b + wd ops (pc + 2)
        and ra = b + wd ops (pc + 3)
        and n = wd ops (pc + 4) in
        let fallback () =
          set_value t rd (Compile.eval_binop op (box t ra) (Value.Int n))
        in
        match tag_of t ra with
        | 1 -> (
            let a = geti t ra in
            match op with
            | Minicu.Ast.Add -> set_int t rd (a + n)
            | Minicu.Ast.Sub -> set_int t rd (a - n)
            | Minicu.Ast.Mul -> set_int t rd (a * n)
            | Minicu.Ast.Div ->
                if n = 0 then Value.error "integer division by zero";
                set_int t rd (a / n)
            | Minicu.Ast.Mod ->
                if n = 0 then Value.error "integer modulo by zero";
                set_int t rd (a mod n)
            | Minicu.Ast.Lt -> set_bool t rd (a < n)
            | Minicu.Ast.Le -> set_bool t rd (a <= n)
            | Minicu.Ast.Gt -> set_bool t rd (a > n)
            | Minicu.Ast.Ge -> set_bool t rd (a >= n)
            | Minicu.Ast.Eq -> set_bool t rd (a = n)
            | Minicu.Ast.Ne -> set_bool t rd (a <> n)
            | Minicu.Ast.BAnd -> set_int t rd (a land n)
            | Minicu.Ast.BOr -> set_int t rd (a lor n)
            | Minicu.Ast.BXor -> set_int t rd (a lxor n)
            | Minicu.Ast.Shl -> set_int t rd (a lsl n)
            | Minicu.Ast.Shr -> set_int t rd (a asr n)
            | Minicu.Ast.LAnd | Minicu.Ast.LOr -> fallback ())
        | 2 -> (
            let a = getf t ra in
            let bf = float_of_int n in
            match op with
            | Minicu.Ast.Add -> set_float t rd (a +. bf)
            | Minicu.Ast.Sub -> set_float t rd (a -. bf)
            | Minicu.Ast.Mul -> set_float t rd (a *. bf)
            | Minicu.Ast.Div -> set_float t rd (a /. bf)
            | Minicu.Ast.Lt -> set_bool t rd (Float.compare a bf < 0)
            | Minicu.Ast.Le -> set_bool t rd (Float.compare a bf <= 0)
            | Minicu.Ast.Gt -> set_bool t rd (Float.compare a bf > 0)
            | Minicu.Ast.Ge -> set_bool t rd (Float.compare a bf >= 0)
            | Minicu.Ast.Eq -> set_bool t rd (a = bf)
            | Minicu.Ast.Ne -> set_bool t rd (a <> bf)
            | _ -> fallback ())
        | _ -> fallback ());
        go (pc + 5)
    | 13 (* binop.float *) -> (
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        let rd = b + wd ops (pc + 2)
        and ra = b + wd ops (pc + 3)
        and f = Array.unsafe_get fpool (wd ops (pc + 4)) in
        let ta = tag_of t ra in
        let fallback () =
          set_value t rd (Compile.eval_binop op (box t ra) (Value.Float f))
        in
        if ta = tag_float || ta = tag_int then
          let a = if ta = tag_float then getf t ra else float_of_int (geti t ra)
          in
          match op with
          | Minicu.Ast.Add -> set_float t rd (a +. f)
          | Minicu.Ast.Sub -> set_float t rd (a -. f)
          | Minicu.Ast.Mul -> set_float t rd (a *. f)
          | Minicu.Ast.Div -> set_float t rd (a /. f)
          | Minicu.Ast.Lt -> set_bool t rd (Float.compare a f < 0)
          | Minicu.Ast.Le -> set_bool t rd (Float.compare a f <= 0)
          | Minicu.Ast.Gt -> set_bool t rd (Float.compare a f > 0)
          | Minicu.Ast.Ge -> set_bool t rd (Float.compare a f >= 0)
          | Minicu.Ast.Eq -> set_bool t rd (a = f)
          | Minicu.Ast.Ne -> set_bool t rd (a <> f)
          | _ -> fallback ()
        else fallback ());
        go (pc + 5)
    | 14 (* cmp.jf *) ->
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        go
          (if cmp2 t op (b + wd ops (pc + 2)) (b + wd ops (pc + 3)) then pc + 5
           else wd ops (pc + 4))
    | 15 (* cmp.jf.int *) ->
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        go
          (if cmp1 t op (b + wd ops (pc + 2)) (wd ops (pc + 3)) then pc + 5
           else wd ops (pc + 4))
    | 16 (* cmp.jt *) ->
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        go
          (if cmp2 t op (b + wd ops (pc + 2)) (b + wd ops (pc + 3)) then
             wd ops (pc + 4)
           else pc + 5)
    | 17 (* cmp.jt.int *) ->
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 1)) in
        go
          (if cmp1 t op (b + wd ops (pc + 2)) (wd ops (pc + 3)) then
             wd ops (pc + 4)
           else pc + 5)
    | 18 (* cast.int *) ->
        set_int t (b + wd ops (pc + 1)) (get_int t (b + wd ops (pc + 2)));
        go (pc + 3)
    | 19 (* cast.float *) ->
        set_float t (b + wd ops (pc + 1)) (get_float t (b + wd ops (pc + 2)));
        go (pc + 3)
    | 20 (* cast.bool *) ->
        set_bool t (b + wd ops (pc + 1)) (get_bool t (b + wd ops (pc + 2)));
        go (pc + 3)
    | 21 (* cast.dim3 *) ->
        let x, y, z = get_dim3 t (b + wd ops (pc + 2)) in
        set_dim3_v t (b + wd ops (pc + 1)) x y z;
        go (pc + 3)
    | 22 (* as_ptr *) ->
        set_ptr t (b + wd ops (pc + 1)) (get_ptr t (b + wd ops (pc + 2)));
        go (pc + 3)
    | 23 (* dim3 *) ->
        (* Operands are [cast.int] results, so the coercions cannot fail;
           bind z, y, x in the closure engine's right-to-left order anyway. *)
        let vz = get_int t (b + wd ops (pc + 4)) in
        let vy = get_int t (b + wd ops (pc + 3)) in
        let vx = get_int t (b + wd ops (pc + 2)) in
        set_dim3_v t (b + wd ops (pc + 1)) vx vy vz;
        go (pc + 5)
    | 24 (* load *) ->
        let ptr = get_ptr t (b + wd ops (pc + 2)) in
        let off = get_int t (b + wd ops (pc + 3)) in
        let ptr = { ptr with Value.off = ptr.Value.off + off } in
        set_value t (b + wd ops (pc + 1)) (Memory.load t.blk.Compile.mem ptr);
        go (pc + 4)
    | 25 (* load.chk *) ->
        let ptr = get_ptr t (b + wd ops (pc + 2)) in
        let off = get_int t (b + wd ops (pc + 3)) in
        let ptr = { ptr with Value.off = ptr.Value.off + off } in
        let loc = Array.unsafe_get p.bp_lpool (wd ops (pc + 4)) in
        check_access t ~kind:Racecheck.Read ~loc ptr;
        set_value t (b + wd ops (pc + 1)) (checked_load t ~loc ptr);
        go (pc + 5)
    | 26 (* store *) ->
        let ptr = get_ptr t (b + wd ops (pc + 1)) in
        let off = get_int t (b + wd ops (pc + 2)) in
        let ptr = { ptr with Value.off = ptr.Value.off + off } in
        let v = box t (b + wd ops (pc + 3)) in
        Memory.store t.blk.Compile.mem ptr v;
        go (pc + 4)
    | 27 (* store.chk *) ->
        let ptr = get_ptr t (b + wd ops (pc + 1)) in
        let off = get_int t (b + wd ops (pc + 2)) in
        let ptr = { ptr with Value.off = ptr.Value.off + off } in
        let v = box t (b + wd ops (pc + 3)) in
        let loc = Array.unsafe_get p.bp_lpool (wd ops (pc + 4)) in
        check_access t ~kind:Racecheck.Write ~loc ptr;
        checked_store t ~loc ptr v;
        go (pc + 5)
    | 28 (* addr *) ->
        let ptr = get_ptr t (b + wd ops (pc + 2)) in
        let off = get_int t (b + wd ops (pc + 3)) in
        set_ptr t
          (b + wd ops (pc + 1))
          { ptr with Value.off = ptr.Value.off + off };
        go (pc + 4)
    | 29 (* min *) ->
        (let ra = b + wd ops (pc + 2) and rb = b + wd ops (pc + 3) in
         let d = b + wd ops (pc + 1) in
         if tag_of t ra = tag_float || tag_of t rb = tag_float then
           let bf = get_float t rb in
           let af = get_float t ra in
           set_float t d (Float.min af bf)
         else
           let bi = get_int t rb in
           let ai = get_int t ra in
           set_int t d (min ai bi));
        go (pc + 4)
    | 30 (* max *) ->
        (let ra = b + wd ops (pc + 2) and rb = b + wd ops (pc + 3) in
         let d = b + wd ops (pc + 1) in
         if tag_of t ra = tag_float || tag_of t rb = tag_float then
           let bf = get_float t rb in
           let af = get_float t ra in
           set_float t d (Float.max af bf)
         else
           let bi = get_int t rb in
           let ai = get_int t ra in
           set_int t d (max ai bi));
        go (pc + 4)
    | 31 (* abs *) ->
        (let r = b + wd ops (pc + 2) in
         let d = b + wd ops (pc + 1) in
         if tag_of t r = tag_float then set_float t d (Float.abs (getf t r))
         else set_int t d (abs (get_int t r)));
        go (pc + 3)
    | 32 (* float1 *) ->
        let x = get_float t (b + wd ops (pc + 3)) in
        set_float t
          (b + wd ops (pc + 2))
          (match wd ops (pc + 1) with
          | 0 -> Float.abs x
          | 1 -> Float.ceil x
          | 2 -> Float.floor x
          | 3 -> Float.sqrt x
          | 4 -> Float.exp x
          | _ -> Float.log x);
        go (pc + 4)
    | 33 (* pow *) ->
        (* Operands are [cast.float] results; y-side first as in the
           closure engine's right-to-left application. *)
        let fy = get_float t (b + wd ops (pc + 3)) in
        let fx = get_float t (b + wd ops (pc + 2)) in
        set_float t (b + wd ops (pc + 1)) (Float.pow fx fy);
        go (pc + 4)
    | 34 (* atomic *) ->
        let aop = Array.unsafe_get atomic_tbl (wd ops (pc + 1)) in
        let ptr = get_ptr t (b + wd ops (pc + 3)) in
        let v = box t (b + wd ops (pc + 4)) in
        let old =
          Memory.atomic_rmw t.blk.Compile.mem ptr (fun old ->
              atomic_combine aop old v)
        in
        set_value t (b + wd ops (pc + 2)) old;
        go (pc + 5)
    | 35 (* atomic.chk *) ->
        let aop = Array.unsafe_get atomic_tbl (wd ops (pc + 1)) in
        let ptr = get_ptr t (b + wd ops (pc + 3)) in
        let v = box t (b + wd ops (pc + 4)) in
        let loc = Array.unsafe_get p.bp_lpool (wd ops (pc + 5)) in
        check_access t ~kind:Racecheck.Atomic ~loc ptr;
        let old = checked_load t ~loc ptr in
        checked_store t ~loc ptr (atomic_combine aop old v);
        set_value t (b + wd ops (pc + 2)) old;
        go (pc + 6)
    | 36 (* cas *) ->
        let ptr = get_ptr t (b + wd ops (pc + 2)) in
        let cmpv = box t (b + wd ops (pc + 3)) in
        let v = box t (b + wd ops (pc + 4)) in
        let old =
          Memory.atomic_rmw t.blk.Compile.mem ptr (fun old ->
              if Value.as_int old = Value.as_int cmpv then v else old)
        in
        set_value t (b + wd ops (pc + 1)) old;
        go (pc + 5)
    | 37 (* cas.chk *) ->
        let ptr = get_ptr t (b + wd ops (pc + 2)) in
        let cmpv = box t (b + wd ops (pc + 3)) in
        let v = box t (b + wd ops (pc + 4)) in
        let loc = Array.unsafe_get p.bp_lpool (wd ops (pc + 5)) in
        check_access t ~kind:Racecheck.Atomic ~loc ptr;
        let old = checked_load t ~loc ptr in
        if Value.as_int old = Value.as_int cmpv then checked_store t ~loc ptr v;
        set_value t (b + wd ops (pc + 1)) old;
        go (pc + 6)
    | 38 (* malloc *) ->
        let n = get_int t (b + wd ops (pc + 2)) in
        set_ptr t
          (b + wd ops (pc + 1))
          (Memory.alloc t.blk.Compile.mem n ~init:(Value.Int 0));
        go (pc + 3)
    | 39 (* warp *) ->
        if t.blk.Compile.is_host_ctx then (
          (match wd ops (pc + 2) with
          | 3 (* Wk_sync *) -> set_unit t (b + wd ops (pc + 1))
          | _ -> Value.error "warp collective in host context");
          go (pc + 4))
        else begin
          let wop =
            match wd ops (pc + 2) with
            | 0 -> Compile.W_scan_excl
            | 1 -> Compile.W_sum
            | 2 -> Compile.W_max
            | _ -> Compile.W_sync
          in
          t.pc <- pc + 4;
          t.wdst <- b + wd ops (pc + 1);
          t.status <-
            T_at_warp { Compile.wop; warg = box t (b + wd ops (pc + 3)) }
        end
    | 40 (* warp.bcast *) ->
        if t.blk.Compile.is_host_ctx then
          Value.error "warp collective in host context"
        else begin
          let lane = geti t (b + wd ops (pc + 3)) in
          t.pc <- pc + 4;
          t.wdst <- b + wd ops (pc + 1);
          t.status <-
            T_at_warp
              {
                Compile.wop = Compile.W_bcast lane;
                warg = box t (b + wd ops (pc + 2));
              }
        end
    | 41 (* call *) ->
        let callee = Array.unsafe_get p.bp_funcs (wd ops (pc + 2)) in
        let nargs = wd ops (pc + 4) in
        let nbase = t.base + t.nregs in
        grow_regs t (nbase + callee.bf_nregs);
        if callee.bf_nregs > 0 then
          Bytes.fill t.tags nbase callee.bf_nregs '\000';
        for i = 0 to nargs - 1 do
          copy_reg t (nbase + i) (b + wd ops (pc + 5 + i))
        done;
        grow_stack t;
        let dep = t.depth in
        t.st_ret.(dep) <- pc + 5 + nargs;
        t.st_base.(dep) <- t.base;
        t.st_dst.(dep) <- b + wd ops (pc + 1);
        t.st_nregs.(dep) <- t.nregs;
        t.depth <- dep + 1;
        t.base <- nbase;
        t.nregs <- callee.bf_nregs;
        if callee.bf_is_serial then
          t.blk.Compile.metrics.Metrics.serialized_launches <-
            t.blk.Compile.metrics.Metrics.serialized_launches + 1;
        go (wd ops (pc + 3))
    | 42 (* ret.unit *) ->
        if t.depth = 0 then t.status <- T_done
        else begin
          let dep = t.depth - 1 in
          t.depth <- dep;
          set_unit t t.st_dst.(dep);
          t.base <- t.st_base.(dep);
          t.nregs <- t.st_nregs.(dep);
          go t.st_ret.(dep)
        end
    | 43 (* ret *) ->
        if t.depth = 0 then t.status <- T_done
        else begin
          let dep = t.depth - 1 in
          t.depth <- dep;
          copy_reg t t.st_dst.(dep) (b + wd ops (pc + 1));
          t.base <- t.st_base.(dep);
          t.nregs <- t.st_nregs.(dep);
          go t.st_ret.(dep)
        end
    | 44 (* jump *) -> go (wd ops (pc + 1))
    | 45 (* jfalse *) ->
        go (if get_bool t (b + wd ops (pc + 1)) then pc + 3 else wd ops (pc + 2))
    | 46 (* jtrue *) ->
        go (if get_bool t (b + wd ops (pc + 1)) then wd ops (pc + 2) else pc + 3)
    | 47 (* charge *) ->
        charge_tag t (wd ops (pc + 1)) (Array.unsafe_get fpool (wd ops (pc + 2)));
        go (pc + 3)
    | 48 (* split.dim3 *) ->
        let r = b + wd ops (pc + 4) in
        let x, y, z =
          match tag_of t r with
          | 4 -> (geti t r, getib t r, getic t r)
          | 1 -> (geti t r, 1, 1)
          | 0 -> (1, 1, 1)
          | _ ->
              Value.error "member assignment on non-dim3 %a" Value.pp (box t r)
        in
        set_int t (b + wd ops (pc + 1)) x;
        set_int t (b + wd ops (pc + 2)) y;
        set_int t (b + wd ops (pc + 3)) z;
        go (pc + 5)
    | 49 (* set.dim3 *) ->
        let n = get_int t (b + wd ops (pc + 6)) in
        let x = geti t (b + wd ops (pc + 3))
        and y = geti t (b + wd ops (pc + 4))
        and z = geti t (b + wd ops (pc + 5)) in
        let x, y, z =
          match Array.unsafe_get p.bp_spool (wd ops (pc + 2)) with
          | "x" -> (n, y, z)
          | "y" -> (x, n, z)
          | "z" -> (x, y, n)
          | f -> Value.error "dim3 has no member %S" f
        in
        set_dim3_v t (b + wd ops (pc + 1)) x y z;
        go (pc + 7)
    | 50 (* mload.dim3 *) ->
        let ptr = get_ptr t (b + wd ops (pc + 4)) in
        let off = get_int t (b + wd ops (pc + 5)) in
        let loc_ptr = { ptr with Value.off = ptr.Value.off + off } in
        let v = Memory.load t.blk.Compile.mem loc_ptr in
        let x, y, z =
          match v with
          | Value.Dim3 d -> d
          | Value.Unit | Value.Int 0 -> (1, 1, 1)
          | v -> Value.error "member assignment on non-dim3 %a" Value.pp v
        in
        set_int t (b + wd ops (pc + 1)) x;
        set_int t (b + wd ops (pc + 2)) y;
        set_int t (b + wd ops (pc + 3)) z;
        go (pc + 6)
    | 51 (* mload.chk *) ->
        let ptr = get_ptr t (b + wd ops (pc + 4)) in
        let off = get_int t (b + wd ops (pc + 5)) in
        let loc_ptr = { ptr with Value.off = ptr.Value.off + off } in
        let loc = Array.unsafe_get p.bp_lpool (wd ops (pc + 6)) in
        check_access t ~kind:Racecheck.Write ~loc loc_ptr;
        let v = checked_load t ~loc loc_ptr in
        let x, y, z =
          match v with
          | Value.Dim3 d -> d
          | Value.Unit | Value.Int 0 -> (1, 1, 1)
          | v -> Value.error "member assignment on non-dim3 %a" Value.pp v
        in
        set_int t (b + wd ops (pc + 1)) x;
        set_int t (b + wd ops (pc + 2)) y;
        set_int t (b + wd ops (pc + 3)) z;
        go (pc + 7)
    | 52 (* mstore.dim3 *) ->
        let ptr = get_ptr t (b + wd ops (pc + 1)) in
        let off = get_int t (b + wd ops (pc + 2)) in
        let loc_ptr = { ptr with Value.off = ptr.Value.off + off } in
        let n = get_int t (b + wd ops (pc + 7)) in
        let x = geti t (b + wd ops (pc + 4))
        and y = geti t (b + wd ops (pc + 5))
        and z = geti t (b + wd ops (pc + 6)) in
        let d =
          match Array.unsafe_get p.bp_spool (wd ops (pc + 3)) with
          | "x" -> (n, y, z)
          | "y" -> (x, n, z)
          | "z" -> (x, y, n)
          | f -> Value.error "dim3 has no member %S" f
        in
        Memory.store t.blk.Compile.mem loc_ptr (Value.Dim3 d);
        go (pc + 8)
    | 53 (* mstore.chk *) ->
        let ptr = get_ptr t (b + wd ops (pc + 1)) in
        let off = get_int t (b + wd ops (pc + 2)) in
        let loc_ptr = { ptr with Value.off = ptr.Value.off + off } in
        let n = get_int t (b + wd ops (pc + 7)) in
        let x = geti t (b + wd ops (pc + 4))
        and y = geti t (b + wd ops (pc + 5))
        and z = geti t (b + wd ops (pc + 6)) in
        let d =
          match Array.unsafe_get p.bp_spool (wd ops (pc + 3)) with
          | "x" -> (n, y, z)
          | "y" -> (x, n, z)
          | "z" -> (x, y, n)
          | f -> Value.error "dim3 has no member %S" f
        in
        let loc = Array.unsafe_get p.bp_lpool (wd ops (pc + 8)) in
        checked_store t ~loc loc_ptr (Value.Dim3 d);
        go (pc + 9)
    | 54 (* shared.hit *) -> (
        match Hashtbl.find_opt t.blk.Compile.shared (wd ops (pc + 2)) with
        | Some ptr ->
            set_ptr t (b + wd ops (pc + 1)) ptr;
            go (wd ops (pc + 3))
        | None -> go (pc + 4))
    | 55 (* shared.new *) ->
        let n = get_int t (b + wd ops (pc + 3)) in
        let dv = Array.unsafe_get p.bp_vpool (wd ops (pc + 4)) in
        let ptr = Memory.alloc t.blk.Compile.mem n ~init:dv in
        Hashtbl.add t.blk.Compile.shared (wd ops (pc + 2)) ptr;
        set_ptr t (b + wd ops (pc + 1)) ptr;
        go (pc + 5)
    | 56 (* launch.chk *) ->
        let kernel = Array.unsafe_get p.bp_spool (wd ops (pc + 1)) in
        let g = b + wd ops (pc + 2) in
        let gx, gy, gz = (geti t g, getib t g, getic t g) in
        if gx <= 0 || gy <= 0 || gz <= 0 then
          Value.error "launch of %S with empty grid (%d,%d,%d)" kernel gx gy gz;
        let blkr = b + wd ops (pc + 3) in
        let block = (geti t blkr, getib t blkr, getic t blkr) in
        if Value.dim3_total block > t.blk.Compile.cfg.Config.max_threads_per_block
        then
          Value.error "launch of %S with %d threads per block (max %d)" kernel
            (Value.dim3_total block)
            t.blk.Compile.cfg.Config.max_threads_per_block;
        go (pc + 4)
    | 57 (* launch *) ->
        let kernel = Array.unsafe_get p.bp_spool (wd ops (pc + 1)) in
        let g = b + wd ops (pc + 2) in
        let grid = (geti t g, getib t g, getic t g) in
        let blkr = b + wd ops (pc + 3) in
        let block = (geti t blkr, getib t blkr, getic t blkr) in
        let nargs = wd ops (pc + 4) in
        let rec collect i =
          if i = nargs then [] else box t (b + wd ops (pc + 5 + i)) :: collect (i + 1)
        in
        let args = collect 0 in
        t.blk.Compile.launches <-
          {
            Compile.lr_kernel = kernel;
            lr_grid = grid;
            lr_block = block;
            lr_args = args;
            lr_issue_cost = t.tot.(0);
            lr_from_host = t.blk.Compile.is_host_ctx;
          }
          :: t.blk.Compile.launches;
        go (pc + 5 + nargs)
    | 58 (* sync *) ->
        if t.blk.Compile.is_host_ctx then go (pc + 1)
        else begin
          t.pc <- pc + 1;
          t.status <- T_at_sync
        end
    (* Superinstructions — rotated-loop bottoms fused by the packer. Each
       arm runs the exact sub-step bodies (charge, increment with opcode-12
       Add semantics, fused compare-branch) in unfused order. *)
    | 59 (* loop.cc: charge; d += 1; cmp.jt *) ->
        charge_tag t (wd ops (pc + 1)) (Array.unsafe_get fpool (wd ops (pc + 2)));
        let d = b + wd ops (pc + 3) in
        (match tag_of t d with
        | 1 -> set_int t d (geti t d + 1)
        | 2 -> set_float t d (getf t d +. 1.0)
        | _ ->
            set_value t d
              (Compile.eval_binop Minicu.Ast.Add (box t d) (Value.Int 1)));
        let ra = b + wd ops (pc + 5) and rb = b + wd ops (pc + 6) in
        (* inline the dominant int-int Lt case (counting loops) *)
        let taken =
          if wd ops (pc + 4) = 5 && tag_of t ra = 1 && tag_of t rb = 1 then
            geti t ra < geti t rb
          else cmp2 t (Array.unsafe_get binop_tbl (wd ops (pc + 4))) ra rb
        in
        go (if taken then wd ops (pc + 7) else pc + 8)
    | 60 (* loop.cci: charge; d += 1; cmp.jt.int *) ->
        charge_tag t (wd ops (pc + 1)) (Array.unsafe_get fpool (wd ops (pc + 2)));
        let d = b + wd ops (pc + 3) in
        (match tag_of t d with
        | 1 -> set_int t d (geti t d + 1)
        | 2 -> set_float t d (getf t d +. 1.0)
        | _ ->
            set_value t d
              (Compile.eval_binop Minicu.Ast.Add (box t d) (Value.Int 1)));
        let ra = b + wd ops (pc + 5) in
        (* inline the dominant int Lt case (counting loops) *)
        let taken =
          if wd ops (pc + 4) = 5 && tag_of t ra = 1 then
            geti t ra < wd ops (pc + 6)
          else
            cmp1 t
              (Array.unsafe_get binop_tbl (wd ops (pc + 4)))
              ra
              (wd ops (pc + 6))
        in
        go (if taken then wd ops (pc + 7) else pc + 8)
    | 61 (* charge.jt: charge; cmp.jt *) ->
        charge_tag t (wd ops (pc + 1)) (Array.unsafe_get fpool (wd ops (pc + 2)));
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 3)) in
        go
          (if cmp2 t op (b + wd ops (pc + 4)) (b + wd ops (pc + 5)) then
             wd ops (pc + 6)
           else pc + 7)
    | 62 (* charge.jti: charge; cmp.jt.int *) ->
        charge_tag t (wd ops (pc + 1)) (Array.unsafe_get fpool (wd ops (pc + 2)));
        let op = Array.unsafe_get binop_tbl (wd ops (pc + 3)) in
        go
          (if cmp1 t op (b + wd ops (pc + 4)) (wd ops (pc + 5)) then
             wd ops (pc + 6)
           else pc + 7)
    | _ -> assert false
  in
  go t.pc

(* ------------------------------------------------------------------ *)
(* Thread pool (per-scheduler scratch arena)                           *)
(* ------------------------------------------------------------------ *)

let make_thread (blk : Compile.bctx) : thread =
  {
    tags = Bytes.make 64 '\000';
    ia = Array.make 64 0;
    ib = Array.make 64 0;
    ic = Array.make 64 0;
    fa = Array.make 64 0.0;
    base = 0;
    nregs = 0;
    pc = 0;
    st_ret = Array.make 8 0;
    st_base = Array.make 8 0;
    st_dst = Array.make 8 0;
    st_nregs = Array.make 8 0;
    depth = 0;
    costs = Array.make Metrics.num_tags 0.0;
    tot = Array.make 1 0.0;
    default_idx = 0;
    tidx = (0, 0, 0);
    blk;
    status = T_not_started;
    wdst = 0;
  }

type scratch = { mutable threads : thread array }

let create_scratch () = { threads = [||] }

let ensure_threads (s : scratch) (blk : Compile.bctx) n =
  let have = Array.length s.threads in
  if have < n then begin
    let old = s.threads in
    s.threads <-
      Array.init n (fun i -> if i < have then old.(i) else make_thread blk)
  end

(* Reset a pooled thread for a fresh block run: rebind the block context,
   zero the cost counters, point the pc at the kernel entry and seed the
   frame with the launch arguments. Registers beyond the arguments keep
   stale payloads but get Unit tags, exactly like a fresh closure frame. *)
let reset_thread (t : thread) (blk : Compile.bctx) ~tidx ~default_idx ~entry
    ~nregs ~(args : Value.t array) =
  t.blk <- blk;
  t.tidx <- tidx;
  t.default_idx <- default_idx;
  Array.fill t.costs 0 (Array.length t.costs) 0.0;
  t.tot.(0) <- 0.0;
  t.base <- 0;
  t.depth <- 0;
  t.pc <- entry;
  grow_regs t nregs;
  t.nregs <- nregs;
  Bytes.fill t.tags 0 nregs '\000';
  Array.iteri (fun i v -> set_value t i v) args;
  t.status <- T_not_started;
  t.wdst <- 0

(* ------------------------------------------------------------------ *)
(* Block execution (mirrors {!Exec.run_block})                         *)
(* ------------------------------------------------------------------ *)

let run_block (s : scratch) (p : Bytecode.prog) (kernel : Bytecode.func)
    ~(args : Value.t list) ~(gdim : int * int * int)
    ~(bdim : int * int * int) ~(bidx : int * int * int) ~(mem : Memory.t)
    ~(cfg : Config.t) ~(metrics : Metrics.t) ~(default_idx : int) :
    Exec.result =
  let bx, by, bz = bdim in
  let nthreads = bx * by * bz in
  if nthreads <= 0 then Value.error "empty block dimension";
  let ws = cfg.Config.warp_size in
  let nwarps = (nthreads + ws - 1) / ws in
  let racecheck =
    if cfg.Config.check then Some (Racecheck.create ~warp_size:ws ~nwarps)
    else None
  in
  let blk =
    {
      Compile.mem;
      cfg;
      metrics;
      bidx;
      bdim;
      gdim;
      shared = Hashtbl.create 4;
      launches = [];
      is_host_ctx = false;
      racecheck;
    }
  in
  let arg_values = Array.of_list args in
  if Array.length arg_values <> kernel.bf_nparams then
    Value.error "launch of %S: expected %d arguments, got %d" kernel.bf_name
      kernel.bf_nparams (Array.length arg_values);
  let entry_cost =
    if kernel.bf_contains_launch then float_of_int cfg.Config.cdp_entry_cost
    else 0.0
  in
  ensure_threads s blk nthreads;
  let threads = s.threads in
  let nregs = max kernel.bf_nregs 1 in
  let entry = p.bp_woff.(kernel.bf_entry) in
  for i = 0 to nthreads - 1 do
    let tx = i mod bx and ty = i / bx mod by and tz = i / (bx * by) in
    reset_thread threads.(i) blk ~tidx:(tx, ty, tz) ~default_idx ~entry ~nregs
      ~args:arg_values
  done;
  let start i =
    let t = threads.(i) in
    if entry_cost > 0.0 then charge_tag t Metrics.tag_default entry_cost;
    t.status <- T_running;
    interp p t
  in
  (* Advance one warp until every lane is done or at the barrier. *)
  let rec advance_warp w =
    let lo = w * ws and hi = min ((w + 1) * ws) nthreads in
    for i = lo to hi - 1 do
      match threads.(i).status with
      | T_not_started -> start i
      | _ -> ()
    done;
    (* collect warp-collective suspensions *)
    let warp_reqs = ref [] in
    for i = hi - 1 downto lo do
      match threads.(i).status with
      | T_at_warp req -> warp_reqs := (i, req) :: !warp_reqs
      | _ -> ()
    done;
    match !warp_reqs with
    | [] -> ()
    | reqs ->
        (* every live lane must be at the collective *)
        for i = lo to hi - 1 do
          match threads.(i).status with
          | T_at_warp _ | T_done -> ()
          | T_at_sync ->
              Value.error
                "lane %d reached __syncthreads while its warp executes a \
                 warp collective"
                (i - lo)
          | T_not_started | T_running -> assert false
        done;
        let results = Exec.eval_warp_op reqs in
        (* new warp epoch before the lanes resume, as in {!Exec} *)
        (match blk.Compile.racecheck with
        | Some rc -> Racecheck.bump_wepoch rc w
        | None -> ());
        List.iter
          (fun (i, v) ->
            let t = threads.(i) in
            set_value t t.wdst v;
            t.status <- T_running;
            interp p t)
          results;
        advance_warp w
  in
  let all_done () =
    let ok = ref true in
    for i = 0 to nthreads - 1 do
      match threads.(i).status with T_done -> () | _ -> ok := false
    done;
    !ok
  in
  let epochs = ref 0 in
  let rec block_loop () =
    incr epochs;
    if !epochs > 1_000_000 then
      Value.error "block executor: too many barrier epochs (livelock?)";
    for w = 0 to nwarps - 1 do
      advance_warp w
    done;
    if not (all_done ()) then begin
      (* all remaining threads are at the barrier: release them; the new
         barrier epoch starts before any thread resumes *)
      (match blk.Compile.racecheck with
      | Some rc -> Racecheck.bump_epoch rc
      | None -> ());
      let waiting = ref 0 in
      for i = 0 to nthreads - 1 do
        let t = threads.(i) in
        match t.status with
        | T_at_sync ->
            incr waiting;
            t.status <- T_running;
            interp p t
        | _ -> ()
      done;
      if !waiting = 0 then
        Value.error "block executor: threads neither done nor at a barrier";
      block_loop ()
    end
  in
  block_loop ();
  (match blk.Compile.racecheck with
  | Some rc -> Racecheck.commit rc ~kernel:kernel.bf_name ~bidx metrics
  | None -> ());
  (* free shared-memory buffers *)
  Hashtbl.iter (fun _ ptr -> Memory.free mem ptr) blk.Compile.shared;
  (* cost aggregation: per-warp, per-tag maxima — identical to {!Exec} *)
  let tag_cycles = Array.make Metrics.num_tags 0.0 in
  for w = 0 to nwarps - 1 do
    let lo = w * ws and hi = min ((w + 1) * ws) nthreads in
    for tag = 0 to Metrics.num_tags - 1 do
      let m = ref 0.0 in
      for i = lo to hi - 1 do
        let c = threads.(i).costs.(tag) in
        if c > !m then m := c
      done;
      tag_cycles.(tag) <- tag_cycles.(tag) +. !m
    done
  done;
  tag_cycles.(default_idx) <-
    tag_cycles.(default_idx) +. tag_cycles.(Metrics.tag_default);
  tag_cycles.(Metrics.tag_default) <- 0.0;
  let par = float_of_int cfg.Config.sm_warp_parallelism in
  let scaled = Array.map (fun c -> c /. par) tag_cycles in
  let compute = Array.fold_left ( +. ) 0.0 scaled in
  for tag = 1 to Metrics.num_tags - 1 do
    if scaled.(tag) > 0.0 then Metrics.charge metrics tag scaled.(tag)
  done;
  metrics.Metrics.blocks_executed <- metrics.Metrics.blocks_executed + 1;
  metrics.Metrics.threads_executed <- metrics.Metrics.threads_executed + nthreads;
  {
    Exec.r_launches = List.rev blk.Compile.launches;
    r_compute_cycles = compute;
    r_tag_cycles = scaled;
  }

(* Host-followup execution (mirrors {!Exec.run_host_stmts}): one
   pseudo-thread, host launch semantics, no device cost charged. [entry]
   is an instruction index ([bf_followup]); translated to its word offset
   here. *)
let run_host_stmts (p : Bytecode.prog) (kernel : Bytecode.func)
    ~(entry : int) ~(args : Value.t list) ~(grid : int * int * int)
    ~(block : int * int * int) ~(mem : Memory.t) ~(cfg : Config.t)
    ~(metrics : Metrics.t) : Compile.launch_req list =
  let blk =
    {
      Compile.mem;
      cfg;
      metrics;
      bidx = (0, 0, 0);
      bdim = block;
      gdim = grid;
      shared = Hashtbl.create 1;
      launches = [];
      is_host_ctx = true;
      racecheck = None;
    }
  in
  let t = make_thread blk in
  let nregs = max kernel.bf_nregs 1 in
  grow_regs t nregs;
  t.nregs <- nregs;
  Bytes.fill t.tags 0 nregs '\000';
  List.iteri (fun i v -> if i < nregs then set_value t i v) args;
  t.default_idx <- Metrics.tag_parent;
  t.pc <- p.bp_woff.(entry);
  t.status <- T_running;
  interp p t;
  List.rev blk.Compile.launches
