(** Runtime values of the MiniCU interpreter. *)

type ptr = {
  buf : int;  (** Buffer id in {!Memory}. *)
  off : int;  (** Element offset. *)
}

type t =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Dim3 of (int * int * int)
  | Ptr of ptr

exception Runtime_error of string

(** [error fmt ...] raises {!Runtime_error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Coercions follow C semantics: bools are 0/1, ints widen to floats,
    floats truncate toward zero to ints.
    @raise Runtime_error on non-numeric input. *)

val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_ptr : t -> ptr

(** A plain integer [n] converts to [dim3(n, 1, 1)], as in CUDA launch
    configurations. *)
val as_dim3 : t -> int * int * int

val dim3_total : int * int * int -> int
val is_float : t -> bool
