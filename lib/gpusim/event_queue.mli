(** A binary min-heap keyed by (time, insertion sequence): pops are
    deterministic — ties resolve in insertion order — which the simulator
    relies on for reproducible runs. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit

(** [pop t] removes and returns the earliest event.
    @raise Invalid_argument when empty. *)
val pop : 'a t -> float * 'a

val peek_time : 'a t -> float option
