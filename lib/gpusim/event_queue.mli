(** A binary min-heap keyed by (time, insertion sequence): pops are
    deterministic — ties resolve in insertion order — which the simulator
    relies on for reproducible runs.

    {!pop} clears the vacated heap slot, so popped payloads are not
    retained by the backing array (they can be collected as soon as the
    caller drops them).

    Domain-safety: a queue is not thread-safe; each simulated device owns
    its own queue and must be confined to one domain at a time. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit

(** [pop t] removes and returns the earliest event.
    @raise Invalid_argument when empty. *)
val pop : 'a t -> float * 'a

val peek_time : 'a t -> float option

(** [peek t] returns the earliest event without removing it (so its FIFO
    tie-break position is preserved, unlike pop-and-push-back). *)
val peek : 'a t -> (float * 'a) option
