(** Device model parameters for the GPU simulator.

    The defaults sketch a Volta-class device scaled to interpreted dataset
    sizes: the {e ratios} between launch cost, memory cost and ALU
    throughput drive the paper's effects (launch congestion, hardware
    underutilization, divergence), not the absolute values. All times are
    cycles of a nominal SM clock. *)

(** Which execution engine runs device code: the closure-tree interpreter
    ([Compile]/[Exec]) or the flat bytecode/register VM ([Bytecode]/[Vm]).
    Semantics are identical (pinned by the cross-engine differential
    suite); bytecode avoids per-step boxing and fibers. *)
type engine = Closure | Bytecode

val pp_engine : Format.formatter -> engine -> unit
val engine_of_string : string -> engine option

(** Stratified grid sampling: grids with at least [block_threshold] blocks
    simulate only a deterministic stratified sample of their blocks, and
    blocks issuing at least [launch_threshold] device launches dispatch only
    a sample of them; skipped work is represented by weights (scaled
    metrics, weighted launch-queue service, clock correction at drain).
    Samples are a pure function of [seed] and grid identity — identical at
    any [block_jobs] and across engines. *)
type sampling = {
  block_threshold : int;
  block_frac : float;  (** In (0, 1]. *)
  strata : int;  (** Contiguous strata per sampled grid (>= 1). *)
  seed : int;
  launch_threshold : int;
  launch_frac : float;
  min_static_work : float;
      (** Grids whose {!Blocksafe.static_work} estimate is below this floor
          are simulated exactly. *)
}

val default_sampling : sampling

type t = {
  (* execution engine *)
  engine : engine;
  block_jobs : int;
      (** Worker domains for within-run parallel block execution of
          provably conflict-free batches ({!Blocksafe}); results commit in
          event order, so output is byte-identical at any value. Default 1. *)
  sampling : sampling option;
      (** [None] (default) = exact: bit-identical to the pre-sampling
          scheduler. *)
  (* machine shape *)
  num_sms : int;
  warp_size : int;
  sm_warp_parallelism : int;
      (** Warp instructions retired per cycle per SM. *)
  max_threads_per_block : int;
  (* instruction costs (cycles per warp-instruction) *)
  arith_cost : int;
  mem_cost : int;
  atomic_cost : int;
  branch_cost : int;
  sync_cost : int;
  fence_cost : int;
  warp_collective_cost : int;
  alloc_cost : int;
  call_cost : int;
  (* dynamic-parallelism costs *)
  launch_issue_cost : int;
      (** Instructions the launching thread runs to issue a device launch. *)
  cdp_entry_cost : int;
      (** Per-thread cost at entry to any kernel whose body contains a
          launch, even if never executed — the Section VIII-D effect. *)
  device_launch_latency : int;
  host_launch_latency : int;
  launch_service_interval : int;
      (** The grid-management unit serves one pending launch per this many
          cycles; queueing here is the paper's launch congestion. *)
  block_sched_overhead : int;
  (* sanitizer *)
  check : bool;
      (** Enable the dynamic sanitizer ({!Racecheck}). Off by default;
          instrumentation is chosen at closure-compile time, so
          [check = false] runs pay nothing. *)
}

val default : t

(** Small machine, cheap launches: for unit tests. *)
val test_config : t

(** {2 Derived constants}

    Plain-number views of the scheduler's machine laws ([Sched]/[Exec]),
    exposed for the analytical cost model ({e lib/costmodel}). *)

(** Launches the grid-management unit serves per cycle
    (1 / [launch_service_interval]; [infinity] when the interval is 0). *)
val launch_service_rate : t -> float

(** Warp-instructions the whole device retires per cycle
    ([num_sms * sm_warp_parallelism]). *)
val warp_throughput : t -> float

(** Blocks resident device-wide: the scheduler runs one block per SM at a
    time, so this equals [num_sms]. *)
val resident_blocks : t -> int

(** Fraction of SMs occupied by a grid of [blocks] blocks, in [0, 1]. *)
val occupancy : t -> blocks:int -> float

(** Number of full scheduling waves a grid of [blocks] blocks needs
    (ceil(blocks / num_sms); 0 for an empty grid). *)
val waves : t -> blocks:int -> int
