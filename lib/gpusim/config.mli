(** Device model parameters for the GPU simulator.

    The defaults sketch a Volta-class device scaled to interpreted dataset
    sizes: the {e ratios} between launch cost, memory cost and ALU
    throughput drive the paper's effects (launch congestion, hardware
    underutilization, divergence), not the absolute values. All times are
    cycles of a nominal SM clock. *)

type t = {
  (* machine shape *)
  num_sms : int;
  warp_size : int;
  sm_warp_parallelism : int;
      (** Warp instructions retired per cycle per SM. *)
  max_threads_per_block : int;
  (* instruction costs (cycles per warp-instruction) *)
  arith_cost : int;
  mem_cost : int;
  atomic_cost : int;
  branch_cost : int;
  sync_cost : int;
  fence_cost : int;
  warp_collective_cost : int;
  alloc_cost : int;
  call_cost : int;
  (* dynamic-parallelism costs *)
  launch_issue_cost : int;
      (** Instructions the launching thread runs to issue a device launch. *)
  cdp_entry_cost : int;
      (** Per-thread cost at entry to any kernel whose body contains a
          launch, even if never executed — the Section VIII-D effect. *)
  device_launch_latency : int;
  host_launch_latency : int;
  launch_service_interval : int;
      (** The grid-management unit serves one pending launch per this many
          cycles; queueing here is the paper's launch congestion. *)
  block_sched_overhead : int;
  (* sanitizer *)
  check : bool;
      (** Enable the dynamic sanitizer ({!Racecheck}). Off by default;
          instrumentation is chosen at closure-compile time, so
          [check = false] runs pay nothing. *)
}

val default : t

(** Small machine, cheap launches: for unit tests. *)
val test_config : t
