(** Dynamic intra-block race detector (the "racecheck" half of dpcheck).

    One [t] shadows one thread block. Every instrumented global/shared
    memory access (see {!Compile}, [Config.check]) is recorded against a
    per-address cell holding the last write and up to two same-epoch reads
    from distinct threads — the classic two-reader trick: if any reader
    other than a later writer exists in the epoch, one of the two retained
    readers is such a reader, so keeping two suffices for detection.

    {b Epoch scheme.} Two counters order accesses:

    - the {e block epoch} increments each time the executor releases a
      [__syncthreads] barrier ({!bump_epoch}); accesses from different
      block epochs are ordered and never race;
    - a {e per-warp epoch} increments when a warp converges on any warp
      collective, including [__syncwarp] ({!bump_wepoch}); two accesses by
      the {e same} warp in different warp epochs are ordered. Accesses by
      {e different} warps are unordered within a block epoch regardless of
      warp epochs.

    Two same-address accesses race iff they are from different threads,
    in the same block epoch, not ordered by a warp epoch, not both
    atomic, and at least one is a write (atomics count as read+write but
    are mutually ordered by the memory controller).

    Reports are deduplicated per (address, kind) and capped; the total
    count and the first few reports flow into {!Metrics} via {!commit}. *)

type kind = Read | Write | Atomic

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Atomic -> Fmt.string ppf "atomic"

type access = {
  a_tid : int;  (** Linear thread index within the block. *)
  a_warp : int;
  a_epoch : int;  (** Block (barrier) epoch. *)
  a_wepoch : int;  (** The warp's collective epoch at access time. *)
  a_kind : kind;
  a_loc : Minicu.Loc.t;
}

type cell = {
  mutable last_write : access option;
  mutable read1 : access option;
  mutable read2 : access option;  (** From a different thread than read1. *)
}

type report = {
  r_buf : int;
  r_off : int;
  r_first : access;
  r_second : access;
}

let pp_report ~kernel ~bidx ppf r =
  let bx, by, bz = bidx in
  Fmt.pf ppf
    "race: %a-%a on buffer %d[%d] in block (%d,%d,%d) of %S: thread %d at \
     %a vs thread %d at %a"
    pp_kind r.r_first.a_kind pp_kind r.r_second.a_kind r.r_buf r.r_off bx by
    bz kernel r.r_first.a_tid Minicu.Loc.pp r.r_first.a_loc r.r_second.a_tid
    Minicu.Loc.pp r.r_second.a_loc

type t = {
  warp_size : int;
  mutable epoch : int;
  wepochs : int array;  (** Per-warp collective epochs. *)
  shadow : (int * int, cell) Hashtbl.t;
  mutable reports : report list;  (** Reversed; deduplicated and capped. *)
  mutable race_count : int;  (** All conflicts, including deduplicated. *)
  dedup : (int * int, unit) Hashtbl.t;
}

let max_reports = 16

let create ~warp_size ~nwarps =
  {
    warp_size;
    epoch = 0;
    wepochs = Array.make (max nwarps 1) 0;
    shadow = Hashtbl.create 64;
    reports = [];
    race_count = 0;
    dedup = Hashtbl.create 16;
  }

let bump_epoch t = t.epoch <- t.epoch + 1

let bump_wepoch t w =
  if w >= 0 && w < Array.length t.wepochs then
    t.wepochs.(w) <- t.wepochs.(w) + 1

(* Are [a] and [b] (same address) a data race? Stored accesses are pruned
   to the current block epoch, but re-check to stay correct if pruning
   changes. *)
let conflict a b =
  a.a_tid <> b.a_tid
  && a.a_epoch = b.a_epoch
  && (a.a_warp <> b.a_warp || a.a_wepoch = b.a_wepoch)
  && (not (a.a_kind = Atomic && b.a_kind = Atomic))
  && (a.a_kind <> Read || b.a_kind <> Read)

let report t ~buf ~off first second =
  t.race_count <- t.race_count + 1;
  if not (Hashtbl.mem t.dedup (buf, off)) then begin
    Hashtbl.replace t.dedup (buf, off) ();
    if List.length t.reports < max_reports then
      t.reports <-
        { r_buf = buf; r_off = off; r_first = first; r_second = second }
        :: t.reports
  end

(** [record t ~tid ~kind ~loc ptr] — log one access and report any
    conflict with the retained accesses to the same address. *)
let record t ~tid ~(kind : kind) ~loc (ptr : Value.ptr) =
  let w = tid / t.warp_size in
  let a =
    {
      a_tid = tid;
      a_warp = w;
      a_epoch = t.epoch;
      a_wepoch = (if w < Array.length t.wepochs then t.wepochs.(w) else 0);
      a_kind = kind;
      a_loc = loc;
    }
  in
  let key = (ptr.Value.buf, ptr.Value.off) in
  let cell =
    match Hashtbl.find_opt t.shadow key with
    | Some c -> c
    | None ->
        let c = { last_write = None; read1 = None; read2 = None } in
        Hashtbl.replace t.shadow key c;
        c
  in
  (* prune accesses from earlier block epochs: they are barrier-ordered *)
  let cur o =
    match o with Some x when x.a_epoch = t.epoch -> o | _ -> None
  in
  cell.last_write <- cur cell.last_write;
  cell.read1 <- cur cell.read1;
  cell.read2 <- cur cell.read2;
  let buf = ptr.Value.buf and off = ptr.Value.off in
  let against prev =
    match prev with
    | Some p when conflict p a -> report t ~buf ~off p a
    | _ -> ()
  in
  (match kind with
  | Read -> against cell.last_write
  | Write | Atomic ->
      against cell.last_write;
      against cell.read1;
      against cell.read2);
  (* retain *)
  match kind with
  | Write | Atomic -> cell.last_write <- Some a
  | Read -> (
      match cell.read1 with
      | None -> cell.read1 <- Some a
      | Some r1 when r1.a_tid = a.a_tid -> cell.read1 <- Some a
      | Some _ -> cell.read2 <- Some a)

(** [commit t ~kernel ~bidx metrics] — fold this block's findings into
    [metrics]: total conflict count plus rendered reports (capped). *)
let commit t ~kernel ~bidx (metrics : Metrics.t) =
  if t.race_count > 0 then begin
    metrics.races_detected <- metrics.races_detected + t.race_count;
    List.iter
      (fun r ->
        if List.length metrics.race_reports < max_reports then
          metrics.race_reports <-
            metrics.race_reports @ [ Fmt.str "%a" (pp_report ~kernel ~bidx) r ])
      (List.rev t.reports)
  end
