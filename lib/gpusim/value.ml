(** Runtime values of the MiniCU interpreter. *)

type ptr = {
  buf : int;  (** Buffer id in {!Memory}. *)
  off : int;  (** Element offset. *)
}

type t =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Dim3 of (int * int * int)
  | Ptr of ptr

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.float ppf f
  | Bool b -> Fmt.bool ppf b
  | Dim3 (x, y, z) -> Fmt.pf ppf "dim3(%d,%d,%d)" x y z
  | Ptr p -> Fmt.pf ppf "ptr(%d+%d)" p.buf p.off

let to_string v = Fmt.str "%a" pp v

(** Coercions follow C semantics: bools are 0/1 integers, ints widen to
    floats on demand. *)

let as_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | Float f -> int_of_float f
  | v -> error "expected an int, got %a" pp v

let as_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | Bool b -> if b then 1.0 else 0.0
  | v -> error "expected a float, got %a" pp v

let as_bool = function
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | v -> error "expected a bool, got %a" pp v

let as_ptr = function Ptr p -> p | v -> error "expected a pointer, got %a" pp v

(** [as_dim3 v] reads a launch-configuration value: a plain integer [n]
    denotes [dim3(n, 1, 1)], as in CUDA. *)
let as_dim3 = function
  | Dim3 (x, y, z) -> (x, y, z)
  | Int n -> (n, 1, 1)
  | Bool b -> ((if b then 1 else 0), 1, 1)
  | v -> error "expected a dim3 or int, got %a" pp v

let dim3_total (x, y, z) = x * y * z

(** Numeric binary operation dispatch: float if either side is float. *)
let is_float = function Float _ -> true | _ -> false
