(** Flat bytecode/register IR for MiniCU device code.

    Lowers kernel bodies to a flat instruction array over a per-function
    register file, executed by {!Vm} over unboxed register banks. The
    lowering mirrors {!Compile} case for case — same cost charging points,
    same runtime error messages, same side-effect order — so the two engines
    are observationally identical (pinned by the cross-engine differential
    suite, [test/test_bytecode.ml]). *)

type special = Sp_thread_idx | Sp_block_idx | Sp_block_dim | Sp_grid_dim

type float1 = F_fabs | F_ceil | F_floor | F_sqrt | F_exp | F_log

type atomic = A_add | A_sub | A_min | A_max | A_exch

type warp_kind = Wk_scan_excl | Wk_sum | Wk_max | Wk_sync

(** Operands are frame-relative register indices; jump targets are absolute
    code indices. A [Loc.t option] is [Some] exactly when lowered under
    [Config.check] — it carries the source location for sanitizer reports
    and selects the instrumented path in the VM. *)
type instr =
  | I_const_unit of int
  | I_const_int of int * int
  | I_const_float of int * float
  | I_const_bool of int * bool
  | I_const_dim3 of int * int * int * int
  | I_mov of int * int
  | I_special of int * special
  | I_special_comp of int * special * string
  | I_member of int * int * string
  | I_neg of int * int
  | I_not of int * int
  | I_binop of Minicu.Ast.binop * int * int * int
  | I_binop_int of Minicu.Ast.binop * int * int * int
      (** op, dst, a, int-literal right operand. *)
  | I_binop_float of Minicu.Ast.binop * int * int * float
  | I_cmp_jf of Minicu.Ast.binop * int * int * int
      (** Fused compare-and-branch: op, a, b, target if false. *)
  | I_cmp_jf_int of Minicu.Ast.binop * int * int * int
      (** op, a, int-literal right operand, target if false. *)
  | I_cmp_jt of Minicu.Ast.binop * int * int * int
      (** op, a, b, target if true — rotated-loop back edges. *)
  | I_cmp_jt_int of Minicu.Ast.binop * int * int * int
  | I_cast_int of int * int
  | I_cast_float of int * int
  | I_cast_bool of int * int
  | I_cast_dim3 of int * int
  | I_as_ptr of int * int
  | I_dim3 of int * int * int * int
  | I_load of int * int * int * Minicu.Loc.t option
  | I_store of int * int * int * Minicu.Loc.t option
  | I_addr of int * int * int
  | I_min of int * int * int
  | I_max of int * int * int
  | I_abs of int * int
  | I_float1 of float1 * int * int
  | I_pow of int * int * int
  | I_atomic of atomic * int * int * int * Minicu.Loc.t option
  | I_cas of int * int * int * int * Minicu.Loc.t option
  | I_malloc of int * int
  | I_warp of int * warp_kind * int
  | I_warp_bcast of int * int * int
  | I_call of int * int * int array
  | I_ret_unit
  | I_ret of int
  | I_jump of int
  | I_jump_if_false of int * int
  | I_jump_if_true of int * int
  | I_charge of int * float
  | I_split_dim3 of int * int * int * int
  | I_set_dim3 of int * string * int * int * int * int
  | I_member_load_dim of int * int * int * int * int * Minicu.Loc.t option
  | I_member_store_dim of
      int * int * string * int * int * int * int * Minicu.Loc.t option
  | I_shared_hit of int * int * int
  | I_shared_alloc of int * int * int * Value.t
  | I_launch_check of string * int * int
  | I_launch of string * int * int * int array
  | I_sync

type func = {
  bf_name : string;
  bf_kind : Minicu.Ast.func_kind;
  mutable bf_nregs : int;
      (** Register high-water mark over body and followup; registers are
          reused across sibling scopes. *)
  bf_nparams : int;
  bf_contains_launch : bool;
      (** Drives {!Config.cdp_entry_cost}, as in the closure engine. *)
  bf_is_serial : bool;
  bf_safety : Blocksafe.summary;
      (** Cross-block independence proof for parallel dispatch
          ({!Blocksafe.analyze}). *)
  bf_static_work : float;
      (** Per-thread static work estimate ({!Blocksafe.static_work});
          gates and stratifies grid sampling. *)
  mutable bf_entry : int;
  mutable bf_followup : int option;
}

type prog = {
  bp_code : instr array;  (** All functions, lowered contiguously. *)
  bp_funcs : func array;  (** In program order ([bf_entry] ascending). *)
  bp_index : (string, int) Hashtbl.t;
  bp_ast : Minicu.Ast.program;
  bp_ops : int array;
      (** Packed word stream — what {!Vm} actually dispatches on: an opcode
          word then the operand words per instruction, with jump targets as
          word offsets and non-int operands as pool indices (see the opcode
          table in the implementation). *)
  bp_woff : int array;
      (** Instruction index -> word offset into [bp_ops]; length
          [Array.length bp_code + 1]. *)
  bp_fpool : float array;  (** Float literals and charge amounts. *)
  bp_spool : string array;  (** Member and kernel names. *)
  bp_vpool : Value.t array;  (** Shared-memory element initializers. *)
  bp_lpool : Minicu.Loc.t array;  (** Source locations (checked mode). *)
}

val find_func_exn : prog -> string -> func

(** [compile cfg prog] typechecks and lowers a whole program. *)
val compile : Config.t -> Minicu.Ast.program -> prog

(** Pretty-printer for lowered programs: one section per function with
    numbered instructions. Deterministic — used for the golden
    [test/corpus/*.disasm] fixtures. *)
val pp : Format.formatter -> prog -> unit

val disassemble : prog -> string
