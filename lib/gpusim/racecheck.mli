(** Dynamic intra-block data-race detector ("racecheck" half of dpcheck).

    One value of type {!t} shadows one thread block: every instrumented
    global/shared memory access (enabled by [Config.check]; see {!Compile})
    is logged per address with its thread, warp, barrier epoch and warp
    epoch. Two same-address accesses race iff they come from different
    threads in the same barrier epoch, are not ordered by a warp-collective
    epoch of a common warp, are not both atomic, and at least one writes.

    The executor drives the epochs: {!bump_epoch} at every [__syncthreads]
    release, {!bump_wepoch} when a warp converges on a collective
    (including [__syncwarp]). After the block retires, {!commit} folds the
    findings into {!Metrics} ([races_detected], [race_reports]).

    The simulator is deterministic, so reports are stable and can be
    pinned as golden test expectations. *)

type kind = Read | Write | Atomic

type t

val create : warp_size:int -> nwarps:int -> t

(** Block-wide barrier released: accesses before and after are ordered. *)
val bump_epoch : t -> unit

(** Warp [w] converged on a collective: its own accesses before and after
    are ordered (other warps are unaffected). *)
val bump_wepoch : t -> int -> unit

(** [record t ~tid ~kind ~loc ptr] logs one access by linear thread [tid]
    and reports any conflict with retained accesses to the same address. *)
val record : t -> tid:int -> kind:kind -> loc:Minicu.Loc.t -> Value.ptr -> unit

(** Fold this block's findings into [metrics]: total conflict count plus
    rendered reports (deduplicated per address, capped). *)
val commit : t -> kernel:string -> bidx:int * int * int -> Metrics.t -> unit
