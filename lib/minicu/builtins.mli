(** Table of MiniCU builtin device functions, shared between the
    typechecker (arity, result type), the simulator's interpreter
    (semantics), and the cost model (cost class). *)

type cost_class =
  | Arith  (** ALU work: charged as plain instructions. *)
  | Mem  (** Touches global memory once. *)
  | Atomic  (** Global-memory atomic read-modify-write. *)
  | Warp_collective  (** Warp-scope collective (scan/reduce/broadcast). *)
  | Alloc  (** Device-side heap allocation. *)

type t = {
  b_name : string;
  b_arity : int;
  b_cost : cost_class;
  b_result : Ast.ty list -> Ast.ty;
      (** Result type given (loosely-typed) argument types. *)
}

(** All builtins: [min]/[max]/[abs]/math, [atomicAdd] and friends,
    device-side [malloc], and the warp collectives ([warp_scan_excl],
    [warp_sum], [warp_max], [warp_bcast]). *)
val table : t list

val find : string -> t option
val is_builtin : string -> bool
