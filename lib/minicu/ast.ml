(** Abstract syntax for MiniCU, the CUDA-like kernel language that the
    dynamic-parallelism optimization passes operate on.

    MiniCU deliberately mirrors the subset of CUDA C++ that the paper's
    transformations manipulate: kernels ([__global__]) and device functions
    ([__device__]), dynamic kernel launches ([k<<<g, b>>>(args)]), the
    reserved index/dimension variables ([threadIdx], [blockIdx], [blockDim],
    [gridDim]), barriers, fences, atomics, and shared memory. Host code is
    written in OCaml against the {!Gpusim.Device} API, so MiniCU has no host
    constructs.

    Every statement carries a {!tag} used by the simulator to attribute
    execution cost to a category of the paper's Figure 10 breakdown (parent
    work, child work, aggregation logic, launch, disaggregation logic). The
    front end produces [Tag_none]; the transformation passes tag the code
    they generate. *)

(** {1 Types} *)

type ty =
  | TVoid
  | TInt  (** 64-bit signed integer (models CUDA [int]/[unsigned]). *)
  | TFloat  (** Double-precision float (models CUDA [float]). *)
  | TBool
  | TDim3  (** CUDA [dim3] triple. *)
  | TPtr of ty  (** Pointer into device global (or shared) memory. *)
[@@deriving show { with_path = false }, eq]

(** {1 Operators} *)

type unop =
  | Neg  (** Arithmetic negation. *)
  | Not  (** Logical negation. *)
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LAnd
  | LOr
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
[@@deriving show { with_path = false }, eq]

(** {1 Expressions} *)

type expr =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr  (** [c ? a : b] *)
  | Index of expr * expr  (** [p\[i\]] — load through a pointer. *)
  | Member of expr * string  (** [e.x] — dim3 component access. *)
  | Call of string * expr list
      (** Builtin (e.g. [atomicAdd], [min], [ceil]) or device-function call. *)
  | Cast of ty * expr  (** [(float)e], [(int)e]. *)
  | Dim3_ctor of expr * expr * expr  (** [dim3(x, y, z)]. *)
  | Addr_of of expr  (** [&lv] — address of an lvalue, for atomics. *)
[@@deriving show { with_path = false }, eq]

(** {1 Cost-attribution tags}

    The simulator charges each executed statement's cost to the category of
    its tag, reproducing the paper's Figure 10 execution-time breakdown
    without the manual code-deactivation methodology of Section VII. *)

type tag =
  | Tag_none  (** Untagged: charged to the enclosing kernel's default. *)
  | Tag_parent  (** Parent work (incl. child work serialized by thresholding). *)
  | Tag_child  (** Child work. *)
  | Tag_agg  (** Aggregation logic inserted in the parent (Fig. 7). *)
  | Tag_disagg  (** Disaggregation logic inserted in the child (Fig. 7). *)
[@@deriving show { with_path = false }, eq]

(** {1 Statements} *)

type stmt = {
  sdesc : stmt_desc;
  stag : tag;
  sloc : (Loc.t[@equal fun _ _ -> true] [@opaque]);
      (** Source location of the statement's first token; {!Loc.dummy} for
          compiler-generated code. Exempt from derived equality so
          parse/pretty round-trips compare structurally. *)
}

and stmt_desc =
  | Decl of ty * string * expr option  (** [int x = e;] *)
  | Decl_shared of ty * string * expr
      (** [__shared__ int x\[n\];] — per-block shared array of static size. *)
  | Assign of expr * expr
      (** [lv = e;] — the left side must be a [Var], [Index] or [Member]. *)
  | If of expr * stmt list * stmt list
  | For of stmt option * expr option * stmt option * stmt list
      (** [for (init; cond; step) body] — [init]/[step] are restricted to
          declarations/assignments by the parser. *)
  | While of expr * stmt list
  | Return of expr option
  | Expr_stmt of expr  (** Expression evaluated for effect (atomics, calls). *)
  | Launch of launch  (** Dynamic (device-side) kernel launch. *)
  | Sync  (** [__syncthreads();] *)
  | Syncwarp  (** [__syncwarp();] *)
  | Threadfence  (** [__threadfence();] *)
  | Break
  | Continue

and launch = {
  l_kernel : string;  (** Callee kernel name. *)
  l_grid : expr;  (** Grid dimension: int or dim3-valued. *)
  l_block : expr;  (** Block dimension: int or dim3-valued. *)
  l_args : expr list;
}
[@@deriving show { with_path = false }, eq]

(** {1 Functions and programs} *)

type func_kind =
  | Global  (** [__global__] kernel: launchable. *)
  | Device  (** [__device__] function: callable from device code. *)
[@@deriving show { with_path = false }, eq]

type param = { p_ty : ty; p_name : string }
[@@deriving show { with_path = false }, eq]

type func = {
  f_name : string;
  f_kind : func_kind;
  f_ret : ty;
  f_params : param list;
  f_body : stmt list;
  f_host_followup : stmt list option;
      (** Host-side statements the runtime executes after a grid of this
          kernel drains. Used by grid-granularity aggregation (Section V-A),
          where the aggregated launch must be performed from the host. [None]
          for ordinary kernels. *)
}
[@@deriving show { with_path = false }, eq]

type program = func list [@@deriving show { with_path = false }, eq]

(** {1 Constructors} *)

let stmt ?(tag = Tag_none) ?(loc = Loc.dummy) sdesc =
  { sdesc; stag = tag; sloc = loc }

let retag tag s = { s with stag = tag }

(** [retag_deep tag ss] retags [ss] and all nested statements. Statements
    that already carry a non-[Tag_none] tag are left untouched so passes can
    layer tags without clobbering earlier attribution. *)
let rec retag_deep tag s =
  let t = if s.stag = Tag_none then tag else s.stag in
  let deep = List.map (retag_deep tag) in
  let sdesc =
    match s.sdesc with
    | If (c, a, b) -> If (c, deep a, deep b)
    | For (i, c, st, b) ->
        For (Option.map (retag_deep tag) i, c, Option.map (retag_deep tag) st, deep b)
    | While (c, b) -> While (c, deep b)
    | d -> d
  in
  { s with sdesc; stag = t }

let int_lit n = Int_lit n
let var x = Var x
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( &&: ) a b = Binop (LAnd, a, b)
let idx p i = Index (p, i)
let member e f = Member (e, f)
let call f args = Call (f, args)

(** Reserved dimension/index variable names (CUDA built-in variables). *)
let reserved_vars = [ "threadIdx"; "blockIdx"; "blockDim"; "gridDim" ]

let is_reserved_var x = List.mem x reserved_vars

(** [find_func p name] finds a function by name. *)
let find_func (p : program) name = List.find_opt (fun f -> f.f_name = name) p

let find_func_exn (p : program) name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Ast.find_func_exn: no function %S" name)

(** [replace_func p f] replaces the function named [f.f_name] in [p],
    preserving order. Raises [Invalid_argument] if absent. *)
let replace_func (p : program) (f : func) =
  if find_func p f.f_name = None then
    invalid_arg (Fmt.str "Ast.replace_func: no function %S" f.f_name);
  List.map (fun g -> if g.f_name = f.f_name then f else g) p

(** [add_func_after p ~anchor f] inserts [f] right after the function named
    [anchor] (used to keep generated helpers next to their origin). *)
let add_func_after (p : program) ~anchor (f : func) =
  let rec go = function
    | [] -> invalid_arg (Fmt.str "Ast.add_func_after: no function %S" anchor)
    | g :: rest when g.f_name = anchor -> g :: f :: rest
    | g :: rest -> g :: go rest
  in
  go p

(** [add_func_before p ~anchor f] inserts [f] right before [anchor]. *)
let add_func_before (p : program) ~anchor (f : func) =
  let rec go = function
    | [] -> invalid_arg (Fmt.str "Ast.add_func_before: no function %S" anchor)
    | g :: rest when g.f_name = anchor -> f :: g :: rest
    | g :: rest -> g :: go rest
  in
  go p
