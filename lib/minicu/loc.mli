(** Source locations for MiniCU programs. *)

type t = {
  file : string;  (** Source file name, or ["<generated>"]. *)
  line : int;  (** 1-based line number; 0 in {!dummy}. *)
  col : int;  (** 1-based column number. *)
}

val make : file:string -> line:int -> col:int -> t

(** Location attached to compiler-generated code. *)
val dummy : t

val is_dummy : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Raised by the front end (lexer, parser) on malformed input. *)
exception Error of t * string

(** [error loc fmt ...] raises {!Error} with a formatted message. *)
val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
