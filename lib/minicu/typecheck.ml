(** Static checks for MiniCU programs.

    The checker enforces the structural rules that the transformation passes
    and the simulator rely on:

    - all identifiers resolve (params, locals, reserved variables, functions);
    - calls match arity and call only [__device__] functions or builtins;
    - launches target [__global__] kernels with matching argument counts;
    - assignment targets are lvalues; reserved variables are read-only;
    - [__shared__] declarations appear only at kernel top level;
    - [break]/[continue] appear only inside loops.

    Typing is deliberately loose in the C tradition ([int] and [float] mix
    implicitly; pointer arithmetic yields pointers); the simulator is the
    ground truth for value semantics. *)

open Ast

exception Type_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(* Internal: a [Type_error] that has already been attributed to a source
   statement. Re-raised as plain [Type_error] with a "file:line:col: "
   prefix at the {!check} boundary, so the public exception (and every
   existing handler) is unchanged while CLI diagnostics gain a location. *)
exception Located of Loc.t * string

type env = {
  prog : program;
  vars : (string * ty) list;  (** In-scope variables, innermost first. *)
  in_loop : bool;
  fn : func;  (** Enclosing function. *)
}

let lookup_var env x =
  if is_reserved_var x then Some TDim3 else List.assoc_opt x env.vars

(* [unify a b] combines two loose types for an arithmetic context. *)
let join a b =
  match (a, b) with
  | TFloat, _ | _, TFloat -> TFloat
  | TPtr t, TInt | TInt, TPtr t -> TPtr t
  | TBool, TBool -> TBool
  | TInt, (TInt | TBool) | TBool, TInt -> TInt
  | TDim3, TDim3 -> TDim3
  | a, b when equal_ty a b -> a
  | _ -> fail "incompatible operand types %s and %s" (Pretty.ty_to_string a)
           (Pretty.ty_to_string b)

let rec check_expr env (e : expr) : ty =
  match e with
  | Int_lit _ -> TInt
  | Float_lit _ -> TFloat
  | Bool_lit _ -> TBool
  | Var x -> (
      match lookup_var env x with
      | Some ty -> ty
      | None -> fail "in %s: unbound variable %S" env.fn.f_name x)
  | Unop (Neg, a) -> (
      match check_expr env a with
      | (TInt | TFloat | TBool) as t -> t
      | t -> fail "cannot negate a value of type %s" (Pretty.ty_to_string t))
  | Unop (Not, a) ->
      ignore (check_expr env a);
      TBool
  | Binop (op, a, b) -> (
      let ta = check_expr env a in
      let tb = check_expr env b in
      match op with
      | Add | Sub | Mul | Div | Mod -> join ta tb
      | Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr ->
          ignore (join ta tb);
          TBool
      | BAnd | BOr | BXor | Shl | Shr -> TInt)
  | Ternary (c, a, b) ->
      ignore (check_expr env c);
      join (check_expr env a) (check_expr env b)
  | Index (p, i) -> (
      (match check_expr env i with
      | TInt | TBool -> ()
      | t -> fail "array index must be integral, got %s" (Pretty.ty_to_string t));
      match check_expr env p with
      | TPtr t -> t
      | t -> fail "cannot index a value of type %s" (Pretty.ty_to_string t))
  | Member (a, f) -> (
      match (check_expr env a, f) with
      | TDim3, ("x" | "y" | "z") -> TInt
      | TDim3, f -> fail "dim3 has no member %S" f
      | t, _ -> fail "cannot access member of type %s" (Pretty.ty_to_string t))
  | Call (name, args) -> check_call env name args
  | Cast (ty, a) ->
      ignore (check_expr env a);
      ty
  | Dim3_ctor (x, y, z) ->
      List.iter (fun e -> ignore (check_expr env e)) [ x; y; z ];
      TDim3
  | Addr_of lv -> (
      (* Only memory locations are addressable: locals live in registers
         (frames), matching the interpreter in Gpusim.Compile. *)
      match lv with
      | Index _ -> TPtr (check_expr env lv)
      | Var x ->
          fail
            "cannot take the address of local variable %S; atomics need a \
             memory element such as &a[i]"
            x
      | _ -> fail "'&' requires an indexable lvalue")

and check_call env name args =
  let tys = List.map (check_expr env) args in
  match Builtins.find name with
  | Some b ->
      if List.length args <> b.b_arity then
        fail "builtin %S expects %d arguments, got %d" name b.b_arity
          (List.length args);
      b.b_result tys
  | None -> (
      match find_func env.prog name with
      | Some f ->
          if f.f_kind <> Device then
            fail "cannot call kernel %S directly; use a launch" name;
          if List.length args <> List.length f.f_params then
            fail "call to %S expects %d arguments, got %d" name
              (List.length f.f_params) (List.length args);
          f.f_ret
      | None -> fail "in %s: unknown function %S" env.fn.f_name name)

let is_lvalue = function Var _ | Index _ | Member _ -> true | _ -> false

let rec check_stmts env ss = ignore (List.fold_left check_stmt env ss)

(* Attribute a failure to the innermost statement that owns it: nested
   statements raise [Located] themselves, which passes through untouched,
   while a bare [Type_error] from this statement's own expressions picks
   up [s.sloc] (unless the statement is compiler-generated). *)
and check_stmt env s : env =
  try check_stmt_desc env s
  with Type_error m when not (Loc.is_dummy s.sloc) ->
    raise (Located (s.sloc, m))

and check_stmt_desc env s : env =
  match s.sdesc with
  | Decl (ty, x, init) ->
      (match init with
      | Some e -> ignore (check_expr env e)
      | None -> ());
      if is_reserved_var x then fail "cannot redeclare reserved variable %S" x;
      { env with vars = (x, ty) :: env.vars }
  | Decl_shared (ty, x, size) ->
      (* Allowed in kernels and in device functions (which execute within a
         block's context) — the coarsening pass extracts kernel bodies into
         device functions and must preserve shared declarations. *)
      ignore (check_expr env size);
      { env with vars = (x, TPtr ty) :: env.vars }
  | Assign (lv, e) ->
      if not (is_lvalue lv) then fail "assignment target is not an lvalue";
      (match lv with
      | Var x when is_reserved_var x ->
          fail "cannot assign to reserved variable %S" x
      | _ -> ());
      ignore (check_expr env lv);
      ignore (check_expr env e);
      env
  | If (c, a, b) ->
      ignore (check_expr env c);
      check_stmts env a;
      check_stmts env b;
      env
  | For (init, cond, step, body) ->
      let env_hdr =
        match init with Some s -> check_stmt env s | None -> env
      in
      (match cond with Some c -> ignore (check_expr env_hdr c) | None -> ());
      (match step with
      | Some s -> ignore (check_stmt env_hdr s)
      | None -> ());
      check_stmts { env_hdr with in_loop = true } body;
      env
  | While (c, body) ->
      ignore (check_expr env c);
      check_stmts { env with in_loop = true } body;
      env
  | Return e ->
      (match (e, env.fn.f_ret) with
      | None, TVoid -> ()
      | None, t ->
          fail "in %s: return without a value in a function returning %s"
            env.fn.f_name (Pretty.ty_to_string t)
      | Some _, TVoid ->
          fail "in %s: returning a value from a void function" env.fn.f_name
      | Some e, _ -> ignore (check_expr env e));
      env
  | Expr_stmt e ->
      ignore (check_expr env e);
      env
  | Launch l -> (
      ignore (check_expr env l.l_grid);
      ignore (check_expr env l.l_block);
      List.iter (fun e -> ignore (check_expr env e)) l.l_args;
      match find_func env.prog l.l_kernel with
      | Some f ->
          if f.f_kind <> Global then
            fail "launch target %S is not a __global__ kernel" l.l_kernel;
          if List.length l.l_args <> List.length f.f_params then
            fail "launch of %S expects %d arguments, got %d" l.l_kernel
              (List.length f.f_params)
              (List.length l.l_args);
          env
      | None -> fail "launch of unknown kernel %S" l.l_kernel)
  | Sync | Syncwarp | Threadfence -> env
  | Break | Continue ->
      if not env.in_loop then fail "break/continue outside of a loop";
      env

let check_func prog (f : func) =
  List.iter
    (fun p ->
      if is_reserved_var p.p_name then
        fail "parameter %S shadows a reserved variable" p.p_name)
    f.f_params;
  let env =
    {
      prog;
      vars = List.map (fun p -> (p.p_name, p.p_ty)) f.f_params;
      in_loop = false;
      fn = f;
    }
  in
  check_stmts env f.f_body;
  match f.f_host_followup with
  | None -> ()
  | Some ss -> check_stmts env ss

(** [check p] validates a whole program.
    @raise Type_error describing the first violation found, prefixed with
    the offending statement's location when it has one. *)
let check (p : program) =
  try
    let seen = Hashtbl.create 16 in
    List.iter
      (fun f ->
        if Hashtbl.mem seen f.f_name then
          fail "duplicate function name %S" f.f_name;
        Hashtbl.add seen f.f_name ())
      p;
    List.iter (check_func p) p
  with Located (loc, m) ->
    raise (Type_error (Fmt.str "%a: %s" Loc.pp loc m))

(** [check_result p] is [Ok ()] or [Error msg]. *)
let check_result p =
  match check p with () -> Ok () | exception Type_error m -> Error m
