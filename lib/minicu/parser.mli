(** Recursive-descent parser for MiniCU (C-like grammar, standard C
    operator precedence). *)

(** [program ?file src] parses a full translation unit: a sequence of
    [__global__]/[__device__] function definitions.
    @raise Loc.Error on lexical or syntax errors, with position. *)
val program : ?file:string -> string -> Ast.program

(** [expr_of_string src] parses a single expression (for tests and tools).
    @raise Loc.Error on errors or trailing tokens. *)
val expr_of_string : string -> Ast.expr

(** [stmt_of_string src] parses a single statement. *)
val stmt_of_string : string -> Ast.stmt
