(** Source locations for MiniCU programs.

    Positions are tracked by the lexer and threaded through parse errors and
    typechecker diagnostics. Transformed (compiler-generated) code carries
    {!dummy}. *)

type t = {
  file : string;  (** Source file name, or ["<generated>"]. *)
  line : int;  (** 1-based line number. *)
  col : int;  (** 1-based column number. *)
}

let make ~file ~line ~col = { file; line; col }

let dummy = { file = "<generated>"; line = 0; col = 0 }

let is_dummy l = l.line = 0 && l.col = 0

let pp ppf l =
  if is_dummy l then Fmt.string ppf "<generated>"
  else Fmt.pf ppf "%s:%d:%d" l.file l.line l.col

let to_string l = Fmt.str "%a" pp l

(** Exception raised by the front end (lexer, parser, typechecker) on
    malformed input. *)
exception Error of t * string

let error loc fmt = Fmt.kstr (fun s -> raise (Error (loc, s))) fmt
