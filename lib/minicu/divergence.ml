(** Thread-divergence analysis over MiniCU kernels.

    Classifies every expression and control-flow context of a kernel at one
    of three uniformity levels relative to a thread block:

    - {!Uniform}: the value (or branch decision) is identical for every
      thread of the block — literals, parameters, [blockIdx]/[blockDim]/
      [gridDim], and anything computed only from those;
    - {!Warp_uniform}: identical within each warp but possibly different
      across warps — results of the warp collectives ([warp_sum],
      [warp_max], [warp_bcast]);
    - {!Varying}: potentially different per thread — anything derived from
      [threadIdx], [warp_scan_excl], atomics (the returned old value
      depends on interleaving), or device [malloc].

    The analysis is flow-insensitive on variables (a variable's level is
    the join over every assignment, including the context level at the
    assignment, iterated to a fixpoint) and optimistic on memory loads: a
    load through a {!Uniform} address is treated as {!Uniform}. That
    under-approximates divergence — a uniform-address load may observe
    racy data — but keeps the analysis quiet on the block-uniform
    shared-flag idiom ([while (flag[0]) {... __syncthreads(); ...}]) that
    KLAP-style promoted kernels rely on; the dynamic race detector
    ({!Gpusim.Racecheck}) covers the data side at run time.

    Consumers: the static sanitizer ([lib/analysis]) turns the collected
    {!event}s into diagnostics; {!Dpopt.Eligibility} refuses to aggregate
    parents whose barriers are already divergent. *)

open Ast

type level = Uniform | Warp_uniform | Varying

let join a b =
  match (a, b) with
  | Varying, _ | _, Varying -> Varying
  | Warp_uniform, _ | _, Warp_uniform -> Warp_uniform
  | Uniform, Uniform -> Uniform

let pp_level ppf = function
  | Uniform -> Fmt.string ppf "block-uniform"
  | Warp_uniform -> Fmt.string ppf "warp-uniform"
  | Varying -> Fmt.string ppf "thread-varying"

(** A statement of interest together with the uniformity level of the
    control flow enclosing it. *)
type event = {
  ev_kind : kind;
  ev_ctx : level;  (** Join of every enclosing branch/loop condition. *)
  ev_loc : Loc.t;
  ev_in_loop : bool;  (** Lexically inside a [for]/[while] body. *)
}

and kind =
  | Ev_sync  (** [__syncthreads()] — needs a {!Uniform} context. *)
  | Ev_syncwarp  (** [__syncwarp()] — needs at most {!Warp_uniform}. *)
  | Ev_collective of string  (** Warp-collective call — as [Ev_syncwarp]. *)
  | Ev_launch of string  (** Launch of the named kernel. *)
  | Ev_sync_in_call of string
      (** Call to a device function that (transitively) contains a block
          barrier; divergence at the call site is divergence at that
          barrier. *)

(* ------------------------------------------------------------------ *)
(* Per-function summaries                                              *)
(* ------------------------------------------------------------------ *)

(* Does [f] (transitively through device calls) execute a block barrier? *)
let contains_sync_deep (prog : program) (f : func) : bool =
  let seen = ref [] in
  let rec go (f : func) =
    if List.mem f.f_name !seen then false
    else begin
      seen := f.f_name :: !seen;
      Ast_util.contains_sync f.f_body
      || Ast_util.fold_exprs_in_stmts
           (fun acc e ->
             acc
             ||
             match e with
             | Call (g, _) when not (Builtins.is_builtin g) -> (
                 match find_func prog g with
                 | Some gf when gf.f_kind = Device -> go gf
                 | _ -> false)
             | _ -> false)
           false f.f_body
    end
  in
  go f

(* Intrinsic level of calling [f]: Varying if its body can produce a
   thread-dependent value independent of the arguments. *)
let intrinsic_call_level (prog : program) (name : string) : level =
  match find_func prog name with
  | None -> Varying (* unknown callee: be conservative *)
  | Some f ->
      let tainted =
        Ast_util.fold_exprs_in_stmts
          (fun acc e ->
            acc
            ||
            match e with
            | Var "threadIdx" | Member (Var "threadIdx", _) -> true
            | Index _ -> true (* loads inside callees: conservative *)
            | Call (g, _) -> (
                match Builtins.find g with
                | Some b ->
                    b.b_cost = Builtins.Atomic
                    || b.b_cost = Builtins.Warp_collective
                    || b.b_cost = Builtins.Alloc
                | None -> not (Builtins.is_builtin g))
            | _ -> false)
          false f.f_body
      in
      if tainted then Varying else Uniform

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

type env = {
  prog : program;
  vars : (string, level) Hashtbl.t;
  mutable events : event list;  (** Reversed during the walk. *)
  mutable changed : bool;  (** Variable level grew this iteration. *)
  mutable record : bool;  (** Emit events (final iteration only). *)
}

let var_level env x =
  if x = "threadIdx" then Varying
  else if is_reserved_var x then Uniform
  else match Hashtbl.find_opt env.vars x with Some l -> l | None -> Uniform

let raise_var env x l =
  let cur = var_level env x in
  let nl = join cur l in
  if nl <> cur then begin
    Hashtbl.replace env.vars x nl;
    env.changed <- true
  end

let rec expr_level env (e : expr) : level =
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ -> Uniform
  | Var x -> var_level env x
  | Member (Var "threadIdx", _) -> Varying
  | Member (a, _) -> expr_level env a
  | Unop (_, a) | Cast (_, a) -> expr_level env a
  | Binop (_, a, b) -> join (expr_level env a) (expr_level env b)
  | Ternary (c, a, b) ->
      join (expr_level env c) (join (expr_level env a) (expr_level env b))
  | Index (p, i) ->
      (* optimistic: a uniform-address load yields a uniform value *)
      join (expr_level env p) (expr_level env i)
  | Dim3_ctor (x, y, z) ->
      join (expr_level env x) (join (expr_level env y) (expr_level env z))
  | Addr_of a -> expr_level env a
  | Call (f, args) -> (
      let argl =
        List.fold_left (fun acc a -> join acc (expr_level env a)) Uniform args
      in
      match Builtins.find f with
      | Some b -> (
          match b.b_cost with
          | Builtins.Warp_collective ->
              if f = "warp_scan_excl" then Varying
              else Warp_uniform (* sum/max/bcast: same for all lanes *)
          | Builtins.Atomic | Builtins.Alloc -> Varying
          | Builtins.Arith | Builtins.Mem -> argl)
      | None -> join argl (intrinsic_call_level env.prog f))

let emit env kind ~ctx ~loc ~in_loop =
  if env.record then
    env.events <-
      { ev_kind = kind; ev_ctx = ctx; ev_loc = loc; ev_in_loop = in_loop }
      :: env.events

(* Collect collective calls and barrier-containing device calls inside the
   expressions of a statement. *)
let expr_events env ~ctx ~loc ~in_loop (e : expr) =
  ignore
    (Ast_util.fold_expr
       (fun () e ->
         match e with
         | Call (g, _) -> (
             match Builtins.find g with
             | Some b ->
                 if b.b_cost = Builtins.Warp_collective then
                   emit env (Ev_collective g) ~ctx ~loc ~in_loop
             | None -> (
                 match find_func env.prog g with
                 | Some gf
                   when gf.f_kind = Device && contains_sync_deep env.prog gf
                   ->
                     emit env (Ev_sync_in_call g) ~ctx ~loc ~in_loop
                 | _ -> ()))
         | _ -> ())
       () e)

let rec walk_stmts env ~ctx ~in_loop ss =
  List.iter (walk_stmt env ~ctx ~in_loop) ss

and walk_stmt env ~ctx ~in_loop (s : stmt) =
  let loc = s.sloc in
  let ee e = expr_events env ~ctx ~loc ~in_loop e in
  match s.sdesc with
  | Decl (_, x, init) ->
      Option.iter ee init;
      let l =
        match init with Some e -> expr_level env e | None -> Uniform
      in
      raise_var env x (join ctx l)
  | Decl_shared (_, x, size) ->
      ee size;
      (* the shared pointer itself is block-uniform *)
      raise_var env x Uniform
  | Assign (lv, e) ->
      ee lv;
      ee e;
      let l = join ctx (expr_level env e) in
      let rec target = function
        | Var x -> raise_var env x l
        | Member (a, _) -> target a
        | Index _ -> () (* memory, not a variable *)
        | _ -> ()
      in
      target lv
  | If (c, a, b) ->
      ee c;
      let ctx' = join ctx (expr_level env c) in
      walk_stmts env ~ctx:ctx' ~in_loop a;
      walk_stmts env ~ctx:ctx' ~in_loop b
  | While (c, body) ->
      ee c;
      let ctx' = join ctx (expr_level env c) in
      walk_stmts env ~ctx:ctx' ~in_loop:true body
  | For (init, cond, step, body) ->
      Option.iter (walk_stmt env ~ctx ~in_loop) init;
      Option.iter ee cond;
      let ctx' =
        join ctx
          (match cond with Some c -> expr_level env c | None -> Uniform)
      in
      Option.iter (walk_stmt env ~ctx:ctx' ~in_loop:true) step;
      walk_stmts env ~ctx:ctx' ~in_loop:true body
  | Return e -> Option.iter ee e
  | Expr_stmt e -> ee e
  | Launch l ->
      ee l.l_grid;
      ee l.l_block;
      List.iter ee l.l_args;
      emit env (Ev_launch l.l_kernel) ~ctx ~loc ~in_loop
  | Sync -> emit env Ev_sync ~ctx ~loc ~in_loop
  | Syncwarp -> emit env Ev_syncwarp ~ctx ~loc ~in_loop
  | Threadfence | Break | Continue -> ()

(** [events prog f] — every barrier, warp collective, barrier-containing
    device call and launch in [f]'s body, in source order, each with the
    uniformity level of its enclosing control flow. Parameters are assumed
    {!Uniform} (launch configuration and arguments are grid-wide). *)
let events (prog : program) (f : func) : event list =
  let env =
    {
      prog;
      vars = Hashtbl.create 16;
      events = [];
      changed = false;
      record = false;
    }
  in
  List.iter (fun (p : param) -> Hashtbl.replace env.vars p.p_name Uniform)
    f.f_params;
  (* fixpoint on variable levels (levels only grow; the lattice has height
     2, so this terminates quickly) *)
  let rec fix n =
    env.changed <- false;
    walk_stmts env ~ctx:Uniform ~in_loop:false f.f_body;
    if env.changed && n < 8 then fix (n + 1)
  in
  fix 0;
  env.record <- true;
  walk_stmts env ~ctx:Uniform ~in_loop:false f.f_body;
  List.rev env.events

(** [divergent_barriers prog f] — the subset of {!events} that the block
    executor cannot order: [__syncthreads] under non-uniform control flow,
    and warp-scope operations under thread-varying control flow. *)
let divergent_barriers (prog : program) (f : func) : event list =
  List.filter
    (fun ev ->
      match ev.ev_kind with
      | Ev_sync | Ev_sync_in_call _ -> ev.ev_ctx <> Uniform
      | Ev_syncwarp | Ev_collective _ -> ev.ev_ctx = Varying
      | Ev_launch _ -> false)
    (events prog f)
