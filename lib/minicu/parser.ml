(** Recursive-descent parser for MiniCU.

    The grammar is the C-like subset described in {!module:Ast}. Expressions
    use standard C precedence. Menhir is not available in this environment,
    so the parser is hand-written over the token stream from {!module:Lexer};
    it is deliberately simple and produces located errors via {!Loc.Error}. *)

open Ast

type t = {
  toks : (Lexer.token * Loc.t) array;
  mutable cur : int;
}

let make_state toks = { toks = Array.of_list toks; cur = 0 }

let peek st = fst st.toks.(st.cur)
let peek_loc st = snd st.toks.(st.cur)

let peek2 st =
  if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1)
  else Lexer.EOF

let peek3 st =
  if st.cur + 2 < Array.length st.toks then fst st.toks.(st.cur + 2)
  else Lexer.EOF

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let err st fmt =
  Fmt.kstr (fun s -> Loc.error (peek_loc st) "%s (at token %S)" s
                       (Lexer.token_to_string (peek st))) fmt

let expect st tok =
  if peek st = tok then advance st
  else err st "expected %S" (Lexer.token_to_string tok)

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> err st "expected identifier"

(* ---------- types ---------- *)

let is_type_start = function
  | Lexer.KW_VOID | Lexer.KW_INT | Lexer.KW_FLOAT | Lexer.KW_BOOL
  | Lexer.KW_DIM3 ->
      true
  | _ -> false

let parse_base_ty st =
  let ty =
    match peek st with
    | Lexer.KW_VOID -> TVoid
    | Lexer.KW_INT -> TInt
    | Lexer.KW_FLOAT -> TFloat
    | Lexer.KW_BOOL -> TBool
    | Lexer.KW_DIM3 -> TDim3
    | _ -> err st "expected type"
  in
  advance st;
  ty

let parse_ty st =
  let base = parse_base_ty st in
  let rec stars ty =
    if peek st = Lexer.STAR then (
      advance st;
      stars (TPtr ty))
    else ty
  in
  stars base

(* ---------- expressions (Pratt / precedence climbing) ---------- *)

(* Binding powers, higher binds tighter. *)
let binop_of_token = function
  | Lexer.OROR -> Some (LOr, 1)
  | Lexer.ANDAND -> Some (LAnd, 2)
  | Lexer.PIPE -> Some (BOr, 3)
  | Lexer.CARET -> Some (BXor, 4)
  | Lexer.AMP -> Some (BAnd, 5)
  | Lexer.EQEQ -> Some (Eq, 6)
  | Lexer.NEQ -> Some (Ne, 6)
  | Lexer.LT -> Some (Lt, 7)
  | Lexer.LE -> Some (Le, 7)
  | Lexer.GT -> Some (Gt, 7)
  | Lexer.GE -> Some (Ge, 7)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | _ -> None

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let cond = parse_binary st 0 in
  if peek st = Lexer.QUESTION then (
    advance st;
    let a = parse_expr st in
    expect st Lexer.COLON;
    let b = parse_ternary st in
    Ternary (cond, a, b))
  else cond

and parse_binary st min_bp =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, bp) when bp >= min_bp ->
        advance st;
        let rhs = parse_binary st (bp + 1) in
        lhs := Binop (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      (* Fold negation of a numeric literal into the literal itself
         ({!Ast_util.neg}), so the parse of printed output is canonical:
         [Pretty] renders [Int_lit (-5)] and [Unop (Neg, Int_lit 5)]
         identically as "-5" (C has no negative-literal token), and
         without folding the re-parse always picked the [Unop] form,
         silently splitting hand-built negative literals from their own
         round-trip. *)
      Ast_util.neg (parse_unary st)
  | Lexer.BANG ->
      advance st;
      Unop (Not, parse_unary st)
  | Lexer.AMP ->
      advance st;
      Addr_of (parse_unary st)
  | Lexer.LPAREN when is_type_start (peek2 st) && peek2 st <> Lexer.KW_DIM3 ->
      (* cast: "(" type ")" unary. dim3 in parens is only a cast if followed
         by ")" or "*": [dim3(...)] in expression position is a constructor,
         which never appears right after "(" with a ")" after it here. *)
      advance st;
      let ty = parse_ty st in
      expect st Lexer.RPAREN;
      Cast (ty, parse_unary st)
  | Lexer.LPAREN
    when peek2 st = Lexer.KW_DIM3 && (peek3 st = Lexer.RPAREN || peek3 st = Lexer.STAR) ->
      advance st;
      let ty = parse_ty st in
      expect st Lexer.RPAREN;
      Cast (ty, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let i = parse_expr st in
        expect st Lexer.RBRACKET;
        e := Index (!e, i)
    | Lexer.DOT ->
        advance st;
        let f = expect_ident st in
        e := Member (!e, f)
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Int_lit n
  | Lexer.FLOAT f ->
      advance st;
      Float_lit f
  | Lexer.KW_TRUE ->
      advance st;
      Bool_lit true
  | Lexer.KW_FALSE ->
      advance st;
      Bool_lit false
  | Lexer.KW_DIM3 ->
      advance st;
      expect st Lexer.LPAREN;
      let args = parse_args st in
      expect st Lexer.RPAREN;
      (match args with
      | [ x ] -> Dim3_ctor (x, Int_lit 1, Int_lit 1)
      | [ x; y ] -> Dim3_ctor (x, y, Int_lit 1)
      | [ x; y; z ] -> Dim3_ctor (x, y, z)
      | _ -> err st "dim3 constructor takes 1-3 arguments")
  | Lexer.IDENT name when peek2 st = Lexer.LPAREN ->
      advance st;
      advance st;
      let args = parse_args st in
      expect st Lexer.RPAREN;
      Call (name, args)
  | Lexer.IDENT name ->
      advance st;
      Var name
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | _ -> err st "expected expression"

and parse_args st =
  if peek st = Lexer.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if peek st = Lexer.COMMA then (
        advance st;
        go (e :: acc))
      else List.rev (e :: acc)
    in
    go []

(* ---------- statements ---------- *)

let is_lvalue = function Var _ | Index _ | Member _ -> true | _ -> false

(* Parse the "simple statement" fragment used in for-headers and
   expression-statement position: declaration, assignment, compound
   assignment, increment/decrement, or a bare expression. *)
let rec parse_simple st : stmt =
  (* shadow the constructor so every statement built below carries the
     location of its first token *)
  let loc = peek_loc st in
  let stmt d = Ast.stmt ~loc d in
  if is_type_start (peek st) && peek st <> Lexer.KW_DIM3 then parse_decl st
  else if peek st = Lexer.KW_DIM3 && (match peek2 st with Lexer.IDENT _ -> true | Lexer.STAR -> true | _ -> false)
  then parse_decl st
  else
    let lv = parse_expr st in
    match peek st with
    | Lexer.ASSIGN ->
        if not (is_lvalue lv) then err st "left side of '=' is not an lvalue";
        advance st;
        let e = parse_expr st in
        stmt (Assign (lv, e))
    | Lexer.PLUSEQ | Lexer.MINUSEQ | Lexer.STAREQ | Lexer.SLASHEQ ->
        if not (is_lvalue lv) then err st "left side of compound assignment is not an lvalue";
        let op =
          match peek st with
          | Lexer.PLUSEQ -> Add
          | Lexer.MINUSEQ -> Sub
          | Lexer.STAREQ -> Mul
          | _ -> Div
        in
        advance st;
        let e = parse_expr st in
        stmt (Assign (lv, Binop (op, lv, e)))
    | Lexer.PLUSPLUS ->
        if not (is_lvalue lv) then err st "operand of '++' is not an lvalue";
        advance st;
        stmt (Assign (lv, Binop (Add, lv, Int_lit 1)))
    | Lexer.MINUSMINUS ->
        if not (is_lvalue lv) then err st "operand of '--' is not an lvalue";
        advance st;
        stmt (Assign (lv, Binop (Sub, lv, Int_lit 1)))
    | _ -> stmt (Expr_stmt lv)

and parse_decl st : stmt =
  let loc = peek_loc st in
  let stmt d = Ast.stmt ~loc d in
  let ty = parse_ty st in
  let name = expect_ident st in
  if peek st = Lexer.ASSIGN then (
    advance st;
    let e = parse_expr st in
    stmt (Decl (ty, name, Some e)))
  else stmt (Decl (ty, name, None))

let rec parse_stmt st : stmt =
  let loc = peek_loc st in
  let stmt d = Ast.stmt ~loc d in
  match peek st with
  | Lexer.KW_SHARED ->
      advance st;
      let ty = parse_ty st in
      let name = expect_ident st in
      expect st Lexer.LBRACKET;
      let size = parse_expr st in
      expect st Lexer.RBRACKET;
      expect st Lexer.SEMI;
      stmt (Decl_shared (ty, name, size))
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block_or_stmt st in
      let else_ =
        if peek st = Lexer.KW_ELSE then (
          advance st;
          parse_block_or_stmt st)
        else []
      in
      stmt (If (cond, then_, else_))
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let init =
        if peek st = Lexer.SEMI then None else Some (parse_simple st)
      in
      expect st Lexer.SEMI;
      let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI;
      let step =
        if peek st = Lexer.RPAREN then None else Some (parse_simple st)
      in
      expect st Lexer.RPAREN;
      let body = parse_block_or_stmt st in
      stmt (For (init, cond, step, body))
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let body = parse_block_or_stmt st in
      stmt (While (cond, body))
  | Lexer.KW_RETURN ->
      advance st;
      if peek st = Lexer.SEMI then (
        advance st;
        stmt (Return None))
      else
        let e = parse_expr st in
        expect st Lexer.SEMI;
        stmt (Return (Some e))
  | Lexer.KW_BREAK ->
      advance st;
      expect st Lexer.SEMI;
      stmt Break
  | Lexer.KW_CONTINUE ->
      advance st;
      expect st Lexer.SEMI;
      stmt Continue
  | Lexer.IDENT k when peek2 st = Lexer.LAUNCH_OPEN ->
      advance st;
      advance st;
      let grid = parse_expr st in
      expect st Lexer.COMMA;
      let block = parse_expr st in
      expect st Lexer.LAUNCH_CLOSE;
      expect st Lexer.LPAREN;
      let args = parse_args st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      stmt (Launch { l_kernel = k; l_grid = grid; l_block = block; l_args = args })
  | Lexer.IDENT "__syncthreads" when peek2 st = Lexer.LPAREN ->
      advance st;
      advance st;
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      stmt Sync
  | Lexer.IDENT "__syncwarp" when peek2 st = Lexer.LPAREN ->
      advance st;
      advance st;
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      stmt Syncwarp
  | Lexer.IDENT "__threadfence" when peek2 st = Lexer.LPAREN ->
      advance st;
      advance st;
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      stmt Threadfence
  | Lexer.LBRACE ->
      (* anonymous block: flatten into an If(true) so stmt lists stay flat *)
      let body = parse_block st in
      stmt (If (Bool_lit true, body, []))
  | _ ->
      let s = parse_simple st in
      expect st Lexer.SEMI;
      s

and parse_block st : stmt list =
  expect st Lexer.LBRACE;
  let rec go acc =
    if peek st = Lexer.RBRACE then (
      advance st;
      List.rev acc)
    else go (parse_stmt st :: acc)
  in
  go []

and parse_block_or_stmt st : stmt list =
  if peek st = Lexer.LBRACE then parse_block st else [ parse_stmt st ]

(* ---------- functions and programs ---------- *)

let parse_params st =
  expect st Lexer.LPAREN;
  if peek st = Lexer.RPAREN then (
    advance st;
    [])
  else
    let rec go acc =
      let ty = parse_ty st in
      let name = expect_ident st in
      let p = { p_ty = ty; p_name = name } in
      if peek st = Lexer.COMMA then (
        advance st;
        go (p :: acc))
      else (
        expect st Lexer.RPAREN;
        List.rev (p :: acc))
    in
    go []

let parse_func st : func =
  let kind =
    match peek st with
    | Lexer.KW_GLOBAL ->
        advance st;
        Global
    | Lexer.KW_DEVICE ->
        advance st;
        Device
    | _ -> err st "expected __global__ or __device__"
  in
  let ret = parse_ty st in
  if kind = Global && ret <> TVoid then
    Loc.error (peek_loc st) "__global__ kernels must return void";
  let name = expect_ident st in
  let params = parse_params st in
  let body = parse_block st in
  {
    f_name = name;
    f_kind = kind;
    f_ret = ret;
    f_params = params;
    f_body = body;
    f_host_followup = None;
  }

let parse_program st : program =
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc else go (parse_func st :: acc)
  in
  go []

(** [program ?file src] parses a full MiniCU translation unit.
    @raise Loc.Error on lexical or syntax errors. *)
let program ?file src =
  let toks = Lexer.tokenize ?file src in
  let st = make_state toks in
  parse_program st

(** [expr_of_string src] parses a single expression (useful in tests). *)
let expr_of_string src =
  let toks = Lexer.tokenize src in
  let st = make_state toks in
  let e = parse_expr st in
  if peek st <> Lexer.EOF then err st "trailing tokens after expression";
  e

(** [stmt_of_string src] parses a single statement (useful in tests). *)
let stmt_of_string src =
  let toks = Lexer.tokenize src in
  let st = make_state toks in
  let s = parse_stmt st in
  if peek st <> Lexer.EOF then err st "trailing tokens after statement";
  s
