(** Abstract syntax for MiniCU, the CUDA-like kernel language the
    dynamic-parallelism optimization passes operate on.

    MiniCU mirrors the subset of CUDA C++ that the paper's transformations
    manipulate: kernels and device functions, dynamic launches
    ([k<<<g, b>>>(args)]), the reserved index/dimension variables, barriers,
    fences, atomics, warp collectives, shared memory, and device [malloc].
    Host code is written in OCaml against {!Gpusim.Device}.

    Statements carry a {!tag} that the simulator uses to attribute executed
    cycles to a category of the paper's Fig. 10 execution-time breakdown. *)

(** {1 Types} *)

type ty =
  | TVoid
  | TInt  (** Models CUDA [int]/[unsigned]. *)
  | TFloat  (** Models CUDA [float]/[double]. *)
  | TBool
  | TDim3  (** CUDA [dim3] triple. *)
  | TPtr of ty  (** Pointer into device global (or shared) memory. *)
[@@deriving show, eq]

(** {1 Operators} *)

type unop = Neg | Not [@@deriving show, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LAnd
  | LOr
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
[@@deriving show, eq]

(** {1 Expressions} *)

type expr =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Index of expr * expr  (** [p\[i\]]. *)
  | Member of expr * string  (** [e.x] — dim3 component access. *)
  | Call of string * expr list  (** Builtin or device-function call. *)
  | Cast of ty * expr
  | Dim3_ctor of expr * expr * expr  (** [dim3(x, y, z)]. *)
  | Addr_of of expr  (** [&p\[i\]] — for atomics. *)
[@@deriving show, eq]

(** {1 Cost-attribution tags} *)

type tag =
  | Tag_none  (** Charged to the grid's default (parent or child). *)
  | Tag_parent
  | Tag_child
  | Tag_agg  (** Aggregation logic (Fig. 7, parent side). *)
  | Tag_disagg  (** Disaggregation logic (Fig. 7, child side). *)
[@@deriving show, eq]

(** {1 Statements} *)

type stmt = {
  sdesc : stmt_desc;
  stag : tag;
  sloc : (Loc.t[@equal fun _ _ -> true] [@opaque]);
      (** Statement's source location ({!Loc.dummy} when generated); exempt
          from derived equality so round-trips compare structurally. *)
}

and stmt_desc =
  | Decl of ty * string * expr option
  | Decl_shared of ty * string * expr
      (** [__shared__ ty x\[size\]] — per-block array. *)
  | Assign of expr * expr  (** Left side must be [Var]/[Index]/[Member]. *)
  | If of expr * stmt list * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr_stmt of expr
  | Launch of launch  (** Dynamic (device-side) kernel launch. *)
  | Sync  (** [__syncthreads()]. *)
  | Syncwarp  (** [__syncwarp()]. *)
  | Threadfence  (** [__threadfence()]. *)
  | Break
  | Continue

and launch = {
  l_kernel : string;
  l_grid : expr;  (** Int- or dim3-valued. *)
  l_block : expr;
  l_args : expr list;
}
[@@deriving show, eq]

(** {1 Functions and programs} *)

type func_kind = Global  (** [__global__] *) | Device  (** [__device__] *)
[@@deriving show, eq]

type param = { p_ty : ty; p_name : string } [@@deriving show, eq]

type func = {
  f_name : string;
  f_kind : func_kind;
  f_ret : ty;
  f_params : param list;
  f_body : stmt list;
  f_host_followup : stmt list option;
      (** Host-side statements the runtime executes after a grid of this
          kernel drains — used by grid-granularity aggregation, where the
          aggregated launch comes from the host (Section V-A). *)
}
[@@deriving show, eq]

type program = func list [@@deriving show, eq]

(** {1 Constructors and helpers} *)

val stmt : ?tag:tag -> ?loc:Loc.t -> stmt_desc -> stmt
val retag : tag -> stmt -> stmt

(** [retag_deep tag s] retags [s] and all nested statements, preserving
    existing non-[Tag_none] tags. *)
val retag_deep : tag -> stmt -> stmt

val int_lit : int -> expr
val var : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val idx : expr -> expr -> expr
val member : expr -> string -> expr
val call : string -> expr list -> expr

(** The CUDA built-in variables: [threadIdx], [blockIdx], [blockDim],
    [gridDim]. *)
val reserved_vars : string list

val is_reserved_var : string -> bool
val find_func : program -> string -> func option
val find_func_exn : program -> string -> func

(** [replace_func p f] replaces the function named [f.f_name], preserving
    order. @raise Invalid_argument if absent. *)
val replace_func : program -> func -> program

(** [add_func_after p ~anchor f] inserts [f] right after [anchor]. *)
val add_func_after : program -> anchor:string -> func -> program

val add_func_before : program -> anchor:string -> func -> program
