(** Hand-written lexer for MiniCU source text.

    The triple-chevron launch tokens ([<<<]/[>>>]) are lexed greedily;
    MiniCU has no template syntax, so this is unambiguous. C-style integer
    and float suffixes ([1u], [1.0f], [1ull]) are accepted and dropped;
    [unsigned] lexes as [int] and [double] as [float]. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_GLOBAL
  | KW_DEVICE
  | KW_SHARED
  | KW_VOID
  | KW_INT
  | KW_FLOAT
  | KW_BOOL
  | KW_DIM3
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | DOT
  | QUESTION
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | BANG
  | ASSIGN
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PLUSPLUS
  | MINUSMINUS
  | SHL
  | SHR
  | LAUNCH_OPEN  (** [<<<] *)
  | LAUNCH_CLOSE  (** [>>>] *)
  | EOF

val token_to_string : token -> string

(** Incremental interface. *)

type t

val create : ?file:string -> string -> t

(** [next t] returns the next token with its start location.
    @raise Loc.Error on malformed input. *)
val next : t -> token * Loc.t

(** [tokenize ?file src] lexes the whole input; the result ends with
    [EOF]. *)
val tokenize : ?file:string -> string -> (token * Loc.t) list
