(** Table of MiniCU builtin device functions.

    Shared between the typechecker (arity and result types), the simulator's
    interpreter (semantics), and the simulator's cost model (cost class). *)

type cost_class =
  | Arith  (** ALU work: charged as plain instructions. *)
  | Mem  (** Touches global memory once. *)
  | Atomic  (** Global-memory atomic read-modify-write. *)
  | Warp_collective  (** Warp-scope collective (scan/reduce/broadcast). *)
  | Alloc  (** Device-side heap allocation. *)

type t = {
  b_name : string;
  b_arity : int;
  b_cost : cost_class;
  (* Result type given argument types; types are loose, see Typecheck. *)
  b_result : Ast.ty list -> Ast.ty;
}

let ret ty = fun _ -> ty

(* min/max/abs follow their first argument's numeric type. *)
let follow_first = function Ast.TFloat :: _ -> Ast.TFloat | _ -> Ast.TInt

(* Atomics return the old value: the pointee type of their first argument. *)
let pointee = function Ast.TPtr t :: _ -> t | _ -> Ast.TInt

let table : t list =
  [
    { b_name = "min"; b_arity = 2; b_cost = Arith; b_result = follow_first };
    { b_name = "max"; b_arity = 2; b_cost = Arith; b_result = follow_first };
    { b_name = "abs"; b_arity = 1; b_cost = Arith; b_result = follow_first };
    { b_name = "fabs"; b_arity = 1; b_cost = Arith; b_result = ret Ast.TFloat };
    { b_name = "ceil"; b_arity = 1; b_cost = Arith; b_result = ret Ast.TFloat };
    { b_name = "floor"; b_arity = 1; b_cost = Arith; b_result = ret Ast.TFloat };
    { b_name = "sqrt"; b_arity = 1; b_cost = Arith; b_result = ret Ast.TFloat };
    { b_name = "exp"; b_arity = 1; b_cost = Arith; b_result = ret Ast.TFloat };
    { b_name = "log"; b_arity = 1; b_cost = Arith; b_result = ret Ast.TFloat };
    { b_name = "pow"; b_arity = 2; b_cost = Arith; b_result = ret Ast.TFloat };
    {
      b_name = "atomicAdd";
      b_arity = 2;
      b_cost = Atomic;
      b_result = pointee;
    };
    {
      b_name = "atomicSub";
      b_arity = 2;
      b_cost = Atomic;
      b_result = pointee;
    };
    {
      b_name = "atomicMin";
      b_arity = 2;
      b_cost = Atomic;
      b_result = pointee;
    };
    {
      b_name = "atomicMax";
      b_arity = 2;
      b_cost = Atomic;
      b_result = pointee;
    };
    {
      b_name = "atomicExch";
      b_arity = 2;
      b_cost = Atomic;
      b_result = pointee;
    };
    {
      b_name = "atomicCAS";
      b_arity = 3;
      b_cost = Atomic;
      b_result = pointee;
    };
    (* Device-side heap allocation (used by BT's parent kernel). The unit is
       elements, not bytes: MiniCU memory is an array of values. *)
    {
      b_name = "malloc";
      b_arity = 1;
      b_cost = Alloc;
      b_result = ret (Ast.TPtr Ast.TInt);
    };
    (* Warp-scope collectives; MiniCU's abstraction of CUDA's
       __ballot_sync/__shfl_sync-based idioms, used by warp-granularity
       aggregation (Section V). All 32 lanes of a warp must execute the
       same collective. *)
    {
      b_name = "warp_scan_excl";
      b_arity = 1;
      b_cost = Warp_collective;
      b_result = ret Ast.TInt;
    };
    {
      b_name = "warp_sum";
      b_arity = 1;
      b_cost = Warp_collective;
      b_result = ret Ast.TInt;
    };
    {
      b_name = "warp_max";
      b_arity = 1;
      b_cost = Warp_collective;
      b_result = ret Ast.TInt;
    };
    {
      b_name = "warp_bcast";
      b_arity = 2;
      b_cost = Warp_collective;
      b_result = follow_first;
    };
  ]

let find name = List.find_opt (fun b -> b.b_name = name) table

let is_builtin name = find name <> None
