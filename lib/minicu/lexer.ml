(** Hand-written lexer for MiniCU source text.

    The token set covers the CUDA-C subset that MiniCU supports, including
    the triple-chevron launch syntax ([<<<] / [>>>]). Because [>>>] is
    ambiguous with shift-right followed by greater-than, the lexer resolves
    chevrons greedily: [<<<] and [>>>] are single tokens; MiniCU does not
    support nested template syntax, so this is unambiguous in practice. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  (* keywords *)
  | KW_GLOBAL  (** [__global__] *)
  | KW_DEVICE  (** [__device__] *)
  | KW_SHARED  (** [__shared__] *)
  | KW_VOID
  | KW_INT
  | KW_FLOAT
  | KW_BOOL
  | KW_DIM3
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_TRUE
  | KW_FALSE
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | DOT
  | QUESTION
  | COLON
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | BANG
  | ASSIGN
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PLUSPLUS
  | MINUSMINUS
  | SHL  (** [<<] *)
  | SHR  (** [>>] *)
  | LAUNCH_OPEN  (** [<<<] *)
  | LAUNCH_CLOSE  (** [>>>] *)
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW_GLOBAL -> "__global__"
  | KW_DEVICE -> "__device__"
  | KW_SHARED -> "__shared__"
  | KW_VOID -> "void"
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_BOOL -> "bool"
  | KW_DIM3 -> "dim3"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_FOR -> "for"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | QUESTION -> "?"
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | SHL -> "<<"
  | SHR -> ">>"
  | LAUNCH_OPEN -> "<<<"
  | LAUNCH_CLOSE -> ">>>"
  | EOF -> "<eof>"

let keywords =
  [
    ("__global__", KW_GLOBAL);
    ("__device__", KW_DEVICE);
    ("__shared__", KW_SHARED);
    ("void", KW_VOID);
    ("int", KW_INT);
    ("unsigned", KW_INT);
    ("float", KW_FLOAT);
    ("double", KW_FLOAT);
    ("bool", KW_BOOL);
    ("dim3", KW_DIM3);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("for", KW_FOR);
    ("while", KW_WHILE);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
  ]

type t = {
  src : string;
  file : string;
  mutable pos : int;  (** Byte offset of the next unread character. *)
  mutable line : int;
  mutable bol : int;  (** Byte offset of the beginning of the current line. *)
}

let create ?(file = "<string>") src = { src; file; pos = 0; line = 1; bol = 0 }

let loc t = Loc.make ~file:t.file ~line:t.line ~col:(t.pos - t.bol + 1)

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let peek_char2 t =
  if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None

let advance t =
  (match peek_char t with
  | Some '\n' ->
      t.line <- t.line + 1;
      t.bol <- t.pos + 1
  | _ -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace, line comments and block comments. *)
let rec skip_trivia t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_trivia t
  | Some '/' when peek_char2 t = Some '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_trivia t
  | Some '/' when peek_char2 t = Some '*' ->
      let start = loc t in
      advance t;
      advance t;
      let rec close () =
        match (peek_char t, peek_char2 t) with
        | Some '*', Some '/' ->
            advance t;
            advance t
        | Some _, _ ->
            advance t;
            close ()
        | None, _ -> Loc.error start "unterminated block comment"
      in
      close ();
      skip_trivia t
  | _ -> ()

let lex_number t =
  let start = t.pos in
  let startloc = loc t in
  while (match peek_char t with Some c -> is_digit c | None -> false) do
    advance t
  done;
  let is_float = ref false in
  (match (peek_char t, peek_char2 t) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance t;
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done
  | Some '.', (Some _ | None) when peek_char2 t <> Some '.' ->
      (* "1." style literal, as long as it isn't member access on an int. *)
      (match peek_char2 t with
      | Some c when is_ident_start c -> ()
      | _ ->
          is_float := true;
          advance t)
  | _ -> ());
  (match peek_char t with
  | Some ('e' | 'E') ->
      is_float := true;
      advance t;
      (match peek_char t with
      | Some ('+' | '-') -> advance t
      | _ -> ());
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done
  | _ -> ());
  (* Swallow C suffixes: 1u, 1f, 1.0f, 1ull. *)
  (match peek_char t with
  | Some ('f' | 'F') when !is_float ->
      advance t
  | Some ('u' | 'U' | 'l' | 'L') ->
      while
        match peek_char t with
        | Some ('u' | 'U' | 'l' | 'L') -> true
        | _ -> false
      do
        advance t
      done
  | _ -> ());
  let text = String.sub t.src start (t.pos - start) in
  let text =
    (* strip any suffix letters for conversion *)
    let n = String.length text in
    let rec core i =
      if i > 0 && (match text.[i - 1] with
                   | 'f' | 'F' | 'u' | 'U' | 'l' | 'L' -> true
                   | _ -> false)
      then core (i - 1)
      else i
    in
    String.sub text 0 (core n)
  in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> FLOAT f
    | None -> Loc.error startloc "malformed float literal %S" text
  else
    match int_of_string_opt text with
    | Some n -> INT n
    | None -> Loc.error startloc "malformed int literal %S" text

let lex_ident t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_ident_char c | None -> false) do
    advance t
  done;
  let text = String.sub t.src start (t.pos - start) in
  match List.assoc_opt text keywords with Some kw -> kw | None -> IDENT text

(** [next t] returns the next token and its start location. *)
let next t : token * Loc.t =
  skip_trivia t;
  let l = loc t in
  match peek_char t with
  | None -> (EOF, l)
  | Some c when is_digit c -> (lex_number t, l)
  | Some c when is_ident_start c -> (lex_ident t, l)
  | Some c ->
      let two tok =
        advance t;
        advance t;
        tok
      in
      let one tok =
        advance t;
        tok
      in
      let tok =
        match (c, peek_char2 t) with
        | '<', Some '<' ->
            advance t;
            advance t;
            if peek_char t = Some '<' then (
              advance t;
              LAUNCH_OPEN)
            else SHL
        | '>', Some '>' ->
            advance t;
            advance t;
            if peek_char t = Some '>' then (
              advance t;
              LAUNCH_CLOSE)
            else SHR
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '=', Some '=' -> two EQEQ
        | '!', Some '=' -> two NEQ
        | '&', Some '&' -> two ANDAND
        | '|', Some '|' -> two OROR
        | '+', Some '=' -> two PLUSEQ
        | '-', Some '=' -> two MINUSEQ
        | '*', Some '=' -> two STAREQ
        | '/', Some '=' -> two SLASHEQ
        | '+', Some '+' -> two PLUSPLUS
        | '-', Some '-' -> two MINUSMINUS
        | '<', _ -> one LT
        | '>', _ -> one GT
        | '=', _ -> one ASSIGN
        | '!', _ -> one BANG
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '/', _ -> one SLASH
        | '%', _ -> one PERCENT
        | '&', _ -> one AMP
        | '|', _ -> one PIPE
        | '^', _ -> one CARET
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | ',', _ -> one COMMA
        | ';', _ -> one SEMI
        | '.', _ -> one DOT
        | '?', _ -> one QUESTION
        | ':', _ -> one COLON
        | _ -> Loc.error l "unexpected character %C" c
      in
      (tok, l)

(** [tokenize ?file src] lexes the whole input, including the trailing
    [EOF] token. *)
let tokenize ?file src =
  let t = create ?file src in
  let rec go acc =
    let tok, l = next t in
    if tok = EOF then List.rev ((tok, l) :: acc) else go ((tok, l) :: acc)
  in
  go []
