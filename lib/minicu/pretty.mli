(** Pretty-printer: MiniCU ASTs back to CUDA-like source text.

    Output re-parses to an equal AST (modulo statement tags, which have no
    concrete syntax); parenthesization is precedence-aware and minimal.
    Negative numeric literals print as ["-5"], which C lexes as unary
    minus; the parser folds that back into the literal, so the round-trip
    holds on them too (exception: [Float_lit (-0.)], which cannot be
    distinguished from [Unop (Neg, Float_lit 0.)] after printing). Float
    literals always carry a ['.'] or exponent marker so they never re-lex
    as ints. Non-finite floats ([nan]/[infinity]) have no literal syntax
    and do not round-trip. A host followup (grid-granularity aggregation)
    prints as a trailing comment block, since it has no kernel-language
    syntax, and is likewise dropped by a re-parse. *)

val ty_to_string : Ast.ty -> string
val unop_to_string : Ast.unop -> string
val binop_to_string : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val expr_to_string : Ast.expr -> string
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val stmt_to_string : Ast.stmt -> string
val pp_func : Format.formatter -> Ast.func -> unit
val func_to_string : Ast.func -> string
val pp_program : Format.formatter -> Ast.program -> unit

(** [program p] renders a full translation unit. *)
val program : Ast.program -> string
