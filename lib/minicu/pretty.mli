(** Pretty-printer: MiniCU ASTs back to CUDA-like source text.

    Output re-parses to an equal AST (modulo statement tags, which have no
    concrete syntax); parenthesization is precedence-aware and minimal. A
    host followup (grid-granularity aggregation) prints as a trailing
    comment block, since it has no kernel-language syntax. *)

val ty_to_string : Ast.ty -> string
val unop_to_string : Ast.unop -> string
val binop_to_string : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val expr_to_string : Ast.expr -> string
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val stmt_to_string : Ast.stmt -> string
val pp_func : Format.formatter -> Ast.func -> unit
val func_to_string : Ast.func -> string
val pp_program : Format.formatter -> Ast.program -> unit

(** [program p] renders a full translation unit. *)
val program : Ast.program -> string
