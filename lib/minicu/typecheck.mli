(** Static checks for MiniCU programs.

    Enforced rules: all names resolve; call/launch arity matches; only
    [__device__] functions are called and only [__global__] kernels are
    launched; assignment targets are lvalues; reserved variables are
    read-only and cannot be shadowed; [&] applies only to indexable
    lvalues (locals are registers); [break]/[continue] only inside loops;
    kernels return [void]. Value typing is deliberately loose, C-style. *)

exception Type_error of string

(** @raise Type_error describing the first violation. *)
val check : Ast.program -> unit

val check_result : Ast.program -> (unit, string) result
