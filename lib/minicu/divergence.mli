(** Thread-divergence analysis over MiniCU kernels.

    Classifies control-flow contexts at three uniformity levels relative to
    a thread block and reports every synchronization-sensitive statement
    (barriers, warp collectives, launches, barrier-containing device calls)
    with the level of its enclosing control flow.

    The analysis is flow-insensitive on variables (join over all
    assignments, to a fixpoint) and {e optimistic on memory loads}: a load
    through a block-uniform address counts as block-uniform, which keeps
    the shared-flag loop idiom of promoted kernels quiet but can miss
    data-dependent divergence — the dynamic race detector
    ({!Gpusim.Racecheck}) covers that side at run time.

    Used by the static sanitizer ([lib/analysis]) and by
    {!Dpopt.Eligibility} (aggregation refuses parents with divergent
    barriers). *)

type level =
  | Uniform  (** Same for every thread of the block. *)
  | Warp_uniform  (** Same within each warp ([warp_sum] results, ...). *)
  | Varying  (** Potentially per-thread ([threadIdx], atomics, ...). *)

val join : level -> level -> level
val pp_level : Format.formatter -> level -> unit

type event = {
  ev_kind : kind;
  ev_ctx : level;  (** Join of every enclosing branch/loop condition. *)
  ev_loc : Loc.t;
  ev_in_loop : bool;  (** Lexically inside a [for]/[while] body. *)
}

and kind =
  | Ev_sync  (** [__syncthreads()] — needs a {!Uniform} context. *)
  | Ev_syncwarp  (** [__syncwarp()] — needs at most {!Warp_uniform}. *)
  | Ev_collective of string  (** Warp-collective call — as [Ev_syncwarp]. *)
  | Ev_launch of string  (** Launch of the named kernel. *)
  | Ev_sync_in_call of string
      (** Call to a device function that transitively contains a block
          barrier. *)

(** Does [f], transitively through device calls, execute [__syncthreads]? *)
val contains_sync_deep : Ast.program -> Ast.func -> bool

(** [events prog f] — all events of [f]'s body in source order. Kernel
    parameters are assumed {!Uniform} (launch arguments are grid-wide). *)
val events : Ast.program -> Ast.func -> event list

(** The subset of {!events} the block executor cannot order:
    [__syncthreads] (directly or via a device call) under non-uniform
    control flow, and warp-scope operations under thread-varying control
    flow. *)
val divergent_barriers : Ast.program -> Ast.func -> event list
