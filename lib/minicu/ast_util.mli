(** AST traversal and rewriting utilities shared by the analysis and
    transformation passes. *)

(** [neg e] — negation in canonical (parse) form: folds a numeric literal
    (except float zero) into itself, wraps anything else in
    [Unop (Neg, _)]. Mirrors the parser, so ASTs built with it round-trip
    through the pretty-printer structurally. *)
val neg : Ast.expr -> Ast.expr

(** {1 Expression traversal} *)

(** [map_expr f e] rebuilds [e] bottom-up, applying [f] after children. *)
val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

(** [fold_expr f acc e] folds pre-order over every node. *)
val fold_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.expr -> 'a

(** {1 Statement traversal} *)

(** [map_stmts ~expr ~stmt ss] rewrites a statement list bottom-up. [expr]
    rewrites every expression; [stmt] may expand one statement into several
    (for-header statements must stay 1-to-1). *)
val map_stmts :
  ?expr:(Ast.expr -> Ast.expr) ->
  ?stmt:(Ast.stmt -> Ast.stmt list) ->
  Ast.stmt list ->
  Ast.stmt list

(** Pre-order fold over statements, including nested bodies and
    for-headers. *)
val fold_stmts : ('a -> Ast.stmt -> 'a) -> 'a -> Ast.stmt list -> 'a

val fold_stmt : ('a -> Ast.stmt -> 'a) -> 'a -> Ast.stmt -> 'a

(** Fold over every expression occurring in the statements. *)
val fold_exprs_in_stmts :
  ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt list -> 'a

(** {1 Queries} *)

val uses_var : string -> Ast.stmt list -> bool
val expr_uses_var : string -> Ast.expr -> bool
val contains_launch : Ast.stmt list -> bool

(** Block-wide or warp-wide barriers ([__syncthreads]/[__syncwarp]). *)
val contains_sync : Ast.stmt list -> bool

val contains_shared : Ast.stmt list -> bool

(** Every launch, in program order. *)
val launches_of : Ast.stmt list -> Ast.launch list

(** Every launch paired with its loop-nesting depth (0 = not inside any
    loop), in program order. Feeds the cost model's launch-intensity
    features. *)
val launch_sites : Ast.stmt list -> (Ast.launch * int) list

(** Deepest loop nesting (0 = loop-free). *)
val max_loop_depth : Ast.stmt list -> int

(** Every declared name, in program order. *)
val declared_names : Ast.stmt list -> string list

(** Every identifier occurring anywhere in the function (params, locals,
    uses, callees) — the "taken" set for {!fresh_name}. *)
val all_names : Ast.func -> string list

(** [fresh_name ~base taken] is [base], or [base_2], [base_3], ... *)
val fresh_name : base:string -> string list -> string

(** {1 Size metrics}

    Node counts, used by the differential-testing shrinker ([lib/difftest])
    as its "smaller program" measure. *)

val expr_size : Ast.expr -> int
val stmts_size : Ast.stmt list -> int
val func_size : Ast.func -> int
val program_size : Ast.program -> int

(** {1 Shrinking candidates}

    Structural mutations that make an AST strictly smaller. Candidates are
    {e not} guaranteed to typecheck; callers must re-validate each one. *)

(** Immediate subexpressions. *)
val expr_children : Ast.expr -> Ast.expr list

(** Strictly smaller replacements for an expression: small literals first,
    then its own subexpressions. *)
val shrink_expr : Ast.expr -> Ast.expr list

(** Every list obtained by removing one element. *)
val drop_one : 'a list -> 'a list list

(** Candidate replacements for one statement (each a statement list:
    compound statements can unwrap into their bodies). *)
val shrink_stmt : Ast.stmt -> Ast.stmt list list

(** Candidate replacements for a statement list: drop one statement, or
    rewrite one statement in place via {!shrink_stmt}. *)
val shrink_stmts : Ast.stmt list -> Ast.stmt list list

(** {1 Substitution} *)

(** Capture-unaware variable substitution (callers substitute reserved
    variables, which cannot be rebound). *)
val subst_var : (string * Ast.expr) list -> Ast.expr -> Ast.expr

val subst_var_stmts :
  (string * Ast.expr) list -> Ast.stmt list -> Ast.stmt list

(** Rename function calls and launch targets. *)
val rename_calls : (string * string) list -> Ast.stmt list -> Ast.stmt list

(** {1 Simplification} *)

(** Conservative constant folding ([e + 0], [1 * e], literal arithmetic,
    [dim3(x,y,z).x]); keeps generated launch arithmetic readable. *)
val simplify_expr : Ast.expr -> Ast.expr
