(** Pretty-printer: emits MiniCU ASTs back to CUDA-like source text.

    The output parses back to an equal AST ([Parser.program (Pretty.program p)
    = p] up to statement tags), which the test suite checks with qcheck
    round-trip properties. Parenthesization is precedence-aware so the
    printed text is minimal but unambiguous. *)

open Ast

let ty_to_string ty =
  let rec go = function
    | TVoid -> "void"
    | TInt -> "int"
    | TFloat -> "float"
    | TBool -> "bool"
    | TDim3 -> "dim3"
    | TPtr t -> go t ^ "*"
  in
  go ty

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | LAnd -> "&&"
  | LOr -> "||"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

(* Matches the binding powers in Parser.binop_of_token. *)
let binop_prec = function
  | LOr -> 1
  | LAnd -> 2
  | BOr -> 3
  | BXor -> 4
  | BAnd -> 5
  | Eq | Ne -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let prec_ternary = 0
let prec_unary = 11
let prec_postfix = 12

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Fmt.str "%.1f" f
  else
    let s = Fmt.str "%.17g" f in
    (* %.17g renders integral magnitudes in [1e15, ~1e17) without a point
       or exponent ("1000000000000000"), which would re-lex as an *int*
       literal — aliasing a float-typed AST with an int-typed one. Force a
       marker so the printed form always lexes back as FLOAT. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec expr_prec = function
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Call _ | Dim3_ctor _ ->
      prec_postfix + 1
  | Index _ | Member _ -> prec_postfix
  | Unop _ | Cast _ | Addr_of _ -> prec_unary
  | Binop (op, _, _) -> binop_prec op
  | Ternary _ -> prec_ternary

and pp_expr ppf e = pp_expr_prec ppf (prec_ternary, e)

(* Print [e]; parenthesize if its precedence is below [min]. *)
and pp_expr_prec ppf (min, e) =
  let p = expr_prec e in
  let body ppf () =
    match e with
    | Int_lit n -> Fmt.int ppf n
    | Float_lit f -> Fmt.string ppf (float_lit f)
    | Bool_lit b -> Fmt.bool ppf b
    | Var x -> Fmt.string ppf x
    | Unop (op, a) ->
        (* parenthesize a same-operator operand so "- -a" does not lex as
           the "--" token *)
        let amin =
          match a with
          | Unop (op2, _) when op2 = op -> prec_unary + 1
          | _ -> prec_unary
        in
        Fmt.pf ppf "%s%a" (unop_to_string op) pp_expr_prec (amin, a)
    | Binop (op, a, b) ->
        let bp = binop_prec op in
        (* left-assoc: left child may be same precedence, right must bind
           tighter *)
        Fmt.pf ppf "%a %s %a" pp_expr_prec (bp, a) (binop_to_string op)
          pp_expr_prec (bp + 1, b)
    | Ternary (c, a, b) ->
        Fmt.pf ppf "%a ? %a : %a" pp_expr_prec
          (prec_ternary + 1, c)
          pp_expr_prec
          (prec_ternary + 1, a)
          pp_expr_prec (prec_ternary, b)
    | Index (a, i) ->
        Fmt.pf ppf "%a[%a]" pp_expr_prec (prec_postfix, a) pp_expr i
    | Member (a, f) -> Fmt.pf ppf "%a.%s" pp_expr_prec (prec_postfix, a) f
    | Call (f, args) ->
        Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args
    | Cast (ty, a) ->
        Fmt.pf ppf "(%s)%a" (ty_to_string ty) pp_expr_prec (prec_unary, a)
    | Dim3_ctor (x, y, z) ->
        Fmt.pf ppf "dim3(%a, %a, %a)" pp_expr x pp_expr y pp_expr z
    | Addr_of a -> Fmt.pf ppf "&%a" pp_expr_prec (prec_unary, a)
  in
  if p < min then Fmt.pf ppf "(%a)" body () else body ppf ()

let expr_to_string e = Fmt.str "%a" pp_expr e

let rec pp_stmt ~indent ppf s =
  let pad = String.make indent ' ' in
  let pp_body = pp_stmts ~indent:(indent + 2) in
  match s.sdesc with
  | Decl (ty, x, None) -> Fmt.pf ppf "%s%s %s;" pad (ty_to_string ty) x
  | Decl (ty, x, Some e) ->
      Fmt.pf ppf "%s%s %s = %a;" pad (ty_to_string ty) x pp_expr e
  | Decl_shared (ty, x, size) ->
      Fmt.pf ppf "%s__shared__ %s %s[%a];" pad (ty_to_string ty) x pp_expr size
  | Assign (lv, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_expr lv pp_expr e
  | If (Bool_lit true, body, []) ->
      (* anonymous block *)
      Fmt.pf ppf "%s{@\n%a@\n%s}" pad pp_body body pad
  | If (c, then_, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c pp_body then_ pad
  | If (c, then_, else_) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
        pp_body then_ pad pp_body else_ pad
  | For (init, cond, step, body) ->
      let pp_opt_simple ppf = function
        | None -> ()
        | Some s -> pp_simple ppf s
      in
      let pp_opt_expr ppf = function None -> () | Some e -> pp_expr ppf e in
      Fmt.pf ppf "%sfor (%a; %a; %a) {@\n%a@\n%s}" pad pp_opt_simple init
        pp_opt_expr cond pp_opt_simple step pp_body body pad
  | While (c, body) ->
      Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_expr c pp_body body pad
  | Return None -> Fmt.pf ppf "%sreturn;" pad
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Expr_stmt e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | Launch l ->
      Fmt.pf ppf "%s%s<<<%a, %a>>>(%a);" pad l.l_kernel pp_expr l.l_grid
        pp_expr l.l_block
        Fmt.(list ~sep:(any ", ") pp_expr)
        l.l_args
  | Sync -> Fmt.pf ppf "%s__syncthreads();" pad
  | Syncwarp -> Fmt.pf ppf "%s__syncwarp();" pad
  | Threadfence -> Fmt.pf ppf "%s__threadfence();" pad
  | Break -> Fmt.pf ppf "%sbreak;" pad
  | Continue -> Fmt.pf ppf "%scontinue;" pad

(* for-header fragments print without trailing ';' or padding *)
and pp_simple ppf s =
  match s.sdesc with
  | Decl (ty, x, None) -> Fmt.pf ppf "%s %s" (ty_to_string ty) x
  | Decl (ty, x, Some e) ->
      Fmt.pf ppf "%s %s = %a" (ty_to_string ty) x pp_expr e
  | Assign (lv, e) -> Fmt.pf ppf "%a = %a" pp_expr lv pp_expr e
  | Expr_stmt e -> pp_expr ppf e
  | _ -> invalid_arg "Pretty.pp_simple: not a simple statement"

and pp_stmts ~indent ppf ss =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) ppf ss

let pp_param ppf p = Fmt.pf ppf "%s %s" (ty_to_string p.p_ty) p.p_name

let pp_func ppf f =
  let kind = match f.f_kind with Global -> "__global__" | Device -> "__device__" in
  Fmt.pf ppf "%s %s %s(%a) {@\n%a@\n}" kind (ty_to_string f.f_ret) f.f_name
    Fmt.(list ~sep:(any ", ") pp_param)
    f.f_params
    (pp_stmts ~indent:2)
    f.f_body;
  match f.f_host_followup with
  | None -> ()
  | Some ss ->
      Fmt.pf ppf "@\n// host followup for %s (grid-granularity aggregation):@\n"
        f.f_name;
      Fmt.pf ppf "// {@\n%a@\n// }" (pp_stmts ~indent:2)
        ss

let pp_program ppf p = Fmt.(list ~sep:(any "@\n@\n") pp_func) ppf p

let func_to_string f = Fmt.str "%a" pp_func f

(** [program p] renders a full translation unit as source text. *)
let program p = Fmt.str "%a@." pp_program p

let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
