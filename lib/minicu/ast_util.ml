(** AST traversal and rewriting utilities shared by the analysis and
    transformation passes. *)

open Ast

(** [neg e] — negation in canonical (parse) form: negation of a numeric
    literal folds into the literal, anything else becomes [Unop (Neg, e)].
    Matches the parser's folding of prefix ["-"], so ASTs built with this
    constructor survive a pretty/parse round-trip structurally. Float zero
    is exempt (see {!Parser}): [-0.] would compare equal to [0.] while
    printing differently. *)
let neg = function
  | Int_lit n -> Int_lit (-n)
  | Float_lit f when f <> 0.0 -> Float_lit (-.f)
  | e -> Unop (Neg, e)

(** {1 Expression traversal} *)

(** [map_expr f e] rebuilds [e] bottom-up, applying [f] to every node after
    its children have been rewritten. *)
let rec map_expr f e =
  let e' =
    match e with
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Ternary (c, a, b) -> Ternary (map_expr f c, map_expr f a, map_expr f b)
    | Index (a, i) -> Index (map_expr f a, map_expr f i)
    | Member (a, fl) -> Member (map_expr f a, fl)
    | Call (g, args) -> Call (g, List.map (map_expr f) args)
    | Cast (ty, a) -> Cast (ty, map_expr f a)
    | Dim3_ctor (x, y, z) -> Dim3_ctor (map_expr f x, map_expr f y, map_expr f z)
    | Addr_of a -> Addr_of (map_expr f a)
  in
  f e'

(** [fold_expr f acc e] folds [f] over every node of [e] (pre-order). *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> acc
  | Unop (_, a) | Member (a, _) | Cast (_, a) | Addr_of a -> fold_expr f acc a
  | Binop (_, a, b) | Index (a, b) -> fold_expr f (fold_expr f acc a) b
  | Ternary (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
  | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Dim3_ctor (x, y, z) ->
      fold_expr f (fold_expr f (fold_expr f acc x) y) z

(** {1 Statement traversal} *)

(** [map_stmts ~expr ~stmt ss] rewrites a statement list. [expr] is applied
    to every expression (bottom-up); [stmt] is applied to every statement
    after its children have been rewritten and may expand a statement into
    several. *)
let rec map_stmts ?(expr = fun e -> e) ?(stmt = fun s -> [ s ]) ss =
  List.concat_map (map_stmt ~expr ~stmt) ss

and map_stmt ~expr ~stmt s =
  let me = map_expr expr in
  let ms = map_stmts ~expr ~stmt in
  let sdesc =
    match s.sdesc with
    | Decl (ty, x, init) -> Decl (ty, x, Option.map me init)
    | Decl_shared (ty, x, size) -> Decl_shared (ty, x, me size)
    | Assign (lv, e) -> Assign (me lv, me e)
    | If (c, a, b) -> If (me c, ms a, ms b)
    | For (init, cond, step, body) ->
        let sub1 o =
          Option.map
            (fun st ->
              match map_stmt ~expr ~stmt st with
              | [ s1 ] -> s1
              | _ ->
                  invalid_arg
                    "Ast_util.map_stmt: for-header rewrite must be 1-to-1")
            o
        in
        For (sub1 init, Option.map me cond, sub1 step, ms body)
    | While (c, body) -> While (me c, ms body)
    | Return e -> Return (Option.map me e)
    | Expr_stmt e -> Expr_stmt (me e)
    | Launch l ->
        Launch
          {
            l with
            l_grid = me l.l_grid;
            l_block = me l.l_block;
            l_args = List.map me l.l_args;
          }
    | (Sync | Syncwarp | Threadfence | Break | Continue) as d -> d
  in
  stmt { s with sdesc }

(** [fold_stmts f acc ss] folds [f] over every statement (pre-order,
    including nested bodies and for-headers). *)
let rec fold_stmts f acc ss = List.fold_left (fold_stmt f) acc ss

and fold_stmt f acc s =
  let acc = f acc s in
  match s.sdesc with
  | If (_, a, b) -> fold_stmts f (fold_stmts f acc a) b
  | For (init, _, step, body) ->
      let acc = match init with Some s -> fold_stmt f acc s | None -> acc in
      let acc = match step with Some s -> fold_stmt f acc s | None -> acc in
      fold_stmts f acc body
  | While (_, body) -> fold_stmts f acc body
  | _ -> acc

(** [fold_exprs_in_stmts f acc ss] folds over every expression appearing in
    the statements. *)
let fold_exprs_in_stmts f acc ss =
  fold_stmts
    (fun acc s ->
      let on = fold_expr f in
      match s.sdesc with
      | Decl (_, _, Some e)
      | Decl_shared (_, _, e)
      | Expr_stmt e
      | Return (Some e) ->
          on acc e
      | Assign (lv, e) -> on (on acc lv) e
      | If (c, _, _) | While (c, _) -> on acc c
      | For (_, cond, _, _) -> (
          match cond with Some c -> on acc c | None -> acc)
      | Launch l ->
          List.fold_left on (on (on acc l.l_grid) l.l_block) l.l_args
      | _ -> acc)
    acc ss

(** {1 Queries} *)

(** [uses_var x ss] — does any expression in [ss] mention variable [x]? *)
let uses_var x ss =
  fold_exprs_in_stmts
    (fun found e -> found || match e with Var y -> y = x | _ -> false)
    false ss

let expr_uses_var x e =
  fold_expr (fun found e -> found || match e with Var y -> y = x | _ -> false)
    false e

(** [contains_launch ss] — does [ss] contain a dynamic launch statement? *)
let contains_launch ss =
  fold_stmts
    (fun found s -> found || match s.sdesc with Launch _ -> true | _ -> false)
    false ss

(** [contains_sync ss] — does [ss] use a block-wide or warp-wide barrier? *)
let contains_sync ss =
  fold_stmts
    (fun found s ->
      found || match s.sdesc with Sync | Syncwarp -> true | _ -> false)
    false ss

(** [contains_shared ss] — does [ss] declare shared memory? *)
let contains_shared ss =
  fold_stmts
    (fun found s ->
      found || match s.sdesc with Decl_shared _ -> true | _ -> false)
    false ss

(** [launches_of ss] — every launch in [ss], outermost-first. *)
let launches_of ss =
  List.rev
    (fold_stmts
       (fun acc s -> match s.sdesc with Launch l -> l :: acc | _ -> acc)
       [] ss)

(** [launch_sites ss] — every launch paired with its loop-nesting depth
    (0 = not inside any loop), in program order. The depth feeds the cost
    model's launch-intensity features: a launch at depth [d] can fire many
    times per parent thread. *)
let launch_sites ss =
  let rec go_stmts depth acc ss = List.fold_left (go_stmt depth) acc ss
  and go_stmt depth acc s =
    match s.sdesc with
    | Launch l -> (l, depth) :: acc
    | If (_, a, b) -> go_stmts depth (go_stmts depth acc a) b
    | For (init, _, step, body) ->
        let acc =
          match init with Some s -> go_stmt depth acc s | None -> acc
        in
        let acc =
          match step with Some s -> go_stmt depth acc s | None -> acc
        in
        go_stmts (depth + 1) acc body
    | While (_, body) -> go_stmts (depth + 1) acc body
    | _ -> acc
  in
  List.rev (go_stmts 0 [] ss)

(** [max_loop_depth ss] — deepest loop nesting in [ss] (0 = loop-free). *)
let max_loop_depth ss =
  let rec go_stmts depth ss =
    List.fold_left (fun m s -> max m (go_stmt depth s)) depth ss
  and go_stmt depth s =
    match s.sdesc with
    | If (_, a, b) -> max (go_stmts depth a) (go_stmts depth b)
    | For (_, _, _, body) | While (_, body) -> go_stmts (depth + 1) body
    | _ -> depth
  in
  go_stmts 0 ss

(** [declared_names ss] — every name bound by a declaration in [ss]. *)
let declared_names ss =
  List.rev
    (fold_stmts
       (fun acc s ->
         match s.sdesc with
         | Decl (_, x, _) | Decl_shared (_, x, _) -> x :: acc
         | _ -> acc)
       [] ss)

(** [all_names f] — every identifier occurring anywhere in [f] (params,
    declarations, uses). Used to generate fresh names. *)
let all_names (f : func) =
  let acc = List.map (fun p -> p.p_name) f.f_params in
  let acc = declared_names f.f_body @ acc in
  fold_exprs_in_stmts
    (fun acc e -> match e with Var x -> x :: acc | Call (g, _) -> g :: acc | _ -> acc)
    acc f.f_body

(** [fresh_name ~base taken] returns [base] if unused, otherwise
    [base_2], [base_3], ... *)
let fresh_name ~base taken =
  if not (List.mem base taken) then base
  else
    let rec go i =
      let cand = Fmt.str "%s_%d" base i in
      if List.mem cand taken then go (i + 1) else cand
    in
    go 2

(** {1 Substitution} *)

(** [subst_var map e] replaces every [Var x] in [e] with [map x] when bound. *)
let subst_var map e =
  map_expr
    (function
      | Var x as v -> ( match List.assoc_opt x map with Some e' -> e' | None -> v)
      | e -> e)
    e

(** [subst_var_stmts map ss] applies {!subst_var} over a statement list. *)
let subst_var_stmts map ss = map_stmts ~expr:(fun e ->
    match e with
    | Var x -> ( match List.assoc_opt x map with Some e' -> e' | None -> e)
    | _ -> e)
    ss

(** [rename_calls map ss] renames function calls and launch targets. *)
let rename_calls map ss =
  map_stmts
    ~expr:(fun e ->
      match e with
      | Call (g, args) -> (
          match List.assoc_opt g map with
          | Some g' -> Call (g', args)
          | None -> e)
      | _ -> e)
    ~stmt:(fun s ->
      match s.sdesc with
      | Launch l -> (
          match List.assoc_opt l.l_kernel map with
          | Some k' -> [ { s with sdesc = Launch { l with l_kernel = k' } } ]
          | None -> [ s ])
      | _ -> [ s ])
    ss

(** {1 Size metrics}

    Node counts used by the differential-testing shrinker ([lib/difftest])
    to decide whether a mutated program is "smaller", and by reporting
    code. *)

let expr_size e = fold_expr (fun n _ -> n + 1) 0 e

let stmts_size ss =
  fold_stmts (fun n _ -> n + 1) 0 ss + fold_exprs_in_stmts (fun n _ -> n + 1) 0 ss

let func_size (f : func) = List.length f.f_params + stmts_size f.f_body

let program_size (p : program) =
  List.fold_left (fun n f -> n + func_size f) 0 p

(** {1 Shrinking candidates}

    Structural mutations that make an AST strictly smaller, used to minimize
    failing differential-test programs. Candidates are {e not} guaranteed to
    typecheck (replacing a node by a child can change its type, unwrapping a
    loop can drop a binding); callers must re-validate each candidate. *)

(** [expr_children e] — immediate subexpressions of [e]. *)
let expr_children = function
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> []
  | Unop (_, a) | Member (a, _) | Cast (_, a) | Addr_of a -> [ a ]
  | Binop (_, a, b) | Index (a, b) -> [ a; b ]
  | Ternary (c, a, b) -> [ c; a; b ]
  | Call (_, args) -> args
  | Dim3_ctor (x, y, z) -> [ x; y; z ]

(** [shrink_expr e] — strictly smaller replacement candidates for [e],
    simplest first: small literals, then [e]'s own subexpressions. *)
let shrink_expr e =
  let size = expr_size e in
  let lits =
    match e with
    | Int_lit 0 -> []
    | Int_lit n -> List.sort_uniq compare [ Int_lit 0; Int_lit (n / 2) ]
    | _ -> [ Int_lit 1 ]
  in
  List.filter
    (fun c -> expr_size c < size && not (equal_expr c e))
    (lits @ expr_children e)

(** [drop_one xs] — every list obtained by removing one element of [xs]. *)
let rec drop_one = function
  | [] -> []
  | x :: rest -> rest :: List.map (fun r -> x :: r) (drop_one rest)

(** [shrink_stmt s] — candidate replacements for [s], each a (possibly
    empty) statement list: unwrap compound statements into their bodies,
    or shrink one contained expression. *)
let rec shrink_stmt (s : stmt) : stmt list list =
  let wrap d = [ { s with sdesc = d } ] in
  let in_rhs mk e = List.map (fun e' -> wrap (mk e')) (shrink_expr e) in
  match s.sdesc with
  | If (c, a, b) ->
      [ a; b ]
      @ List.map (fun a' -> wrap (If (c, a', b))) (shrink_stmts a)
      @ List.map (fun b' -> wrap (If (c, a, b'))) (shrink_stmts b)
  | For (_, _, _, body) | While (_, body) -> [ body ]
  | Assign (lv, e) -> in_rhs (fun e' -> Assign (lv, e')) e
  | Decl (ty, x, Some e) -> in_rhs (fun e' -> Decl (ty, x, Some e')) e
  | Return (Some e) -> in_rhs (fun e' -> Return (Some e')) e
  | Expr_stmt (Call (g, args)) ->
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun a' ->
                 wrap
                   (Expr_stmt
                      (Call
                         (g, List.mapi (fun j x -> if i = j then a' else x) args))))
               (shrink_expr a))
           args)
  | _ -> []

(** [shrink_stmts ss] — candidate replacements for a statement list: drop
    one statement, or apply {!shrink_stmt} to one statement in place. *)
and shrink_stmts (ss : stmt list) : stmt list list =
  drop_one ss
  @ List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun rs ->
               List.concat (List.mapi (fun j x -> if j = i then rs else [ x ]) ss))
             (shrink_stmt s))
         ss)

(** {1 Simplification} *)

(** [simplify_expr e] performs conservative constant folding, used to keep
    generated launch-configuration arithmetic readable. *)
let simplify_expr e =
  map_expr
    (function
      | Binop (Add, a, Int_lit 0) | Binop (Add, Int_lit 0, a) -> a
      | Binop (Sub, a, Int_lit 0) -> a
      | Binop (Mul, a, Int_lit 1) | Binop (Mul, Int_lit 1, a) -> a
      | Binop (Div, a, Int_lit 1) -> a
      | Binop (Add, Int_lit a, Int_lit b) -> Int_lit (a + b)
      | Binop (Sub, Int_lit a, Int_lit b) -> Int_lit (a - b)
      | Binop (Mul, Int_lit a, Int_lit b) -> Int_lit (a * b)
      | Binop (Div, Int_lit a, Int_lit b) when b <> 0 -> Int_lit (a / b)
      | Member (Dim3_ctor (x, _, _), "x") -> x
      | Member (Dim3_ctor (_, y, _), "y") -> y
      | Member (Dim3_ctor (_, _, z), "z") -> z
      | e -> e)
    e
