(** Shared machinery for the seven Table I benchmarks.

    Each benchmark provides two MiniCU translation units — a [No CDP]
    version (parent threads loop over their nested work) and a [CDP] version
    (parent threads launch child grids) — plus an OCaml host driver that
    works against either, and a pure-OCaml reference implementation used by
    the test suite to validate every transformed variant's output. *)

(* Nested-parallelism profile of a whole benchmark run, consumed by the
   cost model (lib/costmodel). One array entry per parent work item in
   processing order; computed from the dataset when the spec is built, so
   it reflects the workload itself, never a simulation. Drivers whose item
   stream is execution-order dependent (BFS/SSSP worklists) record the
   closest statically-computable stand-in; see each benchmark. *)
type workload = {
  wl_child_sizes : int array;
  wl_rounds : int;
  wl_parent_block : int;
}

type spec = {
  name : string;  (** Benchmark name (paper Table I): BFS, BT, ... *)
  dataset : string;  (** Dataset name: KRON, CNR, T0032-C16, ... *)
  cdp_src : string;  (** MiniCU source using dynamic parallelism. *)
  no_cdp_src : string;  (** MiniCU source without dynamic parallelism. *)
  parent_kernel : string;
  max_child_threads : int;
      (** Largest dynamic launch size in the CDP version; the threshold is
          not tuned beyond this (Section VII) except for Fig. 12. *)
  workload : workload;
  run : Gpusim.Device.t -> int;
      (** Drive the loaded program to completion (all launches and syncs);
          returns the output fingerprint. *)
  reference : unit -> int;
      (** Pure-OCaml reference result; must equal [run]'s fingerprint. *)
  native_host : Native.Hostspec.t option;
      (** The host driver as data, for benchmarks whose driver is static
          (no read-back-dependent control flow) and whose user-visible
          memory is order-independent: the native backend's differential
          layer replays it on both backends and compares dumps. [None]
          for iterative drivers (BFS/MST/SSSP worklists). *)
}

(** Order-independent fingerprint of an int sequence (commutative mix, so
    outputs that are conceptually sets — e.g. frontier contents — compare
    equal regardless of atomically-raced ordering). *)
let mix_hash (a : int array) =
  Array.fold_left
    (fun acc x ->
      let h = x * 0x9E3779B1 in
      let h = h lxor (h lsr 15) in
      acc + (h * 0x85EBCA77))
    0 a
  land 0x3FFFFFFFFFFFFFF

(** Position-sensitive fingerprint (for outputs that are true arrays). *)
let array_hash (a : int array) =
  let acc = ref 17 in
  Array.iter (fun x -> acc := (!acc * 31) + x land 0x3FFFFFFFFFFFFFF) a;
  !acc

let quantize f = int_of_float (Float.round (f *. 1024.0))

(** Upload a CSR graph; returns (row, col, weight) device pointers. *)
let upload_graph dev (g : Workloads.Csr.t) =
  ( Gpusim.Device.alloc_ints dev g.row,
    Gpusim.Device.alloc_ints dev g.col,
    Gpusim.Device.alloc_ints dev g.weight )

(** Convert the aggregation pass's allocation specs to the runtime's. *)
let to_device_auto (aps : (string * Dpopt.Aggregation.auto_param list) list) :
    (string * Gpusim.Device.auto_param list) list =
  List.map
    (fun (k, l) ->
      ( k,
        List.map
          (fun (ap : Dpopt.Aggregation.auto_param) ->
            {
              Gpusim.Device.ap_name = ap.ap_name;
              ap_elems =
                (fun ~grid:(gx, gy, gz) ~block:(bx, by, bz) ->
                  ap.ap_elems ~grid_blocks:(gx * gy * gz)
                    ~block_threads:(bx * by * bz));
            })
          l ))
    aps

(** [load_variant dev spec variant] compiles the right source through the
    optimization pipeline and loads it. [variant] is [`No_cdp] or
    [`Cdp opts]. *)
let load_variant ?cfg spec variant : Gpusim.Device.t =
  let dev = Gpusim.Device.create ?cfg () in
  (match variant with
  | `No_cdp ->
      Gpusim.Device.load_program dev (Minicu.Parser.program spec.no_cdp_src)
  | `Cdp opts ->
      let prog = Minicu.Parser.program spec.cdp_src in
      let r = Dpopt.Pipeline.run ~opts prog in
      Gpusim.Device.load_program dev r.prog
        ~auto_params:(to_device_auto r.auto_params));
  dev

(** [run_variant ?cfg spec variant] — load, run, return
    (fingerprint, simulated time, metrics). *)
let run_variant ?cfg spec variant =
  let dev = load_variant ?cfg spec variant in
  let t0 = Gpusim.Device.time dev in
  let fp = spec.run dev in
  let t1 = Gpusim.Device.time dev in
  (fp, t1 -. t0, Gpusim.Device.metrics dev)
