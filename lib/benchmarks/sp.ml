(** Survey Propagation (LonestarGPU-style message passing on the factor
    graph of a CNF formula; Table I).

    Each round, every variable updates the survey of each clause slot it
    occupies: the new survey of edge (clause c, slot s) is a product over
    the other slots of c of a damping of their current surveys. The
    per-variable occurrence loop is the nested parallelism; on RAND-3 every
    variable occurs in only ≈ 12 clauses, which is why the paper calls out
    SP/RAND-3 as a low-nested-parallelism case (Section VIII-D).

    Surveys are double-buffered, so each output cell is written by exactly
    one thread and all variants produce bit-identical floats. *)

let child_block = 32
let rounds = 3

let update_body =
  {|
      int oi = start + e;
      int c = o_cidx[oi];
      int slot = o_slot[oi];
      int cb = c_row[c];
      int ce = c_row[c + 1];
      float prod = 1.0;
      for (int s = cb; s < ce; s = s + 1) {
        if (s != cb + slot) {
          prod = prod * (0.5 + 0.5 * eta_old[s]);
        }
      }
      eta_new[cb + slot] = prod;
|}

let cdp_src =
  Fmt.str
    {|
__global__ void sp_child(int* o_cidx, int* o_slot, int* c_row, float* eta_old, float* eta_new, int start, int deg) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < deg) {
%s
  }
}

__global__ void sp_parent(int* o_row, int* o_cidx, int* o_slot, int* c_row, float* eta_old, float* eta_new, int n_vars) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n_vars) {
    int start = o_row[v];
    int deg = o_row[v + 1] - start;
    if (deg > 0) {
      sp_child<<<(deg + %d) / %d, %d>>>(o_cidx, o_slot, c_row, eta_old, eta_new, start, deg);
    }
  }
}
|}
    update_body (child_block - 1) child_block child_block

let no_cdp_src =
  Fmt.str
    {|
__global__ void sp_parent(int* o_row, int* o_cidx, int* o_slot, int* c_row, float* eta_old, float* eta_new, int n_vars) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n_vars) {
    int start = o_row[v];
    int deg = o_row[v + 1] - start;
    for (int e = 0; e < deg; e = e + 1) {
%s
    }
  }
}
|}
    update_body

(* Flattened factor-graph arrays for a formula. *)
type arrays = {
  o_row : int array;  (** Variable -> occurrence range. *)
  o_cidx : int array;  (** Occurrence -> clause index. *)
  o_slot : int array;  (** Occurrence -> slot within the clause. *)
  c_row : int array;  (** Clause -> survey-cell range (cells = slots). *)
  n_cells : int;
}

let build_arrays (f : Workloads.Sat.t) : arrays =
  let nc = Workloads.Sat.n_clauses f in
  let c_row = Array.make (nc + 1) 0 in
  for c = 0 to nc - 1 do
    c_row.(c + 1) <- c_row.(c) + Array.length f.clauses.(c)
  done;
  let occs = Array.make f.n_vars [] in
  Array.iteri
    (fun c lits ->
      Array.iteri
        (fun slot lit ->
          let v = abs lit - 1 in
          occs.(v) <- (c, slot) :: occs.(v))
        lits)
    f.clauses;
  let o_row = Array.make (f.n_vars + 1) 0 in
  for v = 0 to f.n_vars - 1 do
    o_row.(v + 1) <- o_row.(v) + List.length occs.(v)
  done;
  let total = o_row.(f.n_vars) in
  let o_cidx = Array.make total 0 and o_slot = Array.make total 0 in
  for v = 0 to f.n_vars - 1 do
    List.iteri
      (fun i (c, slot) ->
        o_cidx.(o_row.(v) + i) <- c;
        o_slot.(o_row.(v) + i) <- slot)
      (List.rev occs.(v))
  done;
  { o_row; o_cidx; o_slot; c_row; n_cells = c_row.(nc) }

let initial_eta n_cells =
  Array.init n_cells (fun i -> 0.1 +. (0.8 *. Float.rem (float_of_int i *. 0.61803398875) 1.0))

let reference (f : Workloads.Sat.t) () =
  let a = build_arrays f in
  let eta = ref (initial_eta a.n_cells) in
  let eta' = ref (Array.make a.n_cells 0.0) in
  for _ = 1 to rounds do
    for v = 0 to f.n_vars - 1 do
      for oi = a.o_row.(v) to a.o_row.(v + 1) - 1 do
        let c = a.o_cidx.(oi) and slot = a.o_slot.(oi) in
        let cb = a.c_row.(c) and ce = a.c_row.(c + 1) in
        let prod = ref 1.0 in
        for s = cb to ce - 1 do
          if s <> cb + slot then prod := !prod *. (0.5 +. (0.5 *. !eta.(s)))
        done;
        !eta'.(cb + slot) <- !prod
      done
    done;
    let tmp = !eta in
    eta := !eta';
    eta' := tmp
  done;
  Bench_common.array_hash (Array.map Bench_common.quantize !eta)

let run (f : Workloads.Sat.t) dev =
  let open Gpusim in
  let a = build_arrays f in
  let d_orow = Device.alloc_ints dev a.o_row in
  let d_ocidx = Device.alloc_ints dev a.o_cidx in
  let d_oslot = Device.alloc_ints dev a.o_slot in
  let d_crow = Device.alloc_ints dev a.c_row in
  let d_eta = Device.alloc_floats dev (initial_eta a.n_cells) in
  let d_eta' = Device.alloc_float_zeros dev a.n_cells in
  let old_b = ref d_eta and new_b = ref d_eta' in
  for _ = 1 to rounds do
    Device.launch dev ~kernel:"sp_parent"
      ~grid:((f.n_vars + 127) / 128, 1, 1)
      ~block:(128, 1, 1)
      ~args:
        [
          Ptr d_orow;
          Ptr d_ocidx;
          Ptr d_oslot;
          Ptr d_crow;
          Ptr !old_b;
          Ptr !new_b;
          Int f.n_vars;
        ];
    ignore (Device.sync dev);
    let tmp = !old_b in
    old_b := !new_b;
    new_b := tmp
  done;
  Bench_common.array_hash
    (Array.map Bench_common.quantize (Device.read_floats dev !old_b a.n_cells))

(* The same driver as [run], as data: surveys are double-buffered (each
   output cell written by exactly one thread per round), so every buffer
   in the dump is order-independent. Round r reads the buffer the
   previous round wrote: eta (buf 4) on even rounds, eta' (buf 5) on
   odd. *)
let native_host (f : Workloads.Sat.t) : Native.Hostspec.t =
  let a = build_arrays f in
  let open Native.Hostspec in
  let round r =
    let old_b, new_b = if r mod 2 = 0 then (4, 5) else (5, 4) in
    [
      Launch
        {
          kernel = "sp_parent";
          grid = ((f.n_vars + 127) / 128, 1, 1);
          block = (128, 1, 1);
          args =
            [
              A_buf 0; A_buf 1; A_buf 2; A_buf 3; A_buf old_b; A_buf new_b;
              A_int f.n_vars;
            ];
        };
      Sync;
    ]
  in
  {
    ops =
      [
        Alloc_ints a.o_row;
        Alloc_ints a.o_cidx;
        Alloc_ints a.o_slot;
        Alloc_ints a.c_row;
        Alloc_floats (initial_eta a.n_cells);
        Alloc_float_zeros a.n_cells;
      ]
      @ List.concat (List.init rounds round);
  }

let spec ~(formula : Workloads.Sat.t) : Bench_common.spec =
  let a = build_arrays formula in
  let max_occ =
    let m = ref 0 in
    for v = 0 to formula.n_vars - 1 do
      m := max !m (a.o_row.(v + 1) - a.o_row.(v))
    done;
    !m
  in
  (* Workload profile: [rounds] host launches, each visiting every variable
     with child size = its clause-occurrence count. *)
  let per_round =
    Array.init formula.n_vars (fun v -> a.o_row.(v + 1) - a.o_row.(v))
  in
  let sizes = Array.concat (List.init rounds (fun _ -> per_round)) in
  {
    name = "SP";
    dataset = formula.name;
    cdp_src;
    no_cdp_src;
    parent_kernel = "sp_parent";
    max_child_threads = max_occ;
    workload =
      { wl_child_sizes = sizes; wl_rounds = rounds; wl_parent_block = 128 };
    run = run formula;
    reference = reference formula;
    native_host = Some (native_host formula);
  }
