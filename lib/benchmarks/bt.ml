(** Bezier Tessellation (CUDA samples' cdpBezierTessellation; Table I).

    One parent thread per line computes the curvature of its quadratic
    Bezier curve, derives the tessellation point count, allocates the output
    vertex buffer with device-side [malloc] (the "aggregated cudaMalloc"
    the paper mentions in Section VII), and tessellates — with a child grid
    of one thread per point in the CDP version. A quantized coordinate
    checksum (order-independent integer atomics) fingerprints the output. *)

let child_block = 128

let tess_body =
  {|
      float u = (float)i / (float)(n - 1);
      float v = 1.0 - u;
      float b0 = v * v;
      float b1 = 2.0 * v * u;
      float b2 = u * u;
      float x = b0 * x0 + b1 * x1 + b2 * x2;
      float y = b0 * y0 + b1 * y1 + b2 * y2;
      out[2 * i] = x;
      out[2 * i + 1] = y;
      atomicAdd(&checksum[0], (int)(x * 64.0) + (int)(y * 64.0));
|}

let parent_prologue =
  {|
    float x0 = cpx[3 * l];
    float y0 = cpy[3 * l];
    float x1 = cpx[3 * l + 1];
    float y1 = cpy[3 * l + 1];
    float x2 = cpx[3 * l + 2];
    float y2 = cpy[3 * l + 2];
    float dx = x2 - x0;
    float dy = y2 - y0;
    float len = sqrt(dx * dx + dy * dy);
    if (len < 0.000000001) {
      len = 0.000000001;
    }
    float curv = fabs((x1 - x0) * dy - (y1 - y0) * dx) / len;
    int n = max(2, min(max_tess, (int)(curv * cscale)));
    npoints[l] = n;
    float* out = (float*)malloc(2 * n);
|}

let cdp_src =
  Fmt.str
    {|
__global__ void bt_child(float* out, int* checksum, float x0, float y0, float x1, float y1, float x2, float y2, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
%s
  }
}

__global__ void bt_parent(float* cpx, float* cpy, int* npoints, int* checksum, int n_lines, int max_tess, float cscale) {
  int l = blockIdx.x * blockDim.x + threadIdx.x;
  if (l < n_lines) {
%s
    bt_child<<<(n + %d) / %d, %d>>>(out, checksum, x0, y0, x1, y1, x2, y2, n);
  }
}
|}
    tess_body parent_prologue (child_block - 1) child_block child_block

let no_cdp_src =
  Fmt.str
    {|
__global__ void bt_parent(float* cpx, float* cpy, int* npoints, int* checksum, int n_lines, int max_tess, float cscale) {
  int l = blockIdx.x * blockDim.x + threadIdx.x;
  if (l < n_lines) {
%s
    for (int i = 0; i < n; i = i + 1) {
%s
    }
  }
}
|}
    parent_prologue tess_body

(* Reference computation mirroring the kernel's operation order exactly, so
   floats (and their truncations) are bit-identical. *)
let reference (d : Workloads.Bezier.t) () =
  let checksum = ref 0 and npoints_hash = ref 17 in
  Array.iter
    (fun (l : Workloads.Bezier.line) ->
      let x0, y0 = l.p0 and x1, y1 = l.p1 and x2, y2 = l.p2 in
      let dx = x2 -. x0 and dy = y2 -. y0 in
      let len = Float.sqrt ((dx *. dx) +. (dy *. dy)) in
      let len = if len < 1e-9 then 1e-9 else len in
      let curv = Float.abs (((x1 -. x0) *. dy) -. ((y1 -. y0) *. dx)) /. len in
      let n =
        max 2 (min d.max_tessellation (int_of_float (curv *. d.curvature_scale)))
      in
      npoints_hash := (!npoints_hash * 31) + n land 0x3FFFFFFFFFFFFFF;
      for i = 0 to n - 1 do
        let u = float_of_int i /. float_of_int (n - 1) in
        let v = 1.0 -. u in
        let b0 = v *. v and b1 = 2.0 *. v *. u and b2 = u *. u in
        let x = (b0 *. x0) +. (b1 *. x1) +. (b2 *. x2) in
        let y = (b0 *. y0) +. (b1 *. y1) +. (b2 *. y2) in
        checksum :=
          !checksum + int_of_float (x *. 64.0) + int_of_float (y *. 64.0)
      done)
    d.lines;
  !checksum + !npoints_hash

(* The flattened control-point arrays the driver uploads. *)
let control_points (d : Workloads.Bezier.t) =
  let n_lines = Array.length d.lines in
  let cpx = Array.make (3 * n_lines) 0.0 and cpy = Array.make (3 * n_lines) 0.0 in
  Array.iteri
    (fun l (ln : Workloads.Bezier.line) ->
      let set i (x, y) =
        cpx.((3 * l) + i) <- x;
        cpy.((3 * l) + i) <- y
      in
      set 0 ln.p0;
      set 1 ln.p1;
      set 2 ln.p2)
    d.lines;
  (cpx, cpy)

let run (d : Workloads.Bezier.t) dev =
  let open Gpusim in
  let n_lines = Array.length d.lines in
  let cpx, cpy = control_points d in
  let d_cpx = Device.alloc_floats dev cpx in
  let d_cpy = Device.alloc_floats dev cpy in
  let d_np = Device.alloc_int_zeros dev n_lines in
  let d_cs = Device.alloc_int_zeros dev 1 in
  Device.launch dev ~kernel:"bt_parent"
    ~grid:((n_lines + 127) / 128, 1, 1)
    ~block:(128, 1, 1)
    ~args:
      [
        Ptr d_cpx;
        Ptr d_cpy;
        Ptr d_np;
        Ptr d_cs;
        Int n_lines;
        Int d.max_tessellation;
        Float d.curvature_scale;
      ];
  ignore (Device.sync dev);
  let cs = (Device.read_ints dev d_cs 1).(0) in
  let np = Device.read_ints dev d_np n_lines in
  cs + Bench_common.array_hash np

(* Workload profile: one host launch; one parent item per line whose child
   size is the tessellation point count from the curvature formula. *)
let workload (d : Workloads.Bezier.t) : Bench_common.workload =
  let sizes =
    Array.map
      (fun (l : Workloads.Bezier.line) ->
        let x0, y0 = l.p0 and x1, y1 = l.p1 and x2, y2 = l.p2 in
        let dx = x2 -. x0 and dy = y2 -. y0 in
        let len = Float.sqrt ((dx *. dx) +. (dy *. dy)) in
        let len = if len < 1e-9 then 1e-9 else len in
        let curv =
          Float.abs (((x1 -. x0) *. dy) -. ((y1 -. y0) *. dx)) /. len
        in
        max 2
          (min d.max_tessellation (int_of_float (curv *. d.curvature_scale))))
      d.lines
  in
  { wl_child_sizes = sizes; wl_rounds = 1; wl_parent_block = 128 }

(* The same driver as [run], as data: mallocs write only device-private
   vertex buffers and the checksum is an integer atomic sum, so the
   user-visible dump (control points, npoints, checksum) is
   order-independent. *)
let native_host (d : Workloads.Bezier.t) : Native.Hostspec.t =
  let n_lines = Array.length d.lines in
  let cpx, cpy = control_points d in
  {
    Native.Hostspec.ops =
      [
        Native.Hostspec.Alloc_floats cpx;
        Native.Hostspec.Alloc_floats cpy;
        Native.Hostspec.Alloc_int_zeros n_lines;
        Native.Hostspec.Alloc_int_zeros 1;
        Native.Hostspec.Launch
          {
            kernel = "bt_parent";
            grid = ((n_lines + 127) / 128, 1, 1);
            block = (128, 1, 1);
            args =
              [
                Native.Hostspec.A_buf 0;
                Native.Hostspec.A_buf 1;
                Native.Hostspec.A_buf 2;
                Native.Hostspec.A_buf 3;
                Native.Hostspec.A_int n_lines;
                Native.Hostspec.A_int d.max_tessellation;
                Native.Hostspec.A_float d.curvature_scale;
              ];
          };
        Native.Hostspec.Sync;
      ];
  }

let spec ~(dataset : Workloads.Bezier.t) : Bench_common.spec =
  {
    name = "BT";
    dataset = dataset.name;
    cdp_src;
    no_cdp_src;
    parent_kernel = "bt_parent";
    max_child_threads = dataset.max_tessellation;
    workload = workload dataset;
    run = run dataset;
    reference = reference dataset;
    native_host = Some (native_host dataset);
  }
