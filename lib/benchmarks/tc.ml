(** Triangle Counting (edge-iterator with binary search, in the style of
    Mailthody et al.; Table I).

    For each undirected edge (u, v) with u < v, one parent thread counts the
    common neighbors w > v of u and v: a child thread per neighbor of u
    binary-searches it in v's (sorted) adjacency list. The per-edge child
    grid size is deg(u) — heavy-tailed on KRON/CNR.

    As in the paper ("for TC, we use parts of the graphs ... due to memory
    constraints"), the edge list is capped. *)

let child_block = 64

let count_body =
  {|
      int x = col[ustart + e];
      if (x > v) {
        int lo = row[v];
        int hi = row[v + 1] - 1;
        int found = 0;
        while (lo <= hi) {
          int mid = (lo + hi) / 2;
          int y = col[mid];
          if (y == x) {
            found = 1;
            lo = hi + 1;
          } else {
            if (y < x) {
              lo = mid + 1;
            } else {
              hi = mid - 1;
            }
          }
        }
        if (found == 1) {
          atomicAdd(&count[0], 1);
        }
      }
|}

let cdp_src =
  Fmt.str
    {|
__global__ void tc_child(int* row, int* col, int* count, int ustart, int udeg, int v) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < udeg) {
%s
  }
}

__global__ void tc_parent(int* row, int* col, int* e_src, int* e_dst, int* count, int n_edges) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n_edges) {
    int u = e_src[i];
    int v = e_dst[i];
    int ustart = row[u];
    int udeg = row[u + 1] - ustart;
    if (udeg > 0) {
      tc_child<<<(udeg + %d) / %d, %d>>>(row, col, count, ustart, udeg, v);
    }
  }
}
|}
    count_body (child_block - 1) child_block child_block

let no_cdp_src =
  Fmt.str
    {|
__global__ void tc_parent(int* row, int* col, int* e_src, int* e_dst, int* count, int n_edges) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n_edges) {
    int u = e_src[i];
    int v = e_dst[i];
    int ustart = row[u];
    int udeg = row[u + 1] - ustart;
    for (int e = 0; e < udeg; e = e + 1) {
%s
    }
  }
}
|}
    count_body

(* The capped u<v edge list of a sorted graph. *)
let edge_list ?(cap = 6000) (g : Workloads.Csr.t) =
  let src = ref [] and dst = ref [] and count = ref 0 in
  (try
     for v = 0 to g.n - 1 do
       for e = g.row.(v) to g.row.(v + 1) - 1 do
         let u = g.col.(e) in
         if v < u then begin
           src := v :: !src;
           dst := u :: !dst;
           incr count;
           if !count >= cap then raise Exit
         end
       done
     done
   with Exit -> ());
  (Array.of_list (List.rev !src), Array.of_list (List.rev !dst))

let reference (g : Workloads.Csr.t) ~cap () =
  let e_src, e_dst = edge_list ~cap g in
  let count = ref 0 in
  Array.iteri
    (fun i u ->
      let v = e_dst.(i) in
      for e = g.row.(u) to g.row.(u + 1) - 1 do
        let x = g.col.(e) in
        if x > v then begin
          (* binary search x in adj(v) *)
          let lo = ref g.row.(v) and hi = ref (g.row.(v + 1) - 1) in
          let found = ref false in
          while !lo <= !hi do
            let mid = (!lo + !hi) / 2 in
            if g.col.(mid) = x then begin
              found := true;
              lo := !hi + 1
            end
            else if g.col.(mid) < x then lo := mid + 1
            else hi := mid - 1
          done;
          if !found then incr count
        end
      done)
    e_src;
  !count

let run (g : Workloads.Csr.t) ~cap dev =
  let open Gpusim in
  let e_src, e_dst = edge_list ~cap g in
  let n_edges = Array.length e_src in
  let d_row, d_col, _ = Bench_common.upload_graph dev g in
  let d_src = Device.alloc_ints dev e_src in
  let d_dst = Device.alloc_ints dev e_dst in
  let d_count = Device.alloc_int_zeros dev 1 in
  Device.launch dev ~kernel:"tc_parent"
    ~grid:((n_edges + 127) / 128, 1, 1)
    ~block:(128, 1, 1)
    ~args:
      [ Ptr d_row; Ptr d_col; Ptr d_src; Ptr d_dst; Ptr d_count; Int n_edges ];
  ignore (Device.sync dev);
  (Device.read_ints dev d_count 1).(0)

(* The same driver as [run], as data: the only output is the integer
   triangle counter (atomicAdd), so the dump is order-independent. The
   unused weight buffer is still allocated to keep buffer ids aligned
   with [upload_graph]. *)
let native_host (g : Workloads.Csr.t) ~cap : Native.Hostspec.t =
  let e_src, e_dst = edge_list ~cap g in
  let n_edges = Array.length e_src in
  let open Native.Hostspec in
  {
    ops =
      [
        Alloc_ints g.row;
        Alloc_ints g.col;
        Alloc_ints g.weight;
        Alloc_ints e_src;
        Alloc_ints e_dst;
        Alloc_int_zeros 1;
        Launch
          {
            kernel = "tc_parent";
            grid = ((n_edges + 127) / 128, 1, 1);
            block = (128, 1, 1);
            args =
              [ A_buf 0; A_buf 1; A_buf 3; A_buf 4; A_buf 5; A_int n_edges ];
          };
        Sync;
      ];
  }

let spec ?(cap = 6000) ~(dataset : Workloads.Graph_gen.named) () :
    Bench_common.spec =
  let g = Workloads.Csr.sort_neighbors dataset.graph in
  (* Workload profile: one launch; one parent item per capped edge (u, v)
     with child size = deg(u). *)
  let e_src, _ = edge_list ~cap g in
  let sizes = Array.map (fun u -> g.row.(u + 1) - g.row.(u)) e_src in
  {
    name = "TC";
    dataset = dataset.name;
    cdp_src;
    no_cdp_src;
    parent_kernel = "tc_parent";
    max_child_threads = Workloads.Csr.max_degree g;
    workload = { wl_child_sizes = sizes; wl_rounds = 1; wl_parent_block = 128 };
    run = run g ~cap;
    reference = reference g ~cap;
    native_host = Some (native_host g ~cap);
  }
