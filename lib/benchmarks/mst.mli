(** Minimum Spanning Tree (Boruvka, Table I benchmarks MSTF and MSTV). GPU
    kernels find each component's minimum outgoing edge (MSTF) and verify
    cross-component edges (MSTV); component merging runs on the host, as in
    the LonestarGPU original. Packed (weight, edge-id) minima make every
    variant pick identical edges. *)

val child_block : int
val inf_packed : int
val find_cdp_src : string
val find_no_cdp_src : string
val verify_cdp_src : string
val verify_no_cdp_src : string

(** Host-side Boruvka (reference and MSTV state generator):
    (total MST weight, final component array, rounds run). *)
val host_boruvka : ?max_rounds:int -> Workloads.Csr.t -> int * int array * int

val mstf_reference : Workloads.Csr.t -> unit -> int
val mstf_run : Workloads.Csr.t -> Gpusim.Device.t -> int
val mstv_reference : Workloads.Csr.t -> unit -> int
val mstv_run : Workloads.Csr.t -> Gpusim.Device.t -> int
val mstf_spec : dataset:Workloads.Graph_gen.named -> Bench_common.spec
val mstv_spec : dataset:Workloads.Graph_gen.named -> Bench_common.spec
