(** Triangle Counting (edge-iterator with binary search, Table I). The
    per-edge child grid has deg(u) threads. The edge list is capped, as the
    paper also uses "parts of the graphs" for TC. *)

val child_block : int
val cdp_src : string
val no_cdp_src : string
val edge_list : ?cap:int -> Workloads.Csr.t -> int array * int array
val reference : Workloads.Csr.t -> cap:int -> unit -> int
val run : Workloads.Csr.t -> cap:int -> Gpusim.Device.t -> int

(** [spec ?cap ~dataset ()] — the graph is neighbor-sorted internally. *)
val spec :
  ?cap:int -> dataset:Workloads.Graph_gen.named -> unit -> Bench_common.spec
