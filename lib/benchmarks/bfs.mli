(** Breadth-First Search (SHOC-style frontier BFS, Table I). The per-vertex
    neighbor loop is the nested parallelism; the CDP version launches one
    child grid per frontier vertex. *)

val child_block : int
val cdp_src : string
val no_cdp_src : string
val source_vertex : int

(** BFS levels from {!source_vertex}, hashed. *)
val reference : Workloads.Csr.t -> unit -> int

val run : Workloads.Csr.t -> Gpusim.Device.t -> int
val spec : dataset:Workloads.Graph_gen.named -> Bench_common.spec
