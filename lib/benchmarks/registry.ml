(** The benchmark × dataset matrix of Table I, with the scaled-down dataset
    sizes this reproduction uses by default (MiniCU is interpreted; see
    DESIGN.md). [Size] scales every dataset together so the harness can
    trade fidelity for wall-clock time. *)

type size = Small | Medium | Large

(** Datasets, memoized per size so repeated spec lookups share graphs.
    The cache is the one piece of mutable state shared across callers, so
    it is guarded by a mutex: sweep/figure jobs running on pool domains
    all call [all]/[road] concurrently. Generation is deterministic (the
    workload generators seed their own PRNGs), so even a redundant
    generation race would be benign — the lock just keeps the Hashtbl's
    internals safe. *)
let datasets =
  let cache = Hashtbl.create 8 in
  let lock = Mutex.create () in
  fun (size : size) ->
    Mutex.protect lock @@ fun () ->
    match Hashtbl.find_opt cache size with
    | Some d -> d
    | None ->
        let scale, cnr_n, road, lines1, lines2, sat_scale =
          match size with
          | Small -> (9, 900, 28, 300, 120, 0.6)
          | Medium -> (10, 1500, 36, 600, 200, 1.0)
          (* paper-scale: RMAT scale 13 puts the hub degree 100x+ above
             the mean (the regime where CDP wins in the paper); intended
             for sampled runs — exact large runs are possible but slow *)
          | Large -> (13, 15000, 100, 100_000, 30_000, 5.0)
        in
        let d =
          ( Workloads.Graph_gen.kron_dataset ~scale (),
            Workloads.Graph_gen.cnr_dataset ~n:cnr_n (),
            Workloads.Graph_gen.road_dataset ~rows:road ~cols:road (),
            Workloads.Bezier.t0032_c16 ~n_lines:lines1 (),
            Workloads.Bezier.t2048_c64 ~n_lines:lines2 (),
            Workloads.Sat.rand3
              ~n_vars:(int_of_float (700.0 *. sat_scale))
              ~n_clauses:(int_of_float (2940.0 *. sat_scale))
              (),
            Workloads.Sat.sat5
              ~n_vars:(int_of_float (800.0 *. sat_scale))
              ~n_clauses:(int_of_float (6000.0 *. sat_scale))
              () )
        in
        Hashtbl.add cache size d;
        d

(** All (benchmark, dataset) pairs of Fig. 9 / Table I. *)
let all ?(size = Small) () : Bench_common.spec list =
  let kron, cnr, _road, t0032, t2048, rand3, sat5 = datasets size in
  let tc_cap =
    match size with Small -> 3000 | Medium -> 6000 | Large -> 20000
  in
  [
    Bfs.spec ~dataset:kron;
    Bfs.spec ~dataset:cnr;
    Bt.spec ~dataset:t0032;
    Bt.spec ~dataset:t2048;
    Mst.mstf_spec ~dataset:kron;
    Mst.mstf_spec ~dataset:cnr;
    Mst.mstv_spec ~dataset:kron;
    Mst.mstv_spec ~dataset:cnr;
    Sp.spec ~formula:rand3;
    Sp.spec ~formula:sat5;
    Sssp.spec ~dataset:kron;
    Sssp.spec ~dataset:cnr;
    Tc.spec ~cap:tc_cap ~dataset:kron ();
    Tc.spec ~cap:tc_cap ~dataset:cnr ();
  ]

(** The graph benchmarks on the road network (Fig. 12, Section VIII-D). *)
let road ?(size = Small) () : Bench_common.spec list =
  let _, _, road, _, _, _, _ = datasets size in
  [
    Bfs.spec ~dataset:road;
    Mst.mstf_spec ~dataset:road;
    Mst.mstv_spec ~dataset:road;
    Sssp.spec ~dataset:road;
  ]

let find ?size ~name ~dataset () =
  List.find_opt
    (fun (s : Bench_common.spec) -> s.name = name && s.dataset = dataset)
    (all ?size () @ road ?size ())
