(** Survey Propagation (message passing on a CNF factor graph, Table I).
    Double-buffered float surveys: each cell is written by exactly one
    thread, so every variant is bit-identical. *)

val child_block : int
val rounds : int
val cdp_src : string
val no_cdp_src : string

type arrays = {
  o_row : int array;
  o_cidx : int array;
  o_slot : int array;
  c_row : int array;
  n_cells : int;
}

val build_arrays : Workloads.Sat.t -> arrays
val reference : Workloads.Sat.t -> unit -> int
val run : Workloads.Sat.t -> Gpusim.Device.t -> int
val spec : formula:Workloads.Sat.t -> Bench_common.spec
