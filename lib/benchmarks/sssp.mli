(** Single-Source Shortest Path (worklist Bellman-Ford, Table I). Converges
    to the Dijkstra fixpoint under any atomic interleaving, so all variants
    produce identical distances. *)

val child_block : int
val cdp_src : string
val no_cdp_src : string
val source_vertex : int
val inf : int

(** Dijkstra distances, hashed. *)
val reference : Workloads.Csr.t -> unit -> int

val run : Workloads.Csr.t -> Gpusim.Device.t -> int
val spec : dataset:Workloads.Graph_gen.named -> Bench_common.spec
