(** Shared machinery for the seven Table I benchmarks: each provides a
    No-CDP and a CDP MiniCU translation unit, an OCaml host driver that
    works against either, and a pure-OCaml reference used to validate every
    transformed variant's output. *)

(** The nested-parallelism shape of a benchmark run, as the cost model
    ({e lib/costmodel}) consumes it: one entry per parent work item over the
    whole application run, in processing order. [wl_child_sizes.(i)] is the
    child-thread count item [i] wants (0 when the parent thread does no
    nested work); [wl_rounds] is how many host-side parent-grid launches the
    driver performs; [wl_parent_block] is the driver's parent block size.
    Profiles are computed from the dataset at spec-construction time — they
    describe the workload, not a simulation. Iterative drivers whose item
    stream depends on execution order (BFS frontiers, SSSP worklists) use
    the closest statically-computable stand-in, documented per benchmark. *)
type workload = {
  wl_child_sizes : int array;
  wl_rounds : int;
  wl_parent_block : int;
}

type spec = {
  name : string;  (** BFS, BT, MSTF, MSTV, SP, SSSP, TC. *)
  dataset : string;  (** KRON, CNR, ROAD, T0032-C16, ... *)
  cdp_src : string;
  no_cdp_src : string;
  parent_kernel : string;
  max_child_threads : int;
      (** Largest dynamic launch size; bounds threshold tuning
          (Section VII). *)
  workload : workload;  (** Nested-parallelism profile for the cost model. *)
  run : Gpusim.Device.t -> int;
      (** Drive the loaded program to completion; returns the output
          fingerprint. *)
  reference : unit -> int;  (** Pure-OCaml expected fingerprint. *)
  native_host : Native.Hostspec.t option;
      (** The host driver as data ({!Native.Hostspec}) when it is static
          and its user-visible memory order-independent; [None] for
          iterative (read-back-driven) drivers. *)
}

(** Order-independent fingerprint (for set-like outputs). *)
val mix_hash : int array -> int

(** Position-sensitive fingerprint. *)
val array_hash : int array -> int

(** Quantize a float to a stable integer (×1024, rounded). *)
val quantize : float -> int

(** Upload a CSR graph; returns (row, col, weight) device pointers. *)
val upload_graph :
  Gpusim.Device.t ->
  Workloads.Csr.t ->
  Gpusim.Value.ptr * Gpusim.Value.ptr * Gpusim.Value.ptr

(** Adapt the aggregation pass's buffer specs to the runtime's. *)
val to_device_auto :
  (string * Dpopt.Aggregation.auto_param list) list ->
  (string * Gpusim.Device.auto_param list) list

(** Compile the right source through the pipeline and load it onto a fresh
    device. *)
val load_variant :
  ?cfg:Gpusim.Config.t ->
  spec ->
  [ `No_cdp | `Cdp of Dpopt.Pipeline.options ] ->
  Gpusim.Device.t

(** Load, run, return (fingerprint, simulated cycles, metrics). *)
val run_variant :
  ?cfg:Gpusim.Config.t ->
  spec ->
  [ `No_cdp | `Cdp of Dpopt.Pipeline.options ] ->
  int * float * Gpusim.Metrics.t
