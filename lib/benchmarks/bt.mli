(** Bezier Tessellation (CUDA samples' cdpBezierTessellation, Table I).
    Per-line curvature determines the child grid size; the parent uses
    device-side [malloc] for the output vertices. *)

val child_block : int
val cdp_src : string
val no_cdp_src : string
val reference : Workloads.Bezier.t -> unit -> int
val run : Workloads.Bezier.t -> Gpusim.Device.t -> int
val spec : dataset:Workloads.Bezier.t -> Bench_common.spec
