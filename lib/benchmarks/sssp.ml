(** Single-Source Shortest Path (worklist Bellman-Ford, LonestarGPU-style;
    Table I).

    Each iteration relaxes the out-edges of every vertex in the worklist;
    any vertex whose distance improves is enqueued for the next round
    (deduplicated with an in-queue flag). The per-vertex edge loop is the
    nested parallelism. Distances converge to the same fixpoint no matter
    how the atomics interleave, so all variants produce identical output. *)

let child_block = 64

let relax_body =
  {|
      int u = col[start + e];
      int alt = dv + w[start + e];
      int old = atomicMin(&dist[u], alt);
      if (alt < old) {
        if (atomicExch(&inq[u], 1) == 0) {
          int idx = atomicAdd(&next_count[0], 1);
          next_frontier[idx] = u;
        }
      }
|}

let cdp_src =
  Fmt.str
    {|
__global__ void sssp_child(int* col, int* w, int* dist, int* inq, int* next_frontier, int* next_count, int start, int deg, int dv) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < deg) {
%s
  }
}

__global__ void sssp_parent(int* row, int* col, int* w, int* dist, int* inq, int* frontier, int n_frontier, int* next_frontier, int* next_count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n_frontier) {
    int v = frontier[i];
    inq[v] = 0;
    int start = row[v];
    int deg = row[v + 1] - start;
    int dv = dist[v];
    if (deg > 0) {
      sssp_child<<<(deg + %d) / %d, %d>>>(col, w, dist, inq, next_frontier, next_count, start, deg, dv);
    }
  }
}
|}
    relax_body (child_block - 1) child_block child_block

let no_cdp_src =
  Fmt.str
    {|
__global__ void sssp_parent(int* row, int* col, int* w, int* dist, int* inq, int* frontier, int n_frontier, int* next_frontier, int* next_count) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n_frontier) {
    int v = frontier[i];
    inq[v] = 0;
    int start = row[v];
    int deg = row[v + 1] - start;
    int dv = dist[v];
    for (int e = 0; e < deg; e = e + 1) {
%s
    }
  }
}
|}
    relax_body

let source_vertex = 0
let inf = 1 lsl 40

(** Dijkstra reference. *)
let reference (g : Workloads.Csr.t) () =
  let dist = Array.make g.n inf in
  dist.(source_vertex) <- 0;
  let module PQ = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let pq = ref (PQ.singleton (0, source_vertex)) in
  while not (PQ.is_empty !pq) do
    let ((d, v) as el) = PQ.min_elt !pq in
    pq := PQ.remove el !pq;
    if d = dist.(v) then
      for e = g.row.(v) to g.row.(v + 1) - 1 do
        let u = g.col.(e) in
        let alt = d + g.weight.(e) in
        if alt < dist.(u) then begin
          dist.(u) <- alt;
          pq := PQ.add (alt, u) !pq
        end
      done
  done;
  Bench_common.array_hash dist

let run (g : Workloads.Csr.t) dev =
  let open Gpusim in
  let d_row, d_col, d_w = Bench_common.upload_graph dev g in
  let dist = Array.make g.n inf in
  dist.(source_vertex) <- 0;
  let d_dist = Device.alloc_ints dev dist in
  let d_inq = Device.alloc_int_zeros dev g.n in
  let d_frontier = Device.alloc_int_zeros dev g.n in
  let d_next = Device.alloc_int_zeros dev g.n in
  let d_next_count = Device.alloc_int_zeros dev 1 in
  Device.write_ints dev d_frontier [| source_vertex |];
  let frontier = ref d_frontier and next = ref d_next in
  let n_frontier = ref 1 in
  let rounds = ref 0 in
  while !n_frontier > 0 && !rounds < 4 * g.n do
    incr rounds;
    Device.write_ints dev d_next_count [| 0 |];
    Device.launch dev ~kernel:"sssp_parent"
      ~grid:((!n_frontier + 127) / 128, 1, 1)
      ~block:(128, 1, 1)
      ~args:
        [
          Ptr d_row;
          Ptr d_col;
          Ptr d_w;
          Ptr d_dist;
          Ptr d_inq;
          Ptr !frontier;
          Int !n_frontier;
          Ptr !next;
          Ptr d_next_count;
        ];
    ignore (Device.sync dev);
    n_frontier := (Device.read_ints dev d_next_count 1).(0);
    let tmp = !frontier in
    frontier := !next;
    next := tmp
  done;
  Bench_common.array_hash (Device.read_ints dev d_dist g.n)

(* Workload profile: the exact worklist contents depend on how atomics
   interleave, so use the closest statically-computable stand-in — a
   sequential replay of the same worklist relaxation (dist + in-queue
   dedup, one fixed interleaving). Unlike a plain BFS replay it counts
   re-relaxations, which dominate the item count on skewed graphs. *)
let workload (g : Workloads.Csr.t) : Bench_common.workload =
  let dist = Array.make g.n inf in
  dist.(source_vertex) <- 0;
  let inq = Array.make g.n false in
  let sizes = ref [] in
  let rounds = ref 0 in
  let frontier = ref [ source_vertex ] in
  while !frontier <> [] && !rounds < 4 * g.n do
    incr rounds;
    let next = ref [] in
    List.iter
      (fun v ->
        inq.(v) <- false;
        sizes := (g.row.(v + 1) - g.row.(v)) :: !sizes;
        let dv = dist.(v) in
        for e = g.row.(v) to g.row.(v + 1) - 1 do
          let u = g.col.(e) in
          let alt = dv + g.weight.(e) in
          if alt < dist.(u) then begin
            dist.(u) <- alt;
            if not inq.(u) then begin
              inq.(u) <- true;
              next := u :: !next
            end
          end
        done)
      !frontier;
    frontier := List.rev !next
  done;
  {
    wl_child_sizes = Array.of_list (List.rev !sizes);
    wl_rounds = !rounds;
    wl_parent_block = 128;
  }

let spec ~(dataset : Workloads.Graph_gen.named) : Bench_common.spec =
  {
    name = "SSSP";
    dataset = dataset.name;
    cdp_src;
    no_cdp_src;
    parent_kernel = "sssp_parent";
    max_child_threads = Workloads.Csr.max_degree dataset.graph;
    workload = workload dataset.graph;
    run = run dataset.graph;
    reference = reference dataset.graph;
    native_host = None;
  }
