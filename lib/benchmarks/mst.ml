(** Minimum Spanning Tree (Boruvka, LonestarGPU-style; Table I benchmarks
    MSTF and MSTV).

    Boruvka rounds alternate between a GPU {e find} kernel — every vertex
    scans its edges and [atomicMin]s the lightest edge leaving its component
    into the component's slot — and component merging, which (as in the
    LonestarGPU code the paper builds on) is cheap pointer manipulation and
    runs on the host here. The paper evaluates the find kernel (MSTF) and
    the verify kernel (MSTV) as separate benchmarks; we do the same.

    Edge weights are packed with the edge index ([w * 2^20 + e]) so the
    per-component minimum is unique and every variant picks identical
    edges. *)

let child_block = 64
let inf_packed = 1 lsl 40

let find_body =
  {|
      int u = col[start + e];
      int cu = comp[u];
      if (cu != cv) {
        atomicMin(&best[cv], w[start + e] * 1048576 + start + e);
      }
|}

let find_cdp_src =
  Fmt.str
    {|
__global__ void mst_find_child(int* col, int* w, int* comp, int* best, int start, int deg, int cv) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < deg) {
%s
  }
}

__global__ void mst_find_parent(int* row, int* col, int* w, int* comp, int* best, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int start = row[v];
    int deg = row[v + 1] - start;
    int cv = comp[v];
    if (deg > 0) {
      mst_find_child<<<(deg + %d) / %d, %d>>>(col, w, comp, best, start, deg, cv);
    }
  }
}
|}
    find_body (child_block - 1) child_block child_block

let find_no_cdp_src =
  Fmt.str
    {|
__global__ void mst_find_parent(int* row, int* col, int* w, int* comp, int* best, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int start = row[v];
    int deg = row[v + 1] - start;
    int cv = comp[v];
    for (int e = 0; e < deg; e = e + 1) {
%s
    }
  }
}
|}
    find_body

let verify_body =
  {|
      int u = col[start + e];
      if (comp[u] != cv) {
        flags[start + e] = 1;
        atomicAdd(&n_cross[0], 1);
      } else {
        flags[start + e] = 0;
      }
|}

let verify_cdp_src =
  Fmt.str
    {|
__global__ void mst_verify_child(int* col, int* comp, int* flags, int* n_cross, int start, int deg, int cv) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < deg) {
%s
  }
}

__global__ void mst_verify_parent(int* row, int* col, int* comp, int* flags, int* n_cross, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int start = row[v];
    int deg = row[v + 1] - start;
    int cv = comp[v];
    if (deg > 0) {
      mst_verify_child<<<(deg + %d) / %d, %d>>>(col, comp, flags, n_cross, start, deg, cv);
    }
  }
}
|}
    verify_body (child_block - 1) child_block child_block

let verify_no_cdp_src =
  Fmt.str
    {|
__global__ void mst_verify_parent(int* row, int* col, int* comp, int* flags, int* n_cross, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int start = row[v];
    int deg = row[v + 1] - start;
    int cv = comp[v];
    for (int e = 0; e < deg; e = e + 1) {
%s
    }
  }
}
|}
    verify_body

(* ---------- host-side Boruvka machinery ---------- *)

let find_root comp v =
  let r = ref v in
  while comp.(!r) <> !r do
    r := comp.(!r)
  done;
  !r

(* Flatten all component pointers to roots. *)
let flatten comp =
  Array.iteri (fun v _ -> comp.(v) <- find_root comp v) comp

(* Merge components along each component's chosen minimum edge. Returns the
   weight added and whether any merge happened. *)
let merge_round (g : Workloads.Csr.t) comp best =
  let added = ref 0 and merged = ref false in
  Array.iteri
    (fun c packed ->
      if comp.(c) = c && packed < inf_packed then begin
        let e = packed mod 1048576 in
        let w = packed / 1048576 in
        (* the find kernel stored this for edges leaving c, so the source
           endpoint's component is c; the destination's is the other side *)
        let u = g.col.(e) in
        let ru = find_root comp u in
        let rc = find_root comp c in
        if ru <> rc then begin
          (* break symmetric-merge cycles deterministically: smaller root
             becomes parent *)
          if rc < ru then comp.(ru) <- rc else comp.(rc) <- ru;
          added := !added + w;
          merged := true
        end
      end)
    best;
  !added, !merged

(* Run Boruvka entirely on the host (the reference and the state generator
   for MSTV). Returns (total weight, final component array, rounds run). *)
let host_boruvka ?(max_rounds = max_int) (g : Workloads.Csr.t) =
  let comp = Array.init g.n Fun.id in
  let total = ref 0 in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    flatten comp;
    let best = Array.make g.n inf_packed in
    for v = 0 to g.n - 1 do
      let cv = comp.(v) in
      for e = g.row.(v) to g.row.(v + 1) - 1 do
        let cu = comp.(g.col.(e)) in
        if cu <> cv then
          best.(cv) <- min best.(cv) ((g.weight.(e) * 1048576) + e)
      done
    done;
    let added, merged = merge_round g comp best in
    total := !total + added;
    continue_ := merged
  done;
  flatten comp;
  (!total, comp, !rounds)

(* ---------- MSTF ---------- *)

let mstf_reference (g : Workloads.Csr.t) () =
  let total, comp, _ = host_boruvka g in
  total + Bench_common.array_hash comp

let mstf_run (g : Workloads.Csr.t) dev =
  let open Gpusim in
  let d_row, d_col, d_w = Bench_common.upload_graph dev g in
  let comp = Array.init g.n Fun.id in
  let d_comp = Device.alloc_int_zeros dev g.n in
  let d_best = Device.alloc_int_zeros dev g.n in
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    flatten comp;
    Device.write_ints dev d_comp comp;
    Device.write_ints dev d_best (Array.make g.n inf_packed);
    Device.launch dev ~kernel:"mst_find_parent"
      ~grid:((g.n + 127) / 128, 1, 1)
      ~block:(128, 1, 1)
      ~args:[ Ptr d_row; Ptr d_col; Ptr d_w; Ptr d_comp; Ptr d_best; Int g.n ];
    ignore (Device.sync dev);
    let best = Device.read_ints dev d_best g.n in
    let added, merged = merge_round g comp best in
    total := !total + added;
    continue_ := merged
  done;
  flatten comp;
  !total + Bench_common.array_hash comp

(* ---------- MSTV ---------- *)

(* MSTV verifies against the component state after two Boruvka rounds
   (mid-algorithm, where both intra- and inter-component edges exist). *)
let mstv_rounds = 2

let mstv_reference (g : Workloads.Csr.t) () =
  let _, comp, _ = host_boruvka ~max_rounds:mstv_rounds g in
  let flags = Array.make (Workloads.Csr.m g) 0 in
  let cross = ref 0 in
  for v = 0 to g.n - 1 do
    for e = g.row.(v) to g.row.(v + 1) - 1 do
      if comp.(g.col.(e)) <> comp.(v) then begin
        flags.(e) <- 1;
        incr cross
      end
    done
  done;
  !cross + Bench_common.array_hash flags

let mstv_run (g : Workloads.Csr.t) dev =
  let open Gpusim in
  let _, comp, _ = host_boruvka ~max_rounds:mstv_rounds g in
  let d_row, d_col, _ = Bench_common.upload_graph dev g in
  let d_comp = Device.alloc_ints dev comp in
  let d_flags = Device.alloc_int_zeros dev (Workloads.Csr.m g) in
  let d_cross = Device.alloc_int_zeros dev 1 in
  Device.launch dev ~kernel:"mst_verify_parent"
    ~grid:((g.n + 127) / 128, 1, 1)
    ~block:(128, 1, 1)
    ~args:[ Ptr d_row; Ptr d_col; Ptr d_comp; Ptr d_flags; Ptr d_cross; Int g.n ];
  ignore (Device.sync dev);
  let cross = (Device.read_ints dev d_cross 1).(0) in
  cross + Bench_common.array_hash (Device.read_ints dev d_flags (Workloads.Csr.m g))

let degrees (g : Workloads.Csr.t) =
  Array.init g.n (fun v -> g.row.(v + 1) - g.row.(v))

(* Workload profiles. Both find and verify launch over all n vertices with
   child size = out-degree; MSTF repeats that once per Boruvka round, MSTV
   runs the verify kernel once. *)
let mstf_workload (g : Workloads.Csr.t) : Bench_common.workload =
  let _, _, rounds = host_boruvka g in
  let per_round = degrees g in
  {
    wl_child_sizes = Array.concat (List.init rounds (fun _ -> per_round));
    wl_rounds = rounds;
    wl_parent_block = 128;
  }

let mstv_workload (g : Workloads.Csr.t) : Bench_common.workload =
  { wl_child_sizes = degrees g; wl_rounds = 1; wl_parent_block = 128 }

let mstf_spec ~(dataset : Workloads.Graph_gen.named) : Bench_common.spec =
  {
    name = "MSTF";
    dataset = dataset.name;
    cdp_src = find_cdp_src;
    no_cdp_src = find_no_cdp_src;
    parent_kernel = "mst_find_parent";
    max_child_threads = Workloads.Csr.max_degree dataset.graph;
    workload = mstf_workload dataset.graph;
    run = mstf_run dataset.graph;
    reference = mstf_reference dataset.graph;
    native_host = None;
  }

let mstv_spec ~(dataset : Workloads.Graph_gen.named) : Bench_common.spec =
  {
    name = "MSTV";
    dataset = dataset.name;
    cdp_src = verify_cdp_src;
    no_cdp_src = verify_no_cdp_src;
    parent_kernel = "mst_verify_parent";
    max_child_threads = Workloads.Csr.max_degree dataset.graph;
    workload = mstv_workload dataset.graph;
    run = mstv_run dataset.graph;
    reference = mstv_reference dataset.graph;
    native_host = None;
  }
