(** The benchmark × dataset matrix of Table I, at scaled-down sizes
    (MiniCU is interpreted; see DESIGN.md). *)

(** [Large] is paper-scale (RMAT scale 13, 100k+ Bezier lines): meant for
    sampled runs ([--sample]); exact large runs work but are slow. *)
type size = Small | Medium | Large

(** Datasets for a size, memoized:
    (KRON, CNR, ROAD, T0032-C16, T2048-C64, RAND-3, 5-SAT).
    The memo table is mutex-guarded, so this is safe to call from
    concurrent domains (e.g. [Harness.Pool] jobs); the returned datasets
    are immutable after construction and may be shared freely. *)
val datasets :
  size ->
  Workloads.Graph_gen.named
  * Workloads.Graph_gen.named
  * Workloads.Graph_gen.named
  * Workloads.Bezier.t
  * Workloads.Bezier.t
  * Workloads.Sat.t
  * Workloads.Sat.t

(** All 14 (benchmark, dataset) pairs of Fig. 9 / Table I. *)
val all : ?size:size -> unit -> Bench_common.spec list

(** The graph benchmarks on the road network (Fig. 12). *)
val road : ?size:size -> unit -> Bench_common.spec list

val find :
  ?size:size -> name:string -> dataset:string -> unit ->
  Bench_common.spec option
