(** Breadth-First Search (SHOC-style frontier BFS, Table I).

    Each iteration expands the current frontier: a parent thread takes one
    frontier vertex and visits its neighbors, labelling unvisited ones with
    the current level and appending them to the next frontier. The
    per-vertex neighbor loop is the nested parallelism: in the CDP version
    the parent launches a child grid with one thread per neighbor. *)

let child_block = 64

let cdp_src =
  Fmt.str
    {|
__global__ void bfs_child(int* col, int* labels, int* next_frontier, int* next_count, int start, int deg, int level) {
  int e = blockIdx.x * blockDim.x + threadIdx.x;
  if (e < deg) {
    int u = col[start + e];
    if (atomicCAS(&labels[u], -1, level) == -1) {
      int idx = atomicAdd(&next_count[0], 1);
      next_frontier[idx] = u;
    }
  }
}

__global__ void bfs_parent(int* row, int* col, int* labels, int* frontier, int n_frontier, int* next_frontier, int* next_count, int level) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n_frontier) {
    int v = frontier[i];
    int start = row[v];
    int deg = row[v + 1] - start;
    if (deg > 0) {
      bfs_child<<<(deg + %d) / %d, %d>>>(col, labels, next_frontier, next_count, start, deg, level);
    }
  }
}
|}
    (child_block - 1) child_block child_block

let no_cdp_src =
  {|
__global__ void bfs_parent(int* row, int* col, int* labels, int* frontier, int n_frontier, int* next_frontier, int* next_count, int level) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n_frontier) {
    int v = frontier[i];
    int start = row[v];
    int deg = row[v + 1] - start;
    for (int e = 0; e < deg; e = e + 1) {
      int u = col[start + e];
      if (atomicCAS(&labels[u], -1, level) == -1) {
        int idx = atomicAdd(&next_count[0], 1);
        next_frontier[idx] = u;
      }
    }
  }
}
|}

let source_vertex = 0

(** Pure-OCaml reference: BFS levels from [source_vertex]. *)
let reference (g : Workloads.Csr.t) () =
  let labels = Array.make g.n (-1) in
  labels.(source_vertex) <- 0;
  let q = Queue.create () in
  Queue.add source_vertex q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    for e = g.row.(v) to g.row.(v + 1) - 1 do
      let u = g.col.(e) in
      if labels.(u) = -1 then begin
        labels.(u) <- labels.(v) + 1;
        Queue.add u q
      end
    done
  done;
  Bench_common.array_hash labels

let run (g : Workloads.Csr.t) dev =
  let open Gpusim in
  let d_row, d_col, _ = Bench_common.upload_graph dev g in
  let labels = Array.make g.n (-1) in
  labels.(source_vertex) <- 0;
  let d_labels = Device.alloc_ints dev labels in
  let d_frontier = Device.alloc_int_zeros dev g.n in
  let d_next = Device.alloc_int_zeros dev g.n in
  let d_next_count = Device.alloc_int_zeros dev 1 in
  Device.write_ints dev d_frontier [| source_vertex |];
  let frontier = ref d_frontier and next = ref d_next in
  let n_frontier = ref 1 in
  let level = ref 1 in
  while !n_frontier > 0 do
    Device.write_ints dev d_next_count [| 0 |];
    let blocks = ((!n_frontier + 127) / 128, 1, 1) in
    Device.launch dev ~kernel:"bfs_parent" ~grid:blocks ~block:(128, 1, 1)
      ~args:
        [
          Ptr d_row;
          Ptr d_col;
          Ptr d_labels;
          Ptr !frontier;
          Int !n_frontier;
          Ptr !next;
          Ptr d_next_count;
          Int !level;
        ];
    ignore (Device.sync dev);
    n_frontier := (Device.read_ints dev d_next_count 1).(0);
    let tmp = !frontier in
    frontier := !next;
    next := tmp;
    incr level
  done;
  Bench_common.array_hash (Device.read_ints dev d_labels g.n)

(* Workload profile: replay the reference BFS level by level. Each level
   is one host launch of [bfs_parent]; each frontier vertex is one parent
   work item whose child size is its out-degree. *)
let workload (g : Workloads.Csr.t) : Bench_common.workload =
  let labels = Array.make g.n (-1) in
  labels.(source_vertex) <- 0;
  let sizes = ref [] in
  let rounds = ref 0 in
  let frontier = ref [ source_vertex ] in
  while !frontier <> [] do
    incr rounds;
    let next = ref [] in
    List.iter
      (fun v ->
        sizes := (g.row.(v + 1) - g.row.(v)) :: !sizes;
        for e = g.row.(v) to g.row.(v + 1) - 1 do
          let u = g.col.(e) in
          if labels.(u) = -1 then begin
            labels.(u) <- labels.(v) + 1;
            next := u :: !next
          end
        done)
      !frontier;
    frontier := List.rev !next
  done;
  {
    wl_child_sizes = Array.of_list (List.rev !sizes);
    wl_rounds = !rounds;
    wl_parent_block = 128;
  }

let spec ~(dataset : Workloads.Graph_gen.named) : Bench_common.spec =
  {
    name = "BFS";
    dataset = dataset.name;
    cdp_src;
    no_cdp_src;
    parent_kernel = "bfs_parent";
    max_child_threads = Workloads.Csr.max_degree dataset.graph;
    workload = workload dataset.graph;
    run = run dataset.graph;
    reference = reference dataset.graph;
    native_host = None;
  }
