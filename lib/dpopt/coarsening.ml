(** The coarsening transformation in the context of dynamic parallelism
    (paper Section IV, Fig. 6).

    The child kernel gains a trailing [dim3 _gDim] parameter carrying the
    original (uncoarsened) grid dimension and a grid-stride coarsening loop:

    {v
    __global__ void child(params, dim3 _gDim) {
      for (int _bx = blockIdx.x; _bx < _gDim.x; _bx += gridDim.x) {
        ...child body with blockIdx.x -> _bx, gridDim -> _gDim...
      }
    }
    v}

    and every launch site is rewritten to divide the x grid dimension by the
    coarsening factor:

    {v
    dim3 _gDim = gDim;
    dim3 _cgDim = _gDim;
    _cgDim.x = (_gDim.x + CFACTOR - 1) / CFACTOR;
    child<<<_cgDim, bDim>>>(args, _gDim);
    v}

    As in thresholding, the per-block body is extracted into a device
    function so that [return] statements in the child body terminate one
    original block's work rather than the whole coarsened block. Coarsening
    is applied to the x dimension (the paper's example; its evaluation
    kernels are 1-D). *)

open Minicu
open Minicu.Ast

type options = {
  cfactor : int;  (** The [_CFACTOR] tuning knob of Fig. 6. *)
}

type site_report = {
  sr_parent : string;
  sr_child : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = { prog : program; reports : site_report list }

let log = Logs.Src.create "dpopt.coarsening" ~doc:"coarsening pass"

module Log = (val Logs.src_log log)

(* Coarsen the child kernel: extract its body and wrap the coarsening loop.
   Returns (replacement child, extracted body function, gdim param name). *)
let coarsen_child (child : func) ~taken =
  let fresh base = Ast_util.fresh_name ~base taken in
  let body_name = fresh (child.f_name ^ "_block_body") in
  let g = fresh "_gDim" in
  let bi = fresh "_bIdx" in
  let subst = [ ("gridDim", Var g); ("blockIdx", Var bi) ] in
  let body_fn =
    {
      f_name = body_name;
      f_kind = Device;
      f_ret = TVoid;
      f_params =
        child.f_params
        @ [ { p_ty = TDim3; p_name = g }; { p_ty = TDim3; p_name = bi } ];
      f_body = Ast_util.subst_var_stmts subst child.f_body;
      f_host_followup = None;
    }
  in
  let bx = fresh "_bx" in
  let coarsening_loop =
    stmt
      (For
         ( Some (stmt (Decl (TInt, bx, Some (Member (Var "blockIdx", "x"))))),
           Some (Binop (Lt, Var bx, Member (Var g, "x"))),
           Some
             (stmt
                (Assign
                   ( Var bx,
                     Binop (Add, Var bx, Member (Var "gridDim", "x")) ))),
           [
             stmt
               (Expr_stmt
                  (Call
                     ( body_name,
                       List.map (fun p -> Var p.p_name) child.f_params
                       @ [
                           Var g;
                           Dim3_ctor
                             ( Var bx,
                               Member (Var "blockIdx", "y"),
                               Member (Var "blockIdx", "z") );
                         ] )));
           ] ))
  in
  let child' =
    {
      child with
      f_params = child.f_params @ [ { p_ty = TDim3; p_name = g } ];
      f_body = [ coarsening_loop ];
    }
  in
  (child', body_fn)

(** [transform ?opts prog] coarsens every dynamically-launched child kernel
    and rewrites all of its launch sites. *)
let transform ?(opts = { cfactor = 8 }) (prog : program) : result =
  let taken = ref (List.concat_map Ast_util.all_names prog) in
  let reports = ref [] in
  (* pass 1: find children that are launched anywhere *)
  let launched =
    List.concat_map
      (fun (f : func) ->
        List.map (fun (l : launch) -> l.l_kernel) (Ast_util.launches_of f.f_body))
      prog
    |> List.sort_uniq compare
  in
  (* pass 2: coarsen each launched child *)
  let coarsened = Hashtbl.create 4 in
  let prog =
    List.concat_map
      (fun (f : func) ->
        if List.mem f.f_name launched && f.f_kind = Global then begin
          match Eligibility.coarsening_child prog f with
          | Ineligible reason ->
              Log.info (fun m -> m "skipping child %s: %s" f.f_name reason);
              [ f ]
          | Eligible ->
              let child', body_fn = coarsen_child f ~taken:!taken in
              taken := Ast_util.all_names body_fn @ !taken;
              Hashtbl.add coarsened f.f_name ();
              [ body_fn; child' ]
        end
        else [ f ])
      prog
  in
  (* pass 3: rewrite launch sites of coarsened children *)
  let site = ref 0 in
  let transform_func (f : func) : func =
    let body =
      Ast_util.map_stmts
        ~stmt:(fun s ->
          match s.sdesc with
          | Launch l when Hashtbl.mem coarsened l.l_kernel ->
              incr site;
              reports :=
                {
                  sr_parent = f.f_name;
                  sr_child = l.l_kernel;
                  sr_transformed = true;
                  sr_reason = Fmt.str "coarsening factor %d" opts.cfactor;
                }
                :: !reports;
              let fresh base =
                let n =
                  Ast_util.fresh_name
                    ~base:(if !site = 1 then base else Fmt.str "%s_%d" base !site)
                    !taken
                in
                taken := n :: !taken;
                n
              in
              let g = fresh "_gDim" and cg = fresh "_cgDim" in
              [
                stmt (Decl (TDim3, g, Some l.l_grid));
                stmt (Decl (TDim3, cg, Some (Var g)));
                stmt
                  (Assign
                     ( Member (Var cg, "x"),
                       Binop
                         ( Div,
                           Binop
                             ( Add,
                               Member (Var g, "x"),
                               Int_lit (opts.cfactor - 1) ),
                           Int_lit opts.cfactor ) ));
                {
                  s with
                  sdesc =
                    Launch
                      {
                        l with
                        l_grid = Var cg;
                        l_args = l.l_args @ [ Var g ];
                      };
                };
              ]
          | _ -> [ s ])
        f.f_body
    in
    { f with f_body = body }
  in
  let prog = List.map transform_func prog in
  { prog; reports = List.rev !reports }
