(** Eligibility analysis: which kernels and launch sites each optimization
    can legally transform (paper Section III-C plus the structural
    requirements of the aggregation codegen). *)

type verdict = Eligible | Ineligible of string

val pp_verdict : Format.formatter -> verdict -> unit

(** Can the child's threads be serialized in the parent? Rejects barrier
    synchronization (block or warp scope, including warp collectives) and
    shared memory, transitively through called device functions
    (Section III-C). *)
val thresholding_child : Minicu.Ast.program -> Minicu.Ast.func -> verdict

(** Every MiniCU kernel's body can be extracted and coarsened. *)
val coarsening_child : Minicu.Ast.program -> Minicu.Ast.func -> verdict

(** Can the launch of [child] inside [parent] be aggregated? The generated
    epilogue needs a block-uniform join point every thread reaches exactly
    once, so launches inside loops, parents with early returns, and parents
    whose existing barriers are divergent (per {!Minicu.Divergence}, which
    needs [prog] to resolve device calls; defaults to the empty program)
    are rejected. Recursive nesting — the child launching [parent] back,
    including the self-recursive [parent = child] case — is rejected too:
    the aggregated clone of the child's body would launch the
    buffer-extended parent with the original argument list. *)
val aggregation_site :
  ?prog:Minicu.Ast.program -> Minicu.Ast.func -> child:string -> verdict

(** Is the (any) launch of [kernel] nested inside a loop in [body]? *)
val launch_in_loop : kernel:string -> Minicu.Ast.stmt list -> bool
