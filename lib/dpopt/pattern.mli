(** Ceiling-division pattern analysis (paper Section III-D, Fig. 4).

    Recovers the {e desired number of child threads} [N] from a launch's
    grid-dimension expression, which programmers typically compute as a
    ceiling-division of [N] by the block dimension:

    {v
    (a) (N-1)/b + 1        (d) ceil((float)N/b)
    (b) (N+b-1)/b          (e) ceil(N/(float)b)
    (c) N/b + ((N%b==0)?0:1)   (f) dim3(...) of the above
    v}

    Intermediate variables with a unique local definition are resolved
    before matching. The heuristic takes the dividend and strips
    additions/subtractions of constants (integer literals and the
    block-dimension expression). A wrong guess only mis-tunes the
    serialize-vs-launch decision; it never affects correctness. *)

type result =
  | Exact of Minicu.Ast.expr
      (** The recovered [N] (for multi-dimensional grids, the product of
          per-dimension counts). Valid in the scope of the launch site. *)
  | Fallback_total
      (** No pattern found; callers fall back to grid × block. *)

val desired_threads :
  parent_body:Minicu.Ast.stmt list ->
  grid:Minicu.Ast.expr ->
  block:Minicu.Ast.expr ->
  result

(** Like {!desired_threads} but always produces an expression, using
    grid × block as the fallback; reports which case applied. *)
val threads_expr :
  parent_body:Minicu.Ast.stmt list ->
  grid:Minicu.Ast.expr ->
  block:Minicu.Ast.expr ->
  Minicu.Ast.expr * [ `Exact | `Fallback ]
