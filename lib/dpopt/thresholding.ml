(** The thresholding transformation (paper Section III, Fig. 3).

    Each dynamic launch [child<<<gDim, bDim>>>(args)] becomes

    {v
    int _threads = N;              // recovered by Pattern (Section III-D)
    if (_threads >= THRESHOLD) {
      child<<<gDim', bDim>>>(args);   // gDim' reuses _threads
    } else {
      child_serial(args, gDim', bDim);  // serialize in the parent thread
    }
    v}

    The serial version is constructed once per child kernel as a pair of
    device functions:

    - [<child>_serial_thread(params, _gDim, _bDim, _bIdx, _tIdx)] — the
      child body with the reserved index/dimension variables substituted by
      parameters. Extracting the per-thread body into its own function (a
      small departure from the paper's Fig. 3, which inlines it under the
      loops) makes [return] statements in the child body behave correctly
      without a goto-elimination pass.
    - [<child>_serial(params, _gDim, _bDim)] — six nested loops (three
      grid dimensions, three block dimensions) invoking the thread body, as
      in Fig. 3 lines 09-15.

    Child kernels that synchronize or use shared memory are not transformed
    (Section III-C); see {!Eligibility.thresholding_child}. *)

open Minicu
open Minicu.Ast

type options = {
  threshold : int;  (** The [_THRESHOLD] tuning knob of Fig. 3. *)
}

type site_report = {
  sr_parent : string;
  sr_child : string;
  sr_transformed : bool;
  sr_reason : string;  (** Why the site was skipped, or the pattern used. *)
}

type result = { prog : program; reports : site_report list }

let log = Logs.Src.create "dpopt.thresholding" ~doc:"thresholding pass"

module Log = (val Logs.src_log log)

(* Replace the first syntactic occurrence of [needle] in [e] by [repl]. *)
let replace_first ~needle ~repl e =
  let replaced = ref false in
  let e' =
    Ast_util.map_expr
      (fun sub ->
        if (not !replaced) && equal_expr sub needle then begin
          replaced := true;
          repl
        end
        else sub)
      e
  in
  (e', !replaced)

(* Build the serial pair for [child]; returns the two new functions and the
   name of the entry point. *)
let build_serial (child : func) ~taken =
  let fresh base = Ast_util.fresh_name ~base taken in
  let thread_name = fresh (child.f_name ^ "_serial_thread") in
  let entry_name = fresh (child.f_name ^ "_serial") in
  let g = fresh "_gDim"
  and b = fresh "_bDim"
  and bi = fresh "_bIdx"
  and ti = fresh "_tIdx" in
  let subst =
    [
      ("gridDim", Var g);
      ("blockDim", Var b);
      ("blockIdx", Var bi);
      ("threadIdx", Var ti);
    ]
  in
  let thread_body = Ast_util.subst_var_stmts subst child.f_body in
  let thread_fn =
    {
      f_name = thread_name;
      f_kind = Device;
      f_ret = TVoid;
      f_params =
        child.f_params
        @ [
            { p_ty = TDim3; p_name = g };
            { p_ty = TDim3; p_name = b };
            { p_ty = TDim3; p_name = bi };
            { p_ty = TDim3; p_name = ti };
          ];
      f_body = thread_body;
      f_host_followup = None;
    }
  in
  (* the six serialization loops of Fig. 3 (lines 10-11, generalized to 3D) *)
  let loop v bound body =
    stmt
      (For
         ( Some (stmt (Decl (TInt, v, Some (Int_lit 0)))),
           Some (Binop (Lt, Var v, bound)),
           Some (stmt (Assign (Var v, Binop (Add, Var v, Int_lit 1)))),
           body ))
  in
  let bx = fresh "_bx"
  and by = fresh "_by"
  and bz = fresh "_bz"
  and tx = fresh "_tx"
  and ty = fresh "_ty"
  and tz = fresh "_tz" in
  let call =
    stmt
      (Expr_stmt
         (Call
            ( thread_name,
              List.map (fun p -> Var p.p_name) child.f_params
              @ [
                  Var g;
                  Var b;
                  Dim3_ctor (Var bx, Var by, Var bz);
                  Dim3_ctor (Var tx, Var ty, Var tz);
                ] )))
  in
  let body =
    [
      loop bz (Member (Var g, "z"))
        [
          loop by (Member (Var g, "y"))
            [
              loop bx (Member (Var g, "x"))
                [
                  loop tz (Member (Var b, "z"))
                    [
                      loop ty (Member (Var b, "y"))
                        [ loop tx (Member (Var b, "x")) [ call ] ];
                    ];
                ];
            ];
        ];
    ]
  in
  let entry_fn =
    {
      f_name = entry_name;
      f_kind = Device;
      f_ret = TVoid;
      f_params =
        child.f_params
        @ [ { p_ty = TDim3; p_name = g }; { p_ty = TDim3; p_name = b } ];
      f_body = body;
      f_host_followup = None;
    }
  in
  (thread_fn, entry_fn, entry_name)

(** [transform ?opts prog] applies thresholding to every launch site whose
    child kernel is eligible. Idempotent on programs without launches. *)
let transform ?(opts = { threshold = 32 }) (prog : program) : result =
  let taken = ref (List.concat_map Ast_util.all_names prog) in
  let reports = ref [] in
  let report parent child transformed reason =
    reports :=
      {
        sr_parent = parent;
        sr_child = child;
        sr_transformed = transformed;
        sr_reason = reason;
      }
      :: !reports
  in
  (* serial versions already built in this run: child name -> entry name *)
  let serials = Hashtbl.create 4 in
  let new_funcs = ref [] in
  let transform_func (f : func) : func =
    if f.f_kind <> Global then f
    else
      let site_counter = ref 0 in
      let body =
        Ast_util.map_stmts
          ~stmt:(fun s ->
            match s.sdesc with
            | Launch l -> (
                incr site_counter;
                match find_func prog l.l_kernel with
                | None -> [ s ]
                | Some child -> (
                    match Eligibility.thresholding_child prog child with
                    | Ineligible reason ->
                        Log.info (fun m ->
                            m "skipping %s -> %s: %s" f.f_name child.f_name
                              reason);
                        report f.f_name child.f_name false reason;
                        [ s ]
                    | Eligible ->
                        let serial_name =
                          match Hashtbl.find_opt serials child.f_name with
                          | Some n -> n
                          | None ->
                              let tfn, efn, name =
                                build_serial child ~taken:!taken
                              in
                              taken :=
                                (name :: tfn.f_name :: !taken)
                                @ Ast_util.all_names tfn;
                              Hashtbl.add serials child.f_name name;
                              new_funcs :=
                                (child.f_name, [ tfn; efn ]) :: !new_funcs;
                              name
                        in
                        let n_expr, kind =
                          Pattern.threads_expr ~parent_body:f.f_body
                            ~grid:l.l_grid ~block:l.l_block
                        in
                        report f.f_name child.f_name true
                          (match kind with
                          | `Exact -> "ceiling-division pattern recovered"
                          | `Fallback -> "fallback: grid*block total");
                        let tvar =
                          Ast_util.fresh_name
                            ~base:
                              (if !site_counter = 1 then "_threads"
                               else Fmt.str "_threads_%d" !site_counter)
                            !taken
                        in
                        taken := tvar :: !taken;
                        (* replace the occurrence of N inside gDim so a
                           side-effecting expression is not duplicated
                           (Section III-D, last paragraph) *)
                        let grid', _found =
                          replace_first ~needle:n_expr ~repl:(Var tvar)
                            l.l_grid
                        in
                        let serial_call =
                          stmt
                            (Expr_stmt
                               (Call
                                  ( serial_name,
                                    l.l_args @ [ grid'; l.l_block ] )))
                        in
                        [
                          stmt (Decl (TInt, tvar, Some n_expr));
                          stmt
                            (If
                               ( Binop (Ge, Var tvar, Int_lit opts.threshold),
                                 [ { s with sdesc = Launch { l with l_grid = grid' } } ],
                                 [ serial_call ] ));
                        ]))
            | _ -> [ s ])
          f.f_body
      in
      { f with f_body = body }
  in
  let prog' = List.map transform_func prog in
  (* insert the generated serial functions right after their child kernel *)
  let prog' =
    List.fold_left
      (fun acc (anchor, fns) ->
        List.fold_left
          (fun acc fn -> Ast.add_func_after acc ~anchor fn)
          acc (List.rev fns))
      prog' !new_funcs
  in
  { prog = prog'; reports = List.rev !reports }
