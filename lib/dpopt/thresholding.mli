(** The thresholding transformation (paper Section III, Fig. 3): launch a
    child grid only when the desired child-thread count reaches a
    threshold; otherwise call a generated serial version of the child in
    the parent thread.

    The serial version is a pair of device functions —
    [<child>_serial_thread] (the child body with reserved variables
    substituted by parameters) and [<child>_serial] (the Fig. 3
    serialization loops over grid and block dimensions). Extracting the
    per-thread body keeps [return] statements correct without a
    goto-elimination pass. *)

type options = { threshold : int  (** The [_THRESHOLD] knob of Fig. 3. *) }

type site_report = {
  sr_parent : string;
  sr_child : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = { prog : Minicu.Ast.program; reports : site_report list }

(** [transform ?opts prog] rewrites every launch site whose child is
    eligible (see {!Eligibility.thresholding_child}); ineligible sites are
    reported and left unchanged. The default threshold is 32. *)
val transform : ?opts:options -> Minicu.Ast.program -> result
