(** The aggregation transformation (paper Section V, Fig. 7), at four
    granularities: warp, block, multi-block (the paper's new contribution),
    and grid.

    For a launch site [child<<<g, b>>>(args)] in a parent kernel, the pass:

    - creates an {e aggregated child kernel} [child_agg] whose blocks find
      their original parent by binary search in a scanned grid-dimension
      array, then load that parent's arguments and configuration
      (the disaggregation logic, Fig. 7 lines 01-11);
    - replaces the launch with {e capture} code that assigns the parent
      thread an index and records its arguments and configuration in a
      pre-allocated buffer (Fig. 7 lines 14-24);
    - inserts an {e epilogue} at the parent's block-uniform join point that
      elects one launcher for the whole group and performs the single
      aggregated launch (Fig. 7 lines 26-35).

    Granularity differences:

    - {b warp}: capture saves per-thread locals; the epilogue uses warp
      collectives (scan/sum/max) to build the scanned array and elects the
      first participating lane. Optional aggregation threshold (Section
      V-B): if fewer than [T] lanes participate, each launches directly.
    - {b block}: counters live in shared memory; [__syncthreads] is the
      group barrier; thread 0 launches. Optional aggregation threshold.
    - {b multi-block} (new in the paper): counters live in global memory,
      indexed by block group; the scan is built with adjacent atomic adds
      (standing in for the paper's single 64-bit packed atomic); a
      [__threadfence] publishes the capture before a group-wide
      finished-blocks counter elects the last block to launch.
    - {b grid}: capture is global as in multi-block, but the aggregated
      launch is performed from the host after the parent grid drains
      (MiniCU host-followup), matching the paper's observation that grid
      granularity needs CPU involvement.

    The generated buffers are appended to the parent's parameter list and
    allocated by the runtime at launch ({!auto_param}), so host drivers keep
    launching the parent with its original arguments.

    Restriction: aggregation flattens the x dimension only (all the paper's
    evaluation kernels are 1-D). *)

open Minicu
open Minicu.Ast

type granularity = Warp | Block | Multi_block of int | Grid

let pp_granularity ppf = function
  | Warp -> Fmt.string ppf "warp"
  | Block -> Fmt.string ppf "block"
  | Multi_block g -> Fmt.pf ppf "multi-block(%d)" g
  | Grid -> Fmt.string ppf "grid"

type options = {
  granularity : granularity;
  agg_threshold : int option;
      (** Section V-B: minimum number of participating parents for the
          aggregated launch to be worthwhile; below it, parents launch
          directly. Only meaningful at warp and block granularity, where the
          participant count is available before launching. *)
}

let default_options = { granularity = Block; agg_threshold = None }

(** Runtime-allocated trailing parameter of a transformed parent kernel.
    [ap_elems] computes the element count from the actual launch
    configuration. *)
type auto_param = {
  ap_name : string;
  ap_elems : grid_blocks:int -> block_threads:int -> int;
}

type site_report = {
  sr_parent : string;
  sr_child : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = {
  prog : program;
  auto_params : (string * auto_param list) list;
      (** Parent kernel name -> trailing parameters, in signature order. *)
  reports : site_report list;
}

let log = Logs.Src.create "dpopt.aggregation" ~doc:"aggregation pass"

module Log = (val Logs.src_log log)

(* ---------- small AST builders ---------- *)

let t_agg s = retag_deep Tag_agg s
let decl ty x e = stmt (Decl (ty, x, Some e))
let decl_int x e = decl TInt x e
let assign lv e = stmt (Assign (lv, e))
let sif c a b = stmt (If (c, a, b))
let expr_s e = stmt (Expr_stmt e)
let ( @: ) p i = Index (Var p, i)
let addr e = Addr_of e
let i0 = Int_lit 0
let i1 = Int_lit 1
let tid_x = Member (Var "threadIdx", "x")
let bid_x = Member (Var "blockIdx", "x")
let bdim_x = Member (Var "blockDim", "x")
let gdim_x = Member (Var "gridDim", "x")

(* ---------- disaggregation: the aggregated child kernel ---------- *)

(** Build [child_agg] from [child] (Fig. 7 lines 01-11). *)
let build_agg_child (child : func) ~taken =
  let fresh base = Ast_util.fresh_name ~base taken in
  let agg_name = fresh (child.f_name ^ "_agg") in
  let arr_params =
    List.map
      (fun p -> { p_ty = TPtr p.p_ty; p_name = "_arr_" ^ p.p_name })
      child.f_params
  in
  let scan = "_gDimScanned" and bdim_arr = "_bDimArr" and npar = "_numParents" in
  let lo = "_lo" and hi = "_hi" and mid = "_mid" in
  let pidx = "_parentIdx" and prev = "_prevScan" in
  let my_gdim = "_myGDim" and my_bx = "_myBx" and my_bdim = "_myBDim" in
  (* binary search for the first index whose inclusive scan exceeds our
     block id (Fig. 7 line 02) *)
  let search =
    [
      decl_int lo i0;
      decl_int hi (Binop (Sub, Var npar, i1));
      stmt
        (While
           ( Binop (Lt, Var lo, Var hi),
             [
               decl_int mid (Binop (Div, Binop (Add, Var lo, Var hi), Int_lit 2));
               sif
                 (Binop (Gt, scan @: Var mid, bid_x))
                 [ assign (Var hi) (Var mid) ]
                 [ assign (Var lo) (Binop (Add, Var mid, i1)) ];
             ] ));
      decl_int pidx (Var lo);
      decl_int prev
        (Ternary
           ( Binop (Eq, Var pidx, i0),
             i0,
             scan @: Binop (Sub, Var pidx, i1) ));
      decl_int my_gdim (Binop (Sub, scan @: Var pidx, Var prev));
      decl_int my_bx (Binop (Sub, bid_x, Var prev));
      decl_int my_bdim (bdim_arr @: Var pidx);
    ]
  in
  (* reload the original arguments under their original names so the child
     body runs unchanged (Fig. 7 lines 03-06) *)
  let reload =
    List.map
      (fun p -> decl p.p_ty p.p_name (("_arr_" ^ p.p_name) @: Var pidx))
      child.f_params
  in
  let subst =
    [
      ("blockIdx", Dim3_ctor (Var my_bx, i0, i0));
      ("gridDim", Dim3_ctor (Var my_gdim, i1, i1));
      ("blockDim", Dim3_ctor (Var my_bdim, i1, i1));
    ]
  in
  let body = Ast_util.subst_var_stmts subst child.f_body in
  (* extra threads (the aggregated block is as wide as the widest child
     block) are masked off, Fig. 7 line 07 *)
  let guarded = sif (Binop (Lt, tid_x, Var my_bdim)) body [] in
  let agg =
    {
      f_name = agg_name;
      f_kind = Global;
      f_ret = TVoid;
      f_params =
        arr_params
        @ [
            { p_ty = TPtr TInt; p_name = scan };
            { p_ty = TPtr TInt; p_name = bdim_arr };
            { p_ty = TInt; p_name = npar };
          ];
      f_body =
        List.map (retag_deep Tag_disagg) (search @ reload)
        @ [ { guarded with stag = Tag_disagg } ];
      f_host_followup = None;
    }
  in
  (agg, agg_name)

(* ---------- capture + epilogue codegen ---------- *)

(* Everything generated for one launch site. *)
type site_code = {
  sc_top_decls : stmt list;  (** Prepended to the parent body. *)
  sc_capture : stmt list;  (** Replaces the launch statement. *)
  sc_tail : stmt list;  (** Inserted at the block-uniform join point. *)
  sc_params : param list;  (** Appended to the parent signature. *)
  sc_auto : auto_param list;  (** Allocation specs, same order. *)
  sc_followup : stmt list;  (** Host followup (grid granularity only). *)
}

let warps_per_block ~block_threads = (block_threads + 31) / 32

(* name mangling for site [k] *)
let mangle k base = Fmt.str "_agg%d%s" k base

let buffer_params k (child : func) ~with_counters ~with_nfin =
  let m = mangle k in
  let arrs =
    List.map
      (fun p -> { p_ty = TPtr p.p_ty; p_name = m ("_a_" ^ p.p_name) })
      child.f_params
  in
  let base =
    arrs
    @ [
        { p_ty = TPtr TInt; p_name = m "_scan" };
        { p_ty = TPtr TInt; p_name = m "_bdim" };
      ]
  in
  let counters =
    if with_counters then
      [
        { p_ty = TPtr TInt; p_name = m "_nPar" };
        { p_ty = TPtr TInt; p_name = m "_sumG" };
        { p_ty = TPtr TInt; p_name = m "_maxB" };
      ]
    else []
  in
  let nfin =
    if with_nfin then [ { p_ty = TPtr TInt; p_name = m "_nFin" } ] else []
  in
  base @ counters @ nfin

(* Allocation specs matching [buffer_params]. [groups]/[cap] compute the
   group count and per-group parent capacity from the launch config. *)
let buffer_auto k (child : func) ~with_counters ~with_nfin ~groups ~cap =
  let m = mangle k in
  let seg ~grid_blocks ~block_threads =
    groups ~grid_blocks ~block_threads * cap ~grid_blocks ~block_threads
  in
  let arrs =
    List.map
      (fun (p : param) -> { ap_name = m ("_a_" ^ p.p_name); ap_elems = seg })
      child.f_params
  in
  let base =
    arrs
    @ [
        { ap_name = m "_scan"; ap_elems = seg };
        { ap_name = m "_bdim"; ap_elems = seg };
      ]
  in
  let counters =
    if with_counters then
      List.map
        (fun n -> { ap_name = m n; ap_elems = (fun ~grid_blocks ~block_threads -> groups ~grid_blocks ~block_threads) })
        [ "_nPar"; "_sumG"; "_maxB" ]
    else []
  in
  let nfin =
    if with_nfin then
      [ { ap_name = m "_nFin"; ap_elems = (fun ~grid_blocks ~block_threads -> groups ~grid_blocks ~block_threads) } ]
    else []
  in
  base @ counters @ nfin

(* Store one parent's arguments and scanned configuration at
   [base + pidx] (Fig. 7 lines 21-23). [args] are the launch's actual
   argument expressions. *)
let capture_stores k (child : func) ~base_e ~pidx_e ~prev_e ~gdx_e ~bdx_e
    ~(args : expr list) =
  let m = mangle k in
  List.map2
    (fun (p : param) arg ->
      assign (Index (Var (m ("_a_" ^ p.p_name)), Binop (Add, base_e, pidx_e))) arg)
    child.f_params args
  @ [
      assign
        (Index (Var (m "_scan"), Binop (Add, base_e, pidx_e)))
        (Binop (Add, prev_e, gdx_e));
      assign (Index (Var (m "_bdim"), Binop (Add, base_e, pidx_e))) bdx_e;
    ]

(* The aggregated launch expression for a group segment starting at
   [seg_e] with [total]/[maxb]/[count]. *)
let agg_launch k (child : func) ~agg_name ~seg_e ~total_e ~maxb_e ~count_e =
  let m = mangle k in
  let arr_args =
    List.map
      (fun (p : param) -> Binop (Add, Var (m ("_a_" ^ p.p_name)), seg_e))
      child.f_params
  in
  stmt
    (Launch
       {
         l_kernel = agg_name;
         l_grid = total_e;
         l_block = maxb_e;
         l_args =
           arr_args
           @ [
               Binop (Add, Var (m "_scan"), seg_e);
               Binop (Add, Var (m "_bdim"), seg_e);
               count_e;
             ];
       })

(* fresh names local to a site *)
let site_fresh k taken base =
  let n = Ast_util.fresh_name ~base:(mangle k base) !taken in
  taken := n :: !taken;
  n

(* ---- grid granularity ---- *)

let gen_grid k (child : func) ~agg_name ~(l : launch) ~taken =
  let m = mangle k in
  let f = site_fresh k taken in
  let gd = f "_gd" and bd = f "_bd" in
  let gdx = f "_gdx" and bdx = f "_bdx" in
  let pidx = f "_pidx" and prev = f "_prev" in
  let capture =
    [
      decl TDim3 gd l.l_grid;
      decl TDim3 bd l.l_block;
      decl_int gdx (Member (Var gd, "x"));
      decl_int bdx (Member (Var bd, "x"));
      decl_int pidx (Call ("atomicAdd", [ addr (m "_nPar" @: i0); i1 ]));
      decl_int prev (Call ("atomicAdd", [ addr (m "_sumG" @: i0); Var gdx ]));
    ]
    @ capture_stores k child ~base_e:i0 ~pidx_e:(Var pidx) ~prev_e:(Var prev)
        ~gdx_e:(Var gdx) ~bdx_e:(Var bdx) ~args:l.l_args
    @ [ expr_s (Call ("atomicMax", [ addr (m "_maxB" @: i0); Var bdx ])) ]
  in
  let followup =
    [
      sif
        (Binop (Gt, m "_nPar" @: i0, i0))
        [
          agg_launch k child ~agg_name ~seg_e:i0 ~total_e:(m "_sumG" @: i0)
            ~maxb_e:(m "_maxB" @: i0) ~count_e:(m "_nPar" @: i0);
        ]
        [];
    ]
  in
  {
    sc_top_decls = [];
    sc_capture = List.map t_agg capture;
    sc_tail = [];
    sc_params = buffer_params k child ~with_counters:true ~with_nfin:false;
    sc_auto =
      buffer_auto k child ~with_counters:true ~with_nfin:false
        ~groups:(fun ~grid_blocks:_ ~block_threads:_ -> 1)
        ~cap:(fun ~grid_blocks ~block_threads -> grid_blocks * block_threads);
    sc_followup = followup;
  }

(* ---- multi-block granularity ---- *)

let gen_multi_block k g (child : func) ~agg_name ~(l : launch) ~taken =
  let m = mangle k in
  let f = site_fresh k taken in
  let gd = f "_gd" and bd = f "_bd" in
  let gdx = f "_gdx" and bdx = f "_bdx" in
  let grp = f "_grp" and base = f "_base" in
  let pidx = f "_pidx" and prev = f "_prev" in
  let cap_e = Binop (Mul, Int_lit g, bdim_x) in
  let capture =
    [
      decl TDim3 gd l.l_grid;
      decl TDim3 bd l.l_block;
      decl_int gdx (Member (Var gd, "x"));
      decl_int bdx (Member (Var bd, "x"));
      decl_int grp (Binop (Div, bid_x, Int_lit g));
      decl_int base (Binop (Mul, Var grp, cap_e));
      (* two adjacent atomics model the paper's packed 64-bit atomic pair
         (Fig. 7 lines 19-20); the simulator executes a thread's
         consecutive atomics without interleaving, so the scanned array
         stays consistent *)
      decl_int pidx (Call ("atomicAdd", [ addr (m "_nPar" @: Var grp); i1 ]));
      decl_int prev
        (Call ("atomicAdd", [ addr (m "_sumG" @: Var grp); Var gdx ]));
    ]
    @ capture_stores k child ~base_e:(Var base) ~pidx_e:(Var pidx)
        ~prev_e:(Var prev) ~gdx_e:(Var gdx) ~bdx_e:(Var bdx) ~args:l.l_args
    @ [ expr_s (Call ("atomicMax", [ addr (m "_maxB" @: Var grp); Var bdx ])) ]
  in
  let grp2 = f "_grpT" and nfin = f "_nfin" in
  let ingrp = f "_inGrp" and tot = f "_tot" in
  let tail =
    [
      (* publish this block's captures before signalling (Fig. 7 line 26) *)
      stmt Threadfence;
      stmt Sync;
      sif
        (Binop (Eq, tid_x, i0))
        [
          decl_int grp2 (Binop (Div, bid_x, Int_lit g));
          decl_int nfin
            (Binop
               ( Add,
                 Call ("atomicAdd", [ addr (m "_nFin" @: Var grp2); i1 ]),
                 i1 ));
          (* the trailing group may have fewer than [g] blocks *)
          decl_int ingrp
            (Call
               ( "min",
                 [
                   Int_lit g; Binop (Sub, gdim_x, Binop (Mul, Var grp2, Int_lit g));
                 ] ));
          sif
            (Binop (Eq, Var nfin, Var ingrp))
            [
              decl_int tot (m "_sumG" @: Var grp2);
              sif
                (Binop (Gt, Var tot, i0))
                [
                  agg_launch k child ~agg_name
                    ~seg_e:(Binop (Mul, Var grp2, cap_e))
                    ~total_e:(Var tot)
                    ~maxb_e:(m "_maxB" @: Var grp2)
                    ~count_e:(m "_nPar" @: Var grp2);
                ]
                [];
            ]
            [];
        ]
        [];
    ]
  in
  {
    sc_top_decls = [];
    sc_capture = List.map t_agg capture;
    sc_tail = List.map t_agg tail;
    sc_params = buffer_params k child ~with_counters:true ~with_nfin:true;
    sc_auto =
      buffer_auto k child ~with_counters:true ~with_nfin:true
        ~groups:(fun ~grid_blocks ~block_threads:_ -> (grid_blocks + g - 1) / g)
        ~cap:(fun ~grid_blocks:_ ~block_threads -> g * block_threads);
    sc_followup = [];
  }

(* ---- block granularity ---- *)

let gen_block k (child : func) ~agg_name ~(l : launch) ~agg_threshold ~taken =
  let f = site_fresh k taken in
  let sh = f "_sh" in
  let my_g = f "_myG" and my_b = f "_myB" in
  let my_args = List.map (fun p -> (p, f ("_my_" ^ p.p_name))) child.f_params in
  let pidx = f "_pidx" and prev = f "_prev" and base = f "_base" in
  let top =
    [
      stmt (Decl_shared (TInt, sh, Int_lit 3));
      sif
        (Binop (Eq, tid_x, i0))
        [ assign (sh @: i0) i0; assign (sh @: i1) i0; assign (sh @: Int_lit 2) i0 ]
        [];
      stmt Sync;
      decl_int my_g i0;
      decl_int my_b i0;
    ]
    @ List.map (fun ((p : param), n) -> stmt (Decl (p.p_ty, n, None))) my_args
  in
  let gd = f "_gd" and bd = f "_bd" in
  let capture =
    [
      decl TDim3 gd l.l_grid;
      decl TDim3 bd l.l_block;
      assign (Var my_g) (Member (Var gd, "x"));
      assign (Var my_b) (Member (Var bd, "x"));
    ]
    @ List.map2 (fun (_, n) arg -> assign (Var n) arg) my_args l.l_args
    @ [
        decl_int base (Binop (Mul, bid_x, bdim_x));
        decl_int pidx (Call ("atomicAdd", [ addr (sh @: i0); i1 ]));
        decl_int prev (Call ("atomicAdd", [ addr (sh @: i1); Var my_g ]));
      ]
    @ capture_stores k child ~base_e:(Var base) ~pidx_e:(Var pidx)
        ~prev_e:(Var prev) ~gdx_e:(Var my_g) ~bdx_e:(Var my_b)
        ~args:(List.map (fun (_, n) -> Var n) my_args)
    @ [ expr_s (Call ("atomicMax", [ addr (sh @: Int_lit 2); Var my_b ])) ]
  in
  let do_launch =
    sif
      (Binop (LAnd, Binop (Eq, tid_x, i0), Binop (Gt, sh @: i0, i0)))
      [
        agg_launch k child ~agg_name ~seg_e:(Binop (Mul, bid_x, bdim_x))
          ~total_e:(sh @: i1)
          ~maxb_e:(sh @: Int_lit 2)
          ~count_e:(sh @: i0);
      ]
      []
  in
  let direct_launch =
    (* Section V-B fallback: each participating parent launches its own
       child grid directly *)
    sif
      (Binop (Gt, Var my_g, i0))
      [
        stmt
          (Launch
             {
               l_kernel = child.f_name;
               l_grid = Var my_g;
               l_block = Var my_b;
               l_args = List.map (fun (_, n) -> Var n) my_args;
             });
      ]
      []
  in
  let tail =
    [ stmt Sync ]
    @
    match agg_threshold with
    | None -> [ do_launch ]
    | Some t ->
        [
          sif
            (Binop (Ge, sh @: i0, Int_lit t))
            [ do_launch ] [ direct_launch ];
        ]
  in
  {
    sc_top_decls = List.map t_agg top;
    sc_capture = List.map t_agg capture;
    sc_tail = List.map t_agg tail;
    sc_params = buffer_params k child ~with_counters:false ~with_nfin:false;
    sc_auto =
      buffer_auto k child ~with_counters:false ~with_nfin:false
        ~groups:(fun ~grid_blocks ~block_threads:_ -> grid_blocks)
        ~cap:(fun ~grid_blocks:_ ~block_threads -> block_threads);
    sc_followup = [];
  }

(* ---- warp granularity ---- *)

let gen_warp k (child : func) ~agg_name ~(l : launch) ~agg_threshold ~taken =
  let f = site_fresh k taken in
  let my_g = f "_myG" and my_b = f "_myB" in
  let my_args = List.map (fun p -> (p, f ("_my_" ^ p.p_name))) child.f_params in
  let top =
    [ decl_int my_g i0; decl_int my_b i0 ]
    @ List.map (fun ((p : param), n) -> stmt (Decl (p.p_ty, n, None))) my_args
  in
  let gd = f "_gd" and bd = f "_bd" in
  let capture =
    [
      decl TDim3 gd l.l_grid;
      decl TDim3 bd l.l_block;
      assign (Var my_g) (Member (Var gd, "x"));
      assign (Var my_b) (Member (Var bd, "x"));
    ]
    @ List.map2 (fun (_, n) arg -> assign (Var n) arg) my_args l.l_args
  in
  let part = f "_part"
  and pscan = f "_pscan"
  and cnt = f "_cnt"
  and gscan = f "_gscan"
  and tot = f "_tot"
  and maxb = f "_maxb"
  and wid = f "_wid"
  and base = f "_base" in
  let aggregate =
    [
      decl_int gscan (Call ("warp_scan_excl", [ Var my_g ]));
      decl_int tot (Call ("warp_sum", [ Var my_g ]));
      decl_int maxb (Call ("warp_max", [ Var my_b ]));
      decl_int wid
        (Binop
           ( Add,
             Binop
               ( Mul,
                 bid_x,
                 Binop (Div, Binop (Add, bdim_x, Int_lit 31), Int_lit 32) ),
             Binop (Div, tid_x, Int_lit 32) ));
      decl_int base (Binop (Mul, Var wid, Int_lit 32));
      sif
        (Binop (Eq, Var part, i1))
        (capture_stores k child ~base_e:(Var base) ~pidx_e:(Var pscan)
           ~prev_e:(Var gscan) ~gdx_e:(Var my_g) ~bdx_e:(Var my_b)
           ~args:(List.map (fun (_, n) -> Var n) my_args))
        [];
      stmt Syncwarp;
      sif
        (Binop (LAnd, Binop (Eq, Var part, i1), Binop (Eq, Var pscan, i0)))
        [
          agg_launch k child ~agg_name ~seg_e:(Var base) ~total_e:(Var tot)
            ~maxb_e:(Var maxb) ~count_e:(Var cnt);
        ]
        [];
    ]
  in
  let direct_launch =
    sif
      (Binop (Eq, Var part, i1))
      [
        stmt
          (Launch
             {
               l_kernel = child.f_name;
               l_grid = Var my_g;
               l_block = Var my_b;
               l_args = List.map (fun (_, n) -> Var n) my_args;
             });
      ]
      []
  in
  let tail =
    [
      decl_int part (Ternary (Binop (Gt, Var my_g, i0), i1, i0));
      decl_int pscan (Call ("warp_scan_excl", [ Var part ]));
      decl_int cnt (Call ("warp_sum", [ Var part ]));
    ]
    @
    match agg_threshold with
    | None -> aggregate
    | Some t ->
        [ sif (Binop (Ge, Var cnt, Int_lit t)) aggregate [ direct_launch ] ]
  in
  {
    sc_top_decls = List.map t_agg top;
    sc_capture = List.map t_agg capture;
    sc_tail = List.map t_agg tail;
    sc_params = buffer_params k child ~with_counters:false ~with_nfin:false;
    sc_auto =
      buffer_auto k child ~with_counters:false ~with_nfin:false
        ~groups:(fun ~grid_blocks ~block_threads ->
          grid_blocks * warps_per_block ~block_threads)
        ~cap:(fun ~grid_blocks:_ ~block_threads:_ -> 32);
    sc_followup = [];
  }

(* ---------- the pass ---------- *)

(** [transform ?opts prog] aggregates every eligible launch site. *)
let transform ?(opts = default_options) (prog : program) : result =
  let taken = ref (List.concat_map Ast_util.all_names prog) in
  let reports = ref [] in
  let report parent child ok reason =
    reports :=
      {
        sr_parent = parent;
        sr_child = child;
        sr_transformed = ok;
        sr_reason = reason;
      }
      :: !reports
  in
  let agg_children = Hashtbl.create 4 in
  let new_funcs = ref [] in
  let auto_params = ref [] in
  let site_counter = ref 0 in
  let ensure_agg_child (child : func) =
    match Hashtbl.find_opt agg_children child.f_name with
    | Some n -> n
    | None ->
        let agg, name = build_agg_child child ~taken:!taken in
        taken := Ast_util.all_names agg @ !taken;
        Hashtbl.add agg_children child.f_name name;
        new_funcs := (child.f_name, agg) :: !new_funcs;
        name
  in
  let transform_parent (p : func) : func =
    if p.f_kind <> Global then p
    else begin
      let my_params = ref [] in
      let my_auto = ref [] in
      let my_top = ref [] in
      let my_followup = ref [] in
      (* rewrite each top-level statement, collecting tails to splice *)
      let new_body =
        List.concat_map
          (fun (top_stmt : stmt) ->
            let tails = ref [] in
            let rewritten =
              Ast_util.map_stmts
                ~stmt:(fun s ->
                  match s.sdesc with
                  | Launch l -> (
                      match find_func prog l.l_kernel with
                      | None -> [ s ]
                      | Some child -> (
                          match
                            Eligibility.aggregation_site ~prog p
                              ~child:l.l_kernel
                          with
                          | Ineligible reason ->
                              report p.f_name l.l_kernel false reason;
                              [ s ]
                          | Eligible ->
                              let agg_name = ensure_agg_child child in
                              let k = !site_counter in
                              incr site_counter;
                              report p.f_name l.l_kernel true
                                (Fmt.str "site %d, %a granularity" k
                                   pp_granularity opts.granularity);
                              let code =
                                match opts.granularity with
                                | Grid -> gen_grid k child ~agg_name ~l ~taken
                                | Multi_block g ->
                                    gen_multi_block k g child ~agg_name ~l
                                      ~taken
                                | Block ->
                                    gen_block k child ~agg_name ~l
                                      ~agg_threshold:opts.agg_threshold ~taken
                                | Warp ->
                                    gen_warp k child ~agg_name ~l
                                      ~agg_threshold:opts.agg_threshold ~taken
                              in
                              my_params := !my_params @ code.sc_params;
                              my_auto := !my_auto @ code.sc_auto;
                              my_top := !my_top @ code.sc_top_decls;
                              my_followup := !my_followup @ code.sc_followup;
                              tails := !tails @ code.sc_tail;
                              code.sc_capture))
                  | _ -> [ s ])
                [ top_stmt ]
            in
            rewritten @ !tails)
          p.f_body
      in
      if !my_params = [] then p
      else begin
        if !my_auto <> [] then
          auto_params := (p.f_name, !my_auto) :: !auto_params;
        {
          p with
          f_params = p.f_params @ !my_params;
          f_body = !my_top @ new_body;
          f_host_followup =
            (match (p.f_host_followup, !my_followup) with
            | None, [] -> None
            | prev, extra ->
                Some (Option.value prev ~default:[] @ extra));
        }
      end
    end
  in
  let prog' = List.map transform_parent prog in
  let prog' =
    List.fold_left
      (fun acc (anchor, fn) -> Ast.add_func_after acc ~anchor fn)
      prog' !new_funcs
  in
  {
    prog = prog';
    auto_params = List.rev !auto_params;
    reports = List.rev !reports;
  }
