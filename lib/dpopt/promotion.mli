(** KLAP's kernel-launch {e promotion} — the baseline optimization for the
    pattern this paper's T/C/A cannot help (Section IX): a single-block
    kernel relaunching itself recursively. The recursion becomes a loop in
    one persistent kernel; next-level arguments travel through shared
    memory and a relaunch flag, separated by block barriers.

    Eligibility: the kernel launches only itself, exactly once, outside
    loops, with a static 1-block grid and a stable block dimension
    ([blockDim.x] or an integer literal). *)

type site_report = {
  sr_kernel : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = { prog : Minicu.Ast.program; reports : site_report list }

val transform : Minicu.Ast.program -> result
