(** The aggregation transformation (paper Section V, Fig. 7): combine the
    child grids launched by a group of parent threads into one aggregated
    grid, at warp, block, multi-block (the paper's new granularity), or
    grid granularity.

    The pass generates, per launch site:
    - an aggregated child kernel [<child>_agg] whose blocks binary-search
      the scanned grid-dimension array for their original parent and reload
      its arguments and configuration (disaggregation logic);
    - capture code replacing the launch, which assigns the parent an index
      and stores its arguments/configuration into runtime-allocated buffers
      appended to the parent's signature;
    - a block-uniform epilogue electing one launcher per group (thread 0,
      first participating lane, last finished block, or — at grid
      granularity — a host followup executed when the parent grid drains).

    Restriction: only the x dimension is aggregated (all of the paper's
    evaluation kernels are 1-D), launches must not sit in loops, and the
    parent must not return early (see {!Eligibility.aggregation_site}). *)

type granularity = Warp | Block | Multi_block of int | Grid

val pp_granularity : Format.formatter -> granularity -> unit

type options = {
  granularity : granularity;
  agg_threshold : int option;
      (** Section V-B: minimum participating parents per group for the
          aggregated launch to be worthwhile; below it, each parent launches
          its child directly. Warp and block granularity only. *)
}

val default_options : options

(** A runtime-allocated trailing parameter appended to a transformed parent
    kernel; sized from the actual launch configuration. *)
type auto_param = {
  ap_name : string;
  ap_elems : grid_blocks:int -> block_threads:int -> int;
}

type site_report = {
  sr_parent : string;
  sr_child : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = {
  prog : Minicu.Ast.program;
  auto_params : (string * auto_param list) list;
      (** Parent kernel name -> trailing buffers, in signature order. *)
  reports : site_report list;
}

(** [transform ?opts prog] aggregates every eligible launch site. Default
    options: block granularity, no aggregation threshold. *)
val transform : ?opts:options -> Minicu.Ast.program -> result
