(** The combined compiler framework (paper Section VI, Fig. 8): apply any
    subset of \{thresholding, coarsening, aggregation\} in the canonical
    order T → C → A. Thresholding runs before coarsening so the
    desired-thread-count extraction sees the unmangled grid expression;
    before aggregation so small grids never enter the aggregated launch;
    and coarsening runs before aggregation so the disaggregation logic sits
    outside the coarsening loop and is amortized. *)

type options = {
  thresholding : Thresholding.options option;
  coarsening : Coarsening.options option;
  aggregation : Aggregation.options option;
}

(** No passes: the plain CDP version. *)
val none : options

(** [make ?threshold ?cfactor ?granularity ?agg_threshold ()] enables each
    pass iff its parameter is given. *)
val make :
  ?threshold:int ->
  ?cfactor:int ->
  ?granularity:Aggregation.granularity ->
  ?agg_threshold:int ->
  unit ->
  options

(** ["CDP"], ["CDP+T"], ..., ["CDP+T+C+A"] — the paper's notation. *)
val label : options -> string

(** [enumerate ()] — every combination of the three passes at the given
    knob values, with its {!label}. All [2^3] subsets by default; a
    [with_*] toggle set to false pins that pass off. The all-off ["CDP"]
    combination always comes first, so the head can serve as the
    untransformed baseline. Used by the differential-testing oracle
    ([lib/difftest]) and the harness. *)
val enumerate :
  ?threshold:int ->
  ?cfactor:int ->
  ?granularity:Aggregation.granularity ->
  ?agg_threshold:int ->
  ?with_thresholding:bool ->
  ?with_coarsening:bool ->
  ?with_aggregation:bool ->
  unit ->
  (string * options) list

type result = {
  prog : Minicu.Ast.program;
  auto_params : (string * Aggregation.auto_param list) list;
  threshold_reports : Thresholding.site_report list;
  coarsen_reports : Coarsening.site_report list;
  agg_reports : Aggregation.site_report list;
}

(** {1 Cache-keyed stages}

    The pipeline decomposes into independent stages, one per enabled pass,
    each carrying a {e fingerprint} — a canonical rendering of its
    normalized knob values. A stage is a pure function of (input program,
    fingerprint), which is what makes content-addressed memoization sound:
    the compile service ({e lib/serve}) keys each stage's output on
    [digest (canonical input source) ^ fingerprint] and replays {!run} as
    a fold over the same list, byte-identical to the uncached path. *)

type pass_report =
  | Threshold_reports of Thresholding.site_report list
  | Coarsen_reports of Coarsening.site_report list
  | Agg_reports of Aggregation.site_report list

type stage_output = {
  so_prog : Minicu.Ast.program;
  so_auto_params : (string * Aggregation.auto_param list) list;
      (** Non-empty only for the aggregation stage. *)
  so_report : pass_report;
}

type stage = {
  st_name : string;  (** ["thresholding"] / ["coarsening"] / ["aggregation"]. *)
  st_fingerprint : string;
      (** Canonical normalized knob values: equal fingerprints guarantee
          [st_apply] computes the same function. *)
  st_apply : Minicu.Ast.program -> stage_output;
      (** Applies the pass; typechecks its output.
          @raise Minicu.Typecheck.Type_error on ill-formed output. *)
}

(** The enabled passes in canonical T → C → A order. *)
val stages : options -> stage list

(** Canonical normalized rendering of the whole option record (["id"] for
    {!none}): equal fingerprints run byte-identical pipelines. Ignored
    knobs — the aggregation threshold at multi-block/grid granularity,
    which warp/block codegen alone consumes — are dropped, so records
    differing only there share one fingerprint. *)
val fingerprint : options -> string

(** [run ?opts prog] applies the enabled passes in canonical order,
    typechecking the input, every intermediate program, and the output.
    @raise Minicu.Typecheck.Type_error if any stage produces ill-formed
    code. *)
val run : ?opts:options -> Minicu.Ast.program -> result

(** Parse, transform, print: the [dpoptc] CLI entry point. *)
val run_source : ?opts:options -> string -> string * result
