(** Eligibility analysis: which kernels and launch sites each optimization
    can legally transform (paper Section III-C plus the structural
    requirements of the aggregation codegen). *)

open Minicu
open Minicu.Ast

type verdict = Eligible | Ineligible of string

let pp_verdict ppf = function
  | Eligible -> Fmt.string ppf "eligible"
  | Ineligible r -> Fmt.pf ppf "ineligible: %s" r

let is_warp_collective name =
  match Builtins.find name with
  | Some b -> b.b_cost = Builtins.Warp_collective
  | None -> false

(* Statements of [f] plus, transitively, of every device function it calls. *)
let rec reachable_stmts (prog : program) seen (f : func) : stmt list =
  if List.mem f.f_name !seen then []
  else begin
    seen := f.f_name :: !seen;
    let callees =
      Ast_util.fold_exprs_in_stmts
        (fun acc e ->
          match e with
          | Call (g, _) when not (Builtins.is_builtin g) -> g :: acc
          | _ -> acc)
        [] f.f_body
    in
    f.f_body
    @ List.concat_map
        (fun g ->
          match find_func prog g with
          | Some gf when gf.f_kind = Device -> reachable_stmts prog seen gf
          | _ -> [])
        callees
  end

let uses_warp_collectives ss =
  Ast_util.fold_exprs_in_stmts
    (fun acc e ->
      acc || match e with Call (g, _) -> is_warp_collective g | _ -> false)
    false ss

(** Can [child]'s threads be serialized in the parent (thresholding,
    Section III-C)? Disallowed: barrier synchronization (block or warp
    scope, including warp collectives) and shared memory — checked
    transitively through called device functions. *)
let thresholding_child (prog : program) (child : func) : verdict =
  let ss = reachable_stmts prog (ref []) child in
  if Ast_util.contains_sync ss then
    Ineligible
      (Fmt.str
         "child kernel %S performs barrier synchronization; serializing it \
          would need scalar expansion and usually serializes a parallel \
          algorithm badly (Section III-C)"
         child.f_name)
  else if uses_warp_collectives ss then
    Ineligible
      (Fmt.str "child kernel %S uses warp collectives" child.f_name)
  else if Ast_util.contains_shared ss then
    Ineligible
      (Fmt.str
         "child kernel %S uses shared memory; each serializing parent \
          thread would need a block's worth of shared memory (Section \
          III-C)"
         child.f_name)
  else Eligible

(** Coarsening only needs the child's body to be extractable; every MiniCU
    kernel qualifies. *)
let coarsening_child (_prog : program) (_child : func) : verdict = Eligible

(* Is the (unique) launch of [kernel_name] inside a loop in [ss]? *)
let launch_in_loop ~(kernel : string) (body : stmt list) : bool =
  let rec in_stmts in_loop ss = List.exists (in_stmt in_loop) ss
  and in_stmt in_loop s =
    match s.sdesc with
    | Launch l when l.l_kernel = kernel -> in_loop
    | If (_, a, b) -> in_stmts in_loop a || in_stmts in_loop b
    | For (_, _, _, b) | While (_, b) -> in_stmts true b
    | _ -> false
  in
  in_stmts false body

let contains_return ss =
  Ast_util.fold_stmts
    (fun acc s -> acc || match s.sdesc with Return _ -> true | _ -> false)
    false ss

(** Can the launch of [child] inside [parent] be aggregated? The generated
    aggregation logic needs a block-uniform join point that every parent
    thread reaches exactly once, so:

    - the launch must not sit inside a loop (it would execute repeatedly);
    - the parent must not return early (a thread that exits never reaches
      the group counter / barrier, and its group's aggregated launch would
      be lost);
    - the parent must not already contain a divergent barrier
      ({!Minicu.Divergence}): the epilogue appends block/warp
      synchronization after the capture sites, and a parent whose barriers
      are not block-uniform gives it no well-defined join point. *)
let aggregation_site ?(prog : program = []) (parent : func) ~(child : string)
    : verdict =
  if launch_in_loop ~kernel:child parent.f_body then
    Ineligible
      (Fmt.str
         "launch of %S in %S is inside a loop; the aggregation epilogue \
          requires a single block-uniform join point"
         child parent.f_name)
  else if contains_return parent.f_body then
    Ineligible
      (Fmt.str
         "parent kernel %S returns early; threads that exit would never \
          reach the aggregation epilogue"
         parent.f_name)
  else if
    (* The aggregated child is a clone of the child's body, while the
       parent's signature grows by the capture buffers. A child that
       launches the parent back (self-recursion being the common case:
       parent = child) would leave the clone launching the extended
       parent with the original argument list — ill-typed output. *)
    parent.f_name = child
    || List.exists
         (fun (f : func) ->
           f.f_name = child
           && List.exists
                (fun ((l : Ast.launch), _) -> l.l_kernel = parent.f_name)
                (Ast_util.launch_sites f.f_body))
         prog
  then
    Ineligible
      (Fmt.str
         "child kernel %S launches its parent %S back (recursive nesting); \
          the aggregated clone would launch the buffer-extended parent \
          with the original arguments"
         child parent.f_name)
  else
    match Divergence.divergent_barriers prog parent with
    | [] -> Eligible
    | ev :: _ ->
        Ineligible
          (Fmt.str
             "parent kernel %S has a divergent barrier at %a (%a control \
              flow); the aggregation epilogue cannot establish a \
              block-uniform join point"
             parent.f_name Loc.pp ev.ev_loc Divergence.pp_level ev.ev_ctx)
