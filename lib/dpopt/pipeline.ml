(** The combined compiler framework (paper Section VI, Fig. 8).

    Each optimization is an independent source-to-source pass; this module
    applies any requested combination in the canonical order

    {v thresholding -> coarsening -> aggregation v}

    for the reasons the paper gives: thresholding must extract the desired
    thread count before coarsening rewrites the grid dimension; thresholding
    before aggregation keeps small grids out of the aggregated launch; and
    coarsening before aggregation places the disaggregation logic outside
    the coarsening loop so it is amortized over several original blocks. *)

open Minicu

type options = {
  thresholding : Thresholding.options option;
  coarsening : Coarsening.options option;
  aggregation : Aggregation.options option;
}

let none = { thresholding = None; coarsening = None; aggregation = None }

(** Convenience constructor mirroring the paper's CDP+T+C+A notation. *)
let make ?threshold ?cfactor ?granularity ?agg_threshold () =
  {
    thresholding =
      Option.map (fun threshold -> { Thresholding.threshold }) threshold;
    coarsening = Option.map (fun cfactor -> { Coarsening.cfactor }) cfactor;
    aggregation =
      Option.map
        (fun granularity -> { Aggregation.granularity; agg_threshold })
        granularity;
  }

(** Short tag such as ["CDP+T+C+A"] describing the enabled passes. *)
let label opts =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (fun _ -> "T") opts.thresholding;
        Option.map (fun _ -> "C") opts.coarsening;
        Option.map (fun _ -> "A") opts.aggregation;
      ]
  in
  if parts = [] then "CDP" else "CDP+" ^ String.concat "+" parts

(** [enumerate ()] — every combination of the three passes instantiated at
    the given knob values, with its {!label}. By default all [2^3] subsets
    are produced (the paper's Fig. 9 x-axis); setting a [with_*] toggle to
    false pins that pass off, halving the set. The all-off combination
    (["CDP"]) always comes first, so callers can treat the head as the
    untransformed baseline. Used by the differential-testing oracle
    ({e lib/difftest}) and the harness. *)
let enumerate ?(threshold = 32) ?(cfactor = 4)
    ?(granularity = Aggregation.Block) ?agg_threshold
    ?(with_thresholding = true) ?(with_coarsening = true)
    ?(with_aggregation = true) () : (string * options) list =
  let toggles enabled = if enabled then [ false; true ] else [ false ] in
  List.concat_map
    (fun t ->
      List.concat_map
        (fun c ->
          List.map
            (fun a ->
              let opts =
                make
                  ?threshold:(if t then Some threshold else None)
                  ?cfactor:(if c then Some cfactor else None)
                  ?granularity:(if a then Some granularity else None)
                  ?agg_threshold:(if a then agg_threshold else None)
                  ()
              in
              (label opts, opts))
            (toggles with_aggregation))
        (toggles with_coarsening))
    (toggles with_thresholding)

type result = {
  prog : Ast.program;
  auto_params : (string * Aggregation.auto_param list) list;
      (** Runtime-allocated trailing parameters per transformed parent
          kernel (empty unless aggregation ran). *)
  threshold_reports : Thresholding.site_report list;
  coarsen_reports : Coarsening.site_report list;
  agg_reports : Aggregation.site_report list;
}

(** [run ?opts prog] applies the enabled passes in canonical order. The
    input and output programs both typecheck; intermediate results are
    checked too, so a pass that produces ill-formed code fails loudly here
    rather than at simulation time. *)
let run ?(opts = none) (prog : Ast.program) : result =
  Typecheck.check prog;
  let prog, threshold_reports =
    match opts.thresholding with
    | None -> (prog, [])
    | Some o ->
        let r = Thresholding.transform ~opts:o prog in
        Typecheck.check r.prog;
        (r.prog, r.reports)
  in
  let prog, coarsen_reports =
    match opts.coarsening with
    | None -> (prog, [])
    | Some o ->
        let r = Coarsening.transform ~opts:o prog in
        Typecheck.check r.prog;
        (r.prog, r.reports)
  in
  let prog, auto_params, agg_reports =
    match opts.aggregation with
    | None -> (prog, [], [])
    | Some o ->
        let r = Aggregation.transform ~opts:o prog in
        Typecheck.check r.prog;
        (r.prog, r.auto_params, r.reports)
  in
  { prog; auto_params; threshold_reports; coarsen_reports; agg_reports }

(** [run_source ?opts src] — parse, transform, and print back to source.
    The CLI entry point ({e dpoptc}) wraps this. *)
let run_source ?opts src =
  let prog = Parser.program src in
  let r = run ?opts prog in
  (Pretty.program r.prog, r)
