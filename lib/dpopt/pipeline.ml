(** The combined compiler framework (paper Section VI, Fig. 8).

    Each optimization is an independent source-to-source pass; this module
    applies any requested combination in the canonical order

    {v thresholding -> coarsening -> aggregation v}

    for the reasons the paper gives: thresholding must extract the desired
    thread count before coarsening rewrites the grid dimension; thresholding
    before aggregation keeps small grids out of the aggregated launch; and
    coarsening before aggregation places the disaggregation logic outside
    the coarsening loop so it is amortized over several original blocks. *)

open Minicu

type options = {
  thresholding : Thresholding.options option;
  coarsening : Coarsening.options option;
  aggregation : Aggregation.options option;
}

let none = { thresholding = None; coarsening = None; aggregation = None }

(** Convenience constructor mirroring the paper's CDP+T+C+A notation. *)
let make ?threshold ?cfactor ?granularity ?agg_threshold () =
  {
    thresholding =
      Option.map (fun threshold -> { Thresholding.threshold }) threshold;
    coarsening = Option.map (fun cfactor -> { Coarsening.cfactor }) cfactor;
    aggregation =
      Option.map
        (fun granularity -> { Aggregation.granularity; agg_threshold })
        granularity;
  }

(** Short tag such as ["CDP+T+C+A"] describing the enabled passes. *)
let label opts =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (fun _ -> "T") opts.thresholding;
        Option.map (fun _ -> "C") opts.coarsening;
        Option.map (fun _ -> "A") opts.aggregation;
      ]
  in
  if parts = [] then "CDP" else "CDP+" ^ String.concat "+" parts

(** [enumerate ()] — every combination of the three passes instantiated at
    the given knob values, with its {!label}. By default all [2^3] subsets
    are produced (the paper's Fig. 9 x-axis); setting a [with_*] toggle to
    false pins that pass off, halving the set. The all-off combination
    (["CDP"]) always comes first, so callers can treat the head as the
    untransformed baseline. Used by the differential-testing oracle
    ({e lib/difftest}) and the harness. *)
let enumerate ?(threshold = 32) ?(cfactor = 4)
    ?(granularity = Aggregation.Block) ?agg_threshold
    ?(with_thresholding = true) ?(with_coarsening = true)
    ?(with_aggregation = true) () : (string * options) list =
  let toggles enabled = if enabled then [ false; true ] else [ false ] in
  List.concat_map
    (fun t ->
      List.concat_map
        (fun c ->
          List.map
            (fun a ->
              let opts =
                make
                  ?threshold:(if t then Some threshold else None)
                  ?cfactor:(if c then Some cfactor else None)
                  ?granularity:(if a then Some granularity else None)
                  ?agg_threshold:(if a then agg_threshold else None)
                  ()
              in
              (label opts, opts))
            (toggles with_aggregation))
        (toggles with_coarsening))
    (toggles with_thresholding)

type result = {
  prog : Ast.program;
  auto_params : (string * Aggregation.auto_param list) list;
      (** Runtime-allocated trailing parameters per transformed parent
          kernel (empty unless aggregation ran). *)
  threshold_reports : Thresholding.site_report list;
  coarsen_reports : Coarsening.site_report list;
  agg_reports : Aggregation.site_report list;
}

(* ---- cache-keyed stages --------------------------------------------- *)

type pass_report =
  | Threshold_reports of Thresholding.site_report list
  | Coarsen_reports of Coarsening.site_report list
  | Agg_reports of Aggregation.site_report list

type stage_output = {
  so_prog : Ast.program;
  so_auto_params : (string * Aggregation.auto_param list) list;
      (** Non-empty only for the aggregation stage. *)
  so_report : pass_report;
}

type stage = {
  st_name : string;  (** ["thresholding"] / ["coarsening"] / ["aggregation"]. *)
  st_fingerprint : string;
      (** Canonical rendering of this pass's normalized knob values: equal
          fingerprints guarantee [st_apply] computes the same function.
          Combined with a content digest of the input program, this is the
          stage's memoization key (see {e lib/serve}). *)
  st_apply : Ast.program -> stage_output;
      (** Applies the pass and typechecks its output, so ill-formed
          intermediate code fails loudly at the stage that produced it. *)
}

(* The aggregation threshold only reaches warp/block codegen (Section
   V-B); at multi-block/grid granularity the pass ignores it, so the
   fingerprint must not split on it — two option records that differ only
   there produce byte-identical programs and must share cache entries. *)
let agg_fingerprint (o : Aggregation.options) =
  let thr =
    match (o.granularity, o.agg_threshold) with
    | (Aggregation.Warp | Aggregation.Block), Some t -> string_of_int t
    | _ -> "-"
  in
  Fmt.str "gran=%a;aggthr=%s" Aggregation.pp_granularity o.granularity thr

(** [stages opts] — the enabled passes in canonical T → C → A order, each
    with its memoization fingerprint. {!run} folds these in order; cache
    layers (the {e dpoptd} compile service) memoize at each boundary. *)
let stages (opts : options) : stage list =
  List.filter_map Fun.id
    [
      Option.map
        (fun (o : Thresholding.options) ->
          {
            st_name = "thresholding";
            st_fingerprint = Fmt.str "threshold=%d" o.threshold;
            st_apply =
              (fun prog ->
                let r = Thresholding.transform ~opts:o prog in
                Typecheck.check r.prog;
                {
                  so_prog = r.prog;
                  so_auto_params = [];
                  so_report = Threshold_reports r.reports;
                });
          })
        opts.thresholding;
      Option.map
        (fun (o : Coarsening.options) ->
          {
            st_name = "coarsening";
            st_fingerprint = Fmt.str "cfactor=%d" o.cfactor;
            st_apply =
              (fun prog ->
                let r = Coarsening.transform ~opts:o prog in
                Typecheck.check r.prog;
                {
                  so_prog = r.prog;
                  so_auto_params = [];
                  so_report = Coarsen_reports r.reports;
                });
          })
        opts.coarsening;
      Option.map
        (fun (o : Aggregation.options) ->
          {
            st_name = "aggregation";
            st_fingerprint = agg_fingerprint o;
            st_apply =
              (fun prog ->
                let r = Aggregation.transform ~opts:o prog in
                Typecheck.check r.prog;
                {
                  so_prog = r.prog;
                  so_auto_params = r.auto_params;
                  so_report = Agg_reports r.reports;
                });
          })
        opts.aggregation;
    ]

(** [fingerprint opts] — canonical normalized rendering of the whole
    option record: two records with equal fingerprints run byte-identical
    pipelines. Disabled passes contribute nothing; ignored knobs (the
    aggregation threshold at multi-block/grid granularity) are dropped. *)
let fingerprint (opts : options) : string =
  match stages opts with
  | [] -> "id"
  | ss ->
      String.concat "|"
        (List.map (fun st -> st.st_name ^ ":" ^ st.st_fingerprint) ss)

(* Fold a stage output into the accumulating result. *)
let absorb (r : result) (so : stage_output) : result =
  let r = { r with prog = so.so_prog } in
  match so.so_report with
  | Threshold_reports reps -> { r with threshold_reports = reps }
  | Coarsen_reports reps -> { r with coarsen_reports = reps }
  | Agg_reports reps ->
      { r with agg_reports = reps; auto_params = so.so_auto_params }

(** [run ?opts prog] applies the enabled passes in canonical order. The
    input and output programs both typecheck; intermediate results are
    checked too, so a pass that produces ill-formed code fails loudly here
    rather than at simulation time. Implemented as a fold over {!stages};
    callers that memoize at stage boundaries fold the same list and are
    byte-identical to this uncached path. *)
let run ?(opts = none) (prog : Ast.program) : result =
  Typecheck.check prog;
  List.fold_left
    (fun r st -> absorb r (st.st_apply r.prog))
    {
      prog;
      auto_params = [];
      threshold_reports = [];
      coarsen_reports = [];
      agg_reports = [];
    }
    (stages opts)

(** [run_source ?opts src] — parse, transform, and print back to source.
    The CLI entry point ({e dpoptc}) wraps this. *)
let run_source ?opts src =
  let prog = Parser.program src in
  let r = run ?opts prog in
  (Pretty.program r.prog, r)
