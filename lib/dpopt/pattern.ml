(** Ceiling-division pattern analysis (paper Section III-D, Fig. 4).

    The thresholding transformation must compare the {e desired number of
    child threads} against the threshold, but the programmer only writes the
    grid dimension. Multiplying grid by block dimension overestimates badly
    (a 2-thread child in a 1024-thread block would read as 1024), so —
    following the paper — we recover [N] from the ceiling-division idioms
    programmers use to compute grid dimensions:

    {v
    (a) (N-1)/b + 1
    (b) (N+b-1)/b
    (c) N/b + ((N%b == 0) ? 0 : 1)
    (d) ceil((float)N/b)
    (e) ceil(N/(float)b)
    (f) dim3(e, e, e) where each component may be one of (a)-(e)
    v}

    The expression may also be split across intermediate variables, so the
    analysis resolves local single-assignment definitions before matching.
    The heuristic (per the paper): find the division, take its left-hand
    subexpression, strip additions/subtractions of constants (integer
    literals and the block-dimension expression), and treat what remains as
    [N]. A wrong guess only mis-tunes the serialize-vs-launch choice; it
    never affects correctness. *)

open Minicu
open Minicu.Ast

type result =
  | Exact of expr
      (** The recovered desired-thread-count expression, [N]. For
          multi-dimensional grids this is the product of the per-dimension
          counts. *)
  | Fallback_total
      (** No ceiling-division pattern found: the caller should fall back to
          grid × block (the conservative overestimate the paper warns
          about). *)

(** Collect single-assignment local definitions of a statement list:
    [name -> rhs] for [Decl] with initializer and [Assign] to a plain
    variable. Names assigned more than once map to [None]. *)
let local_defs (ss : stmt list) : (string, expr option) Hashtbl.t =
  let defs = Hashtbl.create 16 in
  let record x e =
    match Hashtbl.find_opt defs x with
    | None -> Hashtbl.add defs x (Some e)
    | Some _ -> Hashtbl.replace defs x None
  in
  ignore
    (Ast_util.fold_stmts
       (fun () s ->
         match s.sdesc with
         | Decl (_, x, Some e) -> record x e
         | Decl (_, x, None) -> Hashtbl.replace defs x None
         | Assign (Var x, e) -> record x e
         | Assign (Member (Var x, _), _) -> Hashtbl.replace defs x None
         | _ -> ())
       () ss);
  defs

let rec resolve ?(depth = 8) defs (e : expr) : expr =
  if depth = 0 then e
  else
    match e with
    | Var x -> (
        match Hashtbl.find_opt defs x with
        | Some (Some rhs) -> resolve ~depth:(depth - 1) defs rhs
        | _ -> e)
    | Cast (_, a) -> resolve ~depth defs a
    | _ -> e

(* Is [e] a "constant" for the purpose of stripping: an integer literal, the
   block-dimension expression itself, or arithmetic over such. *)
let rec is_const_wrt ~block_dim e =
  equal_expr e block_dim
  ||
  match e with
  | Int_lit _ -> true
  | Cast (_, a) | Unop (_, a) -> is_const_wrt ~block_dim a
  | Binop ((Add | Sub | Mul | Div), a, b) ->
      is_const_wrt ~block_dim a && is_const_wrt ~block_dim b
  | _ -> false

(* Strip additions and subtractions of constants from the dividend. *)
let rec strip_consts ~block_dim e =
  match e with
  | Cast (_, a) -> strip_consts ~block_dim a
  | Binop (Add, a, b) when is_const_wrt ~block_dim b ->
      strip_consts ~block_dim a
  | Binop (Add, a, b) when is_const_wrt ~block_dim a ->
      strip_consts ~block_dim b
  | Binop (Sub, a, b) when is_const_wrt ~block_dim b ->
      strip_consts ~block_dim a
  | e -> e

(* Does [e] contain a division? (Used to pick the summand holding the
   ceiling-division in patterns (a) and (c).) *)
let rec contains_div = function
  | Binop (Div, _, _) -> true
  | Binop (_, a, b) -> contains_div a || contains_div b
  | Unop (_, a) | Cast (_, a) | Member (a, _) -> contains_div a
  | Ternary (c, a, b) -> contains_div c || contains_div a || contains_div b
  | Call (_, args) -> List.exists contains_div args
  | Index (a, b) -> contains_div a || contains_div b
  | Dim3_ctor (x, y, z) ->
      contains_div x || contains_div y || contains_div z
  | Addr_of a -> contains_div a
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> false

(* Extract N from a single-dimension grid expression. *)
let rec extract_dim defs ~block_dim (e : expr) : expr option =
  let e = resolve defs e in
  match e with
  | Binop (Div, lhs, _) ->
      let lhs = resolve defs lhs in
      Some (strip_consts ~block_dim lhs)
  | Call ("ceil", [ inner ]) -> extract_dim defs ~block_dim (resolve defs inner)
  | Binop ((Add | Sub), a, b) ->
      (* patterns (a) and (c): the division lives in one summand *)
      let a' = resolve defs a and b' = resolve defs b in
      if contains_div a' then extract_dim defs ~block_dim a'
      else if contains_div b' then extract_dim defs ~block_dim b'
      else None
  | Cast (_, a) -> extract_dim defs ~block_dim a
  | _ -> None

(* The block-dimension expression for dimension [i] of a possibly-dim3
   block configuration. *)
let block_component defs (block : expr) i =
  match resolve defs block with
  | Dim3_ctor (x, y, z) -> List.nth [ x; y; z ] i
  | b -> if i = 0 then b else Int_lit 1

(** [desired_threads ~parent_body ~grid ~block] recovers the
    desired-child-thread-count expression from a launch configuration,
    resolving intermediate variables defined in [parent_body]. *)
let desired_threads ~(parent_body : stmt list) ~(grid : expr) ~(block : expr) :
    result =
  let defs = local_defs parent_body in
  match resolve defs grid with
  | Dim3_ctor (x, y, z) ->
      (* pattern (f): per-component extraction; product of the Ns *)
      let parts =
        List.mapi
          (fun i c ->
            let bd = block_component defs block i in
            match extract_dim defs ~block_dim:bd c with
            | Some n -> Some n
            | None -> (
                (* a literal-1 component contributes nothing *)
                match Ast_util.simplify_expr c with
                | Int_lit 1 -> Some (Int_lit 1)
                | _ -> None))
          [ x; y; z ]
      in
      if List.exists (fun p -> p = None) parts then Fallback_total
      else
        let ns = List.filter_map Fun.id parts in
        let product =
          List.fold_left
            (fun acc n -> Binop (Mul, acc, n))
            (List.hd ns) (List.tl ns)
        in
        Exact (Ast_util.simplify_expr product)
  | g -> (
      let bd = block_component defs block 0 in
      match extract_dim defs ~block_dim:bd g with
      | Some n -> Exact (Ast_util.simplify_expr n)
      | None -> Fallback_total)

(** [threads_expr ~parent_body ~grid ~block] always returns an expression:
    the recovered [N], or grid × block as the fallback (1-D launch
    configurations only in the fallback). *)
let threads_expr ~parent_body ~grid ~block : expr * [ `Exact | `Fallback ] =
  match desired_threads ~parent_body ~grid ~block with
  | Exact n -> (n, `Exact)
  | Fallback_total ->
      let total e =
        match e with
        | Dim3_ctor (x, y, z) -> Binop (Mul, Binop (Mul, x, y), z)
        | e -> e
      in
      (Ast_util.simplify_expr (Binop (Mul, total grid, total block)), `Fallback)
