(** KLAP's kernel-launch {e promotion} (El Hajj et al., MICRO 2016,
    Section: promotion) — the other optimization of the baseline framework
    this paper builds on.

    Promotion targets the pattern the paper's Section IX notes its own
    optimizations cannot help: a {e single-block} kernel that relaunches
    itself recursively ([k<<<1, b>>>(args')] inside [k]). Thresholding does
    not apply (all child grids have the same size), coarsening does not
    apply (one block), aggregation does not apply (one launching thread).
    Promotion replaces the launch chain with a loop in one persistent
    kernel:

    {v
    __device__ void k_body(params, int* _pr_flag, ty* _pr_arg_i...) {
      ...original body, with the self-launch replaced by writing the next
         iteration's arguments into shared memory and setting the flag...
    }
    __global__ void k(params) {
      __shared__ int _pr_flag[1];
      __shared__ ty _pr_arg_i[1];     // one cell per parameter
      while (true) {
        if (threadIdx.x == 0) { _pr_flag[0] = 0; }
        __syncthreads();
        k_body(params..., _pr_flag, _pr_args...);
        __syncthreads();
        if (_pr_flag[0] == 0) { return; }
        param_i = _pr_arg_i[0];       // adopt the next launch's arguments
      }
    }
    v}

    Extracting the body into a device function keeps [return] statements
    meaning "this thread is done with the current recursion level", exactly
    as kernel exit would under a real relaunch.

    Eligibility: the kernel launches only itself, exactly once, not inside
    a loop, with a static single-block grid ([1] or [dim3(1,1,1)]) and a
    block dimension that is provably the same across levels ([blockDim.x]
    or an integer literal). *)

open Minicu
open Minicu.Ast

type site_report = {
  sr_kernel : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = { prog : program; reports : site_report list }

let is_one_grid = function
  | Int_lit 1 -> true
  | Dim3_ctor (Int_lit 1, Int_lit 1, Int_lit 1) -> true
  | _ -> false

let is_stable_block = function
  | Member (Var "blockDim", "x") -> true
  | Int_lit _ -> true
  | _ -> false

(* Does [f] qualify for promotion? Returns the self-launch on success. *)
let eligible (f : func) : (launch, string) Result.t =
  if f.f_kind <> Global then Error "not a kernel"
  else
    match Ast_util.launches_of f.f_body with
    | [] -> Error "no launch"
    | _ :: _ :: _ -> Error "more than one launch site"
    | [ l ] ->
        if l.l_kernel <> f.f_name then
          Error
            (Fmt.str "launch targets %S, not the kernel itself" l.l_kernel)
        else if Eligibility.launch_in_loop ~kernel:l.l_kernel f.f_body then
          Error "self-launch is inside a loop"
        else if not (is_one_grid l.l_grid) then
          Error "self-launch grid dimension is not statically 1"
        else if not (is_stable_block l.l_block) then
          Error
            "self-launch block dimension is not provably stable across \
             recursion levels (need blockDim.x or a literal)"
        else Ok l

let promote_kernel (f : func) (l : launch) ~taken : func list =
  let fresh base = Ast_util.fresh_name ~base taken in
  let body_name = fresh (f.f_name ^ "_level_body") in
  let flag = fresh "_pr_flag" in
  let arg_cells =
    List.map (fun p -> (p, fresh ("_pr_next_" ^ p.p_name))) f.f_params
  in
  (* the body function: original body with the self-launch replaced by the
     capture of next-level arguments *)
  let capture =
    List.map2
      (fun ((_ : param), cell) arg ->
        stmt (Assign (Index (Var cell, Int_lit 0), arg)))
      arg_cells l.l_args
    @ [ stmt (Assign (Index (Var flag, Int_lit 0), Int_lit 1)) ]
  in
  let new_body =
    Ast_util.map_stmts
      ~stmt:(fun s ->
        match s.sdesc with
        | Launch l' when l'.l_kernel = f.f_name -> capture
        | _ -> [ s ])
      f.f_body
  in
  let body_fn =
    {
      f_name = body_name;
      f_kind = Device;
      f_ret = TVoid;
      f_params =
        f.f_params
        @ ({ p_ty = TPtr TInt; p_name = flag }
          :: List.map
               (fun ((p : param), cell) -> { p_ty = TPtr p.p_ty; p_name = cell })
               arg_cells);
      f_body = new_body;
      f_host_followup = None;
    }
  in
  (* the persistent kernel: the promotion loop *)
  let tid0 = Binop (Eq, Member (Var "threadIdx", "x"), Int_lit 0) in
  let shared_decls =
    stmt (Decl_shared (TInt, flag, Int_lit 1))
    :: List.map
         (fun ((p : param), cell) -> stmt (Decl_shared (p.p_ty, cell, Int_lit 1)))
         arg_cells
  in
  let loop_body =
    [
      stmt
        (If (tid0, [ stmt (Assign (Index (Var flag, Int_lit 0), Int_lit 0)) ], []));
      stmt Sync;
      stmt
        (Expr_stmt
           (Call
              ( body_name,
                List.map (fun p -> Var p.p_name) f.f_params
                @ (Var flag :: List.map (fun (_, cell) -> Var cell) arg_cells)
              )));
      stmt Sync;
      stmt
        (If
           ( Binop (Eq, Index (Var flag, Int_lit 0), Int_lit 0),
             [ stmt (Return None) ],
             [] ));
    ]
    @ List.map
        (fun ((p : param), cell) ->
          stmt (Assign (Var p.p_name, Index (Var cell, Int_lit 0))))
        arg_cells
    (* third barrier of the persistent-kernel pattern: every thread must
       have read the flag and adopted the next arguments before thread 0
       resets the flag at the top of the next iteration *)
    @ [ stmt Sync ]
  in
  let promoted =
    {
      f with
      f_body = shared_decls @ [ stmt (While (Bool_lit true, loop_body)) ];
    }
  in
  [ body_fn; promoted ]

(** [transform prog] promotes every eligible self-recursive single-block
    kernel. *)
let transform (prog : program) : result =
  let taken = ref (List.concat_map Ast_util.all_names prog) in
  let reports = ref [] in
  let prog' =
    List.concat_map
      (fun (f : func) ->
        if f.f_kind <> Global || not (Ast_util.contains_launch f.f_body) then
          [ f ]
        else
          match eligible f with
          | Error reason ->
              if
                List.exists
                  (fun (l : launch) -> l.l_kernel = f.f_name)
                  (Ast_util.launches_of f.f_body)
              then
                reports :=
                  { sr_kernel = f.f_name; sr_transformed = false;
                    sr_reason = reason }
                  :: !reports;
              [ f ]
          | Ok l ->
              reports :=
                { sr_kernel = f.f_name; sr_transformed = true;
                  sr_reason = "promoted self-recursion to a loop" }
                :: !reports;
              let fns = promote_kernel f l ~taken:!taken in
              taken := List.concat_map Ast_util.all_names fns @ !taken;
              fns)
      prog
  in
  { prog = prog'; reports = List.rev !reports }
