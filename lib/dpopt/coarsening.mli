(** The coarsening transformation in the context of dynamic parallelism
    (paper Section IV, Fig. 6): each coarsened child block executes the
    work of [cfactor] original blocks via a grid-stride loop; launch sites
    ceiling-divide the x grid dimension by the factor and pass the original
    grid dimension as a trailing [dim3] argument. *)

type options = { cfactor : int  (** The [_CFACTOR] knob of Fig. 6. *) }

type site_report = {
  sr_parent : string;
  sr_child : string;
  sr_transformed : bool;
  sr_reason : string;
}

type result = { prog : Minicu.Ast.program; reports : site_report list }

(** [transform ?opts prog] coarsens every dynamically-launched kernel and
    rewrites all of its launch sites. Default factor is 8. *)
val transform : ?opts:options -> Minicu.Ast.program -> result
