(** The transformation-equivalence oracle.

    The paper's central correctness claim (Sec. VI) is that thresholding,
    coarsening and aggregation are semantics-preserving and compose in any
    combination. The oracle operationalizes that claim for a generated
    {!Gen.case}:

    {b Equivalence definition.} For every compiled variant [V] and simulator
    configuration [S]:

    - {e memory}: the driver-allocated device buffers after running [V]
      under [S] are bit-identical to the untransformed baseline run under
      [S] (snapshotted with {!Gpusim.Device.dump_memory}; compiler-inserted
      allocations such as aggregation buffers are excluded);
    - {e launch metrics}: no launch is serialized unless thresholding ran; a
      variant never issues {e more} device-side launches than the baseline;
      thresholding alone conserves launches ([serialized + issued =
      baseline issued]); coarsening alone preserves the issued count
      exactly.

    A variant that raises during compilation or execution of a program the
    baseline runs cleanly is also a failure (the simulator doubles as a
    memory checker, so a transformed out-of-bounds access surfaces here).

    {b Domain safety.} [check] builds a fresh {!Gpusim.Device.t} (hence
    fresh memory and metrics) per variant × configuration run and touches
    no shared mutable state — [sim_configs] and variant lists are
    immutable after construction. Concurrent [check] calls on distinct
    cases from distinct domains are therefore safe; [dpfuzz -j] relies on
    this. *)

open Minicu

(** A compiled program variant: transformed source plus the
    runtime-allocated trailing parameters its kernels expect — in the
    simulator runtime's form ([c_auto]) and the pass's own form
    ([c_auto_raw], which the native backend's emitter consumes). *)
type compiled = {
  c_prog : Ast.program;
  c_auto : (string * Gpusim.Device.auto_param list) list;
  c_auto_raw : (string * Dpopt.Aggregation.auto_param list) list;
}

(** A program transformer under test. [v_opts] is the pipeline combination
    when the variant is an honest pipeline run, [None] for custom (e.g.
    deliberately broken) compilers; the opts-specific launch-metric
    invariants are only asserted when it is known. *)
type variant = {
  v_label : string;
  v_opts : Dpopt.Pipeline.options option;
  v_compile : Ast.program -> compiled;
}

(* The adapter from the aggregation pass's allocation specs to the
   runtime's (same as Benchmarks.Bench_common.to_device_auto, duplicated so
   difftest does not pull the benchmark suite in). *)
let to_device_auto (aps : (string * Dpopt.Aggregation.auto_param list) list) :
    (string * Gpusim.Device.auto_param list) list =
  List.map
    (fun (k, l) ->
      ( k,
        List.map
          (fun (ap : Dpopt.Aggregation.auto_param) ->
            {
              Gpusim.Device.ap_name = ap.ap_name;
              ap_elems =
                (fun ~grid:(gx, gy, gz) ~block:(bx, by, bz) ->
                  ap.ap_elems ~grid_blocks:(gx * gy * gz)
                    ~block_threads:(bx * by * bz));
            })
          l ))
    aps

(** [pipeline_variant label opts] — an honest pipeline run at [opts]. *)
let pipeline_variant (label, opts) : variant =
  {
    v_label = label;
    v_opts = Some opts;
    v_compile =
      (fun prog ->
        let r = Dpopt.Pipeline.run ~opts prog in
        {
          c_prog = r.prog;
          c_auto = to_device_auto r.auto_params;
          c_auto_raw = r.auto_params;
        });
  }

(** The default variant set: the 2^3 pass combinations at small knob values
    (so thresholding actually serializes some sites and keeps others), plus
    extra aggregation granularities beyond the block default. [with_*]
    toggles restrict which passes participate (the [dpfuzz --passes]
    flag). *)
let default_variants ?(threshold = 9) ?(cfactor = 3)
    ?(with_thresholding = true) ?(with_coarsening = true)
    ?(with_aggregation = true) () : variant list =
  let base =
    Dpopt.Pipeline.enumerate ~threshold ~cfactor
      ~granularity:Dpopt.Aggregation.Block ~with_thresholding
      ~with_coarsening ~with_aggregation ()
  in
  let mk = Dpopt.Pipeline.make in
  let extra =
    if not with_aggregation then []
    else
      [
        ("CDP+A[warp]", mk ~granularity:Dpopt.Aggregation.Warp ());
        ("CDP+A[mb2]", mk ~granularity:(Dpopt.Aggregation.Multi_block 2) ());
        ("CDP+A[grid]", mk ~granularity:Dpopt.Aggregation.Grid ());
        ("CDP+A[block,agg_th3]",
         mk ~granularity:Dpopt.Aggregation.Block ~agg_threshold:3 ());
      ]
      @
      if with_thresholding && with_coarsening then
        [
          ("CDP+T+C+A[mb3]",
           mk ~threshold:17 ~cfactor:4
             ~granularity:(Dpopt.Aggregation.Multi_block 3) ());
        ]
      else []
  in
  List.map pipeline_variant (base @ extra)

(** {1 Deliberately broken variants}

    Used by the oracle's own sanity tests and [dpfuzz --inject-bug]: a
    miscompiling pass the oracle {e must} catch and shrink. *)

(** Coarsening that drops the remainder iterations of the grid-stride
    coarsening loop: each coarsened block only executes its {e first}
    original block's work, so whenever the original grid has more blocks
    than the coarsened one, the tail blocks' elements are silently never
    processed. *)
let broken_coarsening ?(cfactor = 2) () : variant =
  let opts = Dpopt.Pipeline.make ~cfactor () in
  let break_stmt s =
    match s.Ast.sdesc with
    | Ast.For
        ( init,
          Some (Ast.Binop (Ast.Lt, Ast.Var bx, Ast.Member (Ast.Var _, "x"))),
          (Some step as stepo),
          body )
      when (match step.Ast.sdesc with
           | Ast.Assign
               ( Ast.Var bx',
                 Ast.Binop
                   (Ast.Add, Ast.Var bx'', Ast.Member (Ast.Var "gridDim", "x"))
               ) ->
               bx' = bx && bx'' = bx
           | _ -> false) ->
        (* run the loop exactly once: bx starts at blockIdx.x and the first
           stride always exceeds blockIdx.x + 1 *)
        [
          {
            s with
            Ast.sdesc =
              Ast.For
                ( init,
                  Some
                    (Ast.Binop
                       ( Ast.Lt,
                         Ast.Var bx,
                         Ast.Binop
                           ( Ast.Add,
                             Ast.Member (Ast.Var "blockIdx", "x"),
                             Ast.Int_lit 1 ) )),
                  stepo,
                  body );
          };
        ]
    | _ -> [ s ]
  in
  {
    v_label = Fmt.str "CDP+C%d[broken: drops remainder iterations]" cfactor;
    v_opts = None;
    v_compile =
      (fun prog ->
        let r = Dpopt.Pipeline.run ~opts prog in
        let prog =
          List.map
            (fun (f : Ast.func) ->
              { f with f_body = Ast_util.map_stmts ~stmt:break_stmt f.f_body })
            r.prog
        in
        {
          c_prog = prog;
          c_auto = to_device_auto r.auto_params;
          c_auto_raw = r.auto_params;
        });
  }

(** A memory-neutral miscompile only the sanitizer can see: every kernel
    gains a prologue in which all threads of the block store their own id
    to the same [__shared__] scratch cell with no ordering barrier.
    Driver buffers and launch metrics are untouched, so the plain oracle
    passes this variant; [check ~sanitize:true] must catch the
    write-write race (and shrink the case). *)
let racy_injection () : variant =
  let prologue =
    [
      Ast.stmt (Ast.Decl_shared (Ast.TInt, "dpfuzz_scratch", Ast.Int_lit 1));
      Ast.stmt
        (Ast.Assign
           ( Ast.Index (Ast.Var "dpfuzz_scratch", Ast.Int_lit 0),
             Ast.Member (Ast.Var "threadIdx", "x") ));
    ]
  in
  {
    v_label = "CDP[racy: unsynchronized shared scratch]";
    v_opts = Some Dpopt.Pipeline.none;
    v_compile =
      (fun prog ->
        let r = Dpopt.Pipeline.run ~opts:Dpopt.Pipeline.none prog in
        let prog =
          List.map
            (fun (f : Ast.func) ->
              if f.f_kind <> Ast.Global then f
              else { f with f_body = prologue @ f.f_body })
            r.prog
        in
        {
          c_prog = prog;
          c_auto = to_device_auto r.auto_params;
          c_auto_raw = r.auto_params;
        });
  }

(** The cross-{e block} sibling of {!racy_injection}, for the native
    backend: every kernel that takes the driver's [acc] accumulator gains
    a prologue loop of {e non-atomic} read-modify-write increments on
    [acc[3]]. The simulator's deterministic scheduler produces one
    reproducible count every run; under the native backend's true domain
    parallelism the lost-update count varies from run to run, so repeated
    native executions diverge — the effect [check ~native:true] and
    [dpfuzz --backend native] exist to expose. ({!racy_injection}'s
    intra-block shared-scratch race stays {e deterministic} natively,
    because a block's threads are cooperative fibers run in thread-id
    order between barriers; only cross-block contention exercises real
    parallelism.) *)
let racy_global_injection ?(iters = 400) () : variant =
  let i = "dpfuzz_racy_i" in
  let acc3 = Ast.Index (Ast.Var "acc", Ast.Int_lit 3) in
  let prologue =
    [
      Ast.stmt
        (Ast.For
           ( Some (Ast.stmt (Ast.Decl (Ast.TInt, i, Some (Ast.Int_lit 0)))),
             Some (Ast.Binop (Ast.Lt, Ast.Var i, Ast.Int_lit iters)),
             Some
               (Ast.stmt
                  (Ast.Assign
                     (Ast.Var i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int_lit 1)))),
             [
               Ast.stmt
                 (Ast.Assign (acc3, Ast.Binop (Ast.Add, acc3, Ast.Int_lit 1)));
             ] ));
    ]
  in
  let takes_acc (f : Ast.func) =
    List.exists (fun (p : Ast.param) -> p.Ast.p_name = "acc") f.f_params
  in
  {
    v_label = "CDP[racy: cross-block unsynchronized global RMW]";
    v_opts = Some Dpopt.Pipeline.none;
    v_compile =
      (fun prog ->
        let r = Dpopt.Pipeline.run ~opts:Dpopt.Pipeline.none prog in
        let prog =
          List.map
            (fun (f : Ast.func) ->
              if f.f_kind <> Ast.Global || not (takes_acc f) then f
              else { f with f_body = prologue @ f.f_body })
            r.prog
        in
        {
          c_prog = prog;
          c_auto = to_device_auto r.auto_params;
          c_auto_raw = r.auto_params;
        });
  }

(** {1 Simulator configurations} *)

(** Deterministic device models the oracle replays each variant under. The
    simulator is a deterministic discrete-event machine, so any output
    difference across configurations of the {e same} program would itself
    be a bug; the oracle compares each variant against the baseline under
    the same configuration. *)
let sim_configs : (string * Gpusim.Config.t) list =
  [
    ("unit", Gpusim.Config.test_config);
    ("volta", Gpusim.Config.default);
    ( "one-sm",
      { Gpusim.Config.test_config with num_sms = 1; sm_warp_parallelism = 1 }
    );
  ]

(** {1 Execution engines}

    The engine axis of {!check}: the baseline runs under the {e first}
    engine in the list, every variant runs under {e every} engine, and all
    runs must agree. With [all_engines] that is a cross-engine
    differential test — the identity variant under the bytecode engine is
    compared bit-for-bit against the closure-engine baseline, so an
    engine-level miscompile is caught even when both engines transform
    consistently ([dpfuzz --engine=both]). *)

let closure_engine = ("closure", Gpusim.Config.Closure)
let bytecode_engine = ("bytecode", Gpusim.Config.Bytecode)
let all_engines = [ closure_engine; bytecode_engine ]

(** {1 Running and comparing} *)

(** What the oracle observes from one run. *)
type observation = {
  obs_mem : Gpusim.Value.t array list;  (** Driver buffers, bit-level. *)
  obs_device_launches : int;
  obs_host_launches : int;
  obs_serialized : int;
  obs_races : string list;
      (** Dynamic race reports; only populated when the simulator runs
          with {!Gpusim.Config.t.check} set (the oracle's sanitize mode). *)
}

(** [run ~cfg compiled case] — load, drive and observe one variant. The
    driver allocates the workload buffers first (so their ids are dense
    from 0), maps the parent's leading parameters by name, and snapshots
    exactly the driver-allocated buffers afterwards. May raise. *)
let run ~cfg (c : compiled) (case : Gen.case) : observation =
  let dev = Gpusim.Device.create ~cfg () in
  Gpusim.Device.load_program dev c.c_prog ~auto_params:c.c_auto;
  let nv = Array.length case.degs in
  let rows = Gen.rows_of case in
  let d_rows = Gpusim.Device.alloc_ints dev rows in
  let d_data = Gpusim.Device.alloc_ints dev (Gen.data_of case) in
  let d_acc = Gpusim.Device.alloc_int_zeros dev 4 in
  let user_buffers = Gpusim.Device.buffer_count dev in
  let parent = Ast.find_func_exn c.c_prog "parent" in
  let args =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_name with
        | "rows" -> Some (Gpusim.Value.Ptr d_rows)
        | "data" -> Some (Gpusim.Value.Ptr d_data)
        | "acc" -> Some (Gpusim.Value.Ptr d_acc)
        | "nv" -> Some (Gpusim.Value.Int nv)
        | _ -> None (* compiler-appended parameters: runtime-allocated *))
      parent.f_params
  in
  let wide = List.exists (fun (p : Ast.param) -> p.p_name = "nv") parent.f_params in
  let grid = if wide then ((nv + 31) / 32, 1, 1) else (1, 1, 1) in
  let block = if wide then (32, 1, 1) else (1, 1, 1) in
  Gpusim.Device.launch dev ~kernel:"parent" ~grid ~block ~args;
  ignore (Gpusim.Device.sync dev);
  let m = Gpusim.Device.metrics dev in
  {
    obs_mem = Gpusim.Device.dump_memory dev ~first:user_buffers;
    obs_device_launches = m.device_launches;
    obs_host_launches = m.host_launches;
    obs_serialized = m.serialized_launches;
    obs_races = m.race_reports;
  }

(* First bit-level difference between two memory snapshots, if any. *)
let mem_diff (base : Gpusim.Value.t array list) (got : Gpusim.Value.t array list) =
  let rec go i bs gs =
    match (bs, gs) with
    | [], [] -> None
    | b :: bs, g :: gs ->
        if Array.length b <> Array.length g then
          Some (Fmt.str "buffer %d: size %d vs %d" i (Array.length b)
                  (Array.length g))
        else (
          match
            Array.to_seq (Array.mapi (fun j x -> (j, x)) b)
            |> Seq.filter (fun (j, x) -> g.(j) <> x)
            |> Seq.uncons
          with
          | Some ((j, x), _) ->
              Some
                (Fmt.str "buffer %d element %d: baseline %a, got %a" i j
                   Gpusim.Value.pp x Gpusim.Value.pp g.(j))
          | None -> go (i + 1) bs gs)
    | _ ->
        Some
          (Fmt.str "driver buffer count differs: %d vs %d" (List.length base)
             (List.length got))
  in
  go 0 base got

(* Launch-metric invariants of a variant against the baseline. *)
let metric_diff ~(v : variant) ~(base : observation) (got : observation) =
  let t_on, c_on, a_on =
    match v.v_opts with
    | None -> (true, true, true) (* unknown compiler: only universal checks *)
    | Some o ->
        (o.thresholding <> None, o.coarsening <> None, o.aggregation <> None)
  in
  if (not t_on) && got.obs_serialized <> 0 then
    Some
      (Fmt.str "serialized %d launches with thresholding off"
         got.obs_serialized)
  else if got.obs_device_launches > base.obs_device_launches then
    Some
      (Fmt.str "issued more device launches than baseline: %d > %d"
         got.obs_device_launches base.obs_device_launches)
  else
    match v.v_opts with
    | Some _ when t_on && (not c_on) && not a_on ->
        if
          got.obs_serialized + got.obs_device_launches
          <> base.obs_device_launches
        then
          Some
            (Fmt.str
               "thresholding does not conserve launches: %d serialized + %d \
                issued <> %d baseline"
               got.obs_serialized got.obs_device_launches
               base.obs_device_launches)
        else None
    | Some _ when c_on && (not t_on) && not a_on ->
        if got.obs_device_launches <> base.obs_device_launches then
          Some
            (Fmt.str "coarsening changed the launch count: %d <> %d"
               got.obs_device_launches base.obs_device_launches)
        else None
    | _ -> None

(** {1 The native axis}

    With [check ~native:true] every variant inside the native backend's
    supported subset is additionally transpiled to parallel OCaml
    ({!Native.Emit}), compiled and executed on host domains
    ({!Native.Build}), and its memory dump is required to be
    byte-identical to the simulated baseline's. Launch metrics are
    exempt — the native runtime has no cycle model — so the axis checks
    {e memory equivalence only}. Variants the emitter rejects (warp/grid
    aggregation granularities, [__threadfence]) are skipped: rejection is
    pinned separately by the negative tests. *)

(* The oracle's host driver (see [run]) as a backend-neutral spec, so the
   emitted OCaml driver performs the same allocations and launch. *)
let native_host (prog : Ast.program) (case : Gen.case) : Native.Hostspec.t =
  let nv = Array.length case.degs in
  let parent = Ast.find_func_exn prog "parent" in
  let args =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_name with
        | "rows" -> Some (Native.Hostspec.A_buf 0)
        | "data" -> Some (Native.Hostspec.A_buf 1)
        | "acc" -> Some (Native.Hostspec.A_buf 2)
        | "nv" -> Some (Native.Hostspec.A_int nv)
        | _ -> None)
      parent.f_params
  in
  let wide =
    List.exists (fun (p : Ast.param) -> p.p_name = "nv") parent.f_params
  in
  let grid = if wide then ((nv + 31) / 32, 1, 1) else (1, 1, 1) in
  let block = if wide then (32, 1, 1) else (1, 1, 1) in
  {
    Native.Hostspec.ops =
      [
        Native.Hostspec.Alloc_ints (Gen.rows_of case);
        Native.Hostspec.Alloc_ints (Gen.data_of case);
        Native.Hostspec.Alloc_int_zeros 4;
        Native.Hostspec.Launch { kernel = "parent"; grid; block; args };
        Native.Hostspec.Sync;
      ];
  }

(** {1 The check} *)

type failure = {
  f_variant : string;
  f_config : string;
  f_engine : string option;
      (** [None] for engine-independent failures (static sanitizer). *)
  f_reason : string;
}

let pp_failure ppf f =
  Fmt.pf ppf "variant %s under config %s%a: %s" f.f_variant f.f_config
    Fmt.(option (fmt ", engine %s"))
    f.f_engine f.f_reason

(** Outcome of checking one case. [Invalid] means the {e generator} (or a
    shrinking step) produced a program the baseline itself cannot compile
    or run — not a transformation bug; shrinkers treat it as "reject this
    candidate". *)
type outcome = Pass | Fail of failure | Invalid of string

let baseline_variant =
  pipeline_variant (Dpopt.Pipeline.label Dpopt.Pipeline.none, Dpopt.Pipeline.none)

(* One native executable bundling the baseline and every emitter-supported
   variant; each dump section must equal the simulated baseline's dump.
   Called only after the simulator-side checks passed, so the baseline is
   known to compile and run. *)
let check_native ~(compiled : (variant * (compiled, exn) result) list)
    ~(base_compiled : compiled) (case : Gen.case) : failure option =
  match Native.Emit.supported base_compiled.c_prog with
  | Some _ -> None (* the case itself is outside the native subset *)
  | None -> (
      let host = native_host base_compiled.c_prog case in
      let units =
        List.filter_map
          (fun (v, c) ->
            match c with
            | Error _ -> None
            | Ok c when Native.Emit.supported c.c_prog <> None -> None
            | Ok c ->
                Some
                  ( v,
                    {
                      Native.Emit.vu_label = v.v_label;
                      vu_prog = c.c_prog;
                      vu_autos = c.c_auto_raw;
                    } ))
          ((baseline_variant, Ok base_compiled) :: compiled)
      in
      let fail v_label reason =
        Some
          {
            f_variant = v_label;
            f_config = "(native)";
            f_engine = Some "native";
            f_reason = reason;
          }
      in
      match
        Native.Build.compile_and_run
          ~source:(Native.Emit.unit_source ~variants:(List.map snd units) ~host)
          ()
      with
      | exception exn ->
          fail (List.hd units |> fun (v, _) -> v.v_label)
            (Fmt.str "native build/run raised: %s" (Printexc.to_string exn))
      | out ->
          let secs = Native.Build.sections out in
          let sim_dump =
            Native.Hostspec.render_dump
              (Native.Hostspec.run_sim ~cfg:Gpusim.Config.test_config
                 base_compiled.c_prog ~auto_params:base_compiled.c_auto_raw
                 host)
          in
          List.find_map
            (fun ((v : variant), (u : Native.Emit.variant_unit)) ->
              match List.assoc_opt u.vu_label secs with
              | None -> fail v.v_label "native run produced no dump section"
              | Some native when String.equal native sim_dump -> None
              | Some native ->
                  fail v.v_label
                    (Fmt.str
                       "native memory differs from simulated baseline:@.-- \
                        native --@.%s-- simulated --@.%s"
                       native sim_dump))
            units)

(** [check ?sanitize ?engines ?variants ?configs case] — compile every
    variant once, then for each configuration run the baseline (under the
    first engine of [engines]) and every variant under every engine, and
    compare. Returns the first failure found.

    With [~sanitize:true] (dpfuzz's [--check] mode) the oracle also
    requires every program — the fuzzed input and every variant's output
    — to be sanitizer-clean: no static divergence/bounds errors
    ({!Analysis.Static}) and no dynamic races (every run replays with
    {!Gpusim.Config.t.check} set). A racy or divergent variant fails even
    when its device memory is bit-identical to the baseline.

    With [~native:true] (dpfuzz's [--backend native]) each supported
    variant is also transpiled, compiled and run as parallel OCaml and
    its memory dump compared against the simulated baseline — slow (a
    nested dune build per case) but a true-parallelism oracle. *)
let check ?(sanitize = false) ?(native = false)
    ?(engines = [ closure_engine ]) ?(variants = default_variants ())
    ?(configs = sim_configs) (case : Gen.case) : outcome =
  let engines = match engines with [] -> [ closure_engine ] | l -> l in
  let base_engine_label, base_engine = List.hd engines in
  let configs =
    if sanitize then
      List.map
        (fun (n, c) -> (n, { c with Gpusim.Config.check = true }))
        configs
    else configs
  in
  match
    let prog = Gen.build case in
    Typecheck.check prog;
    (* the reproducer is reported as source text, so the program must also
       survive a print/parse round trip *)
    Parser.program (Pretty.program prog)
  with
  | exception exn -> Invalid (Printexc.to_string exn)
  | prog -> (
      match baseline_variant.v_compile prog with
      | exception exn -> Invalid (Printexc.to_string exn)
      | base_compiled -> (
          let compiled =
            List.map
              (fun v ->
                (v, try Ok (v.v_compile prog) with exn -> Error exn))
              variants
          in
          (* Sanitize mode, static half: the fuzzed program and every
             variant's output must be free of divergence/bounds errors.
             Config-independent, so checked once, up front. *)
          let static_fail =
            if not sanitize then None
            else
              let first_error p =
                match Analysis.Static.(errors (check_program p)) with
                | [] -> None
                | d :: _ -> Some (Fmt.str "%a" Analysis.Static.pp_diag d)
              in
              match first_error prog with
              | Some d ->
                  Some
                    {
                      f_variant = baseline_variant.v_label;
                      f_config = "(static)";
                      f_engine = None;
                      f_reason = "static sanitizer: " ^ d;
                    }
              | None ->
                  List.find_map
                    (fun (v, c) ->
                      match c with
                      | Error _ -> None (* reported as a compile failure below *)
                      | Ok c ->
                          Option.map
                            (fun d ->
                              {
                                f_variant = v.v_label;
                                f_config = "(static)";
                                f_engine = None;
                                f_reason = "static sanitizer: " ^ d;
                              })
                            (first_error c.c_prog))
                    compiled
          in
          let check_config (cfg_label, cfg) =
            match
              run
                ~cfg:{ cfg with Gpusim.Config.engine = base_engine }
                base_compiled case
            with
            | exception exn ->
                Some (`Invalid (Fmt.str "baseline run raised under %s: %s"
                                  cfg_label (Printexc.to_string exn)))
            | base when base.obs_races <> [] ->
                Some
                  (`Fail
                     {
                       f_variant = baseline_variant.v_label;
                       f_config = cfg_label;
                       f_engine = Some base_engine_label;
                       f_reason = "race detected: " ^ List.hd base.obs_races;
                     })
            | base ->
                List.find_map
                  (fun (v, c) ->
                    match c with
                    | Error exn ->
                        Some
                          (`Fail
                             {
                               f_variant = v.v_label;
                               f_config = cfg_label;
                               f_engine = None;
                               f_reason =
                                 Fmt.str "compilation raised: %s"
                                   (Printexc.to_string exn);
                             })
                    | Ok c ->
                        List.find_map
                          (fun (engine_label, engine) ->
                            let fail reason =
                              Some
                                (`Fail
                                   {
                                     f_variant = v.v_label;
                                     f_config = cfg_label;
                                     f_engine = Some engine_label;
                                     f_reason = reason;
                                   })
                            in
                            match
                              run ~cfg:{ cfg with Gpusim.Config.engine } c case
                            with
                            | exception exn ->
                                fail
                                  (Fmt.str "execution raised: %s"
                                     (Printexc.to_string exn))
                            | got -> (
                                match mem_diff base.obs_mem got.obs_mem with
                                | Some d -> fail ("device memory differs: " ^ d)
                                | None -> (
                                    match metric_diff ~v ~base got with
                                    | Some d -> fail ("launch metrics: " ^ d)
                                    | None ->
                                        if got.obs_races <> [] then
                                          fail
                                            ("race detected: "
                                            ^ List.hd got.obs_races)
                                        else None)))
                          engines)
                  compiled
          in
          match static_fail with
          | Some f -> Fail f
          | None -> (
              match List.find_map check_config configs with
              | Some (`Fail f) -> Fail f
              | Some (`Invalid msg) -> Invalid msg
              | None -> (
                  if not native then Pass
                  else
                    match check_native ~compiled ~base_compiled case with
                    | Some f -> Fail f
                    | None -> Pass))))
