(** Random nested-parallel program generation for differential testing.

    Promoted and generalized out of [test/test_random_programs.ml]: random
    child-kernel bodies, the paper's Fig. 4 ceiling-division launch idioms,
    random grid/block shapes, and random workload data, packaged as a
    {!case} value that is {e fully determined by a single integer seed}
    ({!case_of_seed}). A failing input is therefore reported as its seed and
    replayed exactly with [dpfuzz --seed N --iters 1].

    Generated programs follow the paper's canonical nesting: a [parent]
    kernel walks a CSR-like [rows] array and launches a [child] grid per
    nonempty row. The child's per-thread work is random but race-safe (each
    thread owns one [data] cell; the only shared updates are commutative
    [atomicAdd]s), so every pass combination and simulator configuration
    must reproduce the output bit-for-bit. *)

open Minicu
open Minicu.Ast

(** A generated test input. [child_work] may reference the in-scope names
    [i] (thread's element index), [k] (scalar parameter), [base], [data]
    and [acc]. *)
type case = {
  seed : int;
      (** Generative seed, for replay; [-1] once the case has been
          structurally shrunk (a shrunk case is no longer seed-derivable). *)
  child_work : stmt list;  (** Per-thread child body (guarded by [i < n]). *)
  block : int;  (** Child block dimension. *)
  idiom : int;  (** Index into {!grid_idioms}. *)
  degs : int array;  (** Per-parent child-grid thread counts. *)
  data_mod : int;  (** Input data pattern: [data.(i) = i mod data_mod]. *)
}

(* ---- random child-body generator ----------------------------------- *)

(* Integer expressions over the in-scope names. Division-free, so no
   divide-by-zero; multiplication kept shallow so overflow cannot differ
   between variants (OCaml ints don't trap anyway). *)
let gen_ibody_expr =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n = 0 then
              oneof
                [
                  map (fun c -> Int_lit (c mod 7)) small_int;
                  return (Var "i");
                  return (Var "k");
                  return (Index (Var "data", Binop (Add, Var "base", Var "i")));
                ]
            else
              let sub = self (n / 2) in
              oneof
                [
                  map2 (fun a b -> Binop (Add, a, b)) sub sub;
                  map2 (fun a b -> Binop (Sub, a, b)) sub sub;
                  map2 (fun a b -> Call ("min", [ a; b ])) sub sub;
                  map2 (fun a b -> Call ("max", [ a; b ])) sub sub;
                  map2 (fun a b -> Binop (Mul, a, Binop (Mod, b, Int_lit 5))) sub sub;
                  map3
                    (fun c a b -> Ternary (Binop (Lt, c, Int_lit 3), a, b))
                    sub sub sub;
                ])
          (min n 6)))

(* A child body: a couple of updates to this thread's element plus an
   optional commutative accumulator update (safe under any interleaving). *)
let gen_child_work =
  QCheck.Gen.(
    let cell = Index (Var "data", Binop (Add, Var "base", Var "i")) in
    let* e1 = gen_ibody_expr in
    let* e2 = gen_ibody_expr in
    let* use_loop = bool in
    let* use_acc = frequency [ (3, return true); (1, return false) ] in
    let* acc_e = gen_ibody_expr in
    let updates =
      if use_loop then
        [
          stmt
            (For
               ( Some (stmt (Decl (TInt, "r", Some (Int_lit 0)))),
                 Some (Binop (Lt, Var "r", Int_lit 3)),
                 Some (stmt (Assign (Var "r", Binop (Add, Var "r", Int_lit 1)))),
                 [ stmt (Assign (cell, Binop (Add, cell, e1))) ] ));
          stmt (Assign (cell, Binop (Add, cell, e2)));
        ]
      else
        [
          stmt (Assign (cell, e1));
          stmt (Assign (cell, Binop (Add, cell, e2)));
        ]
    in
    let acc_update =
      if use_acc then
        [
          stmt
            (Expr_stmt
               (Call
                  ( "atomicAdd",
                    [
                      Addr_of (Index (Var "acc", Binop (Mod, Var "i", Int_lit 4)));
                      Binop (Mod, acc_e, Int_lit 1000);
                    ] )));
        ]
      else []
    in
    return (updates @ acc_update))

(** The Fig. 4 ceiling-division idioms over thread count [deg] and block
    size [b], chosen by {!case.idiom}. *)
let grid_idioms b =
  [
    Binop (Add, Binop (Div, Binop (Sub, Var "deg", Int_lit 1), Int_lit b), Int_lit 1);
    Binop (Div, Binop (Add, Var "deg", Int_lit (b - 1)), Int_lit b);
    Binop
      ( Add,
        Binop (Div, Var "deg", Int_lit b),
        Ternary
          ( Binop (Eq, Binop (Mod, Var "deg", Int_lit b), Int_lit 0),
            Int_lit 0,
            Int_lit 1 ) );
    Cast
      ( TInt,
        Call ("ceil", [ Binop (Div, Cast (TFloat, Var "deg"), Int_lit b) ]) );
  ]

let num_idioms = 4

(* ---- program construction ------------------------------------------ *)

let thread_index_decl name =
  stmt
    (Decl
       ( TInt,
         name,
         Some
           (Binop
              ( Add,
                Binop
                  ( Mul,
                    Member (Var "blockIdx", "x"),
                    Member (Var "blockDim", "x") ),
                Member (Var "threadIdx", "x") )) ))

(** [uses_acc c] / [uses_k c] — does the child body reference the
    accumulator array / the scalar parameter? Unreferenced parameters are
    pruned from the built program, which keeps shrunk reproducers small. *)
let uses_acc c = Ast_util.uses_var "acc" c.child_work
let uses_k c = Ast_util.uses_var "k" c.child_work

(** A case builds to its {e simple} form — a straight-line parent with one
    literal-size launch, no CSR walk — when the workload has a single row.
    The shrinker relies on this to reach minimal reproducers. *)
let is_simple c = Array.length c.degs = 1

(** [build c] — the MiniCU program for [c]: a [child] kernel wrapping
    [c.child_work] under the canonical [i < n] guard, and a [parent] kernel
    launching it with the selected grid idiom. *)
let build (c : case) : program =
  let acc = uses_acc c and k = uses_k c in
  let child_params =
    [ { p_ty = TPtr TInt; p_name = "data" } ]
    @ (if acc then [ { p_ty = TPtr TInt; p_name = "acc" } ] else [])
    @ [ { p_ty = TInt; p_name = "base" }; { p_ty = TInt; p_name = "n" } ]
    @ if k then [ { p_ty = TInt; p_name = "k" } ] else []
  in
  let child =
    {
      f_name = "child";
      f_kind = Global;
      f_ret = TVoid;
      f_params = child_params;
      f_body =
        [
          thread_index_decl "i";
          stmt (If (Binop (Lt, Var "i", Var "n"), c.child_work, []));
        ];
      f_host_followup = None;
    }
  in
  let grid = List.nth (grid_idioms c.block) c.idiom in
  let launch_args ~base ~k_arg =
    [ Var "data" ]
    @ (if acc then [ Var "acc" ] else [])
    @ [ base; Var "deg" ]
    @ if k then [ k_arg ] else []
  in
  let parent =
    if is_simple c then
      (* single row: a straight-line parent, run with one thread *)
      {
        f_name = "parent";
        f_kind = Global;
        f_ret = TVoid;
        f_params =
          [ { p_ty = TPtr TInt; p_name = "data" } ]
          @ if acc then [ { p_ty = TPtr TInt; p_name = "acc" } ] else [];
        f_body =
          [
            stmt (Decl (TInt, "deg", Some (Int_lit c.degs.(0))));
            (* same emptiness guard as the multi-row parent: degs.(0) may
               be 0 and an empty grid is a launch error *)
            stmt
              (If
                 ( Binop (Gt, Var "deg", Int_lit 0),
                   [
                     stmt
                       (Launch
                          {
                            l_kernel = "child";
                            l_grid = grid;
                            l_block = Int_lit c.block;
                            l_args =
                              launch_args ~base:(Int_lit 0) ~k_arg:(Int_lit 0);
                          });
                   ],
                   [] ));
          ];
        f_host_followup = None;
      }
    else
      {
        f_name = "parent";
        f_kind = Global;
        f_ret = TVoid;
        f_params =
          [
            { p_ty = TPtr TInt; p_name = "rows" };
            { p_ty = TPtr TInt; p_name = "data" };
          ]
          @ (if acc then [ { p_ty = TPtr TInt; p_name = "acc" } ] else [])
          @ [ { p_ty = TInt; p_name = "nv" } ];
        f_body =
          [
            thread_index_decl "v";
            stmt
              (If
                 ( Binop (Lt, Var "v", Var "nv"),
                   [
                     stmt (Decl (TInt, "start", Some (Index (Var "rows", Var "v"))));
                     stmt
                       (Decl
                          ( TInt,
                            "deg",
                            Some
                              (Binop
                                 ( Sub,
                                   Index (Var "rows", Binop (Add, Var "v", Int_lit 1)),
                                   Var "start" )) ));
                     stmt
                       (If
                          ( Binop (Gt, Var "deg", Int_lit 0),
                            [
                              stmt
                                (Launch
                                   {
                                     l_kernel = "child";
                                     l_grid = grid;
                                     l_block = Int_lit c.block;
                                     l_args =
                                       launch_args ~base:(Var "start")
                                         ~k_arg:(Var "v");
                                   });
                            ],
                            [] ));
                   ],
                   [] ));
          ];
        f_host_followup = None;
      }
  in
  [ child; parent ]

(* ---- workload helpers ---------------------------------------------- *)

(** CSR row offsets for the case's per-parent sizes. *)
let rows_of (c : case) =
  let nv = Array.length c.degs in
  let rows = Array.make (nv + 1) 0 in
  Array.iteri (fun i d -> rows.(i + 1) <- rows.(i) + d) c.degs;
  rows

(** Input data array (always at least one element, so empty workloads still
    exercise the launch path). *)
let data_of (c : case) =
  let rows = rows_of c in
  let total = max rows.(Array.length c.degs) 1 in
  Array.init total (fun i -> i mod c.data_mod)

(* ---- the generator ------------------------------------------------- *)

let gen_params =
  QCheck.Gen.(
    let* child_work = gen_child_work in
    let* block = oneofl [ 4; 8; 16; 32; 64 ] in
    let* idiom = int_bound (num_idioms - 1) in
    let* data_mod = int_range 2 23 in
    let* degs = array_size (int_range 1 20) (int_bound 40) in
    return { seed = -1; child_work; block; idiom; degs; data_mod })

(** [case_of_seed s] — the case deterministically derived from seed [s].
    The same seed always yields the same case, independently of any other
    randomness in the process. *)
let case_of_seed seed =
  let rand = Random.State.make [| 0x9E3779B1; seed |] in
  let c = QCheck.Gen.generate1 ~rand gen_params in
  { c with seed }

(** QCheck generator: draws a seed, expands it. Shrinking is structural —
    see {!Shrink} — so shrunk cases carry [seed = -1]. *)
let gen_case = QCheck.Gen.map case_of_seed QCheck.Gen.(int_bound 0x3FFFFFFF)

(* ---- reporting ----------------------------------------------------- *)

let pp_case ppf c =
  Fmt.pf ppf "seed=%d block=%d idiom=%d data_mod=%d degs=%a@.%s"
    c.seed c.block c.idiom c.data_mod
    Fmt.(Dump.array int)
    c.degs
    (Pretty.program (build c))

let print_case c = Fmt.str "%a" pp_case c

(** Reproducer source text for a (typically shrunk) case. *)
let source c = Pretty.program (build c)

(** Non-empty source lines of the built program — the "reproducer size"
    reported by the fuzzer and bounded by the oracle's own tests. *)
let source_lines c =
  String.split_on_char '\n' (source c)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
