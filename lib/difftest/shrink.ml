(** Greedy counterexample minimization.

    Given a failing {!Gen.case} and a [still_fails] predicate (typically
    {!Oracle.check} narrowed to the failing variant and configuration), the
    shrinker repeatedly applies the smallest-first mutation whose result
    still fails, until no mutation helps. Moves:

    - shrink the workload: halve the [degs] array, drop one row, halve a
      row's size;
    - canonicalize the launch shape: smallest grid idiom, smallest block;
    - shrink the child body structurally via {!Minicu.Ast_util.shrink_stmts}
      (drop statements, unwrap compounds, replace expressions by
      subexpressions or literals).

    Structural candidates may be ill-typed or ill-behaved; [still_fails]
    rejects them (an {!Oracle.check} returning [Invalid] is not a failing
    case), so the shrinker only ever keeps valid failing programs. Every
    kept step strictly decreases {!case_size}, so termination is
    guaranteed. *)

open Minicu

(** Size measure minimized by the shrinker: AST nodes of the built program
    plus the workload knobs (so dropping rows, shrinking the block or
    simplifying the data pattern all count as progress even when the
    program text is unchanged). Every candidate produced by {!candidates}
    is strictly smaller under this measure. *)
let case_size (c : Gen.case) =
  Ast_util.program_size (Gen.build c)
  + Array.length c.degs
  + Array.fold_left (fun n d -> n + d) 0 c.degs
  + c.block + c.data_mod

(* Array helpers (QCheck.Shrink covers lists; we need arrays). *)
let array_drop_one a =
  List.init (Array.length a) (fun i ->
      Array.init
        (Array.length a - 1)
        (fun j -> if j < i then a.(j) else a.(j + 1)))

let array_halves a =
  let n = Array.length a in
  if n <= 1 then [] else [ Array.sub a 0 (n / 2); Array.sub a (n / 2) (n - n / 2) ]

let array_halve_elem a =
  List.init (Array.length a) (fun i ->
      let b = Array.copy a in
      b.(i) <- b.(i) / 2;
      b)
  |> List.filter (fun b -> b <> a)

(** [candidates c] — one-step mutations of [c], roughly simplest-result
    first. All structural moves reset [seed] to [-1]: a shrunk case is no
    longer derivable from its seed. *)
let candidates (c : Gen.case) : Gen.case list =
  let mut f = { (f c) with Gen.seed = -1 } in
  let degs_moves =
    List.map
      (fun degs -> mut (fun c -> { c with degs }))
      (array_halves c.degs
      (* never drop to zero rows: a single-row case builds to the small
         straight-line form, an empty one back to the larger CSR parent *)
      @ (if Array.length c.degs >= 2 && Array.length c.degs <= 8 then
           array_drop_one c.degs
         else [])
      @ array_halve_elem c.degs)
  in
  let shape_moves =
    (* idiom 1, [(deg + b-1) / b], is the smallest of the four idioms in
       AST nodes, so canonicalizing to it never grows the case *)
    (if c.idiom <> 1 then [ mut (fun c -> { c with idiom = 1 }) ] else [])
    @
    if c.block > 4 then [ mut (fun c -> { c with block = 4 }) ] else []
  in
  let data_moves =
    if c.data_mod <> 2 then [ mut (fun c -> { c with data_mod = 2 }) ] else []
  in
  let body_moves =
    List.map
      (fun w -> mut (fun c -> { c with child_work = w }))
      (Ast_util.shrink_stmts c.child_work)
  in
  degs_moves @ shape_moves @ data_moves @ body_moves

(** [minimize ~still_fails c] — greedy fixpoint minimization of a failing
    case. [still_fails] must be true for [c] itself; the result also
    satisfies it. [max_steps] bounds the number of {e accepted} shrinking
    steps (each step tries at most one full candidate list). *)
let minimize ?(max_steps = 500) ~still_fails (c : Gen.case) : Gen.case =
  let rec go steps c =
    if steps <= 0 then c
    else
      let size = case_size c in
      match
        List.find_opt
          (fun c' -> case_size c' < size && still_fails c')
          (candidates c)
      with
      | Some c' -> go (steps - 1) c'
      | None -> c
  in
  go max_steps c

(** QCheck shrinker over cases, for property tests built on {!Gen.gen_case}
    ([QCheck.make ~shrink:Shrink.qcheck_shrink ...]). Candidates that no
    longer fail — including ill-typed ones — are rejected by QCheck
    re-running the property. *)
let qcheck_shrink (c : Gen.case) : Gen.case QCheck.Iter.t =
 fun yield -> List.iter yield (candidates c)
