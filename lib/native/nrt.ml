(* Nrt — the native runtime transpiled MiniCU programs link against.

   This module is compiled twice: once into the [native] library (so the
   test suite can drive it directly), and once copied verbatim into the
   scratch project of every emitted program (see Build). It must therefore
   depend on the OCaml standard library ONLY — no Fmt, no Logs, nothing
   from this repository.

   Execution model (mirrors GpuSim semantics exactly, scheduling aside):
   - values, memory, pointer arithmetic, coercions, and every operator
     replicate lib/gpusim {Value,Memory,Compile} bit for bit;
   - threads of one block are cooperative fibers advanced in thread-id
     order, suspending at [__syncthreads] via an effect — the same
     barrier-epoch algorithm as Gpusim.Exec, so intra-block interleaving
     (including paired-atomic scan idioms) is identical to the simulator;
   - blocks run truly in parallel on a small domain pool; global-memory
     loads/stores are deliberately unsynchronized (racy programs may
     diverge run to run — that is the point of the backend), atomics take
     a global lock;
   - device-side child launches are collected per block and dispatched in
     issue order when the block completes, matching the simulator's
     deferred launch processing; [sync] waits for the whole launch tree.

   Not mirrored (documented in DESIGN.md §11): cost metrics, launch
   counters, the warp axis (warp collectives and [__syncwarp] are
   rejected at emission), [__threadfence] and host followups (ditto). *)

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

type ptr = { buf : int; off : int }

type v =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Dim3 of (int * int * int)
  | Ptr of ptr

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt
let fail s = raise (Runtime_error s)

let to_string = function
  | Unit -> "()"
  | Int n -> string_of_int n
  | Float f -> string_of_float f
  | Bool b -> string_of_bool b
  | Dim3 (x, y, z) -> Printf.sprintf "dim3(%d,%d,%d)" x y z
  | Ptr p -> Printf.sprintf "ptr(%d+%d)" p.buf p.off

let as_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | Float f -> int_of_float f
  | v -> error "expected an int, got %s" (to_string v)

let as_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | Bool b -> if b then 1.0 else 0.0
  | v -> error "expected a float, got %s" (to_string v)

let as_bool = function
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | v -> error "expected a bool, got %s" (to_string v)

let as_ptr = function
  | Ptr p -> p
  | v -> error "expected a pointer, got %s" (to_string v)

let as_dim3 = function
  | Dim3 (x, y, z) -> (x, y, z)
  | Int n -> (n, 1, 1)
  | Bool b -> ((if b then 1 else 0), 1, 1)
  | v -> error "expected a dim3 or int, got %s" (to_string v)

let dim3_total (x, y, z) = x * y * z
let is_float = function Float _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Operators (Gpusim.Compile.eval_binop, verbatim semantics)           *)
(* ------------------------------------------------------------------ *)

let add a b =
  match (a, b) with
  | Ptr p, v -> Ptr { p with off = p.off + as_int v }
  | v, Ptr p -> Ptr { p with off = p.off + as_int v }
  | _ ->
      if is_float a || is_float b then Float (as_float a +. as_float b)
      else Int (as_int a + as_int b)

let sub a b =
  match (a, b) with
  | Ptr p, Ptr q ->
      if p.buf <> q.buf then error "subtracting pointers into different buffers";
      Int (p.off - q.off)
  | Ptr p, v -> Ptr { p with off = p.off - as_int v }
  | _ ->
      if is_float a || is_float b then Float (as_float a -. as_float b)
      else Int (as_int a - as_int b)

let mul a b =
  if is_float a || is_float b then Float (as_float a *. as_float b)
  else Int (as_int a * as_int b)

let div a b =
  if is_float a || is_float b then Float (as_float a /. as_float b)
  else
    let d = as_int b in
    if d = 0 then error "integer division by zero";
    Int (as_int a / d)

let mod_ a b =
  let d = as_int b in
  if d = 0 then error "integer modulo by zero";
  Int (as_int a mod d)

let cmp a b =
  if is_float a || is_float b then compare (as_float a) (as_float b)
  else compare (as_int a) (as_int b)

let lt a b = Bool (cmp a b < 0)
let le a b = Bool (cmp a b <= 0)
let gt a b = Bool (cmp a b > 0)
let ge a b = Bool (cmp a b >= 0)

let eq_val a b =
  match (a, b) with
  | Ptr p, Ptr q -> p = q
  | _ -> if is_float a || is_float b then as_float a = as_float b
         else as_int a = as_int b

let eq a b = Bool (eq_val a b)
let ne a b = Bool (not (eq_val a b))
let band a b = Int (as_int a land as_int b)
let bor a b = Int (as_int a lor as_int b)
let bxor a b = Int (as_int a lxor as_int b)
let shl a b = Int (as_int a lsl as_int b)
let shr a b = Int (as_int a asr as_int b)
let neg = function Float f -> Float (-.f) | v -> Int (-as_int v)
let not_ v = Bool (not (as_bool v))

let dim3_member (x, y, z) = function
  | "x" -> x
  | "y" -> y
  | "z" -> z
  | f -> error "dim3 has no member %S" f

let member v f =
  match v with
  | Dim3 d -> Int (dim3_member d f)
  | Int n -> Int (dim3_member (n, 1, 1) f)
  | v -> error "member access %S on non-dim3 %s" f (to_string v)

(* Member assignment on a local (Compile.compile_store, Member (Var _)). *)
let set_member cur f n =
  let x', y', z' =
    match cur with
    | Dim3 d -> d
    | Int n -> (n, 1, 1)
    | Unit -> (1, 1, 1)
    | v -> error "member assignment on non-dim3 %s" (to_string v)
  in
  let n = as_int n in
  match f with
  | "x" -> Dim3 (n, y', z')
  | "y" -> Dim3 (x', n, z')
  | "z" -> Dim3 (x', y', n)
  | _ -> error "dim3 has no member %S" f

(* Numeric builtins (Compile.compile_call). *)
let min_ a b =
  if is_float a || is_float b then Float (Float.min (as_float a) (as_float b))
  else Int (min (as_int a) (as_int b))

let max_ a b =
  if is_float a || is_float b then Float (Float.max (as_float a) (as_float b))
  else Int (max (as_int a) (as_int b))

let abs_ = function Float x -> Float (Float.abs x) | v -> Int (abs (as_int v))
let fabs v = Float (Float.abs (as_float v))
let ceil_ v = Float (Float.ceil (as_float v))
let floor_ v = Float (Float.floor (as_float v))
let sqrt_ v = Float (Float.sqrt (as_float v))
let exp_ v = Float (Float.exp (as_float v))
let log_ v = Float (Float.log (as_float v))
let pow_ a b = Float (Float.pow (as_float a) (as_float b))

(* ------------------------------------------------------------------ *)
(* State: memory, kernel registry, domain pool                         *)
(* ------------------------------------------------------------------ *)

type buffer = { data : v array; mutable live : bool }

type launch_req = {
  lr_kernel : string;
  lr_grid : int * int * int;
  lr_block : int * int * int;
  lr_args : v list;
}

type state = {
  (* Memory: a growing table of buffers, dense ids in allocation order.
     The table array is re-published atomically on growth so unlocked
     readers on other domains never see a torn resize; element accesses
     themselves are deliberately plain (racy programs may race). *)
  table : buffer option array Atomic.t;
  count : int Atomic.t;
  mem_mutex : Mutex.t;
  (* One global lock serializes all atomic read-modify-writes. *)
  atomic_mutex : Mutex.t;
  kernels : (string, kernel) Hashtbl.t;
      (* Registered once before the first launch; read-only afterwards. *)
  (* Work queue of per-block tasks over a small domain pool. *)
  lock : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;  (* queued + running block tasks *)
  mutable closing : bool;
  mutable failure : exn option;  (* first block failure; raised by [sync] *)
  mutable workers : unit Domain.t list;
}

and kernel = { k_name : string; k_arity : int; k_fn : tctx -> v array -> unit }

and blk = {
  st : state;
  bidx : int * int * int;
  bdim : int * int * int;
  gdim : int * int * int;
  shared : (int, ptr) Hashtbl.t;
      (* Shared-memory buffers keyed by per-function declaration id,
         allocated by the first thread to reach the declaration. *)
  mutable launches : launch_req list;  (* reversed issue order *)
}

and tctx = { tidx : int * int * int; blk : blk }

let max_threads_per_block = 1024

(* --- memory ------------------------------------------------------- *)

let alloc st n ~init : ptr =
  if n < 0 then error "negative allocation size %d" n;
  Mutex.lock st.mem_mutex;
  let id = Atomic.get st.count in
  let tbl = Atomic.get st.table in
  let tbl =
    if id < Array.length tbl then tbl
    else begin
      let bigger = Array.make (2 * Array.length tbl) None in
      Array.blit tbl 0 bigger 0 id;
      Atomic.set st.table bigger;
      bigger
    end
  in
  tbl.(id) <- Some { data = Array.make n init; live = true };
  Atomic.set st.count (id + 1);
  Mutex.unlock st.mem_mutex;
  { buf = id; off = 0 }

let buffer_exn st id =
  if id < 0 || id >= Atomic.get st.count then error "invalid buffer id %d" id;
  match (Atomic.get st.table).(id) with
  | Some b -> b
  | None -> error "invalid buffer id %d" id

let free st (p : ptr) =
  let b = buffer_exn st p.buf in
  if not b.live then error "double free of buffer %d" p.buf;
  if p.off <> 0 then error "free of interior pointer (offset %d)" p.off;
  b.live <- false

let check_access st (p : ptr) =
  let b = buffer_exn st p.buf in
  if not b.live then error "use after free (buffer %d)" p.buf;
  if p.off < 0 || p.off >= Array.length b.data then
    error "out-of-bounds access: offset %d in buffer %d of size %d" p.off p.buf
      (Array.length b.data);
  b

let mem_load st (p : ptr) = (check_access st p).data.(p.off)
let mem_store st (p : ptr) x = (check_access st p).data.(p.off) <- x

(* --- memory ops of emitted device code ---------------------------- *)

let load (t : tctx) vp vi =
  let p = as_ptr vp in
  let i = as_int vi in
  mem_load t.blk.st { p with off = p.off + i }

let store (t : tctx) vp vi x =
  let p = as_ptr vp in
  let i = as_int vi in
  mem_store t.blk.st { p with off = p.off + i } x

let addr vp vi =
  let p = as_ptr vp in
  Ptr { p with off = p.off + as_int vi }

(* Member assignment through a pointer (Compile, Member (Index _)): the
   new value is evaluated AFTER the dim3 load, hence the thunk. *)
let store_member (t : tctx) vp vi f (x : unit -> v) =
  let p = as_ptr vp in
  let i = as_int vi in
  let loc = { p with off = p.off + i } in
  let x', y', z' =
    match mem_load t.blk.st loc with
    | Dim3 d -> d
    | Unit | Int 0 -> (1, 1, 1)
    | v -> error "member assignment on non-dim3 %s" (to_string v)
  in
  let n = as_int (x ()) in
  let d =
    match f with
    | "x" -> (n, y', z')
    | "y" -> (x', n, z')
    | "z" -> (x', y', n)
    | _ -> error "dim3 has no member %S" f
  in
  mem_store t.blk.st loc (Dim3 d)

let with_atomic_lock st f =
  Mutex.lock st.atomic_mutex;
  match f () with
  | r ->
      Mutex.unlock st.atomic_mutex;
      r
  | exception e ->
      Mutex.unlock st.atomic_mutex;
      raise e

let atomic_rmw (t : tctx) vp combine x =
  let p = as_ptr vp in
  with_atomic_lock t.blk.st (fun () ->
      let old = mem_load t.blk.st p in
      mem_store t.blk.st p (combine old x);
      old)

let atomic_add t vp x = atomic_rmw t vp add x
let atomic_sub t vp x = atomic_rmw t vp sub x
let atomic_min t vp x = atomic_rmw t vp min_ x
let atomic_max t vp x = atomic_rmw t vp max_ x
let atomic_exch t vp x = atomic_rmw t vp (fun _ v -> v) x

let atomic_cas (t : tctx) vp vcmp x =
  let p = as_ptr vp in
  with_atomic_lock t.blk.st (fun () ->
      let old = mem_load t.blk.st p in
      if as_int old = as_int vcmp then mem_store t.blk.st p x;
      old)

let malloc (t : tctx) vn = Ptr (alloc t.blk.st (as_int vn) ~init:(Int 0))

(* --- reserved variables ------------------------------------------- *)

let thread_idx (t : tctx) = Dim3 t.tidx
let block_idx (t : tctx) = Dim3 t.blk.bidx
let block_dim (t : tctx) = Dim3 t.blk.bdim
let grid_dim (t : tctx) = Dim3 t.blk.gdim

(* --- shared memory ------------------------------------------------ *)

(* The size expression is only evaluated by the allocating (first) thread,
   as in the simulator — hence the thunk. *)
let shared_alloc (t : tctx) id (size : unit -> v) (init : v) : v =
  match Hashtbl.find_opt t.blk.shared id with
  | Some p -> Ptr p
  | None ->
      let n = as_int (size ()) in
      let p = alloc t.blk.st n ~init in
      Hashtbl.add t.blk.shared id p;
      Ptr p

(* ------------------------------------------------------------------ *)
(* Control flow of the interpreted language                            *)
(* ------------------------------------------------------------------ *)

exception Ret of v
exception Brk
exception Cont

(* ------------------------------------------------------------------ *)
(* Block execution: cooperative fibers + barrier epochs                *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += E_sync : unit Effect.t

let sync_threads (_ : tctx) = Effect.perform E_sync

type susp = S_done | S_sync of (unit, susp) Effect.Deep.continuation

let run_thread (f : unit -> unit) : susp =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> S_done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_sync ->
              Some (fun (k : (a, susp) Effect.Deep.continuation) -> S_sync k)
          | _ -> None);
    }

(* In-kernel launch: validate now (as the simulator does at issue time),
   dispatch when the block completes. *)
let launch (t : tctx) kernel vgrid vblock (args : v list) =
  let grid = as_dim3 vgrid in
  let block = as_dim3 vblock in
  let gx, gy, gz = grid in
  if gx <= 0 || gy <= 0 || gz <= 0 then
    error "launch of %S with empty grid (%d,%d,%d)" kernel gx gy gz;
  if dim3_total block > max_threads_per_block then
    error "launch of %S with %d threads per block (max %d)" kernel
      (dim3_total block) max_threads_per_block;
  t.blk.launches <-
    { lr_kernel = kernel; lr_grid = grid; lr_block = block; lr_args = args }
    :: t.blk.launches

let push_tasks st tasks =
  Mutex.lock st.lock;
  List.iter (fun task -> Queue.push task st.queue) tasks;
  st.outstanding <- st.outstanding + List.length tasks;
  Condition.broadcast st.work;
  Mutex.unlock st.lock

let rec run_grid st ~kernel ~grid ~block ~args =
  let k =
    match Hashtbl.find_opt st.kernels kernel with
    | Some k -> k
    | None -> error "no such function %S" kernel
  in
  if List.length args <> k.k_arity then
    error "launch of %S: expected %d arguments, got %d" kernel k.k_arity
      (List.length args);
  let args = Array.of_list args in
  let gx, gy, gz = grid in
  let tasks = ref [] in
  for z = gz - 1 downto 0 do
    for y = gy - 1 downto 0 do
      for x = gx - 1 downto 0 do
        let bidx = (x, y, z) in
        tasks :=
          (fun () -> exec_block st ~k ~gdim:grid ~bdim:block ~bidx args)
          :: !tasks
      done
    done
  done;
  push_tasks st !tasks

and exec_block st ~k ~gdim ~bdim ~bidx (args : v array) =
  let blk = { st; bidx; bdim; gdim; shared = Hashtbl.create 8; launches = [] } in
  let bx, by, _ = bdim in
  let total = dim3_total bdim in
  let tctx_of i =
    { tidx = (i mod bx, i / bx mod by, i / (bx * by)); blk }
  in
  (* Start every thread in tid order, each running to completion or its
     first barrier — the same interleaving as the simulator's in-order
     warp advancement. *)
  let states = Array.make (max total 1) S_done in
  for i = 0 to total - 1 do
    states.(i) <- run_thread (fun () -> k.k_fn (tctx_of i) args)
  done;
  let waiting () =
    Array.exists (function S_sync _ -> true | S_done -> false) states
  in
  let epochs = ref 0 in
  while waiting () do
    (* Barrier epoch: everyone still live is parked at the barrier
       (threads that returned count as arrived); release all in tid
       order. *)
    incr epochs;
    if !epochs > 1_000_000 then
      error "barrier livelock in %S: 1000000 epochs" k.k_name;
    Array.iteri
      (fun i s ->
        match s with
        | S_sync kont -> states.(i) <- Effect.Deep.continue kont ()
        | S_done -> ())
      states
  done;
  Hashtbl.iter (fun _ p -> free st p) blk.shared;
  List.iter
    (fun lr ->
      run_grid st ~kernel:lr.lr_kernel ~grid:lr.lr_grid ~block:lr.lr_block
        ~args:lr.lr_args)
    (List.rev blk.launches)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let rec worker st =
  Mutex.lock st.lock;
  let rec await () =
    if not (Queue.is_empty st.queue) then Some (Queue.pop st.queue)
    else if st.closing then None
    else begin
      Condition.wait st.work st.lock;
      await ()
    end
  in
  match await () with
  | None -> Mutex.unlock st.lock
  | Some task ->
      let skip = st.failure <> None in
      Mutex.unlock st.lock;
      let fault =
        if skip then None
        else match task () with () -> None | exception e -> Some e
      in
      Mutex.lock st.lock;
      (match fault with
      | Some e when st.failure = None -> st.failure <- Some e
      | _ -> ());
      st.outstanding <- st.outstanding - 1;
      if st.outstanding = 0 then Condition.broadcast st.idle;
      Mutex.unlock st.lock;
      worker st

let default_domains () = max 2 (min 8 (Domain.recommended_domain_count ()))

let create ?domains () : state =
  let n = match domains with Some n -> max 1 n | None -> default_domains () in
  let st =
    {
      table = Atomic.make (Array.make 64 None);
      count = Atomic.make 0;
      mem_mutex = Mutex.create ();
      atomic_mutex = Mutex.create ();
      kernels = Hashtbl.create 16;
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      closing = false;
      failure = None;
      workers = [];
    }
  in
  st.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker st));
  st

let register st (k : kernel) = Hashtbl.replace st.kernels k.k_name k

let sync st =
  Mutex.lock st.lock;
  while st.outstanding > 0 do
    Condition.wait st.idle st.lock
  done;
  let f = st.failure in
  st.failure <- None;
  Mutex.unlock st.lock;
  match f with Some e -> raise e | None -> ()

let shutdown st =
  Mutex.lock st.lock;
  st.closing <- true;
  Condition.broadcast st.work;
  Mutex.unlock st.lock;
  List.iter Domain.join st.workers;
  st.workers <- []

(* ------------------------------------------------------------------ *)
(* Host driver API (mirrors Gpusim.Device)                             *)
(* ------------------------------------------------------------------ *)

let host_launch st ~kernel ~grid ~block ~args =
  let gx, gy, gz = grid in
  if gx <= 0 || gy <= 0 || gz <= 0 then
    error "launch of %S with empty grid (%d,%d,%d)" kernel gx gy gz;
  if dim3_total block > max_threads_per_block then
    error "launch of %S with %d threads per block (max %d)" kernel
      (dim3_total block) max_threads_per_block;
  run_grid st ~kernel ~grid ~block ~args

let alloc_ints st (vs : int array) : v =
  let p = alloc st (Array.length vs) ~init:(Int 0) in
  Array.iteri (fun i n -> mem_store st { p with off = i } (Int n)) vs;
  Ptr p

let alloc_floats st (vs : float array) : v =
  let p = alloc st (Array.length vs) ~init:(Float 0.0) in
  Array.iteri (fun i f -> mem_store st { p with off = i } (Float f)) vs;
  Ptr p

let alloc_int_zeros st n : v = Ptr (alloc st n ~init:(Int 0))
let alloc_float_zeros st n : v = Ptr (alloc st n ~init:(Float 0.0))

let dump st ~first : v array list =
  let count = Atomic.get st.count in
  if first < 0 || first > count then
    error "Memory.dump: %d buffers requested, %d allocated" first count;
  let tbl = Atomic.get st.table in
  List.init first (fun id ->
      match tbl.(id) with
      | Some b -> Array.copy b.data
      | None -> error "Memory.dump: missing buffer %d" id)

(* ------------------------------------------------------------------ *)
(* Canonical dump rendering                                            *)
(* ------------------------------------------------------------------ *)

(* One cell per value, bit-exact: floats render as the hex of their IEEE
   bits, so text equality is bit equality. Native.Hostspec.render_dump
   renders simulator dumps with the same grammar; the two must never
   diverge. *)
let render_cell = function
  | Unit -> "u"
  | Int n -> "i" ^ string_of_int n
  | Float f -> Printf.sprintf "f%Lx" (Int64.bits_of_float f)
  | Bool true -> "b1"
  | Bool false -> "b0"
  | Dim3 (x, y, z) -> Printf.sprintf "d%d,%d,%d" x y z
  | Ptr p -> Printf.sprintf "p%d+%d" p.buf p.off

let render_dump (bufs : v array list) : string =
  let b = Buffer.create 1024 in
  List.iteri
    (fun i cells ->
      Buffer.add_string b (Printf.sprintf "buf %d:" i);
      Array.iter
        (fun c ->
          Buffer.add_char b ' ';
          Buffer.add_string b (render_cell c))
        cells;
      Buffer.add_char b '\n')
    bufs;
  Buffer.contents b
