(** A backend-neutral host driver: the list of device operations a
    benchmark's host side performs, as data.

    The same spec is executed on both backends — {!run_sim} drives a
    {!Gpusim.Device} and {!Emit.unit_source} generates the equivalent
    OCaml driver against {!Nrt} — so a native-vs-simulator dump
    comparison exercises identical allocation orders, launch
    configurations and argument lists on both sides. Buffer ids are
    positional: [A_buf i] refers to the [i]-th allocation op. *)

type arg = A_buf of int | A_int of int | A_float of float

type op =
  | Alloc_ints of int array
  | Alloc_floats of float array
  | Alloc_int_zeros of int
  | Alloc_float_zeros of int
  | Launch of {
      kernel : string;
      grid : int * int * int;
      block : int * int * int;
      args : arg list;
    }
  | Sync

type t = { ops : op list }

(** Number of driver allocations — the [~first] bound of both backends'
    dumps. All allocation ops must precede the first launch so driver
    buffer ids are dense from 0 on both backends (the simulator allocates
    aggregation auto-buffers at launch time, after them). *)
let user_buffers t =
  List.length
    (List.filter (function Launch _ | Sync -> false | _ -> true) t.ops)

(* The adapter from the aggregation pass's allocation specs to the
   simulator runtime's (same as Benchmarks.Bench_common.to_device_auto;
   duplicated so native does not pull the benchmark suite in). *)
let to_device_auto (aps : (string * Dpopt.Aggregation.auto_param list) list) :
    (string * Gpusim.Device.auto_param list) list =
  List.map
    (fun (k, l) ->
      ( k,
        List.map
          (fun (ap : Dpopt.Aggregation.auto_param) ->
            {
              Gpusim.Device.ap_name = ap.ap_name;
              ap_elems =
                (fun ~grid:(gx, gy, gz) ~block:(bx, by, bz) ->
                  ap.ap_elems ~grid_blocks:(gx * gy * gz)
                    ~block_threads:(bx * by * bz));
            })
          l ))
    aps

(** [run_sim ~cfg prog ~auto_params spec] — execute the spec against a
    fresh simulator and snapshot the driver buffers. May raise whatever
    the simulator raises. *)
let run_sim ~cfg (prog : Minicu.Ast.program)
    ~(auto_params : (string * Dpopt.Aggregation.auto_param list) list)
    (spec : t) : Gpusim.Value.t array list =
  let dev = Gpusim.Device.create ~cfg () in
  Gpusim.Device.load_program dev prog ~auto_params:(to_device_auto auto_params);
  let bufs = ref [] in
  (* allocation-order list, head = latest *)
  let nth_buf i =
    match List.nth_opt (List.rev !bufs) i with
    | Some p -> p
    | None -> invalid_arg (Fmt.str "Hostspec: A_buf %d out of range" i)
  in
  List.iter
    (fun op ->
      match op with
      | Alloc_ints vs -> bufs := Gpusim.Device.alloc_ints dev vs :: !bufs
      | Alloc_floats vs -> bufs := Gpusim.Device.alloc_floats dev vs :: !bufs
      | Alloc_int_zeros n ->
          bufs := Gpusim.Device.alloc_int_zeros dev n :: !bufs
      | Alloc_float_zeros n ->
          bufs := Gpusim.Device.alloc_float_zeros dev n :: !bufs
      | Launch { kernel; grid; block; args } ->
          let args =
            List.map
              (function
                | A_buf i -> Gpusim.Value.Ptr (nth_buf i)
                | A_int n -> Gpusim.Value.Int n
                | A_float f -> Gpusim.Value.Float f)
              args
          in
          Gpusim.Device.launch dev ~kernel ~grid ~block ~args
      | Sync -> ignore (Gpusim.Device.sync dev))
    spec.ops;
  Gpusim.Device.dump_memory dev ~first:(user_buffers spec)

(** {1 Canonical dump rendering}

    The same grammar as {!Nrt.render_dump} — one line per buffer, one
    bit-exact cell per value (floats as IEEE-bit hex) — so text equality
    of a native run against a simulator run is bit equality of memory. *)

let render_cell = function
  | Gpusim.Value.Unit -> "u"
  | Gpusim.Value.Int n -> "i" ^ string_of_int n
  | Gpusim.Value.Float f -> Printf.sprintf "f%Lx" (Int64.bits_of_float f)
  | Gpusim.Value.Bool true -> "b1"
  | Gpusim.Value.Bool false -> "b0"
  | Gpusim.Value.Dim3 (x, y, z) -> Printf.sprintf "d%d,%d,%d" x y z
  | Gpusim.Value.Ptr p -> Printf.sprintf "p%d+%d" p.buf p.off

let render_dump (bufs : Gpusim.Value.t array list) : string =
  let b = Buffer.create 1024 in
  List.iteri
    (fun i cells ->
      Buffer.add_string b (Printf.sprintf "buf %d:" i);
      Array.iter
        (fun c ->
          Buffer.add_char b ' ';
          Buffer.add_string b (render_cell c))
        cells;
      Buffer.add_char b '\n')
    bufs;
  Buffer.contents b
