(** Compile-and-run of emitted native programs.

    Each program becomes a throwaway dune project in a fresh temp
    directory: [dune-project], a two-module executable ([main.ml] — the
    emitted source — plus [nrt.ml], the runtime copied verbatim from
    {!Runtime_source}), built with the ambient [dune] and executed. The
    invocation scrubs [INSIDE_DUNE] so the nested build works from within
    [dune runtest] sandboxes. *)

exception Build_error of string

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_file_opt path = try Some (read_file path) with Sys_error _ -> None

let scratch_dune =
  "(executable\n (name main)\n (modules main nrt)\n (flags (:standard -w -a)))\n"

(* Nested dune must not inherit the outer build's environment:
   INSIDE_DUNE makes dune refuse to run (or worse, talk to the outer
   build), and DUNE_SOURCEROOT confuses root discovery. *)
let scrubbed_cmd ~dir cmd =
  Printf.sprintf
    "cd %s && env -u INSIDE_DUNE -u DUNE_SOURCEROOT -u DUNE_CONFIG__GLOBAL_LOCK \
     %s"
    (Filename.quote dir) cmd

(* [run_logged ~dir ~log cmd] — run [cmd] in [dir] with its own
   redirections already spelled out; on a nonzero exit, raise with the
   tail of [log]. *)
let run_logged ~dir ~log cmd =
  let rc = Sys.command (scrubbed_cmd ~dir cmd) in
  if rc <> 0 then begin
    let tail =
      match read_file_opt (Filename.concat dir log) with
      | Some s -> s
      | None -> "(no log)"
    in
    raise
      (Build_error
         (Fmt.str "%s failed with exit code %d in %s:@.%s" cmd rc dir tail))
  end

(** [compile_and_run ~source ()] — write the scratch project, build it,
    run it once, and return the program's stdout. The directory is
    removed on success and kept (its path embedded in the exception) on
    failure; [~keep:true] always keeps it. [~runs] > 1 reruns the
    executable and returns every run's stdout (one compile, n runs) —
    the divergence smoke uses this. *)
let compile_and_run_many ?(keep = false) ?(runs = 1) ~source () :
    string list =
  let dir = Filename.temp_dir "dpnative" "" in
  write_file (Filename.concat dir "dune-project") "(lang dune 3.0)\n";
  write_file (Filename.concat dir "dune") scratch_dune;
  write_file (Filename.concat dir "nrt.ml") Runtime_source.source;
  write_file (Filename.concat dir "main.ml") source;
  run_logged ~dir ~log:"build.log"
    "dune build --root . ./main.exe > build.log 2>&1";
  let outs =
    List.init (max 1 runs) (fun _ ->
        run_logged ~dir ~log:"run.log"
          "./_build/default/main.exe > out.txt 2> run.log";
        read_file (Filename.concat dir "out.txt"))
  in
  if not keep then
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  outs

let compile_and_run ?keep ~source () : string =
  List.hd (compile_and_run_many ?keep ~runs:1 ~source ())

(** Split a multi-variant program's stdout into its labeled sections:
    ["== <label> ==\n<body>"] becomes [(label, body)], in order. *)
let sections (out : string) : (string * string) list =
  let lines = String.split_on_char '\n' out in
  let flush label acc secs =
    match label with
    | None -> secs
    | Some l ->
        (* Drop trailing blank lines, then restore the single trailing
           newline every non-empty dump carries, so middle and final
           sections render identically. *)
        let rec drop = function "" :: tl -> drop tl | ls -> ls in
        let body =
          match drop acc with
          | [] -> ""
          | ls -> String.concat "\n" (List.rev ls) ^ "\n"
        in
        (l, body) :: secs
  in
  let rec go label acc secs = function
    | [] -> List.rev (flush label acc secs)
    | line :: rest ->
        let n = String.length line in
        if n > 6 && String.sub line 0 3 = "== " && String.sub line (n - 3) 3 = " =="
        then
          let l = String.sub line 3 (n - 6) in
          go (Some l) [] (flush label acc secs) rest
        else go label (line :: acc) secs rest
  in
  go None [] [] lines
