(** The MiniCU → native-OCaml transpiler.

    Emitted code is dynamically typed over {!Nrt.v} and replicates the
    simulator's closure interpreter ({!Gpusim.Compile}) construct by
    construct: the same coercions, the same operator semantics (pointer
    arithmetic, float-if-either promotion, division-by-zero errors), the
    same evaluation order (operands are let-bound in source order — OCaml
    application alone would evaluate right-to-left), the same control-flow
    exceptions ([Nrt.Ret]/[Brk]/[Cont], with [continue] still running a
    for-loop's step), and the same shared-memory declaration-id keying.
    Blocks map to pool tasks, [__syncthreads] to the runtime's fiber
    barrier, atomics to the runtime's locked read-modify-writes, child
    launches to deferred task spawns (see {!Nrt}).

    Constructs the backend cannot honor raise {!Unsupported} with the
    statement's source location:
    - [__threadfence] — the backend has no cross-block ordering weaker
      than completion, so multi-block-granularity aggregation output is
      rejected rather than miscompiled;
    - warp collectives and [__syncwarp] — no SIMT lockstep natively;
    - host followups — the backend is device-only (grid-granularity
      aggregation needs the host relaunch trampoline). *)

open Minicu
open Minicu.Ast

exception Unsupported of Loc.t * string

let unsupported loc fmt = Fmt.kstr (fun s -> raise (Unsupported (loc, s))) fmt

type env = {
  prog : program;
  mutable tmp : int;  (** Fresh let-temp counter (per function). *)
  mutable shared_ids : int;  (** Per-function shared-decl ids, as Compile. *)
  mutable cur_loc : Loc.t;
}

let fresh env =
  let n = env.tmp in
  env.tmp <- n + 1;
  Printf.sprintf "_t%d" n

let mangle_var x = "v_" ^ x
let mangle_fn (f : func) =
  (match f.f_kind with Global -> "k_" | Device -> "f_") ^ f.f_name

let float_lit f =
  Printf.sprintf "(Nrt.Float (Int64.float_of_bits 0x%LxL))"
    (Int64.bits_of_float f)

let default_value = function
  | TInt -> "(Nrt.Int 0)"
  | TFloat -> "(Nrt.Float 0.0)"
  | TBool -> "(Nrt.Bool false)"
  | TDim3 -> "(Nrt.Dim3 (1, 1, 1))"
  | TPtr _ | TVoid -> "Nrt.Unit"

let binop_fn = function
  | Add -> "Nrt.add"
  | Sub -> "Nrt.sub"
  | Mul -> "Nrt.mul"
  | Div -> "Nrt.div"
  | Mod -> "Nrt.mod_"
  | Lt -> "Nrt.lt"
  | Le -> "Nrt.le"
  | Gt -> "Nrt.gt"
  | Ge -> "Nrt.ge"
  | Eq -> "Nrt.eq"
  | Ne -> "Nrt.ne"
  | BAnd -> "Nrt.band"
  | BOr -> "Nrt.bor"
  | BXor -> "Nrt.bxor"
  | Shl -> "Nrt.shl"
  | Shr -> "Nrt.shr"
  | LAnd | LOr -> assert false (* short-circuit forms, handled in [expr] *)

let reserved_ctx = function
  | "threadIdx" -> "(Nrt.thread_idx t)"
  | "blockIdx" -> "(Nrt.block_idx t)"
  | "blockDim" -> "(Nrt.block_dim t)"
  | "gridDim" -> "(Nrt.grid_dim t)"
  | _ -> assert false

(* [seq env args k] — let-bind each of [args] in source order (preserving
   the interpreter's left-to-right evaluation), then apply [k] to the
   bound names. *)
let seq env (args : string list) (k : string list -> string) : string =
  let names = List.map (fun _ -> fresh env) args in
  let binds =
    List.map2 (fun n a -> Printf.sprintf "let %s = %s in " n a) names args
  in
  "(" ^ String.concat "" binds ^ k names ^ ")"

let rec expr env (e : Ast.expr) : string =
  match e with
  | Int_lit n -> Printf.sprintf "(Nrt.Int (%d))" n
  | Float_lit f -> float_lit f
  | Bool_lit b -> Printf.sprintf "(Nrt.Bool %b)" b
  | Var x when is_reserved_var x -> reserved_ctx x
  | Var x -> "!" ^ mangle_var x
  | Member (Var x, f) when is_reserved_var x ->
      Printf.sprintf "(Nrt.member %s %S)" (reserved_ctx x) f
  | Member (a, f) -> Printf.sprintf "(Nrt.member %s %S)" (expr env a) f
  | Unop (Neg, a) -> Printf.sprintf "(Nrt.neg %s)" (expr env a)
  | Unop (Not, a) -> Printf.sprintf "(Nrt.not_ %s)" (expr env a)
  | Binop (LAnd, a, b) ->
      Printf.sprintf "(Nrt.Bool (Nrt.as_bool %s && Nrt.as_bool %s))"
        (expr env a) (expr env b)
  | Binop (LOr, a, b) ->
      Printf.sprintf "(Nrt.Bool (Nrt.as_bool %s || Nrt.as_bool %s))"
        (expr env a) (expr env b)
  | Binop (op, a, b) ->
      seq env [ expr env a; expr env b ] (function
        | [ ta; tb ] -> Printf.sprintf "%s %s %s" (binop_fn op) ta tb
        | _ -> assert false)
  | Ternary (c, a, b) ->
      Printf.sprintf "(if Nrt.as_bool %s then %s else %s)" (expr env c)
        (expr env a) (expr env b)
  | Index (p, i) ->
      seq env [ expr env p; expr env i ] (function
        | [ tp; ti ] -> Printf.sprintf "Nrt.load t %s %s" tp ti
        | _ -> assert false)
  | Cast (TInt, a) -> Printf.sprintf "(Nrt.Int (Nrt.as_int %s))" (expr env a)
  | Cast (TFloat, a) ->
      Printf.sprintf "(Nrt.Float (Nrt.as_float %s))" (expr env a)
  | Cast (TBool, a) ->
      Printf.sprintf "(Nrt.Bool (Nrt.as_bool %s))" (expr env a)
  | Cast (_, a) -> expr env a
  | Dim3_ctor (x, y, z) ->
      seq env [ expr env x; expr env y; expr env z ] (function
        | [ tx; ty; tz ] ->
            Printf.sprintf
              "Nrt.Dim3 (Nrt.as_int %s, Nrt.as_int %s, Nrt.as_int %s)" tx ty tz
        | _ -> assert false)
  | Addr_of (Index (p, i)) ->
      seq env [ expr env p; expr env i ] (function
        | [ tp; ti ] -> Printf.sprintf "Nrt.addr %s %s" tp ti
        | _ -> assert false)
  | Addr_of (Var x) ->
      unsupported env.cur_loc
        "cannot take the address of local variable %S (MiniCU atomics \
         require a pointer element, e.g. &a[i])"
        x
  | Addr_of _ -> unsupported env.cur_loc "'&' requires an indexable lvalue"
  | Call (f, args) -> call env f args

and call env f args : string =
  let arg n =
    match List.nth_opt args n with
    | Some a -> expr env a
    | None -> unsupported env.cur_loc "call to %S: wrong arity" f
  in
  let unary rt = Printf.sprintf "(%s %s)" rt (arg 0) in
  let binary rt =
    seq env [ arg 0; arg 1 ] (function
      | [ ta; tb ] -> Printf.sprintf "%s %s %s" rt ta tb
      | _ -> assert false)
  in
  let atomic rt =
    seq env [ arg 0; arg 1 ] (function
      | [ tp; tv ] -> Printf.sprintf "%s t %s %s" rt tp tv
      | _ -> assert false)
  in
  match f with
  | "min" -> binary "Nrt.min_"
  | "max" -> binary "Nrt.max_"
  | "abs" -> unary "Nrt.abs_"
  | "fabs" -> unary "Nrt.fabs"
  | "ceil" -> unary "Nrt.ceil_"
  | "floor" -> unary "Nrt.floor_"
  | "sqrt" -> unary "Nrt.sqrt_"
  | "exp" -> unary "Nrt.exp_"
  | "log" -> unary "Nrt.log_"
  | "pow" -> binary "Nrt.pow_"
  | "atomicAdd" -> atomic "Nrt.atomic_add"
  | "atomicSub" -> atomic "Nrt.atomic_sub"
  | "atomicMin" -> atomic "Nrt.atomic_min"
  | "atomicMax" -> atomic "Nrt.atomic_max"
  | "atomicExch" -> atomic "Nrt.atomic_exch"
  | "atomicCAS" ->
      seq env [ arg 0; arg 1; arg 2 ] (function
        | [ tp; tc; tv ] -> Printf.sprintf "Nrt.atomic_cas t %s %s %s" tp tc tv
        | _ -> assert false)
  | "malloc" -> Printf.sprintf "(Nrt.malloc t %s)" (arg 0)
  | "warp_scan_excl" | "warp_sum" | "warp_max" | "warp_bcast" ->
      unsupported env.cur_loc
        "warp collective %s() is unsupported by the native backend (no SIMT \
         lockstep); use block or no aggregation"
        f
  | _ -> (
      match find_func env.prog f with
      | Some df when df.f_kind = Device ->
          if List.length args <> List.length df.f_params then
            unsupported env.cur_loc "call to %S: wrong arity" f;
          seq env (List.map (expr env) args) (fun names ->
              String.concat " " (mangle_fn df :: "t" :: names))
      | Some _ ->
          unsupported env.cur_loc "cannot call kernel %S; kernels must be \
                                   launched" f
      | None -> unsupported env.cur_loc "unknown function %S" f)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let pad n = String.make (2 * n) ' '

(* [stmts env ind ss] — a unit-typed OCaml expression (multi-line,
   indented) executing [ss] in order. Declarations let-bind a ref over
   the remainder, so MiniCU shadowing maps onto OCaml shadowing. *)
let rec stmts env ind (ss : stmt list) : string =
  match ss with
  | [] -> pad ind ^ "()"
  | s :: rest -> (
      env.cur_loc <- s.sloc;
      match s.sdesc with
      | Decl (ty, x, init) ->
          let init' =
            match init with
            | Some e -> expr env e
            | None -> default_value ty
          in
          Printf.sprintf "%slet %s = ref %s in\n%s" (pad ind) (mangle_var x)
            init' (stmts env ind rest)
      | Decl_shared (ty, x, size) ->
          let id = env.shared_ids in
          env.shared_ids <- id + 1;
          Printf.sprintf
            "%slet %s = ref (Nrt.shared_alloc t %d (fun () -> %s) %s) in\n%s"
            (pad ind) (mangle_var x) id (expr env size) (default_value ty)
            (stmts env ind rest)
      | _ ->
          let this = stmt env ind s in
          if rest = [] then this
          else this ^ ";\n" ^ stmts env ind rest)

(* One non-declaration statement as a unit expression (no trailing ;). *)
and stmt env ind (s : stmt) : string =
  env.cur_loc <- s.sloc;
  let p = pad ind in
  match s.sdesc with
  | Decl _ | Decl_shared _ -> assert false (* handled in [stmts] *)
  | Assign (Var x, e) when not (is_reserved_var x) ->
      Printf.sprintf "%s%s := %s" p (mangle_var x) (expr env e)
  | Assign (Index (pe, ie), e) ->
      p
      ^ seq env [ expr env pe; expr env ie; expr env e ] (function
          | [ tp; ti; tv ] -> Printf.sprintf "Nrt.store t %s %s %s" tp ti tv
          | _ -> assert false)
  | Assign (Member (Var x, f), e) when not (is_reserved_var x) ->
      (* The interpreter reads the current dim3 before evaluating the
         right-hand side; the let order preserves that. *)
      let tcur = fresh env and tv = fresh env in
      Printf.sprintf
        "%s(let %s = !%s in let %s = %s in %s := Nrt.set_member %s %S %s)" p
        tcur (mangle_var x) tv (expr env e) (mangle_var x) tcur f tv
  | Assign (Member (Index (pe, ie), f), e) ->
      p
      ^ seq env [ expr env pe; expr env ie ] (function
          | [ tp; ti ] ->
              Printf.sprintf "Nrt.store_member t %s %s %S (fun () -> %s)" tp ti
                f (expr env e)
          | _ -> assert false)
  | Assign _ -> unsupported env.cur_loc "invalid assignment target"
  | If (c, a, b) ->
      Printf.sprintf "%sif Nrt.as_bool %s then begin\n%s\n%send else begin\n%s\n%send"
        p (expr env c)
        (stmts env (ind + 1) a)
        p
        (stmts env (ind + 1) b)
        p
  | While (c, body) ->
      Printf.sprintf
        "%s(try\n%swhile Nrt.as_bool %s do\n%s(try\n%s\n%swith Nrt.Cont -> ())\n%sdone\n%swith Nrt.Brk -> ())"
        p
        (pad (ind + 1))
        (expr env c)
        (pad (ind + 2))
        (stmts env (ind + 3) body)
        (pad (ind + 2))
        (pad (ind + 1))
        p
  | For (init, cond, step, body) ->
      let cond' =
        match cond with
        | Some c -> Printf.sprintf "Nrt.as_bool %s" (expr env c)
        | None -> "true"
      in
      let body' = stmts env (ind + 3) body in
      let step' =
        match step with
        | Some st -> stmt env (ind + 2) st ^ "\n"
        | None -> ""
      in
      let loop =
        Printf.sprintf
          "%s(try\n%swhile %s do\n%s(try\n%s\n%swith Nrt.Cont -> ());\n%s%sdone\n%swith Nrt.Brk -> ())"
          p
          (pad (ind + 1))
          cond'
          (pad (ind + 2))
          body'
          (pad (ind + 2))
          (match step' with "" -> "" | s -> s)
          (pad (ind + 1))
          p
      in
      (* The init runs outside the Brk handler, as in the interpreter. *)
      (match init with
      | None -> loop
      | Some ({ sdesc = Decl (ty, x, ie); _ } as is) ->
          env.cur_loc <- is.sloc;
          let init' =
            match ie with Some e -> expr env e | None -> default_value ty
          in
          Printf.sprintf "%s(let %s = ref %s in\n%s)" p (mangle_var x) init'
            loop
      | Some is -> Printf.sprintf "%s(%s;\n%s)" p (String.trim (stmt env 0 is)) loop)
  | Return None -> p ^ "raise_notrace (Nrt.Ret Nrt.Unit)"
  | Return (Some e) ->
      Printf.sprintf "%sraise_notrace (Nrt.Ret %s)" p (expr env e)
  | Expr_stmt e -> Printf.sprintf "%signore %s" p (expr env e)
  | Launch l ->
      let head = [ expr env l.l_grid; expr env l.l_block ] in
      let args = List.map (expr env) l.l_args in
      p
      ^ seq env (head @ args) (fun names ->
            match names with
            | tg :: tb :: rest ->
                Printf.sprintf "Nrt.launch t %S %s %s [%s]" l.l_kernel tg tb
                  (String.concat "; " rest)
            | _ -> assert false)
  | Sync -> p ^ "Nrt.sync_threads t"
  | Syncwarp ->
      unsupported env.cur_loc
        "__syncwarp() is unsupported by the native backend (no SIMT lockstep)"
  | Threadfence ->
      unsupported env.cur_loc
        "__threadfence() is unsupported by the native backend (no cross-block \
         memory ordering under true parallelism)"
  | Break -> p ^ "raise_notrace Nrt.Brk"
  | Continue -> p ^ "raise_notrace Nrt.Cont"

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let func_source prog ~first (f : func) : string =
  (match f.f_host_followup with
  | Some (s :: _) ->
      unsupported s.sloc
        "kernel %S has a host followup (grid-granularity aggregation): the \
         native backend is device-only"
        f.f_name
  | Some [] ->
      unsupported Loc.dummy
        "kernel %S has a host followup (grid-granularity aggregation): the \
         native backend is device-only"
        f.f_name
  | None -> ());
  let env = { prog; tmp = 0; shared_ids = 0; cur_loc = Loc.dummy } in
  let kw = if first then "let rec" else "and" in
  let b = Buffer.create 512 in
  (match f.f_kind with
  | Global ->
      Buffer.add_string b
        (Printf.sprintf "%s %s (t : Nrt.tctx) (_args : Nrt.v array) : unit =\n"
           kw (mangle_fn f));
      List.iteri
        (fun i (prm : param) ->
          Buffer.add_string b
            (Printf.sprintf "  let %s = ref _args.(%d) in\n"
               (mangle_var prm.p_name) i))
        f.f_params;
      Buffer.add_string b "  (try\n";
      Buffer.add_string b (stmts env 2 f.f_body);
      Buffer.add_string b "\n  with Nrt.Ret _ -> ())\n"
  | Device ->
      let params =
        String.concat " "
          (List.mapi (fun i _ -> Printf.sprintf "(_a%d : Nrt.v)" i) f.f_params)
      in
      Buffer.add_string b
        (Printf.sprintf "%s %s (t : Nrt.tctx) %s: Nrt.v =\n" kw (mangle_fn f)
           (if params = "" then "" else params ^ " "));
      List.iteri
        (fun i (prm : param) ->
          Buffer.add_string b
            (Printf.sprintf "  let %s = ref _a%d in\n" (mangle_var prm.p_name)
               i))
        f.f_params;
      Buffer.add_string b "  (try\n";
      Buffer.add_string b (stmts env 2 f.f_body);
      Buffer.add_string b ";\n    Nrt.Unit\n  with Nrt.Ret _r -> _r)\n");
  Buffer.contents b

(** [program p] — the kernel-module text: one mutually recursive group of
    per-function definitions plus the [kernels] registry. Raises
    {!Unsupported} (with a source location) on constructs the backend
    rejects. The text is a complete module body compiling against [Nrt]
    alone — the golden [.native.ml] corpus pins it. *)
let program (p : Ast.program) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "(* MiniCU transpiled to parallel OCaml by the native backend. *)\n";
  List.iteri
    (fun i f -> Buffer.add_string b (func_source p ~first:(i = 0) f))
    p;
  Buffer.add_string b "\nlet kernels : Nrt.kernel list = [\n";
  List.iter
    (fun (f : func) ->
      if f.f_kind = Global then
        Buffer.add_string b
          (Printf.sprintf "  { Nrt.k_name = %S; k_arity = %d; k_fn = %s };\n"
             f.f_name
             (List.length f.f_params)
             (mangle_fn f)))
    p;
  Buffer.add_string b "]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Whole-executable emission (multi-variant units)                     *)
(* ------------------------------------------------------------------ *)

type variant_unit = {
  vu_label : string;
  vu_prog : Ast.program;
  vu_autos : (string * Dpopt.Aggregation.auto_param list) list;
      (** The aggregation pass's runtime-allocated trailing parameters;
          element counts are evaluated at emission time against the
          spec's static launch configurations. *)
}

let int_array_lit (vs : int array) =
  "[| "
  ^ String.concat "; " (Array.to_list (Array.map string_of_int vs))
  ^ " |]"

let float_array_lit (vs : float array) =
  "[| "
  ^ String.concat "; "
      (Array.to_list
         (Array.map
            (fun f ->
              Printf.sprintf "Int64.float_of_bits 0x%LxL"
                (Int64.bits_of_float f))
            vs))
  ^ " |]"

let arg_lit buf_name = function
  | Hostspec.A_buf i -> buf_name i
  | Hostspec.A_int n -> Printf.sprintf "Nrt.Int (%d)" n
  | Hostspec.A_float f ->
      Printf.sprintf "Nrt.Float (Int64.float_of_bits 0x%LxL)"
        (Int64.bits_of_float f)

(* The driver body: the hostspec ops against Nrt, with the aggregation
   auto-buffers of each launch allocated inline right before it (the
   same allocation order as Gpusim.Device.launch, so buffer ids — and
   therefore any Ptr values in dumps — coincide across backends). *)
let driver_source (vu : variant_unit) (host : Hostspec.t) : string =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  add "  let run () : string =\n";
  add "    let st = Nrt.create () in\n";
  add "    List.iter (Nrt.register st) kernels;\n";
  let nbuf = ref 0 in
  let nauto = ref 0 in
  let buf_name i = Printf.sprintf "_b%d" i in
  List.iter
    (fun (op : Hostspec.op) ->
      match op with
      | Hostspec.Alloc_ints vs ->
          add "    let %s = Nrt.alloc_ints st %s in\n" (buf_name !nbuf)
            (int_array_lit vs);
          incr nbuf
      | Hostspec.Alloc_floats vs ->
          add "    let %s = Nrt.alloc_floats st %s in\n" (buf_name !nbuf)
            (float_array_lit vs);
          incr nbuf
      | Hostspec.Alloc_int_zeros n ->
          add "    let %s = Nrt.alloc_int_zeros st %d in\n" (buf_name !nbuf) n;
          incr nbuf
      | Hostspec.Alloc_float_zeros n ->
          add "    let %s = Nrt.alloc_float_zeros st %d in\n" (buf_name !nbuf)
            n;
          incr nbuf
      | Hostspec.Launch { kernel; grid = gx, gy, gz; block = bx, by, bz; args }
        ->
          let autos =
            match List.assoc_opt kernel vu.vu_autos with
            | Some aps ->
                List.map
                  (fun (ap : Dpopt.Aggregation.auto_param) ->
                    let n =
                      ap.ap_elems ~grid_blocks:(gx * gy * gz)
                        ~block_threads:(bx * by * bz)
                    in
                    let name = Printf.sprintf "_auto%d" !nauto in
                    incr nauto;
                    add "    let %s = Nrt.alloc_int_zeros st %d in\n" name n;
                    name)
                  aps
            | None -> []
          in
          let args = List.map (arg_lit buf_name) args @ autos in
          add
            "    Nrt.host_launch st ~kernel:%S ~grid:(%d, %d, %d) \
             ~block:(%d, %d, %d) ~args:[ %s ];\n"
            kernel gx gy gz bx by bz (String.concat "; " args)
      | Hostspec.Sync -> add "    Nrt.sync st;\n")
    host.ops;
  add "    Nrt.sync st;\n";
  add "    let d = Nrt.dump st ~first:%d in\n" (Hostspec.user_buffers host);
  add "    Nrt.shutdown st;\n";
  add "    Nrt.render_dump d\n";
  Buffer.contents b

(** [unit_source ~variants ~host] — a complete [main.ml]: one module per
    variant (kernels + driver), and a main that runs every variant in
    order, printing ["== <label> =="] section headers around each dump
    (parsed back by {!Build.sections}). Raises {!Unsupported} if any
    variant's program uses a rejected construct — callers that want to
    skip such variants filter first (see {!supported}). *)
let unit_source ~(variants : variant_unit list) ~(host : Hostspec.t) : string =
  let b = Buffer.create 8192 in
  List.iteri
    (fun i vu ->
      Buffer.add_string b (Printf.sprintf "module V%d = struct\n" i);
      Buffer.add_string b (program vu.vu_prog);
      Buffer.add_string b (driver_source vu host);
      Buffer.add_string b "end\n\n")
    variants;
  Buffer.add_string b "let () =\n";
  List.iteri
    (fun i vu ->
      Buffer.add_string b
        (Printf.sprintf "  print_string \"== %s ==\\n\";\n"
           (String.escaped vu.vu_label));
      Buffer.add_string b (Printf.sprintf "  print_string (V%d.run ());\n" i))
    variants;
  Buffer.contents b

(** [supported p] — [None] if the backend accepts [p], [Some (loc, msg)]
    otherwise (the first rejection, in program order). *)
let supported (p : Ast.program) : (Loc.t * string) option =
  match program p with
  | (_ : string) -> None
  | exception Unsupported (loc, msg) -> Some (loc, msg)
