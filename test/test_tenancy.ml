(* Multi-tenant device simulation (lib/tenancy): the Stats fairness /
   slowdown helpers, admission-policy decision rules, traffic generation,
   run-to-run and cross-parallelism byte-identity, and the pinned
   congestion-under-tenancy experiment margins. *)

let t name f = Alcotest.test_case name `Quick f

(* ---- Harness.Stats helpers ---- *)

let stats_suite =
  [
    t "jain fairness: hand-computed values" (fun () ->
        Alcotest.(check (float 1e-9)) "equal shares" 1.0
          (Harness.Stats.jain_fairness [ 3.0; 3.0; 3.0; 3.0 ]);
        (* (1 + 0.5)^2 / (2 * (1 + 0.25)) = 2.25 / 2.5 *)
        Alcotest.(check (float 1e-9)) "two unequal" 0.9
          (Harness.Stats.jain_fairness [ 1.0; 0.5 ]);
        (* one tenant starving three: index tends to 1/n;
           103^2 / (4 * 10003) *)
        Alcotest.(check (float 1e-9)) "1 of 4 dominant"
          (10609.0 /. 40012.0)
          (Harness.Stats.jain_fairness [ 100.0; 1.0; 1.0; 1.0 ]);
        Alcotest.(check bool) "empty is nan" true
          (Float.is_nan (Harness.Stats.jain_fairness [])));
    t "jain fairness rejects non-positive shares" (fun () ->
        Alcotest.check_raises "zero share"
          (Invalid_argument "Stats.jain_fairness: non-positive share 0")
          (fun () -> ignore (Harness.Stats.jain_fairness [ 1.0; 0.0 ])));
    t "slowdown: mean of pairwise ratios" (fun () ->
        Alcotest.(check (float 1e-9)) "hand-computed" 2.0
          (Harness.Stats.slowdown ~shared:[ 2.0; 4.0 ] ~isolated:[ 1.0; 2.0 ]);
        Alcotest.(check (float 1e-9)) "no interference" 1.0
          (Harness.Stats.slowdown ~shared:[ 5.0 ] ~isolated:[ 5.0 ]);
        Alcotest.(check bool) "empty is nan" true
          (Float.is_nan (Harness.Stats.slowdown ~shared:[] ~isolated:[])));
    t "slowdown contract: mismatch and non-positive isolated" (fun () ->
        Alcotest.check_raises "length mismatch"
          (Invalid_argument "Stats.slowdown: length mismatch") (fun () ->
            ignore (Harness.Stats.slowdown ~shared:[ 1.0 ] ~isolated:[]));
        Alcotest.check_raises "zero isolated"
          (Invalid_argument "Stats.slowdown: non-positive isolated latency 0")
          (fun () ->
            ignore (Harness.Stats.slowdown ~shared:[ 1.0 ] ~isolated:[ 0.0 ])));
  ]

(* ---- admission policies ---- *)

let cand ~tenant ~global ~inflight =
  { Tenancy.Policy.cd_tenant = tenant; cd_global = global; cd_inflight = inflight }

let policy_suite =
  [
    t "of_string round-trips and rejects junk" (fun () ->
        let ok s =
          match Tenancy.Policy.of_string s with
          | Ok p -> Tenancy.Policy.to_string p
          | Error e -> Alcotest.failf "%s rejected: %s" s e
        in
        Alcotest.(check string) "fifo" "fifo" (ok "fifo");
        Alcotest.(check string) "rr" "rr" (ok "RR");
        Alcotest.(check string) "fair" "fair" (ok "fair");
        Alcotest.(check string) "fair weights" "fair:4,2,1" (ok "fair:4,2,1");
        Alcotest.(check string) "priority default" "priority:2" (ok "priority");
        Alcotest.(check string) "priority bound" "priority:3" (ok "priority:3");
        List.iter
          (fun s ->
            match Tenancy.Policy.of_string s with
            | Error _ -> ()
            | Ok p ->
                Alcotest.failf "%S parsed as %s" s (Tenancy.Policy.to_string p))
          [ "lifo"; "fair:"; "fair:0,1"; "fair:x"; "priority:0"; "priority:x" ]);
    t "fifo picks the globally earliest head" (fun () ->
        let st = Tenancy.Policy.init Tenancy.Policy.Fifo ~tenants:3 in
        Alcotest.(check (option int)) "earliest global wins" (Some 2)
          (Tenancy.Policy.select Tenancy.Policy.Fifo st
             [
               cand ~tenant:0 ~global:5 ~inflight:0;
               cand ~tenant:2 ~global:1 ~inflight:3;
             ]));
    t "round-robin cycles past the last admitted tenant" (fun () ->
        let p = Tenancy.Policy.Round_robin in
        let st = Tenancy.Policy.init p ~tenants:3 in
        let all =
          [
            cand ~tenant:0 ~global:0 ~inflight:0;
            cand ~tenant:1 ~global:1 ~inflight:0;
            cand ~tenant:2 ~global:2 ~inflight:0;
          ]
        in
        Alcotest.(check (option int)) "starts at 0" (Some 0)
          (Tenancy.Policy.select p st all);
        Tenancy.Policy.admitted st ~tenant:0 ~work:1.0;
        Alcotest.(check (option int)) "then 1" (Some 1)
          (Tenancy.Policy.select p st all);
        Tenancy.Policy.admitted st ~tenant:1 ~work:1.0;
        Tenancy.Policy.admitted st ~tenant:2 ~work:1.0;
        Alcotest.(check (option int)) "wraps to 0" (Some 0)
          (Tenancy.Policy.select p st all);
        Alcotest.(check (option int)) "skips tenants with empty queues"
          (Some 2)
          (Tenancy.Policy.select p st
             [ cand ~tenant:2 ~global:9 ~inflight:0 ]));
    t "weighted fair picks the least served per unit weight" (fun () ->
        let p = Tenancy.Policy.Fair (Some [| 2.0; 1.0 |]) in
        let st = Tenancy.Policy.init p ~tenants:2 in
        let both =
          [
            cand ~tenant:0 ~global:0 ~inflight:0;
            cand ~tenant:1 ~global:1 ~inflight:0;
          ]
        in
        (* ties break toward the lower tenant *)
        Alcotest.(check (option int)) "tie -> tenant 0" (Some 0)
          (Tenancy.Policy.select p st both);
        Tenancy.Policy.admitted st ~tenant:0 ~work:10.0;
        (* tenant 0 at 10/2 = 5 vs tenant 1 at 0 *)
        Alcotest.(check (option int)) "least share" (Some 1)
          (Tenancy.Policy.select p st both);
        Tenancy.Policy.admitted st ~tenant:1 ~work:10.0;
        (* 5 vs 10: double weight means tenant 0 again *)
        Alcotest.(check (option int)) "weight favors 0" (Some 0)
          (Tenancy.Policy.select p st both));
    t "fair weights arity is checked" (fun () ->
        Alcotest.check_raises "arity"
          (Invalid_argument
             "Policy: fair weights arity 2 does not match 3 tenants")
          (fun () ->
            ignore
              (Tenancy.Policy.init
                 (Tenancy.Policy.Fair (Some [| 1.0; 2.0 |]))
                 ~tenants:3)));
    t "priority backpressure stalls, never drops" (fun () ->
        let p = Tenancy.Policy.Priority { bound = 2 } in
        let st = Tenancy.Policy.init p ~tenants:2 in
        Alcotest.(check (option int)) "lowest id first" (Some 0)
          (Tenancy.Policy.select p st
             [
               cand ~tenant:0 ~global:7 ~inflight:1;
               cand ~tenant:1 ~global:0 ~inflight:0;
             ]);
        Alcotest.(check (option int)) "bounded tenant skipped" (Some 1)
          (Tenancy.Policy.select p st
             [
               cand ~tenant:0 ~global:7 ~inflight:2;
               cand ~tenant:1 ~global:0 ~inflight:0;
             ]);
        (* every waiting tenant at its bound: the slot stays idle *)
        Alcotest.(check (option int)) "all at bound -> stall" None
          (Tenancy.Policy.select p st
             [
               cand ~tenant:0 ~global:7 ~inflight:2;
               cand ~tenant:1 ~global:0 ~inflight:2;
             ]));
  ]

(* ---- traffic generation ---- *)

let traffic_suite =
  [
    t "traffic is a pure function of its config" (fun () ->
        let a = Tenancy.Traffic.jobs Tenancy.Traffic.default in
        let b = Tenancy.Traffic.jobs Tenancy.Traffic.default in
        Alcotest.(check bool) "identical" true (a = b);
        let c =
          Tenancy.Traffic.jobs { Tenancy.Traffic.default with seed = 43 }
        in
        Alcotest.(check bool) "seed changes it" false (a = c));
    t "jobs are sorted by arrival with dense global ranks" (fun () ->
        let js = Tenancy.Traffic.jobs Tenancy.Traffic.default in
        let arrivals = List.map (fun j -> j.Tenancy.Traffic.jb_arrival) js in
        Alcotest.(check bool) "sorted" true
          (List.sort compare arrivals = arrivals);
        Alcotest.(check (list int)) "dense ranks"
          (List.init (List.length js) Fun.id)
          (List.map (fun j -> j.Tenancy.Traffic.jb_global) js);
        Alcotest.(check int) "tenants x jobs_per_tenant"
          (Tenancy.Traffic.default.tenants
          * Tenancy.Traffic.default.jobs_per_tenant)
          (List.length js));
    t "zipf mix: tenant 0 is the heavyweight" (fun () ->
        let js = Tenancy.Traffic.jobs Tenancy.Traffic.default in
        let mean_work t =
          let ws =
            List.filter_map
              (fun j ->
                if j.Tenancy.Traffic.jb_tenant = t then
                  Some (Tenancy.Traffic.work j)
                else None)
              js
          in
          Harness.Stats.mean ws
        in
        Alcotest.(check bool) "tenant 0 heavier than tenant 3" true
          (mean_work 0 > 2.0 *. mean_work 3));
    t "degenerate configs are rejected" (fun () ->
        Alcotest.check_raises "no tenants"
          (Invalid_argument "Traffic: tenants must be positive") (fun () ->
            ignore
              (Tenancy.Traffic.jobs { Tenancy.Traffic.default with tenants = 0 })));
  ]

(* ---- determinism of the full simulation ---- *)

let test_cell : Tenancy.Sim.cell =
  {
    sm_cfg = Gpusim.Config.default;
    policy = Tenancy.Policy.Fair None;
    slots = 8;
  }

let test_traffic = Tenancy.Traffic.default (* 4 tenants, bursty *)

let determinism_suite =
  [
    t "repeated shared runs are identical (dumps, latencies, metrics)"
      (fun () ->
        let app = Tenancy.App.compile Tenancy.App.baseline_opts in
        let js = Tenancy.Traffic.jobs test_traffic in
        let a = Tenancy.Sim.run test_cell ~tenants:test_traffic.tenants app js in
        let b = Tenancy.Sim.run test_cell ~tenants:test_traffic.tenants app js in
        Alcotest.(check bool) "byte-identical runs" true (a = b);
        Alcotest.(check int) "every job completed"
          (List.length js) (List.length a.rn_jobs));
    t "experiment JSON is byte-identical at -j 1 and -j 4" (fun () ->
        let at jobs =
          Harness.Pool.with_pool ~jobs (fun pool ->
              Tenancy.Report.json_of_result
                (Tenancy.Report.run ~pool test_cell test_traffic))
        in
        Alcotest.(check string) "-j levels agree" (at 1) (at 4));
    t "both engines produce the identical experiment artifact" (fun () ->
        let under engine =
          let cell =
            { test_cell with sm_cfg = { Gpusim.Config.default with engine } }
          in
          Tenancy.Report.json_of_result (Tenancy.Report.run cell test_traffic)
        in
        Alcotest.(check string) "closure = bytecode"
          (under Gpusim.Config.Closure)
          (under Gpusim.Config.Bytecode));
    t "priority bound 1 serializes each tenant's jobs" (fun () ->
        let cell =
          { test_cell with policy = Tenancy.Policy.Priority { bound = 1 } }
        in
        let app = Tenancy.App.compile Tenancy.App.optimized_opts in
        let js = Tenancy.Traffic.jobs test_traffic in
        let r = Tenancy.Sim.run cell ~tenants:test_traffic.tenants app js in
        (* backpressure: in admission order (arrival jitter can reorder a
           burst's jobs, so seq order is not admission order), a tenant's
           next job cannot be admitted before the previous one finished —
           and it is admitted eventually, not dropped *)
        Alcotest.(check int) "all jobs ran" (List.length js)
          (List.length r.rn_jobs);
        List.iter
          (fun t ->
            let mine =
              List.filter (fun (j : Tenancy.Sim.job_result) -> j.jr_tenant = t)
                r.rn_jobs
              |> List.sort (fun (a : Tenancy.Sim.job_result) b ->
                     compare a.jr_admit b.jr_admit)
            in
            ignore
              (List.fold_left
                 (fun prev_finish (j : Tenancy.Sim.job_result) ->
                   Alcotest.(check bool) "admit after previous finish" true
                     (j.jr_admit >= prev_finish);
                   j.jr_finish)
                 0.0 mine))
          (List.init test_traffic.tenants Fun.id));
  ]

(* ---- the pinned congestion-under-tenancy experiment ----

   Locked margins for the 4-tenant bursty default traffic under the fair
   policy with 8 slots (measured: baseline 3.87x mean slowdown, optimized
   1.00x, recovery 3.87x, optimized fairness 1.000). The margins leave
   ~2x headroom so they pin the effect, not the exact figures. *)

let experiment_suite =
  [
    t "baseline congests under tenancy; the pipeline recovers it" (fun () ->
        let r = Tenancy.Report.run test_cell test_traffic in
        Alcotest.(check bool) "baseline slowdown over 2x" true
          (r.rs_baseline.cp_mean_slowdown > 2.0);
        Alcotest.(check bool) "optimized slowdown under 1.5x" true
          (r.rs_optimized.cp_mean_slowdown < 1.5);
        Alcotest.(check bool) "recovery at least 2x" true
          (r.rs_recovery >= 2.0);
        Alcotest.(check bool) "optimized fairness at least 0.95" true
          (r.rs_optimized.cp_fairness >= 0.95);
        (* the congestion is attributed to the shared launch queue: under
           the baseline every tenant's queue wait dwarfs its optimized one *)
        List.iter2
          (fun (b : Tenancy.Report.tenant_report)
               (o : Tenancy.Report.tenant_report) ->
            Alcotest.(check bool) "baseline queue wait dominates" true
              (b.tr_queue_wait > 100.0 *. Float.max 1.0 o.tr_queue_wait);
            Alcotest.(check bool) "optimized launches far fewer grids" true
              (o.tr_device_launches * 10 < b.tr_device_launches))
          r.rs_baseline.cp_tenants r.rs_optimized.cp_tenants);
  ]

let suite =
  stats_suite @ policy_suite @ traffic_suite @ determinism_suite
  @ experiment_suite
