(* Sanity tests for the differential-testing subsystem (lib/difftest): the
   oracle must pass honest pipeline variants, catch a deliberately broken
   pass, and shrink the counterexample to a small reproducer. *)

open Difftest

let t name f = Alcotest.test_case name `Quick f

(* Keep the oracle's own tests fast: one simulator configuration. *)
let unit_config = [ List.hd Oracle.sim_configs ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let suite =
  [
    t "cases are fully determined by their seed" (fun () ->
        let a = Gen.case_of_seed 42 and b = Gen.case_of_seed 42 in
        Alcotest.(check string) "same source" (Gen.source a) (Gen.source b);
        Alcotest.(check (array int)) "same workload" a.degs b.degs;
        let c = Gen.case_of_seed 43 in
        Alcotest.(check bool) "different seed, different case" false
          (Gen.source a = Gen.source c && a.degs = c.degs));
    t "generated cases survive a print/parse round trip" (fun () ->
        for seed = 0 to 19 do
          let case = Gen.case_of_seed seed in
          let src = Gen.source case in
          match Minicu.Parser.program src with
          | exception exn ->
              Alcotest.failf "seed %d: reproducer does not re-parse: %s" seed
                (Printexc.to_string exn)
          | reparsed ->
              Minicu.Typecheck.check reparsed
        done);
    t "honest variants pass the oracle" (fun () ->
        for seed = 0 to 14 do
          match Oracle.check ~configs:unit_config (Gen.case_of_seed seed) with
          | Pass -> ()
          | Fail f ->
              Alcotest.failf "seed %d: false positive: %a" seed
                Oracle.pp_failure f
          | Invalid msg ->
              Alcotest.failf "seed %d: generator produced an invalid case: %s"
                seed msg
        done);
    t "a broken coarsening pass is caught" (fun () ->
        let variants = [ Oracle.broken_coarsening () ] in
        let rec scan seed =
          if seed > 100 then
            Alcotest.fail
              "broken coarsening survived 100 random cases undetected"
          else
            match
              Oracle.check ~variants ~configs:unit_config
                (Gen.case_of_seed seed)
            with
            | Fail f -> (Gen.case_of_seed seed, f)
            | Pass | Invalid _ -> scan (seed + 1)
        in
        let case, f = scan 0 in
        Alcotest.(check bool) "memory difference detected" true
          (has_prefix ~prefix:"device memory differs" f.f_reason
          || has_prefix ~prefix:"launch metrics" f.f_reason);
        (* ... and shrinks to a small reproducer that still fails *)
        let still_fails c =
          match Oracle.check ~variants ~configs:unit_config c with
          | Fail _ -> true
          | Pass | Invalid _ -> false
        in
        let small = Shrink.minimize ~still_fails case in
        Alcotest.(check bool) "shrunk case still fails" true
          (still_fails small);
        Alcotest.(check bool) "shrinking made progress" true
          (Shrink.case_size small < Shrink.case_size case);
        let lines = Gen.source_lines small in
        (* smallest idiomatic reproducer: a guarded single-site parent
           (the emptiness guard costs 2 lines) plus a minimal child *)
        if lines > 12 then
          Alcotest.failf "shrunk reproducer has %d non-empty lines:\n%s" lines
            (Gen.source small));
    t "sanitize mode passes honest variants" (fun () ->
        for seed = 0 to 9 do
          match
            Oracle.check ~sanitize:true ~configs:unit_config
              (Gen.case_of_seed seed)
          with
          | Pass -> ()
          | Fail f ->
              Alcotest.failf "seed %d: sanitize false positive: %a" seed
                Oracle.pp_failure f
          | Invalid msg ->
              Alcotest.failf "seed %d: generator produced an invalid case: %s"
                seed msg
        done);
    t "an injected racy variant is caught by sanitize mode and shrunk"
      (fun () ->
        let variants = [ Oracle.racy_injection () ] in
        (* Without sanitize mode the variant is memory-neutral: the plain
           oracle must NOT flag it. *)
        (match
           Oracle.check ~variants ~configs:unit_config (Gen.case_of_seed 0)
         with
        | Pass | Invalid _ -> ()
        | Fail f ->
            Alcotest.failf
              "racy variant failed the plain (non-sanitize) oracle: %a"
              Oracle.pp_failure f);
        let check = Oracle.check ~sanitize:true ~variants ~configs:unit_config in
        let rec scan seed =
          if seed > 100 then
            Alcotest.fail "racy variant survived 100 sanitized cases undetected"
          else
            match check (Gen.case_of_seed seed) with
            | Fail f -> (Gen.case_of_seed seed, f)
            | Pass | Invalid _ -> scan (seed + 1)
        in
        let case, f = scan 0 in
        Alcotest.(check bool) "race report in the failure reason" true
          (has_prefix ~prefix:"race detected: " f.f_reason);
        let still_fails c =
          match check c with Fail _ -> true | Pass | Invalid _ -> false
        in
        let small = Shrink.minimize ~still_fails case in
        Alcotest.(check bool) "shrunk case still fails" true (still_fails small);
        Alcotest.(check bool) "shrinking made progress" true
          (Shrink.case_size small < Shrink.case_size case));
    t "shrink candidates are strictly smaller" (fun () ->
        for seed = 0 to 9 do
          let case = Gen.case_of_seed seed in
          let size = Shrink.case_size case in
          List.iter
            (fun c ->
              if Shrink.case_size c >= size then
                Alcotest.failf
                  "seed %d: candidate of size %d is not smaller than %d" seed
                  (Shrink.case_size c) size;
              Alcotest.(check int) "shrunk cases lose their seed" (-1) c.Gen.seed)
            (Shrink.candidates case)
        done);
    t "minimize is a fixpoint" (fun () ->
        (* With a property that accepts everything, minimize must terminate
           at a case none of whose candidates are accepted-and-smaller;
           rerunning it makes no further progress. *)
        let still_fails _ = true in
        let small = Shrink.minimize ~still_fails (Gen.case_of_seed 7) in
        let again = Shrink.minimize ~still_fails small in
        Alcotest.(check int) "no further progress"
          (Shrink.case_size small) (Shrink.case_size again));
  ]
