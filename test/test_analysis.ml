(* dpcheck tests: static lints (divergent barriers, warp-scope ops,
   constant OOB), the pass-combination driver (all 14 benchmarks stay
   clean under all 8 combos — pinned), and the dynamic race detector
   (seeded races caught with locations, barrier-separated accesses clean,
   OOB reports carry file:line, detector off by default). *)

open Gpusim
module Static = Analysis.Static
module Dpcheck = Analysis.Dpcheck
module Dynamic = Analysis.Dynamic

let t name f = Alcotest.test_case name `Quick f
let parse ?(file = "test.minicu") src = Minicu.Parser.program ~file src
let codes ds = List.map (fun d -> d.Static.code) ds

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let check_codes name src expected =
  t name (fun () ->
      let ds = Static.check_program (parse src) in
      Alcotest.(check (list string)) name expected (codes ds))

(* ---- static lints ---- *)

let divergent_sync_src =
  "__global__ void k(int* d) {\n\
  \  if (threadIdx.x < 16) {\n\
  \    __syncthreads();\n\
  \  }\n\
   }\n"

let static_tests =
  [
    t "divergent __syncthreads is E001 with file:line" (fun () ->
        match Static.check_program (parse divergent_sync_src) with
        | [ d ] ->
            Alcotest.(check string) "code" "E001" d.code;
            Alcotest.(check bool) "error" true (Static.is_error d);
            Alcotest.(check string) "file" "test.minicu" d.d_loc.file;
            Alcotest.(check int) "line" 3 d.d_loc.line
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    check_codes "uniform barrier is clean"
      "__global__ void k(int* d) { if (blockIdx.x == 0) { __syncthreads(); } \
       d[threadIdx.x] = 1; }"
      [];
    check_codes "top-level barrier is clean"
      "__global__ void k(int* d) { d[threadIdx.x] = 1; __syncthreads(); d[0] \
       = 2; }"
      [];
    t "barrier via device call under divergence is E001" (fun () ->
        let src =
          "__device__ void helper(int* d) { __syncthreads(); }\n\
           __global__ void k(int* d) { if (threadIdx.x < 4) { helper(d); } }\n"
        in
        match Static.check_program (parse src) with
        | [ d ] ->
            Alcotest.(check string) "code" "E001" d.code;
            Alcotest.(check bool) "names callee" true
              (contains d.msg "helper")
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    check_codes "__syncwarp under thread-varying control flow is E002"
      "__global__ void k(int* d) { if (threadIdx.x % 2 == 0) { __syncwarp(); \
       } }"
      [ "E002" ];
    check_codes "warp collective under thread-varying control flow is E002"
      "__global__ void k(int* d) { int s = 0; if (threadIdx.x < 1) { s = \
       warp_sum(1); } d[0] = s; }"
      [ "E002" ];
    check_codes "warp collective at top level is clean"
      "__global__ void k(int* d) { int s = warp_sum(threadIdx.x); \
       d[threadIdx.x] = s; }"
      [];
    t "constant OOB on a sized shared array is E003" (fun () ->
        let src =
          "__global__ void k(int* d) {\n\
          \  __shared__ int sh[4];\n\
          \  sh[7] = 1;\n\
          \  d[0] = sh[2];\n\
           }\n"
        in
        match Static.check_program (parse src) with
        | [ d ] ->
            Alcotest.(check string) "code" "E003" d.code;
            Alcotest.(check int) "line" 3 d.d_loc.line;
            Alcotest.(check bool) "mentions index" true
              (contains d.msg "7")
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    check_codes "in-bounds constant indexing is clean"
      "__global__ void k(int* d) { __shared__ int sh[4]; sh[3] = 1; d[0] = \
       sh[0]; }"
      [];
    t "launch in a loop is W101, a warning" (fun () ->
        let src =
          "__global__ void child(int* d) { d[0] = 1; }\n\
           __global__ void k(int* d) {\n\
          \  for (int i = 0; i < 4; i = i + 1) {\n\
          \    child<<<1, 1>>>(d);\n\
          \  }\n\
           }\n"
        in
        let ds = Static.check_program (parse src) in
        Alcotest.(check (list string)) "codes" [ "W101" ] (codes ds);
        Alcotest.(check bool) "not an error" true (Static.errors ds = []));
    check_codes "launch in a divergent branch (no loop) is clean"
      "__global__ void child(int* d) { d[0] = 1; }\n\
       __global__ void k(int* d) { if (threadIdx.x < 4) { child<<<1, \
       1>>>(d); } }"
      [];
  ]

(* ---- the dpcheck driver over pass combinations ---- *)

let driver_tests =
  [
    t "divergent-barrier kernel: errors reported, combos skipped" (fun () ->
        let r = Dpcheck.check (parse divergent_sync_src) in
        Alcotest.(check bool) "not clean" false (Dpcheck.clean r);
        Alcotest.(check int) "one error" 1 (Dpcheck.error_count r);
        Alcotest.(check int) "no combos" 0 (List.length r.combos));
    t "nested parent/child: clean under all 8 combos" (fun () ->
        let r = Dpcheck.check (parse Test_helpers.nested_src) in
        Alcotest.(check bool) "clean" true (Dpcheck.clean r);
        Alcotest.(check int) "8 combos" 8 (List.length r.combos));
    t "all 14 benchmarks clean under all 8 pass combinations" (fun () ->
        List.iter
          (fun (spec : Benchmarks.Bench_common.spec) ->
            let prog =
              Minicu.Parser.program ~file:(spec.name ^ ".minicu") spec.cdp_src
            in
            let r = Dpcheck.check prog in
            Alcotest.(check int)
              (spec.name ^ "/" ^ spec.dataset ^ " combos")
              8 (List.length r.combos);
            if not (Dpcheck.clean r) then
              Alcotest.failf "%s/%s not clean:@.%a" spec.name spec.dataset
                Dpcheck.pp r)
          (Benchmarks.Registry.all ()));
  ]

(* ---- dynamic race detector ---- *)

let racy_src =
  "__global__ void k(int* d) {\n\
  \  __shared__ int sh[1];\n\
  \  sh[0] = threadIdx.x;\n\
  \  d[threadIdx.x] = sh[0];\n\
   }\n"

let barrier_fixed_src =
  "__global__ void k(int* d) {\n\
  \  __shared__ int sh[1];\n\
  \  if (threadIdx.x == 0) {\n\
  \    sh[0] = 42;\n\
  \  }\n\
  \  __syncthreads();\n\
  \  d[threadIdx.x] = sh[0];\n\
   }\n"

let run_checked ?(check = true) ?(block = (64, 1, 1)) ~kernel src =
  let cfg = { Config.test_config with check } in
  let dev = Device.create ~cfg () in
  Device.load_program dev (parse src);
  let out = Device.alloc_int_zeros dev 64 in
  Device.launch dev ~kernel ~grid:(1, 1, 1) ~block ~args:[ Value.Ptr out ];
  ignore (Device.sync dev);
  Device.metrics dev

let dynamic_tests =
  [
    t "write-write race on shared memory is detected with location" (fun () ->
        let m = run_checked ~kernel:"k" racy_src in
        Alcotest.(check bool) "races > 0" true (m.races_detected > 0);
        match m.race_reports with
        | r :: _ ->
            Alcotest.(check bool) "mentions line 3" true
              (contains r "test.minicu:3")
        | [] -> Alcotest.fail "expected a race report");
    t "barrier-separated accesses are race-free" (fun () ->
        let m = run_checked ~kernel:"k" barrier_fixed_src in
        Alcotest.(check int) "no races" 0 m.races_detected);
    t "single-thread block never races" (fun () ->
        let m = run_checked ~block:(1, 1, 1) ~kernel:"k" racy_src in
        Alcotest.(check int) "no races" 0 m.races_detected);
    t "detector is off by default" (fun () ->
        let m = run_checked ~check:false ~kernel:"k" racy_src in
        Alcotest.(check int) "no races recorded" 0 m.races_detected;
        Alcotest.(check (list string)) "no reports" [] m.race_reports);
    t "atomic updates to one cell do not race" (fun () ->
        let m =
          run_checked ~kernel:"k"
            "__global__ void k(int* d) { atomicAdd(&d[0], 1); }\n"
        in
        Alcotest.(check int) "no races" 0 m.races_detected);
    t "warp-scope exchange through __syncwarp is race-free" (fun () ->
        let m =
          run_checked ~block:(8, 1, 1) ~kernel:"k"
            "__global__ void k(int* d) {\n\
            \  d[threadIdx.x] = threadIdx.x;\n\
            \  __syncwarp();\n\
            \  d[0] = d[7 - threadIdx.x] + d[threadIdx.x];\n\
             }\n"
        in
        ignore m.races_detected;
        (* cross-warp-epoch read-after-write must not be reported; the
           same-epoch write-write on d[0] must be *)
        Alcotest.(check bool) "ww race on d[0] found" true
          (m.races_detected > 0));
    t "OOB access reports file:line and bumps the counter" (fun () ->
        let cfg = { Config.test_config with check = true } in
        let dev = Device.create ~cfg () in
        Device.load_program dev
          (parse "__global__ void k(int* d) { d[99] = 1; }\n");
        let out = Device.alloc_int_zeros dev 8 in
        Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(1, 1, 1)
          ~args:[ Value.Ptr out ];
        (match Device.sync dev with
        | _ -> Alcotest.fail "expected an OOB error"
        | exception Value.Runtime_error msg ->
            Alcotest.(check bool) "has location" true
              (contains msg "test.minicu:1"));
        Alcotest.(check int) "oob counter" 1 (Device.metrics dev).oob_detected);
  ]

(* ---- CHECK-RUN directives ---- *)

let directive_tests =
  [
    t "directives parse grids, blocks and args" (fun () ->
        let src =
          "// CHECK-RUN: k grid=2,2 block=32 args=ptr:64,int:8,float:1.5\n\
           __global__ void k(int* d, int n, float x) { }\n"
        in
        match Dynamic.directives src with
        | [ d ] ->
            Alcotest.(check string) "kernel" "k" d.dr_kernel;
            Alcotest.(check bool) "grid" true (d.dr_grid = (2, 2, 1));
            Alcotest.(check bool) "block" true (d.dr_block = (32, 1, 1));
            Alcotest.(check int) "args" 3 (List.length d.dr_args)
        | ds -> Alcotest.failf "expected one directive, got %d" (List.length ds));
    t "directive run flags the seeded racy kernel" (fun () ->
        let src = "// CHECK-RUN: k grid=1 block=64 args=ptr:64\n" ^ racy_src in
        let findings = Dynamic.run (parse src) (Dynamic.directives src) in
        Alcotest.(check bool) "found" true (findings <> []));
    t "directive run is clean on the fixed kernel" (fun () ->
        let src =
          "// CHECK-RUN: k grid=1 block=64 args=ptr:64\n" ^ barrier_fixed_src
        in
        let findings = Dynamic.run (parse src) (Dynamic.directives src) in
        Alcotest.(check (list string)) "clean" [] findings);
  ]

let suite = static_tests @ driver_tests @ dynamic_tests @ directive_tests
