(* MiniCU transpiled to parallel OCaml by the native backend. *)
let rec k_child (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_data = ref _args.(0) in
  let v_base = ref _args.(1) in
  let v_n = ref _args.(2) in
  (try
    let v_i = ref (let _t2 = (let _t0 = (Nrt.member (Nrt.block_idx t) "x") in let _t1 = (Nrt.member (Nrt.block_dim t) "x") in Nrt.mul _t0 _t1) in let _t3 = (Nrt.member (Nrt.thread_idx t) "x") in Nrt.add _t2 _t3) in
    if Nrt.as_bool (let _t17 = !v_i in let _t18 = !v_n in Nrt.lt _t17 _t18) then begin
      (let _t14 = !v_data in let _t15 = (let _t12 = !v_base in let _t13 = !v_i in Nrt.add _t12 _t13) in let _t16 = (let _t10 = (let _t8 = (let _t6 = !v_data in let _t7 = (let _t4 = !v_base in let _t5 = !v_i in Nrt.add _t4 _t5) in Nrt.load t _t6 _t7) in let _t9 = (Nrt.Int (2)) in Nrt.mul _t8 _t9) in let _t11 = (Nrt.Int (1)) in Nrt.add _t10 _t11) in Nrt.store t _t14 _t15 _t16)
    end else begin
      ()
    end
  with Nrt.Ret _ -> ())
and k_parent (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_rows = ref _args.(0) in
  let v_data = ref _args.(1) in
  let v_n = ref _args.(2) in
  (try
    let v_v = ref (let _t2 = (let _t0 = (Nrt.member (Nrt.block_idx t) "x") in let _t1 = (Nrt.member (Nrt.block_dim t) "x") in Nrt.mul _t0 _t1) in let _t3 = (Nrt.member (Nrt.thread_idx t) "x") in Nrt.add _t2 _t3) in
    if Nrt.as_bool (let _t25 = !v_v in let _t26 = !v_n in Nrt.lt _t25 _t26) then begin
      let v_start = ref (let _t4 = !v_rows in let _t5 = !v_v in Nrt.load t _t4 _t5) in
      let v_deg = ref (let _t12 = (let _t10 = !v_rows in let _t11 = (let _t8 = !v_v in let _t9 = (Nrt.Int (1)) in Nrt.add _t8 _t9) in Nrt.load t _t10 _t11) in let _t13 = (let _t6 = !v_rows in let _t7 = !v_v in Nrt.load t _t6 _t7) in Nrt.sub _t12 _t13) in
      if Nrt.as_bool (let _t23 = !v_deg in let _t24 = (Nrt.Int (0)) in Nrt.gt _t23 _t24) then begin
        (let _t18 = (let _t16 = (let _t14 = !v_deg in let _t15 = (Nrt.Int (31)) in Nrt.add _t14 _t15) in let _t17 = (Nrt.Int (32)) in Nrt.div _t16 _t17) in let _t19 = (Nrt.Int (32)) in let _t20 = !v_data in let _t21 = !v_start in let _t22 = !v_deg in Nrt.launch t "child" _t18 _t19 [_t20; _t21; _t22])
      end else begin
        ()
      end
    end else begin
      ()
    end
  with Nrt.Ret _ -> ())

let kernels : Nrt.kernel list = [
  { Nrt.k_name = "child"; k_arity = 3; k_fn = k_child };
  { Nrt.k_name = "parent"; k_arity = 3; k_fn = k_parent };
]
